package trimcaching

import (
	"testing"
)

func TestQuickFlow(t *testing.T) {
	lib, err := NewSpecialLibrary(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lib.NumModels() != 15 {
		t.Fatalf("models = %d", lib.NumModels())
	}
	sc, err := BuildScenario(lib, DefaultScenarioConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Servers() != 10 || sc.Users() != 30 || sc.Models() != 15 {
		t.Fatalf("dims %d/%d/%d", sc.Servers(), sc.Users(), sc.Models())
	}
	for _, alg := range []string{"spec", "gen", "independent", "popularity"} {
		p, elapsed, err := sc.Place(alg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if elapsed < 0 {
			t.Fatalf("%s: negative time", alg)
		}
		hr, err := sc.HitRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		if hr <= 0 || hr > 1 {
			t.Fatalf("%s: hit ratio %v", alg, hr)
		}
		faded, err := sc.HitRatioUnderFading(p, 50, 3)
		if err != nil {
			t.Fatal(err)
		}
		if faded <= 0 || faded > 1 {
			t.Fatalf("%s: faded hit ratio %v", alg, faded)
		}
		used, err := sc.ServerStorage(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if used < 0 || used > DefaultScenarioConfig().CapacityBytes {
			t.Fatalf("%s: storage %d", alg, used)
		}
	}
}

func TestPlaceUnknownAlgorithm(t *testing.T) {
	lib, err := NewSpecialLibrary(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario(lib, DefaultScenarioConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.Place("nope"); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestBuildScenarioValidation(t *testing.T) {
	if _, err := BuildScenario(nil, DefaultScenarioConfig(), 1); err == nil {
		t.Fatal("nil library must error")
	}
	lib, err := NewSpecialLibrary(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultScenarioConfig()
	bad.Servers = 0
	if _, err := BuildScenario(lib, bad, 1); err == nil {
		t.Fatal("zero servers must error")
	}
	bad = DefaultScenarioConfig()
	bad.CapacityBytes = -5
	if _, err := BuildScenario(lib, bad, 1); err == nil {
		t.Fatal("negative capacity must error")
	}
}

func TestGeneralAndLoRALibraries(t *testing.T) {
	gen, err := NewGeneralLibrary(27, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gen.NumModels() != 27 {
		t.Fatalf("general models = %d", gen.NumModels())
	}
	lora, err := NewLoRALibrary(40)
	if err != nil {
		t.Fatal(err)
	}
	if lora.NumModels() != 40 {
		t.Fatalf("lora models = %d", lora.NumModels())
	}
	if lora.Stats().SharingRatio > 0.1 {
		t.Fatalf("lora sharing ratio %v", lora.Stats().SharingRatio)
	}
}

func TestServeFlow(t *testing.T) {
	lib, err := NewSpecialLibrary(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario(lib, DefaultScenarioConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := sc.Place("gen")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Serve(p, DefaultServeConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests served")
	}
	if res.HitRatio <= 0 {
		t.Fatalf("serving hit ratio %v", res.HitRatio)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	lib, err := NewSpecialLibrary(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildScenario(lib, DefaultScenarioConfig(), 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildScenario(lib, DefaultScenarioConfig(), 10)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := a.Place("gen")
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := b.Place("gen")
	if err != nil {
		t.Fatal(err)
	}
	ha, err := a.HitRatio(pa)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.HitRatio(pb)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("same seed, different hit ratios: %v vs %v", ha, hb)
	}
}
