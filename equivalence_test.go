package trimcaching

// Regression tests pinning the bitset reachability engine to the
// pre-refactor dense evaluator. The golden values below were captured from
// the []bool element-scan implementation (before internal/bitset existed)
// at the paper's default scenario; the word-packed engine must reproduce
// them bit-for-bit — the refactor changes the representation, never the
// arithmetic or its order.

import (
	"testing"

	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
)

// goldenRealizations and goldenFadingSeed parameterize the fading leg of
// the golden capture: realization r draws its gains from
// rng.New(goldenFadingSeed).SplitIndex("real", r).
const (
	goldenRealizations = 100
	goldenFadingSeed   = 7
)

var goldenCases = []struct {
	seed       uint64
	algo       string
	hit, faded float64
}{
	{1, "spec", 0.81832821184802185, 0.79745554511916295},
	{1, "gen", 0.81832821184802185, 0.7928095077468299},
	{1, "gen-naive", 0.81832821184802185, 0.7928095077468299},
	{1, "independent", 0.75022330651205127, 0.72181700992893627},
	{1, "popularity", 0.61105855610528814, 0.60287679274339923},
	{2, "spec", 0.95896509598134894, 0.92459273739137837},
	{2, "gen", 0.95896509598134894, 0.92352175769662082},
	{2, "gen-naive", 0.95896509598134894, 0.92352175769662082},
	{2, "independent", 0.86103463843859507, 0.82052669632072284},
	{2, "popularity", 0.72196372687946031, 0.70866003843078873},
	{3, "spec", 0.61149322048566046, 0.58170168391523636},
	{3, "gen", 0.61149322048566046, 0.57437005462179724},
	{3, "gen-naive", 0.61149322048566046, 0.57437005462179724},
	{3, "independent", 0.59676146288923793, 0.55883717907223951},
	{3, "popularity", 0.44185725804152509, 0.43378348210438494},
}

func TestEvaluatorEquivalenceGolden(t *testing.T) {
	lib, err := NewSpecialLibrary(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := map[uint64]*Scenario{}
	for _, tc := range goldenCases {
		sc, ok := scenarios[tc.seed]
		if !ok {
			if sc, err = BuildScenario(lib, DefaultScenarioConfig(), tc.seed); err != nil {
				t.Fatal(err)
			}
			scenarios[tc.seed] = sc
		}
		p, _, err := sc.Place(tc.algo)
		if err != nil {
			t.Fatal(err)
		}
		hit, err := sc.HitRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		if hit != tc.hit {
			t.Errorf("seed=%d algo=%s: HitRatio = %.17g, pre-refactor golden %.17g",
				tc.seed, tc.algo, hit, tc.hit)
		}
		faded, err := sc.HitRatioUnderFading(p, goldenRealizations, goldenFadingSeed)
		if err != nil {
			t.Fatal(err)
		}
		if faded != tc.faded {
			t.Errorf("seed=%d algo=%s: HitRatioUnderFading = %.17g, pre-refactor golden %.17g",
				tc.seed, tc.algo, faded, tc.faded)
		}
	}
}

// denseHitRatio is the pre-refactor evaluator verbatim: scan every server
// per (user, model) request, count the first cached-and-reachable one.
func denseHitRatio(sc *Scenario, p *Placement, reach *scenario.Reach) float64 {
	ins := sc.instance
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	var hit float64
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			for m := 0; m < M; m++ {
				servable := false
				if reach != nil {
					servable = reach.Has(m, k, i)
				} else {
					servable = ins.Reachable(m, k, i)
				}
				if p.Has(m, i) && servable {
					hit += ins.Prob(k, i)
					break
				}
			}
		}
	}
	return hit / ins.TotalMass()
}

// TestBitsetMatchesDenseReference cross-checks the packed evaluator against
// the scalar reference on fresh instances and fading realizations, exactly.
func TestBitsetMatchesDenseReference(t *testing.T) {
	lib, err := NewSpecialLibrary(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		sc, err := BuildScenario(lib, DefaultScenarioConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := sc.Place("gen")
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.HitRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := denseHitRatio(sc, p, nil); got != want {
			t.Errorf("seed=%d: HitRatio = %.17g, dense reference %.17g", seed, got, want)
		}
		ins := sc.instance
		src := rng.New(seed + 100)
		buf := ins.MakeReachBuffer()
		for r := 0; r < 5; r++ {
			gains := scenario.SampleGains(ins.NumServers(), ins.NumUsers(), src.SplitIndex("real", r))
			reach, err := ins.FadedReach(gains, buf)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.evaluator.HitRatioWithReach(p, reach)
			if err != nil {
				t.Fatal(err)
			}
			if want := denseHitRatio(sc, p, reach); got != want {
				t.Errorf("seed=%d r=%d: HitRatioWithReach = %.17g, dense reference %.17g",
					seed, r, got, want)
			}
		}
	}
}

// TestExplicitZeroScenarioConfig covers the has-value flags: uniform
// popularity (Zipf 0) and zero-minimum windows must be expressible.
func TestExplicitZeroScenarioConfig(t *testing.T) {
	lib, err := NewSpecialLibrary(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultScenarioConfig()
	cfg.ZipfExponent = 0
	cfg.ZipfExponentSet = true
	sc, err := BuildScenario(lib, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Zipf 0 is the uniform distribution: every user must spread its mass
	// equally over the models.
	ins := sc.instance
	I := ins.NumModels()
	for i := 1; i < I; i++ {
		if ins.Prob(0, i) != ins.Prob(0, 0) {
			t.Fatalf("Zipf 0 not uniform: p(0,0)=%v p(0,%d)=%v", ins.Prob(0, 0), i, ins.Prob(0, i))
		}
	}

	// Without the flag, zero keeps the default skew (backward compat).
	legacy := DefaultScenarioConfig()
	legacy.ZipfExponent = 0
	sc2, err := BuildScenario(lib, legacy, 5)
	if err != nil {
		t.Fatal(err)
	}
	uniform := true
	for i := 1; i < sc2.instance.NumModels(); i++ {
		if sc2.instance.Prob(0, i) != sc2.instance.Prob(0, 0) {
			uniform = false
			break
		}
	}
	if uniform {
		t.Fatal("legacy zero ZipfExponent should keep the default skew, got uniform")
	}

	// Zero-minimum deadline window.
	zcfg := DefaultScenarioConfig()
	zcfg.DeadlineMinS = 0
	zcfg.DeadlineMinSSet = true
	zcfg.DeadlineMaxS = 0.6
	zsc, err := BuildScenario(lib, zcfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	work := zsc.instance.Workload()
	sawBelowDefaultMin := false
	for k := 0; k < zsc.Users(); k++ {
		for i := 0; i < zsc.Models(); i++ {
			d := work.DeadlineS(k, i)
			if d < 0 || d > 0.6 {
				t.Fatalf("deadline %v outside [0, 0.6]", d)
			}
			if d < 0.5 {
				sawBelowDefaultMin = true
			}
		}
	}
	if !sawBelowDefaultMin {
		t.Fatal("zero-minimum deadlines never drew below the old 0.5 s floor")
	}
}
