package trimcaching

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestReadmeQuickstartCompiles pins the README quickstart against the real
// API: the first Go code block in README.md is extracted into a throwaway
// module (with a replace directive onto this repository) and built with the
// Go toolchain. Drift between the documented snippet and the public API
// fails tier-1 instead of rotting silently.
func TestReadmeQuickstartCompiles(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile("(?s)```go\n(.*?)```").FindSubmatch(readme)
	if m == nil {
		t.Fatal("README.md has no ```go code block")
	}
	snippet := string(m[1])
	if !strings.Contains(snippet, "package main") {
		t.Fatalf("quickstart snippet is not a main package:\n%s", snippet)
	}

	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(snippet), 0o644); err != nil {
		t.Fatal(err)
	}
	gomod := "module readmecheck\n\ngo 1.24\n\nrequire trimcaching v0.0.0\n\nreplace trimcaching => " + repoRoot + "\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(goBin, "build", "./...")
	cmd.Dir = dir
	// -mod=mod lets the build resolve the replace directive without a
	// go.sum; everything is local, so no network is touched.
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("README quickstart does not compile: %v\n%s\nsnippet:\n%s", err, out, snippet)
	}
}
