package trimcaching

import (
	"fmt"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
)

// DynamicsConfig parameterizes a mobility timeline run: users walk with the
// paper's pedestrian/bike/vehicle model, the hit ratio is measured under
// fading at every checkpoint, and the placement is re-initiated when it
// degrades past a threshold (§IV, §VII-E).
type DynamicsConfig struct {
	// Algorithm is the placement algorithm's short name ("spec", "gen", ...).
	Algorithm string
	// DurationMin and CheckpointMin shape the timeline (§VII-E: 120 / 10).
	DurationMin   int
	CheckpointMin int
	// SlotS is the mobility slot length; 0 keeps the paper's 5 s.
	SlotS float64
	// Realizations is the fading realizations per checkpoint measurement.
	Realizations int
	// ReplaceThreshold re-places when the hit ratio falls below
	// (1 - ReplaceThreshold) times the post-placement baseline; 0 never
	// replaces (the Fig. 7 protocol).
	ReplaceThreshold float64
	// Rebuild switches the engine from incremental delta updates (the
	// default) to full instance rebuilds at every checkpoint. Both modes
	// produce identical timelines; Rebuild exists as the reference path.
	Rebuild bool
}

// DefaultDynamicsConfig mirrors the §VII-E protocol: a two-hour walk in
// five-second slots, measured every ten minutes, placement frozen.
func DefaultDynamicsConfig() DynamicsConfig {
	return DynamicsConfig{
		Algorithm:     "spec",
		DurationMin:   120,
		CheckpointMin: 10,
		SlotS:         5,
		Realizations:  400,
	}
}

// DynamicsStep is one checkpoint of a mobility timeline.
type DynamicsStep struct {
	// TimeMin is minutes since the start.
	TimeMin float64
	// HitRatio is the fading-averaged hit ratio at this checkpoint.
	HitRatio float64
	// Replaced reports whether the placement was re-initiated here.
	Replaced bool
}

// RunDynamics walks the scenario's users through a mobility timeline and
// returns the per-checkpoint hit ratios plus the number of replacements.
// Deterministic in seed; the scenario itself is left untouched (the engine
// runs on a private rebuild of its instance).
func (s *Scenario) RunDynamics(cfg DynamicsConfig, seed uint64) ([]DynamicsStep, int, error) {
	alg, err := placement.ByName(cfg.Algorithm)
	if err != nil {
		return nil, 0, fmt.Errorf("trimcaching: %w", err)
	}
	if cfg.SlotS == 0 {
		cfg.SlotS = 5
	}
	// The incremental engine mutates its instance in place; hand it a
	// private copy so s keeps serving the caller afterwards.
	ins, err := s.instance.Rebuild(s.instance.Topology().UserPositions())
	if err != nil {
		return nil, 0, fmt.Errorf("trimcaching: %w", err)
	}
	mode := dynamics.Incremental
	if cfg.Rebuild {
		mode = dynamics.Rebuild
	}
	var trigger dynamics.Trigger = dynamics.NeverTrigger{}
	if cfg.ReplaceThreshold > 0 {
		trigger = dynamics.ThresholdTrigger{Degradation: cfg.ReplaceThreshold}
	}
	caps := make([]int64, len(s.caps))
	copy(caps, s.caps)
	res, err := dynamics.Run(dynamics.Config{
		Instance:      ins,
		Capacities:    caps,
		Tracks:        []dynamics.Track{{Algorithm: alg, Trigger: trigger}},
		DurationMin:   cfg.DurationMin,
		CheckpointMin: cfg.CheckpointMin,
		SlotS:         cfg.SlotS,
		Realizations:  cfg.Realizations,
		Mode:          mode,
	}, rng.New(seed))
	if err != nil {
		return nil, 0, fmt.Errorf("trimcaching: %w", err)
	}
	steps := make([]DynamicsStep, len(res.Steps))
	for si, st := range res.Steps {
		steps[si] = DynamicsStep{TimeMin: st.TimeMin, HitRatio: st.HitRatio[0], Replaced: st.Replaced[0]}
	}
	return steps, res.Replacements[0], nil
}
