package trimcaching

import (
	"fmt"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/shard"
)

// DynamicsConfig parameterizes a mobility timeline run: users walk with the
// paper's pedestrian/bike/vehicle model, the hit ratio is measured at every
// checkpoint (under fading, or by serving a synthesized request trace — see
// Measurement), and the placement is re-initiated when it degrades past a
// threshold (§IV, §VII-E).
type DynamicsConfig struct {
	// Algorithm is the placement algorithm's short name ("spec", "gen", ...).
	Algorithm string
	// DurationMin and CheckpointMin shape the timeline (§VII-E: 120 / 10).
	DurationMin   int
	CheckpointMin int
	// SlotS is the mobility slot length; 0 keeps the paper's 5 s.
	SlotS float64
	// Realizations is the fading realizations per checkpoint measurement.
	Realizations int
	// ReplaceThreshold re-places when the hit ratio falls below
	// (1 - ReplaceThreshold) times the post-placement baseline; 0 never
	// replaces (the Fig. 7 protocol).
	ReplaceThreshold float64
	// Rebuild switches the engine from incremental delta updates (the
	// default) to full instance rebuilds at every checkpoint. Both modes
	// produce identical timelines; Rebuild exists as the reference path.
	Rebuild bool
	// Measurement selects the checkpoint measurement track: "fading" (the
	// default, or ""), where the hit ratio is the analytic objective
	// averaged over Realizations Rayleigh draws, or "trace", where each
	// checkpoint synthesizes a request window (Poisson arrivals, Zipf model
	// popularity) and serves it through the event-driven simulator — the
	// measured QoS hit ratio of actual request traffic. In "trace" mode the
	// replacement trigger fires on windowed measured degradation and
	// Realizations is unused.
	Measurement string
	// RequestsPerUserPerHour is the arrival rate of the synthesized windows
	// ("trace" measurement only); 0 keeps 30.
	RequestsPerUserPerHour float64
	// TriggerWindow smooths the "trace" replacement trigger over this many
	// checkpoints (0 keeps 1: fire on a single degraded measurement).
	TriggerWindow int
	// Shards partitions the area into that many geographic cells, each with
	// its own instance, evaluator, and placement, run in parallel per
	// checkpoint with cross-cell user movement handled by handoff deltas
	// (see internal/shard). 0 or 1 keeps the single whole-area engine (a
	// sharded run with one cell is separately pinned bit-identical to it).
	// Sharding supports the "fading" measurement only; the reported hit
	// ratio is the request-mass-weighted aggregate over cells, and Replaced
	// reports whether any cell re-placed.
	Shards int
	// Workers bounds the sharded engine's cell-level worker pool; 0 means
	// GOMAXPROCS. Results never depend on it. Ignored when Shards <= 1.
	Workers int
}

// DefaultDynamicsConfig mirrors the §VII-E protocol: a two-hour walk in
// five-second slots, measured every ten minutes, placement frozen.
func DefaultDynamicsConfig() DynamicsConfig {
	return DynamicsConfig{
		Algorithm:     "spec",
		DurationMin:   120,
		CheckpointMin: 10,
		SlotS:         5,
		Realizations:  400,
	}
}

// DynamicsStep is one checkpoint of a mobility timeline.
type DynamicsStep struct {
	// TimeMin is minutes since the start.
	TimeMin float64
	// HitRatio is the fading-averaged hit ratio at this checkpoint.
	HitRatio float64
	// Replaced reports whether the placement was re-initiated here.
	Replaced bool
}

// RunDynamics walks the scenario's users through a mobility timeline and
// returns the per-checkpoint hit ratios plus the number of replacements.
// Deterministic in seed; the scenario itself is left untouched (the engine
// runs on a private rebuild of its instance).
func (s *Scenario) RunDynamics(cfg DynamicsConfig, seed uint64) ([]DynamicsStep, int, error) {
	alg, err := placement.ByName(cfg.Algorithm)
	if err != nil {
		return nil, 0, fmt.Errorf("trimcaching: %w", err)
	}
	if cfg.SlotS == 0 {
		cfg.SlotS = 5
	}
	// The incremental engine mutates its instance in place; hand it a
	// private copy so s keeps serving the caller afterwards.
	ins, err := s.instance.Rebuild(s.instance.Topology().UserPositions())
	if err != nil {
		return nil, 0, fmt.Errorf("trimcaching: %w", err)
	}
	mode := dynamics.Incremental
	if cfg.Rebuild {
		mode = dynamics.Rebuild
	}
	var measurement dynamics.Measurement
	var trigger dynamics.Trigger = dynamics.NeverTrigger{}
	switch cfg.Measurement {
	case "", "fading":
		if cfg.ReplaceThreshold > 0 {
			trigger = dynamics.ThresholdTrigger{Degradation: cfg.ReplaceThreshold}
		}
	case "trace":
		rate := cfg.RequestsPerUserPerHour
		if rate == 0 {
			rate = 30
		}
		measurement = &dynamics.TraceMeasurement{
			RequestsPerUserPerHour: rate,
			WindowS:                float64(cfg.CheckpointMin) * 60,
		}
		if cfg.ReplaceThreshold > 0 {
			trigger = &dynamics.TraceTrigger{Window: cfg.TriggerWindow, Degradation: cfg.ReplaceThreshold}
		}
	default:
		return nil, 0, fmt.Errorf("trimcaching: unknown measurement %q (want \"fading\" or \"trace\")", cfg.Measurement)
	}
	caps := make([]int64, len(s.caps))
	copy(caps, s.caps)
	if cfg.Shards > 1 {
		if cfg.Measurement == "trace" {
			return nil, 0, fmt.Errorf("trimcaching: sharded dynamics supports the \"fading\" measurement only")
		}
		res, err := shard.Run(shard.Config{
			Instance:      ins,
			Capacities:    caps,
			Tracks:        []dynamics.Track{{Algorithm: alg, Trigger: trigger}},
			DurationMin:   cfg.DurationMin,
			CheckpointMin: cfg.CheckpointMin,
			SlotS:         cfg.SlotS,
			Realizations:  cfg.Realizations,
			Mode:          mode,
			Shards:        cfg.Shards,
			Workers:       cfg.Workers,
		}, rng.New(seed))
		if err != nil {
			return nil, 0, fmt.Errorf("trimcaching: %w", err)
		}
		steps := make([]DynamicsStep, len(res.Steps))
		for si, st := range res.Steps {
			steps[si] = DynamicsStep{TimeMin: st.TimeMin, HitRatio: st.HitRatio[0], Replaced: st.Replaced[0]}
		}
		return steps, res.Replacements[0], nil
	}
	res, err := dynamics.Run(dynamics.Config{
		Instance:      ins,
		Capacities:    caps,
		Tracks:        []dynamics.Track{{Algorithm: alg, Trigger: trigger}},
		DurationMin:   cfg.DurationMin,
		CheckpointMin: cfg.CheckpointMin,
		SlotS:         cfg.SlotS,
		Realizations:  cfg.Realizations,
		Mode:          mode,
		Measurement:   measurement,
	}, rng.New(seed))
	if err != nil {
		return nil, 0, fmt.Errorf("trimcaching: %w", err)
	}
	steps := make([]DynamicsStep, len(res.Steps))
	for si, st := range res.Steps {
		steps[si] = DynamicsStep{TimeMin: st.TimeMin, HitRatio: st.HitRatio[0], Replaced: st.Replaced[0]}
	}
	return steps, res.Replacements[0], nil
}
