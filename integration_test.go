package trimcaching

// Cross-subsystem integration tests: these tie the public API, the
// placement algorithms, the block-level view, and the serving simulators
// together on shared instances and assert system-level invariants.

import (
	"testing"

	"trimcaching/internal/placement"
)

func TestObjectiveAndServingAgreeOnOrdering(t *testing.T) {
	// The closed-form objective (eq. 2) and the request-level serving
	// simulator are different measurements of the same system; algorithm
	// orderings must agree.
	lib, err := NewSpecialLibrary(8, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultScenarioConfig()
	cfg.CapacityBytes = 500_000_000 // binding
	sc, err := BuildScenario(lib, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	serve := DefaultServeConfig()
	serve.RequestsPerUserPerHour = 40

	type measure struct{ objective, served float64 }
	results := map[string]measure{}
	for _, name := range []string{"gen", "popularity"} {
		p, _, err := sc.Place(name)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := sc.HitRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.Serve(p, serve, 13)
		if err != nil {
			t.Fatal(err)
		}
		results[name] = measure{objective: hr, served: res.HitRatio}
	}
	if results["gen"].objective <= results["popularity"].objective {
		t.Fatalf("objective ordering violated: %+v", results)
	}
	if results["gen"].served <= results["popularity"].served {
		t.Fatalf("serving ordering violated: %+v", results)
	}
}

func TestBlockViewStorageConsistencyAcrossAlgorithms(t *testing.T) {
	// For every algorithm's output, the P1.2 block-view storage must equal
	// the P1.1 deduplicated storage on every server — the paper's
	// constraint equivalence, end to end.
	lib, err := NewSpecialLibrary(6, 21)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultScenarioConfig()
	cfg.CapacityBytes = 600_000_000
	sc, err := BuildScenario(lib, cfg, 22)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"spec", "gen", "gen-ratio", "independent", "popularity"} {
		p, _, err := sc.Place(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y, err := placement.BlockView(lib, p)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < sc.Servers(); m++ {
			want, err := sc.ServerStorage(p, m)
			if err != nil {
				t.Fatal(err)
			}
			if got := y.StorageBytes(lib, m); got != want {
				t.Fatalf("%s server %d: block view %d != model view %d", name, m, got, want)
			}
		}
	}
}

func TestSpecHandlesLoRALibrary(t *testing.T) {
	// A LoRA library has exactly one shared footprint (the foundation), so
	// the Spec combination set is tiny and the algorithm must be fast and
	// dominate independent caching massively under a one-model budget.
	lib, err := NewLoRALibrary(30)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultScenarioConfig()
	cfg.Servers = 5
	cfg.Users = 15
	cfg.CapacityBytes = 9_000_000_000 // ~1.3 full copies, or foundation + all adapters
	cfg.DeadlineMinS = 60
	cfg.DeadlineMaxS = 180
	cfg.InferMinS = 1
	cfg.InferMaxS = 5
	sc, err := BuildScenario(lib, cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	spec, specTime, err := sc.Place("spec")
	if err != nil {
		t.Fatal(err)
	}
	if specTime.Seconds() > 5 {
		t.Fatalf("Spec took %v on a single-footprint library", specTime)
	}
	ind, _, err := sc.Place("independent")
	if err != nil {
		t.Fatal(err)
	}
	hrSpec, err := sc.HitRatio(spec)
	if err != nil {
		t.Fatal(err)
	}
	hrInd, err := sc.HitRatio(ind)
	if err != nil {
		t.Fatal(err)
	}
	if hrSpec < 2*hrInd {
		t.Fatalf("LoRA regime: Spec %v should dwarf Independent %v", hrSpec, hrInd)
	}
}

func TestWalkThenServe(t *testing.T) {
	// The serving simulator must work on walked (rebuilt) scenarios too.
	lib, err := NewSpecialLibrary(4, 41)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario(lib, DefaultScenarioConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := sc.Place("gen")
	if err != nil {
		t.Fatal(err)
	}
	walk, err := sc.StartWalk(43)
	if err != nil {
		t.Fatal(err)
	}
	if err := walk.Advance(1200); err != nil {
		t.Fatal(err)
	}
	moved, err := walk.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := moved.Serve(p, DefaultServeConfig(), 44)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no traffic after walking")
	}
}
