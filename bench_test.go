package trimcaching

// The benchmark harness regenerates every table and figure of the paper
// (§VII). One testing.B benchmark per figure drives the corresponding
// experiment at reduced fidelity (benchmarks measure the machinery; the CLI
// reproduces the full curves: `go run ./cmd/trimcaching all`), plus
// micro-benchmarks for the placement algorithms and the Monte-Carlo
// evaluator.

import (
	"testing"

	"trimcaching/internal/experiments"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/sim"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// benchOptions keeps per-iteration cost low while exercising the full
// pipeline of each figure.
func benchOptions() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Topologies = 2
	opt.Realizations = 20
	opt.LibraryPoolPerFamily = 20
	opt.Workers = 1
	return opt
}

func benchFigure(b *testing.B, name string) {
	b.Helper()
	r, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := r.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper figure.

func BenchmarkFig1(b *testing.B)  { benchFigure(b, "fig1") }
func BenchmarkFig4a(b *testing.B) { benchFigure(b, "fig4a") }
func BenchmarkFig4b(b *testing.B) { benchFigure(b, "fig4b") }
func BenchmarkFig4c(b *testing.B) { benchFigure(b, "fig4c") }
func BenchmarkFig5a(b *testing.B) { benchFigure(b, "fig5a") }
func BenchmarkFig5b(b *testing.B) { benchFigure(b, "fig5b") }
func BenchmarkFig5c(b *testing.B) { benchFigure(b, "fig5c") }
func BenchmarkFig6a(b *testing.B) { benchFigure(b, "fig6a") }
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "fig6b") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "fig7") }

// Ablation benchmarks for the design choices called out in DESIGN.md.

func BenchmarkAblateEpsilon(b *testing.B)   { benchFigure(b, "ablate-epsilon") }
func BenchmarkAblateZipf(b *testing.B)      { benchFigure(b, "ablate-zipf") }
func BenchmarkAblateSharing(b *testing.B)   { benchFigure(b, "ablate-sharing") }
func BenchmarkAblateLazy(b *testing.B)      { benchFigure(b, "ablate-lazy") }
func BenchmarkAblateRatio(b *testing.B)     { benchFigure(b, "ablate-ratio") }
func BenchmarkAblateDeadline(b *testing.B)  { benchFigure(b, "ablate-deadline") }
func BenchmarkAblateShadowing(b *testing.B) { benchFigure(b, "ablate-shadowing") }
func BenchmarkAblateHetero(b *testing.B)    { benchFigure(b, "ablate-hetero") }
func BenchmarkAblateLayout(b *testing.B)    { benchFigure(b, "ablate-layout") }
func BenchmarkFig7Replace(b *testing.B)     { benchFigure(b, "fig7-replace") }
func BenchmarkServeLoad(b *testing.B)       { benchFigure(b, "serve-load") }

// benchScenario builds a fixed paper-sized instance for micro-benchmarks.
func benchScenario(b *testing.B) *Scenario {
	b.Helper()
	lib, err := NewSpecialLibrary(10, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultScenarioConfig()
	cfg.CapacityBytes = 750_000_000
	sc, err := BuildScenario(lib, cfg, 2)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

func benchPlace(b *testing.B, alg string) {
	b.Helper()
	sc := benchScenario(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, _, err := sc.Place(alg); err != nil {
			b.Fatal(err)
		}
	}
}

// Placement algorithm micro-benchmarks (M=10, K=30, I=30, Q=0.75 GB).

func BenchmarkPlaceSpec(b *testing.B)        { benchPlace(b, "spec") }
func BenchmarkPlaceGenLazy(b *testing.B)     { benchPlace(b, "gen") }
func BenchmarkPlaceGenNaive(b *testing.B)    { benchPlace(b, "gen-naive") }
func BenchmarkPlaceIndependent(b *testing.B) { benchPlace(b, "independent") }
func BenchmarkPlacePopularity(b *testing.B)  { benchPlace(b, "popularity") }

func BenchmarkHitRatio(b *testing.B) {
	sc := benchScenario(b)
	p, _, err := sc.Place("gen")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := sc.HitRatio(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFadingEvaluation(b *testing.B) {
	sc := benchScenario(b)
	p, _, err := sc.Place("gen")
	if err != nil {
		b.Fatal(err)
	}
	eval := sc.evaluator
	placements := []*placement.Placement{p}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := sim.EvaluateUnderFading(eval, placements, 10, rng.New(uint64(n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFadedReach(b *testing.B) {
	sc := benchScenario(b)
	ins := sc.instance
	buf := ins.MakeReachBuffer()
	gains := scenario.SampleGains(ins.NumServers(), ins.NumUsers(), rng.New(3))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := ins.FadedReach(gains, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLibraryGenerationSpecial(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := NewSpecialLibrary(100, uint64(n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLibraryGenerationGeneral(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := NewGeneralLibrary(30, uint64(n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServe(b *testing.B) {
	sc := benchScenario(b)
	p, _, err := sc.Place("gen")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultServeConfig()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := sc.Serve(p, cfg, uint64(n)); err != nil {
			b.Fatal(err)
		}
	}
}

// loraTrialConfig is the §I LoRA regime at large-library scale:
// M=10, K=300, I=1000.
func loraTrialConfig(b *testing.B) sim.TrialConfig {
	b.Helper()
	lib, err := NewLoRALibrary(1000)
	if err != nil {
		b.Fatal(err)
	}
	w := wireless.DefaultConfig()
	return sim.TrialConfig{
		Library: lib,
		Scenario: scenario.GenConfig{
			Topology: topology.Config{AreaSideM: 1000, NumServers: 10, NumUsers: 300, CoverageRadiusM: w.CoverageRadiusM},
			Wireless: w,
			Workload: workload.DefaultConfig(),
		},
		CapacityBytes: 8 << 30,
		Algorithms:    []placement.Algorithm{placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}}},
		Topologies:    2,
		Realizations:  50,
		Seed:          1,
	}
}

// BenchmarkSimRunLoRA drives the full Monte-Carlo harness (generate →
// place → evaluate under fading) at LoRA scale end-to-end.
func BenchmarkSimRunLoRA(b *testing.B) {
	cfg := loraTrialConfig(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
