// LLM edge caching: the LoRA regime the paper motivates in §I. A 3.25B-
// parameter foundation model is shared by dozens of personalized adapters
// (>99% of parameters frozen); TrimCaching stores the backbone once per
// edge server, while independent caching would store a full copy per model
// and fit almost nothing.
package main

import (
	"fmt"
	"os"

	"trimcaching"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "llmedge:", err)
		os.Exit(1)
	}
}

func run() error {
	// 60 personalized LLMs: one Gemini-Nano-2-sized foundation model plus
	// 60 LoRA adapters at 0.5% of its size each.
	lib, err := trimcaching.NewLoRALibrary(60)
	if err != nil {
		return err
	}
	st := lib.Stats()
	fmt.Printf("LLM library: %d personalized models\n", st.NumModels)
	fmt.Printf("  naive storage:  %7.1f GB (every model as a full copy)\n", float64(st.SumModelBytes)/1e9)
	fmt.Printf("  deduplicated:   %7.1f GB (foundation stored once + adapters)\n", float64(st.UniqueBytes)/1e9)
	fmt.Printf("  savings:        %6.1fx\n\n", float64(st.SumModelBytes)/float64(st.UniqueBytes))

	// Edge servers with 10 GB model storage: barely one full LLM each if
	// cached independently, but the whole adapter catalogue with sharing.
	cfg := trimcaching.DefaultScenarioConfig()
	cfg.Servers = 6
	cfg.Users = 24
	cfg.CapacityBytes = 10_000_000_000
	// A 6.5 GB model takes tens of seconds over the air: LLM provisioning
	// tolerates a 1–3 minute deadline, with seconds of on-device warm-up.
	cfg.DeadlineMinS = 60
	cfg.DeadlineMaxS = 180
	cfg.InferMinS = 1
	cfg.InferMaxS = 5
	sc, err := trimcaching.BuildScenario(lib, cfg, 11)
	if err != nil {
		return err
	}

	fmt.Printf("%-22s %10s %16s\n", "algorithm", "hit ratio", "models/server")
	for _, name := range []string{"gen", "independent", "popularity"} {
		p, _, err := sc.Place(name)
		if err != nil {
			return err
		}
		hr, err := sc.HitRatio(p)
		if err != nil {
			return err
		}
		var placed int
		for m := 0; m < sc.Servers(); m++ {
			for i := 0; i < sc.Models(); i++ {
				if p.Has(m, i) {
					placed++
				}
			}
		}
		fmt.Printf("%-22s %10.4f %16.1f\n", name, hr, float64(placed)/float64(sc.Servers()))
	}
	fmt.Println("\nWith parameter sharing a 10 GB edge server hosts almost the entire adapter")
	fmt.Println("catalogue; independent caching fits a single full LLM per server.")
	return nil
}
