// Online serving: drive the dynamics engine's trace-driven track. Users
// walk the paper's mobility model while every checkpoint synthesizes a
// window of model-download requests (Poisson arrivals, Zipf popularity)
// and serves it through the event-driven simulator under processor-shared
// spectrum. The placement reacts to the *measured* QoS hit ratio: when its
// windowed average degrades past a threshold, the engine re-places and
// re-bases. Compare how often each algorithm has to re-place and how much
// hit ratio it holds onto while serving live traffic.
package main

import (
	"fmt"
	"os"

	"trimcaching"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "onlineserving:", err)
		os.Exit(1)
	}
}

func run() error {
	lib, err := trimcaching.NewSpecialLibrary(10, 2)
	if err != nil {
		return err
	}
	cfg := trimcaching.DefaultScenarioConfig()
	cfg.CapacityBytes = 750_000_000
	sc, err := trimcaching.BuildScenario(lib, cfg, 21)
	if err != nil {
		return err
	}

	dyn := trimcaching.DefaultDynamicsConfig()
	dyn.Measurement = "trace"
	dyn.RequestsPerUserPerHour = 60
	dyn.DurationMin = 60
	dyn.CheckpointMin = 10
	dyn.ReplaceThreshold = 0.1 // re-place on 10% measured degradation...
	dyn.TriggerWindow = 2      // ...sustained over two checkpoints

	fmt.Printf("online serving on M=%d servers, K=%d walking users: each checkpoint\n",
		sc.Servers(), sc.Users())
	fmt.Printf("serves a synthesized %d-minute window at %.0f requests/user/hour\n\n",
		dyn.CheckpointMin, dyn.RequestsPerUserPerHour)

	for _, name := range []string{"gen", "independent", "popularity"} {
		dyn.Algorithm = name
		steps, replacements, err := sc.RunDynamics(dyn, 77)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n  t(min) ", name)
		for _, st := range steps {
			fmt.Printf("%7.0f", st.TimeMin)
		}
		fmt.Printf("\n  hit    ")
		for _, st := range steps {
			fmt.Printf("%7.3f", st.HitRatio)
		}
		fmt.Printf("\n          ")
		for _, st := range steps {
			if st.Replaced {
				fmt.Printf("%7s", "^re")
			} else {
				fmt.Printf("%7s", "")
			}
		}
		fmt.Printf("\n  replacements: %d\n\n", replacements)
	}
	fmt.Println("The engine measures placements against served request traffic, not a")
	fmt.Println("Monte-Carlo average: replacement fires only when live traffic degrades.")
	return nil
}
