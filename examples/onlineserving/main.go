// Online serving: replay a Poisson stream of model-download requests
// against optimized and baseline placements, reporting the request routes
// (direct / backhaul relay / cloud fallback) and download latency
// percentiles. This exercises a placement as a running system rather than
// as an objective value.
package main

import (
	"fmt"
	"os"

	"trimcaching"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "onlineserving:", err)
		os.Exit(1)
	}
}

func run() error {
	lib, err := trimcaching.NewSpecialLibrary(10, 2)
	if err != nil {
		return err
	}
	cfg := trimcaching.DefaultScenarioConfig()
	cfg.CapacityBytes = 750_000_000
	sc, err := trimcaching.BuildScenario(lib, cfg, 21)
	if err != nil {
		return err
	}

	serve := trimcaching.DefaultServeConfig()
	serve.RequestsPerUserPerHour = 30
	serve.DurationS = 2 * 3600

	fmt.Printf("replaying ~%d requests over %v hours against M=%d servers\n\n",
		int(serve.RequestsPerUserPerHour*serve.DurationS/3600)*sc.Users(),
		serve.DurationS/3600, sc.Servers())
	fmt.Printf("%-14s %8s %8s %8s %8s %10s %9s %9s %9s\n",
		"algorithm", "direct", "relay", "cloud", "QoS-hit", "hit ratio", "p50", "p95", "p99")

	for _, name := range []string{"gen", "independent", "popularity"} {
		p, _, err := sc.Place(name)
		if err != nil {
			return err
		}
		res, err := sc.Serve(p, serve, 77)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %8d %8d %8d %8d %10.4f %9s %9s %9s\n",
			name, res.Direct, res.Relay, res.Cloud, res.QoSHits, res.HitRatio,
			res.P50Latency.Round(1_000_000), res.P95Latency.Round(1_000_000),
			res.P99Latency.Round(1_000_000))
	}
	fmt.Println("\nTrimCaching turns cloud fallbacks into direct edge downloads, which is")
	fmt.Println("exactly where the latency percentiles and the QoS hit ratio improve.")
	return nil
}
