// Replacement control loop: the paper decides placement on a snapshot of
// user locations and re-initiates it only when performance degrades (§IV),
// because every replacement ships gigabytes over the backbone. This example
// runs that loop with the public API: walk users for three hours, watch the
// frozen placement degrade, and re-place only when the hit ratio drops more
// than 10% below its post-placement baseline.
package main

import (
	"fmt"
	"os"

	"trimcaching"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replacement:", err)
		os.Exit(1)
	}
}

func run() error {
	lib, err := trimcaching.NewSpecialLibrary(10, 3)
	if err != nil {
		return err
	}
	cfg := trimcaching.DefaultScenarioConfig()
	cfg.Users = 12
	sc, err := trimcaching.BuildScenario(lib, cfg, 77)
	if err != nil {
		return err
	}

	const (
		realizations = 300
		threshold    = 0.10 // replace on 10% degradation
	)
	p, _, err := sc.Place("gen")
	if err != nil {
		return err
	}
	baseline, err := sc.HitRatioUnderFading(p, realizations, 5)
	if err != nil {
		return err
	}
	fmt.Printf("t=  0 min: hit ratio %.4f (initial placement)\n", baseline)

	walk, err := sc.StartWalk(31)
	if err != nil {
		return err
	}
	replacements := 0
	for minute := 15; minute <= 180; minute += 15 {
		if err := walk.Advance(900); err != nil {
			return err
		}
		snapshot, err := walk.Scenario()
		if err != nil {
			return err
		}
		hr, err := snapshot.HitRatioUnderFading(p, realizations, 5)
		if err != nil {
			return err
		}
		marker := ""
		if hr < (1-threshold)*baseline {
			// Re-place on the current snapshot and reset the baseline.
			p, _, err = snapshot.Place("gen")
			if err != nil {
				return err
			}
			hr, err = snapshot.HitRatioUnderFading(p, realizations, 5)
			if err != nil {
				return err
			}
			baseline = hr
			replacements++
			marker = "  <- replaced"
		}
		fmt.Printf("t=%3d min: hit ratio %.4f%s\n", minute, hr, marker)
	}
	fmt.Printf("\n%d replacements in 3 hours — the placement survives long\n", replacements)
	fmt.Println("stretches of mobility, so backbone bandwidth is spent rarely (§IV, §VII-E).")
	return nil
}
