// Mobility robustness (the paper's Fig. 7 scenario as a library user would
// run it): place models once, let pedestrians, bikes, and vehicles move for
// two hours, and watch how well the frozen placement keeps serving.
package main

import (
	"fmt"
	"os"

	"trimcaching"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mobility:", err)
		os.Exit(1)
	}
}

func run() error {
	lib, err := trimcaching.NewSpecialLibrary(10, 1)
	if err != nil {
		return err
	}
	cfg := trimcaching.DefaultScenarioConfig()
	cfg.Users = 10 // the paper's Fig. 7 uses K = 10
	sc, err := trimcaching.BuildScenario(lib, cfg, 99)
	if err != nil {
		return err
	}

	// Place once at t = 0 with TrimCaching Spec; never replace.
	p, _, err := sc.Place("spec")
	if err != nil {
		return err
	}
	initial, err := sc.HitRatioUnderFading(p, 400, 5)
	if err != nil {
		return err
	}
	fmt.Printf("t=  0 min: cache hit ratio %.4f (placement frozen from here on)\n", initial)

	walk, err := sc.StartWalk(123)
	if err != nil {
		return err
	}
	for minute := 10; minute <= 120; minute += 10 {
		if err := walk.Advance(600); err != nil { // 10 minutes
			return err
		}
		snapshot, err := walk.Scenario()
		if err != nil {
			return err
		}
		hr, err := snapshot.HitRatioUnderFading(p, 400, 5)
		if err != nil {
			return err
		}
		fmt.Printf("t=%3d min: cache hit ratio %.4f (%+.1f%% vs t=0)\n",
			minute, hr, 100*(hr-initial)/initial)
	}
	fmt.Println("\nThe placement degrades only mildly over two hours of movement, so")
	fmt.Println("model replacement does not need to run frequently (§VII-E).")
	return nil
}
