// Mobility robustness (the paper's Fig. 7 scenario as a library user would
// run it): place models once, let pedestrians, bikes, and vehicles move for
// two hours, and watch how well the frozen placement keeps serving. The
// whole timeline is one RunDynamics call on the incremental dynamics
// engine — the walk, the per-checkpoint instance refresh, and the fading
// measurement all happen inside it.
//
// With -shards N the same walk runs on the sharded multi-cell engine: the
// area splits into N geographic cells, each with its own instance and
// placement, cross-cell walkers hand off between cells, and the reported
// hit ratio is the request-mass-weighted aggregate over cells.
package main

import (
	"flag"
	"fmt"
	"os"

	"trimcaching"
)

func main() {
	shards := flag.Int("shards", 1, "geographic cells to partition the area into (1 = the single whole-area engine)")
	users := flag.Int("users", 10, "walking users K (the paper's Fig. 7 uses 10)")
	flag.Parse()
	if err := run(*shards, *users); err != nil {
		fmt.Fprintln(os.Stderr, "mobility:", err)
		os.Exit(1)
	}
}

func run(shards, users int) error {
	lib, err := trimcaching.NewSpecialLibrary(10, 1)
	if err != nil {
		return err
	}
	cfg := trimcaching.DefaultScenarioConfig()
	cfg.Users = users
	sc, err := trimcaching.BuildScenario(lib, cfg, 99)
	if err != nil {
		return err
	}

	// Place once at t = 0 with TrimCaching Spec; never replace
	// (ReplaceThreshold 0 freezes the placement, the Fig. 7 protocol).
	dyn := trimcaching.DefaultDynamicsConfig()
	dyn.Algorithm = "spec"
	dyn.Realizations = 400
	dyn.Shards = shards
	steps, _, err := sc.RunDynamics(dyn, 123)
	if err != nil {
		return err
	}

	initial := steps[0].HitRatio
	label := ""
	if shards > 1 {
		label = fmt.Sprintf(" (aggregate over %d cells)", shards)
	}
	fmt.Printf("t=  0 min: cache hit ratio %.4f%s (placement frozen from here on)\n", initial, label)
	for _, s := range steps[1:] {
		fmt.Printf("t=%3.0f min: cache hit ratio %.4f (%+.1f%% vs t=0)\n",
			s.TimeMin, s.HitRatio, 100*(s.HitRatio-initial)/initial)
	}
	fmt.Println("\nThe placement degrades only mildly over two hours of movement, so")
	fmt.Println("model replacement does not need to run frequently (§VII-E).")
	return nil
}
