// Quickstart: build a parameter-sharing model library, sample a wireless
// edge deployment, place models with every algorithm, and compare cache hit
// ratios. This is the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"os"

	"trimcaching"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 30 downstream models fine-tuned from ResNet-18/34/50 by bottom-layer
	// freezing — the paper's special case.
	lib, err := trimcaching.NewSpecialLibrary(10, 1)
	if err != nil {
		return err
	}
	st := lib.Stats()
	fmt.Printf("library: %d models, %.2f GB as independent files, %.2f GB deduplicated (%.0f%% shared on average)\n",
		st.NumModels, float64(st.SumModelBytes)/1e9, float64(st.UniqueBytes)/1e9, 100*st.MeanSharedFrac)

	// A 10-server, 30-user deployment with 0.75 GB of storage per server —
	// tight enough that placement decisions matter.
	cfg := trimcaching.DefaultScenarioConfig()
	cfg.CapacityBytes = 750_000_000
	sc, err := trimcaching.BuildScenario(lib, cfg, 42)
	if err != nil {
		return err
	}
	fmt.Printf("scenario: M=%d servers, K=%d users, I=%d models, Q=%.2f GB/server\n\n",
		sc.Servers(), sc.Users(), sc.Models(), float64(cfg.CapacityBytes)/1e9)

	fmt.Printf("%-22s %10s %14s %12s\n", "algorithm", "hit ratio", "under fading", "time")
	for _, name := range []string{"spec", "gen", "independent", "popularity"} {
		p, elapsed, err := sc.Place(name)
		if err != nil {
			return err
		}
		hr, err := sc.HitRatio(p)
		if err != nil {
			return err
		}
		faded, err := sc.HitRatioUnderFading(p, 500, 7)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %10.4f %14.4f %12s\n", name, hr, faded, elapsed.Round(10_000))
	}
	fmt.Println("\nTrimCaching stores shared parameter blocks once per server, so it fits")
	fmt.Println("more models into the same storage and serves more requests in time.")
	return nil
}
