package libgen

import (
	"fmt"
	"sort"
)

// CIFAR100Superclasses maps each of the 20 CIFAR-100 superclasses to its 5
// classes. The paper's downstream tasks are per-class classifiers (§VII-A),
// and the general-case library derives models along this hierarchy
// (Table I).
var CIFAR100Superclasses = map[string][]string{
	"aquatic mammals":                {"beaver", "dolphin", "otter", "seal", "whale"},
	"fish":                           {"aquarium fish", "flatfish", "ray", "shark", "trout"},
	"flowers":                        {"orchids", "poppies", "roses", "sunflowers", "tulips"},
	"food containers":                {"bottles", "bowls", "cans", "cups", "plates"},
	"fruit and vegetables":           {"apples", "mushrooms", "oranges", "pears", "sweet peppers"},
	"household electrical devices":   {"clock", "computer keyboard", "lamp", "telephone", "television"},
	"household furniture":            {"bed", "chair", "couch", "table", "wardrobe"},
	"insects":                        {"bee", "beetle", "butterfly", "caterpillar", "cockroach"},
	"large carnivores":               {"bear", "leopard", "lion", "tiger", "wolf"},
	"large man-made outdoor things":  {"bridge", "castle", "house", "road", "skyscraper"},
	"large natural outdoor scenes":   {"cloud", "forest", "mountain", "plain", "sea"},
	"large omnivores and herbivores": {"camel", "cattle", "chimpanzee", "elephant", "kangaroo"},
	"medium-sized mammals":           {"fox", "porcupine", "possum", "raccoon", "skunk"},
	"non-insect invertebrates":       {"crab", "lobster", "snail", "spider", "worm"},
	"people":                         {"baby", "boy", "girl", "man", "woman"},
	"reptiles":                       {"crocodile", "dinosaur", "lizard", "snake", "turtle"},
	"small mammals":                  {"hamster", "mouse", "rabbit", "shrew", "squirrel"},
	"trees":                          {"maple", "oak", "palm", "pine", "willow"},
	"vehicles 1":                     {"bicycle", "bus", "motorcycle", "pickup truck", "train"},
	"vehicles 2":                     {"lawn-mower", "rocket", "streetcar", "tank", "tractor"},
}

// TableI is the paper's Table I: the general case first fully fine-tunes a
// model per first-round superclass, then derives per-class models for the
// related second-round superclasses by bottom-layer freezing from that
// first-round model.
var TableI = map[string][]string{
	"fruit and vegetables": {"flowers", "trees"},
	"medium-sized mammals": {
		"large carnivores", "large omnivores and herbivores",
		"people", "reptiles", "small mammals",
	},
	"vehicles 2": {"large man-made outdoor things", "vehicles 1"},
}

// CIFAR100Classes returns all 100 class names, ordered by superclass name
// then class position — a deterministic ordering for library generation.
func CIFAR100Classes() []string {
	supers := make([]string, 0, len(CIFAR100Superclasses))
	for s := range CIFAR100Superclasses {
		supers = append(supers, s)
	}
	sort.Strings(supers)
	classes := make([]string, 0, 100)
	for _, s := range supers {
		classes = append(classes, CIFAR100Superclasses[s]...)
	}
	return classes
}

// validateTableI checks that every superclass named by Table I exists in the
// CIFAR-100 hierarchy. It is exercised by tests and by the general-case
// generator.
func validateTableI() error {
	for first, seconds := range TableI {
		if _, ok := CIFAR100Superclasses[first]; !ok {
			return fmt.Errorf("libgen: Table I first-round superclass %q not in CIFAR-100", first)
		}
		for _, s := range seconds {
			if _, ok := CIFAR100Superclasses[s]; !ok {
				return fmt.Errorf("libgen: Table I second-round superclass %q not in CIFAR-100", s)
			}
		}
	}
	return nil
}
