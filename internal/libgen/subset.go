package libgen

import (
	"fmt"
	"sort"

	"trimcaching/internal/modellib"
	"trimcaching/internal/rng"
)

// Subset rebuilds a library containing only the given models (in the given
// order), dropping unreferenced blocks and reindexing IDs. The paper's
// placement experiments run on I = 30 models drawn from the 300-model
// library (§VII).
func Subset(lib *modellib.Library, modelIDs []int) (*modellib.Library, error) {
	if len(modelIDs) == 0 {
		return nil, fmt.Errorf("libgen: subset needs at least one model")
	}
	seen := make(map[int]bool, len(modelIDs))
	blockMap := make(map[int]int)
	var blocks []modellib.Block
	models := make([]modellib.Model, 0, len(modelIDs))
	for _, id := range modelIDs {
		if id < 0 || id >= lib.NumModels() {
			return nil, fmt.Errorf("libgen: subset model %d out of range [0,%d)", id, lib.NumModels())
		}
		if seen[id] {
			return nil, fmt.Errorf("libgen: subset repeats model %d", id)
		}
		seen[id] = true
		src := lib.Model(id)
		ids := make([]int, 0, len(src.Blocks))
		for _, j := range src.Blocks {
			nj, ok := blockMap[j]
			if !ok {
				nj = len(blocks)
				blockMap[j] = nj
				b := lib.Block(j)
				blocks = append(blocks, modellib.Block{ID: nj, SizeBytes: b.SizeBytes, Label: b.Label})
			}
			ids = append(ids, nj)
		}
		models = append(models, modellib.Model{
			ID:     len(models),
			Name:   src.Name,
			Family: src.Family,
			Blocks: ids,
		})
	}
	out, err := modellib.New(blocks, models)
	if err != nil {
		return nil, fmt.Errorf("libgen: rebuild subset: %w", err)
	}
	return out, nil
}

// TakeStratified samples n models stratified by family (round-robin over
// families, random within each family) and returns the subset library.
func TakeStratified(lib *modellib.Library, n int, src *rng.Source) (*modellib.Library, error) {
	if n <= 0 || n > lib.NumModels() {
		return nil, fmt.Errorf("libgen: take %d of %d models", n, lib.NumModels())
	}
	byFamily := map[string][]int{}
	for i := 0; i < lib.NumModels(); i++ {
		fam := lib.Model(i).Family
		byFamily[fam] = append(byFamily[fam], i)
	}
	families := make([]string, 0, len(byFamily))
	for fam := range byFamily {
		families = append(families, fam)
	}
	sort.Strings(families)
	for _, fam := range families {
		ids := byFamily[fam]
		src.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	}

	picked := make([]int, 0, n)
	for len(picked) < n {
		progress := false
		for _, fam := range families {
			ids := byFamily[fam]
			if len(ids) == 0 {
				continue
			}
			picked = append(picked, ids[0])
			byFamily[fam] = ids[1:]
			progress = true
			if len(picked) == n {
				break
			}
		}
		if !progress {
			return nil, fmt.Errorf("libgen: exhausted families before picking %d models", n)
		}
	}
	sort.Ints(picked)
	return Subset(lib, picked)
}
