// Package libgen generates parameter-sharing model libraries matching the
// paper's simulation setup (§VII-A): the special case (ResNet-18/34/50
// families fine-tuned by bottom-layer freezing from three pre-trained
// models) and the general case (two-round fine-tuning per Table I), plus a
// LoRA-style LLM library as an extension.
//
// The paper builds its library from real fine-tuned checkpoints. The
// placement problem consumes only block sizes and the sharing structure, so
// this package reproduces those exactly: per-layer parameter counts are
// computed from the actual ResNet architectures (conv + batch-norm + FC
// parameter layers), and freeze depths are drawn from the paper's ranges.
package libgen

import (
	"fmt"
)

// ResNetVariant selects one of the three backbone families used in §VII-A.
type ResNetVariant int

// The three ResNet variants of the paper.
const (
	ResNet18 ResNetVariant = iota + 1
	ResNet34
	ResNet50
)

// String returns the canonical lowercase name of the variant.
func (v ResNetVariant) String() string {
	switch v {
	case ResNet18:
		return "resnet18"
	case ResNet34:
		return "resnet34"
	case ResNet50:
		return "resnet50"
	default:
		return fmt.Sprintf("resnet(%d)", int(v))
	}
}

// Layer is one trainable parameter layer (= one parameter block in the
// paper's model): a convolution, a batch-norm, or the final FC layer.
type Layer struct {
	Label  string // e.g. "layer3.1.conv2"
	Params int64  // number of trainable parameters
}

// layerBuilder accumulates parameter layers for a ResNet.
type layerBuilder struct {
	layers []Layer
}

func (b *layerBuilder) conv(label string, k, in, out int) {
	b.layers = append(b.layers, Layer{Label: label, Params: int64(k) * int64(k) * int64(in) * int64(out)})
}

func (b *layerBuilder) bn(label string, ch int) {
	// Batch norm has a scale and a shift per channel.
	b.layers = append(b.layers, Layer{Label: label, Params: 2 * int64(ch)})
}

func (b *layerBuilder) fc(label string, in, out int) {
	b.layers = append(b.layers, Layer{Label: label, Params: int64(in)*int64(out) + int64(out)})
}

// basicBlock appends a torchvision BasicBlock: two 3x3 convs (+BN), with a
// 1x1 downsample conv (+BN) when the input shape changes.
func (b *layerBuilder) basicBlock(prefix string, in, out int, downsample bool) {
	b.conv(prefix+".conv1", 3, in, out)
	b.bn(prefix+".bn1", out)
	b.conv(prefix+".conv2", 3, out, out)
	b.bn(prefix+".bn2", out)
	if downsample {
		b.conv(prefix+".downsample.0", 1, in, out)
		b.bn(prefix+".downsample.1", out)
	}
}

// bottleneck appends a torchvision Bottleneck: 1x1 reduce, 3x3, 1x1 expand
// (expansion 4), each with BN, plus an optional downsample path.
func (b *layerBuilder) bottleneck(prefix string, in, mid int, downsample bool) {
	out := 4 * mid
	b.conv(prefix+".conv1", 1, in, mid)
	b.bn(prefix+".bn1", mid)
	b.conv(prefix+".conv2", 3, mid, mid)
	b.bn(prefix+".bn2", mid)
	b.conv(prefix+".conv3", 1, mid, out)
	b.bn(prefix+".bn3", out)
	if downsample {
		b.conv(prefix+".downsample.0", 1, in, out)
		b.bn(prefix+".downsample.1", out)
	}
}

// ResNetLayers returns the ordered trainable parameter layers of the variant
// with a classification head of numClasses outputs (the paper fine-tunes on
// CIFAR-100 tasks). Layer order is bottom (input) to top (head), matching
// the paper's bottom-layer freezing.
func ResNetLayers(v ResNetVariant, numClasses int) ([]Layer, error) {
	if numClasses <= 0 {
		return nil, fmt.Errorf("libgen: numClasses must be positive, got %d", numClasses)
	}
	var blocksPerStage [4]int
	bottleneckArch := false
	switch v {
	case ResNet18:
		blocksPerStage = [4]int{2, 2, 2, 2}
	case ResNet34:
		blocksPerStage = [4]int{3, 4, 6, 3}
	case ResNet50:
		blocksPerStage = [4]int{3, 4, 6, 3}
		bottleneckArch = true
	default:
		return nil, fmt.Errorf("libgen: unknown ResNet variant %d", int(v))
	}

	var b layerBuilder
	b.conv("conv1", 7, 3, 64)
	b.bn("bn1", 64)

	stageMid := [4]int{64, 128, 256, 512}
	in := 64
	for stage := 0; stage < 4; stage++ {
		mid := stageMid[stage]
		for blk := 0; blk < blocksPerStage[stage]; blk++ {
			prefix := fmt.Sprintf("layer%d.%d", stage+1, blk)
			if bottleneckArch {
				out := 4 * mid
				// The first bottleneck of every stage changes channel count
				// (64→256 in stage 1) or strides, so it needs a downsample.
				down := blk == 0
				b.bottleneck(prefix, in, mid, down)
				in = out
			} else {
				// BasicBlock stages downsample on the first block of stages
				// 2-4 (stage 1 keeps 64 channels and stride 1).
				down := blk == 0 && stage > 0
				b.basicBlock(prefix, in, mid, down)
				in = mid
			}
		}
	}
	b.fc("fc", in, numClasses)
	return b.layers, nil
}

// TotalParams sums the parameter counts of layers.
func TotalParams(layers []Layer) int64 {
	var total int64
	for _, l := range layers {
		total += l.Params
	}
	return total
}

// FreezeRange is the paper's per-family range for the number of frozen
// bottom layers of a fine-tuned downstream model (§VII-A).
type FreezeRange struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

// PaperFreezeRange returns the §VII-A freeze ranges: [29,40] for ResNet-18,
// [49,72] for ResNet-34, [87,106] for ResNet-50.
func PaperFreezeRange(v ResNetVariant) (FreezeRange, error) {
	switch v {
	case ResNet18:
		return FreezeRange{Min: 29, Max: 40}, nil
	case ResNet34:
		return FreezeRange{Min: 49, Max: 72}, nil
	case ResNet50:
		return FreezeRange{Min: 87, Max: 106}, nil
	default:
		return FreezeRange{}, fmt.Errorf("libgen: unknown ResNet variant %d", int(v))
	}
}
