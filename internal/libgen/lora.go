package libgen

import (
	"fmt"

	"trimcaching/internal/modellib"
)

// LoRAConfig configures an LLM-style parameter-sharing library where every
// downstream model is a frozen foundation model plus a small LoRA adapter.
// The paper motivates TrimCaching with exactly this structure (>99% of
// parameters shared under LoRA, §I); this generator is used by the llmedge
// example and by extension experiments.
type LoRAConfig struct {
	// FoundationParams is the total parameter count of the foundation model
	// (e.g. Gemini Nano-2: 3.25e9, §I).
	FoundationParams int64
	// NumLayers is the number of transformer blocks the foundation model is
	// split into (each is one parameter block).
	NumLayers int
	// NumAdapters is the number of downstream fine-tuned models.
	NumAdapters int
	// AdapterFraction is each adapter's size relative to the foundation
	// model (LoRA: well under 1%).
	AdapterFraction float64
	// BytesPerParam is the storage per parameter (fp16: 2).
	BytesPerParam int64
}

// DefaultLoRAConfig returns a Gemini-Nano-2-sized foundation model with
// numAdapters LoRA-tuned downstream models at 0.5% adapter size.
func DefaultLoRAConfig(numAdapters int) LoRAConfig {
	return LoRAConfig{
		FoundationParams: 3_250_000_000,
		NumLayers:        32,
		NumAdapters:      numAdapters,
		AdapterFraction:  0.005,
		BytesPerParam:    2,
	}
}

// GenerateLoRA builds the LoRA-style library: NumLayers shared foundation
// blocks plus one specific adapter block per downstream model.
func GenerateLoRA(cfg LoRAConfig) (*modellib.Library, error) {
	if cfg.FoundationParams <= 0 || cfg.NumLayers <= 0 || cfg.NumAdapters <= 0 {
		return nil, fmt.Errorf("libgen: lora config must have positive sizes: %+v", cfg)
	}
	if cfg.AdapterFraction <= 0 || cfg.AdapterFraction >= 1 {
		return nil, fmt.Errorf("libgen: AdapterFraction must be in (0,1), got %v", cfg.AdapterFraction)
	}
	if cfg.BytesPerParam <= 0 {
		return nil, fmt.Errorf("libgen: BytesPerParam must be positive")
	}
	// NumAdapters == 1 would make the foundation blocks technically
	// unshared, which is fine: the library degenerates to independent
	// caching, and tests cover it.

	perLayer := cfg.FoundationParams / int64(cfg.NumLayers)
	if perLayer <= 0 {
		return nil, fmt.Errorf("libgen: foundation params %d too small for %d layers",
			cfg.FoundationParams, cfg.NumLayers)
	}
	adapterParams := int64(float64(cfg.FoundationParams) * cfg.AdapterFraction)
	if adapterParams <= 0 {
		adapterParams = 1
	}

	var blocks []modellib.Block
	foundation := make([]int, cfg.NumLayers)
	for l := 0; l < cfg.NumLayers; l++ {
		foundation[l] = len(blocks)
		blocks = append(blocks, modellib.Block{
			ID:        len(blocks),
			SizeBytes: perLayer * cfg.BytesPerParam,
			Label:     fmt.Sprintf("foundation/layer%03d", l),
		})
	}

	models := make([]modellib.Model, 0, cfg.NumAdapters)
	for a := 0; a < cfg.NumAdapters; a++ {
		adapterID := len(blocks)
		blocks = append(blocks, modellib.Block{
			ID:        adapterID,
			SizeBytes: adapterParams * cfg.BytesPerParam,
			Label:     fmt.Sprintf("adapter%03d", a),
		})
		ids := make([]int, 0, cfg.NumLayers+1)
		ids = append(ids, foundation...)
		ids = append(ids, adapterID)
		models = append(models, modellib.Model{
			ID:     a,
			Name:   fmt.Sprintf("llm/adapter%03d", a),
			Family: "foundation",
			Blocks: ids,
		})
	}

	lib, err := modellib.New(blocks, models)
	if err != nil {
		return nil, fmt.Errorf("libgen: assemble lora library: %w", err)
	}
	return lib, nil
}
