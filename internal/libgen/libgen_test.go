package libgen

import (
	"testing"

	"trimcaching/internal/rng"
)

func TestResNetLayerCounts(t *testing.T) {
	// The paper's freeze ranges imply the per-family trainable-layer counts
	// (counting conv, BN, and FC parameter layers, torchvision layout):
	// ResNet-18: 41, ResNet-34: 73, ResNet-50: 107. Each freeze max must
	// stay strictly below the layer count (the head is never frozen).
	cases := []struct {
		v    ResNetVariant
		want int
	}{
		{ResNet18, 41},
		{ResNet34, 73},
		{ResNet50, 107},
	}
	for _, c := range cases {
		layers, err := ResNetLayers(c.v, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(layers) != c.want {
			t.Fatalf("%s: %d layers, want %d", c.v, len(layers), c.want)
		}
		fr, err := PaperFreezeRange(c.v)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Max >= len(layers) {
			t.Fatalf("%s: freeze max %d >= layer count %d", c.v, fr.Max, len(layers))
		}
		if fr.Min <= 0 || fr.Min > fr.Max {
			t.Fatalf("%s: bad freeze range %+v", c.v, fr)
		}
	}
}

func TestResNetParamTotals(t *testing.T) {
	// Reference torchvision parameter counts with a 1000-class head:
	// ResNet-18 ≈ 11.69M, ResNet-34 ≈ 21.80M, ResNet-50 ≈ 25.56M.
	cases := []struct {
		v      ResNetVariant
		wantM  float64
		within float64
	}{
		{ResNet18, 11.69, 0.05},
		{ResNet34, 21.80, 0.05},
		{ResNet50, 25.56, 0.05},
	}
	for _, c := range cases {
		layers, err := ResNetLayers(c.v, 1000)
		if err != nil {
			t.Fatal(err)
		}
		gotM := float64(TotalParams(layers)) / 1e6
		if gotM < c.wantM*(1-c.within) || gotM > c.wantM*(1+c.within) {
			t.Fatalf("%s: %.2fM params, want ~%.2fM", c.v, gotM, c.wantM)
		}
	}
}

func TestResNetLayersOrderedBottomUp(t *testing.T) {
	layers, err := ResNetLayers(ResNet50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if layers[0].Label != "conv1" || layers[1].Label != "bn1" {
		t.Fatalf("first layers: %v %v", layers[0].Label, layers[1].Label)
	}
	if layers[len(layers)-1].Label != "fc" {
		t.Fatalf("last layer: %v", layers[len(layers)-1].Label)
	}
	for _, l := range layers {
		if l.Params <= 0 {
			t.Fatalf("layer %s has %d params", l.Label, l.Params)
		}
	}
}

func TestResNetLayersInvalid(t *testing.T) {
	if _, err := ResNetLayers(ResNetVariant(99), 100); err == nil {
		t.Fatal("unknown variant must error")
	}
	if _, err := ResNetLayers(ResNet18, 0); err == nil {
		t.Fatal("zero classes must error")
	}
	if _, err := PaperFreezeRange(ResNetVariant(99)); err == nil {
		t.Fatal("unknown variant must error")
	}
}

func TestCIFAR100Structure(t *testing.T) {
	if len(CIFAR100Superclasses) != 20 {
		t.Fatalf("%d superclasses, want 20", len(CIFAR100Superclasses))
	}
	for s, classes := range CIFAR100Superclasses {
		if len(classes) != 5 {
			t.Fatalf("superclass %q has %d classes, want 5", s, len(classes))
		}
	}
	all := CIFAR100Classes()
	if len(all) != 100 {
		t.Fatalf("%d classes, want 100", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		if seen[c] {
			t.Fatalf("duplicate class %q", c)
		}
		seen[c] = true
	}
	if err := validateTableI(); err != nil {
		t.Fatal(err)
	}
}

func TestTableIShape(t *testing.T) {
	if len(TableI) != 3 {
		t.Fatalf("Table I has %d first-round superclasses, want 3", len(TableI))
	}
	wantSeconds := map[string]int{
		"fruit and vegetables": 2,
		"medium-sized mammals": 5,
		"vehicles 2":           2,
	}
	for first, n := range wantSeconds {
		if got := len(TableI[first]); got != n {
			t.Fatalf("Table I %q maps to %d superclasses, want %d", first, got, n)
		}
	}
}

func TestGenerateSpecialShape(t *testing.T) {
	src := rng.New(1)
	lib, err := GenerateSpecial(DefaultSpecialConfig(10), src)
	if err != nil {
		t.Fatal(err)
	}
	if lib.NumModels() != 30 {
		t.Fatalf("models = %d, want 30", lib.NumModels())
	}
	st := lib.Stats()
	if st.DistinctFamilies != 3 {
		t.Fatalf("families = %d", st.DistinctFamilies)
	}
	// Sharing must save a substantial fraction of storage: the paper's
	// premise is that a large share of each model is frozen pre-trained
	// layers.
	if st.SharingRatio > 0.85 {
		t.Fatalf("sharing ratio %v: library barely shares", st.SharingRatio)
	}
	if st.MeanSharedFrac < 0.3 {
		t.Fatalf("mean shared fraction %v too low", st.MeanSharedFrac)
	}
}

func TestGenerateSpecialFixedSharedBlocks(t *testing.T) {
	// Special case: the number of shared blocks must NOT grow with the
	// library scale (it is bounded by the pre-trained prefix lengths).
	small, err := GenerateSpecial(DefaultSpecialConfig(10), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	large, err := GenerateSpecial(DefaultSpecialConfig(100), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	smallShared := small.Stats().NumSharedBlocks
	largeShared := large.Stats().NumSharedBlocks
	// Bound: sum of the paper's freeze maxima = 40 + 72 + 106 = 218.
	if largeShared > 218 {
		t.Fatalf("shared blocks %d exceed pre-trained prefix bound 218", largeShared)
	}
	if largeShared > smallShared*2 {
		t.Fatalf("shared blocks grew with library scale: %d -> %d", smallShared, largeShared)
	}
}

func TestGenerateSpecialFreezeDepths(t *testing.T) {
	src := rng.New(4)
	lib, err := GenerateSpecial(DefaultSpecialConfig(20), src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lib.NumModels(); i++ {
		m := lib.Model(i)
		var fam ResNetVariant
		switch m.Family {
		case "resnet18":
			fam = ResNet18
		case "resnet34":
			fam = ResNet34
		case "resnet50":
			fam = ResNet50
		default:
			t.Fatalf("unknown family %q", m.Family)
		}
		layers, err := ResNetLayers(fam, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Blocks) != len(layers) {
			t.Fatalf("model %d has %d blocks, want %d (one per layer)", i, len(m.Blocks), len(layers))
		}
	}
}

func TestGenerateSpecialModelSizesMatchArchitecture(t *testing.T) {
	src := rng.New(5)
	cfg := DefaultSpecialConfig(5)
	lib, err := GenerateSpecial(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := map[string]int64{}
	for _, v := range cfg.Families {
		layers, err := ResNetLayers(v, cfg.NumClasses)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes[v.String()] = TotalParams(layers) * cfg.BytesPerParam
	}
	for i := 0; i < lib.NumModels(); i++ {
		m := lib.Model(i)
		if got, want := lib.ModelSize(i), wantBytes[m.Family]; got != want {
			t.Fatalf("model %d (%s) size %d, want %d", i, m.Family, got, want)
		}
	}
}

func TestGenerateSpecialInvalidConfigs(t *testing.T) {
	src := rng.New(6)
	bad := []SpecialConfig{
		{},
		{Families: []ResNetVariant{ResNet18}, ModelsPerFamily: 0, NumClasses: 100, BytesPerParam: 4},
		{Families: []ResNetVariant{ResNet18}, ModelsPerFamily: 5, NumClasses: 0, BytesPerParam: 4},
		{Families: []ResNetVariant{ResNet18}, ModelsPerFamily: 5, NumClasses: 100, BytesPerParam: 0},
		{Families: nil, ModelsPerFamily: 5, NumClasses: 100, BytesPerParam: 4},
		{Families: []ResNetVariant{ResNetVariant(42)}, ModelsPerFamily: 5, NumClasses: 100, BytesPerParam: 4},
	}
	for i, cfg := range bad {
		if _, err := GenerateSpecial(cfg, src); err == nil {
			t.Fatalf("config %d: expected error", i)
		}
	}
}

func TestGenerateSpecialDeterministic(t *testing.T) {
	a, err := GenerateSpecial(DefaultSpecialConfig(10), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSpecial(DefaultSpecialConfig(10), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatal("same seed produced different libraries")
	}
	for i := 0; i < a.NumModels(); i++ {
		if a.ModelSize(i) != b.ModelSize(i) || a.SharedSize(i) != b.SharedSize(i) {
			t.Fatalf("same seed, model %d differs", i)
		}
	}
}

func TestGenerateGeneralShape(t *testing.T) {
	cfg := DefaultGeneralConfig()
	lib, err := GenerateGeneral(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	// Per family: 3 parents + 2 variants × 5 classes × (2+5+2) superclasses
	// = 3 + 90 = 93; three families = 279.
	if lib.NumModels() != 279 {
		t.Fatalf("models = %d, want 279", lib.NumModels())
	}
	st := lib.Stats()
	if st.SharingRatio >= 1 {
		t.Fatalf("sharing ratio %v", st.SharingRatio)
	}
}

func TestGenerateGeneralSharedBlocksScaleWithLibrary(t *testing.T) {
	// General case: more first-round superclasses (more parents) must mean
	// more shared blocks — sharing scales with the library.
	small := DefaultGeneralConfig()
	small.FirstRound = []string{"fruit and vegetables"}
	libSmall, err := GenerateGeneral(small, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	libLarge, err := GenerateGeneral(DefaultGeneralConfig(), rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if libLarge.Stats().NumSharedBlocks <= libSmall.Stats().NumSharedBlocks {
		t.Fatalf("shared blocks did not grow: %d -> %d",
			libSmall.Stats().NumSharedBlocks, libLarge.Stats().NumSharedBlocks)
	}
}

func TestGenerateGeneralChildrenShareParentPrefix(t *testing.T) {
	cfg := DefaultGeneralConfig()
	cfg.Families = []ResNetVariant{ResNet18}
	cfg.FirstRound = []string{"fruit and vegetables"}
	cfg.VariantsPerClass = 1
	lib, err := GenerateGeneral(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// Model 0 is the parent; children must share a prefix of its blocks.
	parent := lib.Model(0)
	if parent.Name != "resnet18/fruit and vegetables/parent" {
		t.Fatalf("model 0 = %q, want the parent", parent.Name)
	}
	parentSet := map[int]bool{}
	for _, j := range parent.Blocks {
		parentSet[j] = true
	}
	for i := 1; i < lib.NumModels(); i++ {
		var sharedWithParent int
		for _, j := range lib.Model(i).Blocks {
			if parentSet[j] {
				sharedWithParent++
			}
		}
		fr, err := PaperFreezeRange(ResNet18)
		if err != nil {
			t.Fatal(err)
		}
		if sharedWithParent < fr.Min || sharedWithParent > fr.Max {
			t.Fatalf("child %d shares %d blocks with parent, want in [%d,%d]",
				i, sharedWithParent, fr.Min, fr.Max)
		}
	}
}

func TestGenerateGeneralInvalidConfigs(t *testing.T) {
	base := DefaultGeneralConfig()
	muts := []func(*GeneralConfig){
		func(c *GeneralConfig) { c.Families = nil },
		func(c *GeneralConfig) { c.FirstRound = nil },
		func(c *GeneralConfig) { c.FirstRound = []string{"no such superclass"} },
		func(c *GeneralConfig) { c.VariantsPerClass = 0 },
		func(c *GeneralConfig) { c.NumClasses = 0 },
		func(c *GeneralConfig) { c.BytesPerParam = 0 },
	}
	for i, mut := range muts {
		cfg := base
		mut(&cfg)
		if _, err := GenerateGeneral(cfg, rng.New(12)); err == nil {
			t.Fatalf("mutation %d: expected error", i)
		}
	}
}

func TestGenerateLoRA(t *testing.T) {
	lib, err := GenerateLoRA(DefaultLoRAConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	if lib.NumModels() != 50 {
		t.Fatalf("models = %d", lib.NumModels())
	}
	st := lib.Stats()
	// With 50 adapters at 0.5%, almost all storage is shared: the unique
	// bytes should be a tiny fraction of the naive sum.
	if st.SharingRatio > 0.05 {
		t.Fatalf("LoRA sharing ratio %v, want < 0.05", st.SharingRatio)
	}
	for i := 0; i < lib.NumModels(); i++ {
		if lib.SpecificSize(i) <= 0 {
			t.Fatalf("model %d has no specific adapter block", i)
		}
		if lib.SharedSize(i) < 90*lib.SpecificSize(i) {
			t.Fatalf("model %d: shared %d vs specific %d — adapter too large",
				i, lib.SharedSize(i), lib.SpecificSize(i))
		}
	}
}

func TestGenerateLoRASingleAdapter(t *testing.T) {
	lib, err := GenerateLoRA(DefaultLoRAConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if lib.NumModels() != 1 {
		t.Fatalf("models = %d", lib.NumModels())
	}
	// With one model nothing is shared by definition.
	if got := lib.Stats().NumSharedBlocks; got != 0 {
		t.Fatalf("single-adapter library has %d shared blocks", got)
	}
}

func TestGenerateLoRAInvalid(t *testing.T) {
	bad := []LoRAConfig{
		{},
		{FoundationParams: 100, NumLayers: 4, NumAdapters: 2, AdapterFraction: 0, BytesPerParam: 2},
		{FoundationParams: 100, NumLayers: 4, NumAdapters: 2, AdapterFraction: 1.5, BytesPerParam: 2},
		{FoundationParams: 100, NumLayers: 4, NumAdapters: 2, AdapterFraction: 0.01, BytesPerParam: 0},
		{FoundationParams: 2, NumLayers: 4, NumAdapters: 2, AdapterFraction: 0.01, BytesPerParam: 2},
	}
	for i, cfg := range bad {
		if _, err := GenerateLoRA(cfg); err == nil {
			t.Fatalf("config %d: expected error", i)
		}
	}
}

func TestSubset(t *testing.T) {
	lib, err := GenerateSpecial(DefaultSpecialConfig(10), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Subset(lib, []int{0, 5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumModels() != 3 {
		t.Fatalf("subset models = %d", sub.NumModels())
	}
	wants := []int{0, 5, 20}
	for i, orig := range wants {
		if sub.ModelSize(i) != lib.ModelSize(orig) {
			t.Fatalf("subset model %d size %d != original %d", i, sub.ModelSize(i), lib.ModelSize(orig))
		}
		if sub.Model(i).Name != lib.Model(orig).Name {
			t.Fatalf("subset model %d name mismatch", i)
		}
	}
	// Sharing within the subset must be preserved: models 0 and 5 are both
	// resnet18 and share the pre-trained prefix.
	union := sub.BlocksUnion([]int{0, 1}, nil)
	if union >= sub.ModelSize(0)+sub.ModelSize(1) {
		t.Fatal("subset lost sharing between same-family models")
	}
}

func TestSubsetInvalid(t *testing.T) {
	lib, err := GenerateSpecial(DefaultSpecialConfig(2), rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	for _, ids := range [][]int{nil, {-1}, {lib.NumModels()}, {0, 0}} {
		if _, err := Subset(lib, ids); err == nil {
			t.Fatalf("Subset(%v): expected error", ids)
		}
	}
}

func TestTakeStratified(t *testing.T) {
	lib, err := GenerateSpecial(DefaultSpecialConfig(100), rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := TakeStratified(lib, 30, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumModels() != 30 {
		t.Fatalf("took %d models", sub.NumModels())
	}
	// Stratification: 10 per family.
	counts := map[string]int{}
	for i := 0; i < sub.NumModels(); i++ {
		counts[sub.Model(i).Family]++
	}
	for fam, n := range counts {
		if n != 10 {
			t.Fatalf("family %s has %d models, want 10", fam, n)
		}
	}
}

func TestTakeStratifiedInvalid(t *testing.T) {
	lib, err := GenerateSpecial(DefaultSpecialConfig(2), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TakeStratified(lib, 0, rng.New(18)); err == nil {
		t.Fatal("take 0 must error")
	}
	if _, err := TakeStratified(lib, lib.NumModels()+1, rng.New(19)); err == nil {
		t.Fatal("take > size must error")
	}
}
