package libgen

import (
	"fmt"

	"trimcaching/internal/modellib"
	"trimcaching/internal/rng"
)

// BytesPerParamFP32 is the storage cost of one float32 parameter.
const BytesPerParamFP32 = 4

// SpecialConfig configures the special-case library of §VII-A: all models
// are fine-tuned from a small fixed set of pre-trained backbones by freezing
// bottom layers, so the number of shared parameter blocks is independent of
// the library scale.
type SpecialConfig struct {
	// Families lists the pre-trained backbones. Default: ResNet-18/34/50.
	Families []ResNetVariant
	// ModelsPerFamily is the number of downstream models per backbone.
	// The paper uses 100 per family (300 total); the placement figures use
	// 10 per family (I = 30).
	ModelsPerFamily int
	// NumClasses sizes the classification head (CIFAR-100: 100).
	NumClasses int
	// BytesPerParam is the storage per parameter (fp32: 4).
	BytesPerParam int64
	// FreezeRanges overrides the paper's per-family freeze-depth ranges
	// (used by the sharing-fraction ablation). Families absent from the map
	// use PaperFreezeRange.
	FreezeRanges map[ResNetVariant]FreezeRange
}

// DefaultSpecialConfig returns the paper's special-case settings with the
// given number of models per family.
func DefaultSpecialConfig(modelsPerFamily int) SpecialConfig {
	return SpecialConfig{
		Families:        []ResNetVariant{ResNet18, ResNet34, ResNet50},
		ModelsPerFamily: modelsPerFamily,
		NumClasses:      100,
		BytesPerParam:   BytesPerParamFP32,
	}
}

// GenerateSpecial builds a special-case parameter-sharing library. For every
// family it materializes the pre-trained bottom layers as blocks shared by
// all downstream models that froze at least that many layers; the remaining
// (fine-tuned) layers of each model are model-specific blocks. Freeze depths
// are drawn uniformly from the paper's per-family ranges.
func GenerateSpecial(cfg SpecialConfig, src *rng.Source) (*modellib.Library, error) {
	if cfg.ModelsPerFamily <= 0 {
		return nil, fmt.Errorf("libgen: ModelsPerFamily must be positive, got %d", cfg.ModelsPerFamily)
	}
	if cfg.NumClasses <= 0 {
		return nil, fmt.Errorf("libgen: NumClasses must be positive, got %d", cfg.NumClasses)
	}
	if cfg.BytesPerParam <= 0 {
		return nil, fmt.Errorf("libgen: BytesPerParam must be positive, got %d", cfg.BytesPerParam)
	}
	if len(cfg.Families) == 0 {
		return nil, fmt.Errorf("libgen: at least one family required")
	}

	classes := CIFAR100Classes()
	var blocks []modellib.Block
	var models []modellib.Model

	newBlock := func(label string, params int64) int {
		id := len(blocks)
		blocks = append(blocks, modellib.Block{
			ID:        id,
			SizeBytes: params * cfg.BytesPerParam,
			Label:     label,
		})
		return id
	}

	for _, fam := range cfg.Families {
		layers, err := ResNetLayers(fam, cfg.NumClasses)
		if err != nil {
			return nil, fmt.Errorf("libgen: %s layers: %w", fam, err)
		}
		fr, ok := cfg.FreezeRanges[fam]
		if !ok {
			fr, err = PaperFreezeRange(fam)
			if err != nil {
				return nil, err
			}
		}
		if fr.Min < 1 || fr.Min > fr.Max {
			return nil, fmt.Errorf("libgen: %s invalid freeze range %+v", fam, fr)
		}
		if fr.Max >= len(layers) {
			return nil, fmt.Errorf("libgen: %s freeze max %d >= %d layers", fam, fr.Max, len(layers))
		}

		// Draw freeze depths first so only actually-frozen prefix layers
		// become pre-trained blocks.
		depths := make([]int, cfg.ModelsPerFamily)
		maxDepth := 0
		for i := range depths {
			depths[i] = src.IntRange(fr.Min, fr.Max)
			if depths[i] > maxDepth {
				maxDepth = depths[i]
			}
		}

		// Pre-trained (potentially shared) prefix blocks of this family.
		prefix := make([]int, maxDepth)
		for l := 0; l < maxDepth; l++ {
			prefix[l] = newBlock(fmt.Sprintf("%s/pre/%s", fam, layers[l].Label), layers[l].Params)
		}

		for mi := 0; mi < cfg.ModelsPerFamily; mi++ {
			depth := depths[mi]
			ids := make([]int, 0, len(layers))
			ids = append(ids, prefix[:depth]...)
			name := fmt.Sprintf("%s/%s#%d", fam, classes[mi%len(classes)], mi)
			for l := depth; l < len(layers); l++ {
				ids = append(ids, newBlock(fmt.Sprintf("%s/ft%d/%s", fam, mi, layers[l].Label), layers[l].Params))
			}
			models = append(models, modellib.Model{
				ID:     len(models),
				Name:   name,
				Family: fam.String(),
				Blocks: ids,
			})
		}
	}

	lib, err := modellib.New(blocks, models)
	if err != nil {
		return nil, fmt.Errorf("libgen: assemble special library: %w", err)
	}
	return lib, nil
}
