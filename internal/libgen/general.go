package libgen

import (
	"fmt"
	"sort"

	"trimcaching/internal/modellib"
	"trimcaching/internal/rng"
)

// GeneralConfig configures the general-case library of §VII-A: two rounds
// of fine-tuning per Table I. Every first-round superclass gets a fully
// fine-tuned parent per family; second-round per-class models freeze a
// bottom prefix of their parent. The set of shared blocks therefore grows
// with the number of parents, i.e. with the library scale — the regime in
// which TrimCaching Spec becomes exponential and TrimCaching Gen is needed.
type GeneralConfig struct {
	// Families lists the pre-trained backbones. Default: ResNet-18/34/50.
	Families []ResNetVariant
	// FirstRound lists the first-round superclasses (default: Table I keys).
	FirstRound []string
	// VariantsPerClass is how many second-round models to derive per
	// (parent, class) pair.
	VariantsPerClass int
	// IncludeParents adds the first-round models themselves to the library.
	IncludeParents bool
	// NumClasses sizes the classification head.
	NumClasses int
	// BytesPerParam is the storage per parameter.
	BytesPerParam int64
}

// DefaultGeneralConfig returns the paper's Table I general-case settings.
func DefaultGeneralConfig() GeneralConfig {
	first := make([]string, 0, len(TableI))
	for s := range TableI {
		first = append(first, s)
	}
	sort.Strings(first)
	return GeneralConfig{
		Families:         []ResNetVariant{ResNet18, ResNet34, ResNet50},
		FirstRound:       first,
		VariantsPerClass: 2,
		IncludeParents:   true,
		NumClasses:       100,
		BytesPerParam:    BytesPerParamFP32,
	}
}

// GenerateGeneral builds a general-case parameter-sharing library following
// Table I.
func GenerateGeneral(cfg GeneralConfig, src *rng.Source) (*modellib.Library, error) {
	if err := validateTableI(); err != nil {
		return nil, err
	}
	if len(cfg.Families) == 0 {
		return nil, fmt.Errorf("libgen: at least one family required")
	}
	if len(cfg.FirstRound) == 0 {
		return nil, fmt.Errorf("libgen: at least one first-round superclass required")
	}
	if cfg.VariantsPerClass <= 0 {
		return nil, fmt.Errorf("libgen: VariantsPerClass must be positive, got %d", cfg.VariantsPerClass)
	}
	if cfg.NumClasses <= 0 || cfg.BytesPerParam <= 0 {
		return nil, fmt.Errorf("libgen: NumClasses and BytesPerParam must be positive")
	}
	for _, s := range cfg.FirstRound {
		if _, ok := TableI[s]; !ok {
			return nil, fmt.Errorf("libgen: first-round superclass %q not in Table I", s)
		}
	}

	var blocks []modellib.Block
	var models []modellib.Model
	newBlock := func(label string, params int64) int {
		id := len(blocks)
		blocks = append(blocks, modellib.Block{
			ID:        id,
			SizeBytes: params * cfg.BytesPerParam,
			Label:     label,
		})
		return id
	}

	for _, fam := range cfg.Families {
		layers, err := ResNetLayers(fam, cfg.NumClasses)
		if err != nil {
			return nil, fmt.Errorf("libgen: %s layers: %w", fam, err)
		}
		fr, err := PaperFreezeRange(fam)
		if err != nil {
			return nil, err
		}

		for _, first := range cfg.FirstRound {
			// Round 1: fully fine-tuned parent — all layers are fresh
			// blocks; its bottom prefix will be shared with its children.
			parentBlocks := make([]int, len(layers))
			for l, layer := range layers {
				parentBlocks[l] = newBlock(
					fmt.Sprintf("%s/%s/%s", fam, first, layer.Label), layer.Params)
			}
			if cfg.IncludeParents {
				ids := make([]int, len(parentBlocks))
				copy(ids, parentBlocks)
				models = append(models, modellib.Model{
					ID:     len(models),
					Name:   fmt.Sprintf("%s/%s/parent", fam, first),
					Family: fam.String(),
					Blocks: ids,
				})
			}

			// Round 2: per-class children of the mapped superclasses.
			for _, second := range TableI[first] {
				for _, class := range CIFAR100Superclasses[second] {
					for v := 0; v < cfg.VariantsPerClass; v++ {
						depth := src.IntRange(fr.Min, fr.Max)
						ids := make([]int, 0, len(layers))
						ids = append(ids, parentBlocks[:depth]...)
						for l := depth; l < len(layers); l++ {
							ids = append(ids, newBlock(
								fmt.Sprintf("%s/%s/%s#%d/%s", fam, second, class, v, layers[l].Label),
								layers[l].Params))
						}
						models = append(models, modellib.Model{
							ID:     len(models),
							Name:   fmt.Sprintf("%s/%s/%s#%d", fam, second, class, v),
							Family: fam.String(),
							Blocks: ids,
						})
					}
				}
			}
		}
	}

	lib, err := modellib.New(blocks, models)
	if err != nil {
		return nil, fmt.Errorf("libgen: assemble general library: %w", err)
	}
	return lib, nil
}
