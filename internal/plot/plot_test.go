package plot

import (
	"strings"
	"testing"

	"trimcaching/internal/stats"
)

func sampleTable() *stats.Table {
	return &stats.Table{
		Title:  "Fig. 4(a)",
		XLabel: "Q (GB)",
		Series: []stats.Series{
			{
				Label:  "Spec",
				X:      []float64{0.5, 1.0, 1.5},
				Points: []stats.Summary{{Mean: 0.55}, {Mean: 0.8}, {Mean: 0.97}},
			},
			{
				Label:  "Independent",
				X:      []float64{0.5, 1.0, 1.5},
				Points: []stats.Summary{{Mean: 0.2}, {Mean: 0.5}, {Mean: 0.75}},
			},
		},
	}
}

func TestChartBasics(t *testing.T) {
	out, err := Chart(sampleTable(), 60, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 4(a)", "x: Q (GB)", "* Spec", "o Independent", "+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Both series markers must be plotted.
	if strings.Count(out, "*") < 3 {
		t.Fatalf("expected >=3 '*' markers:\n%s", out)
	}
	if strings.Count(out, "o") < 3 {
		t.Fatalf("expected >=3 'o' markers:\n%s", out)
	}
	// Lines connecting the points.
	if !strings.Contains(out, ".") {
		t.Fatalf("no connecting line segments:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + height rows + axis + x labels + legend.
	if len(lines) < 16+2 {
		t.Fatalf("only %d lines", len(lines))
	}
}

func TestChartOrdering(t *testing.T) {
	// The higher-valued series must be plotted above the lower one: find
	// the first row containing '*' and the first containing 'o' at the
	// right edge x.
	out, err := Chart(sampleTable(), 40, 12)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	starRow, oRow := -1, -1
	for idx, line := range lines {
		if starRow < 0 && strings.Contains(line, "*") {
			starRow = idx
		}
		if oRow < 0 && strings.Contains(line, "o") && !strings.Contains(line, "o Independent") {
			oRow = idx
		}
	}
	if starRow < 0 || oRow < 0 {
		t.Fatalf("markers not found:\n%s", out)
	}
	if starRow > oRow {
		t.Fatalf("Spec (always higher) drawn below Independent:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	if _, err := Chart(nil, 40, 10); err == nil {
		t.Fatal("nil table must error")
	}
	if _, err := Chart(&stats.Table{}, 40, 10); err == nil {
		t.Fatal("empty table must error")
	}
	if _, err := Chart(sampleTable(), 5, 10); err == nil {
		t.Fatal("tiny width must error")
	}
	if _, err := Chart(sampleTable(), 40, 2); err == nil {
		t.Fatal("tiny height must error")
	}
	empty := &stats.Table{Series: []stats.Series{{Label: "x"}}}
	if _, err := Chart(empty, 40, 10); err == nil {
		t.Fatal("no points must error")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	flat := &stats.Table{
		Series: []stats.Series{{
			Label:  "const",
			X:      []float64{1, 1, 1},
			Points: []stats.Summary{{Mean: 0.5}, {Mean: 0.5}, {Mean: 0.5}},
		}},
	}
	out, err := Chart(flat, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not plotted:\n%s", out)
	}
}
