// Package plot renders experiment result tables as ASCII line charts so the
// CLI can show the paper's figures directly in a terminal (use
// `trimcaching <fig> -chart`).
package plot

import (
	"fmt"
	"math"
	"strings"

	"trimcaching/internal/stats"
)

// markers distinguish series in drawing order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders the table's series as a width x height ASCII chart with
// y-axis labels and a legend. Points are plotted at their (x, mean)
// positions; x positions are scaled by value (not index), matching how the
// paper's figures space their axes.
func Chart(t *stats.Table, width, height int) (string, error) {
	if t == nil || len(t.Series) == 0 {
		return "", fmt.Errorf("plot: table with at least one series required")
	}
	if width < 20 || height < 5 {
		return "", fmt.Errorf("plot: minimum size 20x5, got %dx%d", width, height)
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	var anyPoint bool
	for _, s := range t.Series {
		for pi, x := range s.X {
			if pi >= len(s.Points) {
				break
			}
			y := s.Points[pi].Mean
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			anyPoint = true
			xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
		}
	}
	if !anyPoint {
		return "", fmt.Errorf("plot: no finite points")
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	// Pad the y range slightly so extremes are not on the border.
	pad := 0.05 * (yMax - yMin)
	yMin -= pad
	yMax += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	toCol := func(x float64) int {
		c := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	toRow := func(y float64) int {
		r := int(math.Round((yMax - y) / (yMax - yMin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	for si, s := range t.Series {
		mark := markers[si%len(markers)]
		prevC, prevR := -1, -1
		for pi, x := range s.X {
			if pi >= len(s.Points) {
				break
			}
			y := s.Points[pi].Mean
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			c, r := toCol(x), toRow(y)
			// Connect consecutive points with a sparse line.
			if prevC >= 0 {
				drawLine(grid, prevC, prevR, c, r)
			}
			grid[r][c] = mark
			prevC, prevR = c, r
		}
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	labelEvery := height - 1
	if labelEvery < 1 {
		labelEvery = 1
	}
	for r := 0; r < height; r++ {
		yVal := yMax - (yMax-yMin)*float64(r)/float64(height-1)
		if r%labelEvery == 0 || r == height/2 {
			fmt.Fprintf(&b, "%8.3f |%s\n", yVal, string(grid[r]))
		} else {
			fmt.Fprintf(&b, "%8s |%s\n", "", string(grid[r]))
		}
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*g%*g\n", "", width/2, xMin, width-width/2, xMax)
	if t.XLabel != "" {
		fmt.Fprintf(&b, "%8s  x: %s\n", "", t.XLabel)
	}
	for si, s := range t.Series {
		fmt.Fprintf(&b, "%8s  %c %s\n", "", markers[si%len(markers)], s.Label)
	}
	return b.String(), nil
}

// drawLine writes a sparse Bresenham segment with '.' cells, never
// overwriting existing markers.
func drawLine(grid [][]byte, c0, r0, c1, r1 int) {
	dc := abs(c1 - c0)
	dr := abs(r1 - r0)
	sc, sr := 1, 1
	if c0 > c1 {
		sc = -1
	}
	if r0 > r1 {
		sr = -1
	}
	err := dc - dr
	c, r := c0, r0
	for {
		if grid[r][c] == ' ' {
			grid[r][c] = '.'
		}
		if c == c1 && r == r1 {
			return
		}
		e2 := 2 * err
		if e2 > -dr {
			err -= dr
			c += sc
		}
		if e2 < dc {
			err += dc
			r += sr
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
