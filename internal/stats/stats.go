// Package stats provides streaming statistics accumulators used to aggregate
// Monte-Carlo simulation results. Every figure in the paper reports means
// with standard-deviation error bars over 100 network topologies (§VII-A);
// this package provides the numerically stable machinery for that.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accumulator computes running mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds every observation into the accumulator.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 if empty.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the minimum observation, or 0 if empty.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the maximum observation, or 0 if empty.
func (a *Accumulator) Max() float64 { return a.max }

// Summary is an immutable snapshot of an accumulator.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize snapshots the accumulator.
func (a *Accumulator) Summarize() Summary {
	return Summary{N: a.n, Mean: a.mean, StdDev: a.StdDev(), Min: a.min, Max: a.max}
}

// String renders the summary as "mean ± stddev (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean, s.StdDev, s.N)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile over an already-ascending slice: no copy, no
// sort, no allocation. Hot loops that keep their sample buffer sorted (the
// serve path's latency scratch) use this to read several quantiles off one
// sort.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Series is a labelled sequence of (x, summary) points: one curve in a paper
// figure, e.g. "TrimCaching Spec" in Fig. 4(a).
type Series struct {
	Label  string    `json:"label"`
	X      []float64 `json:"x"`
	Points []Summary `json:"points"`
}

// Append adds one point to the series.
func (s *Series) Append(x float64, sum Summary) {
	s.X = append(s.X, x)
	s.Points = append(s.Points, sum)
}

// Table renders one or more series sharing an x-axis as an aligned text
// table, matching how the paper reports its figures as numbers.
type Table struct {
	Title   string
	XLabel  string
	YLabel  string
	Series  []Series
	Notes   []string
	Decimal int // fraction digits for values; default 4 when zero
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	dec := t.Decimal
	if dec == 0 {
		dec = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(&b, "y: %s\n", t.YLabel)
	}
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Label+" (mean)", s.Label+" (std)")
	}
	rows := [][]string{header}
	if len(t.Series) > 0 {
		for pi, x := range t.Series[0].X {
			row := []string{trimFloat(x)}
			for _, s := range t.Series {
				if pi < len(s.Points) {
					row = append(row,
						fmt.Sprintf("%.*f", dec, s.Points[pi].Mean),
						fmt.Sprintf("%.*f", dec, s.Points[pi].StdDev))
				} else {
					row = append(row, "-", "-")
				}
			}
			rows = append(rows, row)
		}
	}
	writeAligned(&b, rows)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e12 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
}
