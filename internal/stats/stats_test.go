package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("zero-value accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.N() != 1 || a.Mean() != 3.5 || a.Variance() != 0 {
		t.Fatalf("single obs: n=%d mean=%v var=%v", a.N(), a.Mean(), a.Variance())
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", got)
	}
	// Sample variance of this classic dataset is 32/7.
	if got := a.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v, want %v", got, 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorNumericalStability(t *testing.T) {
	// Naive sum-of-squares catastrophically cancels here; Welford must not.
	var a Accumulator
	const offset = 1e9
	for _, x := range []float64{offset + 4, offset + 7, offset + 13, offset + 16} {
		a.Add(x)
	}
	if got := a.Mean(); math.Abs(got-(offset+10)) > 1e-3 {
		t.Fatalf("mean = %v", got)
	}
	if got := a.Variance(); math.Abs(got-30) > 1e-3 {
		t.Fatalf("variance = %v, want 30", got)
	}
}

// Property: variance is never negative and mean stays within [min, max].
func TestAccumulatorProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip degenerate float inputs
			}
			if math.Abs(x) > 1e100 {
				x = math.Mod(x, 1e6)
			}
			a.Add(x)
		}
		if a.N() == 0 {
			return true
		}
		if a.Variance() < 0 {
			return false
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-0.5, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Quantile modified its input")
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Quantile interp = %v, want 5", got)
	}
}

func TestSummaryString(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{1, 2, 3})
	s := a.Summarize().String()
	if !strings.Contains(s, "2.0000") || !strings.Contains(s, "n=3") {
		t.Fatalf("unexpected summary string %q", s)
	}
}

func TestSeriesAppend(t *testing.T) {
	var s Series
	s.Label = "greedy"
	s.Append(0.5, Summary{N: 3, Mean: 0.7})
	s.Append(1.0, Summary{N: 3, Mean: 0.9})
	if len(s.X) != 2 || len(s.Points) != 2 {
		t.Fatalf("series lengths: %d, %d", len(s.X), len(s.Points))
	}
	if s.X[1] != 1.0 || s.Points[1].Mean != 0.9 {
		t.Fatal("series point mismatch")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:  "Fig. 4(a)",
		XLabel: "Q (GB)",
		YLabel: "cache hit ratio",
		Series: []Series{
			{
				Label:  "Spec",
				X:      []float64{0.5, 1},
				Points: []Summary{{Mean: 0.42, StdDev: 0.01}, {Mean: 0.80, StdDev: 0.02}},
			},
			{
				Label:  "Gen",
				X:      []float64{0.5, 1},
				Points: []Summary{{Mean: 0.40, StdDev: 0.01}, {Mean: 0.75, StdDev: 0.02}},
			},
		},
		Notes: []string{"synthetic"},
	}
	out := tbl.Render()
	for _, want := range []string{"Fig. 4(a)", "Q (GB)", "Spec (mean)", "0.8000", "note: synthetic", "cache hit ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableRenderRaggedSeries(t *testing.T) {
	tbl := Table{
		Title:  "ragged",
		XLabel: "x",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Points: []Summary{{Mean: 1}, {Mean: 2}}},
			{Label: "b", X: []float64{1}, Points: []Summary{{Mean: 3}}},
		},
	}
	out := tbl.Render()
	if !strings.Contains(out, "-") {
		t.Fatalf("ragged rows should render placeholders:\n%s", out)
	}
}

func TestTableRenderEmpty(t *testing.T) {
	tbl := Table{Title: "empty", XLabel: "x"}
	if out := tbl.Render(); !strings.Contains(out, "empty") {
		t.Fatalf("empty table should still render title:\n%s", out)
	}
}
