// Package wireless implements the wireless channel model of the paper
// (§III-A, eq. 1): Shannon-capacity downlink rates with distance-based path
// loss, equal sharing of an edge server's bandwidth and transmit power among
// its expected active associated users, additive white Gaussian noise, and
// Rayleigh block fading for Monte-Carlo evaluation (§VII-A).
package wireless

import (
	"errors"
	"fmt"
	"math"
)

// Config holds the physical-layer parameters. The defaults mirror §VII-A of
// the paper.
type Config struct {
	// BandwidthHz is the total downlink bandwidth B of an edge server.
	BandwidthHz float64 `json:"bandwidthHz"`
	// TransmitPowerW is the total transmit power P of an edge server.
	TransmitPowerW float64 `json:"transmitPowerW"`
	// NoisePSD is the AWGN power spectral density n0 in W/Hz.
	NoisePSD float64 `json:"noisePSD"`
	// AntennaGain is the antenna-related factor γ0 in eq. (1).
	AntennaGain float64 `json:"antennaGain"`
	// PathLossExp is the path-loss exponent α0 in eq. (1).
	PathLossExp float64 `json:"pathLossExp"`
	// ActiveProb is the probability pA that a user is active; bandwidth and
	// power are shared among the expected number of active users pA·|Km|.
	ActiveProb float64 `json:"activeProb"`
	// BackhaulBps is the constant edge-to-edge rate C_{m,m'} in bit/s.
	BackhaulBps float64 `json:"backhaulBps"`
	// CoverageRadiusM is the server coverage radius in metres.
	CoverageRadiusM float64 `json:"coverageRadiusM"`
	// MinDistanceM clamps the server-user distance to avoid the d^-α
	// singularity for co-located points.
	MinDistanceM float64 `json:"minDistanceM"`
	// NoiseFigureDB is an optional receiver noise figure (0 = ideal
	// receiver, the paper's implicit assumption).
	NoiseFigureDB float64 `json:"noiseFigureDB,omitempty"`
	// InterferenceMarginDB is an optional inter-cell interference margin
	// folded into the noise floor (0 = no interference).
	InterferenceMarginDB float64 `json:"interferenceMarginDB,omitempty"`
	// ShadowingStdDB is the optional log-normal shadowing standard
	// deviation in dB (0 = no shadowing).
	ShadowingStdDB float64 `json:"shadowingStdDB,omitempty"`
}

// DefaultConfig returns the paper's simulation parameters: B = 400 MHz,
// P = 43 dBm, n0 = -174 dBm/Hz, γ0 = 1, α0 = 4, pA = 0.5, backhaul 10 Gb/s,
// coverage radius 275 m.
func DefaultConfig() Config {
	return Config{
		BandwidthHz:     400e6,
		TransmitPowerW:  DBmToWatts(43),
		NoisePSD:        DBmToWatts(-174), // per Hz
		AntennaGain:     1,
		PathLossExp:     4,
		ActiveProb:      0.5,
		BackhaulBps:     10e9,
		CoverageRadiusM: 275,
		MinDistanceM:    1,
	}
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	checks := []struct {
		ok   bool
		name string
		v    float64
	}{
		{c.BandwidthHz > 0, "BandwidthHz", c.BandwidthHz},
		{c.TransmitPowerW > 0, "TransmitPowerW", c.TransmitPowerW},
		{c.NoisePSD > 0, "NoisePSD", c.NoisePSD},
		{c.AntennaGain > 0, "AntennaGain", c.AntennaGain},
		{c.PathLossExp > 0, "PathLossExp", c.PathLossExp},
		{c.ActiveProb > 0 && c.ActiveProb <= 1, "ActiveProb", c.ActiveProb},
		{c.BackhaulBps > 0, "BackhaulBps", c.BackhaulBps},
		{c.CoverageRadiusM > 0, "CoverageRadiusM", c.CoverageRadiusM},
		{c.MinDistanceM > 0, "MinDistanceM", c.MinDistanceM},
	}
	for _, ch := range checks {
		if !ch.ok || math.IsNaN(ch.v) || math.IsInf(ch.v, 0) {
			return fmt.Errorf("wireless: invalid %s = %v", ch.name, ch.v)
		}
	}
	return nil
}

// ErrNoUsers is returned when a rate is requested for a server with no
// associated users to share resources with.
var ErrNoUsers = errors.New("wireless: server has no associated users")

// DBmToWatts converts a power level in dBm to Watts.
func DBmToWatts(dbm float64) float64 {
	return math.Pow(10, (dbm-30)/10)
}

// WattsToDBm converts a power level in Watts to dBm.
func WattsToDBm(w float64) float64 {
	return 10*math.Log10(w) + 30
}

// userShare returns the per-user bandwidth and power for a server with
// numAssociated associated users: B/(pA·|Km|) and P/(pA·|Km|). The expected
// active-user count is floored at one user so a lone user never receives
// more than the server's total resources.
func (c Config) userShare(numAssociated int) (bw, pw float64, err error) {
	if numAssociated <= 0 {
		return 0, 0, ErrNoUsers
	}
	share := c.ActiveProb * float64(numAssociated)
	if share < 1 {
		share = 1
	}
	return c.BandwidthHz / share, c.TransmitPowerW / share, nil
}

// SNR returns the average signal-to-noise ratio P̄·γ0·d^-α0/(n0·B̄) for a
// user at distanceM from a server with numAssociated associated users.
func (c Config) SNR(distanceM float64, numAssociated int) (float64, error) {
	bw, pw, err := c.userShare(numAssociated)
	if err != nil {
		return 0, err
	}
	if distanceM < c.MinDistanceM {
		distanceM = c.MinDistanceM
	}
	pathLoss := c.AntennaGain * math.Pow(distanceM, -c.PathLossExp)
	return pw * pathLoss / (c.effectiveNoisePSD() * bw), nil
}

// RateBps returns the expected downlink rate C̄_{m,k} from eq. (1), i.e. the
// Shannon rate under the average channel gain. Placement decisions use this
// rate (§VII-A).
func (c Config) RateBps(distanceM float64, numAssociated int) (float64, error) {
	return c.FadedRateBps(distanceM, numAssociated, 1)
}

// FadedRateBps returns the instantaneous downlink rate when the Rayleigh
// fading power gain is fadingGain (|h|^2, unit mean). Evaluation draws
// fadingGain ~ Exp(1) per channel realization (§VII-A).
func (c Config) FadedRateBps(distanceM float64, numAssociated int, fadingGain float64) (float64, error) {
	if fadingGain < 0 {
		return 0, fmt.Errorf("wireless: negative fading gain %v", fadingGain)
	}
	snr, err := c.SNR(distanceM, numAssociated)
	if err != nil {
		return 0, err
	}
	bw, _, err := c.userShare(numAssociated)
	if err != nil {
		return 0, err
	}
	return bw * math.Log2(1+snr*fadingGain), nil
}

// LinkRate caches the (distance, load)-dependent factors of FadedRateBps —
// the per-user SNR and bandwidth share — so evaluating one link under many
// fading realizations pays the d^-α path loss once and one log2 per draw.
// RateBps is bit-identical to Config.FadedRateBps on the same link.
type LinkRate struct {
	snr float64
	bw  float64
}

// LinkRate hoists the fading-independent factors of FadedRateBps for a
// user at distanceM from a server with numAssociated associated users.
func (c Config) LinkRate(distanceM float64, numAssociated int) (LinkRate, error) {
	snr, err := c.SNR(distanceM, numAssociated)
	if err != nil {
		return LinkRate{}, err
	}
	bw, _, err := c.userShare(numAssociated)
	if err != nil {
		return LinkRate{}, err
	}
	return LinkRate{snr: snr, bw: bw}, nil
}

// RateBps returns the instantaneous downlink rate of the link under the
// given Rayleigh fading power gain — the same expression, over the same
// intermediate values, as Config.FadedRateBps.
func (l LinkRate) RateBps(fadingGain float64) (float64, error) {
	if fadingGain < 0 {
		return 0, fmt.Errorf("wireless: negative fading gain %v", fadingGain)
	}
	return l.bw * math.Log2(1+l.snr*fadingGain), nil
}

// Covers reports whether a server covers a user at distanceM.
func (c Config) Covers(distanceM float64) bool {
	return distanceM <= c.CoverageRadiusM
}
