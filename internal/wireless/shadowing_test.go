package wireless

import (
	"math"
	"sort"
	"testing"

	"trimcaching/internal/rng"
)

func TestNoiseFigureReducesRate(t *testing.T) {
	base := DefaultConfig()
	lifted := base.WithNoiseFigure(9)
	rBase, err := base.RateBps(150, 10)
	if err != nil {
		t.Fatal(err)
	}
	rLifted, err := lifted.RateBps(150, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rLifted >= rBase {
		t.Fatalf("noise figure did not reduce rate: %v vs %v", rLifted, rBase)
	}
	// 9 dB noise lift ≈ 8x SNR drop ≈ log2(8) = 3 bits/s/Hz loss in the
	// high-SNR regime.
	bw := base.BandwidthHz / (base.ActiveProb * 10)
	lossPerHz := (rBase - rLifted) / bw
	if lossPerHz < 2.5 || lossPerHz > 3.5 {
		t.Fatalf("9 dB lift cost %.2f bits/s/Hz, want ~3", lossPerHz)
	}
}

func TestInterferenceMarginComposesWithNoiseFigure(t *testing.T) {
	a := DefaultConfig().WithNoiseFigure(5).WithInterferenceMargin(4)
	b := DefaultConfig().WithNoiseFigure(9)
	ra, err := a.RateBps(150, 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RateBps(150, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ra-rb)/rb > 1e-12 {
		t.Fatalf("5+4 dB should equal 9 dB: %v vs %v", ra, rb)
	}
}

func TestZeroLiftIsNoop(t *testing.T) {
	c := DefaultConfig()
	if c.effectiveNoisePSD() != c.NoisePSD {
		t.Fatal("zero lift changed the noise PSD")
	}
}

func TestShadowGainDisabled(t *testing.T) {
	c := DefaultConfig()
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		if g := c.SampleShadowGain(src); g != 1 {
			t.Fatalf("disabled shadowing drew gain %v", g)
		}
	}
}

func TestShadowGainStatistics(t *testing.T) {
	c := DefaultConfig().WithShadowing(8)
	src := rng.New(2)
	const n = 40000
	gains := make([]float64, n)
	for i := range gains {
		g := c.SampleShadowGain(src)
		if g <= 0 {
			t.Fatalf("non-positive shadow gain %v", g)
		}
		gains[i] = g
	}
	// Median must be ~1 (0 dB), and the dB values must have std ~8.
	sort.Float64s(gains)
	median := gains[n/2]
	if median < 0.9 || median > 1.1 {
		t.Fatalf("shadow gain median %v, want ~1", median)
	}
	var sumDB, sumDB2 float64
	for _, g := range gains {
		db := 10 * math.Log10(g)
		sumDB += db
		sumDB2 += db * db
	}
	meanDB := sumDB / n
	stdDB := math.Sqrt(sumDB2/n - meanDB*meanDB)
	if math.Abs(meanDB) > 0.2 {
		t.Fatalf("shadowing mean %v dB, want ~0", meanDB)
	}
	if math.Abs(stdDB-8) > 0.3 {
		t.Fatalf("shadowing std %v dB, want ~8", stdDB)
	}
}

func TestSampleShadowGainsMatrix(t *testing.T) {
	c := DefaultConfig().WithShadowing(6)
	gains, err := c.SampleShadowGains(4, 7, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(gains) != 4 || len(gains[0]) != 7 {
		t.Fatalf("dims %dx%d", len(gains), len(gains[0]))
	}
	if _, err := c.SampleShadowGains(0, 7, rng.New(3)); err == nil {
		t.Fatal("zero dims must error")
	}
}

func TestShadowedRateComposesWithFading(t *testing.T) {
	c := DefaultConfig().WithShadowing(8)
	src := rng.New(4)
	shadow := c.SampleShadowGain(src)
	// Shadowing and Rayleigh fading compose multiplicatively on the power
	// gain; the composed rate must equal the rate at the product gain.
	fade := src.Exp()
	composed, err := c.FadedRateBps(150, 10, shadow*fade)
	if err != nil {
		t.Fatal(err)
	}
	if composed < 0 {
		t.Fatalf("composed rate %v", composed)
	}
}
