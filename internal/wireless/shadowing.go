package wireless

import (
	"fmt"
	"math"

	"trimcaching/internal/rng"
)

// Extended link-budget knobs beyond the paper's eq. (1). All default to
// zero (disabled), preserving the paper's model exactly; experiments can
// enable them for sensitivity studies.
//
// NoiseFigureDB and InterferenceMarginDB raise the effective noise floor:
// n0_eff = n0 · 10^((NF + IM)/10). ShadowingStdDB enables log-normal
// shadowing: a per-link slow-fading gain 10^(X/10) with X ~ N(0, σ²) dB
// that multiplies the path gain on top of Rayleigh fast fading.

// WithNoiseFigure returns a copy of the config with the given receiver
// noise figure in dB.
func (c Config) WithNoiseFigure(db float64) Config {
	c.NoiseFigureDB = db
	return c
}

// WithInterferenceMargin returns a copy of the config with the given
// inter-cell interference margin in dB.
func (c Config) WithInterferenceMargin(db float64) Config {
	c.InterferenceMarginDB = db
	return c
}

// WithShadowing returns a copy of the config with log-normal shadowing of
// the given standard deviation in dB.
func (c Config) WithShadowing(stdDB float64) Config {
	c.ShadowingStdDB = stdDB
	return c
}

// effectiveNoisePSD applies the noise figure and interference margin.
func (c Config) effectiveNoisePSD() float64 {
	lift := c.NoiseFigureDB + c.InterferenceMarginDB
	if lift == 0 {
		return c.NoisePSD
	}
	return c.NoisePSD * math.Pow(10, lift/10)
}

// SampleShadowGain draws one link's shadowing power gain: log-normal with
// median 1 (0 dB) and the configured dB standard deviation. With shadowing
// disabled it returns exactly 1.
func (c Config) SampleShadowGain(src *rng.Source) float64 {
	if c.ShadowingStdDB <= 0 {
		return 1
	}
	return math.Pow(10, c.ShadowingStdDB*src.Norm()/10)
}

// SampleShadowGains draws a server×user matrix of shadowing gains.
func (c Config) SampleShadowGains(numServers, numUsers int, src *rng.Source) ([][]float64, error) {
	if numServers <= 0 || numUsers <= 0 {
		return nil, fmt.Errorf("wireless: need positive dims, got %dx%d", numServers, numUsers)
	}
	out := make([][]float64, numServers)
	for m := range out {
		out[m] = make([]float64, numUsers)
		for k := range out[m] {
			out[m][k] = c.SampleShadowGain(src)
		}
	}
	return out, nil
}
