package wireless

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"trimcaching/internal/rng"
)

func TestDBmConversions(t *testing.T) {
	cases := []struct {
		dbm   float64
		watts float64
	}{
		{30, 1},
		{0, 0.001},
		{43, 19.952623149688797},
		{-174, 3.9810717055349695e-21},
	}
	for _, c := range cases {
		if got := DBmToWatts(c.dbm); math.Abs(got-c.watts)/c.watts > 1e-9 {
			t.Fatalf("DBmToWatts(%v) = %v, want %v", c.dbm, got, c.watts)
		}
		if got := WattsToDBm(c.watts); math.Abs(got-c.dbm) > 1e-9 {
			t.Fatalf("WattsToDBm(%v) = %v, want %v", c.watts, got, c.dbm)
		}
	}
}

func TestDBmRoundTripProperty(t *testing.T) {
	f := func(dbm float64) bool {
		if math.IsNaN(dbm) || math.Abs(dbm) > 300 {
			return true
		}
		return math.Abs(WattsToDBm(DBmToWatts(dbm))-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.BandwidthHz = 0 },
		func(c *Config) { c.TransmitPowerW = -1 },
		func(c *Config) { c.NoisePSD = 0 },
		func(c *Config) { c.AntennaGain = math.NaN() },
		func(c *Config) { c.PathLossExp = 0 },
		func(c *Config) { c.ActiveProb = 0 },
		func(c *Config) { c.ActiveProb = 1.5 },
		func(c *Config) { c.BackhaulBps = math.Inf(1) },
		func(c *Config) { c.CoverageRadiusM = -275 },
		func(c *Config) { c.MinDistanceM = 0 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d: expected validation error", i)
		}
	}
}

func TestRateNoUsers(t *testing.T) {
	c := DefaultConfig()
	if _, err := c.RateBps(100, 0); !errors.Is(err, ErrNoUsers) {
		t.Fatalf("want ErrNoUsers, got %v", err)
	}
}

func TestRateDecreasesWithDistance(t *testing.T) {
	c := DefaultConfig()
	prev := math.Inf(1)
	for _, d := range []float64{10, 50, 100, 200, 275} {
		rate, err := c.RateBps(d, 10)
		if err != nil {
			t.Fatal(err)
		}
		if rate <= 0 || rate >= prev {
			t.Fatalf("rate at %vm = %v (prev %v); must be positive and decreasing", d, rate, prev)
		}
		prev = rate
	}
}

func TestRatePlausibleMagnitude(t *testing.T) {
	// With the paper's parameters a user at 100 m sharing a 10-user cell
	// should see a rate of roughly a gigabit per second; at the coverage
	// edge it should still be in the hundreds of Mb/s. These bands sanity
	// check the unit bookkeeping (Hz vs MHz, dBm vs W).
	c := DefaultConfig()
	near, err := c.RateBps(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if near < 200e6 || near > 20e9 {
		t.Fatalf("rate at 100m = %v bps, outside plausible band", near)
	}
	far, err := c.RateBps(275, 10)
	if err != nil {
		t.Fatal(err)
	}
	if far < 20e6 || far > 10e9 {
		t.Fatalf("rate at 275m = %v bps, outside plausible band", far)
	}
}

func TestRateDecreasesWithLoad(t *testing.T) {
	c := DefaultConfig()
	r5, err := c.RateBps(150, 5)
	if err != nil {
		t.Fatal(err)
	}
	r50, err := c.RateBps(150, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r50 >= r5 {
		t.Fatalf("rate must decrease with more users: 5→%v 50→%v", r5, r50)
	}
}

func TestLoneUserShareCapped(t *testing.T) {
	// With pA=0.5 and 1 user, the expected active count (0.5) is floored to
	// 1, so the user gets at most the full bandwidth, not double.
	c := DefaultConfig()
	r1, err := c.RateBps(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.RateBps(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-r2) > 1e-6 {
		t.Fatalf("1-user and 2-user (pA=0.5) shares should match: %v vs %v", r1, r2)
	}
}

func TestMinDistanceClamp(t *testing.T) {
	c := DefaultConfig()
	r0, err := c.RateBps(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.RateBps(c.MinDistanceM, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(r0, 0) || math.IsNaN(r0) || r0 != r1 {
		t.Fatalf("zero distance must clamp to MinDistance: %v vs %v", r0, r1)
	}
}

func TestFadedRate(t *testing.T) {
	c := DefaultConfig()
	base, err := c.RateBps(150, 10)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := c.FadedRateBps(150, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	faded, err := c.FadedRateBps(150, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !(faded < base && base < boosted) {
		t.Fatalf("fading ordering violated: %v %v %v", faded, base, boosted)
	}
	zero, err := c.FadedRateBps(150, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Fatalf("deep fade should zero the rate, got %v", zero)
	}
	if _, err := c.FadedRateBps(150, 10, -1); err == nil {
		t.Fatal("negative fading gain must error")
	}
}

func TestFadedRateMeanNearAverageRateOrder(t *testing.T) {
	// E[log(1+snr·h)] <= log(1+snr) by Jensen; check the Monte-Carlo mean
	// lands below the average-channel rate but within a sane factor.
	c := DefaultConfig()
	src := rng.New(9)
	base, err := c.RateBps(200, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		r, err := c.FadedRateBps(200, 10, src.Exp())
		if err != nil {
			t.Fatal(err)
		}
		sum += r
	}
	mean := sum / n
	if mean >= base {
		t.Fatalf("Jensen violated: faded mean %v >= base %v", mean, base)
	}
	if mean < 0.5*base {
		t.Fatalf("faded mean %v implausibly far below base %v", mean, base)
	}
}

func TestCovers(t *testing.T) {
	c := DefaultConfig()
	if !c.Covers(275) || !c.Covers(0) {
		t.Fatal("coverage boundary inclusive")
	}
	if c.Covers(275.01) {
		t.Fatal("beyond radius must not be covered")
	}
}

func TestSNRPositiveProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(d float64, n uint8) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		d = math.Abs(math.Mod(d, 1e4))
		users := int(n%60) + 1
		snr, err := c.SNR(d, users)
		if err != nil {
			return false
		}
		return snr > 0 && !math.IsNaN(snr) && !math.IsInf(snr, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
