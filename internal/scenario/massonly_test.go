package scenario

import (
	"testing"
)

// TestReviseUsersMassOnlyMatchesFullRebind is the mass-only property pin:
// when only probability rows change (deadline and inference rows stay
// bound), the cheap mass-only revise path must be bit-identical to the
// full rebind path and to a fresh build — reachability untouched, masses
// and the inverted tracking index refreshed — and the instance's total
// mass must equal the canonical ascending-user, ascending-model
// resummation, independent of which users were revised.
func TestReviseUsersMassOnlyMatchesFullRebind(t *testing.T) {
	massIns, massWork, parent, _, users := reviseFixture(t)
	fullIns, fullWork, _, _, _ := reviseFixture(t)
	K, I := massIns.NumUsers(), massIns.NumModels()

	// Prime lazily-built state so both paths run their incremental forms.
	if _, err := massIns.UpdateUsers(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fullIns.UpdateUsers(nil, nil); err != nil {
		t.Fatal(err)
	}

	// Three rounds of prob-row-only churn: scaled rows (mass surge), a row
	// zeroed (user goes idle), and a row restored to its base profile.
	for round := 0; round < 3; round++ {
		var revised []int
		for k := round; k < K; k += 2 {
			revised = append(revised, k)
			row := make([]float64, I)
			base := parent.ProbRow(k)
			switch {
			case round == 0:
				for i := range row {
					row[i] = 1.5 * base[i]
				}
			case round == 1 && k%4 == 1:
				// leave row all-zero: the user drops out of tracking
			default:
				copy(row, base)
			}
			if err := massWork.SetUserProbRow(k, row); err != nil {
				t.Fatal(err)
			}
			if err := fullWork.SetUserProbRow(k, append([]float64(nil), row...)); err != nil {
				t.Fatal(err)
			}
		}
		massDelta, err := massIns.ReviseUsers(nil, revised, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fullIns.ReviseUsers(revised, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
		sameInstanceState(t, "mass-only vs full rebind", massIns, fullIns)

		fresh, err := massIns.Rebuild(users)
		if err != nil {
			t.Fatal(err)
		}
		sameInstanceState(t, "mass-only vs fresh build", massIns, fresh)

		// The revision delta must name every revised user so evaluators
		// refresh their gain rows.
		inDelta := make(map[int]bool, len(massDelta.Revised))
		for _, k := range massDelta.Revised {
			inDelta[k] = true
		}
		for _, k := range revised {
			if !inDelta[k] {
				t.Fatalf("round %d: revised user %d missing from delta", round, k)
			}
		}

		// Total mass is the canonical ascending resummation, not an
		// incrementally patched accumulator.
		var want float64
		for k := 0; k < K; k++ {
			for _, p := range massWork.ProbRow(k) {
				want += p
			}
		}
		if got := massIns.TotalMass(); got != want {
			t.Fatalf("round %d: total mass %.17g, want resummation %.17g", round, got, want)
		}
	}
}
