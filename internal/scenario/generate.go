package scenario

import (
	"fmt"

	"trimcaching/internal/modellib"
	"trimcaching/internal/rng"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// GenConfig bundles everything needed to sample a random problem instance.
// The model library is built once per experiment and shared across the
// randomly drawn topologies and workloads (§VII-A averages over 100 network
// topologies with a fixed library).
type GenConfig struct {
	Topology topology.Config
	Wireless wireless.Config
	Workload workload.Config
}

// Generate samples a topology and workload from cfg and assembles the
// instance. Deterministic in src: the topology and workload use independent
// sub-streams, so the draw is stable under config reordering.
func Generate(lib *modellib.Library, cfg GenConfig, src *rng.Source) (*Instance, error) {
	if lib == nil {
		return nil, fmt.Errorf("scenario: library is required")
	}
	topo, err := topology.Generate(cfg.Topology, src.Split("topology"))
	if err != nil {
		return nil, fmt.Errorf("scenario: generate topology: %w", err)
	}
	work, err := workload.Generate(cfg.Topology.NumUsers, lib.NumModels(), cfg.Workload, src.Split("workload"))
	if err != nil {
		return nil, fmt.Errorf("scenario: generate workload: %w", err)
	}
	var shadow [][]float64
	if cfg.Wireless.ShadowingStdDB > 0 {
		shadow, err = cfg.Wireless.SampleShadowGains(topo.NumServers(), topo.NumUsers(), src.Split("shadowing"))
		if err != nil {
			return nil, fmt.Errorf("scenario: sample shadowing: %w", err)
		}
	}
	return NewShadowed(topo, lib, work, cfg.Wireless, shadow)
}

// GenerateCoordinator samples the identical topology and workload draw as
// Generate (same sub-streams, bit for bit) but assembles a coordinator
// instance (NewCoordinator): thresholds, rank index, topology, and workload
// only — no per-link rates and no reachability tables. This is the global
// instance a sharded engine should be handed at scale, where the full
// O(M·K + K·I·words) state would cost gigabytes nobody reads. Shadowed
// configurations are rejected (coordinators carry no per-link state).
func GenerateCoordinator(lib *modellib.Library, cfg GenConfig, src *rng.Source) (*Instance, error) {
	if lib == nil {
		return nil, fmt.Errorf("scenario: library is required")
	}
	if cfg.Wireless.ShadowingStdDB > 0 {
		return nil, fmt.Errorf("scenario: coordinator instances carry no per-link shadowing state")
	}
	topo, err := topology.Generate(cfg.Topology, src.Split("topology"))
	if err != nil {
		return nil, fmt.Errorf("scenario: generate topology: %w", err)
	}
	work, err := workload.Generate(cfg.Topology.NumUsers, lib.NumModels(), cfg.Workload, src.Split("workload"))
	if err != nil {
		return nil, fmt.Errorf("scenario: generate workload: %w", err)
	}
	return NewCoordinator(topo, lib, work, cfg.Wireless)
}

// SampleGains draws one Rayleigh block-fading realization: unit-mean
// exponential power gains for every (server, user) link.
func SampleGains(numServers, numUsers int, src *rng.Source) [][]float64 {
	gains := make([][]float64, numServers)
	for m := range gains {
		gains[m] = make([]float64, numUsers)
	}
	SampleGainsInto(gains, src)
	return gains
}

// SampleGainsInto fills a preallocated gain matrix with one realization,
// drawing in the same order as SampleGains. Reusing the matrix across
// realizations keeps the Monte-Carlo inner loop allocation-free.
func SampleGainsInto(gains [][]float64, src *rng.Source) {
	for m := range gains {
		row := gains[m]
		for k := range row {
			row[k] = src.Exp()
		}
	}
}
