package scenario

import (
	"testing"

	"trimcaching/internal/bitset"
	"trimcaching/internal/geom"
	"trimcaching/internal/libgen"
	"trimcaching/internal/rng"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// reviseFixture builds an instance over an aliased workload (so rows can
// be swapped) plus the parent workload supplying real rows.
func reviseFixture(t *testing.T) (*Instance, *workload.Workload, *workload.Workload, geom.Area, []geom.Point) {
	t.Helper()
	src := rng.New(21)
	lib, err := libgen.GenerateLoRA(libgen.DefaultLoRAConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	area, err := geom.NewArea(800)
	if err != nil {
		t.Fatal(err)
	}
	const K = 18
	servers := area.SamplePoints(src.Split("servers"), 5)
	users := area.SamplePoints(src.Split("users"), K)
	wcfg := wireless.DefaultConfig()
	wcfg.BackhaulBps = 1e9
	wl := workload.DefaultConfig()
	wl.DeadlineMinS, wl.DeadlineMaxS = 60, 180
	wl.InferMinS, wl.InferMaxS = 1, 5
	parent, err := workload.Generate(K, lib.NumModels(), wl, src.Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	aliased, err := workload.NewAliased(K, lib.NumModels())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < K; k++ {
		if err := aliased.SetUserRows(k, parent.ProbRow(k), parent.DeadlineRow(k), parent.InferRow(k)); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.New(area, servers, users, wcfg.CoverageRadiusM)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := New(topo, lib, aliased, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	return ins, aliased, parent, area, users
}

func sameInstanceState(t *testing.T, label string, got, want *Instance) {
	t.Helper()
	M, K, I := want.NumServers(), want.NumUsers(), want.NumModels()
	if got.TotalMass() != want.TotalMass() {
		t.Errorf("%s: total mass %v, want %v", label, got.TotalMass(), want.TotalMass())
	}
	for k := 0; k < K; k++ {
		for m := 0; m < M; m++ {
			if got.AvgRateBps(m, k) != want.AvgRateBps(m, k) {
				t.Fatalf("%s: rate(%d,%d) %v, want %v", label, m, k, got.AvgRateBps(m, k), want.AvgRateBps(m, k))
			}
		}
		for i := 0; i < I; i++ {
			if !got.ServerMask(k, i).Equal(want.ServerMask(k, i)) {
				t.Fatalf("%s: server mask (%d,%d) differs", label, k, i)
			}
		}
	}
	for m := 0; m < M; m++ {
		for i := 0; i < I; i++ {
			// Zero-mass users are untracked in the inverted index (their
			// bits may lag the reach rows), so compare the masks bit by bit
			// for mass-carrying users and through the mass sums overall.
			gm, wm := got.UserMask(m, i), want.UserMask(m, i)
			for k := 0; k < K; k++ {
				if !rowHasMass(want.Workload().ProbRow(k)) {
					continue
				}
				if gm.Has(k) != wm.Has(k) {
					t.Fatalf("%s: user mask (%d,%d) differs at user %d", label, m, i, k)
				}
			}
			if got.HitMass(m, i) != want.HitMass(m, i) {
				t.Fatalf("%s: hit mass (%d,%d) %v, want %v", label, m, i, got.HitMass(m, i), want.HitMass(m, i))
			}
		}
	}
}

// TestReviseUsersMatchesFreshBuild swaps rows (zeroing one user, rebinding
// another to a different user's demand) while moving users, and pins the
// revised instance bit-identical to a fresh build over the same workload
// state and positions — including after a further plain delta update,
// which exercises the rebuilt threshold rank rows.
func TestReviseUsersMatchesFreshBuild(t *testing.T) {
	ins, aliased, parent, area, users := reviseFixture(t)
	zero := make([]float64, ins.NumModels())
	walk := rng.New(5)

	// Prime the flip index so revisions exercise the rank-row rebuild.
	if _, err := ins.UpdateUsers(nil, nil); err != nil {
		t.Fatal(err)
	}

	pos := append([]geom.Point(nil), users...)
	for round := 0; round < 4; round++ {
		// Walk a third of the users.
		var moved []int
		var movedPos []geom.Point
		for k := round % 3; k < len(pos); k += 3 {
			pos[k] = area.SamplePoint(walk)
			moved = append(moved, k)
			movedPos = append(movedPos, pos[k])
		}
		// Revise two users: one parked-and-zeroed, one rebound to another
		// user's rows (a shard handoff's two halves).
		parkUser := (2 + round) % len(pos)
		bindUser := (7 + round) % len(pos)
		if parkUser == bindUser {
			bindUser = (bindUser + 1) % len(pos)
		}
		if err := aliased.SetUserRows(parkUser, zero, zero, zero); err != nil {
			t.Fatal(err)
		}
		donor := (bindUser + 3) % len(pos)
		if err := aliased.SetUserRows(bindUser, parent.ProbRow(donor), parent.DeadlineRow(donor), parent.InferRow(donor)); err != nil {
			t.Fatal(err)
		}
		// And one mass-only revision: an ownership flip swaps just the
		// probability row (thresholds stay bound).
		flipUser := (11 + round) % len(pos)
		if flipUser == parkUser || flipUser == bindUser {
			flipUser = (flipUser + 2) % len(pos)
		}
		flipProb := zero
		if round%2 == 1 {
			flipProb = parent.ProbRow(flipUser)
		}
		if err := aliased.SetUserProbRow(flipUser, flipProb); err != nil {
			t.Fatal(err)
		}
		delta, err := ins.ReviseUsers([]int{parkUser, bindUser}, []int{flipUser}, moved, movedPos)
		if err != nil {
			t.Fatal(err)
		}
		if delta.RevGen != ins.RevisionGeneration() {
			t.Errorf("round %d: delta rev gen %d, instance %d", round, delta.RevGen, ins.RevisionGeneration())
		}
		fresh, err := ins.Rebuild(pos)
		if err != nil {
			t.Fatal(err)
		}
		sameInstanceState(t, "revised", ins, fresh)
	}
}

// fakeColumns is a minimal ServerColumns view for kernel tests.
type fakeColumns []uint64

func (f fakeColumns) PackedServerColumns() []uint64 { return f }

// TestReviseUsersFusedKernel pins the rank-indexed fused measurement on a
// revised instance against the dense kernel on a fresh build: the revised
// rank rows must describe the new thresholds exactly.
func TestReviseUsersFusedKernel(t *testing.T) {
	ins, aliased, parent, _, users := reviseFixture(t)
	if _, err := ins.UpdateUsers(nil, nil); err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, ins.NumModels())
	if err := aliased.SetUserRows(3, zero, zero, zero); err != nil {
		t.Fatal(err)
	}
	if err := aliased.SetUserRows(5, parent.ProbRow(9), parent.DeadlineRow(9), parent.InferRow(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.ReviseUsers([]int{3, 5}, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	fresh, err := ins.Rebuild(users)
	if err != nil {
		t.Fatal(err)
	}

	// A placement view caching a few models everywhere.
	sw := ins.ServerMaskWords()
	cols := make(fakeColumns, ins.NumModels()*sw)
	full := bitset.Set(make([]uint64, sw))
	full.SetAll(ins.NumServers())
	for _, i := range []int{0, 2, 7, 11} {
		copy(cols[i*sw:(i+1)*sw], full)
	}
	gains := SampleGains(ins.NumServers(), ins.NumUsers(), rng.New(33))
	got := make([]float64, 1)
	want := make([]float64, 1)
	if err := ins.FadedHitMass(gains, []ServerColumns{cols}, got, nil); err != nil {
		t.Fatal(err)
	}
	if err := fresh.FadedHitMass(gains, []ServerColumns{cols}, want, nil); err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Errorf("fused hit mass on revised instance %v, fresh build %v", got[0], want[0])
	}
	if got[0] <= 0 {
		t.Error("degenerate fixture: zero hit mass")
	}
}
