package scenario

import (
	"math"
	"testing"

	"trimcaching/internal/bitset"
)

// outageFixture is reviseFixture plus a generation bump so lazily-built
// state (flip index, update scratch) exists before the outage path runs.
func outageFixture(t *testing.T) (*Instance, []int) {
	t.Helper()
	ins, _, _, _, _ := reviseFixture(t)
	downed := []int{1, 3}
	return ins, downed
}

// TestSetServersDownMatchesColdReducedInstance pins the outage-repair
// contract's instance half: after SetServersDown, every rate, reachability
// row, and inverted mask is bit-identical to a freshly built instance that
// had the same servers taken down immediately after construction (the cold
// "reduced instance") — and to Rebuild's output, which re-applies the down
// set. No derived state may remember that the servers were ever up.
func TestSetServersDownMatchesColdReducedInstance(t *testing.T) {
	ins, downed := outageFixture(t)
	if _, err := ins.SetServersDown(downed, true); err != nil {
		t.Fatal(err)
	}

	cold, _, _, _, _ := reviseFixture(t)
	if _, err := cold.SetServersDown(downed, true); err != nil {
		t.Fatal(err)
	}
	sameInstanceState(t, "warm outage vs cold reduced", ins, cold)

	rebuilt, err := ins.Rebuild(ins.Topology().UserPositions())
	if err != nil {
		t.Fatal(err)
	}
	sameInstanceState(t, "rebuild carries the down set", rebuilt, cold)

	for _, m := range downed {
		if !ins.ServerDown(m) {
			t.Fatalf("server %d not reported down", m)
		}
		for k := 0; k < ins.NumUsers(); k++ {
			if r := ins.AvgRateBps(m, k); r != 0 {
				t.Fatalf("down server %d still has rate %v to user %d", m, r, k)
			}
		}
	}
	if got := ins.DownServers(); len(got) != len(downed) {
		t.Fatalf("DownServers() = %v, want %v", got, downed)
	}
}

// TestSetServersDownRecoveryRoundTrip pins the recovery half: because an
// outage changes no association geometry, bringing the servers back must
// restore the instance bit-for-bit — rates, relay choices, reachability.
func TestSetServersDownRecoveryRoundTrip(t *testing.T) {
	ins, downed := outageFixture(t)
	pristine, _, _, _, _ := reviseFixture(t)

	if _, err := ins.SetServersDown(downed, true); err != nil {
		t.Fatal(err)
	}
	delta, err := ins.SetServersDown(downed, false)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Gen != ins.Generation() {
		t.Fatalf("delta generation %d, instance at %d", delta.Gen, ins.Generation())
	}
	sameInstanceState(t, "outage+recovery round trip", ins, pristine)
	if n := len(ins.DownServers()); n != 0 {
		t.Fatalf("%d servers still down after recovery", n)
	}
}

// TestSetServersDownDeltaCoversChangedPairs pins the delta contract: Pairs
// must cover every (server, model) pair whose tracked user mask changed,
// so a warm evaluator repairs over exactly the affected columns.
func TestSetServersDownDeltaCoversChangedPairs(t *testing.T) {
	ins, downed := outageFixture(t)
	M, I := ins.NumServers(), ins.NumModels()
	before := make([]bitset.Set, M*I)
	for m := 0; m < M; m++ {
		for i := 0; i < I; i++ {
			before[m*I+i] = ins.UserMask(m, i).Clone()
		}
	}
	delta, err := ins.SetServersDown(downed, true)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for m := 0; m < M; m++ {
		for i := 0; i < I; i++ {
			if !ins.UserMask(m, i).Equal(before[m*I+i]) {
				changed++
				if !delta.Pairs.Has(m*I + i) {
					t.Fatalf("pair (server %d, model %d) changed but is not in the delta", m, i)
				}
			}
		}
	}
	if changed == 0 {
		t.Fatal("outage changed no user masks; fixture too small to exercise the path")
	}
}

// TestSetServersDownNoToggleIsNoOp pins that re-downing already-down
// servers does not bump the generation or emit pairs.
func TestSetServersDownNoToggleIsNoOp(t *testing.T) {
	ins, downed := outageFixture(t)
	if _, err := ins.SetServersDown(downed, true); err != nil {
		t.Fatal(err)
	}
	gen := ins.Generation()
	delta, err := ins.SetServersDown(downed, true)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Generation() != gen {
		t.Fatalf("no-op toggle bumped generation %d -> %d", gen, ins.Generation())
	}
	if delta.Gen != gen || delta.Pairs.Count() != 0 || len(delta.Users) != 0 {
		t.Fatalf("no-op delta carries work: gen %d pairs %d users %d", delta.Gen, delta.Pairs.Count(), len(delta.Users))
	}
}

// TestSetServersDownLatencyInfinite pins the latency view: a request served
// by a down server is unservable (infinite latency), so measurement paths
// that consult latency agree with the reachability tables.
func TestSetServersDownLatencyInfinite(t *testing.T) {
	ins, downed := outageFixture(t)
	if _, err := ins.SetServersDown(downed, true); err != nil {
		t.Fatal(err)
	}
	m := downed[0]
	for k := 0; k < ins.NumUsers(); k++ {
		for i := 0; i < ins.NumModels(); i++ {
			if l := ins.LatencyS(m, k, i); !math.IsInf(l, 1) {
				t.Fatalf("latency(user %d, model %d) via down server %d = %v, want +Inf", k, i, m, l)
			}
		}
	}
}
