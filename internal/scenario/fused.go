// This file is the fused fading-measurement kernel: score placements
// under a block of fading realizations without materializing the
// K×I×words reachability indicator. The two-pass path (FadedReach
// filling Reach.bits, then an evaluator streaming them again) stays for
// callers that need the full indicator; every scalar-only consumer
// (checkpoint measurement in both dynamics engine modes) goes through
// FadedHitMass or FadedHitMassBlock.
//
// The kernel is realization-blocked and multi-placement: one pass over
// the requests gathers each user's link data — covering rates in a CSR
// link table, relay rates, server bit positions, threshold rank cutoffs
// — exactly once per block, then scores all R realizations against all
// P placement columns before moving to the next user. The gather and
// rank work that a per-realization sweep redoes R×P times is paid once.
// Hit masses accumulate per (realization, placement) in ascending
// (k, model) order, so results are bit-identical to the two-pass path
// and independent of block size: same word ops, same float add order.
package scenario

import (
	"fmt"
	mbits "math/bits"

	"trimcaching/internal/bitset"
	"trimcaching/internal/rng"
)

// ServerColumns is the fused measurement kernel's read-only view of a
// placement: for every model, the word-packed set of servers caching it.
// placement.Placement implements it; keeping the seam here lets the kernel
// consume placements without scenario importing placement.
type ServerColumns interface {
	// PackedServerColumns returns every per-model server column
	// concatenated, laid out [i*words + w] with words = bitset.Words(M),
	// bit m set iff server m caches model i. The slice must stay valid and
	// unmodified for the duration of the scoring call.
	PackedServerColumns() []uint64
}

// FadeScratch owns the reusable state of the fused measurement kernel: the
// CSR link table (per-user covering links in ascending server order), the
// per-link rate and per-user relay tables for one realization block, and
// the per-user gather buffers. Allocate once per goroutine with
// MakeFadeScratch and reuse across calls; the per-block tables grow on
// demand, so steady-state calls perform no allocation.
type FadeScratch struct {
	linkStart []int32   // linkStart[k]..linkStart[k+1]: user k's link slots
	cursor    []int32   // per-user fill cursor (m-major rate fill)
	rates     []float64 // rates[slot*block + r]
	relay     []float64 // relay[k*block + r]
	rowBuf    []float64 // sampled gains, one server row × block realizations
	hits      []uint64  // per-(user, realization, view) hit mask over models
	covMask   []uint64  // positive-rate covering servers, serverWords
	dirRates  []float64 // gathered covering rates for one (user, realization)
	dirWords  []int32   // matching column word offsets (m >> 6)
	dirBits   []uint64  // matching in-word bit masks (1 << (m & 63))
	dirCuts   []int32   // matching threshold rank cutoffs
	cols      [][]uint64
	views     []ServerColumns
	maskedBuf []uint64   // capacity-masked column copies (see maskCapCols)
	masked    [][]uint64 // per-view slices into maskedBuf
}

// MemoryBytes returns the heap bytes the scratch owns at its current
// grown-to capacity.
func (s *FadeScratch) MemoryBytes() int64 {
	n := int64(cap(s.linkStart)+cap(s.cursor)+cap(s.dirWords)+cap(s.dirCuts)) * 4
	n += int64(cap(s.rates)+cap(s.relay)+cap(s.rowBuf)+cap(s.dirRates)) * 8
	n += int64(cap(s.hits)+cap(s.covMask)+cap(s.dirBits)+cap(s.maskedBuf)) * 8
	n += int64(cap(s.cols)+cap(s.views)+cap(s.masked)) * 24
	return n
}

// ViewScratch returns a reusable ServerColumns slice of length n, for
// wrappers (placement.Evaluator.FadedHitRatios) that adapt concrete
// placement types per call without allocating per realization.
func (s *FadeScratch) ViewScratch(n int) []ServerColumns {
	if cap(s.views) < n {
		s.views = make([]ServerColumns, n)
	}
	return s.views[:n]
}

// MakeFadeScratch allocates a reusable scratch for FadedHitMass and
// FadedHitMassBlock.
func (ins *Instance) MakeFadeScratch() *FadeScratch {
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	links := 0
	for k := 0; k < K; k++ {
		links += len(ins.topo.ServersCovering(k))
	}
	return &FadeScratch{
		linkStart: make([]int32, K+1),
		cursor:    make([]int32, K),
		rates:     make([]float64, links),
		relay:     make([]float64, K),
		hits:      make([]uint64, bitset.Words(I)),
		covMask:   make([]uint64, ins.serverWords),
		dirRates:  make([]float64, M),
		dirWords:  make([]int32, M),
		dirBits:   make([]uint64, M),
		dirCuts:   make([]int32, M),
	}
}

// prep validates the scratch against the instance, rebuilds the CSR link
// table from the current topology (user movement re-shapes it, so it is
// O(K)-refreshed per call), and sizes the per-block tables.
func (s *FadeScratch) prep(ins *Instance, block int) error {
	K, I := ins.NumUsers(), ins.NumModels()
	if len(s.linkStart) != K+1 || len(s.hits) != bitset.Words(I) || len(s.covMask) != ins.serverWords {
		return fmt.Errorf("scenario: fade scratch dims do not match instance")
	}
	n := int32(0)
	for k := 0; k < K; k++ {
		s.linkStart[k] = n
		n += int32(len(ins.topo.ServersCovering(k)))
	}
	s.linkStart[K] = n
	if need := int(n) * block; cap(s.rates) < need {
		s.rates = make([]float64, need)
	} else {
		s.rates = s.rates[:need]
	}
	if need := K * block; cap(s.relay) < need {
		s.relay = make([]float64, need)
	} else {
		s.relay = s.relay[:need]
	}
	return nil
}

// gatherCols resolves and validates the placement views' column slices.
func (s *FadeScratch) gatherCols(views []ServerColumns, words int) ([][]uint64, error) {
	if cap(s.cols) < len(views) {
		s.cols = make([][]uint64, len(views))
	}
	cols := s.cols[:len(views)]
	for a, v := range views {
		cols[a] = v.PackedServerColumns()
		if len(cols[a]) != words {
			return nil, fmt.Errorf("scenario: view %d has %d column words, want %d", a, len(cols[a]), words)
		}
	}
	return cols, nil
}

// maskCapCols substitutes capacity-masked copies for the gathered
// placement columns when any server carries a finite storage budget: a
// blocked (server, model) bit must not score as a direct or relay hit,
// exactly as its reachability bits are cleared on the two-pass path. The
// caller's columns are read-only (they alias live placements), so the
// masked copies live in scratch-owned memory — grown once, then reused —
// and the common unconstrained case returns the input untouched.
func (ins *Instance) maskCapCols(cols [][]uint64, s *FadeScratch) [][]uint64 {
	if ins.capBlock == nil {
		return cols
	}
	words := len(ins.capBlock)
	if need := len(cols) * words; cap(s.maskedBuf) < need {
		s.maskedBuf = make([]uint64, need)
	}
	if cap(s.masked) < len(cols) {
		s.masked = make([][]uint64, len(cols))
	}
	masked := s.masked[:len(cols)]
	for a, col := range cols {
		dst := s.maskedBuf[a*words : (a+1)*words]
		for x, w := range col {
			dst[x] = w &^ ins.capBlock[x]
		}
		masked[a] = dst
	}
	return masked
}

// fadeRates fills the per-link faded rates (covering pairs only) and the
// per-user best relay rates for one realization, in the dense [m*K+k]
// layout FadedReach consumes.
func (ins *Instance) fadeRates(gains [][]float64, rates, relay []float64) error {
	M, K := ins.NumServers(), ins.NumUsers()
	// Only covering links are written and only covering links are read, so
	// the rate scratch needs no clearing between realizations — which is why
	// a down server's links are written as 0 rather than skipped.
	for m := 0; m < M; m++ {
		if ins.serverDown(m) {
			for _, k := range ins.topo.UsersOf(m) {
				rates[m*K+k] = 0
			}
			continue
		}
		load := ins.topo.Load(m)
		for _, k := range ins.topo.UsersOf(m) {
			r, err := ins.wcfg.FadedRateBps(ins.topo.Distance(m, k), load, ins.shadowGain(m, k)*gains[m][k])
			if err != nil {
				return fmt.Errorf("scenario: faded rate m=%d k=%d: %w", m, k, err)
			}
			rates[m*K+k] = r
		}
	}
	for k := 0; k < K; k++ {
		relay[k] = 0
		for _, m := range ins.topo.ServersCovering(k) {
			if rates[m*K+k] > relay[k] {
				relay[k] = rates[m*K+k]
			}
		}
	}
	return nil
}

// fillLinkRatesGains fills the CSR rate table from an explicit gain matrix
// (block = 1): the same FadedRateBps calls, in the same m-major order, as
// fadeRates — only the storage layout differs.
func (ins *Instance) fillLinkRatesGains(gains [][]float64, s *FadeScratch) error {
	K := ins.NumUsers()
	copy(s.cursor, s.linkStart[:K])
	for m := 0; m < ins.NumServers(); m++ {
		if ins.serverDown(m) {
			// The CSR scratch is not cleared between calls, so down links
			// are written as 0, not skipped.
			for _, k := range ins.topo.UsersOf(m) {
				s.rates[s.cursor[k]] = 0
				s.cursor[k]++
			}
			continue
		}
		load := ins.topo.Load(m)
		for _, k := range ins.topo.UsersOf(m) {
			slot := s.cursor[k]
			s.cursor[k]++
			r, err := ins.wcfg.FadedRateBps(ins.topo.Distance(m, k), load, ins.shadowGain(m, k)*gains[m][k])
			if err != nil {
				return fmt.Errorf("scenario: faded rate m=%d k=%d: %w", m, k, err)
			}
			s.rates[slot] = r
		}
	}
	ins.fillLinkRelay(1, s)
	return nil
}

// fillLinkRatesSampled draws one realization block's gains inline and fills
// the CSR rate table. Realization j consumes srcs[j] exactly as
// SampleGainsInto would — every server row's K draws in ascending user
// order, non-covering draws discarded — so the rates are bit-identical to
// sampling a full gain matrix and feeding it through the per-realization
// path. The (distance, load)-dependent SNR and bandwidth factors are
// hoisted per link across the block (wireless.Config.LinkRate), leaving
// one log2 per (link, realization).
func (ins *Instance) fillLinkRatesSampled(srcs []*rng.Source, s *FadeScratch) error {
	M, K := ins.NumServers(), ins.NumUsers()
	block := len(srcs)
	if need := block * K; cap(s.rowBuf) < need {
		s.rowBuf = make([]float64, need)
	}
	copy(s.cursor, s.linkStart[:K])
	for m := 0; m < M; m++ {
		for j := 0; j < block; j++ {
			row := s.rowBuf[j*K : (j+1)*K]
			src := srcs[j]
			for k := range row {
				row[k] = src.Exp()
			}
		}
		users := ins.topo.UsersOf(m)
		if len(users) == 0 {
			continue
		}
		if ins.serverDown(m) {
			// The row draws above already consumed this server's gains —
			// outages must not shift the fading stream — so only the rate
			// writes are replaced with zeros (the CSR scratch is reused
			// across calls and cannot be left stale).
			for _, k := range users {
				slot := int(s.cursor[k])
				s.cursor[k]++
				base := slot * block
				for j := 0; j < block; j++ {
					s.rates[base+j] = 0
				}
			}
			continue
		}
		load := ins.topo.Load(m)
		for _, k := range users {
			slot := int(s.cursor[k])
			s.cursor[k]++
			lr, err := ins.wcfg.LinkRate(ins.topo.Distance(m, k), load)
			if err != nil {
				return fmt.Errorf("scenario: faded rate m=%d k=%d: %w", m, k, err)
			}
			sg := ins.shadowGain(m, k)
			base := slot * block
			for j := 0; j < block; j++ {
				r, err := lr.RateBps(sg * s.rowBuf[j*K+k])
				if err != nil {
					return fmt.Errorf("scenario: faded rate m=%d k=%d: %w", m, k, err)
				}
				s.rates[base+j] = r
			}
		}
	}
	ins.fillLinkRelay(block, s)
	return nil
}

// fillLinkRelay fills the per-user best relay rates from the CSR rate
// table: the max over the user's covering links in ascending server order
// with a strict > compare — the same reduction fadeRates performs.
func (ins *Instance) fillLinkRelay(block int, s *FadeScratch) {
	K := ins.NumUsers()
	for k := 0; k < K; k++ {
		lo, hi := int(s.linkStart[k]), int(s.linkStart[k+1])
		for j := 0; j < block; j++ {
			best := 0.0
			for t := lo; t < hi; t++ {
				if v := s.rates[t*block+j]; v > best {
					best = v
				}
			}
			s.relay[k*block+j] = best
		}
	}
}

// checkGains validates the fading gain matrix dimensions.
func (ins *Instance) checkGains(gains [][]float64) error {
	M, K := ins.NumServers(), ins.NumUsers()
	if len(gains) != M {
		return fmt.Errorf("scenario: gains has %d rows, want %d", len(gains), M)
	}
	for m := range gains {
		if len(gains[m]) != K {
			return fmt.Errorf("scenario: gains[%d] has %d cols, want %d", m, len(gains[m]), K)
		}
	}
	return nil
}

// FadedHitMass computes, for every placement view, the expected request
// mass served within QoS under one Rayleigh-fading realization — the fused
// equivalent of FadedReach followed by HitRatioWithReach's AND-scoring.
// dst[a] receives the unnormalized hit mass of views[a] (divide by
// TotalMass for eq. 2). scratch may be nil (a fresh one is allocated).
//
// Per (k,i) the kernel reproduces the verdict fillReachRows would store —
// relay verdict broadcast, covering servers patched with their direct
// verdicts — but enumerates only the qualifying requests through the
// instance's threshold rank index. Each view's accumulator sees additions
// in ascending (k, model) order, exactly the order of the two-pass
// evaluator, so the paths agree bit-for-bit (pinned by the
// fused-equivalence tests).
func (ins *Instance) FadedHitMass(gains [][]float64, views []ServerColumns, dst []float64, scratch *FadeScratch) error {
	if err := ins.checkGains(gains); err != nil {
		return err
	}
	if len(dst) != len(views) {
		return fmt.Errorf("scenario: %d outputs for %d views", len(dst), len(views))
	}
	if scratch == nil {
		scratch = ins.MakeFadeScratch()
	}
	if err := scratch.prep(ins, 1); err != nil {
		return err
	}
	cols, err := scratch.gatherCols(views, ins.NumModels()*ins.serverWords)
	if err != nil {
		return err
	}
	cols = ins.maskCapCols(cols, scratch)
	if err := ins.fillLinkRatesGains(gains, scratch); err != nil {
		return err
	}
	for a := range dst {
		dst[a] = 0
	}
	if len(views) == 0 {
		return nil
	}
	ins.fusedHitMassBlocked(1, cols, dst, scratch)
	return nil
}

// FadedHitMassBlock scores every view under a block of fading
// realizations drawn inline from srcs: realization j draws from srcs[j]
// exactly the gains SampleGainsInto would produce, and
// dst[j*len(views)+a] receives views[a]'s unnormalized hit mass under
// realization j. Results are bit-identical to len(srcs) FadedHitMass
// calls over sampled gain matrices — realizations never interact — while
// the per-user gather, rank, and column work is paid once per block.
// scratch may be nil (a fresh one is allocated).
func (ins *Instance) FadedHitMassBlock(srcs []*rng.Source, views []ServerColumns, dst []float64, scratch *FadeScratch) error {
	block := len(srcs)
	if block == 0 {
		return fmt.Errorf("scenario: at least one fading source is required")
	}
	if len(dst) != block*len(views) {
		return fmt.Errorf("scenario: %d outputs for %d realizations x %d views", len(dst), block, len(views))
	}
	if scratch == nil {
		scratch = ins.MakeFadeScratch()
	}
	if err := scratch.prep(ins, block); err != nil {
		return err
	}
	cols, err := scratch.gatherCols(views, ins.NumModels()*ins.serverWords)
	if err != nil {
		return err
	}
	cols = ins.maskCapCols(cols, scratch)
	if err := ins.fillLinkRatesSampled(srcs, scratch); err != nil {
		return err
	}
	for x := range dst {
		dst[x] = 0
	}
	if len(views) == 0 {
		return nil
	}
	ins.fusedHitMassBlocked(block, cols, dst, scratch)
	return nil
}

// searchGreater returns the first index j with vals[j] > x in an ascending
// slice — the rank-prefix cutoff |{j : vals[j] ≤ x}|. Equivalent to
// sort.Search over the same predicate, inlined off the closure path for
// the kernel's hot loop.
func searchGreater(vals []float64, x float64) int {
	lo, hi := 0, len(vals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vals[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// fusedHitMassBlocked is the realization-blocked multi-placement kernel.
// For user k a request (k,i) can hit only through two sources: the relay
// verdict (minRel[k,i] ≤ relay rate) reaching a cached server outside the
// positive-rate covering set, or a positive-rate covering server m's
// direct verdict (minDir[k,i] ≤ rate_mk) with m cached. Both verdict sets
// are rank prefixes of the instance's construction-time threshold index,
// found by binary search, so the kernel touches exactly the qualifying
// requests instead of comparing all I thresholds per source. Qualifying
// hits are collected into a model bit mask per (realization, view) and
// the probability sum sweeps that mask in ascending model order — the
// same additions, in the same order, as a dense per-realization sweep.
//
// The per-user state that fading does not change — covering list, rank
// row slices, probability row — is fetched once per user and shared by
// all block realizations; only the per-realization gather (positive-rate
// links, cutoffs) runs R times.
func (ins *Instance) fusedHitMassBlocked(block int, cols [][]uint64, dst []float64, scratch *FadeScratch) {
	K, I := ins.NumUsers(), ins.NumModels()
	sw := ins.serverWords
	P := len(cols)
	rates, relay := scratch.rates, scratch.relay
	linkStart := scratch.linkStart
	hits := scratch.hits
	for w := range hits {
		hits[w] = 0
	}
	covMask := scratch.covMask
	// Relay sources are restricted to up servers: a cached down server has
	// its reachability bits cleared in the two-pass path, so the fused path
	// masks placement columns with the same up-servers word(s).
	up := ins.updFullRow
	for k := 0; k < K; k++ {
		if !ins.userHasMass[k] {
			// Zero-mass users (shard ghosts, parked slots) add exactly 0.0
			// per hit: skipping them is bitwise free and drops the ghost
			// band from the per-cell measurement cost.
			continue
		}
		covering := ins.topo.ServersCovering(k)
		lo := int(linkStart[k])
		relVals := ins.flipRelVals[k*I : (k+1)*I]
		relOrder := ins.flipRelOrder[k*I : (k+1)*I]
		dirVals := ins.flipDirVals[k*I : (k+1)*I]
		dirOrder := ins.flipDirOrder[k*I : (k+1)*I]
		probs := ins.work.ProbRow(k)
		for r := 0; r < block; r++ {
			// Covering servers with positive rate keep their direct verdict;
			// covering servers with zero rate fall through to the relay
			// verdict exactly like non-covering ones (fillReachRows'
			// direct > 0 guard), so the covered mask is built from
			// positive-rate links.
			nd := 0
			for w := 0; w < sw; w++ {
				covMask[w] = 0
			}
			for j, m := range covering {
				if rate := rates[(lo+j)*block+r]; rate > 0 {
					scratch.dirRates[nd] = rate
					scratch.dirWords[nd] = int32(m >> 6)
					scratch.dirBits[nd] = 1 << uint(m&63)
					covMask[m>>6] |= 1 << uint(m&63)
					nd++
				}
			}
			relayRate := relay[k*block+r]
			if relayRate <= 0 && nd == 0 {
				continue // every indicator word is zero: nothing to add
			}
			relCut := 0
			if relayRate > 0 {
				relCut = searchGreater(relVals, relayRate)
			}
			// One cutoff per positive covering link, shared by every view.
			for j := 0; j < nd; j++ {
				scratch.dirCuts[j] = int32(searchGreater(dirVals, scratch.dirRates[j]))
			}
			out := dst[r*P : (r+1)*P]
			if sw == 1 {
				cm := covMask[0]
				upWord := up[0]
				for a, col := range cols {
					// Relay source: any cached up server outside the
					// positive-rate covering set serves i.
					for j := 0; j < relCut; j++ {
						i := int(relOrder[j])
						if col[i]&upWord&^cm != 0 {
							hits[i>>6] |= 1 << (uint(i) & 63)
						}
					}
					// Direct source: covering server m serves i when cached.
					for j := 0; j < nd; j++ {
						bit := scratch.dirBits[j]
						cut := scratch.dirCuts[j]
						for x := int32(0); x < cut; x++ {
							i := int(dirOrder[x])
							if col[i]&bit != 0 {
								hits[i>>6] |= 1 << (uint(i) & 63)
							}
						}
					}
					out[a] = sweepHits(hits, probs, out[a])
				}
				continue
			}
			for a, col := range cols {
				for j := 0; j < relCut; j++ {
					i := int(relOrder[j])
					off := i * sw
					for w := 0; w < sw; w++ {
						if col[off+w]&up[w]&^covMask[w] != 0 {
							hits[i>>6] |= 1 << (uint(i) & 63)
							break
						}
					}
				}
				for j := 0; j < nd; j++ {
					dw := int(scratch.dirWords[j])
					bit := scratch.dirBits[j]
					cut := scratch.dirCuts[j]
					for x := int32(0); x < cut; x++ {
						i := int(dirOrder[x])
						if col[i*sw+dw]&bit != 0 {
							hits[i>>6] |= 1 << (uint(i) & 63)
						}
					}
				}
				out[a] = sweepHits(hits, probs, out[a])
			}
		}
	}
}

// sweepHits adds the probabilities of the set models onto the running
// accumulator in ascending model order, clearing the mask as it goes. The
// additions land directly on the per-(realization, view) accumulator — not
// on a per-user subtotal folded in afterwards — preserving the exact float
// add order of the two-pass evaluator.
func sweepHits(hits []uint64, probs []float64, sum float64) float64 {
	for w, v := range hits {
		if v == 0 {
			continue
		}
		hits[w] = 0
		base := w << 6
		for ; v != 0; v &= v - 1 {
			sum += probs[base|mbits.TrailingZeros64(v)]
		}
	}
	return sum
}
