// This file is the fused fading-measurement kernel: score placements
// under one fading realization without materializing the K×I×words
// reachability indicator. The two-pass path (FadedReach filling
// Reach.bits, then an evaluator streaming them again) stays for callers
// that need the full indicator; every scalar-only consumer (checkpoint
// measurement in both dynamics engine modes) goes through FadedHitMass,
// which computes each (k,i) indicator word and ANDs it against the
// placement columns in one pass — no bits write, no second stream. Hit
// masses accumulate in ascending (k,i) order per placement, so results
// are bit-identical to the two-pass path: same word ops, same float add
// order.

package scenario

import (
	"fmt"
	mbits "math/bits"
	"sort"

	"trimcaching/internal/bitset"
)

// ServerColumns is the fused measurement kernel's read-only view of a
// placement: for every model, the word-packed set of servers caching it.
// placement.Placement implements it; keeping the seam here lets the kernel
// consume placements without scenario importing placement.
type ServerColumns interface {
	// PackedServerColumns returns every per-model server column
	// concatenated, laid out [i*words + w] with words = bitset.Words(M),
	// bit m set iff server m caches model i. The slice must stay valid and
	// unmodified for the duration of the scoring call.
	PackedServerColumns() []uint64
}

// FadeScratch owns the per-realization scratch of the fused measurement
// kernel: per-link rate and per-user relay tables plus one indicator row
// and one hit mask. Allocate once per goroutine with MakeFadeScratch and
// reuse across realizations; a FadedHitMass call then performs no
// allocation.
type FadeScratch struct {
	rates    []float64
	relay    []float64
	row      []uint64  // multi-word indicator scratch, serverWords
	full     []uint64  // all-servers mask, serverWords (multi-word kernel)
	hits     []uint64  // per-(user, view) hit mask over models, Words(I)
	dirRates []float64 // gathered covering rates for one user
	dirBits  []uint64  // matching single-word bit masks
	dirCuts  []int     // matching threshold rank cutoffs
	cols     [][]uint64
	views    []ServerColumns
}

// ViewScratch returns a reusable ServerColumns slice of length n, for
// wrappers (placement.Evaluator.FadedHitRatios) that adapt concrete
// placement types per call without allocating per realization.
func (s *FadeScratch) ViewScratch(n int) []ServerColumns {
	if cap(s.views) < n {
		s.views = make([]ServerColumns, n)
	}
	return s.views[:n]
}

// MakeFadeScratch allocates a reusable scratch for FadedHitMass.
func (ins *Instance) MakeFadeScratch() *FadeScratch {
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	scratch := &FadeScratch{
		rates:    make([]float64, M*K),
		relay:    make([]float64, K),
		row:      make([]uint64, ins.serverWords),
		full:     make([]uint64, ins.serverWords),
		hits:     make([]uint64, bitset.Words(I)),
		dirRates: make([]float64, 0, M),
		dirBits:  make([]uint64, 0, M),
		dirCuts:  make([]int, 0, M),
	}
	bitset.Set(scratch.full).SetAll(M)
	return scratch
}

// fadeRates fills the per-link faded rates (covering pairs only) and the
// per-user best relay rates for one realization. Shared by FadedReach and
// FadedHitMass so both paths see identical rate tables.
func (ins *Instance) fadeRates(gains [][]float64, rates, relay []float64) error {
	M, K := ins.NumServers(), ins.NumUsers()
	// Only covering links are written and only covering links are read, so
	// the rate scratch needs no clearing between realizations.
	for m := 0; m < M; m++ {
		load := ins.topo.Load(m)
		for _, k := range ins.topo.UsersOf(m) {
			r, err := ins.wcfg.FadedRateBps(ins.topo.Distance(m, k), load, ins.shadowGain(m, k)*gains[m][k])
			if err != nil {
				return fmt.Errorf("scenario: faded rate m=%d k=%d: %w", m, k, err)
			}
			rates[m*K+k] = r
		}
	}
	for k := 0; k < K; k++ {
		relay[k] = 0
		for _, m := range ins.topo.ServersCovering(k) {
			if rates[m*K+k] > relay[k] {
				relay[k] = rates[m*K+k]
			}
		}
	}
	return nil
}

// checkGains validates the fading gain matrix dimensions.
func (ins *Instance) checkGains(gains [][]float64) error {
	M, K := ins.NumServers(), ins.NumUsers()
	if len(gains) != M {
		return fmt.Errorf("scenario: gains has %d rows, want %d", len(gains), M)
	}
	for m := range gains {
		if len(gains[m]) != K {
			return fmt.Errorf("scenario: gains[%d] has %d cols, want %d", m, len(gains[m]), K)
		}
	}
	return nil
}

// FadedHitMass computes, for every placement view, the expected request
// mass served within QoS under one Rayleigh-fading realization — the fused
// equivalent of FadedReach followed by HitRatioWithReach's AND-scoring.
// dst[a] receives the unnormalized hit mass of views[a] (divide by
// TotalMass for eq. 2). scratch may be nil (a fresh one is allocated).
//
// Per (k,i) the kernel computes the same indicator word fillReachRows
// would store — relay verdict broadcast, covering servers patched with
// their direct verdicts — but instead of writing it, immediately ANDs it
// against each view's server column for model i and accumulates p_{k,i}
// on intersection. Each view's accumulator sees additions in ascending
// (k,i) order, exactly the order of the two-pass evaluator, so the two
// paths agree bit-for-bit (pinned by the fused-equivalence tests).
func (ins *Instance) FadedHitMass(gains [][]float64, views []ServerColumns, dst []float64, scratch *FadeScratch) error {
	if err := ins.checkGains(gains); err != nil {
		return err
	}
	if len(dst) != len(views) {
		return fmt.Errorf("scenario: %d outputs for %d views", len(dst), len(views))
	}
	K, I := ins.NumUsers(), ins.NumModels()
	sw := ins.serverWords
	if scratch == nil {
		scratch = ins.MakeFadeScratch()
	}
	if len(scratch.rates) != ins.NumServers()*K || len(scratch.row) != sw || len(scratch.hits) != bitset.Words(I) {
		return fmt.Errorf("scenario: fade scratch dims do not match instance")
	}
	if cap(scratch.cols) < len(views) {
		scratch.cols = make([][]uint64, len(views))
	}
	cols := scratch.cols[:len(views)]
	for a, v := range views {
		cols[a] = v.PackedServerColumns()
		if len(cols[a]) != I*sw {
			return fmt.Errorf("scenario: view %d has %d column words, want %d", a, len(cols[a]), I*sw)
		}
	}
	if err := ins.fadeRates(gains, scratch.rates, scratch.relay); err != nil {
		return err
	}
	for a := range dst {
		dst[a] = 0
	}
	if len(views) == 0 {
		return nil
	}
	if sw == 1 {
		if ins.flipDirOrder != nil {
			// The threshold rank index (built once per instance by the
			// first delta update) turns the K×I verdict sweep into
			// per-user binary searches plus a walk over only the
			// qualifying requests — the common case for the incremental
			// engine, whose instance lives across checkpoints. Freshly
			// (re)built instances take the direct sweep below instead of
			// paying the index build for a handful of realizations.
			ins.fusedHitMassRanked(cols, dst, scratch)
			return nil
		}
		ins.fusedHitMass1(cols, dst, scratch)
		return nil
	}
	ins.fusedHitMassN(cols, dst, scratch)
	return nil
}

// fusedHitMassRanked is the rank-indexed single-word kernel. For user k a
// request (k,i) can hit only through two sources: the relay verdict
// (minRel[k,i] ≤ relay rate) reaching a non-covering cached server, or a
// covering server m's direct verdict (minDir[k,i] ≤ rate_mk) with m cached.
// Both verdict sets are rank prefixes of the instance's sorted threshold
// index, found by binary search, so the kernel touches exactly the
// qualifying requests instead of comparing all I thresholds per source.
// Qualifying hits are collected into a model bit mask per view and the
// probability sum sweeps that mask in ascending model order — the same
// additions, in the same order, as the dense sweep.
func (ins *Instance) fusedHitMassRanked(cols [][]uint64, dst []float64, scratch *FadeScratch) {
	K, I := ins.NumUsers(), ins.NumModels()
	rates, relay := scratch.rates, scratch.relay
	hits := scratch.hits
	for w := range hits {
		hits[w] = 0
	}
	for k := 0; k < K; k++ {
		if !ins.userHasMass[k] {
			// Zero-mass users (shard ghosts, parked slots) add exactly 0.0
			// per hit: skipping them is bitwise free and drops the ghost
			// band from the per-cell measurement cost.
			continue
		}
		// Covering servers with positive rate keep their direct verdict;
		// covering servers with zero rate fall through to the relay
		// verdict exactly like non-covering ones (fillReachRows' direct>0
		// guard), so the covered mask is built from positive-rate links.
		dirRates := scratch.dirRates[:0]
		dirBits := scratch.dirBits[:0]
		var covMask uint64
		for _, m := range ins.topo.ServersCovering(k) {
			if r := rates[m*K+k]; r > 0 {
				dirRates = append(dirRates, r)
				dirBits = append(dirBits, 1<<uint(m))
				covMask |= 1 << uint(m)
			}
		}
		relayRate := relay[k]
		if relayRate <= 0 && len(dirRates) == 0 {
			continue
		}
		relVals := ins.flipRelVals[k*I : (k+1)*I]
		relOrder := ins.flipRelOrder[k*I : (k+1)*I]
		dirVals := ins.flipDirVals[k*I : (k+1)*I]
		dirOrder := ins.flipDirOrder[k*I : (k+1)*I]
		relCut := 0
		if relayRate > 0 {
			relCut = sort.Search(I, func(j int) bool { return relVals[j] > relayRate })
		}
		// One cutoff per covering server, shared by every view.
		dirCuts := scratch.dirCuts[:0]
		for _, rate := range dirRates {
			dirCuts = append(dirCuts, sort.Search(I, func(x int) bool { return dirVals[x] > rate }))
		}
		probs := ins.work.ProbRow(k)
		for a, col := range cols {
			// Relay source: every non-covering cached server serves i.
			for j := 0; j < relCut; j++ {
				i := int(relOrder[j])
				if col[i]&^covMask != 0 {
					hits[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			// Direct source: covering server m serves i when cached.
			for j, cut := range dirCuts {
				bit := dirBits[j]
				for x := 0; x < cut; x++ {
					i := int(dirOrder[x])
					if col[i]&bit != 0 {
						hits[i>>6] |= 1 << (uint(i) & 63)
					}
				}
			}
			sum := dst[a]
			for w, v := range hits {
				if v == 0 {
					continue
				}
				hits[w] = 0
				base := w << 6
				for ; v != 0; v &= v - 1 {
					sum += probs[base|mbits.TrailingZeros64(v)]
				}
			}
			dst[a] = sum
		}
	}
}

// fusedHitMass1 is the single-word (M ≤ 64) fused kernel. The covering
// rates are gathered once per user (recomputeUserRows' hoisting); the
// indicator word per (k,i) matches fillReachRows' verdicts exactly.
func (ins *Instance) fusedHitMass1(cols [][]uint64, dst []float64, scratch *FadeScratch) {
	K, I := ins.NumUsers(), ins.NumModels()
	fullWord := uint64(1)<<uint(ins.NumServers()) - 1
	if ins.NumServers() == 64 {
		fullWord = ^uint64(0)
	}
	rates, relay := scratch.rates, scratch.relay
	var single []uint64
	if len(cols) == 1 {
		single = cols[0]
	}
	for k := 0; k < K; k++ {
		if !ins.userHasMass[k] {
			continue // zero-mass user: every addition would be +0.0
		}
		dirRates := scratch.dirRates[:0]
		dirBits := scratch.dirBits[:0]
		for _, m := range ins.topo.ServersCovering(k) {
			if r := rates[m*K+k]; r > 0 {
				dirRates = append(dirRates, r)
				dirBits = append(dirBits, 1<<uint(m))
			}
		}
		relayRate := relay[k]
		if relayRate <= 0 && len(dirRates) == 0 {
			continue // every indicator word is zero: nothing to add
		}
		minDir := ins.minDirRate[k*I : (k+1)*I]
		minRel := ins.minRelRate[k*I : (k+1)*I]
		probs := ins.work.ProbRow(k)
		if len(cols) == 1 {
			// Common case (one track measured per checkpoint): no inner
			// view loop.
			sum := dst[0]
			for i := 0; i < I; i++ {
				var w uint64
				if relayRate > 0 && relayRate >= minRel[i] {
					w = fullWord
				}
				for j, direct := range dirRates {
					if direct >= minDir[i] {
						w |= dirBits[j]
					} else {
						w &^= dirBits[j]
					}
				}
				if w&single[i] != 0 {
					sum += probs[i]
				}
			}
			dst[0] = sum
			continue
		}
		for i := 0; i < I; i++ {
			var w uint64
			if relayRate > 0 && relayRate >= minRel[i] {
				w = fullWord
			}
			for j, direct := range dirRates {
				if direct >= minDir[i] {
					w |= dirBits[j]
				} else {
					w &^= dirBits[j]
				}
			}
			if w == 0 {
				continue
			}
			for a, col := range cols {
				if w&col[i] != 0 {
					dst[a] += probs[i]
				}
			}
		}
	}
}

// fusedHitMassN is the multi-word (M > 64) fused kernel: each row is
// computed into the scratch row with fillReachRows' exact verdict logic,
// then intersected with every view's column.
func (ins *Instance) fusedHitMassN(cols [][]uint64, dst []float64, scratch *FadeScratch) {
	K, I := ins.NumUsers(), ins.NumModels()
	sw := ins.serverWords
	full := bitset.Set(scratch.full)
	rates, relay := scratch.rates, scratch.relay
	row := bitset.Set(scratch.row)
	for k := 0; k < K; k++ {
		if !ins.userHasMass[k] {
			continue // zero-mass user: every addition would be +0.0
		}
		covering := ins.topo.ServersCovering(k)
		relayRate := relay[k]
		minDir := ins.minDirRate[k*I : (k+1)*I]
		minRel := ins.minRelRate[k*I : (k+1)*I]
		probs := ins.work.ProbRow(k)
		for i := 0; i < I; i++ {
			if relayRate > 0 && relayRate >= minRel[i] {
				row.CopyFrom(full)
			} else {
				row.Zero()
			}
			for _, m := range covering {
				if direct := rates[m*K+k]; direct > 0 {
					if direct >= minDir[i] {
						row.Set(m)
					} else {
						row.Clear(m)
					}
				}
			}
			for a, col := range cols {
				if bitset.Intersects(row, bitset.Set(col[i*sw:(i+1)*sw])) {
					dst[a] += probs[i]
				}
			}
		}
	}
}
