// This file is the server-outage seam: SetServersDown takes servers out of
// (or back into) service and incrementally refreshes every derived quantity
// — link rates, relay rates, both packed reachability orientations — so a
// warm placement evaluator can repair over the reduced server set exactly
// as if the instance had been built without the down servers.
//
// An outage changes no association geometry: the topology still lists the
// down server as covering its users (so recovery restores the same links),
// but its rates are pinned to 0, it leaves every relay candidate set, and
// the up-servers mask drops its bit so no reachability row — average or
// faded — ever includes it. Placement gains over its cleared user masks are
// zero, and the greedy algorithms never place on a zero-gain column, so a
// repair after SetServersDown is bit-identical to a cold solve on the same
// reduced instance (pinned by the outage equivalence tests).
package scenario

import (
	"fmt"
	mbits "math/bits"

	"trimcaching/internal/bitset"
)

// serverDown reports whether server m is out of service.
func (ins *Instance) serverDown(m int) bool { return ins.down != nil && ins.down[m] }

// ServerDown reports whether server m is currently out of service.
func (ins *Instance) ServerDown(m int) bool { return ins.serverDown(m) }

// DownServers returns the ascending list of out-of-service servers.
func (ins *Instance) DownServers() []int {
	var list []int
	for m := range ins.down {
		if ins.down[m] {
			list = append(list, m)
		}
	}
	return list
}

// SetServersDown marks the given servers out of service (down=true) or back
// in service (down=false) and incrementally refreshes the instance, exactly
// as UpdateUsers would after an equivalent rate change: down servers' link
// rates drop to 0, relay rates are recomputed for their users, and both
// packed reachability orientations lose (or regain) the servers' bits. The
// returned delta follows the UpdateUsers contract — Pairs lists every
// (server, model) pair whose user mask changed, so a warm-started evaluator
// repairs over exactly the affected columns. Servers already in the
// requested state are ignored; if nothing toggles, the delta carries the
// current generation and an evaluator applies it as a no-op.
//
// The delta and its slices are owned by the instance and valid until the
// next update call, like every other update path.
func (ins *Instance) SetServersDown(servers []int, down bool) (*Delta, error) {
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	if ins.coordinator {
		return nil, fmt.Errorf("scenario: coordinator instances carry no rate or reachability state to update")
	}
	for _, m := range servers {
		if m < 0 || m >= M {
			return nil, fmt.Errorf("scenario: server %d out of range [0,%d)", m, M)
		}
	}
	if ins.down == nil {
		ins.down = make([]bool, M)
	}
	ins.ensureUpdScratch()
	ins.ensureFlipIndex()
	if ins.updDelta.Pairs == nil {
		ins.updDelta.Pairs = bitset.New(M * I)
	} else {
		ins.updDelta.Pairs.Zero()
	}
	pairs := ins.updDelta.Pairs

	// Toggled servers: only actual state changes do work. The word-packed
	// toggled mask drives the relay flips below — one masked word op per
	// (user, model, word), the same shape as flipUserRows' relay crossings.
	sw := ins.serverWords
	tog := make([]uint64, sw)
	toggled := 0
	up := bitset.Set(ins.updFullRow)
	for _, m := range servers {
		if ins.down[m] == down {
			continue
		}
		ins.down[m] = !ins.down[m]
		tog[m>>6] |= 1 << uint(m&63)
		toggled++
		if down {
			up.Clear(m)
		} else {
			up.Set(m)
		}
	}
	if toggled == 0 {
		ins.updDelta.Gen = ins.gen
		ins.updDelta.Users = ins.updUsers[:0]
		ins.updDelta.Revised = nil
		ins.updDelta.RevGen = ins.revGen
		return &ins.updDelta, nil
	}

	// Link rates of toggled servers: zeroed on outage, recomputed from the
	// unchanged geometry on recovery (associations never changed, so the
	// restored rates are bit-identical to the pre-outage values).
	dirty := ins.updDirty
	for wd := 0; wd < sw; wd++ {
		for word := tog[wd]; word != 0; word &= word - 1 {
			m := wd<<6 | mbits.TrailingZeros64(word)
			load := ins.topo.Load(m)
			for _, k := range ins.topo.UsersOf(m) {
				if down {
					ins.avgRate[m*K+k] = 0
				} else {
					rate, err := ins.wcfg.FadedRateBps(ins.topo.Distance(m, k), load, ins.shadowGain(m, k))
					if err != nil {
						return nil, fmt.Errorf("scenario: rate m=%d k=%d: %w", m, k, err)
					}
					ins.avgRate[m*K+k] = rate
				}
				dirty[k] = true
			}
		}
	}

	// One serial pass over the users, ascending, so ops land in a
	// deterministic order. Users of a toggled server take the full fused
	// recompute (their relay rate and direct verdicts both change); every
	// other user only loses or regains the toggled servers' relay-broadcast
	// bits, on exactly the rank prefix of models its unchanged relay rate
	// qualifies — two binary-searched bounds instead of an O(I) rescan.
	for len(ins.updWorkers) < 1 {
		ins.updWorkers = append(ins.updWorkers, newUpdWorker(M, I, sw))
	}
	uw := ins.updWorkers[0]
	uw.ops = uw.ops[:0]
	dirtyUsers := ins.updUsers[:0]
	for k := 0; k < K; k++ {
		track := ins.userHasMass[k]
		if dirty[k] {
			dirty[k] = false
			dirtyUsers = append(dirtyUsers, k)
			covering := ins.topo.ServersCovering(k)
			best := 0.0
			for _, m := range covering {
				if r := ins.avgRate[m*K+k]; r > best {
					best = r
				}
			}
			ins.bestRelay[k] = best
			ins.recomputeUserRows(k, covering, uw, track)
			continue
		}
		relay := ins.bestRelay[k]
		if relay <= 0 {
			continue // uncovered: all rows are zero and stay zero
		}
		cut := searchGreater(ins.flipRelVals[k*I:(k+1)*I], relay)
		relOrder := ins.flipRelOrder[k*I : (k+1)*I]
		rows := ins.reachSrv[k*I*sw : (k+1)*I*sw]
		for j := 0; j < cut; j++ {
			i := int(relOrder[j])
			row := rows[i*sw : (i+1)*sw]
			for wd, word := range tog {
				if ins.capBlock != nil {
					// Capacity-blocked bits were never set and must not
					// come back on recovery; masking the outage clears too
					// keeps both directions exact.
					word &^= ins.capBlock[i*sw+wd]
				}
				if word == 0 {
					continue
				}
				if down {
					row[wd] &^= word
				} else {
					row[wd] |= word
				}
				if track {
					uw.emit(i, k, wd, !down, word)
				}
			}
		}
	}
	ins.updUsers = dirtyUsers

	// Phase 2: same bucketed-or-direct application as ReviseUsers — written
	// bits are unique per (user, server, model), so order never matters.
	if shift := ins.flipBucketShift(); shift >= 0 && len(uw.ops) >= flipBucketMinOps {
		ins.applyOpsBucketed(pairs, 1, len(uw.ops), shift)
	} else {
		touched := ins.touchedScratch()
		for _, op := range uw.ops {
			ins.applyMaskOp(op, touched)
		}
		ins.foldTouchedPairs(pairs, touched)
	}

	ins.gen++
	ins.updDelta.Gen = ins.gen
	ins.updDelta.Users = dirtyUsers
	ins.updDelta.Revised = nil
	ins.updDelta.RevGen = ins.revGen
	return &ins.updDelta, nil
}
