// Package scenario assembles a concrete instance of the paper's cache-hit
// maximization problem (§IV): a topology, a wireless configuration, a
// parameter-sharing model library, and a workload. It precomputes the
// quantities the placement algorithms and the Monte-Carlo evaluator consume:
// average downlink rates C̄_{m,k} (eq. 1), end-to-end latencies T_{m,k,i}
// (eqs. 4–5), and the service indicator I1(m,k,i) (eq. 3).
package scenario

import (
	"fmt"
	"math"

	"trimcaching/internal/bitset"
	"trimcaching/internal/modellib"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// Instance is an immutable problem instance.
type Instance struct {
	topo *topology.Topology
	lib  *modellib.Library
	work *workload.Workload
	wcfg wireless.Config

	avgRate   []float64   // avgRate[m*K+k]; 0 when m does not cover k
	bestRelay []float64   // bestRelay[k]: max covering-server avg rate, 0 if uncovered
	shadow    [][]float64 // optional per-link log-normal shadowing gains; nil = none
	totalMass float64
	sizeBits  []float64 // sizeBits[i]: model size in bits, hoisted out of hot loops

	// Word-packed I1(m,k,i) under the average channel, in both orientations
	// the algorithms need: server masks answer "which servers can serve
	// request (k,i)" with one AND, user masks answer "which users does
	// placing (m,i) newly cover" with one AND-NOT sweep.
	serverWords int
	userWords   int
	reachSrv    []uint64 // [(k*I+i)*serverWords + w], bit m
	reachUsr    []uint64 // [(m*I+i)*userWords + w], bit k
}

// New validates the components and precomputes rates, latencies, and I1.
func New(topo *topology.Topology, lib *modellib.Library, work *workload.Workload, wcfg wireless.Config) (*Instance, error) {
	return NewShadowed(topo, lib, work, wcfg, nil)
}

// NewShadowed builds an instance with per-link log-normal shadowing gains
// (shadow[m][k], linear power). Shadowing is slow fading: it affects both
// the average-channel rates used for placement and every fading
// realization. nil disables shadowing.
func NewShadowed(topo *topology.Topology, lib *modellib.Library, work *workload.Workload, wcfg wireless.Config, shadow [][]float64) (*Instance, error) {
	if topo == nil || lib == nil || work == nil {
		return nil, fmt.Errorf("scenario: topology, library, and workload are required")
	}
	if err := wcfg.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if work.NumUsers() != topo.NumUsers() {
		return nil, fmt.Errorf("scenario: workload has %d users, topology has %d",
			work.NumUsers(), topo.NumUsers())
	}
	if work.NumModels() != lib.NumModels() {
		return nil, fmt.Errorf("scenario: workload has %d models, library has %d",
			work.NumModels(), lib.NumModels())
	}
	if math.Abs(wcfg.CoverageRadiusM-topo.CoverageRadius()) > 1e-9 {
		return nil, fmt.Errorf("scenario: wireless coverage radius %v differs from topology's %v",
			wcfg.CoverageRadiusM, topo.CoverageRadius())
	}

	ins := &Instance{topo: topo, lib: lib, work: work, wcfg: wcfg, shadow: shadow}
	M, K, I := topo.NumServers(), topo.NumUsers(), lib.NumModels()
	if shadow != nil {
		if len(shadow) != M {
			return nil, fmt.Errorf("scenario: shadow has %d rows, want %d", len(shadow), M)
		}
		for m := range shadow {
			if len(shadow[m]) != K {
				return nil, fmt.Errorf("scenario: shadow[%d] has %d cols, want %d", m, len(shadow[m]), K)
			}
		}
	}

	ins.avgRate = make([]float64, M*K)
	for m := 0; m < M; m++ {
		load := topo.Load(m)
		for _, k := range topo.UsersOf(m) {
			rate, err := wcfg.FadedRateBps(topo.Distance(m, k), load, ins.shadowGain(m, k))
			if err != nil {
				return nil, fmt.Errorf("scenario: rate m=%d k=%d: %w", m, k, err)
			}
			ins.avgRate[m*K+k] = rate
		}
	}
	ins.bestRelay = make([]float64, K)
	for k := 0; k < K; k++ {
		for _, m := range topo.ServersCovering(k) {
			if ins.avgRate[m*K+k] > ins.bestRelay[k] {
				ins.bestRelay[k] = ins.avgRate[m*K+k]
			}
		}
	}
	ins.sizeBits = make([]float64, I)
	for i := 0; i < I; i++ {
		ins.sizeBits[i] = 8 * float64(lib.ModelSize(i))
	}

	ins.serverWords = bitset.Words(M)
	ins.userWords = bitset.Words(K)
	ins.reachSrv = make([]uint64, K*I*ins.serverWords)
	ins.fillReach(ins.avgRate, ins.bestRelay, ins.reachSrv)
	ins.reachUsr = make([]uint64, M*I*ins.userWords)
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			ins.ServerMask(k, i).ForEach(func(m int) {
				bitset.Set(ins.reachUsr[(m*I+i)*ins.userWords:]).Set(k)
			})
		}
	}
	ins.totalMass = work.TotalMass()
	return ins, nil
}

// fillReach computes the word-packed I1 indicator under the given per-link
// rates (rates[m*K+k], 0 for non-covering pairs) and per-user best relay
// rates, writing server masks into dst with layout [(k*I+i)*serverWords].
//
// The relay-path latency (eq. 5) does not depend on the serving server m,
// so its verdict is computed once per (k,i) and broadcast across the whole
// mask; only the (sparse) covering servers are then patched with their
// direct-path verdict (eq. 4). The arithmetic matches latency() exactly.
func (ins *Instance) fillReach(rates, relay []float64, dst []uint64) {
	K, I := ins.NumUsers(), ins.NumModels()
	sw := ins.serverWords
	full := bitset.Set(make([]uint64, sw))
	full.SetAll(ins.NumServers())
	for k := 0; k < K; k++ {
		covering := ins.topo.ServersCovering(k)
		relayRate := relay[k]
		for i := 0; i < I; i++ {
			row := bitset.Set(dst[(k*I+i)*sw : (k*I+i+1)*sw])
			sizeBits := ins.sizeBits[i]
			infer := ins.work.InferS(k, i)
			deadline := ins.work.DeadlineS(k, i)
			relayOK := relayRate > 0 &&
				sizeBits/ins.wcfg.BackhaulBps+sizeBits/relayRate+infer <= deadline
			if relayOK {
				row.CopyFrom(full)
			} else {
				row.Zero()
			}
			for _, m := range covering {
				if direct := rates[m*K+k]; direct > 0 {
					if sizeBits/direct+infer <= deadline {
						row.Set(m)
					} else {
						row.Clear(m)
					}
				}
			}
		}
	}
}

// latency computes T_{m,k,i} in seconds under the given per-link rates.
// rates[m*K+k] must be 0 for non-covering pairs; relayRate[k] is the best
// covering-server rate of user k. Unreachable pairs yield +Inf.
func (ins *Instance) latency(m, k, i int, rates []float64, relayRate []float64) float64 {
	sizeBits := ins.sizeBits[i]
	infer := ins.work.InferS(k, i)
	if direct := rates[m*ins.NumUsers()+k]; direct > 0 {
		return sizeBits/direct + infer // eq. (4)
	}
	// eq. (5): transfer over the backhaul to the user's best covering
	// server, then over the air. The backhaul rate is the same constant for
	// every server pair, so minimizing over m' means maximizing the
	// downlink rate.
	if relayRate[k] <= 0 {
		return math.Inf(1) // user covered by no server
	}
	return sizeBits/ins.wcfg.BackhaulBps + sizeBits/relayRate[k] + infer
}

// shadowGain returns the slow-fading gain of link (m,k), 1 when disabled.
func (ins *Instance) shadowGain(m, k int) float64 {
	if ins.shadow == nil {
		return 1
	}
	return ins.shadow[m][k]
}

// Topology returns the deployment.
func (ins *Instance) Topology() *topology.Topology { return ins.topo }

// Library returns the model library.
func (ins *Instance) Library() *modellib.Library { return ins.lib }

// Workload returns the demand model.
func (ins *Instance) Workload() *workload.Workload { return ins.work }

// Wireless returns the channel configuration.
func (ins *Instance) Wireless() wireless.Config { return ins.wcfg }

// NumServers returns M.
func (ins *Instance) NumServers() int { return ins.topo.NumServers() }

// NumUsers returns K.
func (ins *Instance) NumUsers() int { return ins.work.NumUsers() }

// NumModels returns I.
func (ins *Instance) NumModels() int { return ins.lib.NumModels() }

// AvgRateBps returns C̄_{m,k} (eq. 1), or 0 when m does not cover k.
func (ins *Instance) AvgRateBps(m, k int) float64 { return ins.avgRate[m*ins.NumUsers()+k] }

// LatencyS returns T_{m,k,i} in seconds under the average channel
// (eqs. 4–5), +Inf if unreachable.
func (ins *Instance) LatencyS(m, k, i int) float64 {
	return ins.latency(m, k, i, ins.avgRate, ins.bestRelay)
}

// Reachable returns I1(m,k,i) under the average channel: whether server m
// can deliver model i to user k within the QoS deadline.
func (ins *Instance) Reachable(m, k, i int) bool {
	return ins.ServerMask(k, i).Has(m)
}

// ServerMask returns the packed set of servers that can serve model i to
// user k within its deadline under the average channel. The returned slice
// aliases internal state; callers must treat it as read-only.
func (ins *Instance) ServerMask(k, i int) bitset.Set {
	sw := ins.serverWords
	off := (k*ins.NumModels() + i) * sw
	return bitset.Set(ins.reachSrv[off : off+sw])
}

// UserMask returns the packed set of users to whom server m can deliver
// model i within their deadlines under the average channel. The returned
// slice aliases internal state; callers must treat it as read-only.
func (ins *Instance) UserMask(m, i int) bitset.Set {
	uw := ins.userWords
	off := (m*ins.NumModels() + i) * uw
	return bitset.Set(ins.reachUsr[off : off+uw])
}

// ServerMaskWords returns the number of words in each server mask.
func (ins *Instance) ServerMaskWords() int { return ins.serverWords }

// PackedServerMasks returns every server mask concatenated, laid out
// [(k*I+i)*ServerMaskWords() + w]. With single-word masks (M ≤ 64) this
// lets evaluators stream one contiguous word per request. The slice
// aliases internal state; callers must treat it as read-only.
func (ins *Instance) PackedServerMasks() []uint64 { return ins.reachSrv }

// UserMaskWords returns the number of words in each user mask.
func (ins *Instance) UserMaskWords() int { return ins.userWords }

// Prob returns p_{k,i}.
func (ins *Instance) Prob(k, i int) float64 { return ins.work.Prob(k, i) }

// ProbRow returns user k's probability vector over all models (read-only).
func (ins *Instance) ProbRow(k int) []float64 { return ins.work.ProbRow(k) }

// TotalMass returns Σ p_{k,i}, the denominator of eq. (2).
func (ins *Instance) TotalMass() float64 { return ins.totalMass }

// HitMass returns u(m,i) without the I2 exclusion (eq. 14 with I2 ≡ 1): the
// expected request mass server m can serve by caching model i.
func (ins *Instance) HitMass(m, i int) float64 {
	var sum float64
	ins.UserMask(m, i).ForEach(func(k int) {
		sum += ins.Prob(k, i)
	})
	return sum
}

// Reach is a word-packed I1 indicator for one channel realization: for every
// (user, model) request it holds the set of servers able to deliver within
// the QoS deadline. Buffers are reusable across realizations (allocate once
// per goroutine with MakeReachBuffer) and carry their own rate scratch so a
// FadedReach call performs no allocation.
type Reach struct {
	numServers, numUsers, numModels int
	words                           int      // server-mask words
	bits                            []uint64 // [(k*I+i)*words + w], bit m
	rates                           []float64
	relay                           []float64
}

// ServerMask returns the packed set of servers that can serve model i to
// user k under this realization. The slice aliases the buffer.
func (r *Reach) ServerMask(k, i int) bitset.Set {
	off := (k*r.numModels + i) * r.words
	return bitset.Set(r.bits[off : off+r.words])
}

// Has reports I1(m,k,i) under this realization.
func (r *Reach) Has(m, k, i int) bool { return r.ServerMask(k, i).Has(m) }

// Dims returns (M, K, I).
func (r *Reach) Dims() (numServers, numUsers, numModels int) {
	return r.numServers, r.numUsers, r.numModels
}

// Words returns the number of words in each server mask.
func (r *Reach) Words() int { return r.words }

// PackedServerMasks returns every server mask concatenated, laid out
// [(k*I+i)*Words() + w]. The slice aliases the buffer; callers must treat
// it as read-only.
func (r *Reach) PackedServerMasks() []uint64 { return r.bits }

// FadedReach computes the I1 indicator under one Rayleigh-fading
// realization. gains[m][k] is the fading power gain |h|^2 for covering
// links (ignored elsewhere). The result is written into dst (allocate with
// MakeReachBuffer; nil allocates a fresh buffer) and returned.
//
// The placement is decided on average channel gains while performance is
// examined under fading (§VII-A); this method powers that evaluation.
func (ins *Instance) FadedReach(gains [][]float64, dst *Reach) (*Reach, error) {
	M, K := ins.NumServers(), ins.NumUsers()
	if len(gains) != M {
		return nil, fmt.Errorf("scenario: gains has %d rows, want %d", len(gains), M)
	}
	for m := range gains {
		if len(gains[m]) != K {
			return nil, fmt.Errorf("scenario: gains[%d] has %d cols, want %d", m, len(gains[m]), K)
		}
	}
	if dst == nil {
		dst = ins.MakeReachBuffer()
	}
	if dst.numServers != M || dst.numUsers != K || dst.numModels != ins.NumModels() {
		return nil, fmt.Errorf("scenario: reach buffer dims %dx%dx%d, want %dx%dx%d",
			dst.numServers, dst.numUsers, dst.numModels, M, K, ins.NumModels())
	}
	// Only covering links are written and only covering links are read, so
	// the rate scratch needs no clearing between realizations.
	for m := 0; m < M; m++ {
		load := ins.topo.Load(m)
		for _, k := range ins.topo.UsersOf(m) {
			r, err := ins.wcfg.FadedRateBps(ins.topo.Distance(m, k), load, ins.shadowGain(m, k)*gains[m][k])
			if err != nil {
				return nil, fmt.Errorf("scenario: faded rate m=%d k=%d: %w", m, k, err)
			}
			dst.rates[m*K+k] = r
		}
	}
	for k := 0; k < K; k++ {
		dst.relay[k] = 0
		for _, m := range ins.topo.ServersCovering(k) {
			if dst.rates[m*K+k] > dst.relay[k] {
				dst.relay[k] = dst.rates[m*K+k]
			}
		}
	}
	ins.fillReach(dst.rates, dst.relay, dst.bits)
	return dst, nil
}

// MakeReachBuffer allocates a reusable buffer for FadedReach.
func (ins *Instance) MakeReachBuffer() *Reach {
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	return &Reach{
		numServers: M,
		numUsers:   K,
		numModels:  I,
		words:      ins.serverWords,
		bits:       make([]uint64, K*I*ins.serverWords),
		rates:      make([]float64, M*K),
		relay:      make([]float64, K),
	}
}
