// Package scenario assembles a concrete instance of the paper's cache-hit
// maximization problem (§IV): a topology, a wireless configuration, a
// parameter-sharing model library, and a workload. It precomputes the
// quantities the placement algorithms and the Monte-Carlo evaluator consume:
// average downlink rates C̄_{m,k} (eq. 1), end-to-end latencies T_{m,k,i}
// (eqs. 4–5), and the service indicator I1(m,k,i) (eq. 3).
package scenario

import (
	"fmt"
	"math"

	"trimcaching/internal/modellib"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// Instance is an immutable problem instance.
type Instance struct {
	topo *topology.Topology
	lib  *modellib.Library
	work *workload.Workload
	wcfg wireless.Config

	avgRate   [][]float64 // avgRate[m][k]; 0 when m does not cover k
	bestRelay []float64   // bestRelay[k]: max covering-server avg rate, 0 if uncovered
	reachable []bool      // reachable[(m*K+k)*I+i] = I1(m,k,i) under average channel
	shadow    [][]float64 // optional per-link log-normal shadowing gains; nil = none
	totalMass float64
}

// New validates the components and precomputes rates, latencies, and I1.
func New(topo *topology.Topology, lib *modellib.Library, work *workload.Workload, wcfg wireless.Config) (*Instance, error) {
	return NewShadowed(topo, lib, work, wcfg, nil)
}

// NewShadowed builds an instance with per-link log-normal shadowing gains
// (shadow[m][k], linear power). Shadowing is slow fading: it affects both
// the average-channel rates used for placement and every fading
// realization. nil disables shadowing.
func NewShadowed(topo *topology.Topology, lib *modellib.Library, work *workload.Workload, wcfg wireless.Config, shadow [][]float64) (*Instance, error) {
	if topo == nil || lib == nil || work == nil {
		return nil, fmt.Errorf("scenario: topology, library, and workload are required")
	}
	if err := wcfg.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if work.NumUsers() != topo.NumUsers() {
		return nil, fmt.Errorf("scenario: workload has %d users, topology has %d",
			work.NumUsers(), topo.NumUsers())
	}
	if work.NumModels() != lib.NumModels() {
		return nil, fmt.Errorf("scenario: workload has %d models, library has %d",
			work.NumModels(), lib.NumModels())
	}
	if math.Abs(wcfg.CoverageRadiusM-topo.CoverageRadius()) > 1e-9 {
		return nil, fmt.Errorf("scenario: wireless coverage radius %v differs from topology's %v",
			wcfg.CoverageRadiusM, topo.CoverageRadius())
	}

	ins := &Instance{topo: topo, lib: lib, work: work, wcfg: wcfg, shadow: shadow}
	M, K, I := topo.NumServers(), topo.NumUsers(), lib.NumModels()
	if shadow != nil {
		if len(shadow) != M {
			return nil, fmt.Errorf("scenario: shadow has %d rows, want %d", len(shadow), M)
		}
		for m := range shadow {
			if len(shadow[m]) != K {
				return nil, fmt.Errorf("scenario: shadow[%d] has %d cols, want %d", m, len(shadow[m]), K)
			}
		}
	}

	ins.avgRate = make([][]float64, M)
	for m := 0; m < M; m++ {
		ins.avgRate[m] = make([]float64, K)
	}
	for m := 0; m < M; m++ {
		load := topo.Load(m)
		for _, k := range topo.UsersOf(m) {
			rate, err := wcfg.FadedRateBps(topo.Distance(m, k), load, ins.shadowGain(m, k))
			if err != nil {
				return nil, fmt.Errorf("scenario: rate m=%d k=%d: %w", m, k, err)
			}
			ins.avgRate[m][k] = rate
		}
	}
	ins.bestRelay = make([]float64, K)
	for k := 0; k < K; k++ {
		for _, m := range topo.ServersCovering(k) {
			if ins.avgRate[m][k] > ins.bestRelay[k] {
				ins.bestRelay[k] = ins.avgRate[m][k]
			}
		}
	}

	ins.reachable = make([]bool, M*K*I)
	for m := 0; m < M; m++ {
		for k := 0; k < K; k++ {
			for i := 0; i < I; i++ {
				t := ins.latency(m, k, i, ins.avgRate, ins.bestRelay)
				ins.reachable[(m*K+k)*I+i] = t <= work.DeadlineS(k, i)
			}
		}
	}
	ins.totalMass = work.TotalMass()
	return ins, nil
}

// latency computes T_{m,k,i} in seconds under the given per-link rates.
// rates[m][k] must be 0 for non-covering pairs; relayRate[k] is the best
// covering-server rate of user k. Unreachable pairs yield +Inf.
func (ins *Instance) latency(m, k, i int, rates [][]float64, relayRate []float64) float64 {
	sizeBits := 8 * float64(ins.lib.ModelSize(i))
	infer := ins.work.InferS(k, i)
	if direct := rates[m][k]; direct > 0 {
		return sizeBits/direct + infer // eq. (4)
	}
	// eq. (5): transfer over the backhaul to the user's best covering
	// server, then over the air. The backhaul rate is the same constant for
	// every server pair, so minimizing over m' means maximizing the
	// downlink rate.
	if relayRate[k] <= 0 {
		return math.Inf(1) // user covered by no server
	}
	return sizeBits/ins.wcfg.BackhaulBps + sizeBits/relayRate[k] + infer
}

// shadowGain returns the slow-fading gain of link (m,k), 1 when disabled.
func (ins *Instance) shadowGain(m, k int) float64 {
	if ins.shadow == nil {
		return 1
	}
	return ins.shadow[m][k]
}

// Topology returns the deployment.
func (ins *Instance) Topology() *topology.Topology { return ins.topo }

// Library returns the model library.
func (ins *Instance) Library() *modellib.Library { return ins.lib }

// Workload returns the demand model.
func (ins *Instance) Workload() *workload.Workload { return ins.work }

// Wireless returns the channel configuration.
func (ins *Instance) Wireless() wireless.Config { return ins.wcfg }

// NumServers returns M.
func (ins *Instance) NumServers() int { return ins.topo.NumServers() }

// NumUsers returns K.
func (ins *Instance) NumUsers() int { return ins.work.NumUsers() }

// NumModels returns I.
func (ins *Instance) NumModels() int { return ins.lib.NumModels() }

// AvgRateBps returns C̄_{m,k} (eq. 1), or 0 when m does not cover k.
func (ins *Instance) AvgRateBps(m, k int) float64 { return ins.avgRate[m][k] }

// LatencyS returns T_{m,k,i} in seconds under the average channel
// (eqs. 4–5), +Inf if unreachable.
func (ins *Instance) LatencyS(m, k, i int) float64 {
	return ins.latency(m, k, i, ins.avgRate, ins.bestRelay)
}

// Reachable returns I1(m,k,i) under the average channel: whether server m
// can deliver model i to user k within the QoS deadline.
func (ins *Instance) Reachable(m, k, i int) bool {
	return ins.reachable[(m*ins.NumUsers()+k)*ins.NumModels()+i]
}

// Prob returns p_{k,i}.
func (ins *Instance) Prob(k, i int) float64 { return ins.work.Prob(k, i) }

// TotalMass returns Σ p_{k,i}, the denominator of eq. (2).
func (ins *Instance) TotalMass() float64 { return ins.totalMass }

// HitMass returns u(m,i) without the I2 exclusion (eq. 14 with I2 ≡ 1): the
// expected request mass server m can serve by caching model i.
func (ins *Instance) HitMass(m, i int) float64 {
	var sum float64
	for k := 0; k < ins.NumUsers(); k++ {
		if ins.Reachable(m, k, i) {
			sum += ins.Prob(k, i)
		}
	}
	return sum
}

// FadedReach computes the I1 indicator matrix under one Rayleigh-fading
// realization. gains[m][k] is the fading power gain |h|^2 for covering
// links (ignored elsewhere). The result is written into dst, which must
// have length M*K*I (allocate with MakeReachBuffer); it is also returned.
//
// The placement is decided on average channel gains while performance is
// examined under fading (§VII-A); this method powers that evaluation.
func (ins *Instance) FadedReach(gains [][]float64, dst []bool) ([]bool, error) {
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	if len(gains) != M {
		return nil, fmt.Errorf("scenario: gains has %d rows, want %d", len(gains), M)
	}
	if len(dst) != M*K*I {
		return nil, fmt.Errorf("scenario: dst has length %d, want %d", len(dst), M*K*I)
	}
	rates := make([][]float64, M)
	for m := 0; m < M; m++ {
		if len(gains[m]) != K {
			return nil, fmt.Errorf("scenario: gains[%d] has %d cols, want %d", m, len(gains[m]), K)
		}
		rates[m] = make([]float64, K)
		load := ins.topo.Load(m)
		for _, k := range ins.topo.UsersOf(m) {
			r, err := ins.wcfg.FadedRateBps(ins.topo.Distance(m, k), load, ins.shadowGain(m, k)*gains[m][k])
			if err != nil {
				return nil, fmt.Errorf("scenario: faded rate m=%d k=%d: %w", m, k, err)
			}
			rates[m][k] = r
		}
	}
	relay := make([]float64, K)
	for k := 0; k < K; k++ {
		for _, m := range ins.topo.ServersCovering(k) {
			if rates[m][k] > relay[k] {
				relay[k] = rates[m][k]
			}
		}
	}
	for m := 0; m < M; m++ {
		for k := 0; k < K; k++ {
			for i := 0; i < I; i++ {
				t := ins.latency(m, k, i, rates, relay)
				dst[(m*K+k)*I+i] = t <= ins.work.DeadlineS(k, i)
			}
		}
	}
	return dst, nil
}

// MakeReachBuffer allocates a buffer for FadedReach.
func (ins *Instance) MakeReachBuffer() []bool {
	return make([]bool, ins.NumServers()*ins.NumUsers()*ins.NumModels())
}
