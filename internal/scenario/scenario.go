// Package scenario assembles a concrete instance of the paper's cache-hit
// maximization problem (§IV): a topology, a wireless configuration, a
// parameter-sharing model library, and a workload. It precomputes the
// quantities the placement algorithms and the Monte-Carlo evaluator consume:
// average downlink rates C̄_{m,k} (eq. 1), end-to-end latencies T_{m,k,i}
// (eqs. 4–5), and the service indicator I1(m,k,i) (eq. 3).
package scenario

import (
	"fmt"
	"math"
	mbits "math/bits"
	"runtime"
	"slices"
	"sort"
	"sync"

	"trimcaching/internal/bitset"
	"trimcaching/internal/geom"
	"trimcaching/internal/memprof"
	"trimcaching/internal/modellib"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// Instance is a problem instance. It is immutable except through
// UpdateUsers, which moves users and incrementally refreshes every derived
// quantity; callers that need a frozen snapshot use Rebuild.
type Instance struct {
	topo *topology.Topology
	lib  *modellib.Library
	work *workload.Workload
	wcfg wireless.Config

	avgRate   []float64   // avgRate[m*K+k]; 0 when m does not cover k
	bestRelay []float64   // bestRelay[k]: max covering-server avg rate, 0 if uncovered
	shadow    [][]float64 // optional per-link log-normal shadowing gains; nil = none
	// down[m] marks server m out of service (SetServersDown): its link rates
	// are pinned to 0, it leaves the relay candidate set, and the up-servers
	// mask (updFullRow) drops its bit so no reachability row — average or
	// faded — ever includes it. nil means every server is up.
	down []bool
	// capBits[m] is server m's storage budget in bits (SetServerCapacity);
	// -1 means unconstrained. capBlock packs the per-(model, server) storage
	// verdict in placement-column layout — capBlock[i*serverWords+w] bit m
	// set iff server m cannot store model i even alone (sizeBits[i] >
	// capBits[m]) — so every reachability fill AND-NOTs one word per row and
	// the fused kernel masks placement columns with the very same words.
	// Storage is orthogonal to radio: a capacity-blocked server keeps its
	// link rates and stays a relay last hop, it just cannot be the serving
	// server for the blocked models. nil means no server is constrained (the
	// common case pays one nil check per row).
	capBits   []int64
	capBlock  []uint64
	totalMass float64
	sizeBits  []float64 // sizeBits[i]: model size in bits, hoisted out of hot loops
	// userHasMass[k] caches whether user k's probability row carries any
	// request mass. Zero-mass users (shard-layer ghosts and parked slots)
	// contribute exactly nothing to any mass sum, so the fused measurement
	// kernels skip them outright — a bitwise no-op on the result.
	// Maintained by ReviseUsers; rows must not change behind its back.
	userHasMass []bool

	// Threshold form of the QoS verdicts (eqs. 3–5): server m can serve
	// (k,i) directly iff its rate ≥ minDirRate, and any server can relay
	// iff the user's best rate ≥ minRelRate (+Inf marks requests no rate
	// can satisfy). The thresholds depend only on the workload, library,
	// and backhaul — never on positions — so they survive user movement
	// and turn the per-realization reachability fill into one compare per
	// entry, with no divisions.
	minDirRate []float64 // minDirRate[k*I+i] = sizeBits / (deadline − infer)
	minRelRate []float64 // minRelRate[k*I+i] = sizeBits / (deadline − infer − sizeBits/backhaul)

	// Word-packed I1(m,k,i) under the average channel, in both orientations
	// the algorithms need: server masks answer "which servers can serve
	// request (k,i)" with one AND, user masks answer "which users does
	// placing (m,i) newly cover" with one AND-NOT sweep.
	serverWords int
	userWords   int
	reachSrv    []uint64 // [(k*I+i)*serverWords + w], bit m
	reachUsr    []uint64 // [(i*M+m)*userWords + w], bit k — model-major

	// Incremental-update state: gen counts UpdateUsers calls (warm-start
	// caches key their validity on it), the scratch below is reused across
	// calls so a delta update performs no steady-state allocation. Dirty
	// users are processed in parallel — their rate columns and reach rows
	// are disjoint — with inverted-index flips collected per worker and
	// applied serially, so results are bit-identical for any worker count.
	// revGen counts ReviseUsers calls that swapped workload rows, so caches
	// derived from probabilities (the evaluator's transposed table) can
	// detect missed revisions.
	gen           int
	revGen        int
	updDirty      []bool   // per-user dirty flag scratch
	updForce      []bool   // per-user forced-recompute flag (revised users)
	updUsers      []int    // dirty-user list scratch
	updFullRow    []uint64 // all-servers mask, serverWords
	updWorkers    []*updWorker
	updOps        []maskOp   // bucket-ordered op scratch
	updOff        []int      // per-bucket boundary scratch
	updCur        []int      // per-bucket write cursor scratch
	updTouched    []uint64   // per-(model, server-word) touched masks, I*serverWords
	updMaxWorkers int        // caller-imposed update worker bound; 0 = GOMAXPROCS
	rankBuf       []rankPair // per-user rank rebuild scratch (ReviseUsers)
	updErrs       []error    // per-worker error scratch
	updBounds     []int      // bucket-aligned split scratch (applyOpsBucketed)
	updRevised    []int      // Delta.Revised scratch
	updDelta      Delta      // the reused delta returned by ReviseUsers
	moveScratch   *topology.MoveScratch

	// coordinator marks a rank/workload-only instance (NewCoordinator):
	// position-dependent state — rates, relay rates, packed reachability —
	// is never materialized, and the update/measurement paths reject it.
	coordinator bool

	// Threshold rank index, built at construction: each user's models
	// ordered by ascending rate threshold. Delta updates use it as a flip
	// index — a rate change old→new flips exactly the verdicts whose
	// threshold lies between them, two binary searches instead of an
	// I-element rescan — and the fused measurement kernel enumerates
	// qualifying verdicts as rank prefixes of the same rows.
	flipDirOrder []int32   // flipDirOrder[k*I+j]: model at rank j of user k's direct thresholds
	flipDirVals  []float64 // flipDirVals[k*I+j] = minDirRate[k, flipDirOrder[k*I+j]]
	flipRelOrder []int32
	flipRelVals  []float64

	// rankProvider optionally supplies precomputed rank rows instead of the
	// O(I log I) per-user sort (see SetRankProvider).
	rankProvider RankProvider
}

// RankProvider fills user k's rank rows (dirOrder/dirVals and
// relOrder/relVals, each I long) from an external source and reports
// whether it did. The filled rows must be exactly what buildRankRow would
// produce from the user's current thresholds — the shard layer satisfies
// this by copying the global instance's rows for the bound user, whose
// thresholds are identical by construction. Returning false falls back to
// the sort.
type RankProvider func(k int, dirOrder []int32, dirVals []float64, relOrder []int32, relVals []float64) bool

// New validates the components and precomputes rates, latencies, and I1.
func New(topo *topology.Topology, lib *modellib.Library, work *workload.Workload, wcfg wireless.Config) (*Instance, error) {
	return newInstance(topo, lib, work, wcfg, nil, nil, false)
}

// NewRanked is New with a rank provider installed before the threshold
// rank index is built, so the construction-time index fills through copies
// instead of per-user sorts. The shard layer builds cell instances this
// way: a bound slot's thresholds equal its global user's, so its rank rows
// come straight from the global index. The provider stays installed for
// later rebinds (see SetRankProvider).
func NewRanked(topo *topology.Topology, lib *modellib.Library, work *workload.Workload, wcfg wireless.Config, provider RankProvider) (*Instance, error) {
	return newInstance(topo, lib, work, wcfg, nil, provider, false)
}

// NewShadowed builds an instance with per-link log-normal shadowing gains
// (shadow[m][k], linear power). Shadowing is slow fading: it affects both
// the average-channel rates used for placement and every fading
// realization. nil disables shadowing.
func NewShadowed(topo *topology.Topology, lib *modellib.Library, work *workload.Workload, wcfg wireless.Config, shadow [][]float64) (*Instance, error) {
	return newInstance(topo, lib, work, wcfg, shadow, nil, false)
}

// NewCoordinator builds a rank/workload-only instance: thresholds and the
// threshold rank index are computed, but the position-dependent state — the
// M×K rate table, relay rates, and both packed reachability orientations,
// together O(M·K + M·K·I/8) bytes — is never materialized. The shard layer's
// coordinator needs exactly the position-independent parts (topology
// positions, workload rows, library, wireless config, rank rows to seed the
// cells' RankProvider); at K=1M the skipped arrays are tens of gigabytes
// that no cell ever reads. Coordinator instances reject UpdateUsers,
// ReviseUsers, and Rebuild; cells carry their own full instances.
func NewCoordinator(topo *topology.Topology, lib *modellib.Library, work *workload.Workload, wcfg wireless.Config) (*Instance, error) {
	ins, err := newInstance(topo, lib, work, wcfg, nil, nil, true)
	return ins, err
}

// Coordinator reports whether this is a rank/workload-only instance built by
// NewCoordinator.
func (ins *Instance) Coordinator() bool { return ins.coordinator }

// newInstance is the one construction path behind New, NewRanked,
// NewShadowed, and NewCoordinator.
func newInstance(topo *topology.Topology, lib *modellib.Library, work *workload.Workload, wcfg wireless.Config, shadow [][]float64, provider RankProvider, coordinator bool) (*Instance, error) {
	if topo == nil || lib == nil || work == nil {
		return nil, fmt.Errorf("scenario: topology, library, and workload are required")
	}
	if err := wcfg.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if work.NumUsers() != topo.NumUsers() {
		return nil, fmt.Errorf("scenario: workload has %d users, topology has %d",
			work.NumUsers(), topo.NumUsers())
	}
	if work.NumModels() != lib.NumModels() {
		return nil, fmt.Errorf("scenario: workload has %d models, library has %d",
			work.NumModels(), lib.NumModels())
	}
	if math.Abs(wcfg.CoverageRadiusM-topo.CoverageRadius()) > 1e-9 {
		return nil, fmt.Errorf("scenario: wireless coverage radius %v differs from topology's %v",
			wcfg.CoverageRadiusM, topo.CoverageRadius())
	}

	ins := &Instance{topo: topo, lib: lib, work: work, wcfg: wcfg, shadow: shadow, coordinator: coordinator}
	M, K, I := topo.NumServers(), topo.NumUsers(), lib.NumModels()
	if shadow != nil {
		if len(shadow) != M {
			return nil, fmt.Errorf("scenario: shadow has %d rows, want %d", len(shadow), M)
		}
		for m := range shadow {
			if len(shadow[m]) != K {
				return nil, fmt.Errorf("scenario: shadow[%d] has %d cols, want %d", m, len(shadow[m]), K)
			}
		}
	}

	if !coordinator {
		ins.avgRate = make([]float64, M*K)
		for m := 0; m < M; m++ {
			load := topo.Load(m)
			for _, k := range topo.UsersOf(m) {
				rate, err := wcfg.FadedRateBps(topo.Distance(m, k), load, ins.shadowGain(m, k))
				if err != nil {
					return nil, fmt.Errorf("scenario: rate m=%d k=%d: %w", m, k, err)
				}
				ins.avgRate[m*K+k] = rate
			}
		}
		ins.bestRelay = make([]float64, K)
		for k := 0; k < K; k++ {
			for _, m := range topo.ServersCovering(k) {
				if ins.avgRate[m*K+k] > ins.bestRelay[k] {
					ins.bestRelay[k] = ins.avgRate[m*K+k]
				}
			}
		}
	}
	ins.sizeBits = make([]float64, I)
	for i := 0; i < I; i++ {
		ins.sizeBits[i] = 8 * float64(lib.ModelSize(i))
	}
	ins.minDirRate = make([]float64, K*I)
	ins.minRelRate = make([]float64, K*I)
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			slack := work.DeadlineS(k, i) - work.InferS(k, i)
			ins.minDirRate[k*I+i] = rateThreshold(ins.sizeBits[i], slack)
			ins.minRelRate[k*I+i] = rateThreshold(ins.sizeBits[i], slack-ins.sizeBits[i]/wcfg.BackhaulBps)
		}
	}

	ins.serverWords = bitset.Words(M)
	ins.userWords = bitset.Words(K)
	if !coordinator {
		// The up-servers mask starts full and is maintained by
		// SetServersDown; every reachability fill (construction, faded
		// realizations, delta updates) broadcasts relay verdicts over it.
		ins.updFullRow = make([]uint64, ins.serverWords)
		bitset.Set(ins.updFullRow).SetAll(M)
		ins.reachSrv = make([]uint64, K*I*ins.serverWords)
		ins.fillReach(ins.avgRate, ins.bestRelay, ins.reachSrv)
		ins.reachUsr = make([]uint64, M*I*ins.userWords)
		for k := 0; k < K; k++ {
			for i := 0; i < I; i++ {
				ins.ServerMask(k, i).ForEach(func(m int) {
					bitset.Set(ins.reachUsr[(i*M+m)*ins.userWords:]).Set(k)
				})
			}
		}
	}
	ins.totalMass = work.TotalMass()
	ins.userHasMass = make([]bool, K)
	for k := 0; k < K; k++ {
		ins.userHasMass[k] = rowHasMass(work.ProbRow(k))
	}
	// The threshold rank index is position-independent, and every fused
	// measurement sweep now enumerates verdicts through its rank prefixes,
	// so it is built here rather than lazily on the first delta update —
	// fresh instances, rebuild-mode engines, and newly sliced shard cells
	// all measure through it from their first realization. An installed
	// provider (NewRanked) fills rows by copying instead of sorting.
	ins.rankProvider = provider
	ins.ensureFlipIndex()
	return ins, nil
}

// rowHasMass reports whether any entry of a probability row is positive.
func rowHasMass(row []float64) bool {
	for _, p := range row {
		if p > 0 {
			return true
		}
	}
	return false
}

// fillReach computes the word-packed I1 indicator under the given per-link
// rates (rates[m*K+k], 0 for non-covering pairs) and per-user best relay
// rates, writing server masks into dst with layout [(k*I+i)*serverWords].
// Relay verdicts broadcast over the up-servers mask, so down servers never
// appear in any row.
func (ins *Instance) fillReach(rates, relay []float64, dst []uint64) {
	K, I := ins.NumUsers(), ins.NumModels()
	sw := ins.serverWords
	full := bitset.Set(ins.updFullRow)
	for k := 0; k < K; k++ {
		ins.fillReachRows(k, ins.topo.ServersCovering(k), rates, relay[k], full,
			dst[k*I*sw:(k+1)*I*sw])
	}
}

// rateThreshold returns the minimum rate that satisfies the QoS slack
// (seconds available for the over-the-air transfer): sizeBits/slack, or
// +Inf when no rate can (slack ≤ 0).
func rateThreshold(sizeBits, slack float64) float64 {
	if slack <= 0 {
		return math.Inf(1)
	}
	return sizeBits / slack
}

// fillReachRows recomputes user k's I server masks into rows (I*serverWords
// words) under the given per-link rates and relay rate. This is the
// reachability engine's innermost fill, shared by full builds (fillReach),
// fading realizations (FadedReach), and delta updates (UpdateUsers), so all
// three stay bit-identical by construction.
//
// The relay-path latency (eq. 5) does not depend on the serving server m,
// so its verdict is computed once per (k,i) and broadcast across the whole
// mask; only the (sparse) covering servers are then patched with their
// direct-path verdict (eq. 4). Both verdicts use the precomputed threshold
// form — rate ≥ sizeBits/slack instead of sizeBits/rate + … ≤ deadline —
// which is algebraically the same test reduced to one compare per entry,
// and which UpdateUsers' flip index shares so delta updates agree exactly.
func (ins *Instance) fillReachRows(k int, covering []int, rates []float64, relayRate float64, full bitset.Set, rows []uint64) {
	K, I := ins.NumUsers(), ins.NumModels()
	sw := ins.serverWords
	minDir := ins.minDirRate[k*I : (k+1)*I]
	minRel := ins.minRelRate[k*I : (k+1)*I]
	capBlock := ins.capBlock
	if sw == 1 {
		// Single-word masks (M ≤ 64): each row is one uint64.
		fullWord := full[0]
		for i := 0; i < I; i++ {
			var w uint64
			if relayRate > 0 && relayRate >= minRel[i] {
				w = fullWord
			}
			for _, m := range covering {
				if direct := rates[m*K+k]; direct > 0 {
					if direct >= minDir[i] {
						w |= 1 << uint(m)
					} else {
						w &^= 1 << uint(m)
					}
				}
			}
			if capBlock != nil {
				w &^= capBlock[i]
			}
			rows[i] = w
		}
		return
	}
	for i := 0; i < I; i++ {
		row := bitset.Set(rows[i*sw : (i+1)*sw])
		if relayRate > 0 && relayRate >= minRel[i] {
			row.CopyFrom(full)
		} else {
			row.Zero()
		}
		for _, m := range covering {
			if direct := rates[m*K+k]; direct > 0 {
				if direct >= minDir[i] {
					row.Set(m)
				} else {
					row.Clear(m)
				}
			}
		}
		if capBlock != nil {
			for wd, word := range capBlock[i*sw : (i+1)*sw] {
				row[wd] &^= word
			}
		}
	}
}

// latency computes T_{m,k,i} in seconds under the given per-link rates.
// rates[m*K+k] must be 0 for non-covering pairs; relayRate[k] is the best
// covering-server rate of user k. Unreachable pairs yield +Inf.
func (ins *Instance) latency(m, k, i int, rates []float64, relayRate []float64) float64 {
	if ins.serverDown(m) {
		return math.Inf(1) // the serving server is out of service
	}
	if ins.capBlocked(m, i) {
		return math.Inf(1) // the serving server cannot store the model
	}
	sizeBits := ins.sizeBits[i]
	infer := ins.work.InferS(k, i)
	if direct := rates[m*ins.NumUsers()+k]; direct > 0 {
		return sizeBits/direct + infer // eq. (4)
	}
	// eq. (5): transfer over the backhaul to the user's best covering
	// server, then over the air. The backhaul rate is the same constant for
	// every server pair, so minimizing over m' means maximizing the
	// downlink rate.
	if relayRate[k] <= 0 {
		return math.Inf(1) // user covered by no server
	}
	return sizeBits/ins.wcfg.BackhaulBps + sizeBits/relayRate[k] + infer
}

// shadowGain returns the slow-fading gain of link (m,k), 1 when disabled.
func (ins *Instance) shadowGain(m, k int) float64 {
	if ins.shadow == nil {
		return 1
	}
	return ins.shadow[m][k]
}

// Generation counts the UpdateUsers calls applied to this instance. Caches
// derived from the reachability masks (e.g. the placement evaluator's
// marginal-gain memo) key their validity on it.
func (ins *Instance) Generation() int { return ins.gen }

// RevisionGeneration counts the ReviseUsers calls that swapped workload
// rows. Caches derived from request probabilities (the evaluator's
// transposed probability table) key their validity on it; plain UpdateUsers
// calls never advance it.
func (ins *Instance) RevisionGeneration() int { return ins.revGen }

// Shadowed reports whether the instance carries per-link shadowing gains.
// The shard layer rejects shadowed instances: shadowing is keyed by
// (server, user) index pairs, which slot rebinding would scramble.
func (ins *Instance) Shadowed() bool { return ins.shadow != nil }

// Delta describes what one UpdateUsers call changed, in the form the
// warm-start machinery consumes. The delta returned by
// UpdateUsers/ReviseUsers — struct and slices — is owned by the instance
// and reused: it is valid until the next update call, and callers that
// hold deltas across updates must copy what they keep.
type Delta struct {
	// Gen is the instance generation this delta produced.
	Gen int
	// Users lists, ascending, the users whose rate and reachability rows
	// were recomputed: the moved users plus every user of a server whose
	// association load changed.
	Users []int
	// Pairs packs the (server, model) pairs — bit m*I+i — whose user
	// reachability mask changed. Placement warm starts recompute exactly
	// these marginal gains and reuse the rest. For revised users (see
	// ReviseUsers) every pair their reach rows touch is included, changed
	// or not: the mask may be unchanged while the probability under it is
	// not.
	Pairs bitset.Set
	// Revised lists the users whose workload rows were swapped before this
	// delta (ReviseUsers), in caller order. Probability-derived caches
	// refresh exactly these columns.
	Revised []int
	// RevGen is the instance's revision generation after this delta (the
	// ReviseUsers call count; see RevisionGeneration).
	RevGen int
}

// Rebuild returns a fresh instance with the same servers, library,
// workload, wireless configuration, and per-link shadowing, but users at
// the given positions. It is the one rebuild path shared by every dynamic
// layer — and the reference UpdateUsers is pinned against.
func (ins *Instance) Rebuild(users []geom.Point) (*Instance, error) {
	topo, err := ins.topo.WithUserPositions(users)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	fresh, err := NewShadowed(topo, ins.lib, ins.work, ins.wcfg, ins.shadow)
	if err != nil {
		return nil, err
	}
	// Outages survive rebuilds: the rebuild-mode engine pin (Incremental ==
	// Rebuild) holds through SetServersDown only if the fresh instance
	// carries the same down set.
	if downList := ins.DownServers(); len(downList) > 0 {
		if _, err := fresh.SetServersDown(downList, true); err != nil {
			return nil, err
		}
	}
	// Capacity degradations survive rebuilds the same way.
	for m, bits := range ins.capBits {
		if bits >= 0 {
			if _, err := fresh.SetServerCapacity(m, bits); err != nil {
				return nil, err
			}
		}
	}
	return fresh, nil
}

// UpdateUsers moves user moved[j] to pos[j] and incrementally refreshes the
// association sets, average rates, relay rates, and both packed
// reachability orientations, bit-identical to Rebuild on the full updated
// position vector but touching only the users the move affects: the moved
// users plus the users of servers whose load changed. Per-link shadowing,
// when present, stays attached to the (server, user) index pair. The
// returned delta reports the changed reachability pairs for warm-start
// consumers.
func (ins *Instance) UpdateUsers(moved []int, pos []geom.Point) (*Delta, error) {
	return ins.ReviseUsers(nil, nil, moved, pos)
}

// ReviseUsers is UpdateUsers plus workload-row revision: revised lists
// users whose rows in the instance's workload were swapped (via
// workload.SetUserRows) since the last update. For each revised user the
// QoS rate thresholds and their rank rows are recomputed from the new
// deadline and inference rows before the movement pass, the reachability
// rows are recomputed unconditionally (a threshold change invalidates the
// rate-crossing flip search), and every pair the user's reach rows touch is
// reported in Delta.Pairs — the masks may be unchanged while the request
// mass under them is not. massOnly lists users whose probability row alone
// was swapped (workload.SetUserProbRow) while their deadline and inference
// rows stayed bound: thresholds, rank rows, and reachability need no work
// beyond any movement the user also has, so only the gain invalidation and
// probability-cache refresh apply — the cheap path for the shard layer's
// ownership flips and parkings. TotalMass is recomputed in construction
// order whenever any row changed, so a revised instance stays bit-identical
// to a fresh build over the same workload. Revised users need not appear in
// moved; movement semantics for moved users are exactly UpdateUsers'. This
// is the shard layer's handoff seam: cross-cell movement becomes paired
// calls — park and zero the slot in the cell the user left, bind and move
// it in the cell it entered.
func (ins *Instance) ReviseUsers(revised, massOnly []int, moved []int, pos []geom.Point) (*Delta, error) {
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	if ins.coordinator {
		return nil, fmt.Errorf("scenario: coordinator instances carry no rate or reachability state to update")
	}
	for _, k := range revised {
		if k < 0 || k >= K {
			return nil, fmt.Errorf("scenario: revised user %d out of range [0,%d)", k, K)
		}
	}
	for _, k := range massOnly {
		if k < 0 || k >= K {
			return nil, fmt.Errorf("scenario: mass-revised user %d out of range [0,%d)", k, K)
		}
	}
	if ins.moveScratch == nil {
		ins.moveScratch = topology.NewMoveScratch(K, M)
	}
	// The topology is mutated in place — the instance privately owns it —
	// with each moved user's pre-move coverage row parked in the move
	// scratch for the update pass below. No snapshot copies: this is the
	// checkpoint loop's dominant allocation site at scale.
	loadChanged, err := ins.topo.MoveUsersInPlace(moved, pos, ins.moveScratch)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	ins.ensureUpdScratch()
	ins.ensureFlipIndex()
	dirty := ins.updDirty
	for _, k := range revised {
		ins.reviseThresholds(k)
		dirty[k] = true
		ins.updForce[k] = true
	}
	for _, k := range moved {
		dirty[k] = true
	}
	for _, m := range loadChanged {
		// Users that left m's coverage are movers and already dirty; the
		// remaining (old ∩ new) and entering users are all in the new list.
		for _, k := range ins.topo.UsersOf(m) {
			dirty[k] = true
		}
	}
	dirtyUsers := ins.updUsers[:0]
	for k := 0; k < K; k++ {
		if dirty[k] {
			dirty[k] = false // reset scratch for the next call
			dirtyUsers = append(dirtyUsers, k)
		}
	}
	ins.updUsers = dirtyUsers

	// Phase 1, parallel over dirty users: rate columns, relay rates, and
	// reach rows are disjoint per user, so workers write them directly;
	// inverted-index updates land in per-worker op buffers. Phase 2 applies
	// the ops — written bits are unique per (user, server, model), so the
	// outcome is bit-identical for any worker count. A single-worker run
	// stays on the calling goroutine: no spawns, no allocation.
	workers := len(dirtyUsers) / minUsersPerWorker
	if gmp := runtime.GOMAXPROCS(0); workers > gmp {
		workers = gmp
	}
	if ins.updMaxWorkers > 0 && workers > ins.updMaxWorkers {
		workers = ins.updMaxWorkers
	}
	if workers < 1 {
		workers = 1
	}
	for len(ins.updWorkers) < workers {
		ins.updWorkers = append(ins.updWorkers, newUpdWorker(M, I, ins.serverWords))
	}
	if cap(ins.updErrs) < workers {
		ins.updErrs = make([]error, workers)
	}
	errs := ins.updErrs[:workers]
	for w := range errs {
		errs[w] = nil
	}
	if workers == 1 {
		ins.updWorkers[0].ops = ins.updWorkers[0].ops[:0]
		ins.updateUserRange(dirtyUsers, errs, 0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*len(dirtyUsers)/workers, (w+1)*len(dirtyUsers)/workers
			ins.updWorkers[w].ops = ins.updWorkers[w].ops[:0]
			wg.Add(1)
			// The share is passed by value: capturing dirtyUsers itself would
			// move the slice variable to the heap on every call, including
			// single-worker calls that never reach this branch.
			go func(w int, share []int) {
				defer wg.Done()
				ins.updateUserRange(share, errs, w)
			}(w, dirtyUsers[lo:hi])
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Written bits are unique per (user, server, model), so the final
	// inverted-index state is the same for any application order. Mass
	// updates (a checkpoint's walk dirties most users) therefore go through
	// the bucketed path: counting-sorting the ops by model block confines
	// each batch's writes to a cache-resident run of reachUsr rows (the
	// index is model-major), where the direct loop pays a full cache miss
	// per op on a gigabyte-scale index. Small deltas keep the direct loop —
	// bucketing has a fixed two-pass cost that only pays for itself in
	// bulk.
	if ins.updDelta.Pairs == nil {
		ins.updDelta.Pairs = bitset.New(M * I)
	} else {
		ins.updDelta.Pairs.Zero()
	}
	pairs := ins.updDelta.Pairs
	total := 0
	for _, uw := range ins.updWorkers[:workers] {
		total += len(uw.ops)
	}
	if shift := ins.flipBucketShift(); shift >= 0 && total >= flipBucketMinOps {
		ins.applyOpsBucketed(pairs, workers, total, shift)
	} else {
		touched := ins.touchedScratch()
		for _, uw := range ins.updWorkers[:workers] {
			for _, op := range uw.ops {
				ins.applyMaskOp(op, touched)
			}
		}
		ins.foldTouchedPairs(pairs, touched)
	}
	var revCopy []int
	if len(revised)+len(massOnly) > 0 {
		// A revised user's request mass changed under masks that may not
		// have: every pair its reach rows touch carries a stale gain. A
		// user regaining mass was untracked (its inverted-index bits may be
		// stale), so its UserMask bits are reconciled from its reach rows
		// first — clears of stale bits need no pair marking, since a
		// zero-mass bit never contributed to any gain.
		markRows := func(k int) {
			sw := ins.serverWords
			hasMass := rowHasMass(ins.work.ProbRow(k))
			if hasMass && !ins.userHasMass[k] {
				ins.reconcileUserBits(k)
			}
			rows := ins.reachSrv[k*I*sw : (k+1)*I*sw]
			for i := 0; i < I; i++ {
				for wd, word := range rows[i*sw : (i+1)*sw] {
					for ; word != 0; word &= word - 1 {
						m := wd<<6 | mbits.TrailingZeros64(word)
						pairs.Set(m*I + i)
					}
				}
			}
			ins.userHasMass[k] = hasMass
		}
		for _, k := range revised {
			ins.updForce[k] = false
			markRows(k)
		}
		for _, k := range massOnly {
			markRows(k)
		}
		// Full resum in construction order: a revised instance's TotalMass
		// stays bit-identical to a fresh build over the same workload.
		ins.totalMass = ins.work.TotalMass()
		ins.revGen++
		ins.updRevised = append(append(ins.updRevised[:0], revised...), massOnly...)
		revCopy = ins.updRevised
	}
	ins.gen++
	// The delta and every slice it carries are owned by the instance and
	// valid until the next UpdateUsers/ReviseUsers call; steady-state
	// callers (the dynamics engines) consume it before their next refresh,
	// so the loop allocates nothing. Holding a delta across updates
	// requires a copy.
	ins.updDelta.Gen = ins.gen
	ins.updDelta.Users = dirtyUsers
	ins.updDelta.Revised = revCopy
	ins.updDelta.RevGen = ins.revGen
	return &ins.updDelta, nil
}

// updateUserRange refreshes one worker's share of the dirty users,
// recording the first error in errs[w]. A user moved by the current call
// diffs against its parked pre-move coverage row; any other dirty user's
// coverage is unchanged, so the live row is the old row.
func (ins *Instance) updateUserRange(dirtyUsers []int, errs []error, w int) {
	uw := ins.updWorkers[w]
	for _, k := range dirtyUsers {
		oldCovering, movedNow := ins.moveScratch.OldCovering(k)
		if !movedNow {
			oldCovering = ins.topo.ServersCovering(k)
		}
		if err := ins.updateUser(k, oldCovering, uw); err != nil {
			errs[w] = err
			return
		}
	}
}

// reconcileUserBits rewrites user k's inverted-index bits from its reach
// rows: clear everywhere, then set the row bits. Untracked (zero-mass)
// users accumulate stale bits; this runs when one regains mass.
func (ins *Instance) reconcileUserBits(k int) {
	M, I := ins.NumServers(), ins.NumModels()
	uw := ins.userWords
	for p := 0; p < M*I; p++ {
		bitset.Set(ins.reachUsr[p*uw : (p+1)*uw]).Clear(k)
	}
	sw := ins.serverWords
	rows := ins.reachSrv[k*I*sw : (k+1)*I*sw]
	for i := 0; i < I; i++ {
		for wd, word := range rows[i*sw : (i+1)*sw] {
			for ; word != 0; word &= word - 1 {
				m := wd<<6 | mbits.TrailingZeros64(word)
				bitset.Set(ins.reachUsr[(i*M+m)*uw : (i*M+m+1)*uw]).Set(k)
			}
		}
	}
}

// reviseThresholds recomputes user k's QoS rate thresholds and, when the
// flip index exists, its rank rows, from the workload's current deadline
// and inference rows — the per-user slice of the construction-time loop,
// re-run after a row swap.
func (ins *Instance) reviseThresholds(k int) {
	I := ins.NumModels()
	for i := 0; i < I; i++ {
		slack := ins.work.DeadlineS(k, i) - ins.work.InferS(k, i)
		ins.minDirRate[k*I+i] = rateThreshold(ins.sizeBits[i], slack)
		ins.minRelRate[k*I+i] = rateThreshold(ins.sizeBits[i], slack-ins.sizeBits[i]/ins.wcfg.BackhaulBps)
	}
	if ins.flipDirOrder == nil {
		return
	}
	if ins.rankBuf == nil {
		ins.rankBuf = make([]rankPair, I)
	}
	ins.fillRankRows(k)
}

// ensureUpdScratch allocates the per-user dirty/force flag scratch shared
// by ReviseUsers and SetServersDown.
func (ins *Instance) ensureUpdScratch() {
	if ins.updDirty == nil {
		ins.updDirty = make([]bool, ins.NumUsers())
		ins.updForce = make([]bool, ins.NumUsers())
	}
}

// minUsersPerWorker keeps the parallel update phase from spawning workers
// for trivially small dirty sets.
const minUsersPerWorker = 32

// maskOp is one deferred inverted-index update: set or clear user k's bit
// in the user masks of pairs (m, i) for every server m in one word of a
// server-bit mask. One op carries a whole word of the per-bit flips the
// update pass used to record — a relay crossing, which flips a user's
// verdict on every non-covering server at once, is one op per server word
// instead of one per server, and a coverage-changed recompute emits at
// most two ops per (model, server word) from its row diff. Head layout:
// model i in bits 40..63, user k in bits 8..39, server word index in bits
// 1..7, the set/clear verdict in bit 0 (so I < 2^24, K < 2^32, and
// serverWords < 2^7 — far beyond any instance the generators produce).
type maskOp struct {
	head uint64
	mask uint64 // server bits within word word(), bit position m&63
}

func packMaskOp(i, k, wd int, set bool, mask uint64) maskOp {
	head := uint64(i)<<40 | uint64(uint32(k))<<8 | uint64(wd)<<1
	if set {
		head |= 1
	}
	return maskOp{head: head, mask: mask}
}

func (op maskOp) model() int  { return int(op.head >> 40) }
func (op maskOp) user() int   { return int(uint32(op.head >> 8)) }
func (op maskOp) word() int   { return int(op.head >> 1 & 0x7f) }
func (op maskOp) isSet() bool { return op.head&1 != 0 }

// updWorker is one parallel update worker's scratch.
type updWorker struct {
	oldRate  []float64 // old covering rates, indexed by server
	dirRates []float64 // gathered covering rates
	dirBits  []uint64  // matching single-word bit masks
	covMask  []uint64  // covering-servers mask, serverWords
	rows     []uint64  // recompute scratch (multi-word masks), I*serverWords
	ops      []maskOp
}

func newUpdWorker(M, I, serverWords int) *updWorker {
	return &updWorker{
		oldRate:  make([]float64, M),
		dirRates: make([]float64, 0, M),
		dirBits:  make([]uint64, 0, M),
		covMask:  make([]uint64, serverWords),
		rows:     make([]uint64, I*serverWords),
	}
}

// emit records a deferred inverted-index update for one server word.
func (w *updWorker) emit(i, k, wd int, set bool, mask uint64) {
	w.ops = append(w.ops, packMaskOp(i, k, wd, set, mask))
}

// flipBucketWindowWords sizes one op bucket's reachUsr window, in words:
// 1<<18 words = 2 MiB, small enough to sit in L2/L3 while a bucket's
// writes land. Variable (not const) so tests can shrink it to force
// multi-bucket runs on toy instances.
var flipBucketWindowWords = 1 << 18

// flipBucketMinOps gates the bucketed path: below this many ops the two
// extra passes over the op list cost more than the cache misses they
// save. Variable so tests can drive the bucketed path on small deltas.
var flipBucketMinOps = 1 << 12

// flipBucketShift returns s such that buckets of 1<<s consecutive models
// (reachUsr is model-major, so one model's M rows are contiguous) cover a
// window of at most flipBucketWindowWords, or -1 when the whole index
// fits in one bucket and bucketing cannot help.
func (ins *Instance) flipBucketShift() int {
	blockWords := ins.NumServers() * ins.userWords
	models := flipBucketWindowWords / blockWords
	shift := 0
	for models > 1 {
		models >>= 1
		shift++
	}
	if (ins.NumModels()-1)>>shift == 0 {
		return -1
	}
	return shift
}

// applyMaskOp flips user op.user()'s bit in every pair the op's
// server-mask word covers. Changed pairs are not marked per bit: the op's
// whole mask is OR-ed into the touched scratch (one word per (model,
// server word)), which foldTouchedPairs expands once after all ops land.
// Parallel appliers own disjoint model ranges, so they share the scratch
// without synchronization.
func (ins *Instance) applyMaskOp(op maskOp, touched []uint64) {
	uwords := ins.userWords
	M := ins.NumServers()
	i, k, wd := op.model(), op.user(), op.word()
	kw, kb := k>>6, uint(k&63)
	touched[i*ins.serverWords+wd] |= op.mask
	rowBase := (i*M+wd<<6)*uwords + kw
	if op.isSet() {
		for mask := op.mask; mask != 0; mask &= mask - 1 {
			ins.reachUsr[rowBase+mbits.TrailingZeros64(mask)*uwords] |= 1 << kb
		}
	} else {
		for mask := op.mask; mask != 0; mask &= mask - 1 {
			ins.reachUsr[rowBase+mbits.TrailingZeros64(mask)*uwords] &^= 1 << kb
		}
	}
}

// touchedScratch returns the zeroed per-(model, server-word) touched
// masks for one phase-2 application.
func (ins *Instance) touchedScratch() []uint64 {
	n := ins.NumModels() * ins.serverWords
	if cap(ins.updTouched) < n {
		ins.updTouched = make([]uint64, n)
	}
	touched := ins.updTouched[:n]
	clear(touched)
	return touched
}

// foldTouchedPairs marks pairs.Set(m*I+i) for every touched (m, i).
func (ins *Instance) foldTouchedPairs(pairs bitset.Set, touched []uint64) {
	I, sw := ins.NumModels(), ins.serverWords
	for i := 0; i < I; i++ {
		for wd := 0; wd < sw; wd++ {
			for word := touched[i*sw+wd]; word != 0; word &= word - 1 {
				m := wd<<6 | mbits.TrailingZeros64(word)
				pairs.Set(m*I + i)
			}
		}
	}
}

// applyOpsBucketed is the bulk phase-2 path: scatter the workers' op
// buffers into model-block buckets (counting sort on model>>shift), then
// apply bucket by bucket, so each batch's reachUsr writes stay inside one
// cache-resident block of model rows. Written bits are unique per update,
// so the reordered application is bit-identical to the direct loop. With
// more than one worker the buckets are split into contiguous ranges
// applied in parallel — disjoint model ranges touch disjoint reachUsr
// rows and disjoint touched words, so the appliers share both without
// synchronization.
func (ins *Instance) applyOpsBucketed(pairs bitset.Set, workers, total, shift int) {
	I := ins.NumModels()
	buckets := (I-1)>>shift + 1
	if cap(ins.updOps) < total {
		ins.updOps = make([]maskOp, total)
	}
	ops := ins.updOps[:total]
	if cap(ins.updOff) < buckets+1 {
		ins.updOff = make([]int, buckets+1)
		ins.updCur = make([]int, buckets)
	}
	off := ins.updOff[:buckets+1]
	cur := ins.updCur[:buckets]
	clear(off)
	for _, uw := range ins.updWorkers[:workers] {
		for _, op := range uw.ops {
			off[op.model()>>shift+1]++
		}
	}
	for b := 0; b < buckets; b++ {
		off[b+1] += off[b]
		cur[b] = off[b]
	}
	for _, uw := range ins.updWorkers[:workers] {
		for _, op := range uw.ops {
			b := op.model() >> shift
			ops[cur[b]] = op
			cur[b]++
		}
	}
	touched := ins.touchedScratch()
	apply := func(ops []maskOp) {
		for _, op := range ops {
			ins.applyMaskOp(op, touched)
		}
	}
	if workers <= 1 {
		apply(ops)
		ins.foldTouchedPairs(pairs, touched)
		return
	}
	// Bucket-aligned split: applier w starts at the first bucket whose ops
	// begin at or after w's even share of the total.
	if cap(ins.updBounds) < workers+1 {
		ins.updBounds = make([]int, workers+1)
	}
	bounds := ins.updBounds[:workers+1]
	bounds[0] = 0
	bounds[workers] = total
	for w := 1; w < workers; w++ {
		b := sort.SearchInts(off, w*total/workers)
		bounds[w] = off[min(b, buckets)]
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		if bounds[w] == bounds[w+1] {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			apply(ops[bounds[w]:bounds[w+1]])
		}(w)
	}
	wg.Wait()
	ins.foldTouchedPairs(pairs, touched)
}

// updateUser refreshes one dirty user: rates and relay rate first (with
// the old covering rates captured for the flip search), then the reach
// rows — threshold flips when the coverage set is unchanged, a fused
// recompute otherwise. Revised users (ins.updForce, read-only during the
// parallel phase) always take the fused recompute: their thresholds
// changed, so the rate-crossing flip search no longer describes which
// verdicts flipped. Clean users keep bit-identical rates: their positions,
// their servers' loads, and their shadowing gains are all unchanged.
//
// Zero-mass users (userHasMass false before this update) are untracked:
// their reach rows are kept exact, but no inverted-index flips are emitted
// — their UserMask bits carry no request mass, so every consumer is
// bitwise unaffected by their staleness, and the shard layer's ghost bands
// stop paying per-bit bookkeeping. ReviseUsers reconciles the bits when a
// user regains mass.
func (ins *Instance) updateUser(k int, oldCovering []int, w *updWorker) error {
	K := ins.NumUsers()
	newCovering := ins.topo.ServersCovering(k)
	oldRelay := ins.bestRelay[k]
	for _, m := range oldCovering {
		w.oldRate[m] = ins.avgRate[m*K+k]
		ins.avgRate[m*K+k] = 0
	}
	best := 0.0
	for _, m := range newCovering {
		if ins.serverDown(m) {
			continue // rate stays 0: the oldCovering sweep above zeroed it
		}
		rate, err := ins.wcfg.FadedRateBps(ins.topo.Distance(m, k), ins.topo.Load(m), ins.shadowGain(m, k))
		if err != nil {
			return fmt.Errorf("scenario: rate m=%d k=%d: %w", m, k, err)
		}
		ins.avgRate[m*K+k] = rate
		if rate > best {
			best = rate
		}
	}
	ins.bestRelay[k] = best

	track := ins.userHasMass[k]
	if !ins.updForce[k] && slices.Equal(oldCovering, newCovering) {
		ins.flipUserRows(k, newCovering, oldRelay, best, w, track)
	} else {
		ins.recomputeUserRows(k, newCovering, w, track)
	}
	return nil
}

// ensureFlipIndex builds, once per instance, each user's models ordered by
// ascending direct and relay rate thresholds. The thresholds are
// position-independent, so the index never invalidates; construction runs
// it eagerly (the fused measurement kernel consumes the rank prefixes from
// the first realization), so later calls are no-ops. An installed rank
// provider short-circuits the per-user sorts.
func (ins *Instance) ensureFlipIndex() {
	if ins.flipDirOrder != nil {
		return
	}
	K, I := ins.NumUsers(), ins.NumModels()
	ins.flipDirOrder = make([]int32, K*I)
	ins.flipDirVals = make([]float64, K*I)
	ins.flipRelOrder = make([]int32, K*I)
	ins.flipRelVals = make([]float64, K*I)
	if ins.rankProvider != nil {
		if ins.rankBuf == nil {
			ins.rankBuf = make([]rankPair, I)
		}
		for k := 0; k < K; k++ {
			ins.fillRankRows(k)
		}
		return
	}
	buildRanks(ins.flipDirOrder, ins.flipDirVals, ins.minDirRate, K, I)
	buildRanks(ins.flipRelOrder, ins.flipRelVals, ins.minRelRate, K, I)
}

// fillRankRows fills user k's rank rows through the provider when it can,
// sorting otherwise. The flip index and rankBuf must exist.
func (ins *Instance) fillRankRows(k int) {
	I := ins.NumModels()
	do := ins.flipDirOrder[k*I : (k+1)*I]
	dv := ins.flipDirVals[k*I : (k+1)*I]
	ro := ins.flipRelOrder[k*I : (k+1)*I]
	rv := ins.flipRelVals[k*I : (k+1)*I]
	if ins.rankProvider != nil && ins.rankProvider(k, do, dv, ro, rv) {
		return
	}
	buildRankRow(do, dv, ins.minDirRate[k*I:(k+1)*I], ins.rankBuf)
	buildRankRow(ro, rv, ins.minRelRate[k*I:(k+1)*I], ins.rankBuf)
}

// SetUpdateWorkers bounds the parallel user-update phase of
// UpdateUsers/ReviseUsers (and the bucketed flip application that follows
// it); 0 restores the default GOMAXPROCS bound. Results are bit-identical
// for any bound — the engines thread their Workers pin through so a
// single-goroutine configuration really runs single-goroutine here too.
func (ins *Instance) SetUpdateWorkers(n int) { ins.updMaxWorkers = n }

// SetRankProvider installs an external source of precomputed rank rows,
// consulted whenever a user's rank rows would otherwise be rebuilt by
// sorting (index construction and slot rebinds). The shard layer points
// cells at the global instance's rank index: a bound slot's thresholds
// equal the global user's, so its rank rows are a copy, not a sort.
func (ins *Instance) SetRankProvider(p RankProvider) { ins.rankProvider = p }

// EnsureRankIndex forces construction of the per-user threshold rank
// index. Construction now builds it eagerly, so this is a no-op kept for
// callers that predate the eager build.
func (ins *Instance) EnsureRankIndex() { ins.ensureFlipIndex() }

// UserRankRows returns user k's rank rows — models by ascending direct and
// relay rate threshold with the matching sorted values. The index exists
// from construction. The slices alias internal state; treat as read-only.
func (ins *Instance) UserRankRows(k int) (dirOrder []int32, dirVals []float64, relOrder []int32, relVals []float64) {
	I := ins.NumModels()
	return ins.flipDirOrder[k*I : (k+1)*I], ins.flipDirVals[k*I : (k+1)*I],
		ins.flipRelOrder[k*I : (k+1)*I], ins.flipRelVals[k*I : (k+1)*I]
}

// rankPair is one (threshold, model) entry of the rank index build.
type rankPair struct {
	v float64
	i int32
}

// buildRanks fills, per user, the model permutation sorted by ascending
// threshold and the matching sorted threshold values. Ties order
// arbitrarily: every consumer (flip ranges, rank prefix cutoffs) selects
// by value boundary, so equal-threshold models are always taken as a
// block. Sorting (value, index) pairs through slices.SortFunc keeps the
// comparator inlined — sort.Slice's reflection-based swapper tripled the
// one-time index cost at LoRA scale.
func buildRanks(order []int32, vals, thresholds []float64, K, I int) {
	pairs := make([]rankPair, I)
	for k := 0; k < K; k++ {
		buildRankRow(order[k*I:(k+1)*I], vals[k*I:(k+1)*I], thresholds[k*I:(k+1)*I], pairs)
	}
}

// buildRankRow fills one user's rank row from its threshold row; pairs is
// an I-element scratch.
func buildRankRow(order []int32, vals, thresholds []float64, pairs []rankPair) {
	for j := range pairs {
		pairs[j] = rankPair{v: thresholds[j], i: int32(j)}
	}
	slices.SortFunc(pairs, func(a, b rankPair) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	for j, p := range pairs {
		order[j] = p.i
		vals[j] = p.v
	}
}

// flipRange returns the rank interval [lo, hi) of thresholds crossed by a
// rate change old→new: thresholds t with min(old,new) < t ≤ max(old,new).
// Exactly these verdicts (rate ≥ t) flip; rising rates set them, falling
// rates clear them.
func flipRange(vals []float64, oldRate, newRate float64) (lo, hi int, set bool) {
	a, b := oldRate, newRate
	set = newRate > oldRate
	if !set {
		a, b = b, a
	}
	lo = sort.Search(len(vals), func(j int) bool { return vals[j] > a })
	hi = lo + sort.Search(len(vals)-lo, func(j int) bool { return vals[lo+j] > b })
	return lo, hi, set
}

// flipUserRows applies a same-coverage rate change to user k's reach rows:
// binary-search the user's threshold ranks for the verdicts the relay and
// per-server rate changes crossed, and toggle exactly those bits in both
// packed orientations — O(M·log I + flips) instead of an O(I) refill.
// track false (zero-mass user) updates the rows but records no inverted-
// index ops.
func (ins *Instance) flipUserRows(k int, covering []int, oldRelay, newRelay float64, w *updWorker, track bool) {
	K, I := ins.NumUsers(), ins.NumModels()
	sw := ins.serverWords
	rows := ins.reachSrv[k*I*sw : (k+1)*I*sw]

	// Relay flips toggle every non-covering server's bit (covering bits are
	// always governed by their direct verdict, since covering rates are
	// positive).
	if oldRelay != newRelay {
		cov := bitset.Set(w.covMask)
		cov.Zero()
		for _, m := range covering {
			cov.Set(m)
		}
		nonCov := bitset.Set(w.rows[:sw]) // borrow row scratch for the mask
		nonCov.CopyFrom(bitset.Set(ins.updFullRow))
		nonCov.AndNot(cov)
		relVals := ins.flipRelVals[k*I : (k+1)*I]
		relOrder := ins.flipRelOrder[k*I : (k+1)*I]
		lo, hi, set := flipRange(relVals, oldRelay, newRelay)
		for j := lo; j < hi; j++ {
			i := int(relOrder[j])
			row := bitset.Set(rows[i*sw : (i+1)*sw])
			for wd, word := range nonCov {
				if ins.capBlock != nil {
					// Blocked bits were never set, so masking the clears
					// too keeps both directions of the flip exact.
					word &^= ins.capBlock[i*sw+wd]
				}
				if set {
					row[wd] |= word
				} else {
					row[wd] &^= word
				}
				if track && word != 0 {
					w.emit(i, k, wd, set, word)
				}
			}
		}
	}

	dirVals := ins.flipDirVals[k*I : (k+1)*I]
	dirOrder := ins.flipDirOrder[k*I : (k+1)*I]
	for _, m := range covering {
		oldRate, newRate := w.oldRate[m], ins.avgRate[m*K+k]
		if oldRate == newRate {
			continue
		}
		mw, mb := m>>6, uint64(1)<<uint(m&63)
		lo, hi, set := flipRange(dirVals, oldRate, newRate)
		for j := lo; j < hi; j++ {
			i := int(dirOrder[j])
			if ins.capBlock != nil && ins.capBlock[i*sw+mw]&mb != 0 {
				continue // m cannot store i: the bit stays clear
			}
			row := bitset.Set(rows[i*sw : (i+1)*sw])
			if set {
				row.Set(m)
			} else {
				row.Clear(m)
			}
			if track {
				w.emit(i, k, mw, set, mb)
			}
		}
	}
}

// recomputeUserRows is the coverage-changed fallback: recompute user k's
// rows in one fused pass — verdict, diff against the stored row, inverted-
// index op, store — with the covering rates hoisted out of the model
// loop. The verdicts are the same compares fillReachRows performs, so the
// result stays bit-identical to a full rebuild. track false stores the
// rows without diffing or op recording (zero-mass users).
func (ins *Instance) recomputeUserRows(k int, covering []int, w *updWorker, track bool) {
	K, I := ins.NumUsers(), ins.NumModels()
	sw := ins.serverWords
	minDir := ins.minDirRate[k*I : (k+1)*I]
	minRel := ins.minRelRate[k*I : (k+1)*I]
	relay := ins.bestRelay[k]
	// Covering rates and their bit masks, gathered once (rates are positive
	// for every covering link, matching fillReachRows' direct > 0 guard).
	dirRates := w.dirRates[:0]
	dirBits := w.dirBits[:0]
	for _, m := range covering {
		if r := ins.avgRate[m*K+k]; r > 0 {
			dirRates = append(dirRates, r)
			dirBits = append(dirBits, 1<<uint(m&63))
		}
	}
	if sw == 1 {
		fullWord := ins.updFullRow[0]
		if relay <= 0 {
			fullWord = 0 // relay verdict constant-false; compare below can't pass
		}
		capBlock := ins.capBlock
		rows := ins.reachSrv[k*I : (k+1)*I : (k+1)*I]
		minRel, minDir := minRel[:len(rows)], minDir[:len(rows)]
		for i := range rows {
			var word uint64
			if relay >= minRel[i] {
				word = fullWord
			}
			for j, direct := range dirRates {
				if direct >= minDir[i] {
					word |= dirBits[j]
				} else {
					word &^= dirBits[j]
				}
			}
			if capBlock != nil {
				word &^= capBlock[i]
			}
			if !track {
				rows[i] = word
				continue
			}
			diff := rows[i] ^ word
			if diff == 0 {
				continue
			}
			rows[i] = word
			if sm := word & diff; sm != 0 {
				w.emit(i, k, 0, true, sm)
			}
			if cm := diff &^ word; cm != 0 {
				w.emit(i, k, 0, false, cm)
			}
		}
		return
	}
	ins.fillReachRows(k, covering, ins.avgRate, relay, bitset.Set(ins.updFullRow), w.rows)
	rows := ins.reachSrv[k*I*sw : (k+1)*I*sw]
	if track {
		for i := 0; i < I; i++ {
			for wd := 0; wd < sw; wd++ {
				newWord := w.rows[i*sw+wd]
				diff := rows[i*sw+wd] ^ newWord
				if diff == 0 {
					continue
				}
				if sm := newWord & diff; sm != 0 {
					w.emit(i, k, wd, true, sm)
				}
				if cm := diff &^ newWord; cm != 0 {
					w.emit(i, k, wd, false, cm)
				}
			}
		}
	}
	copy(rows, w.rows)
}

// MemoryFootprint reports the heap bytes the instance owns, by component:
// both packed reachability orientations, the threshold rank index, the
// rate/threshold tables, the workload (headers only when rows alias a
// parent), the topology, and the reusable update scratch. Capacities are
// counted, not lengths — the footprint is what the instance pins in steady
// state.
func (ins *Instance) MemoryFootprint() memprof.Footprint {
	var f memprof.Footprint
	f.Reach = int64(cap(ins.reachSrv)+cap(ins.reachUsr)) * 8
	f.Rank = int64(cap(ins.flipDirOrder)+cap(ins.flipRelOrder))*4 +
		int64(cap(ins.flipDirVals)+cap(ins.flipRelVals))*8
	f.Rates = int64(cap(ins.avgRate)+cap(ins.bestRelay)+cap(ins.minDirRate)+cap(ins.minRelRate)+cap(ins.sizeBits)) * 8
	for m := range ins.shadow {
		f.Rates += int64(cap(ins.shadow[m])) * 8
	}
	f.Workload = ins.work.MemoryBytes()
	f.Topology = ins.topo.MemoryBytes()
	f.Scratch = int64(cap(ins.updDirty)+cap(ins.updForce)+cap(ins.userHasMass)+cap(ins.down)) * 1
	f.Scratch += int64(cap(ins.capBits)+cap(ins.capBlock)) * 8
	f.Scratch += int64(cap(ins.updUsers)+cap(ins.updOff)+cap(ins.updCur)+cap(ins.updBounds)+cap(ins.updRevised)) * 8
	f.Scratch += int64(cap(ins.updFullRow)+cap(ins.updTouched)) * 8
	f.Scratch += int64(cap(ins.updOps)) * 16
	f.Scratch += int64(cap(ins.rankBuf)) * 16
	f.Scratch += int64(cap(ins.updDelta.Pairs)) * 8
	for _, uw := range ins.updWorkers {
		f.Scratch += int64(cap(uw.oldRate)+cap(uw.dirRates))*8 +
			int64(cap(uw.dirBits)+cap(uw.covMask)+cap(uw.rows))*8 +
			int64(cap(uw.ops))*16
	}
	if ins.moveScratch != nil {
		f.Scratch += ins.moveScratch.MemoryBytes()
	}
	return f
}

// Topology returns the deployment.
func (ins *Instance) Topology() *topology.Topology { return ins.topo }

// Library returns the model library.
func (ins *Instance) Library() *modellib.Library { return ins.lib }

// Workload returns the demand model.
func (ins *Instance) Workload() *workload.Workload { return ins.work }

// Wireless returns the channel configuration.
func (ins *Instance) Wireless() wireless.Config { return ins.wcfg }

// NumServers returns M.
func (ins *Instance) NumServers() int { return ins.topo.NumServers() }

// NumUsers returns K.
func (ins *Instance) NumUsers() int { return ins.work.NumUsers() }

// NumModels returns I.
func (ins *Instance) NumModels() int { return ins.lib.NumModels() }

// AvgRateBps returns C̄_{m,k} (eq. 1), or 0 when m does not cover k.
func (ins *Instance) AvgRateBps(m, k int) float64 { return ins.avgRate[m*ins.NumUsers()+k] }

// LatencyS returns T_{m,k,i} in seconds under the average channel
// (eqs. 4–5), +Inf if unreachable.
func (ins *Instance) LatencyS(m, k, i int) float64 {
	return ins.latency(m, k, i, ins.avgRate, ins.bestRelay)
}

// Reachable returns I1(m,k,i) under the average channel: whether server m
// can deliver model i to user k within the QoS deadline.
func (ins *Instance) Reachable(m, k, i int) bool {
	return ins.ServerMask(k, i).Has(m)
}

// ServerMask returns the packed set of servers that can serve model i to
// user k within its deadline under the average channel. The returned slice
// aliases internal state; callers must treat it as read-only.
func (ins *Instance) ServerMask(k, i int) bitset.Set {
	sw := ins.serverWords
	off := (k*ins.NumModels() + i) * sw
	return bitset.Set(ins.reachSrv[off : off+sw])
}

// UserMask returns the packed set of users to whom server m can deliver
// model i within their deadlines under the average channel. The returned
// slice aliases internal state; callers must treat it as read-only.
//
// Bits of zero-mass users (all-zero probability rows — the shard layer's
// ghosts and parked slots) may lag their reach rows on delta-updated
// instances: such users are untracked until they regain mass, which is
// invisible to every mass computation (their contribution is exactly
// zero) and reconciled by ReviseUsers before mass returns.
func (ins *Instance) UserMask(m, i int) bitset.Set {
	uw := ins.userWords
	off := (i*ins.NumServers() + m) * uw
	return bitset.Set(ins.reachUsr[off : off+uw])
}

// ServerMaskWords returns the number of words in each server mask.
func (ins *Instance) ServerMaskWords() int { return ins.serverWords }

// PackedServerMasks returns every server mask concatenated, laid out
// [(k*I+i)*ServerMaskWords() + w]. With single-word masks (M ≤ 64) this
// lets evaluators stream one contiguous word per request. The slice
// aliases internal state; callers must treat it as read-only.
func (ins *Instance) PackedServerMasks() []uint64 { return ins.reachSrv }

// UserMaskWords returns the number of words in each user mask.
func (ins *Instance) UserMaskWords() int { return ins.userWords }

// Prob returns p_{k,i}.
func (ins *Instance) Prob(k, i int) float64 { return ins.work.Prob(k, i) }

// ProbRow returns user k's probability vector over all models (read-only).
func (ins *Instance) ProbRow(k int) []float64 { return ins.work.ProbRow(k) }

// TotalMass returns Σ p_{k,i}, the denominator of eq. (2).
func (ins *Instance) TotalMass() float64 { return ins.totalMass }

// HitMass returns u(m,i) without the I2 exclusion (eq. 14 with I2 ≡ 1): the
// expected request mass server m can serve by caching model i.
func (ins *Instance) HitMass(m, i int) float64 {
	var sum float64
	ins.UserMask(m, i).ForEach(func(k int) {
		sum += ins.Prob(k, i)
	})
	return sum
}

// Reach is a word-packed I1 indicator for one channel realization: for every
// (user, model) request it holds the set of servers able to deliver within
// the QoS deadline. Buffers are reusable across realizations (allocate once
// per goroutine with MakeReachBuffer) and carry their own rate scratch so a
// FadedReach call performs no allocation.
type Reach struct {
	numServers, numUsers, numModels int
	words                           int      // server-mask words
	bits                            []uint64 // [(k*I+i)*words + w], bit m
	rates                           []float64
	relay                           []float64
}

// ServerMask returns the packed set of servers that can serve model i to
// user k under this realization. The slice aliases the buffer.
func (r *Reach) ServerMask(k, i int) bitset.Set {
	off := (k*r.numModels + i) * r.words
	return bitset.Set(r.bits[off : off+r.words])
}

// Has reports I1(m,k,i) under this realization.
func (r *Reach) Has(m, k, i int) bool { return r.ServerMask(k, i).Has(m) }

// Dims returns (M, K, I).
func (r *Reach) Dims() (numServers, numUsers, numModels int) {
	return r.numServers, r.numUsers, r.numModels
}

// Words returns the number of words in each server mask.
func (r *Reach) Words() int { return r.words }

// MemoryBytes returns the heap bytes the buffer owns.
func (r *Reach) MemoryBytes() int64 {
	return int64(cap(r.bits)+cap(r.rates)+cap(r.relay)) * 8
}

// PackedServerMasks returns every server mask concatenated, laid out
// [(k*I+i)*Words() + w]. The slice aliases the buffer; callers must treat
// it as read-only.
func (r *Reach) PackedServerMasks() []uint64 { return r.bits }

// FadedReach computes the I1 indicator under one Rayleigh-fading
// realization. gains[m][k] is the fading power gain |h|^2 for covering
// links (ignored elsewhere). The result is written into dst (allocate with
// MakeReachBuffer; nil allocates a fresh buffer) and returned.
//
// The placement is decided on average channel gains while performance is
// examined under fading (§VII-A); this method powers that evaluation.
func (ins *Instance) FadedReach(gains [][]float64, dst *Reach) (*Reach, error) {
	M, K := ins.NumServers(), ins.NumUsers()
	if err := ins.checkGains(gains); err != nil {
		return nil, err
	}
	if dst == nil {
		dst = ins.MakeReachBuffer()
	}
	if dst.numServers != M || dst.numUsers != K || dst.numModels != ins.NumModels() {
		return nil, fmt.Errorf("scenario: reach buffer dims %dx%dx%d, want %dx%dx%d",
			dst.numServers, dst.numUsers, dst.numModels, M, K, ins.NumModels())
	}
	if err := ins.fadeRates(gains, dst.rates, dst.relay); err != nil {
		return nil, err
	}
	ins.fillReach(dst.rates, dst.relay, dst.bits)
	return dst, nil
}

// MakeReachBuffer allocates a reusable buffer for FadedReach.
func (ins *Instance) MakeReachBuffer() *Reach {
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	return &Reach{
		numServers: M,
		numUsers:   K,
		numModels:  I,
		words:      ins.serverWords,
		bits:       make([]uint64, K*I*ins.serverWords),
		rates:      make([]float64, M*K),
		relay:      make([]float64, K),
	}
}
