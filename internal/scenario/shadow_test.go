package scenario

import (
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/rng"
)

func TestShadowedInstanceValidation(t *testing.T) {
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(2), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperGenConfig(3, 5)
	ins, err := Generate(lib, cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong shadow dimensions must be rejected.
	bad := [][]float64{{1, 1}}
	if _, err := NewShadowed(ins.Topology(), lib, ins.Workload(), cfg.Wireless, bad); err == nil {
		t.Fatal("wrong shadow rows must error")
	}
	bad2 := make([][]float64, 3)
	for m := range bad2 {
		bad2[m] = []float64{1}
	}
	if _, err := NewShadowed(ins.Topology(), lib, ins.Workload(), cfg.Wireless, bad2); err == nil {
		t.Fatal("wrong shadow cols must error")
	}
}

func TestShadowingChangesRates(t *testing.T) {
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(2), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperGenConfig(4, 8)
	plain, err := Generate(lib, cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Wireless = cfg.Wireless.WithShadowing(8)
	shadowed, err := Generate(lib, cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Same topology draw (same seed stream), but shadowed rates must differ
	// on covered links.
	diffs := 0
	for m := 0; m < plain.NumServers(); m++ {
		for k := 0; k < plain.NumUsers(); k++ {
			a, b := plain.AvgRateBps(m, k), shadowed.AvgRateBps(m, k)
			if (a == 0) != (b == 0) {
				t.Fatal("shadowing changed coverage")
			}
			if a > 0 && a != b {
				diffs++
			}
		}
	}
	if diffs == 0 {
		t.Fatal("shadowing changed no rates")
	}
}

func TestUnitShadowMatchesPlain(t *testing.T) {
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(2), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperGenConfig(3, 6)
	plain, err := Generate(lib, cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	ones := make([][]float64, plain.NumServers())
	for m := range ones {
		ones[m] = make([]float64, plain.NumUsers())
		for k := range ones[m] {
			ones[m][k] = 1
		}
	}
	unit, err := NewShadowed(plain.Topology(), lib, plain.Workload(), cfg.Wireless, ones)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < plain.NumServers(); m++ {
		for k := 0; k < plain.NumUsers(); k++ {
			if plain.AvgRateBps(m, k) != unit.AvgRateBps(m, k) {
				t.Fatal("unit shadow changed rates")
			}
		}
	}
}
