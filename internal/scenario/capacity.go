// This file is the partial-capacity degradation seam: SetServerCapacity
// shrinks (or restores) one server's storage budget and incrementally
// refreshes both packed reachability orientations so a warm placement
// evaluator can repair over the reduced instance exactly as if it had been
// built at that capacity from the start.
//
// Capacity is orthogonal to the radio plane: a degraded server keeps its
// link rates, its users' association geometry, and its role as a relay
// last hop — it just cannot be the serving server for any model that no
// longer fits its budget on its own (sizeBits[i] > capBits[m]). Those
// (server, model) pairs are packed into capBlock, in the placement-column
// layout, and every reachability fill AND-NOTs them out; the fused
// measurement kernel masks placement columns with the same words, so the
// average-channel, per-realization, and fused paths all agree bit for bit.
//
// The returned delta marks the whole column of the resized server — every
// (m, i) pair, toggled or not — because the server's byte budget is solver
// state the reachability masks cannot express: a shrink that blocks no
// model outright can still overflow the deduplicated storage of the
// currently cached set, and a warm Repair must re-solve rather than
// short-circuit on an empty pair set.
package scenario

import (
	"fmt"

	"trimcaching/internal/bitset"
)

// capBlocked reports whether server m's storage budget blocks model i
// (the model does not fit the server's capacity even cached alone).
func (ins *Instance) capBlocked(m, i int) bool {
	return ins.capBlock != nil && ins.capBlock[i*ins.serverWords+m>>6]&(1<<uint(m&63)) != 0
}

// CapBlocked reports whether server m's storage budget blocks model i.
func (ins *Instance) CapBlocked(m, i int) bool { return ins.capBlocked(m, i) }

// ServerCapacityBits returns server m's storage budget in bits, or -1 when
// unconstrained (the construction default).
func (ins *Instance) ServerCapacityBits(m int) int64 {
	if ins.capBits == nil {
		return -1
	}
	return ins.capBits[m]
}

// CapacityLimitedServers returns the ascending list of servers carrying a
// finite storage budget.
func (ins *Instance) CapacityLimitedServers() []int {
	var list []int
	for m, bits := range ins.capBits {
		if bits >= 0 {
			list = append(list, m)
		}
	}
	return list
}

// SetServerCapacity sets server m's storage budget to bits (negative
// restores the unconstrained default) and incrementally refreshes the
// instance: every model larger than the budget loses server m's bit from
// both packed reachability orientations, and previously blocked models
// that fit again regain exactly the verdict a fresh build would store —
// so the instance is bit-identical to a cold build at the same capacity,
// and a later restore is a bit-exact round trip.
//
// The returned delta follows the SetServersDown contract, with one
// deliberate widening: when the budget value changes, Pairs carries server
// m's whole column — the byte budget itself is placement-solver state, so
// a warm Repair must re-solve even when no reachability bit toggled. A
// call that leaves the budget unchanged returns a no-op delta at the
// current generation. The delta and its slices are owned by the instance
// and valid until the next update call.
func (ins *Instance) SetServerCapacity(m int, bits int64) (*Delta, error) {
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	if ins.coordinator {
		return nil, fmt.Errorf("scenario: coordinator instances carry no rate or reachability state to update")
	}
	if m < 0 || m >= M {
		return nil, fmt.Errorf("scenario: server %d out of range [0,%d)", m, M)
	}
	if bits < 0 {
		bits = -1
	}
	if ins.capBits == nil {
		if bits < 0 {
			// Restoring a budget that was never constrained: nothing to do,
			// and no state to allocate.
			return ins.noopDelta(), nil
		}
		ins.capBits = make([]int64, M)
		for x := range ins.capBits {
			ins.capBits[x] = -1
		}
		ins.capBlock = make([]uint64, I*ins.serverWords)
	}
	if ins.capBits[m] == bits {
		return ins.noopDelta(), nil
	}
	ins.capBits[m] = bits
	ins.ensureUpdScratch()
	ins.ensureFlipIndex()

	// Toggled models: blocked-state changes under the new budget. The
	// capBlock bits flip first so every recompute below sees the new
	// verdicts.
	sw := ins.serverWords
	mw, mb := m>>6, uint64(1)<<uint(m&63)
	var togModels []int // scratch-free would need a field; the call is event-rate, not checkpoint-rate
	for i := 0; i < I; i++ {
		blocked := bits >= 0 && ins.sizeBits[i] > float64(bits)
		if blocked == (ins.capBlock[i*sw+mw]&mb != 0) {
			continue
		}
		if blocked {
			ins.capBlock[i*sw+mw] |= mb
		} else {
			ins.capBlock[i*sw+mw] &^= mb
		}
		togModels = append(togModels, i)
	}

	pairs := ins.resetPairs()
	// The whole column is marked whenever the budget value changed: the
	// byte budget is solver-consumed state the masks cannot carry.
	for i := 0; i < I; i++ {
		pairs.Set(m*I + i)
	}

	// If the server is down, no reachability bit carries it anyway — rows
	// only change on recovery, which replays capBlock through its masked
	// restore. Only the block state and the delta needed updating.
	if len(togModels) == 0 || ins.serverDown(m) {
		if bits < 0 {
			ins.maybeDropCapState()
		}
		ins.gen++
		ins.updDelta.Gen = ins.gen
		ins.updDelta.Users = ins.updUsers[:0]
		ins.updDelta.Revised = nil
		ins.updDelta.RevGen = ins.revGen
		return &ins.updDelta, nil
	}

	// One serial pass over the users, ascending, restoring each toggled
	// (k, i, m) bit to the verdict fillReachRows would store: cleared when
	// newly blocked; otherwise the direct verdict for m's own users (their
	// covering rates are positive while m is up) and the relay verdict for
	// everyone else. Ops land in deterministic order, exactly like
	// SetServersDown's serial pass.
	for len(ins.updWorkers) < 1 {
		ins.updWorkers = append(ins.updWorkers, newUpdWorker(M, I, sw))
	}
	uw := ins.updWorkers[0]
	uw.ops = uw.ops[:0]
	covered := ins.updDirty
	for _, k := range ins.topo.UsersOf(m) {
		covered[k] = true
	}
	for k := 0; k < K; k++ {
		track := ins.userHasMass[k]
		direct := 0.0
		if covered[k] {
			covered[k] = false
			direct = ins.avgRate[m*K+k]
		}
		relay := ins.bestRelay[k]
		rows := ins.reachSrv[k*I*sw : (k+1)*I*sw]
		for _, i := range togModels {
			want := false
			if ins.capBlock[i*sw+mw]&mb == 0 {
				if direct > 0 {
					want = direct >= ins.minDirRate[k*I+i]
				} else {
					want = relay > 0 && relay >= ins.minRelRate[k*I+i]
				}
			}
			has := rows[i*sw+mw]&mb != 0
			if has == want {
				continue
			}
			if want {
				rows[i*sw+mw] |= mb
			} else {
				rows[i*sw+mw] &^= mb
			}
			if track {
				uw.emit(i, k, mw, want, mb)
			}
		}
	}

	// Phase 2: same application as every other update path — written bits
	// are unique per (user, model), so order never matters.
	if shift := ins.flipBucketShift(); shift >= 0 && len(uw.ops) >= flipBucketMinOps {
		ins.applyOpsBucketed(pairs, 1, len(uw.ops), shift)
	} else {
		touched := ins.touchedScratch()
		for _, op := range uw.ops {
			ins.applyMaskOp(op, touched)
		}
		ins.foldTouchedPairs(pairs, touched)
	}

	if bits < 0 {
		ins.maybeDropCapState()
	}
	ins.gen++
	ins.updDelta.Gen = ins.gen
	ins.updDelta.Users = ins.updUsers[:0]
	ins.updDelta.Revised = nil
	ins.updDelta.RevGen = ins.revGen
	return &ins.updDelta, nil
}

// noopDelta returns the reused delta at the current generation with no
// changed pairs — an evaluator applies it as a no-op.
func (ins *Instance) noopDelta() *Delta {
	ins.ensureUpdScratch()
	ins.resetPairs()
	ins.updDelta.Gen = ins.gen
	ins.updDelta.Users = ins.updUsers[:0]
	ins.updDelta.Revised = nil
	ins.updDelta.RevGen = ins.revGen
	return &ins.updDelta
}

// resetPairs returns the reused delta's pair set, zeroed.
func (ins *Instance) resetPairs() bitset.Set {
	if ins.updDelta.Pairs == nil {
		ins.updDelta.Pairs = bitset.New(ins.NumServers() * ins.NumModels())
	} else {
		ins.updDelta.Pairs.Zero()
	}
	return ins.updDelta.Pairs
}

// maybeDropCapState restores the nil fast path when no server is
// constrained anymore: a fully restored instance is indistinguishable from
// — and as cheap as — one that was never degraded, so the per-row AND-NOT
// and the fused kernel's column masking disappear with the state.
func (ins *Instance) maybeDropCapState() {
	for _, b := range ins.capBits {
		if b >= 0 {
			return
		}
	}
	ins.capBits, ins.capBlock = nil, nil
}
