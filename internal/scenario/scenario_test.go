package scenario

import (
	"math"
	"testing"

	"trimcaching/internal/geom"
	"trimcaching/internal/libgen"
	"trimcaching/internal/rng"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

func paperGenConfig(m, k int) GenConfig {
	w := wireless.DefaultConfig()
	return GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: m, NumUsers: k, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}
}

func buildInstance(t *testing.T, m, k, modelsPerFamily int, seed uint64) *Instance {
	t.Helper()
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(modelsPerFamily), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Generate(lib, paperGenConfig(m, k), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestGenerateDims(t *testing.T) {
	ins := buildInstance(t, 10, 30, 4, 1)
	if ins.NumServers() != 10 || ins.NumUsers() != 30 || ins.NumModels() != 12 {
		t.Fatalf("dims: M=%d K=%d I=%d", ins.NumServers(), ins.NumUsers(), ins.NumModels())
	}
	if math.Abs(ins.TotalMass()-30) > 1e-6 {
		t.Fatalf("total mass %v", ins.TotalMass())
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(nil, paperGenConfig(2, 2), rng.New(1)); err == nil {
		t.Fatal("nil library must error")
	}
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(2), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := paperGenConfig(2, 2)
	bad.Topology.NumServers = 0
	if _, err := Generate(lib, bad, rng.New(3)); err == nil {
		t.Fatal("bad topology config must error")
	}
	// Mismatched coverage radius between topology and wireless config.
	bad2 := paperGenConfig(2, 2)
	bad2.Topology.CoverageRadiusM = 100
	if _, err := Generate(lib, bad2, rng.New(4)); err == nil {
		t.Fatal("radius mismatch must error")
	}
}

func TestAvgRateOnlyForCoveringServers(t *testing.T) {
	ins := buildInstance(t, 8, 20, 3, 5)
	topo := ins.Topology()
	for m := 0; m < ins.NumServers(); m++ {
		covered := map[int]bool{}
		for _, k := range topo.UsersOf(m) {
			covered[k] = true
		}
		for k := 0; k < ins.NumUsers(); k++ {
			rate := ins.AvgRateBps(m, k)
			if covered[k] && rate <= 0 {
				t.Fatalf("covering link (%d,%d) has rate %v", m, k, rate)
			}
			if !covered[k] && rate != 0 {
				t.Fatalf("non-covering link (%d,%d) has rate %v", m, k, rate)
			}
		}
	}
}

func TestLatencyStructure(t *testing.T) {
	ins := buildInstance(t, 8, 20, 3, 6)
	topo := ins.Topology()
	for k := 0; k < ins.NumUsers(); k++ {
		covering := topo.ServersCovering(k)
		coveringSet := map[int]bool{}
		for _, m := range covering {
			coveringSet[m] = true
		}
		for i := 0; i < ins.NumModels(); i++ {
			// Relay latency must not depend on which non-covering server
			// serves (constant backhaul), and must exceed the best direct
			// latency.
			var relayLat []float64
			var bestDirect = math.Inf(1)
			for m := 0; m < ins.NumServers(); m++ {
				lat := ins.LatencyS(m, k, i)
				if !coveringSet[m] {
					relayLat = append(relayLat, lat)
				} else if lat < bestDirect {
					bestDirect = lat
				}
				if lat <= ins.Workload().InferS(k, i) {
					t.Fatalf("latency (%d,%d,%d)=%v below inference time", m, k, i, lat)
				}
			}
			for _, rl := range relayLat[1:] {
				if rl != relayLat[0] && !(math.IsInf(rl, 1) && math.IsInf(relayLat[0], 1)) {
					t.Fatalf("relay latency differs across servers: %v vs %v", rl, relayLat[0])
				}
			}
			if len(covering) == 0 {
				for _, rl := range relayLat {
					if !math.IsInf(rl, 1) {
						t.Fatalf("uncovered user %d has finite latency %v", k, rl)
					}
				}
			} else if len(relayLat) > 0 && !math.IsInf(relayLat[0], 1) && relayLat[0] < bestDirect {
				// Relay adds a backhaul hop on top of the best direct rate,
				// so it can never beat the best covering server.
				t.Fatalf("relay latency %v beats best direct %v", relayLat[0], bestDirect)
			}
		}
	}
}

func TestReachableMatchesLatency(t *testing.T) {
	ins := buildInstance(t, 6, 15, 3, 7)
	for m := 0; m < ins.NumServers(); m++ {
		for k := 0; k < ins.NumUsers(); k++ {
			for i := 0; i < ins.NumModels(); i++ {
				want := ins.LatencyS(m, k, i) <= ins.Workload().DeadlineS(k, i)
				if got := ins.Reachable(m, k, i); got != want {
					t.Fatalf("Reachable(%d,%d,%d) = %v, latency %v deadline %v",
						m, k, i, got, ins.LatencyS(m, k, i), ins.Workload().DeadlineS(k, i))
				}
			}
		}
	}
}

func TestSomeReachabilityExists(t *testing.T) {
	// With the paper's parameters a 10-server, 30-user deployment must have
	// plenty of servable (m,k,i) triples — otherwise the whole experiment
	// is vacuous.
	ins := buildInstance(t, 10, 30, 4, 8)
	var reach, total int
	for m := 0; m < ins.NumServers(); m++ {
		for k := 0; k < ins.NumUsers(); k++ {
			for i := 0; i < ins.NumModels(); i++ {
				total++
				if ins.Reachable(m, k, i) {
					reach++
				}
			}
		}
	}
	frac := float64(reach) / float64(total)
	if frac < 0.05 {
		t.Fatalf("only %.1f%% of triples reachable; latency model implausible", 100*frac)
	}
}

func TestHitMass(t *testing.T) {
	ins := buildInstance(t, 6, 15, 3, 9)
	for m := 0; m < ins.NumServers(); m++ {
		for i := 0; i < ins.NumModels(); i++ {
			var want float64
			for k := 0; k < ins.NumUsers(); k++ {
				if ins.Reachable(m, k, i) {
					want += ins.Prob(k, i)
				}
			}
			if got := ins.HitMass(m, i); math.Abs(got-want) > 1e-12 {
				t.Fatalf("HitMass(%d,%d) = %v, want %v", m, i, got, want)
			}
		}
	}
}

func TestFadedReachUnitGainsMatchAverage(t *testing.T) {
	ins := buildInstance(t, 6, 15, 3, 10)
	gains := make([][]float64, ins.NumServers())
	for m := range gains {
		gains[m] = make([]float64, ins.NumUsers())
		for k := range gains[m] {
			gains[m][k] = 1
		}
	}
	buf := ins.MakeReachBuffer()
	got, err := ins.FadedReach(gains, buf)
	if err != nil {
		t.Fatal(err)
	}
	K, I := ins.NumUsers(), ins.NumModels()
	for m := 0; m < ins.NumServers(); m++ {
		for k := 0; k < K; k++ {
			for i := 0; i < I; i++ {
				if got.Has(m, k, i) != ins.Reachable(m, k, i) {
					t.Fatalf("unit-gain faded reach differs at (%d,%d,%d)", m, k, i)
				}
			}
		}
	}
}

func TestFadedReachDeepFadeKillsDirect(t *testing.T) {
	ins := buildInstance(t, 6, 15, 3, 11)
	gains := make([][]float64, ins.NumServers())
	for m := range gains {
		gains[m] = make([]float64, ins.NumUsers())
		// ~zero gain: every link is in deep fade.
		for k := range gains[m] {
			gains[m][k] = 1e-12
		}
	}
	got, err := ins.FadedReach(gains, ins.MakeReachBuffer())
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < ins.NumServers(); m++ {
		for k := 0; k < ins.NumUsers(); k++ {
			for i := 0; i < ins.NumModels(); i++ {
				if got.Has(m, k, i) {
					t.Fatal("deep fade should make everything unreachable")
				}
			}
		}
	}
}

func TestFadedReachValidation(t *testing.T) {
	ins := buildInstance(t, 4, 6, 2, 12)
	if _, err := ins.FadedReach(nil, ins.MakeReachBuffer()); err == nil {
		t.Fatal("nil gains must error")
	}
	gains := SampleGains(ins.NumServers(), ins.NumUsers(), rng.New(13))
	other := buildInstance(t, 4, 7, 2, 99)
	if _, err := ins.FadedReach(gains, other.MakeReachBuffer()); err == nil {
		t.Fatal("wrong-dimension buffer must error")
	}
	if got, err := ins.FadedReach(gains, nil); err != nil || got == nil {
		t.Fatalf("nil buffer must allocate: %v", err)
	}
	bad := SampleGains(ins.NumServers(), ins.NumUsers()-1, rng.New(14))
	if _, err := ins.FadedReach(bad, ins.MakeReachBuffer()); err == nil {
		t.Fatal("wrong gain column count must error")
	}
}

func TestSampleGains(t *testing.T) {
	g := SampleGains(4, 9, rng.New(15))
	if len(g) != 4 || len(g[0]) != 9 {
		t.Fatalf("gains dims %dx%d", len(g), len(g[0]))
	}
	var sum float64
	var n int
	for _, row := range g {
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative gain %v", v)
			}
			sum += v
			n++
		}
	}
	if mean := sum / float64(n); mean < 0.4 || mean > 2.0 {
		t.Fatalf("gain mean %v far from 1", mean)
	}
}

func TestCloserServerHasLowerLatency(t *testing.T) {
	// Construct a deterministic topology: two servers, one user near
	// server 0 — direct from server 0 must beat relay from server 1.
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(2), rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	area, err := geom.NewArea(1000)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.New(area,
		[]geom.Point{{X: 100, Y: 100}, {X: 900, Y: 900}},
		[]geom.Point{{X: 120, Y: 100}}, w.CoverageRadiusM)
	if err != nil {
		t.Fatal(err)
	}
	work, err := workload.Generate(1, lib.NumModels(), workload.DefaultConfig(), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	ins, err := New(topo, lib, work, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ins.NumModels(); i++ {
		direct := ins.LatencyS(0, 0, i)
		relay := ins.LatencyS(1, 0, i)
		if !(direct < relay) {
			t.Fatalf("model %d: direct %v !< relay %v", i, direct, relay)
		}
	}
}

func TestNewValidation(t *testing.T) {
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(2), rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	topo, err := topology.Generate(topology.Config{
		AreaSideM: 1000, NumServers: 3, NumUsers: 5, CoverageRadiusM: w.CoverageRadiusM,
	}, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	work, err := workload.Generate(4, lib.NumModels(), workload.DefaultConfig(), rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(topo, lib, work, w); err == nil {
		t.Fatal("user count mismatch must error")
	}
	work2, err := workload.Generate(5, lib.NumModels()+1, workload.DefaultConfig(), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(topo, lib, work2, w); err == nil {
		t.Fatal("model count mismatch must error")
	}
	if _, err := New(nil, lib, work, w); err == nil {
		t.Fatal("nil topology must error")
	}
	badW := w
	badW.BandwidthHz = -1
	work3, err := workload.Generate(5, lib.NumModels(), workload.DefaultConfig(), rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(topo, lib, work3, badW); err == nil {
		t.Fatal("invalid wireless config must error")
	}
}
