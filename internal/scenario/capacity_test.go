package scenario

import (
	"fmt"
	"math"
	"testing"

	"trimcaching/internal/bitset"
	"trimcaching/internal/geom"
	"trimcaching/internal/modellib"
	"trimcaching/internal/rng"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

const capMB = 1 << 20

// capacityFixture builds an instance over a library with heterogeneous
// model sizes (one shared 100 MB block plus specific blocks of 50..300 MB),
// so a storage budget can block a strict subset of the models — the regime
// SetServerCapacity's per-model verdicts exist for.
func capacityFixture(t *testing.T) (*Instance, geom.Area, []geom.Point) {
	t.Helper()
	src := rng.New(77)
	blocks := []modellib.Block{{ID: 0, SizeBytes: 100 * capMB, Label: "shared"}}
	var models []modellib.Model
	for i := 0; i < 6; i++ {
		blocks = append(blocks, modellib.Block{
			ID:        i + 1,
			SizeBytes: int64(i+1) * 50 * capMB,
			Label:     fmt.Sprintf("spec%d", i),
		})
		models = append(models, modellib.Model{
			ID:     i,
			Name:   fmt.Sprintf("mix%d", i),
			Family: "mix",
			Blocks: []int{0, i + 1},
		})
	}
	lib, err := modellib.New(blocks, models)
	if err != nil {
		t.Fatal(err)
	}
	area, err := geom.NewArea(800)
	if err != nil {
		t.Fatal(err)
	}
	const K = 18
	servers := area.SamplePoints(src.Split("servers"), 5)
	users := area.SamplePoints(src.Split("users"), K)
	wcfg := wireless.DefaultConfig()
	wcfg.BackhaulBps = 1e9
	wl := workload.DefaultConfig()
	wl.DeadlineMinS, wl.DeadlineMaxS = 60, 180
	wl.InferMinS, wl.InferMaxS = 1, 5
	work, err := workload.Generate(K, lib.NumModels(), wl, src.Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.New(area, servers, users, wcfg.CoverageRadiusM)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := New(topo, lib, work, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	return ins, area, users
}

// capBitsFor returns a budget in bits that admits exactly the models of
// size at most maxMB megabytes.
func capBitsFor(maxMB int64) int64 { return 8 * maxMB * capMB }

// TestSetServerCapacityMatchesColdBuild shrinks servers through both
// regimes — a partial block (some models still fit) and a full block
// (nothing fits) — pinning the warm instance bit-identical to a cold build
// at the same capacities after every step, then restores capacity and pins
// the bit-exact round trip back to the pristine build.
func TestSetServerCapacityMatchesColdBuild(t *testing.T) {
	ins, _, users := capacityFixture(t)
	pristine, err := ins.Rebuild(users)
	if err != nil {
		t.Fatal(err)
	}
	I := ins.NumModels()

	steps := []struct {
		label string
		m     int
		bits  int64
	}{
		{"partial", 1, capBitsFor(260)}, // models 150..250 MB fit, 300..400 MB blocked
		{"full", 1, capBitsFor(120)},    // below the smallest model: nothing fits
		{"second", 3, capBitsFor(360)},  // a second server degrades independently
		{"regrow", 1, capBitsFor(310)},  // partial restore on the way back up
	}
	for _, st := range steps {
		delta, err := ins.SetServerCapacity(st.m, st.bits)
		if err != nil {
			t.Fatalf("%s: %v", st.label, err)
		}
		if delta.Gen != ins.Generation() {
			t.Fatalf("%s: delta gen %d, instance %d", st.label, delta.Gen, ins.Generation())
		}
		// The whole column of the resized server must be marked: the byte
		// budget is solver state even when no reachability bit toggled.
		for i := 0; i < I; i++ {
			if !delta.Pairs.Has(st.m*I + i) {
				t.Fatalf("%s: pair (%d,%d) not marked", st.label, st.m, i)
			}
		}
		cold, err := ins.Rebuild(users)
		if err != nil {
			t.Fatal(err)
		}
		sameInstanceState(t, st.label, ins, cold)
	}

	// Blocked pairs are unreachable and carry +Inf latency; unblocked pairs
	// on the degraded server keep finite service where the mask says so.
	if !ins.CapBlocked(1, 5) {
		t.Error("server 1 at 310 MB should block the 400 MB model")
	}
	if ins.CapBlocked(1, 2) {
		t.Error("server 1 at 310 MB should admit the 250 MB model")
	}
	for k := 0; k < ins.NumUsers(); k++ {
		if ins.ServerMask(k, 5).Has(1) {
			t.Fatalf("user %d still reaches blocked pair (1,5)", k)
		}
		if !math.IsInf(ins.LatencyS(1, k, 5), 1) {
			t.Fatalf("user %d has finite latency on blocked pair (1,5)", k)
		}
	}

	// Full restore is a bit-exact round trip, and the capacity state
	// disappears with it (the unconstrained fast path returns).
	for _, m := range []int{1, 3} {
		if _, err := ins.SetServerCapacity(m, -1); err != nil {
			t.Fatal(err)
		}
	}
	if got := ins.CapacityLimitedServers(); len(got) != 0 {
		t.Errorf("capacity-limited servers after full restore: %v", got)
	}
	if ins.ServerCapacityBits(1) != -1 {
		t.Errorf("server 1 budget %d after restore, want -1", ins.ServerCapacityBits(1))
	}
	sameInstanceState(t, "restored", ins, pristine)
}

// TestSetServerCapacityNoop pins the no-work paths: an equal-value call
// and a restore of a never-constrained server both return a delta at the
// current generation with no pairs, so an evaluator applies them as no-ops.
func TestSetServerCapacityNoop(t *testing.T) {
	ins, _, _ := capacityFixture(t)
	if d, err := ins.SetServerCapacity(2, -1); err != nil || d.Gen != ins.Generation() || d.Pairs.Any() {
		t.Fatalf("restore of unconstrained server: delta %+v, err %v", d, err)
	}
	gen := ins.Generation()
	if _, err := ins.SetServerCapacity(2, capBitsFor(260)); err != nil {
		t.Fatal(err)
	}
	if ins.Generation() != gen+1 {
		t.Fatalf("shrink advanced gen to %d, want %d", ins.Generation(), gen+1)
	}
	d, err := ins.SetServerCapacity(2, capBitsFor(260))
	if err != nil {
		t.Fatal(err)
	}
	if d.Gen != ins.Generation() || len(d.Users) != 0 || d.Pairs.Any() {
		t.Fatalf("equal-value call not a no-op: gen %d/%d, %d users, pairs %v",
			d.Gen, ins.Generation(), len(d.Users), d.Pairs.Any())
	}
	if _, err := ins.SetServerCapacity(5, 0); err == nil {
		t.Error("server out of range accepted")
	}
}

// TestSetServerCapacityDownInterplay pins the down-server short circuit: a
// capacity change on a down server moves no reachability bits (they are
// already dark), and recovery restores exactly the bits the reduced budget
// admits.
func TestSetServerCapacityDownInterplay(t *testing.T) {
	ins, _, users := capacityFixture(t)
	if _, err := ins.SetServersDown([]int{2}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.SetServerCapacity(2, capBitsFor(260)); err != nil {
		t.Fatal(err)
	}
	cold, err := ins.Rebuild(users)
	if err != nil {
		t.Fatal(err)
	}
	sameInstanceState(t, "down+shrink", ins, cold)
	if _, err := ins.SetServersDown([]int{2}, false); err != nil {
		t.Fatal(err)
	}
	cold, err = ins.Rebuild(users)
	if err != nil {
		t.Fatal(err)
	}
	sameInstanceState(t, "recovered-degraded", ins, cold)
	for k := 0; k < ins.NumUsers(); k++ {
		if ins.ServerMask(k, 5).Has(2) {
			t.Fatalf("user %d reaches (2,5) after recovery under a 260 MB budget", k)
		}
	}
}

// TestSetServerCapacityFusedKernel pins the fused measurement kernel's
// capacity-masked placement columns against the two-pass path (FadedReach
// masks the rows instead) on a degraded instance, and against the fused
// kernel on a cold build at the same capacity.
func TestSetServerCapacityFusedKernel(t *testing.T) {
	ins, _, users := capacityFixture(t)
	if _, err := ins.SetServerCapacity(0, capBitsFor(120)); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.SetServerCapacity(1, capBitsFor(260)); err != nil {
		t.Fatal(err)
	}
	cold, err := ins.Rebuild(users)
	if err != nil {
		t.Fatal(err)
	}

	sw := ins.ServerMaskWords()
	cols := make(fakeColumns, ins.NumModels()*sw)
	full := bitset.Set(make([]uint64, sw))
	full.SetAll(ins.NumServers())
	for _, i := range []int{0, 2, 4, 5} {
		copy(cols[i*sw:(i+1)*sw], full)
	}
	gains := SampleGains(ins.NumServers(), ins.NumUsers(), rng.New(9))
	got := make([]float64, 1)
	want := make([]float64, 1)
	if err := ins.FadedHitMass(gains, []ServerColumns{cols}, got, nil); err != nil {
		t.Fatal(err)
	}
	if err := cold.FadedHitMass(gains, []ServerColumns{cols}, want, nil); err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Errorf("fused hit mass on degraded instance %v, cold build %v", got[0], want[0])
	}

	// Two-pass reference: FadedReach's rows already exclude blocked pairs,
	// so the AND-scored sum must agree bit for bit with the fused kernel's
	// masked columns.
	reach, err := ins.FadedReach(gains, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dense float64
	for k := 0; k < ins.NumUsers(); k++ {
		for i := 0; i < ins.NumModels(); i++ {
			if bitset.Intersects(reach.ServerMask(k, i), bitset.Set(cols[i*sw:(i+1)*sw])) {
				dense += ins.Prob(k, i)
			}
		}
	}
	if got[0] != dense {
		t.Errorf("fused hit mass %v, two-pass reference %v", got[0], dense)
	}
	if got[0] <= 0 {
		t.Error("degenerate fixture: zero hit mass")
	}
}

// TestOutageCapacityInterleaving is the randomized robustness property:
// SetServersDown and SetServerCapacity interleaved with user movement, in
// randomized orders, pinning the instance bit-identical to a cold build of
// the same state after every step — and a full restore at the end is a
// bit-exact round trip back to a pristine build.
func TestOutageCapacityInterleaving(t *testing.T) {
	ins, area, users := capacityFixture(t)
	pristine, err := ins.Rebuild(users)
	if err != nil {
		t.Fatal(err)
	}
	M := ins.NumServers()
	pos := append([]geom.Point(nil), users...)
	src := rng.New(123)
	budgets := []int64{-1, capBitsFor(120), capBitsFor(260), capBitsFor(420)}

	steps := 40
	if testing.Short() {
		steps = 12
	}
	for step := 0; step < steps; step++ {
		switch src.Intn(3) {
		case 0: // toggle an outage
			m := src.Intn(M)
			if _, err := ins.SetServersDown([]int{m}, !ins.ServerDown(m)); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case 1: // resize a budget
			m := src.Intn(M)
			if _, err := ins.SetServerCapacity(m, budgets[src.Intn(len(budgets))]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		default: // walk a third of the users
			var moved []int
			var movedPos []geom.Point
			for k := src.Intn(3); k < len(pos); k += 3 {
				pos[k] = area.SamplePoint(src)
				moved = append(moved, k)
				movedPos = append(movedPos, pos[k])
			}
			if _, err := ins.UpdateUsers(moved, movedPos); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		cold, err := ins.Rebuild(pos)
		if err != nil {
			t.Fatal(err)
		}
		sameInstanceState(t, fmt.Sprintf("step %d", step), ins, cold)
	}

	// Full restore: every server back up and unconstrained, users back at
	// their original positions — bit-identical to the pristine build.
	if downList := ins.DownServers(); len(downList) > 0 {
		if _, err := ins.SetServersDown(downList, false); err != nil {
			t.Fatal(err)
		}
	}
	for m := 0; m < M; m++ {
		if _, err := ins.SetServerCapacity(m, -1); err != nil {
			t.Fatal(err)
		}
	}
	all := make([]int, len(pos))
	for k := range all {
		all[k] = k
	}
	if _, err := ins.UpdateUsers(all, users); err != nil {
		t.Fatal(err)
	}
	if got := ins.CapacityLimitedServers(); len(got) != 0 {
		t.Errorf("capacity-limited servers after restore: %v", got)
	}
	sameInstanceState(t, "round trip", ins, pristine)
}
