package scenario

import (
	"testing"

	"trimcaching/internal/rng"
)

// packedView is a raw ServerColumns implementation for kernel-level tests:
// the placement columns as a bare word slice.
type packedView struct{ cols []uint64 }

func (v packedView) PackedServerColumns() []uint64 { return v.cols }

// randomViews builds n random placement column sets for ins, with enough
// density that hits are not vacuous.
func randomViews(ins *Instance, n int, src *rng.Source) []ServerColumns {
	M, I, sw := ins.NumServers(), ins.NumModels(), ins.ServerMaskWords()
	views := make([]ServerColumns, n)
	for a := range views {
		cols := make([]uint64, I*sw)
		for i := 0; i < I; i++ {
			for m := 0; m < M; m++ {
				if src.Float64() < 0.3 {
					cols[i*sw+(m>>6)] |= 1 << uint(m&63)
				}
			}
		}
		views[a] = packedView{cols: cols}
	}
	return views
}

// TestFadedHitMassBlockMatchesPerRealization pins the kernel-level half of
// the realization-blocking contract: for any block partition of the
// realizations, FadedHitMassBlock must equal a per-realization loop of
// SampleGains + FadedHitMass exactly — same draws (realization r always
// consumes the full M×K gain matrix of its own source), same word ops,
// same float add order.
func TestFadedHitMassBlockMatchesPerRealization(t *testing.T) {
	for _, dims := range []struct{ m, k int }{{6, 15}, {70, 20}} {
		ins := buildInstance(t, dims.m, dims.k, 3, 40)
		views := randomViews(ins, 3, rng.New(41))
		P := len(views)
		const R = 7
		root := rng.New(42)

		// Reference: one realization at a time through the gains-based entry
		// point, each drawing its full gain matrix from its own source.
		gains := SampleGains(ins.NumServers(), ins.NumUsers(), rng.New(0))
		want := make([]float64, R*P)
		scratch := ins.MakeFadeScratch()
		for r := 0; r < R; r++ {
			SampleGainsInto(gains, root.SplitIndex("real", r))
			if err := ins.FadedHitMass(gains, views, want[r*P:(r+1)*P], scratch); err != nil {
				t.Fatal(err)
			}
		}

		for _, block := range []int{1, 2, 3, 7} {
			got := make([]float64, R*P)
			srcs := make([]*rng.Source, 0, block)
			for r0 := 0; r0 < R; r0 += block {
				n := block
				if r0+n > R {
					n = R - r0
				}
				srcs = srcs[:0]
				for j := 0; j < n; j++ {
					srcs = append(srcs, root.SplitIndex("real", r0+j))
				}
				if err := ins.FadedHitMassBlock(srcs, views, got[r0*P:(r0+n)*P], scratch); err != nil {
					t.Fatal(err)
				}
			}
			for x := range got {
				if got[x] != want[x] {
					t.Fatalf("M=%d block=%d: entry %d (r=%d view=%d): blocked %.17g != per-realization %.17g",
						dims.m, block, x, x/P, x%P, got[x], want[x])
				}
			}
		}
	}
}

// TestFadedHitMassBlockValidation covers the blocked entry point's error
// paths.
func TestFadedHitMassBlockValidation(t *testing.T) {
	ins := buildInstance(t, 4, 8, 2, 45)
	views := randomViews(ins, 2, rng.New(46))
	if err := ins.FadedHitMassBlock(nil, views, nil, nil); err == nil {
		t.Fatal("empty source list must error")
	}
	srcs := []*rng.Source{rng.New(47), rng.New(48)}
	if err := ins.FadedHitMassBlock(srcs, views, make([]float64, 3), nil); err == nil {
		t.Fatal("dst length mismatch must error")
	}
	if err := ins.FadedHitMassBlock(srcs, views, make([]float64, 2*len(views)), nil); err != nil {
		t.Fatalf("valid call failed: %v", err)
	}
}

// TestRankIndexBuiltAtConstruction pins the construction-time rank index:
// a fresh instance must expose sorted per-user rank rows without any
// in-place update or EnsureRankIndex call having run.
func TestRankIndexBuiltAtConstruction(t *testing.T) {
	ins := buildInstance(t, 6, 12, 3, 50)
	I := ins.NumModels()
	for k := 0; k < ins.NumUsers(); k++ {
		do, dv, ro, rv := ins.UserRankRows(k)
		if len(do) != I || len(dv) != I || len(ro) != I || len(rv) != I {
			t.Fatalf("user %d: rank rows %d/%d/%d/%d, want %d", k, len(do), len(dv), len(ro), len(rv), I)
		}
		for j := 1; j < I; j++ {
			if dv[j] < dv[j-1] || rv[j] < rv[j-1] {
				t.Fatalf("user %d: rank values not ascending at %d", k, j)
			}
		}
	}
}
