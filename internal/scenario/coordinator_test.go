package scenario

import (
	"testing"

	"trimcaching/internal/geom"
	"trimcaching/internal/libgen"
	"trimcaching/internal/rng"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

func coordinatorTestGen(t *testing.T) (*Instance, *Instance) {
	t.Helper()
	lib, err := libgen.GenerateLoRA(libgen.DefaultLoRAConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	cfg := GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: 8, NumUsers: 30, CoverageRadiusM: 275},
		Wireless: wireless.DefaultConfig(),
		Workload: workload.DefaultConfig(),
	}
	full, err := Generate(lib, cfg, rng.New(3).Split("instance"))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := GenerateCoordinator(lib, cfg, rng.New(3).Split("instance"))
	if err != nil {
		t.Fatal(err)
	}
	return full, coord
}

// TestGenerateCoordinatorDrawIdentity pins the coordinator generator's draw
// against Generate's: same seed, same sub-streams, bit-identical topology,
// workload, and threshold rank rows. The scale benchmark depends on this —
// a sharded run over a coordinator global instance must see the exact
// deployment and workload a full global instance would have produced.
func TestGenerateCoordinatorDrawIdentity(t *testing.T) {
	full, coord := coordinatorTestGen(t)
	if !coord.Coordinator() || full.Coordinator() {
		t.Fatalf("Coordinator() = %v/%v, want true for the coordinator only", coord.Coordinator(), full.Coordinator())
	}
	for m := 0; m < full.NumServers(); m++ {
		if coord.Topology().ServerPos(m) != full.Topology().ServerPos(m) {
			t.Fatalf("server %d position diverged", m)
		}
	}
	for k := 0; k < full.NumUsers(); k++ {
		if coord.Topology().UserPos(k) != full.Topology().UserPos(k) {
			t.Fatalf("user %d position diverged", k)
		}
		wantRow, gotRow := full.ProbRow(k), coord.ProbRow(k)
		for i := range wantRow {
			if gotRow[i] != wantRow[i] {
				t.Fatalf("user %d model %d prob %v, want %v", k, i, gotRow[i], wantRow[i])
			}
		}
		wd, wv, wr, wrv := full.UserRankRows(k)
		gd, gv, gr, grv := coord.UserRankRows(k)
		for j := range wd {
			if gd[j] != wd[j] || gv[j] != wv[j] {
				t.Fatalf("user %d direct rank row diverged at %d", k, j)
			}
		}
		for j := range wr {
			if gr[j] != wr[j] || grv[j] != wrv[j] {
				t.Fatalf("user %d relay rank row diverged at %d", k, j)
			}
		}
	}
}

// TestCoordinatorRejectsPositionState: coordinator instances carry no rate
// or reachability state, so the mutating position/workload entry points and
// shadowed generation must fail loudly rather than read absent tables.
func TestCoordinatorRejectsPositionState(t *testing.T) {
	_, coord := coordinatorTestGen(t)
	p := coord.Topology().UserPos(0)
	if _, err := coord.UpdateUsers([]int{0}, []geom.Point{p}); err == nil {
		t.Fatal("UpdateUsers on a coordinator must error")
	}
	if _, err := coord.ReviseUsers([]int{0}, nil, nil, nil); err == nil {
		t.Fatal("ReviseUsers on a coordinator must error")
	}

	lib, err := libgen.GenerateLoRA(libgen.DefaultLoRAConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	w.ShadowingStdDB = 4
	_, err = GenerateCoordinator(lib, GenConfig{
		Topology: topology.Config{AreaSideM: 500, NumServers: 3, NumUsers: 6, CoverageRadiusM: 275},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}, rng.New(5))
	if err == nil {
		t.Fatal("shadowed coordinator generation must error")
	}
}

// TestCoordinatorFootprint pins what the coordinator actually saves: no
// reachability words, no rate tables, while the rank index and workload
// match the full instance's. This is the memory-accounting seam the K=1M
// benchmark reports through.
func TestCoordinatorFootprint(t *testing.T) {
	full, coord := coordinatorTestGen(t)
	ff, cf := full.MemoryFootprint(), coord.MemoryFootprint()
	if cf.Reach != 0 {
		t.Fatalf("coordinator reach bytes = %d, want 0", cf.Reach)
	}
	if ff.Reach == 0 {
		t.Fatalf("full instance reach bytes = 0, want > 0")
	}
	if cf.Rates >= ff.Rates {
		t.Fatalf("coordinator rate bytes %d not below full instance's %d", cf.Rates, ff.Rates)
	}
	if cf.Rank != ff.Rank {
		t.Fatalf("rank bytes diverged: %d vs %d", cf.Rank, ff.Rank)
	}
	if cf.Total() <= 0 || cf.Total() >= ff.Total() {
		t.Fatalf("coordinator total %d, want in (0, %d)", cf.Total(), ff.Total())
	}
}
