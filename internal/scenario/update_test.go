package scenario

import (
	"runtime"
	"testing"

	"trimcaching/internal/geom"
	"trimcaching/internal/libgen"
	"trimcaching/internal/mobility"
	"trimcaching/internal/rng"
)

// walkInstance builds a paper-style instance plus a mobility population
// over its users.
func walkInstance(t *testing.T, servers, users int, seed uint64) (*Instance, *mobility.Population, *rng.Source) {
	t.Helper()
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(4), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed + 17)
	ins, err := Generate(lib, paperGenConfig(servers, users), src.Split("instance"))
	if err != nil {
		t.Fatal(err)
	}
	pop, err := mobility.NewPopulation(ins.Topology().Area(), ins.Topology().UserPositions(), src.Split("mobility"))
	if err != nil {
		t.Fatal(err)
	}
	return ins, pop, src.Split("walk")
}

// assertInstancesEqual compares every derived quantity of the incremental
// instance against a fresh rebuild, exactly.
func assertInstancesEqual(t *testing.T, got, want *Instance) {
	t.Helper()
	M, K, I := want.NumServers(), want.NumUsers(), want.NumModels()
	for m := 0; m < M; m++ {
		for k := 0; k < K; k++ {
			if got.AvgRateBps(m, k) != want.AvgRateBps(m, k) {
				t.Fatalf("rate(%d,%d) = %v, rebuild %v", m, k, got.AvgRateBps(m, k), want.AvgRateBps(m, k))
			}
		}
	}
	for k := 0; k < K; k++ {
		if got.bestRelay[k] != want.bestRelay[k] {
			t.Fatalf("relay(%d) = %v, rebuild %v", k, got.bestRelay[k], want.bestRelay[k])
		}
		gc, wc := got.Topology().ServersCovering(k), want.Topology().ServersCovering(k)
		if len(gc) != len(wc) {
			t.Fatalf("user %d covered by %d servers, rebuild %d", k, len(gc), len(wc))
		}
		for j := range gc {
			if gc[j] != wc[j] {
				t.Fatalf("user %d coverage differs at %d: %d vs %d", k, j, gc[j], wc[j])
			}
		}
	}
	for w, v := range want.reachSrv {
		if got.reachSrv[w] != v {
			t.Fatalf("reachSrv word %d = %#x, rebuild %#x", w, got.reachSrv[w], v)
		}
	}
	for w, v := range want.reachUsr {
		if got.reachUsr[w] != v {
			t.Fatalf("reachUsr word %d = %#x, rebuild %#x", w, got.reachUsr[w], v)
		}
	}
	_ = I
}

// TestUpdateUsersMatchesRebuild is the tentpole's golden equivalence: after
// each of several checkpoints of §VII-E mobility, the incrementally updated
// instance must be bit-identical — rates, relay rates, coverage, and both
// packed reachability orientations — to a fresh scenario build at the same
// positions.
func TestUpdateUsersMatchesRebuild(t *testing.T) {
	ins, pop, walk := walkInstance(t, 6, 12, 3)
	K := ins.NumUsers()
	all := make([]int, K)
	for k := range all {
		all[k] = k
	}
	for cp := 1; cp <= 4; cp++ {
		// One checkpoint = 120 five-second slots (10 minutes).
		for s := 0; s < 120; s++ {
			if err := pop.Step(5, walk); err != nil {
				t.Fatal(err)
			}
		}
		delta, err := ins.UpdateUsers(all, pop.Positions())
		if err != nil {
			t.Fatal(err)
		}
		if delta.Gen != cp {
			t.Fatalf("generation %d after %d updates", delta.Gen, cp)
		}
		if len(delta.Users) == 0 || !delta.Pairs.Any() {
			t.Fatalf("checkpoint %d: ten minutes of walking changed nothing (users=%d)", cp, len(delta.Users))
		}
		want, err := ins.Rebuild(pop.Positions())
		if err != nil {
			t.Fatal(err)
		}
		assertInstancesEqual(t, ins, want)
	}
}

// TestUpdateUsersParallelMatchesRebuild drives the parallel update path —
// enough dirty users that UpdateUsers shards them across workers — and
// pins it against the rebuild, checking worker parallelism changes
// nothing (flip application is deferred and order-independent).
func TestUpdateUsersParallelMatchesRebuild(t *testing.T) {
	// UpdateUsers clamps its worker count to GOMAXPROCS; raise it so the
	// sharded path actually runs even on single-CPU CI machines (the race
	// detector checks happens-before edges regardless of physical cores).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	ins, pop, walk := walkInstance(t, 8, 150, 29)
	all := make([]int, ins.NumUsers())
	for k := range all {
		all[k] = k
	}
	for cp := 1; cp <= 3; cp++ {
		for s := 0; s < 60; s++ {
			if err := pop.Step(5, walk); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ins.UpdateUsers(all, pop.Positions()); err != nil {
			t.Fatal(err)
		}
		want, err := ins.Rebuild(pop.Positions())
		if err != nil {
			t.Fatal(err)
		}
		assertInstancesEqual(t, ins, want)
	}
}

// TestUpdateUsersBucketedFlipsMatchRebuild forces the pair-bucketed flip
// application (the bulk path that keeps each batch's inverted-index writes
// inside one cache window) by shrinking the bucket knobs, and pins it
// against both a twin instance on the default direct path and a fresh
// rebuild: same reachability words and the same delta pair set, serial and
// parallel.
func TestUpdateUsersBucketedFlipsMatchRebuild(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	oldWin, oldMin := flipBucketWindowWords, flipBucketMinOps
	defer func() { flipBucketWindowWords, flipBucketMinOps = oldWin, oldMin }()

	for _, workers := range []int{1, 3} {
		flipBucketWindowWords, flipBucketMinOps = oldWin, oldMin
		ins, pop, walk := walkInstance(t, 8, 150, 41)
		twin, tpop, twalk := walkInstance(t, 8, 150, 41)
		ins.SetUpdateWorkers(workers)
		twin.SetUpdateWorkers(workers)
		all := make([]int, ins.NumUsers())
		for k := range all {
			all[k] = k
		}
		if shift := ins.flipBucketShift(); shift >= 0 {
			t.Fatalf("fixture too large: whole index already spans buckets (shift %d)", shift)
		}
		for cp := 1; cp <= 3; cp++ {
			for s := 0; s < 60; s++ {
				if err := pop.Step(5, walk); err != nil {
					t.Fatal(err)
				}
				if err := tpop.Step(5, twalk); err != nil {
					t.Fatal(err)
				}
			}
			// Bucketed on ins: tiny window (multiple buckets even at this
			// size) and no op floor. Direct on twin: default knobs keep the
			// fixture below both gates.
			flipBucketWindowWords, flipBucketMinOps = 4*ins.userWords, 1
			if ins.flipBucketShift() < 0 {
				t.Fatal("shrunken window must produce multiple buckets")
			}
			delta, err := ins.UpdateUsers(all, pop.Positions())
			if err != nil {
				t.Fatal(err)
			}
			flipBucketWindowWords, flipBucketMinOps = oldWin, oldMin
			tdelta, err := twin.UpdateUsers(all, tpop.Positions())
			if err != nil {
				t.Fatal(err)
			}
			if !delta.Pairs.Equal(tdelta.Pairs) {
				t.Fatalf("workers %d cp %d: bucketed delta pairs differ from direct path", workers, cp)
			}
			assertInstancesEqual(t, ins, twin)
			want, err := ins.Rebuild(pop.Positions())
			if err != nil {
				t.Fatal(err)
			}
			assertInstancesEqual(t, ins, want)
		}
	}
}

// TestUpdateUsersPartialMove moves a subset of users and checks both the
// equivalence and that the delta stays scoped: users that neither moved
// nor share a load-changed server must not be reported dirty.
func TestUpdateUsersPartialMove(t *testing.T) {
	ins, pop, walk := walkInstance(t, 5, 10, 7)
	for s := 0; s < 50; s++ {
		if err := pop.Step(5, walk); err != nil {
			t.Fatal(err)
		}
	}
	// Move only users 1, 4, 7 to the walked positions.
	moved := []int{1, 4, 7}
	newPos := pop.Positions()
	pos := make([]geom.Point, len(moved))
	final := ins.Topology().UserPositions()
	for j, k := range moved {
		pos[j] = newPos[k]
		final[k] = newPos[k]
	}
	delta, err := ins.UpdateUsers(moved, pos)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ins.Rebuild(final)
	if err != nil {
		t.Fatal(err)
	}
	assertInstancesEqual(t, ins, want)
	dirty := map[int]bool{}
	for _, k := range delta.Users {
		dirty[k] = true
	}
	for _, k := range moved {
		if !dirty[k] {
			t.Fatalf("moved user %d not in delta", k)
		}
	}
	if len(delta.Users) == ins.NumUsers() {
		t.Skip("every user shares a load-changed server; scoping not observable")
	}
}

// TestUpdateUsersNoMove checks the degenerate delta: re-asserting current
// positions must change nothing and report empty pairs.
func TestUpdateUsersNoMove(t *testing.T) {
	ins, _, _ := walkInstance(t, 4, 8, 11)
	posCopy := ins.Topology().UserPositions()
	all := make([]int, ins.NumUsers())
	for k := range all {
		all[k] = k
	}
	delta, err := ins.UpdateUsers(all, posCopy)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Pairs.Any() {
		t.Fatal("no-op move changed reachability pairs")
	}
	want, err := ins.Rebuild(posCopy)
	if err != nil {
		t.Fatal(err)
	}
	assertInstancesEqual(t, ins, want)
}

func TestUpdateUsersValidation(t *testing.T) {
	ins, _, _ := walkInstance(t, 4, 8, 13)
	p := ins.Topology().UserPos(0)
	if _, err := ins.UpdateUsers([]int{0, 1}, []geom.Point{p}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := ins.UpdateUsers([]int{99}, []geom.Point{p}); err == nil {
		t.Fatal("out-of-range user must error")
	}
	if _, err := ins.UpdateUsers([]int{0, 0}, []geom.Point{p, p}); err == nil {
		t.Fatal("duplicate user must error")
	}
}

// TestUpdateUsersFadingEquivalence pins the full measurement path: a faded
// reachability realization computed on an incrementally updated instance
// must match the rebuilt instance bit for bit.
func TestUpdateUsersFadingEquivalence(t *testing.T) {
	ins, pop, walk := walkInstance(t, 6, 12, 19)
	all := make([]int, ins.NumUsers())
	for k := range all {
		all[k] = k
	}
	for s := 0; s < 200; s++ {
		if err := pop.Step(5, walk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ins.UpdateUsers(all, pop.Positions()); err != nil {
		t.Fatal(err)
	}
	want, err := ins.Rebuild(pop.Positions())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(42)
	bufGot, bufWant := ins.MakeReachBuffer(), want.MakeReachBuffer()
	for r := 0; r < 5; r++ {
		gains := SampleGains(ins.NumServers(), ins.NumUsers(), src.SplitIndex("real", r))
		got, err := ins.FadedReach(gains, bufGot)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := want.FadedReach(gains, bufWant)
		if err != nil {
			t.Fatal(err)
		}
		for w, v := range ref.PackedServerMasks() {
			if got.PackedServerMasks()[w] != v {
				t.Fatalf("realization %d: faded reach word %d differs", r, w)
			}
		}
	}
}
