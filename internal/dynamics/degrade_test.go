package dynamics

import (
	"testing"

	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
)

// degradedConfig is testConfig with per-server capacity overrides applied
// both at the solver level (Capacities) and the instance level
// (SetServerCapacity) — the state a cold engine would be built over.
func degradedConfig(t *testing.T, ins *scenario.Instance, caps map[int]int64, mode Mode, workers int) Config {
	t.Helper()
	cfg := testConfig(ins, nil, mode, workers)
	cfg.Capacities = append([]int64(nil), cfg.Capacities...)
	for m, bytes := range caps {
		cfg.Capacities[m] = bytes
		if _, err := ins.SetServerCapacity(m, 8*bytes); err != nil {
			t.Fatal(err)
		}
	}
	return cfg
}

// TestDegradeRepairMatchesColdSolve is the partial-capacity counterpart of
// TestOutageRepairMatchesColdSolve, exercising both degradation regimes at
// once: server 0 shrinks below the large models (the instance blocks them
// outright) while server 2 shrinks to a budget every model fits alone (pure
// solver-level eviction pressure, reachability untouched). A warm Replace
// must reproduce an engine built cold at the reduced capacities, stay
// feasible under them, and a restore must reproduce the pristine solve.
func TestDegradeRepairMatchesColdSolve(t *testing.T) {
	shrunk := map[int]int64{0: 60 << 20, 2: 200 << 20}

	warm, err := NewEngine(testConfig(testInstance(t, 42), nil, Incremental, 1), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for m, bytes := range shrunk {
		if err := warm.SetServerCapacity(m, bytes); err != nil {
			t.Fatal(err)
		}
	}
	for a := range warm.cfg.Tracks {
		if _, err := warm.Replace(a, 1); err != nil {
			t.Fatal(err)
		}
	}

	cold, err := NewEngine(degradedConfig(t, testInstance(t, 42), shrunk, Incremental, 1), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	assertPlacementsEqual(t, "warm repair vs cold degraded solve", warm, cold)
	for a := range warm.cfg.Tracks {
		if err := warm.eval.CheckFeasible(warm.Placement(a), warm.caps); err != nil {
			t.Fatalf("track %d infeasible after degrade repair: %v", a, err)
		}
	}
	if got := warm.ServerCapacityBytes(0); got != 60<<20 {
		t.Fatalf("live capacity of server 0 is %d, want %d", got, 60<<20)
	}

	// Restore: capacities return to the configured values and the budget
	// state leaves the instance, so a forced replace matches a
	// never-degraded cold solve.
	for m := range shrunk {
		if err := warm.SetServerCapacity(m, -1); err != nil {
			t.Fatal(err)
		}
	}
	if got := warm.ServerCapacityBytes(0); got != 1<<30 {
		t.Fatalf("restored capacity of server 0 is %d, want %d", got, 1<<30)
	}
	for a := range warm.cfg.Tracks {
		if _, err := warm.Replace(a, 2); err != nil {
			t.Fatal(err)
		}
	}
	pristine, err := NewEngine(testConfig(testInstance(t, 42), nil, Incremental, 1), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	assertPlacementsEqual(t, "post-restore replace vs pristine solve", warm, pristine)
}

// TestRegionalFailureMatchesServerList pins the failure-domain selector and
// its correlated application: SetRegionDown must behave exactly like
// SetServersDown over ServersInRegion's list, and DegradeRegion like the
// per-server SetServerCapacity sequence.
func TestRegionalFailureMatchesServerList(t *testing.T) {
	byRegion, err := NewEngine(testConfig(testInstance(t, 11), nil, Incremental, 1), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	topo := byRegion.Instance().Topology()
	// A disk around server 0 wide enough to catch at least one neighbour.
	c := topo.ServerPos(0)
	region := geom.DiskRegion(c.X, c.Y, 500)
	servers, err := byRegion.ServersInRegion(region)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) == 0 || len(servers) == topo.NumServers() {
		t.Fatalf("degenerate failure domain %v over %d servers", servers, topo.NumServers())
	}
	for m := 0; m < topo.NumServers(); m++ {
		inList := false
		for _, s := range servers {
			inList = inList || s == m
		}
		if want := region.Contains(topo.ServerPos(m)); inList != want {
			t.Fatalf("server %d: in region %v, in list %v", m, want, inList)
		}
	}

	byList, err := NewEngine(testConfig(testInstance(t, 11), nil, Incremental, 1), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := byRegion.SetRegionDown(region, true); err != nil {
		t.Fatal(err)
	}
	if err := byList.SetServersDown(servers, true); err != nil {
		t.Fatal(err)
	}
	if err := byRegion.DegradeRegion(region, 80<<20); err != nil {
		t.Fatal(err)
	}
	for _, m := range servers {
		if err := byList.SetServerCapacity(m, 80<<20); err != nil {
			t.Fatal(err)
		}
	}
	for a := range byRegion.cfg.Tracks {
		if _, err := byRegion.Replace(a, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := byList.Replace(a, 1); err != nil {
			t.Fatal(err)
		}
	}
	assertPlacementsEqual(t, "regional ops vs server-list ops", byRegion, byList)

	if err := byRegion.SetRegionDown(geom.RectRegion(-1, -1, -0.5, -0.5), true); err != nil {
		t.Fatal(err) // empty failure domain is a no-op, not an error
	}
	if err := byRegion.SetRegionDown(geom.Region{Kind: "hex"}, true); err == nil {
		t.Fatal("invalid region accepted")
	}
}

// runDegradeTimeline drives a six-checkpoint timeline with a regional
// degradation at checkpoint 2 and a restore at checkpoint 4, forcing a
// replace on both edges — the dynamics-level shape of the gallery's
// degrade scenario.
func runDegradeTimeline(t *testing.T, mode Mode, workers int) *Result {
	t.Helper()
	eng, err := NewEngine(testConfig(testInstance(t, 7), nil, mode, workers), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	region := geom.RectRegion(0, 0, 600, 1000)
	res := &Result{Replacements: make([]int, len(eng.cfg.Tracks))}
	for cp := 1; cp <= eng.Checkpoints(); cp++ {
		if cp == 2 || cp == 4 {
			bytes := int64(70 << 20)
			if cp == 4 {
				bytes = -1
			}
			if err := eng.DegradeRegion(region, bytes); err != nil {
				t.Fatal(err)
			}
			for a := range eng.cfg.Tracks {
				if _, err := eng.Replace(a, cp); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := eng.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Refresh(); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Step(cp)
		if err != nil {
			t.Fatal(err)
		}
		res.Steps = append(res.Steps, Step{
			TimeMin:  st.TimeMin,
			HitRatio: append([]float64(nil), st.HitRatio...),
			Replaced: append([]bool(nil), st.Replaced...),
		})
	}
	for a := range res.Replacements {
		res.Replacements[a] = eng.Replacements(a)
	}
	return res
}

// TestDegradeTimelineModeAndWorkerAgnostic pins the degradation timeline
// bit-identical between Incremental and Rebuild refreshes (Rebuild replays
// the reduced budgets through Instance.Rebuild) and across worker counts.
func TestDegradeTimelineModeAndWorkerAgnostic(t *testing.T) {
	want := runDegradeTimeline(t, Incremental, 1)
	assertResultsEqual(t, runDegradeTimeline(t, Incremental, 4), want, "workers 4 vs 1")
	assertResultsEqual(t, runDegradeTimeline(t, Rebuild, 1), want, "rebuild vs incremental")
	if want.Replacements[0] < 2 {
		t.Fatalf("forced replaces not counted: %v", want.Replacements)
	}
}
