package dynamics

import (
	"testing"

	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
)

// TestExternalMobilityGuards pins the externally-driven engine's mode
// errors: Advance/Refresh refuse on an external engine, ApplyExternal
// refuses on an internal one.
func TestExternalMobilityGuards(t *testing.T) {
	cfg, err := NewSmokeScaleConfig(Incremental)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ExternalMobility = true
	ext, err := NewEngine(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ext.Advance(); err == nil {
		t.Error("Advance succeeded on an external engine")
	}
	if err := ext.Refresh(); err == nil {
		t.Error("Refresh succeeded on an external engine")
	}
	if _, err := ext.Run(); err == nil {
		t.Error("Run succeeded on an external engine")
	}
	if err := ext.ApplyExternal(nil, nil, nil, nil); err != nil {
		t.Errorf("empty ApplyExternal failed: %v", err)
	}

	cfg2, err := NewSmokeScaleConfig(Incremental)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewEngine(cfg2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.ApplyExternal(nil, nil, nil, nil); err == nil {
		t.Error("ApplyExternal succeeded on an internally-driven engine")
	}

	// Malformed movement input must error identically in both modes, with
	// no state mutated (the Incremental path delegates to
	// topology.MoveUsers' checks; the Rebuild path mirrors them).
	for _, mode := range []Mode{Incremental, Rebuild} {
		cfg, err := NewSmokeScaleConfig(mode)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ExternalMobility = true
		e, err := NewEngine(cfg, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		pos := e.Instance().Topology().UserPos(0)
		if err := e.ApplyExternal(nil, nil, []int{0}, nil); err == nil {
			t.Errorf("mode %d: length mismatch accepted", int(mode))
		}
		if err := e.ApplyExternal(nil, nil, []int{-1}, []geom.Point{pos}); err == nil {
			t.Errorf("mode %d: out-of-range user accepted", int(mode))
		}
		if err := e.ApplyExternal(nil, nil, []int{0, 0}, []geom.Point{pos, pos}); err == nil {
			t.Errorf("mode %d: duplicate move accepted", int(mode))
		}
		// A well-formed call must still succeed afterwards (no scratch
		// state leaked by the rejected calls).
		if err := e.ApplyExternal(nil, nil, []int{0}, []geom.Point{pos}); err != nil {
			t.Errorf("mode %d: valid call after rejections failed: %v", int(mode), err)
		}
	}
}

// TestProfileResolvesSubset checks the small-delta profiling path replays
// deterministically and degrades to ProfileResolves at stride <= 1.
func TestProfileResolvesSubset(t *testing.T) {
	run := func(stride int, rebuild bool) int {
		cfg, err := NewSmokeScaleConfig(Incremental)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(cfg, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.ProfileResolvesSubset(2, stride, rebuild)
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Fatalf("non-positive resolve time %v", d)
		}
		return e.Placement(0).CountPlacements()
	}
	// Identical checkpoint sequences must land on identical placements
	// whether or not the heap is rebuilt per solve.
	if a, b := run(100, false), run(100, true); a != b {
		t.Errorf("small-delta placements diverge with heap rebuild: %d vs %d", a, b)
	}
	if a, b := run(1, false), run(0, false); a != b {
		t.Errorf("stride<=1 fallback diverges: %d vs %d", a, b)
	}
}
