// Package dynamics is the time axis of the reproduction: one engine for
// the "walk users → refresh the instance → measure → maybe re-place"
// control loop that §IV sketches and §VII-E measures. The replacement
// study (internal/replacement), the Fig. 7 experiment, and the mobility
// examples all run on this engine instead of hand-rolling the loop.
//
// The engine runs in one of two modes. Rebuild is the historical path: a
// fresh scenario.Instance and placement.Evaluator every checkpoint, with
// placement re-solved from scratch — O(M·K·I) per checkpoint before the
// solve. Incremental threads deltas through every layer instead: the
// topology moves only the walked users, the instance recomputes only the
// affected rate and reachability rows (scenario.Instance.UpdateUsers), the
// evaluator keeps its marginal-gain memo minus the invalidated pairs, and
// algorithms that support warm starts repair their previous placement.
// Both modes produce bit-identical timelines — incremental updates are
// pinned against Rebuild, and warm-started solves against cold ones — so
// Incremental is the default and Rebuild survives as the reference and
// benchmark baseline.
//
// Orthogonal to the mode, the Measurement seam selects how checkpoint
// quality is scored: FadingMeasurement (the default) averages the analytic
// hit ratio over Rayleigh realizations, while TraceMeasurement synthesizes
// a per-checkpoint request window and serves it through the event-driven
// simulator, so triggers (see TraceTrigger) react to measured request
// traffic rather than Monte-Carlo estimates. Every combination is
// deterministic in (config, seed) and bit-identical for any worker count.
package dynamics

import (
	"fmt"
	"time"

	"trimcaching/internal/bitset"
	"trimcaching/internal/geom"
	"trimcaching/internal/memprof"
	"trimcaching/internal/mobility"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
)

// Mode selects how the engine refreshes the instance at each checkpoint.
type Mode int

const (
	// Incremental applies delta updates in place and warm-starts placement
	// repair. The engine takes ownership of the configured instance.
	Incremental Mode = iota
	// Rebuild constructs a fresh instance and evaluator every checkpoint
	// and re-solves placement from scratch.
	Rebuild
)

// Trigger decides, per checkpoint, whether a track re-places its models.
// Stateful triggers may additionally implement Resetter; the engine calls
// Reset right after the track is re-placed so history from before the
// replacement cannot re-fire the trigger.
type Trigger interface {
	// Name identifies the policy in logs and tables.
	Name() string
	// Fire reports whether to re-place at this checkpoint given the
	// measured hit ratio and the baseline measured right after the track's
	// last placement.
	Fire(checkpoint int, hitRatio, baseline float64) bool
}

// Resetter is the optional state-clearing hook of a stateful Trigger (see
// TraceTrigger).
type Resetter interface {
	Reset()
}

// NeverTrigger freezes the initial placement (the Fig. 7 protocol).
type NeverTrigger struct{}

// Name implements Trigger.
func (NeverTrigger) Name() string { return "never" }

// Fire implements Trigger.
func (NeverTrigger) Fire(int, float64, float64) bool { return false }

// PeriodicTrigger re-places every Every checkpoints regardless of
// performance.
type PeriodicTrigger struct {
	Every int
}

// Name implements Trigger.
func (t PeriodicTrigger) Name() string { return fmt.Sprintf("every %d checkpoints", t.Every) }

// Fire implements Trigger.
func (t PeriodicTrigger) Fire(checkpoint int, _, _ float64) bool {
	return t.Every > 0 && checkpoint%t.Every == 0
}

// ThresholdTrigger re-places when the measured hit ratio degrades more
// than Degradation below the post-placement baseline — the paper's
// "re-initiate when performance degrades to a certain threshold" policy
// (§IV). Degradation ≥ 1 never fires.
type ThresholdTrigger struct {
	Degradation float64
}

// Name implements Trigger.
func (t ThresholdTrigger) Name() string { return fmt.Sprintf("%.0f%% degradation", 100*t.Degradation) }

// Fire implements Trigger.
func (t ThresholdTrigger) Fire(_ int, hitRatio, baseline float64) bool {
	return hitRatio < (1-t.Degradation)*baseline
}

// Track is one placement algorithm living on the timeline with its own
// replacement policy. A nil Trigger defaults to NeverTrigger.
type Track struct {
	Algorithm placement.Algorithm
	Trigger   Trigger
}

// Config parameterizes one timeline run.
type Config struct {
	// Instance is the t = 0 problem instance. In Incremental mode the
	// engine mutates it in place; pass a private instance (or rebuild one
	// with Instance.Rebuild) when the caller needs the original afterwards.
	Instance *scenario.Instance
	// Capacities is the per-server storage budget.
	Capacities []int64
	// BaselineCapacities, when set, is the configured (pristine) per-server
	// budget SetServerCapacity restores to; nil means Capacities. Callers
	// rebuilding an engine mid-degradation (the shard layer's grow path)
	// pass the already-degraded budgets as Capacities — so the t = 0 solve
	// respects them — and the pristine ones here, so a later restore does
	// not resurrect the degraded value as the configured one.
	BaselineCapacities []int64
	// Tracks are the algorithms evaluated side by side on identical
	// mobility and fading draws.
	Tracks []Track
	// DurationMin and CheckpointMin shape the timeline (§VII-E: 120 / 10).
	DurationMin   int
	CheckpointMin int
	// SlotS is the mobility slot length (§VII-E: 5 s).
	SlotS float64
	// Realizations is the fading realizations per checkpoint measurement
	// (used by the default FadingMeasurement; ignored when Measurement is
	// set).
	Realizations int
	// Workers bounds the fading evaluation parallelism; 0 means
	// GOMAXPROCS. Results are bit-identical for any worker count.
	Workers int
	// Mode selects Incremental (default) or Rebuild.
	Mode Mode
	// Measurement selects how checkpoint quality is measured. Nil selects
	// the Monte-Carlo track, &FadingMeasurement{Realizations, Workers};
	// &TraceMeasurement{...} selects the trace-driven track, where each
	// checkpoint serves a synthesized request window instead. Measurements
	// are stateful (they keep reusable sessions): pass a fresh value per
	// engine.
	Measurement Measurement
	// ExternalMobility hands user movement to the caller: the engine builds
	// no mobility population, Advance and Refresh error, and the caller
	// drives the instance through ApplyExternal (movement plus workload-row
	// revisions) and Step. This is how the shard layer runs one engine per
	// cell under a single global walk.
	ExternalMobility bool
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	if c.Instance == nil {
		return fmt.Errorf("dynamics: instance is required")
	}
	if len(c.Capacities) != c.Instance.NumServers() {
		return fmt.Errorf("dynamics: %d capacities for %d servers", len(c.Capacities), c.Instance.NumServers())
	}
	if c.BaselineCapacities != nil && len(c.BaselineCapacities) != len(c.Capacities) {
		return fmt.Errorf("dynamics: %d baseline capacities for %d servers", len(c.BaselineCapacities), len(c.Capacities))
	}
	if len(c.Tracks) == 0 {
		return fmt.Errorf("dynamics: at least one track is required")
	}
	for a, tr := range c.Tracks {
		if tr.Algorithm == nil {
			return fmt.Errorf("dynamics: track %d has no algorithm", a)
		}
	}
	if c.DurationMin <= 0 || c.CheckpointMin <= 0 || c.DurationMin < c.CheckpointMin {
		return fmt.Errorf("dynamics: bad timeline %d/%d min", c.DurationMin, c.CheckpointMin)
	}
	if c.SlotS <= 0 {
		return fmt.Errorf("dynamics: SlotS must be positive")
	}
	if c.Measurement == nil && c.Realizations <= 0 {
		return fmt.Errorf("dynamics: Realizations must be positive")
	}
	if c.Mode != Incremental && c.Mode != Rebuild {
		return fmt.Errorf("dynamics: unknown mode %d", int(c.Mode))
	}
	return nil
}

// Step is one checkpoint of the timeline.
type Step struct {
	// TimeMin is minutes since the start.
	TimeMin float64 `json:"timeMin"`
	// HitRatio is the fading-averaged hit ratio per track.
	HitRatio []float64 `json:"hitRatio"`
	// Replaced reports, per track, whether its trigger fired here.
	Replaced []bool `json:"replaced"`
}

// Result is a completed timeline.
type Result struct {
	// Steps holds one entry per checkpoint, including t = 0.
	Steps []Step
	// Replacements counts each track's re-placements (excluding the
	// initial placement).
	Replacements []int
}

// Engine is a running timeline. Callers either drive the whole loop with
// Run or step it manually (Advance → Refresh → Measure/Replace), which is
// how the benchmarks time each phase in isolation.
type Engine struct {
	cfg     Config
	src     *rng.Source
	walkSrc *rng.Source

	ins       *scenario.Instance
	eval      *placement.Evaluator
	measure   Measurement
	traceMeas *TraceMeasurement // non-nil when measure is the trace track
	pop       *mobility.Population

	allUsers  []int
	positions []geom.Point
	movedSeen []bool // rebuild-path duplicate-move check scratch

	placements []*placement.Placement
	baselines  []float64
	accPairs   []bitset.Set // per track: reach pairs changed since its last solve

	caps  []int64 // live per-server capacities (SetServerCapacity mutates)
	caps0 []int64 // pristine configured capacities (restore target)

	measureSrc   rng.Source // per-checkpoint stream, reseeded in place
	stepHit      []float64  // reused Step buffers; valid until the next Step
	stepReplaced []bool

	slotsPerCheckpoint int
	checkpoints        int // excluding t = 0
	replacements       []int
}

// NewEngine validates the configuration, wires the mobility population,
// and computes the initial placements and their fading baselines (the
// t = 0 step). The random source fuels three independent streams —
// "mobility" (walker initialization), "walk" (per-slot dynamics), and
// "fading"/"refade" (per-checkpoint measurement) — so timelines are
// deterministic in (config, seed) and independent of Workers.
func NewEngine(cfg Config, src *rng.Source) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ins := cfg.Instance
	var pop *mobility.Population
	if !cfg.ExternalMobility {
		var err error
		pop, err = mobility.NewPopulation(ins.Topology().Area(), ins.Topology().UserPositions(), src.Split("mobility"))
		if err != nil {
			return nil, fmt.Errorf("dynamics: %w", err)
		}
	}
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		return nil, fmt.Errorf("dynamics: %w", err)
	}
	// The Workers pin governs every pool the engine drives, including the
	// instance's parallel delta-update phase — a Workers=1 engine runs
	// genuinely single-goroutine checkpoints.
	ins.SetUpdateWorkers(cfg.Workers)
	K := ins.NumUsers()
	measure := cfg.Measurement
	if measure == nil {
		measure = &FadingMeasurement{Realizations: cfg.Realizations, Workers: cfg.Workers}
	}
	e := &Engine{
		cfg:                cfg,
		src:                src,
		walkSrc:            src.Split("walk"),
		ins:                ins,
		eval:               eval,
		measure:            measure,
		pop:                pop,
		allUsers:           make([]int, K),
		positions:          make([]geom.Point, K),
		placements:         make([]*placement.Placement, len(cfg.Tracks)),
		baselines:          make([]float64, len(cfg.Tracks)),
		accPairs:           make([]bitset.Set, len(cfg.Tracks)),
		caps:               append([]int64(nil), cfg.Capacities...),
		caps0:              append([]int64(nil), caps0(cfg)...),
		stepHit:            make([]float64, len(cfg.Tracks)),
		stepReplaced:       make([]bool, len(cfg.Tracks)),
		slotsPerCheckpoint: int(float64(cfg.CheckpointMin*60)/cfg.SlotS + 0.5),
		checkpoints:        cfg.DurationMin / cfg.CheckpointMin,
		replacements:       make([]int, len(cfg.Tracks)),
	}
	e.traceMeas, _ = measure.(*TraceMeasurement)
	for k := range e.allUsers {
		e.allUsers[k] = k
	}
	if cfg.ExternalMobility {
		// Externally driven rebuilds need the authoritative position vector
		// the caller's moves accumulate into.
		copy(e.positions, ins.Topology().UserPositions())
	}
	for a, tr := range cfg.Tracks {
		e.accPairs[a] = bitset.New(ins.NumServers() * ins.NumModels())
		p, err := tr.Algorithm.Place(eval, e.caps)
		if err != nil {
			return nil, fmt.Errorf("dynamics: %s: %w", tr.Algorithm.Name(), err)
		}
		e.placements[a] = p
	}
	base, err := e.Measure(0)
	if err != nil {
		return nil, err
	}
	copy(e.baselines, base)
	return e, nil
}

// caps0 returns the configured capacity vector restores target.
func caps0(cfg Config) []int64 {
	if cfg.BaselineCapacities != nil {
		return cfg.BaselineCapacities
	}
	return cfg.Capacities
}

// Instance returns the engine's current instance (the configured one in
// Incremental mode, the latest rebuild otherwise).
func (e *Engine) Instance() *scenario.Instance { return e.ins }

// Placement returns track a's current placement.
func (e *Engine) Placement(a int) *placement.Placement { return e.placements[a] }

// Baseline returns track a's post-placement baseline hit ratio.
func (e *Engine) Baseline(a int) float64 { return e.baselines[a] }

// Checkpoints returns the number of checkpoints after t = 0.
func (e *Engine) Checkpoints() int { return e.checkpoints }

// Advance walks every user through one checkpoint worth of mobility slots.
func (e *Engine) Advance() error {
	if e.pop == nil {
		return fmt.Errorf("dynamics: engine is externally driven (ExternalMobility); use ApplyExternal")
	}
	for s := 0; s < e.slotsPerCheckpoint; s++ {
		if err := e.pop.Step(e.cfg.SlotS, e.walkSrc); err != nil {
			return fmt.Errorf("dynamics: %w", err)
		}
	}
	return nil
}

// Refresh brings the instance (and evaluator) up to date with the walkers'
// current positions: a delta update in Incremental mode, a fresh instance
// in Rebuild mode.
func (e *Engine) Refresh() error {
	if e.pop == nil {
		return fmt.Errorf("dynamics: engine is externally driven (ExternalMobility); use ApplyExternal")
	}
	e.pop.PositionsInto(e.positions)
	return e.refresh(nil, nil, e.allUsers, e.positions)
}

// ApplyExternal is the externally-driven engine's Refresh: the caller
// reports which users' workload rows it swapped (revised: all three rows
// via workload.SetUserRows; massOnly: the probability row alone via
// SetUserProbRow — both before this call) and which users moved to where.
// In Incremental mode this becomes one scenario.Instance.ReviseUsers
// delta; in Rebuild mode the tracked position vector is patched and a
// fresh instance built over the live workload — the same rebuild-vs-delta
// reference pair the internal loop has.
func (e *Engine) ApplyExternal(revised, massOnly []int, moved []int, pos []geom.Point) error {
	if !e.cfg.ExternalMobility {
		return fmt.Errorf("dynamics: engine owns its mobility; ApplyExternal requires ExternalMobility")
	}
	return e.refresh(revised, massOnly, moved, pos)
}

// refresh is the shared instance-update core of Refresh and ApplyExternal.
func (e *Engine) refresh(revised, massOnly []int, moved []int, pos []geom.Point) error {
	if e.cfg.Mode == Rebuild {
		// Mirror the Incremental path's input contract (topology.MoveUsers'
		// length/range/duplicate checks) before mutating the tracked
		// positions, so malformed input errors identically in both modes.
		if len(moved) != len(pos) {
			return fmt.Errorf("dynamics: %d moved users with %d positions", len(moved), len(pos))
		}
		if e.movedSeen == nil {
			e.movedSeen = make([]bool, len(e.positions))
		}
		for _, k := range moved {
			if k < 0 || k >= len(e.positions) {
				return fmt.Errorf("dynamics: moved user %d out of range [0,%d)", k, len(e.positions))
			}
		}
		dup := -1
		for _, k := range moved {
			if e.movedSeen[k] {
				dup = k
				break
			}
			e.movedSeen[k] = true
		}
		for _, k := range moved {
			e.movedSeen[k] = false
		}
		if dup >= 0 {
			return fmt.Errorf("dynamics: user %d moved twice", dup)
		}
		// Element-wise on purpose: moved is in caller batch order, not slot
		// order (the internal loop's all-users refresh passes the identity,
		// where this degenerates to self-assignment).
		for j, k := range moved {
			e.positions[k] = pos[j]
		}
		ins, err := e.ins.Rebuild(e.positions)
		if err != nil {
			return fmt.Errorf("dynamics: %w", err)
		}
		eval, err := placement.NewEvaluator(ins)
		if err != nil {
			return fmt.Errorf("dynamics: %w", err)
		}
		e.ins, e.eval = ins, eval
		return nil
	}
	delta, err := e.ins.ReviseUsers(revised, massOnly, moved, pos)
	if err != nil {
		return fmt.Errorf("dynamics: %w", err)
	}
	if err := e.eval.ApplyDelta(delta); err != nil {
		return fmt.Errorf("dynamics: %w", err)
	}
	for a := range e.accPairs {
		e.accPairs[a].Or(delta.Pairs)
	}
	return nil
}

// Measure scores every track's current placement on checkpoint cp's
// measurement stream (paired across tracks): fading realizations on the
// Monte-Carlo track, a synthesized request window on the trace track. The
// result may alias measurement-owned scratch: it is valid until the next
// Measure or Replace call, and callers that keep the values copy them.
func (e *Engine) Measure(cp int) ([]float64, error) {
	hits, err := e.measure.Measure(e.eval, e.placements, e.src.SplitIndexInto(&e.measureSrc, "fading", cp))
	if err != nil {
		return nil, fmt.Errorf("dynamics: %w", err)
	}
	return hits, nil
}

// resolve computes track a's placement on the current instance: warm-start
// repair from its previous placement and accumulated delta when the
// algorithm supports it and the engine is incremental, a cold solve
// otherwise.
func (e *Engine) resolve(a int) (*placement.Placement, error) {
	tr := e.cfg.Tracks[a]
	if ws, ok := tr.Algorithm.(placement.WarmStartAlgorithm); ok && e.cfg.Mode == Incremental {
		d := &scenario.Delta{Gen: e.ins.Generation(), Pairs: e.accPairs[a]}
		return ws.Repair(e.eval, e.caps, e.placements[a], d)
	}
	return tr.Algorithm.Place(e.eval, e.caps)
}

// Replace re-places track a on the current instance — warm-start repair
// when the algorithm supports it and the engine is incremental — and
// re-measures its baseline on checkpoint cp's replacement stream.
func (e *Engine) Replace(a, cp int) (float64, error) {
	p, err := e.resolve(a)
	if err != nil {
		return 0, fmt.Errorf("dynamics: %s: %w", e.cfg.Tracks[a].Algorithm.Name(), err)
	}
	e.accPairs[a].Zero()
	e.placements[a] = p
	e.replacements[a]++
	if e.traceMeas != nil {
		// The re-baseline is a single-placement Measure; recording it would
		// clobber track 0's window stats with track a's refade window.
		e.traceMeas.noRecord = true
		defer func() { e.traceMeas.noRecord = false }()
	}
	base, err := e.measure.Measure(e.eval, e.placements[a:a+1], e.src.SplitIndexInto(&e.measureSrc, "refade", cp))
	if err != nil {
		return 0, fmt.Errorf("dynamics: %w", err)
	}
	e.baselines[a] = base[0]
	return base[0], nil
}

// SetServersDown takes servers out of (or back into) service on the live
// instance and threads the resulting delta through the evaluator and every
// track's accumulated repair set, exactly like a refresh. It works in both
// modes: the Incremental instance keeps the down set directly, and
// scenario.Instance.Rebuild re-applies it on every Rebuild-mode refresh, so
// the Incremental == Rebuild pin holds through outages. The caller decides
// when tracks re-place (typically Replace right after, on both the outage
// and the recovery — a degradation trigger alone would never fire on
// recovery, since hit ratios only improve when servers return).
func (e *Engine) SetServersDown(servers []int, down bool) error {
	delta, err := e.ins.SetServersDown(servers, down)
	if err != nil {
		return fmt.Errorf("dynamics: %w", err)
	}
	if err := e.eval.ApplyDelta(delta); err != nil {
		return fmt.Errorf("dynamics: %w", err)
	}
	for a := range e.accPairs {
		e.accPairs[a].Or(delta.Pairs)
	}
	return nil
}

// SetServerCapacity degrades server m to the given storage budget in bytes
// (negative restores the configured capacity) and threads the resulting
// delta through the evaluator and every track's accumulated repair set,
// exactly like SetServersDown. The live capacity vector feeds every
// subsequent solve — warm repairs evict whatever no longer fits — and
// scenario.Instance.Rebuild replays the instance-level budget on every
// Rebuild-mode refresh, so the Incremental == Rebuild pin holds through
// degradations. The caller decides when tracks re-place (typically Replace
// right after, on both the shrink and the restore).
func (e *Engine) SetServerCapacity(m int, bytes int64) error {
	if m < 0 || m >= len(e.caps) {
		return fmt.Errorf("dynamics: server %d out of range [0,%d)", m, len(e.caps))
	}
	budgetBits := int64(-1)
	if bytes < 0 {
		e.caps[m] = e.caps0[m]
	} else {
		e.caps[m] = bytes
		budgetBits = 8 * bytes
	}
	delta, err := e.ins.SetServerCapacity(m, budgetBits)
	if err != nil {
		return fmt.Errorf("dynamics: %w", err)
	}
	if err := e.eval.ApplyDelta(delta); err != nil {
		return fmt.Errorf("dynamics: %w", err)
	}
	for a := range e.accPairs {
		e.accPairs[a].Or(delta.Pairs)
	}
	return nil
}

// ServerCapacityBytes returns server m's live storage capacity in bytes —
// the configured value unless a SetServerCapacity degradation is active.
func (e *Engine) ServerCapacityBytes(m int) int64 { return e.caps[m] }

// ServersInRegion returns the ascending list of servers whose position the
// region contains — the failure domain of a correlated regional event.
func (e *Engine) ServersInRegion(r geom.Region) ([]int, error) {
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("dynamics: %w", err)
	}
	topo := e.ins.Topology()
	var list []int
	for m := 0; m < topo.NumServers(); m++ {
		if r.Contains(topo.ServerPos(m)) {
			list = append(list, m)
		}
	}
	return list, nil
}

// SetRegionDown takes every server in the region out of (or back into)
// service in one correlated event — a single delta, a single evaluator
// application. An empty region is a no-op.
func (e *Engine) SetRegionDown(r geom.Region, down bool) error {
	servers, err := e.ServersInRegion(r)
	if err != nil {
		return err
	}
	if len(servers) == 0 {
		return nil
	}
	return e.SetServersDown(servers, down)
}

// DegradeRegion applies one storage budget to every server in the region
// (negative restores each server's configured capacity) — the partial
// counterpart of SetRegionDown, for failure domains that lose storage
// rather than power.
func (e *Engine) DegradeRegion(r geom.Region, bytes int64) error {
	servers, err := e.ServersInRegion(r)
	if err != nil {
		return err
	}
	for _, m := range servers {
		if err := e.SetServerCapacity(m, bytes); err != nil {
			return err
		}
	}
	return nil
}

// ProfileCheckpoints advances n checkpoints and returns the wall time
// spent refreshing the instance and — when forceReplace is set — re-solving
// every track's placement at every checkpoint. The fading measurement is
// excluded on purpose: it is identical in both modes, while refresh +
// re-solve is the cost the incremental engine exists to cut — the
// tentpole's "checkpoint cost". Used by the dynamics benchmarks and
// cmd/benchdyn; forceReplace models the worst-case trigger cadence, while
// the paper's degradation-threshold protocol replaces only exceptionally.
func (e *Engine) ProfileCheckpoints(n int, forceReplace bool) (refresh, repair time.Duration, err error) {
	for cp := 0; cp < n; cp++ {
		if err := e.Advance(); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if err := e.Refresh(); err != nil {
			return 0, 0, err
		}
		refresh += time.Since(start)
		if !forceReplace {
			continue
		}
		for a := range e.cfg.Tracks {
			start = time.Now()
			p, err := e.resolve(a)
			if err != nil {
				return 0, 0, fmt.Errorf("dynamics: %s: %w", e.cfg.Tracks[a].Algorithm.Name(), err)
			}
			repair += time.Since(start)
			e.accPairs[a].Zero()
			e.placements[a] = p
		}
	}
	return refresh, repair, nil
}

// ProfileResolves advances n checkpoints and returns the wall time of a
// forced placement re-solve of every track at each one (refresh excluded).
// When rebuildHeap is set, the evaluator's persistent commit heap is
// invalidated before every solve, so the solver reconstructs its starting
// heap from all M·I pairs — the pre-persistence behavior — which isolates
// the heap carry-over's contribution to the warm re-solve
// (cmd/benchdyn's resolve section). Placements are identical either way;
// only the time differs.
func (e *Engine) ProfileResolves(n int, rebuildHeap bool) (time.Duration, error) {
	var total time.Duration
	for cp := 0; cp < n; cp++ {
		if err := e.Advance(); err != nil {
			return 0, err
		}
		if err := e.Refresh(); err != nil {
			return 0, err
		}
		for a := range e.cfg.Tracks {
			if rebuildHeap {
				e.eval.InvalidateHeap()
			}
			start := time.Now()
			p, err := e.resolve(a)
			if err != nil {
				return 0, fmt.Errorf("dynamics: %s: %w", e.cfg.Tracks[a].Algorithm.Name(), err)
			}
			total += time.Since(start)
			e.accPairs[a].Zero()
			e.placements[a] = p
		}
	}
	return total, nil
}

// ProfileResolvesSubset is ProfileResolves on a small-delta workload: per
// checkpoint every user walks, but only every strideth user's move is
// applied to the instance — the update pattern per-cell sharding produces,
// where one cell absorbs only the users that moved within or across its
// boundary. The accumulated delta per re-solve is ~K/stride users instead
// of K, so this isolates how the persistent commit heap's carry-over pays
// off when most gains survive a checkpoint. stride ≤ 1 degenerates to
// ProfileResolves.
func (e *Engine) ProfileResolvesSubset(n, stride int, rebuildHeap bool) (time.Duration, error) {
	if stride <= 1 {
		return e.ProfileResolves(n, rebuildHeap)
	}
	var total time.Duration
	var subset []int
	var subsetPos []geom.Point
	for cp := 0; cp < n; cp++ {
		if err := e.Advance(); err != nil {
			return 0, err
		}
		e.pop.PositionsInto(e.positions)
		subset = subset[:0]
		subsetPos = subsetPos[:0]
		for k := cp % stride; k < len(e.positions); k += stride {
			subset = append(subset, k)
			subsetPos = append(subsetPos, e.positions[k])
		}
		if err := e.refresh(nil, nil, subset, subsetPos); err != nil {
			return 0, err
		}
		for a := range e.cfg.Tracks {
			if rebuildHeap {
				e.eval.InvalidateHeap()
			}
			start := time.Now()
			p, err := e.resolve(a)
			if err != nil {
				return 0, fmt.Errorf("dynamics: %s: %w", e.cfg.Tracks[a].Algorithm.Name(), err)
			}
			total += time.Since(start)
			e.accPairs[a].Zero()
			e.placements[a] = p
		}
	}
	return total, nil
}

// Run drives the whole timeline: measure at t = 0, then per checkpoint
// walk, refresh, measure, and fire each track's trigger.
func (e *Engine) Run() (*Result, error) {
	res := &Result{
		Steps:        make([]Step, 0, e.checkpoints+1),
		Replacements: e.replacements,
	}
	first := Step{TimeMin: 0, HitRatio: make([]float64, len(e.cfg.Tracks)), Replaced: make([]bool, len(e.cfg.Tracks))}
	copy(first.HitRatio, e.baselines)
	res.Steps = append(res.Steps, first)

	for cp := 1; cp <= e.checkpoints; cp++ {
		if err := e.Advance(); err != nil {
			return nil, err
		}
		if err := e.Refresh(); err != nil {
			return nil, err
		}
		step, err := e.Step(cp)
		if err != nil {
			return nil, err
		}
		// Step's slices are engine-owned and reused; the result keeps its
		// own copies.
		kept := Step{
			TimeMin:  step.TimeMin,
			HitRatio: append([]float64(nil), step.HitRatio...),
			Replaced: append([]bool(nil), step.Replaced...),
		}
		res.Steps = append(res.Steps, kept)
	}
	return res, nil
}

// Step runs everything in the checkpoint loop after the instance refresh:
// measure checkpoint cp, fire each track's trigger, and re-place (and
// re-baseline) the tracks whose trigger fired. Callers driving the engine
// externally (the shard layer) call it once per checkpoint after
// ApplyExternal; Run uses it verbatim.
//
// The returned step's HitRatio and Replaced slices are engine-owned and
// reused: they are valid until the next Step call, so the steady-state
// checkpoint loop allocates nothing. Callers that keep steps copy the
// slices (Run does).
func (e *Engine) Step(cp int) (Step, error) {
	hits, err := e.Measure(cp)
	if err != nil {
		return Step{}, err
	}
	step := Step{
		TimeMin:  float64(cp * e.cfg.CheckpointMin),
		HitRatio: e.stepHit[:len(e.cfg.Tracks)],
		Replaced: e.stepReplaced[:len(e.cfg.Tracks)],
	}
	copy(step.HitRatio, hits)
	for a := range step.Replaced {
		step.Replaced[a] = false
	}
	for a, tr := range e.cfg.Tracks {
		trigger := tr.Trigger
		if trigger == nil {
			trigger = NeverTrigger{}
		}
		// Read the copied hit ratio, not the measurement's buffer: a Replace
		// for an earlier track re-measures and overwrites that buffer.
		if !trigger.Fire(cp, step.HitRatio[a], e.baselines[a]) {
			continue
		}
		hr, err := e.Replace(a, cp)
		if err != nil {
			return Step{}, err
		}
		if r, ok := trigger.(Resetter); ok {
			r.Reset()
		}
		step.HitRatio[a] = hr
		step.Replaced[a] = true
	}
	return step, nil
}

// Replacements returns track a's re-placement count so far (excluding the
// initial placement).
func (e *Engine) Replacements(a int) int { return e.replacements[a] }

// TraceMeasurement returns the engine's trace-driven measurement, or nil
// when the engine measures with the Monte-Carlo fading track. Callers use
// it to read request-level serve stats (LastResults, LastLatencies) after a
// Step — the production-facing numbers the scalar hit ratio compresses away.
func (e *Engine) TraceMeasurement() *TraceMeasurement { return e.traceMeas }

// MemoryFootprint returns the engine's memory accounting: the instance's
// own breakdown, plus the evaluator state, the measurement scratch (for
// measurements that report it), the per-track placements (counted with the
// evaluator), and the engine's loop scratch.
func (e *Engine) MemoryFootprint() memprof.Footprint {
	f := e.ins.MemoryFootprint()
	f.Evaluator += e.eval.MemoryBytes()
	for _, p := range e.placements {
		if p != nil {
			f.Evaluator += p.MemoryBytes()
		}
	}
	if m, ok := e.measure.(interface{ MemoryBytes() int64 }); ok {
		f.Measurement += m.MemoryBytes()
	}
	f.Scratch += int64(cap(e.caps))*8 + int64(cap(e.caps0))*8
	f.Scratch += int64(cap(e.allUsers))*8 + int64(cap(e.positions))*16
	f.Scratch += int64(cap(e.movedSeen)) + int64(cap(e.baselines))*8
	f.Scratch += int64(cap(e.stepHit))*8 + int64(cap(e.stepReplaced))
	for a := range e.accPairs {
		f.Scratch += int64(cap(e.accPairs[a])) * 8
	}
	return f
}

// Run builds an engine and drives the full timeline.
func Run(cfg Config, src *rng.Source) (*Result, error) {
	e, err := NewEngine(cfg, src)
	if err != nil {
		return nil, err
	}
	return e.Run()
}
