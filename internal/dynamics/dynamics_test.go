package dynamics

import (
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// testInstance samples a fresh §VII-E-style instance. Each call returns an
// independent instance so incremental runs (which mutate it) cannot leak
// into other runs.
func testInstance(t testing.TB, seed uint64) *scenario.Instance {
	t.Helper()
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(5), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	gen := scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: 6, NumUsers: 10, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}
	ins, err := scenario.Generate(lib, gen, rng.New(seed+100).Split("instance"))
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func testConfig(ins *scenario.Instance, trigger Trigger, mode Mode, workers int) Config {
	return Config{
		Instance:   ins,
		Capacities: placement.UniformCapacities(ins.NumServers(), 1<<30),
		Tracks: []Track{
			{Algorithm: placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}}, Trigger: trigger},
			{Algorithm: placement.SpecAlgorithm{Options: placement.DefaultSpecOptions()}, Trigger: trigger},
		},
		DurationMin:   60,
		CheckpointMin: 10,
		SlotS:         5,
		Realizations:  15,
		Workers:       workers,
		Mode:          mode,
	}
}

func assertResultsEqual(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if len(got.Steps) != len(want.Steps) {
		t.Fatalf("%s: %d steps, want %d", label, len(got.Steps), len(want.Steps))
	}
	for si := range want.Steps {
		g, w := got.Steps[si], want.Steps[si]
		if g.TimeMin != w.TimeMin {
			t.Fatalf("%s: step %d at %v min, want %v", label, si, g.TimeMin, w.TimeMin)
		}
		for a := range w.HitRatio {
			if g.HitRatio[a] != w.HitRatio[a] {
				t.Fatalf("%s: step %d track %d hit %.17g, want %.17g", label, si, a, g.HitRatio[a], w.HitRatio[a])
			}
			if g.Replaced[a] != w.Replaced[a] {
				t.Fatalf("%s: step %d track %d replaced %v, want %v", label, si, a, g.Replaced[a], w.Replaced[a])
			}
		}
	}
	for a := range want.Replacements {
		if got.Replacements[a] != want.Replacements[a] {
			t.Fatalf("%s: track %d made %d replacements, want %d", label, a, got.Replacements[a], want.Replacements[a])
		}
	}
}

// TestIncrementalMatchesRebuild is the engine-level golden equivalence on
// the §VII-E mobility timeline: delta reachability updates plus warm-start
// placement repair must reproduce the full-rebuild hit ratios exactly —
// with frozen placements (the Fig. 7 protocol) and with a threshold
// trigger that actually fires replacements.
func TestIncrementalMatchesRebuild(t *testing.T) {
	triggers := []Trigger{
		NeverTrigger{},
		ThresholdTrigger{Degradation: 0.01}, // eager: fires on 1% degradation
		PeriodicTrigger{Every: 3},
	}
	for _, trigger := range triggers {
		inc, err := Run(testConfig(testInstance(t, 1), trigger, Incremental, 0), rng.New(7))
		if err != nil {
			t.Fatalf("%s incremental: %v", trigger.Name(), err)
		}
		reb, err := Run(testConfig(testInstance(t, 1), trigger, Rebuild, 0), rng.New(7))
		if err != nil {
			t.Fatalf("%s rebuild: %v", trigger.Name(), err)
		}
		assertResultsEqual(t, inc, reb, trigger.Name())
	}
}

// TestThresholdTriggerReplaces guards against the equivalence test
// comparing two trivially idle timelines: the eager trigger must actually
// fire within the hour.
func TestThresholdTriggerReplaces(t *testing.T) {
	var total int
	for seed := uint64(1); seed <= 3; seed++ {
		res, err := Run(testConfig(testInstance(t, seed), ThresholdTrigger{Degradation: 0.01}, Incremental, 0), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range res.Replacements {
			total += n
		}
	}
	if total == 0 {
		t.Fatal("one-percent-degradation trigger never fired across 3 mobile hours")
	}
}

// TestDeterminismAcrossWorkers pins the engine's concurrency contract: the
// timeline is a pure function of (config, seed), bit-identical for any
// fading worker count.
func TestDeterminismAcrossWorkers(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 2, 7} {
		res, err := Run(testConfig(testInstance(t, 2), ThresholdTrigger{Degradation: 0.01}, Incremental, workers), rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		assertResultsEqual(t, res, ref, "workers")
	}
}

func TestConfigValidate(t *testing.T) {
	ins := testInstance(t, 3)
	good := testConfig(ins, NeverTrigger{}, Incremental, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Instance = nil },
		func(c *Config) { c.Capacities = c.Capacities[:1] },
		func(c *Config) { c.Tracks = nil },
		func(c *Config) { c.Tracks = []Track{{}} },
		func(c *Config) { c.DurationMin = 0 },
		func(c *Config) { c.CheckpointMin = 0 },
		func(c *Config) { c.DurationMin = 5; c.CheckpointMin = 10 },
		func(c *Config) { c.SlotS = 0 },
		func(c *Config) { c.Realizations = 0 },
		func(c *Config) { c.Mode = Mode(99) },
	}
	for i, mut := range muts {
		c := testConfig(ins, NeverTrigger{}, Incremental, 0)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d: expected error", i)
		}
	}
}
