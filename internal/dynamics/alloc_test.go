package dynamics

import (
	"testing"

	"trimcaching/internal/rng"
)

// TestCheckpointAllocFree pins the tentpole's allocation contract on the
// unsharded engine: with every pool at one worker (inline paths, no
// goroutine spawns) and no trigger firing, a steady-state checkpoint —
// walk, in-place delta refresh, fused fading measurement, Step — performs
// zero heap allocations. Scratch growth is allowed to settle over a few
// warm-up checkpoints first (arena and batch buffers grow to the walk's
// high-water mark); after that, any allocation on this path is a
// regression against the pooled buffers.
func TestCheckpointAllocFree(t *testing.T) {
	cfg, err := NewSmokeScaleConfig(Incremental)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracks[0].Trigger = NeverTrigger{}
	cfg.Workers = 1
	e, err := NewEngine(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cp := 0
	checkpoint := func() {
		cp++
		if err := e.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := e.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Step(cp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		checkpoint()
	}
	if avg := testing.AllocsPerRun(5, checkpoint); avg != 0 {
		t.Fatalf("steady-state checkpoint allocates %.1f times per run, want 0", avg)
	}
}
