package dynamics

import (
	"testing"

	"trimcaching/internal/rng"
)

// TestCheckpointAllocFree pins the tentpole's allocation contract on the
// unsharded engine: with every pool at one worker (inline paths, no
// goroutine spawns) and no trigger firing, a steady-state checkpoint —
// walk, in-place delta refresh, fused fading measurement, Step — performs
// zero heap allocations. Scratch growth is allowed to settle over a few
// warm-up checkpoints first (arena and batch buffers grow to the walk's
// high-water mark); after that, any allocation on this path is a
// regression against the pooled buffers.
func TestCheckpointAllocFree(t *testing.T) {
	cfg, err := NewSmokeScaleConfig(Incremental)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracks[0].Trigger = NeverTrigger{}
	cfg.Workers = 1
	e, err := NewEngine(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cp := 0
	checkpoint := func() {
		cp++
		if err := e.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := e.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Step(cp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		checkpoint()
	}
	if avg := testing.AllocsPerRun(5, checkpoint); avg != 0 {
		t.Fatalf("steady-state checkpoint allocates %.1f times per run, want 0", avg)
	}
}

// TestFaultCheckpointAllocFree pins the allocation contract across fault
// events: after an outage plus a partial-capacity degradation (and the
// forced replaces on their edges), steady-state checkpoints between fault
// events are still allocation-free. The events themselves may allocate —
// they are event-rate, not checkpoint-rate — and the fused kernel's
// capacity-mask scratch grows once during the first degraded measurement,
// so the pin re-warms after the faults before counting.
func TestFaultCheckpointAllocFree(t *testing.T) {
	cfg, err := NewSmokeScaleConfig(Incremental)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracks[0].Trigger = NeverTrigger{}
	cfg.Workers = 1
	e, err := NewEngine(cfg, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	cp := 0
	checkpoint := func() {
		cp++
		if err := e.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := e.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Step(cp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		checkpoint()
	}
	if err := e.SetServersDown([]int{0}, true); err != nil {
		t.Fatal(err)
	}
	if err := e.SetServerCapacity(1, e.ServerCapacityBytes(1)/2); err != nil {
		t.Fatal(err)
	}
	for a := range cfg.Tracks {
		cp++
		if _, err := e.Replace(a, cp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		checkpoint()
	}
	if avg := testing.AllocsPerRun(5, checkpoint); avg != 0 {
		t.Fatalf("degraded steady-state checkpoint allocates %.1f times per run, want 0", avg)
	}
}

// TestTraceCheckpointAllocFree is the same pin for the trace-driven
// measurement track: synthesis (per-user Poisson streams), the event-driven
// serve, and the recorded window stats must all reuse their scratch, so a
// steady-state serving checkpoint at Workers=1 performs zero heap
// allocations once the buffers reach the trace's high-water mark. Window
// sizes fluctuate across checkpoints, so the warm-up must span enough
// windows to establish that mark; the pin is deterministic in the seed.
func TestTraceCheckpointAllocFree(t *testing.T) {
	cfg, err := NewSmokeScaleConfig(Incremental)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracks[0].Trigger = NeverTrigger{}
	cfg.Workers = 1
	cfg.Measurement = &TraceMeasurement{
		RequestsPerUserPerHour: 120,
		WindowS:                float64(cfg.CheckpointMin) * 60,
	}
	e, err := NewEngine(cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	cp := 0
	checkpoint := func() {
		cp++
		if err := e.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := e.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Step(cp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		checkpoint()
	}
	if avg := testing.AllocsPerRun(5, checkpoint); avg != 0 {
		t.Fatalf("steady-state serving checkpoint allocates %.1f times per run, want 0", avg)
	}
}
