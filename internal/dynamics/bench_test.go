package dynamics

// Benchmarks for the incremental dynamics engine at LoRA scale (M = 10,
// K = 300 users, I = 1000 adapter models, LLM-grade deadlines): the regime
// the ROADMAP's north star cares about, where a full per-checkpoint
// rebuild is O(M·K·I). "Refresh" is the instance update alone; "Checkpoint"
// is refresh plus a forced placement re-solve (warm repair vs cold solve).
// Fading measurement is excluded: it is identical in both modes.

import (
	"testing"

	"trimcaching/internal/rng"
)

// LoRAScaleConfig builds the benchmark engine config: shared by the
// testing.B benchmarks below and cmd/benchdyn's JSON emitter.
func LoRAScaleConfig(tb testing.TB, mode Mode) Config {
	cfg, err := NewLoRAScaleConfig(mode)
	if err != nil {
		tb.Fatal(err)
	}
	return cfg
}

func loraEngine(b *testing.B, mode Mode) *Engine {
	b.Helper()
	e, err := NewEngine(LoRAScaleConfig(b, mode), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up checkpoint: the incremental mode builds its one-time flip
	// index on the first update; keep that out of the per-checkpoint cost.
	if err := e.Advance(); err != nil {
		b.Fatal(err)
	}
	if err := e.Refresh(); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchRefresh(b *testing.B, mode Mode) {
	e := loraEngine(b, mode)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		if err := e.Advance(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := e.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefreshRebuild(b *testing.B)     { benchRefresh(b, Rebuild) }
func BenchmarkRefreshIncremental(b *testing.B) { benchRefresh(b, Incremental) }

func benchCheckpoint(b *testing.B, mode Mode) {
	e := loraEngine(b, mode)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		if err := e.Advance(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := e.Refresh(); err != nil {
			b.Fatal(err)
		}
		p, err := e.resolve(0)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e.accPairs[0].Zero()
		e.placements[0] = p
		b.StartTimer()
	}
}

func BenchmarkCheckpointRebuild(b *testing.B)     { benchCheckpoint(b, Rebuild) }
func BenchmarkCheckpointIncremental(b *testing.B) { benchCheckpoint(b, Incremental) }

// BenchmarkTimelineIncremental runs a short end-to-end timeline including
// fading measurement, for the wall-clock trajectory in CI.
func benchTimeline(b *testing.B, mode Mode) {
	cfg := LoRAScaleConfig(b, mode)
	cfg.DurationMin = 30
	cfg.Realizations = 4
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		fresh := LoRAScaleConfig(b, mode)
		cfg.Instance = fresh.Instance
		b.StartTimer()
		if _, err := Run(cfg, rng.New(uint64(n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimelineRebuild(b *testing.B)     { benchTimeline(b, Rebuild) }
func BenchmarkTimelineIncremental(b *testing.B) { benchTimeline(b, Incremental) }

// TestLoRAScaleConfigPlaces guards the benchmark setting itself: with
// LLM-grade deadlines the solver must produce a non-trivial placement
// (an empty one would make every benchmark vacuous).
func TestLoRAScaleConfigPlaces(t *testing.T) {
	if testing.Short() {
		t.Skip("LoRA-scale instance build in -short mode")
	}
	cfg := LoRAScaleConfig(t, Incremental)
	e, err := NewEngine(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if n := e.Placement(0).CountPlacements(); n == 0 {
		t.Fatal("LoRA-scale benchmark scenario places nothing")
	}
	if e.Baseline(0) == 0 {
		t.Fatal("LoRA-scale benchmark baseline hit ratio is zero")
	}
}
