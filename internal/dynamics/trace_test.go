package dynamics

import (
	"testing"

	"trimcaching/internal/rng"
)

// newTraceConfig switches a testConfig onto the trace-driven measurement
// track. Each track gets its own trigger value: TraceTrigger is stateful.
func newTraceConfig(t *testing.T, seed uint64, mode Mode, workers int, degradation float64, window int) Config {
	t.Helper()
	ins := testInstance(t, seed)
	cfg := testConfig(ins, nil, mode, workers)
	for a := range cfg.Tracks {
		if degradation > 0 {
			cfg.Tracks[a].Trigger = &TraceTrigger{Window: window, Degradation: degradation}
		}
	}
	cfg.Realizations = 0 // must be ignored on the trace track
	cfg.Measurement = &TraceMeasurement{
		RequestsPerUserPerHour: 60,
		WindowS:                float64(cfg.CheckpointMin) * 60,
	}
	return cfg
}

// TestTraceTrackDeterministicAcrossWorkers pins the acceptance bar: the
// trace-driven timeline is bit-identical for any engine worker count.
func TestTraceTrackDeterministicAcrossWorkers(t *testing.T) {
	var want *Result
	for _, workers := range []int{1, 3, 8} {
		res, err := Run(newTraceConfig(t, 50, Incremental, workers, 0.1, 2), rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		assertResultsEqual(t, res, want, "trace track workers")
	}
}

// TestTraceIncrementalMatchesRebuild extends the engine-level golden
// equivalence to the trace track: serving synthesized windows against
// delta-updated instances must reproduce the full-rebuild timelines
// exactly, with and without replacements.
func TestTraceIncrementalMatchesRebuild(t *testing.T) {
	for _, tc := range []struct {
		name        string
		degradation float64
		window      int
	}{
		{"frozen", 0, 0},
		{"windowed trigger", 0.05, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inc, err := Run(newTraceConfig(t, 51, Incremental, 2, tc.degradation, tc.window), rng.New(6))
			if err != nil {
				t.Fatal(err)
			}
			reb, err := Run(newTraceConfig(t, 51, Rebuild, 2, tc.degradation, tc.window), rng.New(6))
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, inc, reb, tc.name)
		})
	}
}

// TestTraceMeasurementIgnoresRealizations checks the Config.Measurement
// seam: with a measurement supplied, Realizations is unused and may be
// zero.
func TestTraceMeasurementIgnoresRealizations(t *testing.T) {
	cfg := newTraceConfig(t, 52, Incremental, 1, 0, 0)
	if cfg.Realizations != 0 {
		t.Fatal("test setup: Realizations should be zero")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("trace config with zero realizations rejected: %v", err)
	}
	// Without a measurement, zero realizations must still be rejected.
	cfg.Measurement = nil
	if err := cfg.Validate(); err == nil {
		t.Fatal("fading config with zero realizations accepted")
	}
}

func TestTraceTriggerFire(t *testing.T) {
	tr := &TraceTrigger{Window: 3, Degradation: 0.1}
	base := 0.8
	// Window not yet full: never fires, even on terrible measurements.
	if tr.Fire(1, 0.1, base) || tr.Fire(2, 0.1, base) {
		t.Fatal("fired before the window filled")
	}
	// Full window, mean 0.1 < 0.9*0.8: fires.
	if !tr.Fire(3, 0.1, base) {
		t.Fatal("did not fire on sustained degradation")
	}
	// A baseline change (the engine re-based after a replacement) must
	// reset the window: old degraded measurements cannot re-fire it.
	if tr.Fire(4, 0.79, 0.8001) || tr.Fire(5, 0.79, 0.8001) {
		t.Fatal("fired from stale pre-replacement measurements")
	}
	// Healthy measurements keep it quiet once the window refills.
	if tr.Fire(6, 0.79, 0.8001) {
		t.Fatal("fired on healthy measurements")
	}
	// Degraded mean fires again after the reset.
	tr.Fire(7, 0.5, 0.8001)
	tr.Fire(8, 0.5, 0.8001)
	if !tr.Fire(9, 0.5, 0.8001) {
		t.Fatal("did not fire after refilling with degraded measurements")
	}

	// Reset must clear the window even when the re-measured baseline
	// exactly equals the old one (hit ratios are discrete rationals, so
	// collisions happen — e.g. both measure 1.0).
	collide := &TraceTrigger{Window: 2, Degradation: 0.1}
	collide.Fire(1, 0.5, 1.0)
	if !collide.Fire(2, 0.5, 1.0) {
		t.Fatal("did not fire on sustained degradation")
	}
	collide.Reset()
	if collide.Fire(3, 1.0, 1.0) {
		t.Fatal("fired from stale measurements after Reset with colliding baseline")
	}

	// Window <= 1 behaves like an instantaneous threshold.
	inst := &TraceTrigger{Degradation: 0.1}
	if inst.Fire(1, 0.73, 0.8) {
		t.Fatal("fired inside the tolerance band")
	}
	if !inst.Fire(2, 0.71, 0.8) {
		t.Fatal("did not fire past the tolerance band")
	}
}

func TestTraceTriggerName(t *testing.T) {
	if got := (&TraceTrigger{Degradation: 0.1}).Name(); got != "10% measured degradation" {
		t.Fatalf("name %q", got)
	}
	if got := (&TraceTrigger{Window: 4, Degradation: 0.2}).Name(); got != "20% measured degradation over 4 checkpoints" {
		t.Fatalf("name %q", got)
	}
}

// TestTraceTriggerReplacesOnTimeline drives a full engine run with an
// aggressive trigger and checks replacements actually happen and re-base
// the baseline (the timeline records them).
func TestTraceTriggerReplacesOnTimeline(t *testing.T) {
	cfg := newTraceConfig(t, 53, Incremental, 2, 0.01, 1)
	res, err := Run(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Replacements {
		total += n
	}
	if total == 0 {
		t.Skip("1% degradation never hit on this draw; trigger behavior covered by unit tests")
	}
	found := false
	for _, st := range res.Steps {
		for a := range st.Replaced {
			if st.Replaced[a] {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("replacements counted but no step records one")
	}
}
