package dynamics

import (
	"fmt"
	"runtime"

	"trimcaching/internal/cachesim"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/sim"
	"trimcaching/internal/trace"
)

// Measurement is the engine's quality seam: it scores every track's current
// placement on the current instance at one checkpoint. The engine hands it
// a per-checkpoint random stream (split as "fading"/cp for the regular
// measurement and "refade"/cp for post-replacement baselines, names kept
// from the original Monte-Carlo-only engine), so implementations are
// deterministic in (instance, placements, stream) and bit-identical for any
// engine worker count.
//
// Two implementations ship: FadingMeasurement (the default) averages the
// analytic hit ratio over Rayleigh realizations, and TraceMeasurement
// serves a synthesized request trace through the event-driven simulator and
// reports the realized QoS hit ratio. Implementations may keep per-run
// scratch (sessions) and are not safe for concurrent use; they bind
// lazily to the first instance's dimensions and accept any same-sized
// instance afterwards, delta-updated or rebuilt.
type Measurement interface {
	// Name identifies the measurement track in logs and tables.
	Name() string
	// Measure returns each placement's hit ratio on eval's instance.
	Measure(eval *placement.Evaluator, placements []*placement.Placement, src *rng.Source) ([]float64, error)
}

// FadingMeasurement is the Monte-Carlo track: each checkpoint's hit ratio
// is the analytic objective averaged over Realizations Rayleigh fading
// realizations (§VII-A), evaluated in parallel on Workers goroutines with
// per-realization RNG splits — bit-identical for any worker count.
type FadingMeasurement struct {
	// Realizations is the fading realizations per measurement.
	Realizations int
	// Workers bounds the evaluation parallelism; 0 means GOMAXPROCS.
	Workers int
	// BlockSize is the number of realizations each worker scores through
	// one fused sweep (sim.FadingSession.SetBlockSize). 0 splits the
	// realizations evenly across the workers; 1 forces the
	// per-realization path. Results are bit-identical for every value.
	BlockSize int

	session *sim.FadingSession
	hits    []float64 // reused result buffer; valid until the next Measure
}

// Name implements Measurement.
func (m *FadingMeasurement) Name() string { return "fading" }

// Measure implements Measurement.
func (m *FadingMeasurement) Measure(eval *placement.Evaluator, placements []*placement.Placement, src *rng.Source) ([]float64, error) {
	if m.Realizations <= 0 {
		return nil, fmt.Errorf("dynamics: Realizations must be positive, got %d", m.Realizations)
	}
	if m.session == nil {
		// Clamp the workers to the realization count before sizing the
		// session, so no per-worker buffers are allocated that Evaluate can
		// never use.
		workers := m.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > m.Realizations {
			workers = m.Realizations
		}
		m.session = sim.NewFadingSession(eval.Instance(), workers)
		m.session.SetBlockSize(m.BlockSize)
	}
	// The result buffer is measurement-owned and reused: valid until the
	// next Measure call, so the steady-state checkpoint loop allocates
	// nothing. Callers that keep the values copy them (the engine does).
	hits, err := m.session.EvaluateInto(m.hits, eval, placements, m.Realizations, src)
	if err != nil {
		return nil, err
	}
	m.hits = hits[:cap(hits)]
	return hits, nil
}

// MemoryBytes returns the heap bytes the measurement's session scratch
// owns (the engine's Measurement footprint component).
func (m *FadingMeasurement) MemoryBytes() int64 {
	var n int64
	if m.session != nil {
		n += m.session.MemoryBytes()
	}
	return n + int64(cap(m.hits))*8
}

// TraceMeasurement is the trace-driven track: each checkpoint synthesizes a
// request window (Poisson arrivals per user, the workload's Zipf model
// popularity) and serves it through the event-driven simulator
// (cachesim.ServeSession), reporting the realized QoS hit ratio — measured
// request traffic rather than a fading-averaged estimate. All tracks are
// served against the same window (arrivals are paired); each track's
// serving fades from its own split, so a track's measurement does not
// depend on which other tracks run. A window with zero requests reports a
// zero hit ratio.
type TraceMeasurement struct {
	// RequestsPerUserPerHour is the Poisson arrival rate of the synthesized
	// windows. Zero synthesizes empty windows.
	RequestsPerUserPerHour float64
	// WindowS is the horizon of each synthesized window in seconds; the
	// engine wirings default it to the checkpoint length.
	WindowS float64
	// Event configures the serving simulator; a zero CloudRateBps selects
	// cachesim.DefaultEventConfig.
	Event cachesim.EventConfig
	// UserKey maps a workload slot to the global user id that keys its
	// arrival stream, and reports whether the slot synthesizes arrivals at
	// all. Nil is the identity map (the unsharded engine). The shard layer
	// passes its slot table here so a user's request stream is bit-stable
	// across cell handoffs and each request is served by exactly one cell.
	UserKey trace.UserMap
	// StreamSalt decorrelates the serving fades of sibling measurements
	// (one per shard cell) that deliberately share seed material so their
	// arrival streams agree. Zero uses the plain "serve"/track stream —
	// required for the Shards=1 == unsharded bit-identity pin.
	StreamSalt int

	synth   *trace.Synthesizer
	session *cachesim.ServeSession

	// Per-Measure recordings, reused across checkpoints. noRecord is set by
	// the engine around replacement re-measures (their single-placement
	// calls would otherwise clobber track 0's window stats).
	hits     []float64
	results  []cachesim.EventResult
	lats     [][]float64
	noRecord bool

	arrivalSrc rng.Source
	saltSrc    rng.Source
	serveSrc   rng.Source
}

// Name implements Measurement.
func (m *TraceMeasurement) Name() string { return "trace" }

// Measure implements Measurement.
func (m *TraceMeasurement) Measure(eval *placement.Evaluator, placements []*placement.Placement, src *rng.Source) ([]float64, error) {
	ins := eval.Instance()
	if m.synth == nil {
		synth, err := trace.NewSynthesizer(m.RequestsPerUserPerHour, m.WindowS)
		if err != nil {
			return nil, fmt.Errorf("dynamics: %w", err)
		}
		cfg := m.Event
		if cfg.CloudRateBps == 0 {
			cfg = cachesim.DefaultEventConfig()
		}
		session, err := cachesim.NewServeSession(ins, cfg)
		if err != nil {
			return nil, fmt.Errorf("dynamics: %w", err)
		}
		m.synth, m.session = synth, session
	}
	tr, err := m.synth.WindowMapped(ins.Workload(), src.SplitInto(&m.arrivalSrc, "arrivals"), m.UserKey)
	if err != nil {
		return nil, fmt.Errorf("dynamics: %w", err)
	}
	if cap(m.hits) < len(placements) {
		m.hits = make([]float64, len(placements))
		m.results = make([]cachesim.EventResult, len(placements))
		m.lats = make([][]float64, len(placements))
	}
	hits := m.hits[:len(placements)]
	for a, p := range placements {
		serveSrc := src
		if m.StreamSalt != 0 {
			serveSrc = src.SplitIndexInto(&m.saltSrc, "cellserve", m.StreamSalt)
		}
		res, err := m.session.Serve(ins, p, tr, serveSrc.SplitIndexInto(&m.serveSrc, "serve", a))
		if err != nil {
			return nil, fmt.Errorf("dynamics: %w", err)
		}
		hits[a] = res.HitRatio
		if !m.noRecord {
			m.results[a] = res
			m.lats[a] = append(m.lats[a][:0], m.session.Latencies()...)
		}
	}
	return hits, nil
}

// LastResults returns the per-track EventResults of the most recent
// recorded Measure call (replacement re-measures are excluded by the
// engine). The slice aliases measurement-owned scratch: it is valid until
// the next Measure, and callers that keep the values copy them.
func (m *TraceMeasurement) LastResults() []cachesim.EventResult { return m.results }

// LastLatencies returns track a's sorted per-request latencies (seconds)
// from the most recent recorded Measure call. The slice aliases
// measurement-owned scratch reused across checkpoints; treat it as
// read-only and copy to keep. The sharded engine merges these buffers
// across cells for exact global quantiles.
func (m *TraceMeasurement) LastLatencies(a int) []float64 {
	if a < 0 || a >= len(m.lats) {
		return nil
	}
	return m.lats[a]
}

// MemoryBytes returns the heap bytes of the measurement's retained scratch
// (the serving session plus the recorded window stats).
func (m *TraceMeasurement) MemoryBytes() int64 {
	var n int64
	if m.session != nil {
		n += m.session.MemoryBytes()
	}
	n += int64(cap(m.hits)) * 8
	for _, l := range m.lats {
		n += int64(cap(l)) * 8
	}
	return n
}

// TraceTrigger re-places on measured (windowed) hit-ratio degradation: it
// keeps the last Window measured hit ratios since the track's placement and
// fires when their mean drops more than Degradation below the
// post-placement baseline. Windowing smooths the sampling noise of
// trace-driven measurements, where a single quiet or unlucky window says
// little; Window <= 1 fires on any single degraded measurement, matching
// ThresholdTrigger's behavior on the measured track. The trigger is
// stateful: the engine calls Reset after every replacement so stale
// pre-replacement measurements cannot re-fire it (Fire also drops its
// history when it observes the baseline change, as a fallback for custom
// loops that forget Reset). Use a fresh value per engine run and share
// nothing across tracks.
type TraceTrigger struct {
	// Window is the number of recent measurements averaged; 0 means 1.
	Window int
	// Degradation is the firing threshold; >= 1 never fires.
	Degradation float64

	baseline float64
	recent   []float64
}

// TriggerCloner is the optional replication hook of a stateful Trigger:
// CloneTrigger returns a fresh trigger with the same policy parameters and
// no accumulated state. The shard layer requires it to give every cell its
// own trigger instance — sharing one stateful trigger by value across cells
// would mix their measurement histories.
type TriggerCloner interface {
	Trigger
	CloneTrigger() Trigger
}

// CloneTrigger implements TriggerCloner: same Window and Degradation, empty
// measurement history.
func (t *TraceTrigger) CloneTrigger() Trigger {
	return &TraceTrigger{Window: t.Window, Degradation: t.Degradation}
}

// Name implements Trigger.
func (t *TraceTrigger) Name() string {
	w := t.Window
	if w <= 1 {
		return fmt.Sprintf("%.0f%% measured degradation", 100*t.Degradation)
	}
	return fmt.Sprintf("%.0f%% measured degradation over %d checkpoints", 100*t.Degradation, w)
}

// Reset clears the measurement window. The engine calls it right after a
// track is re-placed; custom loops must do the same (a re-measured baseline
// can coincide exactly with the old one — hit ratios are discrete
// QoSHits/Requests rationals — so Fire's baseline-change fallback alone is
// not sufficient).
func (t *TraceTrigger) Reset() {
	t.recent = t.recent[:0]
}

// Fire implements Trigger.
func (t *TraceTrigger) Fire(_ int, hitRatio, baseline float64) bool {
	if baseline != t.baseline {
		// Fallback for loops that skip Reset: a changed baseline means the
		// track was re-placed, so pre-replacement measurements are stale.
		t.baseline = baseline
		t.recent = t.recent[:0]
	}
	w := t.Window
	if w <= 1 {
		w = 1
	}
	t.recent = append(t.recent, hitRatio)
	if len(t.recent) > w {
		t.recent = append(t.recent[:0], t.recent[len(t.recent)-w:]...)
	}
	if len(t.recent) < w {
		return false
	}
	var mean float64
	for _, v := range t.recent {
		mean += v
	}
	mean /= float64(len(t.recent))
	return mean < (1-t.Degradation)*baseline
}
