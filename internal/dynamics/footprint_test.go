package dynamics

import (
	"testing"

	"trimcaching/internal/rng"
)

// TestEngineMemoryFootprint sanity-checks the accounting seam the scale
// benchmark reports through: after a few checkpoints every component the
// unsharded engine owns is populated, and the footprint is stable once the
// pooled buffers reach their high-water mark (the same steady state the
// allocation pin measures).
func TestEngineMemoryFootprint(t *testing.T) {
	cfg, err := NewSmokeScaleConfig(Incremental)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for cp := 1; cp <= 4; cp++ {
		if err := e.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := e.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Step(cp); err != nil {
			t.Fatal(err)
		}
	}
	f := e.MemoryFootprint()
	for _, c := range []struct {
		name  string
		bytes int64
	}{
		{"reach", f.Reach}, {"rank", f.Rank}, {"rates", f.Rates},
		{"workload", f.Workload}, {"topology", f.Topology},
		{"evaluator", f.Evaluator}, {"measurement", f.Measurement},
		{"scratch", f.Scratch},
	} {
		if c.bytes <= 0 {
			t.Errorf("%s bytes = %d, want > 0", c.name, c.bytes)
		}
	}
	if f.Coordinator != 0 {
		t.Errorf("unsharded engine reports %d coordinator bytes, want 0", f.Coordinator)
	}
	if f.Total() <= 0 {
		t.Fatalf("total = %d, want > 0", f.Total())
	}
	before := f.Total()
	for cp := 5; cp <= 8; cp++ {
		if err := e.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := e.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Step(cp); err != nil {
			t.Fatal(err)
		}
	}
	after := e.MemoryFootprint().Total()
	if after < before {
		t.Fatalf("footprint shrank %d → %d; capacities must be monotone", before, after)
	}
}
