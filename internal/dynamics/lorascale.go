package dynamics

import (
	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// NewLoRAScaleConfig builds the canonical LoRA-scale benchmark setting:
// M = 10 edge servers, K = 300 users walking the §VII-E mobility model,
// and a 1000-adapter LoRA library (one shared foundation model, >99%
// parameter sharing) under LLM-grade deadlines — the scale at which a full
// per-checkpoint rebuild costs O(M·K·I). Shared by the dynamics benchmarks
// and cmd/benchdyn so both report the same workload.
func NewLoRAScaleConfig(mode Mode) (Config, error) {
	lib, err := libgen.GenerateLoRA(libgen.DefaultLoRAConfig(1000))
	if err != nil {
		return Config{}, err
	}
	w := wireless.DefaultConfig()
	w.BackhaulBps = 1e9
	wl := workload.DefaultConfig()
	// A multi-GB model takes tens of seconds over the air: LLM provisioning
	// tolerates minutes, with seconds of on-device warm-up.
	wl.DeadlineMinS, wl.DeadlineMaxS = 60, 180
	wl.InferMinS, wl.InferMaxS = 1, 5
	ins, err := scenario.Generate(lib, scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: 10, NumUsers: 300, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: wl,
	}, rng.New(1).Split("instance"))
	if err != nil {
		return Config{}, err
	}
	return Config{
		Instance:   ins,
		Capacities: placement.UniformCapacities(ins.NumServers(), 8<<30),
		Tracks: []Track{{
			Algorithm: placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
			Trigger:   ThresholdTrigger{Degradation: 0.05},
		}},
		DurationMin:   120,
		CheckpointMin: 10,
		SlotS:         5,
		Realizations:  10,
		Mode:          mode,
	}, nil
}

// NewSmokeScaleConfig builds a miniature sibling of the LoRA-scale setting
// — same library shape, workload, and timeline protocol, toy dimensions —
// for CI smoke validation of the benchmark plumbing (cmd/benchdyn -smoke).
// It exists to prove the pipeline emits a well-formed artifact in seconds,
// not to produce comparable performance numbers.
func NewSmokeScaleConfig(mode Mode) (Config, error) {
	lib, err := libgen.GenerateLoRA(libgen.DefaultLoRAConfig(40))
	if err != nil {
		return Config{}, err
	}
	w := wireless.DefaultConfig()
	w.BackhaulBps = 1e9
	wl := workload.DefaultConfig()
	wl.DeadlineMinS, wl.DeadlineMaxS = 60, 180
	wl.InferMinS, wl.InferMaxS = 1, 5
	ins, err := scenario.Generate(lib, scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 600, NumServers: 4, NumUsers: 24, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: wl,
	}, rng.New(1).Split("instance"))
	if err != nil {
		return Config{}, err
	}
	return Config{
		Instance:   ins,
		Capacities: placement.UniformCapacities(ins.NumServers(), 8<<30),
		Tracks: []Track{{
			Algorithm: placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
			Trigger:   ThresholdTrigger{Degradation: 0.05},
		}},
		DurationMin:   20,
		CheckpointMin: 10,
		SlotS:         5,
		Realizations:  4,
		Mode:          mode,
	}, nil
}
