package dynamics

import (
	"testing"

	"trimcaching/internal/rng"
)

// TestOutageRepairMatchesColdSolve is the outage-repair contract's
// placement half: after SetServersDown, a warm-started Replace must yield
// placements bit-identical to an engine built cold over the already
// reduced instance — down servers' zero-gain columns receive nothing, and
// the repair forgets nothing the cold solver would not also forget. The
// recovery edge is pinned symmetrically: replacing after the servers
// return reproduces the never-outaged engine's initial placements.
func TestOutageRepairMatchesColdSolve(t *testing.T) {
	downed := []int{0, 2}

	warm, err := NewEngine(testConfig(testInstance(t, 42), nil, Incremental, 1), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.SetServersDown(downed, true); err != nil {
		t.Fatal(err)
	}
	for a := range warm.cfg.Tracks {
		if _, err := warm.Replace(a, 1); err != nil {
			t.Fatal(err)
		}
	}

	reduced := testInstance(t, 42)
	if _, err := reduced.SetServersDown(downed, true); err != nil {
		t.Fatal(err)
	}
	cold, err := NewEngine(testConfig(reduced, nil, Incremental, 1), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}

	assertPlacementsEqual(t, "warm repair vs cold reduced solve", warm, cold)
	for a := range warm.cfg.Tracks {
		for _, m := range downed {
			if n := warm.Placement(a).Models(m).Count(); n != 0 {
				t.Fatalf("track %d placed %d models on down server %d", a, n, m)
			}
		}
	}

	// Recovery: the restored geometry is bit-identical to the pre-outage
	// instance, so a forced replace matches a never-outaged cold solve.
	if err := warm.SetServersDown(downed, false); err != nil {
		t.Fatal(err)
	}
	for a := range warm.cfg.Tracks {
		if _, err := warm.Replace(a, 2); err != nil {
			t.Fatal(err)
		}
	}
	pristine, err := NewEngine(testConfig(testInstance(t, 42), nil, Incremental, 1), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	assertPlacementsEqual(t, "post-recovery replace vs pristine solve", warm, pristine)
}

func assertPlacementsEqual(t *testing.T, label string, got, want *Engine) {
	t.Helper()
	for a := range want.cfg.Tracks {
		g, w := got.Placement(a), want.Placement(a)
		for m := 0; m < w.NumServers(); m++ {
			if !g.Models(m).Equal(w.Models(m)) {
				t.Fatalf("%s: track %d: server %d holds %v, want %v",
					label, a, m, g.ModelsOn(m), w.ModelsOn(m))
			}
		}
	}
}

// runOutageTimeline drives a six-checkpoint timeline with an outage at
// checkpoint 2 and recovery at checkpoint 4, forcing a replace on both
// edges — the dynamics-level shape of the gallery's outage scenario.
func runOutageTimeline(t *testing.T, mode Mode, workers int) *Result {
	t.Helper()
	eng, err := NewEngine(testConfig(testInstance(t, 7), nil, mode, workers), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	downed := []int{1, 4}
	res := &Result{Replacements: make([]int, len(eng.cfg.Tracks))}
	for cp := 1; cp <= eng.Checkpoints(); cp++ {
		if cp == 2 || cp == 4 {
			if err := eng.SetServersDown(downed, cp == 2); err != nil {
				t.Fatal(err)
			}
			for a := range eng.cfg.Tracks {
				if _, err := eng.Replace(a, cp); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := eng.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Refresh(); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Step(cp)
		if err != nil {
			t.Fatal(err)
		}
		res.Steps = append(res.Steps, Step{
			TimeMin:  st.TimeMin,
			HitRatio: append([]float64(nil), st.HitRatio...),
			Replaced: append([]bool(nil), st.Replaced...),
		})
	}
	for a := range res.Replacements {
		res.Replacements[a] = eng.Replacements(a)
	}
	return res
}

// TestOutageTimelineModeAndWorkerAgnostic pins the outage timeline
// bit-identical between Incremental and Rebuild refreshes (Rebuild
// re-applies the down set through Instance.Rebuild) and across worker
// counts.
func TestOutageTimelineModeAndWorkerAgnostic(t *testing.T) {
	want := runOutageTimeline(t, Incremental, 1)
	assertResultsEqual(t, runOutageTimeline(t, Incremental, 4), want, "workers 4 vs 1")
	assertResultsEqual(t, runOutageTimeline(t, Rebuild, 1), want, "rebuild vs incremental")
	if want.Replacements[0] < 2 {
		t.Fatalf("forced replaces not counted: %v", want.Replacements)
	}
}
