package cachesim

import (
	"container/heap"
	"testing"
	"unsafe"

	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/trace"
)

// boxedEventHeap is the container/heap reference the hand-rolled event heap
// replaced. It lives only in this test, as the oracle for pop-order
// equivalence.
type boxedEventHeap []event

func (h boxedEventHeap) Len() int { return len(h) }
func (h boxedEventHeap) Less(a, b int) bool {
	if h[a].timeS != h[b].timeS {
		return h[a].timeS < h[b].timeS
	}
	return h[a].seq < h[b].seq
}
func (h boxedEventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *boxedEventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *boxedEventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// TestEventHeapMatchesContainerHeap pins the hand-rolled heap's pop order
// bit-identical to container/heap on randomized event sets, including
// duplicate timestamps (broken by seq) and interleaved pushes and pops —
// the access pattern Serve actually generates when radio-start events are
// pushed mid-drain.
func TestEventHeapMatchesContainerHeap(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 50; trial++ {
		var hand eventHeap
		var boxed boxedEventHeap
		seq := 0
		push := func() {
			// Coarse timestamps force frequent ties so the seq tie-break is
			// actually exercised.
			ev := event{
				timeS:  float64(src.Intn(40)) / 8,
				kind:   eventKind(1 + src.Intn(2)),
				reqIdx: seq,
				seq:    seq,
			}
			seq++
			hand.push(ev)
			heap.Push(&boxed, ev)
		}
		pop := func() {
			if len(hand) == 0 {
				return
			}
			got := hand.pop()
			want := heap.Pop(&boxed).(event)
			if got != want {
				t.Fatalf("trial %d: pop %+v, container/heap pops %+v", trial, got, want)
			}
		}
		for op := 0; op < 400; op++ {
			if src.Float64() < 0.6 {
				push()
			} else {
				pop()
			}
		}
		for len(hand) > 0 {
			pop()
		}
		if boxed.Len() != 0 {
			t.Fatalf("trial %d: reference heap has %d leftover events", trial, boxed.Len())
		}
	}
}

// TestServeSteadyStateAllocFree pins the serve hot path at zero allocations
// once the session scratch has grown to the trace's high-water mark: the
// event heap, flow pool, request states, and latency buffer must all be
// reused across Serve calls.
func TestServeSteadyStateAllocFree(t *testing.T) {
	ins, eval := buildServing(t, 83)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<30)
	p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	synth, err := trace.NewSynthesizer(240, 600)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := synth.Window(ins.Workload(), rng.New(9).Split("window"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServeSession(ins, DefaultEventConfig())
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(5)
	var serveSrc rng.Source
	for warm := 0; warm < 3; warm++ {
		if _, err := s.Serve(ins, p, tr, root.SplitIndexInto(&serveSrc, "serve", warm)); err != nil {
			t.Fatal(err)
		}
	}
	cp := 0
	if avg := testing.AllocsPerRun(5, func() {
		cp++
		if _, err := s.Serve(ins, p, tr, root.SplitIndexInto(&serveSrc, "serve", cp)); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state Serve allocates %.1f times per run, want 0", avg)
	}
}

// TestMemoryBytesSizes guards the unsafe-free struct-size constants
// MemoryBytes accounts with against the compiler's real layout.
func TestMemoryBytesSizes(t *testing.T) {
	if got := unsafe.Sizeof(reqState{}); got != unsafeSizeofReqState {
		t.Fatalf("reqState is %d bytes, accounting constant says %d", got, unsafeSizeofReqState)
	}
	if got := unsafe.Sizeof(flow{}); got != unsafeSizeofFlow {
		t.Fatalf("flow is %d bytes, accounting constant says %d", got, unsafeSizeofFlow)
	}
	if got := unsafe.Sizeof(event{}); got != unsafeSizeofEvent {
		t.Fatalf("event is %d bytes, accounting constant says %d", got, unsafeSizeofEvent)
	}
}
