// Package cachesim is a request-level serving simulator (an extension
// beyond the paper's placement optimizer): it replays a Poisson stream of
// model-download requests against a placement and a wireless instance,
// routes each request per the paper's two-case service logic (§III-A) with
// a cloud fallback, and reports hit ratios and latency percentiles. It
// exercises placements as a running system rather than as an objective
// value.
//
// Two simulators ship: Serve is the closed-form replay (each download gets
// its full link rate), and ServeTrace / ServeSession is the event-driven
// simulator, where downloads processor-share each server's spectrum so
// latency grows with instantaneous load. ServeSession owns reusable
// scratch for serving trace windows checkpoint after checkpoint — the
// serving-side counterpart of sim.FadingSession, and the measurement
// kernel of the dynamics engine's trace-driven track. Both simulators are
// deterministic in their rng.Source.
package cachesim

import (
	"fmt"
	"sort"
	"time"

	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/stats"
)

// Config parameterizes the request replay.
type Config struct {
	// RequestsPerUserPerHour is the Poisson arrival rate per user.
	RequestsPerUserPerHour float64
	// DurationS is the simulated horizon in seconds.
	DurationS float64
	// CloudRateBps is the effective per-download rate from the cloud
	// (backbone + last mile) used for cache misses. The paper motivates
	// edge caching with cloud downloads being far slower than edge.
	CloudRateBps float64
	// Fading applies an independent Rayleigh gain per request; otherwise
	// average-channel rates are used.
	Fading bool
}

// DefaultConfig returns a moderate load: 12 requests/user/hour over one
// simulated hour with a 200 Mb/s cloud path and per-request fading.
func DefaultConfig() Config {
	return Config{
		RequestsPerUserPerHour: 12,
		DurationS:              3600,
		CloudRateBps:           200e6,
		Fading:                 true,
	}
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	if c.RequestsPerUserPerHour <= 0 {
		return fmt.Errorf("cachesim: RequestsPerUserPerHour must be positive, got %v", c.RequestsPerUserPerHour)
	}
	if c.DurationS <= 0 {
		return fmt.Errorf("cachesim: DurationS must be positive, got %v", c.DurationS)
	}
	if c.CloudRateBps <= 0 {
		return fmt.Errorf("cachesim: CloudRateBps must be positive, got %v", c.CloudRateBps)
	}
	return nil
}

// Route classifies how a request was served.
type Route int

// Service routes, in decreasing preference order.
const (
	RouteDirect Route = iota + 1 // downloaded from a covering edge server
	RouteRelay                   // fetched over the backhaul to a covering server
	RouteCloud                   // cache miss: fetched from the cloud
	RouteFailed                  // user covered by no server
)

// String returns the route name.
func (r Route) String() string {
	switch r {
	case RouteDirect:
		return "direct"
	case RouteRelay:
		return "relay"
	case RouteCloud:
		return "cloud"
	case RouteFailed:
		return "failed"
	default:
		return fmt.Sprintf("route(%d)", int(r))
	}
}

// Result summarizes a serving run.
type Result struct {
	Requests    int           `json:"requests"`
	Direct      int           `json:"direct"`
	Relay       int           `json:"relay"`
	Cloud       int           `json:"cloud"`
	Failed      int           `json:"failed"`
	QoSHits     int           `json:"qosHits"`     // served within the user's deadline from the edge
	HitRatio    float64       `json:"hitRatio"`    // QoSHits / Requests
	MeanLatency time.Duration `json:"meanLatency"` // over completed downloads
	P50Latency  time.Duration `json:"p50Latency"`
	P95Latency  time.Duration `json:"p95Latency"`
	P99Latency  time.Duration `json:"p99Latency"`
}

// Serve replays a Poisson request trace against the placement.
func Serve(ins *scenario.Instance, p *placement.Placement, cfg Config, src *rng.Source) (Result, error) {
	var res Result
	if ins == nil || p == nil {
		return res, fmt.Errorf("cachesim: instance and placement are required")
	}
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	if p.NumServers() != ins.NumServers() || p.NumModels() != ins.NumModels() {
		return res, fmt.Errorf("cachesim: placement dims %dx%d, instance %dx%d",
			p.NumServers(), p.NumModels(), ins.NumServers(), ins.NumModels())
	}

	work := ins.Workload()
	meanPerUser := cfg.RequestsPerUserPerHour * cfg.DurationS / 3600

	var latencies []float64
	probRow := make([]float64, ins.NumModels())
	for k := 0; k < ins.NumUsers(); k++ {
		n := src.Poisson(meanPerUser)
		if n == 0 {
			continue
		}
		for i := range probRow {
			probRow[i] = work.Prob(k, i)
		}
		for r := 0; r < n; r++ {
			i := src.Categorical(probRow)
			res.Requests++
			route, latS := serveOne(ins, p, cfg, k, i, src)
			switch route {
			case RouteDirect:
				res.Direct++
			case RouteRelay:
				res.Relay++
			case RouteCloud:
				res.Cloud++
			case RouteFailed:
				res.Failed++
			}
			if route == RouteFailed {
				continue
			}
			latencies = append(latencies, latS)
			if (route == RouteDirect || route == RouteRelay) && latS <= work.DeadlineS(k, i) {
				res.QoSHits++
			}
		}
	}

	if res.Requests > 0 {
		res.HitRatio = float64(res.QoSHits) / float64(res.Requests)
	}
	if len(latencies) > 0 {
		res.MeanLatency = secToDur(stats.Mean(latencies))
		sort.Float64s(latencies)
		res.P50Latency = secToDur(stats.Quantile(latencies, 0.50))
		res.P95Latency = secToDur(stats.Quantile(latencies, 0.95))
		res.P99Latency = secToDur(stats.Quantile(latencies, 0.99))
	}
	return res, nil
}

// serveOne routes a single request per §III-A: prefer direct download from
// the best covering caching server; otherwise relay from any caching server
// over the backhaul; otherwise fall back to the cloud.
func serveOne(ins *scenario.Instance, p *placement.Placement, cfg Config, k, i int, src *rng.Source) (Route, float64) {
	topo := ins.Topology()
	wcfg := ins.Wireless()
	covering := topo.ServersCovering(k)
	if len(covering) == 0 {
		return RouteFailed, 0
	}
	sizeBits := 8 * float64(ins.Library().ModelSize(i))
	infer := ins.Workload().InferS(k, i)

	// Instantaneous downlink rates toward user k.
	rate := func(m int) float64 {
		gain := 1.0
		if cfg.Fading {
			gain = src.Exp()
		}
		r, err := wcfg.FadedRateBps(topo.Distance(m, k), topo.Load(m), gain)
		if err != nil {
			return 0
		}
		return r
	}

	bestDirect := 0.0
	bestAny := 0.0
	for _, m := range covering {
		r := rate(m)
		if r > bestAny {
			bestAny = r
		}
		if p.Has(m, i) && r > bestDirect {
			bestDirect = r
		}
	}
	if bestDirect > 0 {
		return RouteDirect, sizeBits/bestDirect + infer
	}
	if bestAny <= 0 {
		return RouteFailed, 0
	}
	// Any server caching the model can relay it: one word test on the
	// placement's server column instead of an M-loop.
	if p.Servers(i).Any() {
		return RouteRelay, sizeBits/wcfg.BackhaulBps + sizeBits/bestAny + infer
	}
	return RouteCloud, sizeBits/cfg.CloudRateBps + sizeBits/bestAny + infer
}

func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
