package cachesim

import (
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

func buildServing(t *testing.T, seed uint64) (*scenario.Instance, *placement.Evaluator) {
	t.Helper()
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(4), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	cfg := scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: 5, NumUsers: 12, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}
	ins, err := scenario.Generate(lib, cfg, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	return ins, eval
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.RequestsPerUserPerHour = 0 },
		func(c *Config) { c.DurationS = 0 },
		func(c *Config) { c.CloudRateBps = 0 },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("mutation %d: expected error", i)
		}
	}
}

func TestServeValidation(t *testing.T) {
	ins, _ := buildServing(t, 1)
	p := placement.NewPlacement(ins.NumServers(), ins.NumModels())
	if _, err := Serve(nil, p, DefaultConfig(), rng.New(2)); err == nil {
		t.Fatal("nil instance must error")
	}
	if _, err := Serve(ins, nil, DefaultConfig(), rng.New(2)); err == nil {
		t.Fatal("nil placement must error")
	}
	wrong := placement.NewPlacement(1, 1)
	if _, err := Serve(ins, wrong, DefaultConfig(), rng.New(2)); err == nil {
		t.Fatal("dim mismatch must error")
	}
	bad := DefaultConfig()
	bad.DurationS = -1
	if _, err := Serve(ins, p, bad, rng.New(2)); err == nil {
		t.Fatal("bad config must error")
	}
}

func TestServeEmptyPlacementAllCloud(t *testing.T) {
	ins, _ := buildServing(t, 3)
	p := placement.NewPlacement(ins.NumServers(), ins.NumModels())
	res, err := Serve(ins, p, DefaultConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests generated")
	}
	if res.Direct != 0 || res.Relay != 0 {
		t.Fatalf("empty placement served from edge: %+v", res)
	}
	if res.QoSHits != 0 || res.HitRatio != 0 {
		t.Fatalf("empty placement has hits: %+v", res)
	}
	if res.Cloud+res.Failed != res.Requests {
		t.Fatalf("accounting broken: %+v", res)
	}
}

func TestServeGoodPlacementHits(t *testing.T) {
	ins, eval := buildServing(t, 5)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<30)
	p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Serve(ins, p, DefaultConfig(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests generated")
	}
	if res.Direct == 0 {
		t.Fatalf("optimized placement served nothing directly: %+v", res)
	}
	if res.HitRatio <= 0 || res.HitRatio > 1 {
		t.Fatalf("hit ratio %v", res.HitRatio)
	}
	if res.Direct+res.Relay+res.Cloud+res.Failed != res.Requests {
		t.Fatalf("accounting broken: %+v", res)
	}
	if res.MeanLatency <= 0 || res.P50Latency <= 0 {
		t.Fatalf("latency stats missing: %+v", res)
	}
	if res.P50Latency > res.P95Latency || res.P95Latency > res.P99Latency {
		t.Fatalf("latency quantiles out of order: %+v", res)
	}
}

func TestServeHitRatioTracksPlacementQuality(t *testing.T) {
	ins, eval := buildServing(t, 7)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<30)
	good, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	empty := placement.NewPlacement(ins.NumServers(), ins.NumModels())
	cfg := DefaultConfig()
	resGood, err := Serve(ins, good, cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	resEmpty, err := Serve(ins, empty, cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if resGood.HitRatio <= resEmpty.HitRatio {
		t.Fatalf("good placement %v not above empty %v", resGood.HitRatio, resEmpty.HitRatio)
	}
}

func TestServeNoFadingDeterministicRates(t *testing.T) {
	ins, eval := buildServing(t, 9)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<30)
	p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Fading = false
	res, err := Serve(ins, p, cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Direct == 0 {
		t.Fatalf("no traffic served: %+v", res)
	}
}

func TestRouteString(t *testing.T) {
	for r, want := range map[Route]string{
		RouteDirect: "direct", RouteRelay: "relay", RouteCloud: "cloud", RouteFailed: "failed",
	} {
		if r.String() != want {
			t.Fatalf("Route(%d).String() = %q", r, r.String())
		}
	}
	if Route(42).String() == "" {
		t.Fatal("unknown route string empty")
	}
}
