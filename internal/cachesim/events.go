package cachesim

import (
	"fmt"
	"math"
	"slices"
	"time"

	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/stats"
	"trimcaching/internal/topology"
	"trimcaching/internal/trace"
	"trimcaching/internal/wireless"
)

// EventConfig parameterizes the event-driven serving simulator.
type EventConfig struct {
	// CloudRateBps is the per-download rate of the cloud fallback path.
	CloudRateBps float64
	// Fading draws a Rayleigh gain per download; otherwise average-channel
	// spectral efficiencies are used.
	Fading bool
}

// DefaultEventConfig returns a 200 Mb/s cloud path with per-download fading.
func DefaultEventConfig() EventConfig {
	return EventConfig{CloudRateBps: 200e6, Fading: true}
}

// Validate reports the first invalid field, if any.
func (c EventConfig) Validate() error {
	if c.CloudRateBps <= 0 {
		return fmt.Errorf("cachesim: CloudRateBps must be positive, got %v", c.CloudRateBps)
	}
	return nil
}

// EventResult summarizes an event-driven run. Unlike Result (the closed-form
// replay), downloads here contend for each server's spectrum: a server's
// bandwidth is processor-shared equally among its concurrently active
// downloads, so latency grows with instantaneous load.
type EventResult struct {
	Requests    int           `json:"requests"`
	Direct      int           `json:"direct"`
	Relay       int           `json:"relay"`
	Cloud       int           `json:"cloud"`
	Failed      int           `json:"failed"`
	QoSHits     int           `json:"qosHits"`
	HitRatio    float64       `json:"hitRatio"`
	MeanLatency time.Duration `json:"meanLatency"`
	P50Latency  time.Duration `json:"p50Latency"`
	P95Latency  time.Duration `json:"p95Latency"`
	P99Latency  time.Duration `json:"p99Latency"`
	// PeakConcurrency is the maximum number of simultaneous downloads
	// observed on any single server.
	PeakConcurrency int `json:"peakConcurrency"`
}

// flow is one active radio download at a server.
type flow struct {
	remainingBits float64
	// seBitsPerHz is the flow's spectral efficiency; its instantaneous rate
	// is seBitsPerHz * B / n with n flows active at the server.
	seBitsPerHz float64
	reqIdx      int
}

// serverState tracks a server's active processor-shared downloads. Flows
// are referenced by index into the session's flow pool rather than by
// pointer, so pool growth never invalidates a server's list.
type serverState struct {
	flows []int32
}

// event is a simulator event: a request arrival or a radio-phase start
// (after a backhaul or cloud prefetch hop).
type event struct {
	timeS  float64
	kind   eventKind
	reqIdx int
	seq    int // tie-breaker for determinism
}

type eventKind int

const (
	evArrival    eventKind = iota + 1 // request enters the system
	evRadioStart                      // prefetch done; radio download begins
)

// evLess orders events by (timeS, seq). seq is unique per push, so this is
// a strict total order: the pop sequence is a property of the event set, not
// of the heap implementation, which is what lets the hand-rolled heap below
// replace container/heap bit for bit.
func evLess(a, b event) bool {
	if a.timeS != b.timeS {
		return a.timeS < b.timeS
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled binary min-heap of events ordered by evLess.
// container/heap funnels every Push/Pop through an `any` box — one
// interface allocation per event on the simulator's hottest edge — so, like
// the lazy-greedy candidate heap, the sift loops are written against the
// concrete type and move values with plain copies.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	h.siftUp(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		h.siftDown(0)
	}
	return top
}

func (h eventHeap) siftUp(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	ev := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && evLess(h[c+1], h[c]) {
			c++
		}
		if !evLess(h[c], ev) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = ev
}

// reqState tracks a request through the simulator.
type reqState struct {
	route    Route
	server   int // radio server
	arrival  float64
	finished float64
	se       float64 // spectral efficiency of the radio hop
	done     bool
}

// ServeSession owns the scratch one event-driven serving run needs — the
// per-request states, per-server flow lists, event heap, and latency
// buffer — so repeated Serve calls perform no steady-state allocation
// beyond growth to the largest trace seen. The session is sized by instance
// dimensions, not bound to one instance: a session built at t = 0 serves
// every later checkpoint of a mobility timeline, whether the instance was
// delta-updated in place or rebuilt from scratch. It is how the dynamics
// engine's trace-driven measurement track amortizes serving across
// checkpoints, mirroring sim.FadingSession on the Monte-Carlo track.
//
// A session is not safe for concurrent use.
type ServeSession struct {
	cfg                             EventConfig
	numServers, numUsers, numModels int

	reqs      []reqState
	servers   []serverState
	flowPool  []flow
	h         eventHeap
	latencies []float64

	// Per-run state for the serve hot path. The event loop runs through
	// methods on the session rather than closures so the captured state
	// lives in these fields, not in per-Serve heap-allocated closure
	// environments.
	ins  *scenario.Instance
	p    *placement.Placement
	tr   *trace.Trace
	src  *rng.Source
	topo *topology.Topology
	wcfg wireless.Config
	now  float64
	seq  int
	res  EventResult
}

// NewServeSession allocates a session for instances with ins's dimensions.
func NewServeSession(ins *scenario.Instance, cfg EventConfig) (*ServeSession, error) {
	if ins == nil {
		return nil, fmt.Errorf("cachesim: instance is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ServeSession{
		cfg:        cfg,
		numServers: ins.NumServers(),
		numUsers:   ins.NumUsers(),
		numModels:  ins.NumModels(),
		servers:    make([]serverState, ins.NumServers()),
	}, nil
}

// ServeTrace runs the event-driven simulation of a request trace against a
// placement. Each server's bandwidth is shared equally among its active
// downloads (processor sharing); relayed and cloud downloads first traverse
// a fixed-rate prefetch hop, then join the radio queue of the user's best
// covering server. One-shot convenience over NewServeSession + Serve; loops
// that serve repeatedly over same-sized instances should hold a session.
func ServeTrace(ins *scenario.Instance, p *placement.Placement, tr *trace.Trace, cfg EventConfig, src *rng.Source) (EventResult, error) {
	if ins == nil {
		return EventResult{}, fmt.Errorf("cachesim: instance, placement, and trace are required")
	}
	s, err := NewServeSession(ins, cfg)
	if err != nil {
		return EventResult{}, err
	}
	return s.Serve(ins, p, tr, src)
}

// Latencies returns the per-request end-to-end latencies (seconds) of the
// most recent Serve call, sorted ascending. The slice aliases session
// scratch and is only valid until the next Serve; callers that merge
// latency buffers across sessions (the sharded engine's exact global
// quantiles) must treat it as read-only.
func (s *ServeSession) Latencies() []float64 { return s.latencies }

// MemoryBytes returns the approximate heap footprint of the session's
// retained scratch, for memory-accounting reports.
func (s *ServeSession) MemoryBytes() int64 {
	bytes := int64(cap(s.reqs)) * int64(unsafeSizeofReqState)
	bytes += int64(cap(s.flowPool)) * int64(unsafeSizeofFlow)
	bytes += int64(cap(s.h)) * int64(unsafeSizeofEvent)
	bytes += int64(cap(s.latencies)) * 8
	for m := range s.servers {
		bytes += int64(cap(s.servers[m].flows)) * 4
	}
	return bytes
}

// Struct sizes for MemoryBytes, kept as constants so the accounting needs
// no unsafe import. Guarded by a test against the real unsafe.Sizeof.
const (
	unsafeSizeofReqState = 48
	unsafeSizeofFlow     = 24
	unsafeSizeofEvent    = 32
)

// Serve replays the trace against the placement on the given instance,
// which must match the session's dimensions. The run is deterministic in
// (instance, placement, trace, src) and independent of previous Serve
// calls: all scratch is reset, and fading gains are drawn from src in
// event order.
func (s *ServeSession) Serve(ins *scenario.Instance, p *placement.Placement, tr *trace.Trace, src *rng.Source) (EventResult, error) {
	if ins == nil || p == nil || tr == nil {
		return EventResult{}, fmt.Errorf("cachesim: instance, placement, and trace are required")
	}
	if ins.NumServers() != s.numServers || ins.NumUsers() != s.numUsers || ins.NumModels() != s.numModels {
		return EventResult{}, fmt.Errorf("cachesim: instance dims %dx%dx%d, session %dx%dx%d",
			ins.NumServers(), ins.NumUsers(), ins.NumModels(), s.numServers, s.numUsers, s.numModels)
	}
	if p.NumServers() != ins.NumServers() || p.NumModels() != ins.NumModels() {
		return EventResult{}, fmt.Errorf("cachesim: placement dims %dx%d, instance %dx%d",
			p.NumServers(), p.NumModels(), ins.NumServers(), ins.NumModels())
	}
	if err := tr.Validate(ins.NumUsers(), ins.NumModels()); err != nil {
		return EventResult{}, err
	}

	s.ins, s.p, s.tr, s.src = ins, p, tr, src
	s.topo = ins.Topology()
	s.wcfg = ins.Wireless()
	s.now = 0
	s.seq = 0
	s.res = EventResult{}

	if cap(s.reqs) < len(tr.Requests) {
		s.reqs = make([]reqState, len(tr.Requests))
	}
	s.reqs = s.reqs[:len(tr.Requests)]
	for idx := range s.reqs {
		s.reqs[idx] = reqState{}
	}
	for m := range s.servers {
		s.servers[m].flows = s.servers[m].flows[:0]
	}
	// Each request opens at most one flow; pre-sizing the pool makes the
	// first run over a given trace size allocation-free too.
	if cap(s.flowPool) < len(tr.Requests) {
		s.flowPool = make([]flow, 0, len(tr.Requests))
	}
	s.flowPool = s.flowPool[:0]
	s.h = s.h[:0]
	s.latencies = s.latencies[:0]

	for idx, r := range tr.Requests {
		s.reqs[idx].arrival = r.TimeS
		s.pushEvent(r.TimeS, evArrival, idx)
	}

	for len(s.h) > 0 {
		ev := s.h.pop()
		s.advance(ev.timeS)
		switch ev.kind {
		case evArrival:
			s.arrive(ev.reqIdx, ev.timeS)
		case evRadioStart:
			s.startRadio(ev.reqIdx)
		}
	}
	// Drain remaining flows.
	s.advance(math.Inf(1))

	res := s.res
	work := ins.Workload()
	for idx := range s.reqs {
		r := &s.reqs[idx]
		if !r.done {
			continue
		}
		k := tr.Requests[idx].User
		i := tr.Requests[idx].Model
		e2e := r.finished - r.arrival + work.InferS(k, i)
		if (r.route == RouteDirect || r.route == RouteRelay) && e2e <= work.DeadlineS(k, i) {
			res.QoSHits++
		}
	}
	if res.Requests > 0 {
		res.HitRatio = float64(res.QoSHits) / float64(res.Requests)
	}
	if len(s.latencies) > 0 {
		res.MeanLatency = secToDur(stats.Mean(s.latencies))
		slices.Sort(s.latencies)
		res.P50Latency = secToDur(stats.QuantileSorted(s.latencies, 0.50))
		res.P95Latency = secToDur(stats.QuantileSorted(s.latencies, 0.95))
		res.P99Latency = secToDur(stats.QuantileSorted(s.latencies, 0.99))
	}
	// Release the per-run references; the sorted latency buffer is retained
	// for Latencies() until the next Serve.
	s.ins, s.p, s.tr, s.src, s.topo = nil, nil, nil, nil, nil
	return res, nil
}

// pushEvent enqueues an event with the next deterministic tie-break seq.
func (s *ServeSession) pushEvent(t float64, kind eventKind, idx int) {
	s.h.push(event{timeS: t, kind: kind, reqIdx: idx, seq: s.seq})
	s.seq++
}

// spectralEff computes a download's bits/s/Hz on the m→k link, with an
// optional per-download Rayleigh draw.
func (s *ServeSession) spectralEff(m, k int) float64 {
	gain := 1.0
	if s.cfg.Fading {
		gain = s.src.Exp()
	}
	snr, err := s.wcfg.SNR(s.topo.Distance(m, k), s.topo.Load(m))
	if err != nil {
		return 0
	}
	return math.Log2(1 + snr*gain)
}

// arrive routes one request: direct from the best covering cache, else a
// backhaul relay or cloud prefetch hop ahead of the radio download.
func (s *ServeSession) arrive(idx int, at float64) {
	k := s.tr.Requests[idx].User
	i := s.tr.Requests[idx].Model
	s.res.Requests++
	covering := s.topo.ServersCovering(k)
	if len(covering) == 0 {
		s.reqs[idx].route = RouteFailed
		s.res.Failed++
		return
	}
	// Pick the best covering server by spectral efficiency; prefer one that
	// caches the model (direct).
	bestSE, bestM := -1.0, -1
	bestCachedSE, bestCachedM := -1.0, -1
	for _, m := range covering {
		se := s.spectralEff(m, k)
		if se > bestSE {
			bestSE, bestM = se, m
		}
		if s.p.Has(m, i) && se > bestCachedSE {
			bestCachedSE, bestCachedM = se, m
		}
	}
	r := &s.reqs[idx]
	switch {
	case bestCachedM >= 0:
		r.route = RouteDirect
		r.server = bestCachedM
		r.se = bestCachedSE
		s.res.Direct++
		s.startRadio(idx)
	case s.p.Servers(i).Any():
		r.route = RouteRelay
		r.server = bestM
		r.se = bestSE
		s.res.Relay++
		prefetch := 8 * float64(s.ins.Library().ModelSize(i)) / s.wcfg.BackhaulBps
		s.pushEvent(at+prefetch, evRadioStart, idx)
	default:
		r.route = RouteCloud
		r.server = bestM
		r.se = bestSE
		s.res.Cloud++
		prefetch := 8 * float64(s.ins.Library().ModelSize(i)) / s.cfg.CloudRateBps
		s.pushEvent(at+prefetch, evRadioStart, idx)
	}
}

// startRadio opens the radio flow for a request at its chosen server.
func (s *ServeSession) startRadio(idx int) {
	r := &s.reqs[idx]
	i := s.tr.Requests[idx].Model
	s.flowPool = append(s.flowPool, flow{
		remainingBits: 8 * float64(s.ins.Library().ModelSize(i)),
		seBitsPerHz:   r.se,
		reqIdx:        idx,
	})
	st := &s.servers[r.server]
	st.flows = append(st.flows, int32(len(s.flowPool)-1))
	if len(st.flows) > s.res.PeakConcurrency {
		s.res.PeakConcurrency = len(st.flows)
	}
}

// complete finishes the fi-th flow of server m at time `at`, preserving the
// order of the remaining flows (the completion scan breaks rate ties by
// list position).
func (s *ServeSession) complete(m, fi int, at float64) {
	st := &s.servers[m]
	f := &s.flowPool[st.flows[fi]]
	st.flows = append(st.flows[:fi], st.flows[fi+1:]...)
	r := &s.reqs[f.reqIdx]
	r.finished = at
	r.done = true
	k := s.tr.Requests[f.reqIdx].User
	i := s.tr.Requests[f.reqIdx].Model
	lat := at - r.arrival + s.ins.Workload().InferS(k, i)
	s.latencies = append(s.latencies, lat)
}

// advance progresses all active flows from now to target, completing flows
// as they drain. Flow completions within the window are processed in time
// order per server.
func (s *ServeSession) advance(target float64) {
	for s.now < target {
		// Find the earliest flow completion across servers before target.
		bestT := target
		bestM, bestF := -1, -1
		for m := range s.servers {
			fl := s.servers[m].flows
			n := float64(len(fl))
			if n == 0 {
				continue
			}
			perFlowBw := s.wcfg.BandwidthHz / n
			for fi, id := range fl {
				f := &s.flowPool[id]
				rate := f.seBitsPerHz * perFlowBw
				if rate <= 0 {
					continue
				}
				t := s.now + f.remainingBits/rate
				if t < bestT {
					bestT, bestM, bestF = t, m, fi
				}
			}
		}
		// Drain all flows by the elapsed window.
		dt := bestT - s.now
		for m := range s.servers {
			fl := s.servers[m].flows
			n := float64(len(fl))
			if n == 0 {
				continue
			}
			perFlowBw := s.wcfg.BandwidthHz / n
			for _, id := range fl {
				f := &s.flowPool[id]
				f.remainingBits -= f.seBitsPerHz * perFlowBw * dt
				if f.remainingBits < 0 {
					f.remainingBits = 0
				}
			}
		}
		s.now = bestT
		if bestM >= 0 {
			s.complete(bestM, bestF, s.now)
		}
	}
}
