package cachesim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/stats"
	"trimcaching/internal/trace"
)

// EventConfig parameterizes the event-driven serving simulator.
type EventConfig struct {
	// CloudRateBps is the per-download rate of the cloud fallback path.
	CloudRateBps float64
	// Fading draws a Rayleigh gain per download; otherwise average-channel
	// spectral efficiencies are used.
	Fading bool
}

// DefaultEventConfig returns a 200 Mb/s cloud path with per-download fading.
func DefaultEventConfig() EventConfig {
	return EventConfig{CloudRateBps: 200e6, Fading: true}
}

// Validate reports the first invalid field, if any.
func (c EventConfig) Validate() error {
	if c.CloudRateBps <= 0 {
		return fmt.Errorf("cachesim: CloudRateBps must be positive, got %v", c.CloudRateBps)
	}
	return nil
}

// EventResult summarizes an event-driven run. Unlike Result (the closed-form
// replay), downloads here contend for each server's spectrum: a server's
// bandwidth is processor-shared equally among its concurrently active
// downloads, so latency grows with instantaneous load.
type EventResult struct {
	Requests    int           `json:"requests"`
	Direct      int           `json:"direct"`
	Relay       int           `json:"relay"`
	Cloud       int           `json:"cloud"`
	Failed      int           `json:"failed"`
	QoSHits     int           `json:"qosHits"`
	HitRatio    float64       `json:"hitRatio"`
	MeanLatency time.Duration `json:"meanLatency"`
	P50Latency  time.Duration `json:"p50Latency"`
	P95Latency  time.Duration `json:"p95Latency"`
	P99Latency  time.Duration `json:"p99Latency"`
	// PeakConcurrency is the maximum number of simultaneous downloads
	// observed on any single server.
	PeakConcurrency int `json:"peakConcurrency"`
}

// flow is one active radio download at a server.
type flow struct {
	remainingBits float64
	// seBitsPerHz is the flow's spectral efficiency; its instantaneous rate
	// is seBitsPerHz * B / n with n flows active at the server.
	seBitsPerHz float64
	reqIdx      int
}

// serverState tracks a server's active processor-shared downloads.
type serverState struct {
	flows []*flow
}

// event is a simulator event: a request arrival or a radio-phase start
// (after a backhaul or cloud prefetch hop).
type event struct {
	timeS  float64
	kind   eventKind
	reqIdx int
	seq    int // tie-breaker for determinism
}

type eventKind int

const (
	evArrival    eventKind = iota + 1 // request enters the system
	evRadioStart                      // prefetch done; radio download begins
)

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].timeS != h[b].timeS {
		return h[a].timeS < h[b].timeS
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// reqState tracks a request through the simulator.
type reqState struct {
	route    Route
	server   int // radio server
	arrival  float64
	finished float64
	se       float64 // spectral efficiency of the radio hop
	done     bool
}

// ServeSession owns the scratch one event-driven serving run needs — the
// per-request states, per-server flow lists, event heap, and latency
// buffer — so repeated Serve calls perform no steady-state allocation
// beyond growth to the largest trace seen. The session is sized by instance
// dimensions, not bound to one instance: a session built at t = 0 serves
// every later checkpoint of a mobility timeline, whether the instance was
// delta-updated in place or rebuilt from scratch. It is how the dynamics
// engine's trace-driven measurement track amortizes serving across
// checkpoints, mirroring sim.FadingSession on the Monte-Carlo track.
//
// A session is not safe for concurrent use.
type ServeSession struct {
	cfg                             EventConfig
	numServers, numUsers, numModels int

	reqs      []reqState
	servers   []serverState
	flowPool  []flow
	h         eventHeap
	latencies []float64
}

// NewServeSession allocates a session for instances with ins's dimensions.
func NewServeSession(ins *scenario.Instance, cfg EventConfig) (*ServeSession, error) {
	if ins == nil {
		return nil, fmt.Errorf("cachesim: instance is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ServeSession{
		cfg:        cfg,
		numServers: ins.NumServers(),
		numUsers:   ins.NumUsers(),
		numModels:  ins.NumModels(),
		servers:    make([]serverState, ins.NumServers()),
	}, nil
}

// ServeTrace runs the event-driven simulation of a request trace against a
// placement. Each server's bandwidth is shared equally among its active
// downloads (processor sharing); relayed and cloud downloads first traverse
// a fixed-rate prefetch hop, then join the radio queue of the user's best
// covering server. One-shot convenience over NewServeSession + Serve; loops
// that serve repeatedly over same-sized instances should hold a session.
func ServeTrace(ins *scenario.Instance, p *placement.Placement, tr *trace.Trace, cfg EventConfig, src *rng.Source) (EventResult, error) {
	if ins == nil {
		return EventResult{}, fmt.Errorf("cachesim: instance, placement, and trace are required")
	}
	s, err := NewServeSession(ins, cfg)
	if err != nil {
		return EventResult{}, err
	}
	return s.Serve(ins, p, tr, src)
}

// Serve replays the trace against the placement on the given instance,
// which must match the session's dimensions. The run is deterministic in
// (instance, placement, trace, src) and independent of previous Serve
// calls: all scratch is reset, and fading gains are drawn from src in
// event order.
func (s *ServeSession) Serve(ins *scenario.Instance, p *placement.Placement, tr *trace.Trace, src *rng.Source) (EventResult, error) {
	var res EventResult
	if ins == nil || p == nil || tr == nil {
		return res, fmt.Errorf("cachesim: instance, placement, and trace are required")
	}
	if ins.NumServers() != s.numServers || ins.NumUsers() != s.numUsers || ins.NumModels() != s.numModels {
		return res, fmt.Errorf("cachesim: instance dims %dx%dx%d, session %dx%dx%d",
			ins.NumServers(), ins.NumUsers(), ins.NumModels(), s.numServers, s.numUsers, s.numModels)
	}
	if p.NumServers() != ins.NumServers() || p.NumModels() != ins.NumModels() {
		return res, fmt.Errorf("cachesim: placement dims %dx%d, instance %dx%d",
			p.NumServers(), p.NumModels(), ins.NumServers(), ins.NumModels())
	}
	if err := tr.Validate(ins.NumUsers(), ins.NumModels()); err != nil {
		return res, err
	}
	cfg := s.cfg

	topo := ins.Topology()
	wcfg := ins.Wireless()
	if cap(s.reqs) < len(tr.Requests) {
		s.reqs = make([]reqState, len(tr.Requests))
	}
	reqs := s.reqs[:len(tr.Requests)]
	for idx := range reqs {
		reqs[idx] = reqState{}
	}
	servers := s.servers
	for m := range servers {
		servers[m].flows = servers[m].flows[:0]
	}
	// Each request opens at most one flow; pre-sizing the pool keeps the
	// *flow pointers handed to servers stable across appends.
	if cap(s.flowPool) < len(tr.Requests) {
		s.flowPool = make([]flow, 0, len(tr.Requests))
	}
	flowPool := s.flowPool[:0]

	h := s.h[:0]
	seq := 0
	push := func(t float64, kind eventKind, idx int) {
		heap.Push(&h, event{timeS: t, kind: kind, reqIdx: idx, seq: seq})
		seq++
	}
	for idx, r := range tr.Requests {
		reqs[idx].arrival = r.TimeS
		push(r.TimeS, evArrival, idx)
	}

	// spectralEff computes a download's bits/s/Hz on the m→k link, with an
	// optional per-download Rayleigh draw.
	spectralEff := func(m, k int) float64 {
		gain := 1.0
		if cfg.Fading {
			gain = src.Exp()
		}
		snr, err := wcfg.SNR(topo.Distance(m, k), topo.Load(m))
		if err != nil {
			return 0
		}
		return math.Log2(1 + snr*gain)
	}

	now := 0.0
	// advance progresses all active flows from now to target, completing
	// flows as they drain. Flow completions within the window are processed
	// in time order per server.
	latencies := s.latencies[:0]
	complete := func(m int, fi int, at float64) {
		st := &servers[m]
		f := st.flows[fi]
		st.flows = append(st.flows[:fi], st.flows[fi+1:]...)
		r := &reqs[f.reqIdx]
		r.finished = at
		r.done = true
		lat := at - r.arrival + ins.Workload().InferS(tr.Requests[f.reqIdx].User, tr.Requests[f.reqIdx].Model)
		latencies = append(latencies, lat)
	}
	advance := func(target float64) {
		for now < target {
			// Find the earliest flow completion across servers before target.
			bestT := target
			bestM, bestF := -1, -1
			for m := range servers {
				n := float64(len(servers[m].flows))
				if n == 0 {
					continue
				}
				perFlowBw := wcfg.BandwidthHz / n
				for fi, f := range servers[m].flows {
					rate := f.seBitsPerHz * perFlowBw
					if rate <= 0 {
						continue
					}
					t := now + f.remainingBits/rate
					if t < bestT {
						bestT, bestM, bestF = t, m, fi
					}
				}
			}
			// Drain all flows by the elapsed window.
			dt := bestT - now
			for m := range servers {
				n := float64(len(servers[m].flows))
				if n == 0 {
					continue
				}
				perFlowBw := wcfg.BandwidthHz / n
				for _, f := range servers[m].flows {
					f.remainingBits -= f.seBitsPerHz * perFlowBw * dt
					if f.remainingBits < 0 {
						f.remainingBits = 0
					}
				}
			}
			now = bestT
			if bestM >= 0 {
				complete(bestM, bestF, now)
			}
		}
	}

	startRadio := func(idx int) {
		r := &reqs[idx]
		i := tr.Requests[idx].Model
		st := &servers[r.server]
		flowPool = append(flowPool, flow{
			remainingBits: 8 * float64(ins.Library().ModelSize(i)),
			seBitsPerHz:   r.se,
			reqIdx:        idx,
		})
		st.flows = append(st.flows, &flowPool[len(flowPool)-1])
		if len(st.flows) > res.PeakConcurrency {
			res.PeakConcurrency = len(st.flows)
		}
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		advance(ev.timeS)
		switch ev.kind {
		case evArrival:
			idx := ev.reqIdx
			k := tr.Requests[idx].User
			i := tr.Requests[idx].Model
			res.Requests++
			covering := topo.ServersCovering(k)
			if len(covering) == 0 {
				reqs[idx].route = RouteFailed
				res.Failed++
				continue
			}
			// Pick the best covering server by spectral efficiency; prefer
			// one that caches the model (direct).
			bestSE, bestM := -1.0, -1
			bestCachedSE, bestCachedM := -1.0, -1
			for _, m := range covering {
				se := spectralEff(m, k)
				if se > bestSE {
					bestSE, bestM = se, m
				}
				if p.Has(m, i) && se > bestCachedSE {
					bestCachedSE, bestCachedM = se, m
				}
			}
			r := &reqs[idx]
			switch {
			case bestCachedM >= 0:
				r.route = RouteDirect
				r.server = bestCachedM
				r.se = bestCachedSE
				res.Direct++
				startRadio(idx)
			case p.Servers(i).Any():
				r.route = RouteRelay
				r.server = bestM
				r.se = bestSE
				res.Relay++
				prefetch := 8 * float64(ins.Library().ModelSize(i)) / wcfg.BackhaulBps
				push(ev.timeS+prefetch, evRadioStart, idx)
			default:
				r.route = RouteCloud
				r.server = bestM
				r.se = bestSE
				res.Cloud++
				prefetch := 8 * float64(ins.Library().ModelSize(i)) / cfg.CloudRateBps
				push(ev.timeS+prefetch, evRadioStart, idx)
			}
		case evRadioStart:
			startRadio(ev.reqIdx)
		}
	}
	// Drain remaining flows.
	advance(math.Inf(1))

	for idx := range reqs {
		r := &reqs[idx]
		if !r.done {
			continue
		}
		k := tr.Requests[idx].User
		i := tr.Requests[idx].Model
		e2e := r.finished - r.arrival + ins.Workload().InferS(k, i)
		if (r.route == RouteDirect || r.route == RouteRelay) && e2e <= ins.Workload().DeadlineS(k, i) {
			res.QoSHits++
		}
	}
	if res.Requests > 0 {
		res.HitRatio = float64(res.QoSHits) / float64(res.Requests)
	}
	if len(latencies) > 0 {
		res.MeanLatency = secToDur(stats.Mean(latencies))
		sort.Float64s(latencies)
		res.P50Latency = secToDur(stats.Quantile(latencies, 0.50))
		res.P95Latency = secToDur(stats.Quantile(latencies, 0.95))
		res.P99Latency = secToDur(stats.Quantile(latencies, 0.99))
	}
	// Hand the grown scratch back for the next Serve.
	s.h, s.latencies, s.flowPool = h[:0], latencies[:0], flowPool[:0]
	return res, nil
}
