package cachesim

import (
	"testing"

	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/trace"
)

func testTrace(t *testing.T, ins interface {
	NumUsers() int
	NumModels() int
}, tr *trace.Trace) {
	t.Helper()
	if err := tr.Validate(ins.NumUsers(), ins.NumModels()); err != nil {
		t.Fatal(err)
	}
}

func TestServeTraceValidation(t *testing.T) {
	ins, _ := buildServing(t, 30)
	p := placement.NewPlacement(ins.NumServers(), ins.NumModels())
	tr, err := trace.Generate(ins.Workload(), 10, 600, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ServeTrace(nil, p, tr, DefaultEventConfig(), rng.New(2)); err == nil {
		t.Fatal("nil instance must error")
	}
	if _, err := ServeTrace(ins, nil, tr, DefaultEventConfig(), rng.New(2)); err == nil {
		t.Fatal("nil placement must error")
	}
	if _, err := ServeTrace(ins, p, nil, DefaultEventConfig(), rng.New(2)); err == nil {
		t.Fatal("nil trace must error")
	}
	bad := DefaultEventConfig()
	bad.CloudRateBps = 0
	if _, err := ServeTrace(ins, p, tr, bad, rng.New(2)); err == nil {
		t.Fatal("bad config must error")
	}
	wrong := placement.NewPlacement(1, 1)
	if _, err := ServeTrace(ins, wrong, tr, DefaultEventConfig(), rng.New(2)); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestServeTraceConservation(t *testing.T) {
	ins, eval := buildServing(t, 31)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<30)
	p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(ins.Workload(), 20, 1800, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	testTrace(t, ins, tr)
	res, err := ServeTrace(ins, p, tr, DefaultEventConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(tr.Requests) {
		t.Fatalf("requests %d != trace %d", res.Requests, len(tr.Requests))
	}
	if res.Direct+res.Relay+res.Cloud+res.Failed != res.Requests {
		t.Fatalf("route accounting broken: %+v", res)
	}
	if res.QoSHits > res.Direct+res.Relay {
		t.Fatalf("more hits than edge downloads: %+v", res)
	}
	if res.PeakConcurrency < 1 {
		t.Fatalf("no concurrency observed: %+v", res)
	}
	if res.P50Latency <= 0 || res.P50Latency > res.P99Latency {
		t.Fatalf("latency stats broken: %+v", res)
	}
}

func TestServeTraceLoneDownloadRate(t *testing.T) {
	// With a single request and no fading, the download must complete at
	// the full-bandwidth rate: latency = bits/(se*B) + inference.
	ins, eval := buildServing(t, 32)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<31)
	p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find a (user, model) pair cached on a covering server.
	var user, model = -1, -1
	for k := 0; k < ins.NumUsers() && user < 0; k++ {
		for _, m := range ins.Topology().ServersCovering(k) {
			for i := 0; i < ins.NumModels(); i++ {
				if p.Has(m, i) {
					user, model = k, i
					break
				}
			}
			if user >= 0 {
				break
			}
		}
	}
	if user < 0 {
		t.Skip("no direct-servable pair in this draw")
	}
	tr := &trace.Trace{DurationS: 100, Requests: []trace.Request{{TimeS: 1, User: user, Model: model}}}
	cfg := DefaultEventConfig()
	cfg.Fading = false
	res, err := ServeTrace(ins, p, tr, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Direct != 1 {
		t.Fatalf("expected one direct download: %+v", res)
	}
	if res.MeanLatency <= 0 {
		t.Fatalf("no latency recorded: %+v", res)
	}
	// A lone flow gets the whole 400 MHz: even a ResNet-50 finishes well
	// under a second of airtime plus inference.
	if res.MeanLatency.Seconds() > 1.0 {
		t.Fatalf("lone download took %v", res.MeanLatency)
	}
}

func TestServeTraceContentionSlowsDownloads(t *testing.T) {
	// Identical trace at 1x vs duplicated requests: higher instantaneous
	// load must not reduce latency percentiles.
	ins, eval := buildServing(t, 33)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<31)
	p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	light, err := trace.Generate(ins.Workload(), 10, 900, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Heavy: every request duplicated (two users ask at the same instant).
	heavy := &trace.Trace{DurationS: light.DurationS}
	for _, r := range light.Requests {
		heavy.Requests = append(heavy.Requests, r, r)
	}
	cfg := DefaultEventConfig()
	cfg.Fading = false
	resLight, err := ServeTrace(ins, p, light, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	resHeavy, err := ServeTrace(ins, p, heavy, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if resHeavy.PeakConcurrency < resLight.PeakConcurrency {
		t.Fatalf("duplicated trace has lower concurrency: %d vs %d",
			resHeavy.PeakConcurrency, resLight.PeakConcurrency)
	}
	if resHeavy.MeanLatency < resLight.MeanLatency {
		t.Fatalf("contention reduced mean latency: %v vs %v",
			resHeavy.MeanLatency, resLight.MeanLatency)
	}
}

func TestServeTraceEmptyPlacementUsesCloud(t *testing.T) {
	ins, _ := buildServing(t, 34)
	p := placement.NewPlacement(ins.NumServers(), ins.NumModels())
	tr, err := trace.Generate(ins.Workload(), 10, 600, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ServeTrace(ins, p, tr, DefaultEventConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Direct != 0 || res.Relay != 0 {
		t.Fatalf("empty placement served from edge: %+v", res)
	}
	if res.QoSHits != 0 {
		t.Fatalf("cloud downloads counted as QoS hits: %+v", res)
	}
	if res.Cloud == 0 {
		t.Fatalf("no cloud fallbacks: %+v", res)
	}
}

func TestServeTraceDeterministic(t *testing.T) {
	ins, eval := buildServing(t, 35)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<30)
	p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(ins.Workload(), 15, 900, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	a, err := ServeTrace(ins, p, tr, DefaultEventConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServeTrace(ins, p, tr, DefaultEventConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}
