package cachesim

import (
	"testing"

	"trimcaching/internal/geom"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/trace"
)

// TestServeSessionMatchesOneShot pins the session refactor: a session
// reused across many serving windows must reproduce the one-shot ServeTrace
// bit-for-bit on every window.
func TestServeSessionMatchesOneShot(t *testing.T) {
	ins, eval := buildServing(t, 41)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<30)
	p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	synth, err := trace.NewSynthesizer(45, 600)
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewServeSession(ins, DefaultEventConfig())
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(42)
	for cp := 0; cp < 5; cp++ {
		tr, err := synth.Window(ins.Workload(), root.SplitIndex("ckpt", cp))
		if err != nil {
			t.Fatal(err)
		}
		got, err := session.Serve(ins, p, tr, root.SplitIndex("serve", cp))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ServeTrace(ins, p, tr, DefaultEventConfig(), root.SplitIndex("serve", cp))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("window %d: session result diverged from one-shot:\n%+v\nvs\n%+v", cp, got, want)
		}
	}
}

// TestServeSessionAcceptsRefreshedInstance drives the session across an
// in-place delta update and a full rebuild — the two instance refresh paths
// of the dynamics engine — and pins both against the one-shot reference.
func TestServeSessionAcceptsRefreshedInstance(t *testing.T) {
	ins, eval := buildServing(t, 43)
	caps := placement.UniformCapacities(ins.NumServers(), 1<<30)
	p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewServeSession(ins, DefaultEventConfig())
	if err != nil {
		t.Fatal(err)
	}
	synth, err := trace.NewSynthesizer(30, 600)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(44)

	// Walk every user a little and delta-update the instance in place.
	moved := make([]int, ins.NumUsers())
	pos := make([]geom.Point, ins.NumUsers())
	side := ins.Topology().Area().Side
	for k := range moved {
		moved[k] = k
		old := ins.Topology().UserPositions()[k]
		pos[k] = geom.Point{
			X: min(max(old.X+root.Uniform(-120, 120), 0), side),
			Y: min(max(old.Y+root.Uniform(-120, 120), 0), side),
		}
	}
	if _, err := ins.UpdateUsers(moved, pos); err != nil {
		t.Fatal(err)
	}
	tr, err := synth.Window(ins.Workload(), root.SplitIndex("ckpt", 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := session.Serve(ins, p, tr, root.SplitIndex("serve", 0))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ServeTrace(ins, p, tr, DefaultEventConfig(), root.SplitIndex("serve", 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("session on updated instance diverged:\n%+v\nvs\n%+v", got, want)
	}

	// A rebuilt instance (same dimensions) must be accepted too.
	rebuilt, err := ins.Rebuild(ins.Topology().UserPositions())
	if err != nil {
		t.Fatal(err)
	}
	got, err = session.Serve(rebuilt, p, tr, root.SplitIndex("serve", 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err = ServeTrace(rebuilt, p, tr, DefaultEventConfig(), root.SplitIndex("serve", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("session on rebuilt instance diverged:\n%+v\nvs\n%+v", got, want)
	}
}

func TestServeSessionDimMismatch(t *testing.T) {
	ins, _ := buildServing(t, 45)
	other, _ := buildServing(t, 46) // same dims, fine
	session, err := NewServeSession(ins, DefaultEventConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement(other.NumServers(), other.NumModels())
	tr := &trace.Trace{DurationS: 10}
	if _, err := session.Serve(other, p, tr, rng.New(1)); err != nil {
		t.Fatalf("same-dims instance rejected: %v", err)
	}
	wrong := placement.NewPlacement(ins.NumServers()+1, ins.NumModels())
	if _, err := session.Serve(ins, wrong, tr, rng.New(1)); err == nil {
		t.Fatal("mismatched placement must error")
	}
	if _, err := NewServeSession(nil, DefaultEventConfig()); err == nil {
		t.Fatal("nil instance must error")
	}
	bad := DefaultEventConfig()
	bad.CloudRateBps = 0
	if _, err := NewServeSession(ins, bad); err == nil {
		t.Fatal("bad config must error")
	}
}

// TestServeEmptyTrace pins the empty-window edge case: zero requests must
// report a zero hit ratio and zero latencies, not NaNs or a hang.
func TestServeEmptyTrace(t *testing.T) {
	ins, _ := buildServing(t, 47)
	p := placement.NewPlacement(ins.NumServers(), ins.NumModels())
	tr := &trace.Trace{DurationS: 600}
	res, err := ServeTrace(ins, p, tr, DefaultEventConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res != (EventResult{}) {
		t.Fatalf("empty trace produced non-zero result: %+v", res)
	}
}
