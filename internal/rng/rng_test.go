package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("zero seed produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("fading")
	b := parent.Split("topology")
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams with different labels should differ")
	}

	// Splitting must not depend on how much the parent has been consumed.
	p1 := New(7)
	p2 := New(7)
	p2.Uint64()
	p2.Uint64()
	c1 := p1.Split("x")
	c2 := p2.Split("x")
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("split must be position-independent")
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	parent := New(3)
	first := map[uint64]int{}
	for i := 0; i < 200; i++ {
		v := parent.SplitIndex("trial", i).Uint64()
		if prev, ok := first[v]; ok {
			t.Fatalf("streams %d and %d share first draw", prev, i)
		}
		first[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Uniform(0.5, 1.0)
	}
	mean := sum / n
	if math.Abs(mean-0.75) > 0.005 {
		t.Fatalf("Uniform(0.5,1) mean = %v, want ~0.75", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) value %d occurred %d times, expected ~10000", v, c)
		}
	}
}

func TestIntnDegenerate(t *testing.T) {
	r := New(1)
	if got := r.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d, want 0", got)
	}
	if got := r.Intn(-5); got != 0 {
		t.Fatalf("Intn(-5) = %d, want 0", got)
	}
	if got := r.Intn(1); got != 0 {
		t.Fatalf("Intn(1) = %d, want 0", got)
	}
}

func TestIntRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(29, 40)
		if v < 29 || v > 40 {
			t.Fatalf("IntRange(29,40) = %d", v)
		}
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d", got)
	}
	if got := r.IntRange(5, 3); got != 5 {
		t.Fatalf("IntRange(5,3) = %d, want lo", got)
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp() negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(37)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("shuffle produced duplicate: %v", vals)
		}
		seen[v] = true
	}
}

func TestCategorical(t *testing.T) {
	r := New(41)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("category ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	r := New(43)
	if got := r.Categorical(nil); got != 0 {
		t.Fatalf("Categorical(nil) = %d", got)
	}
	if got := r.Categorical([]float64{0, 0}); got != 0 {
		t.Fatalf("Categorical(zeros) = %d", got)
	}
}

func TestZipfInvalid(t *testing.T) {
	cases := []struct {
		n int
		s float64
	}{
		{0, 1}, {-1, 1}, {10, -0.5}, {10, math.NaN()}, {10, math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := NewZipf(c.n, c.s); err == nil {
			t.Fatalf("NewZipf(%d, %v): expected error", c.n, c.s)
		}
	}
}

func TestZipfPMFNormalized(t *testing.T) {
	for _, s := range []float64{0, 0.5, 0.8, 1.0, 2.0} {
		z, err := NewZipf(300, s)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, p := range z.PMF() {
			if p < 0 {
				t.Fatalf("s=%v: negative pmf", s)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("s=%v: pmf sums to %v", s, total)
		}
	}
}

func TestZipfMonotone(t *testing.T) {
	z, err := NewZipf(100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pmf := z.PMF()
	for i := 1; i < len(pmf); i++ {
		if pmf[i] > pmf[i-1] {
			t.Fatalf("pmf not non-increasing at %d", i)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 10; rank++ {
		if math.Abs(z.Prob(rank)-0.1) > 1e-12 {
			t.Fatalf("s=0 rank %d prob %v, want 0.1", rank, z.Prob(rank))
		}
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z, err := NewZipf(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if z.Prob(-1) != 0 || z.Prob(5) != 0 {
		t.Fatal("out-of-range ranks must have probability 0")
	}
}

func TestZipfSampleMatchesPMF(t *testing.T) {
	z, err := NewZipf(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := New(47)
	counts := make([]int, 20)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(src)]++
	}
	for rank, p := range z.PMF() {
		got := float64(counts[rank]) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("rank %d: empirical %v vs pmf %v", rank, got, p)
		}
	}
}

// Property: Sample always returns a valid rank for arbitrary seeds.
func TestZipfSampleInRangeProperty(t *testing.T) {
	z, err := NewZipf(30, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		src := New(seed)
		for i := 0; i < 50; i++ {
			r := z.Sample(src)
			if r < 0 || r >= 30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Float64 stays in [0,1) for arbitrary seeds.
func TestFloat64Property(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
