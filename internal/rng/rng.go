// Package rng provides a deterministic, splittable pseudo-random number
// generator for simulation experiments.
//
// Every experiment in this repository is an average over many random network
// topologies and channel realizations, so results must be exactly
// reproducible from a single seed. The generator is based on xoshiro256**
// seeded through splitmix64, following the reference constructions by
// Blackman and Vigna. Streams can be split hierarchically (topology stream,
// fading stream, workload stream, ...) so that adding draws to one subsystem
// never perturbs another.
package rng

import (
	"math"
	"strconv"
)

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; split independent streams per goroutine instead.
type Source struct {
	s    [4]uint64
	seed uint64 // immutable seed material, used by Split
}

// New returns a source seeded from seed via splitmix64.
func New(seed uint64) *Source {
	src := &Source{}
	src.Reseed(seed)
	return src
}

// Reseed reinitializes the receiver in place to the state New(seed) would
// produce, so long-lived loops can re-derive per-iteration streams into a
// caller-owned Source without allocating.
func (r *Source) Reseed(seed uint64) {
	r.seed = seed
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s == [4]uint64{} {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// splitmix64 advances the splitmix64 state and returns (next state, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Split derives an independent child stream identified by label. The child is
// a deterministic function of the parent's seed material and the label, not
// of the parent's current position, so subsystems can be wired up in any
// order.
func (r *Source) Split(label string) *Source {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	_, mix := splitmix64(r.seed ^ 0xa5a5a5a5deadbeef)
	return New(mix ^ h)
}

// SplitInto reseeds dst to the exact stream Split(label) would return,
// without allocating a Source, so long-lived loops can re-derive labelled
// child streams into caller-owned storage. dst is returned for convenience.
func (r *Source) SplitInto(dst *Source, label string) *Source {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	_, mix := splitmix64(r.seed ^ 0xa5a5a5a5deadbeef)
	dst.Reseed(mix ^ h)
	return dst
}

// SplitIndex derives an independent child stream for an integer index, e.g.
// one stream per Monte-Carlo trial.
func (r *Source) SplitIndex(prefix string, idx int) *Source {
	return r.Split(prefix + "/" + strconv.Itoa(idx))
}

// SplitIndexInto reseeds dst to the exact stream SplitIndex(prefix, idx)
// would return, without building the label string or allocating a Source.
// It hashes prefix, '/', and the decimal digits of idx through the same
// FNV-64 fold Split applies to the concatenated label, so the two paths are
// bit-identical. dst is returned for convenience.
func (r *Source) SplitIndexInto(dst *Source, prefix string, idx int) *Source {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(prefix); i++ {
		h ^= uint64(prefix[i])
		h *= 1099511628211
	}
	h ^= uint64('/')
	h *= 1099511628211
	// strconv.Itoa's digits, folded without materializing the string.
	var buf [20]byte
	n := len(buf)
	u := uint64(idx)
	neg := idx < 0
	if neg {
		u = uint64(-idx)
	}
	for {
		n--
		buf[n] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	if neg {
		n--
		buf[n] = '-'
	}
	for _, b := range buf[n:] {
		h ^= uint64(b)
		h *= 1099511628211
	}
	_, mix := splitmix64(r.seed ^ 0xa5a5a5a5deadbeef)
	dst.Reseed(mix ^ h)
	return dst
}

// SaltSeed deterministically derives a new seed from seed and label, so
// distinct experiment points get independent randomness from one user seed.
func SaltSeed(seed uint64, label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	_, out := splitmix64(seed ^ h)
	return out
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// IntRange returns a uniform int in [lo, hi] inclusive.
func (r *Source) IntRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed float64 with unit mean. Scale by
// the desired mean. Used for Rayleigh fading power gains |h|^2 ~ Exp(1).
func (r *Source) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Norm returns a normally distributed float64 with mean 0 and stddev 1,
// using the Marsaglia polar method.
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, via Fisher-Yates.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Poisson draws from a Poisson distribution with the given mean using
// Knuth's method for small means and a normal approximation above 30.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(mean + math.Sqrt(mean)*r.Norm()))
		if v < 0 {
			return 0
		}
		return v
	}
	limit := math.Exp(-mean)
	n := 0
	prod := r.Float64()
	for prod > limit {
		n++
		prod *= r.Float64()
	}
	return n
}

// Binomial draws the number of successes in n independent trials with
// success probability p (used to model finite-test-set accuracy noise).
func (r *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Normal approximation for large n, exact draw otherwise.
	if float64(n)*p > 50 && float64(n)*(1-p) > 50 {
		mean := float64(n) * p
		sd := math.Sqrt(float64(n) * p * (1 - p))
		v := int(math.Round(mean + sd*r.Norm()))
		if v < 0 {
			return 0
		}
		if v > n {
			return n
		}
		return v
	}
	count := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			count++
		}
	}
	return count
}

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector w. It returns len(w)-1 if rounding pushes the
// cumulative sum short of the total. An all-zero weight vector yields index 0.
func (r *Source) Categorical(w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	if total <= 0 || len(w) == 0 {
		return 0
	}
	target := r.Float64() * total
	var cum float64
	for i, v := range w {
		cum += v
		if target < cum {
			return i
		}
	}
	return len(w) - 1
}
