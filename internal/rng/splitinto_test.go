package rng

import "testing"

// TestSplitIndexIntoMatchesSplitIndex pins the allocation-free reseed path
// against the string-building one, bit for bit: same seed material, same
// label fold, same stream. The hot checkpoint loop depends on this identity
// to re-derive per-checkpoint fading streams without allocating.
func TestSplitIndexIntoMatchesSplitIndex(t *testing.T) {
	parent := New(42)
	var dst Source
	for _, prefix := range []string{"fading", "real", "", "x/y"} {
		for _, idx := range []int{0, 1, 9, 10, 123456789, -1, -987654321} {
			want := parent.SplitIndex(prefix, idx)
			got := parent.SplitIndexInto(&dst, prefix, idx)
			if got != &dst {
				t.Fatalf("SplitIndexInto must return dst")
			}
			for draw := 0; draw < 4; draw++ {
				w, g := want.Uint64(), got.Uint64()
				if w != g {
					t.Fatalf("prefix %q idx %d draw %d: %#x, want %#x", prefix, idx, draw, g, w)
				}
			}
		}
	}
}

// TestSplitIntoMatchesSplit pins the labelled variant the same way: the
// trace synthesizer re-derives its per-window arrival stream with SplitInto
// and must land on the exact stream Split would return.
func TestSplitIntoMatchesSplit(t *testing.T) {
	parent := New(42)
	var dst Source
	for _, label := range []string{"arrivals", "serve", "", "x/y", "user/17"} {
		want := parent.Split(label)
		got := parent.SplitInto(&dst, label)
		if got != &dst {
			t.Fatalf("SplitInto must return dst")
		}
		for draw := 0; draw < 4; draw++ {
			w, g := want.Uint64(), got.Uint64()
			if w != g {
				t.Fatalf("label %q draw %d: %#x, want %#x", label, draw, g, w)
			}
		}
	}
}

func TestSplitIntoAllocFree(t *testing.T) {
	parent := New(7)
	var dst Source
	if avg := testing.AllocsPerRun(100, func() {
		parent.SplitInto(&dst, "arrivals")
	}); avg != 0 {
		t.Fatalf("SplitInto allocates %.1f times per run, want 0", avg)
	}
}

func TestSplitIndexIntoAllocFree(t *testing.T) {
	parent := New(7)
	var dst Source
	idx := 0
	if avg := testing.AllocsPerRun(100, func() {
		idx++
		parent.SplitIndexInto(&dst, "fading", idx)
	}); avg != 0 {
		t.Fatalf("SplitIndexInto allocates %.1f times per run, want 0", avg)
	}
}
