package rng

import (
	"errors"
	"fmt"
	"math"
)

// ErrZipfParams reports invalid Zipf parameters.
var ErrZipfParams = errors.New("zipf: n must be >= 1 and s must be finite and non-negative")

// Zipf is a bounded Zipf distribution over ranks {0, 1, ..., n-1} with
// exponent s: P(rank) ∝ 1/(rank+1)^s. The paper draws per-user model request
// probabilities from a Zipf law over the model library (§VII-A, [43]).
type Zipf struct {
	pmf []float64
	cdf []float64
}

// NewZipf builds a bounded Zipf distribution with n ranks and exponent s.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 || math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
		return nil, fmt.Errorf("%w: n=%d s=%v", ErrZipfParams, n, s)
	}
	pmf := make([]float64, n)
	var total float64
	for i := range pmf {
		pmf[i] = 1 / math.Pow(float64(i+1), s)
		total += pmf[i]
	}
	cdf := make([]float64, n)
	var cum float64
	for i := range pmf {
		pmf[i] /= total
		cum += pmf[i]
		cdf[i] = cum
	}
	cdf[n-1] = 1
	return &Zipf{pmf: pmf, cdf: cdf}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.pmf) }

// PMF returns a copy of the probability mass function indexed by rank.
func (z *Zipf) PMF() []float64 {
	out := make([]float64, len(z.pmf))
	copy(out, z.pmf)
	return out
}

// Prob returns P(rank). Ranks outside [0, n) have probability 0.
func (z *Zipf) Prob(rank int) float64 {
	if rank < 0 || rank >= len(z.pmf) {
		return 0
	}
	return z.pmf[rank]
}

// Sample draws a rank using src by binary search over the CDF.
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
