package rng

import (
	"math"
	"testing"
)

func TestPoissonMoments(t *testing.T) {
	r := New(51)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var sum, sumSq float64
		const n = 50000
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			if v < 0 {
				t.Fatalf("negative Poisson draw %v", v)
			}
			sum += v
			sumSq += v * v
		}
		gotMean := sum / n
		gotVar := sumSq/n - gotMean*gotMean
		if math.Abs(gotMean-mean)/mean > 0.05 {
			t.Fatalf("Poisson(%v) mean %v", mean, gotMean)
		}
		// For Poisson, variance == mean.
		if math.Abs(gotVar-mean)/mean > 0.10 {
			t.Fatalf("Poisson(%v) variance %v", mean, gotVar)
		}
	}
}

func TestPoissonDegenerate(t *testing.T) {
	r := New(52)
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(53)
	cases := []struct {
		n int
		p float64
	}{
		{20, 0.3},   // exact path
		{2000, 0.4}, // normal-approximation path
	}
	for _, c := range cases {
		var sum float64
		const trials = 20000
		for i := 0; i < trials; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%v) = %d", c.n, c.p, v)
			}
			sum += float64(v)
		}
		want := float64(c.n) * c.p
		if got := sum / trials; math.Abs(got-want)/want > 0.03 {
			t.Fatalf("Binomial(%d,%v) mean %v, want ~%v", c.n, c.p, got, want)
		}
	}
}

func TestBinomialDegenerate(t *testing.T) {
	r := New(54)
	if r.Binomial(0, 0.5) != 0 || r.Binomial(-1, 0.5) != 0 {
		t.Fatal("non-positive n")
	}
	if r.Binomial(10, 0) != 0 || r.Binomial(10, -0.5) != 0 {
		t.Fatal("non-positive p")
	}
	if r.Binomial(10, 1) != 10 || r.Binomial(10, 1.5) != 10 {
		t.Fatal("p >= 1 must yield n")
	}
}

func TestSaltSeed(t *testing.T) {
	a := SaltSeed(1, "fig4a/q=0.5")
	b := SaltSeed(1, "fig4a/q=0.75")
	c := SaltSeed(2, "fig4a/q=0.5")
	if a == b || a == c {
		t.Fatal("salted seeds must differ across labels and base seeds")
	}
	if SaltSeed(1, "fig4a/q=0.5") != a {
		t.Fatal("SaltSeed must be deterministic")
	}
}

func TestZipfN(t *testing.T) {
	z, err := NewZipf(17, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 17 {
		t.Fatalf("N = %d", z.N())
	}
}
