package shard

import (
	"testing"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
)

// driveOutageTimeline runs a sharded smoke timeline with an outage before
// checkpoint 1 and recovery before checkpoint 2, forcing replaces on both
// edges, and returns the aggregated steps (copied).
func driveOutageTimeline(t *testing.T, cfg Config, seed uint64, downed []int) []Step {
	t.Helper()
	se, err := NewEngine(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	copyStep := func(st Step) Step {
		return Step{
			TimeMin:  st.TimeMin,
			HitRatio: append([]float64(nil), st.HitRatio...),
			Replaced: append([]bool(nil), st.Replaced...),
		}
	}
	steps := []Step{copyStep(se.InitialStep())}
	for cp := 1; cp <= se.Checkpoints(); cp++ {
		if cp == 1 || cp == 2 {
			if err := se.SetServersDown(downed, cp == 1); err != nil {
				t.Fatal(err)
			}
			if err := se.ForceReplace(cp); err != nil {
				t.Fatal(err)
			}
		}
		st, err := se.Checkpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, copyStep(st))
	}
	return steps
}

// TestShardOutageSingleShardMatchesDynamics pins the sharded outage seam
// at Shards = 1 against the unsharded engine driving the identical event
// schedule: SetServersDown + ForceReplace through the single cell must be
// bit-identical to dynamics.Engine.SetServersDown + Replace.
func TestShardOutageSingleShardMatchesDynamics(t *testing.T) {
	downed := []int{0, 2}
	got := driveOutageTimeline(t, smokeShardConfig(t, 1, 1, dynamics.Incremental), 7, downed)

	dc, err := dynamics.NewSmokeScaleConfig(dynamics.Incremental)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dynamics.NewEngine(dc, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{{TimeMin: 0, HitRatio: []float64{eng.Baseline(0)}, Replaced: []bool{false}}}
	for cp := 1; cp <= eng.Checkpoints(); cp++ {
		if cp == 1 || cp == 2 {
			if err := eng.SetServersDown(downed, cp == 1); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Replace(0, cp); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Refresh(); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Step(cp)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, Step{
			TimeMin:  st.TimeMin,
			HitRatio: append([]float64(nil), st.HitRatio...),
			Replaced: append([]bool(nil), st.Replaced...),
		})
	}
	sameSteps(t, "single-shard outage vs dynamics", got, want)
}

// TestShardOutageAcrossCellsDeterministic pins the multi-cell outage
// timeline bit-identical across worker counts and cell refresh modes, with
// the down set spanning both cells and surviving the recovery edge.
func TestShardOutageAcrossCellsDeterministic(t *testing.T) {
	downed := []int{0, 3}
	want := driveOutageTimeline(t, smokeShardConfig(t, 2, 1, dynamics.Incremental), 7, downed)
	sameSteps(t, "workers 4 vs 1",
		driveOutageTimeline(t, smokeShardConfig(t, 2, 4, dynamics.Incremental), 7, downed), want)
	sameSteps(t, "rebuild vs incremental",
		driveOutageTimeline(t, smokeShardConfig(t, 2, 2, dynamics.Rebuild), 7, downed), want)
	if want[1].HitRatio[0] >= want[0].HitRatio[0] {
		t.Errorf("outage did not dent the hit ratio: t0 %v, outage %v", want[0].HitRatio[0], want[1].HitRatio[0])
	}
}

// TestGrowLibraryRejectsBadInstances pins GrowLibrary's input contract.
func TestGrowLibraryRejectsBadInstances(t *testing.T) {
	cfg := smokeShardConfig(t, 2, 1, dynamics.Incremental)
	se, err := NewEngine(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := se.GrowLibrary(nil); err == nil {
		t.Error("nil instance accepted")
	}
	// An instance at the wrong user positions must be rejected: the cells
	// bind slots to the engine's tracked walk, not the instance's draw.
	if _, err := se.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	stale := cfg.Instance
	if err := se.GrowLibrary(stale); err == nil {
		t.Error("instance at stale positions accepted after a walk")
	}
	// Same positions but a shrunken library must be rejected.
	gt := stale.Topology()
	topoNow, err := gt.WithUserPositions(se.Positions())
	if err != nil {
		t.Fatal(err)
	}
	moved, err := scenario.New(topoNow, stale.Library(), stale.Workload(), stale.Wireless())
	if err != nil {
		t.Fatal(err)
	}
	if err := se.GrowLibrary(moved); err != nil {
		t.Errorf("same-size relocated instance rejected: %v", err)
	}
}
