package shard

import (
	"testing"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/geom"
	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// handoffScenario builds a 2-cell geometry in which no server's coverage
// disk crosses the x = 600 cell boundary: every user's covering set —
// and hence its direct rates, relay rate, and reachability row — lives
// entirely inside its owner cell, so the cell rows must equal the global
// rows restricted to the cell's servers bit for bit, even as users walk
// across the boundary and hand off. (With disks crossing the boundary a
// boundary user would be covered by foreign servers the owner cell does
// not model; that regime is pinned by the rebuild-reference equivalence
// instead.)
func handoffScenario(t *testing.T) (Config, *scenario.Instance) {
	t.Helper()
	const side, radius = 1200.0, 140.0
	servers := []geom.Point{
		// Cell A (x < 600): disks stay left of the boundary.
		{X: 150, Y: 200}, {X: 300, Y: 700}, {X: 430, Y: 1000}, {X: 200, Y: 480},
		// Cell B (x >= 600): disks stay right of the boundary.
		{X: 750, Y: 300}, {X: 900, Y: 800}, {X: 1050, Y: 150}, {X: 800, Y: 1000},
	}
	lib, err := libgen.GenerateLoRA(libgen.DefaultLoRAConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	w.CoverageRadiusM = radius
	w.BackhaulBps = 1e9
	wl := workload.DefaultConfig()
	wl.DeadlineMinS, wl.DeadlineMaxS = 60, 180
	wl.InferMinS, wl.InferMaxS = 1, 5

	area, err := geom.NewArea(side)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	users := area.SamplePoints(src.Split("users"), 40)
	work, err := workload.Generate(len(users), lib.NumModels(), wl, src.Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	build := func() *scenario.Instance {
		topo, err := topology.New(area, servers, users, radius)
		if err != nil {
			t.Fatal(err)
		}
		ins, err := scenario.New(topo, lib, work, w)
		if err != nil {
			t.Fatal(err)
		}
		return ins
	}
	engineIns, refIns := build(), build()
	cfg := Config{
		Instance:      engineIns,
		Capacities:    placement.UniformCapacities(len(servers), 8<<30),
		Tracks:        []dynamics.Track{{Algorithm: placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}}}},
		DurationMin:   60,
		CheckpointMin: 10,
		SlotS:         5,
		Realizations:  2,
		Shards:        2,
		SlotHeadroom:  0.1,
	}
	return cfg, refIns
}

// TestHandoffRowsMatchGlobal walks users across the cell boundary for six
// checkpoints and pins, at every checkpoint and for every user, the owner
// cell's per-user rates and reachability rows bit-identical to a global
// unsharded UpdateUsers on the same walk.
func TestHandoffRowsMatchGlobal(t *testing.T) {
	cfg, ref := handoffScenario(t)
	e, err := NewEngine(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	K, I := ref.NumUsers(), ref.NumModels()
	all := make([]int, K)
	for k := range all {
		all[k] = k
	}
	for cp := 1; cp <= e.Checkpoints(); cp++ {
		if _, err := e.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.UpdateUsers(all, e.Positions()); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < K; k++ {
			c := e.Owner(k)
			slot, ok := e.CellSlot(c, k)
			if !ok {
				t.Fatalf("cp %d: user %d not bound in its owner cell %d", cp, k, c)
			}
			ins := e.CellInstance(c)
			for j, m := range e.CellServers(c) {
				if got, want := ins.AvgRateBps(j, slot), ref.AvgRateBps(m, k); got != want {
					t.Fatalf("cp %d user %d server %d: rate %v, global %v", cp, k, m, got, want)
				}
			}
			for i := 0; i < I; i++ {
				for j, m := range e.CellServers(c) {
					if got, want := ins.Reachable(j, slot, i), ref.Reachable(m, k, i); got != want {
						t.Fatalf("cp %d user %d model %d server %d: reach %v, global %v", cp, k, i, m, got, want)
					}
				}
			}
		}
	}
	if e.Handoffs() == 0 {
		t.Error("no handoffs over six checkpoints; the walk no longer crosses the boundary")
	}
}

// TestHandoffWorkerDeterminism runs the handoff scenario under different
// cell-pool and measurement worker counts and pins identical timelines.
func TestHandoffWorkerDeterminism(t *testing.T) {
	run := func(workers, measure int) *Result {
		cfg, _ := handoffScenario(t)
		cfg.Workers = workers
		cfg.MeasureWorkers = measure
		res, err := Run(cfg, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1, 1)
	for _, wm := range [][2]int{{2, 1}, {4, 2}, {3, 4}} {
		got := run(wm[0], wm[1])
		sameSteps(t, "workers", got.Steps, base.Steps)
		if got.Handoffs != base.Handoffs || got.Grows != base.Grows {
			t.Errorf("workers %v: handoffs/grows %d/%d, want %d/%d",
				wm, got.Handoffs, got.Grows, base.Handoffs, base.Grows)
		}
	}
	if base.Handoffs == 0 {
		t.Error("no handoffs in determinism scenario")
	}
}
