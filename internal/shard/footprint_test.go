package shard

import (
	"testing"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/rng"
)

// TestShardEngineMemoryFootprint pins the sharded accounting seam: the
// engine's footprint is the sum of its cells plus coordinator state, every
// component is populated after a few checkpoints, and a coordinator-backed
// scale configuration reports no global reachability beyond what the cells
// themselves own.
func TestShardEngineMemoryFootprint(t *testing.T) {
	cfg := smokeShardConfig(t, 2, 1, dynamics.Incremental)
	e, err := NewEngine(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for cp := 1; cp <= 4; cp++ {
		if _, err := e.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	f := e.MemoryFootprint()
	for _, c := range []struct {
		name  string
		bytes int64
	}{
		{"reach", f.Reach}, {"rank", f.Rank}, {"rates", f.Rates},
		{"workload", f.Workload}, {"topology", f.Topology},
		{"evaluator", f.Evaluator}, {"measurement", f.Measurement},
		{"scratch", f.Scratch}, {"coordinator", f.Coordinator},
	} {
		if c.bytes <= 0 {
			t.Errorf("%s bytes = %d, want > 0", c.name, c.bytes)
		}
	}
	// The sharded engine owns strictly more than one cell's worth of the
	// global instance: coordinator state plus per-cell copies.
	if gt := cfg.Instance.MemoryFootprint().Total(); f.Total() <= gt {
		t.Fatalf("sharded total %d not above the global instance's %d", f.Total(), gt)
	}
}

// TestScaleBenchConfigCoordinator: the scale benchmark's global instance is
// a coordinator — the O(M·K) rates and O(K·I) reachability the cells never
// read must not be materialized at the 1M-user row.
func TestScaleBenchConfigCoordinator(t *testing.T) {
	cfg, err := NewScaleBenchConfig(600, 9, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Instance.Coordinator() {
		t.Fatal("scale bench global instance must be a coordinator")
	}
	gf := cfg.Instance.MemoryFootprint()
	if gf.Reach != 0 {
		t.Fatalf("coordinator reach bytes = %d, want 0", gf.Reach)
	}
	e, err := NewEngine(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for cp := 1; cp <= 3; cp++ {
		if _, err := e.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	f := e.MemoryFootprint()
	if f.Reach <= 0 || f.Total() <= 0 {
		t.Fatalf("scale engine footprint reach=%d total=%d, want > 0", f.Reach, f.Total())
	}
}
