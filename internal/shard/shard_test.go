package shard

import (
	"fmt"
	"math"
	"testing"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/geom"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
)

// smokeShardConfig lifts dynamics.NewSmokeScaleConfig into a sharded
// config — the CI shard smoke's scenario.
func smokeShardConfig(t *testing.T, shards, workers int, mode dynamics.Mode) Config {
	t.Helper()
	dc, err := dynamics.NewSmokeScaleConfig(dynamics.Incremental)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := FromDynamics(dc, shards)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	cfg.Mode = mode
	return cfg
}

func sameSteps(t *testing.T, label string, got, want []Step) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d steps, want %d", label, len(got), len(want))
	}
	for i := range want {
		for a := range want[i].HitRatio {
			if got[i].HitRatio[a] != want[i].HitRatio[a] {
				t.Errorf("%s: step %d track %d hit ratio %v, want %v",
					label, i, a, got[i].HitRatio[a], want[i].HitRatio[a])
			}
			if got[i].Replaced[a] != want[i].Replaced[a] {
				t.Errorf("%s: step %d track %d replaced %v, want %v",
					label, i, a, got[i].Replaced[a], want[i].Replaced[a])
			}
		}
	}
}

// TestSingleShardBitIdentical pins the Shards = 1 contract: the sharded
// engine's timeline — hit ratios, replacement flags, replacement counts —
// is bit-identical to dynamics.Run on the same configuration and seed, in
// both cell refresh modes.
func TestSingleShardBitIdentical(t *testing.T) {
	for _, mode := range []dynamics.Mode{dynamics.Incremental, dynamics.Rebuild} {
		dc, err := dynamics.NewSmokeScaleConfig(mode)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := dynamics.Run(dc, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		cfg := smokeShardConfig(t, 1, 2, mode)
		res, err := Run(cfg, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		refSteps := make([]Step, len(ref.Steps))
		for i, s := range ref.Steps {
			refSteps[i] = Step{TimeMin: s.TimeMin, HitRatio: s.HitRatio, Replaced: s.Replaced}
		}
		sameSteps(t, fmt.Sprintf("mode %d", int(mode)), res.Steps, refSteps)
		for a := range ref.Replacements {
			if res.Replacements[a] != ref.Replacements[a] {
				t.Errorf("mode %v: track %d replacements %d, want %d", mode, a, res.Replacements[a], ref.Replacements[a])
			}
		}
		if res.Handoffs != 0 || res.Grows != 0 {
			t.Errorf("mode %v: single shard reported %d handoffs, %d grows", mode, res.Handoffs, res.Grows)
		}
	}
}

// TestShardSmoke is the CI shard smoke: two cells on the smoke scenario,
// pinning (a) worker-count determinism, (b) the incremental handoff deltas
// bit-identical to the per-cell rebuild reference, and (c) the sharded
// aggregate within a coarse tolerance of the unsharded hit ratio — cells
// place and serve autonomously (boundary users lose cross-cell service),
// so the aggregates are close but not equal at this radio-coupled scale.
func TestShardSmoke(t *testing.T) {
	serial, err := Run(smokeShardConfig(t, 2, 1, dynamics.Incremental), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(smokeShardConfig(t, 2, 4, dynamics.Incremental), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	sameSteps(t, "workers", parallel.Steps, serial.Steps)

	rebuilt, err := Run(smokeShardConfig(t, 2, 2, dynamics.Rebuild), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	sameSteps(t, "rebuild reference", serial.Steps, rebuilt.Steps)

	dc, err := dynamics.NewSmokeScaleConfig(dynamics.Incremental)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dynamics.Run(dc, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Steps {
		for a := range ref.Steps[i].HitRatio {
			if d := math.Abs(serial.Steps[i].HitRatio[a] - ref.Steps[i].HitRatio[a]); d > 0.1 {
				t.Errorf("step %d track %d: sharded %v vs unsharded %v (|diff| %v > 0.1)",
					i, a, serial.Steps[i].HitRatio[a], ref.Steps[i].HitRatio[a], d)
			}
		}
	}
	if serial.Handoffs == 0 {
		t.Error("smoke timeline produced no handoffs; the scenario no longer exercises ownership transfer")
	}
}

// TestGrow forces slot-table overflow with a tiny headroom and checks the
// grown timeline still matches the per-cell rebuild reference bit for bit
// (growth is part of the deterministic plan phase, not a drift source).
func TestGrow(t *testing.T) {
	mk := func(mode dynamics.Mode) Config {
		cfg := smokeShardConfig(t, 2, 2, mode)
		cfg.SlotHeadroom = 1e-9
		cfg.DurationMin = 80
		return cfg
	}
	inc, err := Run(mk(dynamics.Incremental), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	reb, err := Run(mk(dynamics.Rebuild), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sameSteps(t, "grow", inc.Steps, reb.Steps)
	if inc.Grows != reb.Grows {
		t.Errorf("grows diverged: %d vs %d", inc.Grows, reb.Grows)
	}
	t.Logf("grows=%d handoffs=%d", inc.Grows, inc.Handoffs)
}

func TestMakeGrid(t *testing.T) {
	cases := []struct{ shards, gx, gy int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {6, 3, 2}, {8, 4, 2}, {7, 7, 1}, {9, 3, 3}, {12, 4, 3},
	}
	for _, c := range cases {
		g := makeGrid(c.shards, 1000)
		if g.gx != c.gx || g.gy != c.gy {
			t.Errorf("makeGrid(%d): %dx%d, want %dx%d", c.shards, g.gx, g.gy, c.gx, c.gy)
		}
	}
	g := makeGrid(4, 1000)
	if got := g.cellOf(geom.Point{X: 1000, Y: 1000}); got != 3 {
		t.Errorf("corner point landed in cell %d, want 3 (clamped)", got)
	}
	if got := g.cellOf(geom.Point{X: 0, Y: 0}); got != 0 {
		t.Errorf("origin landed in cell %d, want 0", got)
	}
}

func TestConfigValidate(t *testing.T) {
	base := func() Config { return smokeShardConfig(t, 2, 0, dynamics.Incremental) }

	cfg := base()
	cfg.Instance = nil
	if err := cfg.Validate(); err == nil {
		t.Error("nil instance accepted")
	}
	cfg = base()
	cfg.Shards = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero shards accepted")
	}
	cfg = base()
	cfg.MarginM = cfg.Instance.Topology().CoverageRadius() / 2
	if err := cfg.Validate(); err == nil {
		t.Error("margin below coverage radius accepted")
	}
	// A stateful trigger that implements TriggerCloner is accepted at any
	// shard count: each cell gets its own clone. One that does not must be
	// rejected at Shards > 1 — sharing its history across cells would mix
	// their measurement streams.
	cfg = base()
	cfg.Tracks = []dynamics.Track{{Algorithm: cfg.Tracks[0].Algorithm, Trigger: &dynamics.TraceTrigger{Degradation: 0.1}}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("clonable stateful trigger rejected with 2 shards: %v", err)
	}
	cfg.Tracks[0].Trigger = &statefulTrigger{}
	if err := cfg.Validate(); err == nil {
		t.Error("unclonable stateful trigger accepted with 2 shards")
	}
	cfg.Shards = 1
	if err := cfg.Validate(); err != nil {
		t.Errorf("stateful trigger rejected with 1 shard: %v", err)
	}
	cfg = base()
	cfg.Capacities = cfg.Capacities[:1]
	if err := cfg.Validate(); err == nil {
		t.Error("capacity length mismatch accepted")
	}

	// Far more shards than the deployment supports: some cell owns no
	// servers and construction must fail loudly.
	cfg = base()
	cfg.Shards = 64
	if _, err := NewEngine(cfg, rng.New(1)); err == nil {
		t.Error("64 cells over 4 servers accepted")
	}

	// A plain TraceMeasurement lifts into Config.Trace; one that is already
	// shard-specialized (UserKey or StreamSalt set) must be rejected, and so
	// must any other custom measurement.
	dc, err := dynamics.NewSmokeScaleConfig(dynamics.Incremental)
	if err != nil {
		t.Fatal(err)
	}
	dc.Measurement = &dynamics.TraceMeasurement{RequestsPerUserPerHour: 30, WindowS: 600}
	lifted, err := FromDynamics(dc, 2)
	if err != nil {
		t.Fatalf("plain trace measurement rejected: %v", err)
	}
	if lifted.Trace == nil || lifted.Trace.RequestsPerUserPerHour != 30 || lifted.Trace.WindowS != 600 {
		t.Errorf("trace measurement lifted incorrectly: %+v", lifted.Trace)
	}
	dc.Measurement = &dynamics.TraceMeasurement{RequestsPerUserPerHour: 30, WindowS: 600, StreamSalt: 7}
	if _, err := FromDynamics(dc, 2); err == nil {
		t.Error("shard-specialized trace measurement lifted silently")
	}
	dc.Measurement = fakeMeasurement{}
	if _, err := FromDynamics(dc, 2); err == nil {
		t.Error("custom measurement lifted silently")
	}
}

// statefulTrigger implements dynamics.Resetter but not TriggerCloner, so
// Validate must reject it at Shards > 1.
type statefulTrigger struct{}

func (statefulTrigger) Name() string                    { return "stateful" }
func (statefulTrigger) Fire(int, float64, float64) bool { return false }
func (statefulTrigger) Reset()                          {}

// fakeMeasurement is a custom Measurement FromDynamics cannot lift.
type fakeMeasurement struct{}

func (fakeMeasurement) Name() string { return "fake" }
func (fakeMeasurement) Measure(*placement.Evaluator, []*placement.Placement, *rng.Source) ([]float64, error) {
	return nil, nil
}

// TestBenchConfig keeps the benchmark scenario constructor honest at toy
// dimensions (the real dimensions are exercised by cmd/benchdyn -shard).
func TestBenchConfig(t *testing.T) {
	cfg, err := NewBenchConfig(60, 10, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.DurationMin = 20
	res, err := Run(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("got %d steps, want 3", len(res.Steps))
	}
	for _, s := range res.Steps {
		if !(s.HitRatio[0] >= 0 && s.HitRatio[0] <= 1) {
			t.Errorf("aggregate hit ratio %v outside [0,1]", s.HitRatio[0])
		}
	}
}
