package shard

import (
	"math"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// NewBenchConfig builds the shard-scale benchmark scenario: users walkers
// over servers edge servers caching a models-adapter LoRA library, on a
// square area scaled so the paper's server density (10 servers per km²
// with a 275 m coverage radius) is preserved — the per-cell association
// structure then looks like the paper's regardless of scale. The wireless
// side is provisioned for a model-provisioning workload at population
// scale: a 1B-parameter fp16 foundation model (2 GB, LoRA adapters at
// 0.5%) and an active probability of 2% — users re-provision models
// occasionally (roughly one download per hour with minutes of delivery),
// not continuously, so a server's spectrum is shared among its expected
// concurrent downloaders rather than its entire association set; the
// paper's pA = 0.5 at 1000+ associations per server would make every
// request miss its deadline and the benchmark degenerate. Per-server
// capacity is 3 GiB — the shared base plus roughly a hundred adapters —
// so placement stays selective. The returned config carries
// Shards = shards; callers flip only that field (and Workers) between
// comparison runs. Deterministic in the fixed seed, so every shard count
// sees the identical deployment, workload, and walk.
func NewBenchConfig(users, servers, models, shards int) (Config, error) {
	return newBenchConfig(users, servers, models, shards, topology.LayoutUniform, false)
}

// NewScaleBenchConfig is NewBenchConfig at coordinator scale — the K = 1M
// configuration of the memory-accounted scale benchmark. Two changes make
// the million-user row feasible and well-formed:
//
//   - The global instance is a coordinator (scenario.GenerateCoordinator):
//     thresholds, rank index, topology, and workload only. A full global
//     instance carries O(M·K) rates and O(K·I·words) reachability that no
//     cell ever reads — at K = 1M that is tens of gigabytes and minutes of
//     construction spent on dead state.
//   - Servers deploy on a grid (topology.LayoutGrid) instead of uniformly
//     at random, so every shard cell structurally owns at least one server
//     (NewEngine rejects empty cells; at hundreds of servers over dozens of
//     cells a uniform draw leaves a cell empty with noticeable probability).
//
// The draw differs from NewBenchConfig's (the layouts differ), so scale
// rows are not comparable point-for-point with the uniform-layout sweep;
// they share everything else — density, library, wireless, workload,
// timeline.
func NewScaleBenchConfig(users, servers, models, shards int) (Config, error) {
	return newBenchConfig(users, servers, models, shards, topology.LayoutGrid, true)
}

func newBenchConfig(users, servers, models, shards int, layout topology.Layout, coordinator bool) (Config, error) {
	lcfg := libgen.DefaultLoRAConfig(models)
	lcfg.FoundationParams = 1_000_000_000
	lib, err := libgen.GenerateLoRA(lcfg)
	if err != nil {
		return Config{}, err
	}
	w := wireless.DefaultConfig()
	w.BackhaulBps = 1e9
	w.ActiveProb = 0.02
	wl := workload.DefaultConfig()
	// LLM provisioning deadlines, as in dynamics.NewLoRAScaleConfig.
	wl.DeadlineMinS, wl.DeadlineMaxS = 60, 180
	wl.InferMinS, wl.InferMaxS = 1, 5
	side := 1000 * math.Sqrt(float64(servers)/10)
	gen := scenario.Generate
	if coordinator {
		gen = scenario.GenerateCoordinator
	}
	ins, err := gen(lib, scenario.GenConfig{
		Topology: topology.Config{AreaSideM: side, NumServers: servers, NumUsers: users, CoverageRadiusM: w.CoverageRadiusM, ServerLayout: layout},
		Wireless: w,
		Workload: wl,
	}, rng.New(1).Split("instance"))
	if err != nil {
		return Config{}, err
	}
	return Config{
		Instance:   ins,
		Capacities: placement.UniformCapacities(servers, 3<<30),
		Tracks: []dynamics.Track{{
			Algorithm: placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
			Trigger:   dynamics.ThresholdTrigger{Degradation: 0.05},
		}},
		DurationMin:   120,
		CheckpointMin: 10,
		SlotS:         5,
		Realizations:  4,
		Shards:        shards,
	}, nil
}
