// This file is the sharded engine's scenario-event surface: server outages
// mapped onto cell-local server indices, forced re-placements, queued
// global popularity revisions, and mid-timeline library growth — the same
// operations the scenario gallery drives on the unsharded engine, expressed
// against cell ownership.
package shard

import (
	"fmt"
	"sort"

	"trimcaching/internal/geom"
	"trimcaching/internal/scenario"
	"trimcaching/internal/workload"
)

// SetServersDown takes the given global servers out of (or back into)
// service. Each server belongs to exactly one cell — outages follow the
// server partition, not user ownership — so the operation becomes one
// scenario-level SetServersDown per affected cell, threaded through that
// cell's evaluator and warm-start state like any refresh. The down set is
// remembered per cell and re-applied whenever the cell is rebuilt (grows,
// library growth), so outages survive rebuilds. Call between checkpoints;
// the caller decides when placements react (typically ForceReplace).
func (e *Engine) SetServersDown(servers []int, down bool) error {
	M := e.cfg.Instance.NumServers()
	for _, m := range servers {
		if m < 0 || m >= M {
			return fmt.Errorf("shard: server %d out of range [0,%d)", m, M)
		}
	}
	for _, sh := range e.cells {
		var local []int
		for _, m := range servers {
			j := sort.SearchInts(sh.servers, m)
			if j < len(sh.servers) && sh.servers[j] == m {
				local = append(local, j)
			}
		}
		if len(local) == 0 {
			continue
		}
		sort.Ints(local)
		if err := sh.eng.SetServersDown(local, down); err != nil {
			return fmt.Errorf("shard: cell %d: %w", sh.id, err)
		}
		if down {
			merged := append(sh.downLocal, local...)
			sort.Ints(merged)
			sh.downLocal = dedupInts(merged)
		} else {
			kept := sh.downLocal[:0]
			for _, j := range sh.downLocal {
				if !containsInt(local, j) {
					kept = append(kept, j)
				}
			}
			sh.downLocal = kept
		}
	}
	return nil
}

// SetServerCapacity degrades the given global server to the given storage
// budget in bytes (negative restores its configured capacity). Each server
// belongs to exactly one cell, so the operation becomes one engine-level
// SetServerCapacity against that cell's local index, threaded through the
// cell's evaluator and warm-start state like any refresh. The override is
// remembered per cell and re-applied whenever the cell is rebuilt (grows,
// library growth), so degradations survive rebuilds. Call between
// checkpoints; the caller decides when placements react (typically
// ForceReplace — a degradation trigger never fires on a restore).
func (e *Engine) SetServerCapacity(m int, bytes int64) error {
	M := e.cfg.Instance.NumServers()
	if m < 0 || m >= M {
		return fmt.Errorf("shard: server %d out of range [0,%d)", m, M)
	}
	for _, sh := range e.cells {
		j := sort.SearchInts(sh.servers, m)
		if j >= len(sh.servers) || sh.servers[j] != m {
			continue
		}
		if err := sh.eng.SetServerCapacity(j, bytes); err != nil {
			return fmt.Errorf("shard: cell %d: %w", sh.id, err)
		}
		if bytes < 0 {
			if sh.capLocal != nil {
				sh.capLocal[j] = -1
			}
			return nil
		}
		if sh.capLocal == nil {
			sh.capLocal = make([]int64, len(sh.servers))
			for x := range sh.capLocal {
				sh.capLocal[x] = -1
			}
		}
		sh.capLocal[j] = bytes
		return nil
	}
	return fmt.Errorf("shard: server %d owned by no cell", m)
}

// ServersInRegion returns the ascending list of global servers whose
// position the region contains — the failure domain of a correlated
// regional event, identical to the unsharded engine's selector.
func (e *Engine) ServersInRegion(r geom.Region) ([]int, error) {
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	topo := e.cfg.Instance.Topology()
	var list []int
	for m := 0; m < topo.NumServers(); m++ {
		if r.Contains(topo.ServerPos(m)) {
			list = append(list, m)
		}
	}
	return list, nil
}

// SetRegionDown takes every server in the region out of (or back into)
// service in one correlated event. An empty region is a no-op.
func (e *Engine) SetRegionDown(r geom.Region, down bool) error {
	servers, err := e.ServersInRegion(r)
	if err != nil {
		return err
	}
	if len(servers) == 0 {
		return nil
	}
	return e.SetServersDown(servers, down)
}

// DegradeRegion applies one storage budget to every server in the region
// (negative restores each server's configured capacity).
func (e *Engine) DegradeRegion(r geom.Region, bytes int64) error {
	servers, err := e.ServersInRegion(r)
	if err != nil {
		return err
	}
	for _, m := range servers {
		if err := e.SetServerCapacity(m, bytes); err != nil {
			return err
		}
	}
	return nil
}

// dedupInts removes adjacent duplicates from a sorted slice, in place.
func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// containsInt reports whether sorted slice s contains v.
func containsInt(s []int, v int) bool {
	j := sort.SearchInts(s, v)
	return j < len(s) && s[j] == v
}

// ForceReplace re-places every track in every cell on the current cell
// instances and re-baselines them on checkpoint cp's replacement stream —
// the sharded analogue of calling dynamics.Engine.Replace for each track.
// The gallery uses it on outage and recovery events: a degradation trigger
// never fires on recovery (hit ratios only improve), so returning capacity
// must be re-placed onto explicitly.
func (e *Engine) ForceReplace(cp int) error {
	for _, sh := range e.cells {
		for a := range e.cfg.Tracks {
			if _, err := sh.eng.Replace(a, cp); err != nil {
				return fmt.Errorf("shard: cell %d: %w", sh.id, err)
			}
		}
	}
	return nil
}

// ReviseUserMass queues global users whose probability rows the caller
// swapped in the global workload (workload.SetUserProbRow) since the last
// checkpoint. The next Checkpoint's plan phase re-binds each queued user's
// owning slot to the new row and revises it through ReviseUsers' mass-only
// path, deduplicated with any movement or ownership change the user also
// has that checkpoint. Deadline and inference rows must stay bound — only
// popularity may change through this path.
func (e *Engine) ReviseUserMass(users []int) error {
	K := e.cfg.Instance.NumUsers()
	for _, g := range users {
		if g < 0 || g >= K {
			return fmt.Errorf("shard: user %d out of range [0,%d)", g, K)
		}
	}
	e.pendingMass = append(e.pendingMass, users...)
	return nil
}

// GrowLibrary replaces the global instance with one carrying a grown model
// library (and the matching wider workload) and rebuilds every cell over
// it at the current user positions: mid-timeline library churn, the shard
// layer's grow-on-overflow path generalized to a coordinated all-cell
// rebuild. The new instance must describe the same deployment — same
// servers, same users at the engine's current positions — with NumModels
// at least the old count; a coordinator instance (scenario.NewCoordinator)
// is the intended shape, exactly as at construction. Placement columns of
// retained models are re-solved from scratch per cell (counted into each
// track's replacement totals); per-cell down sets are re-applied. Call
// between checkpoints: the rebuilt cells keep absorbing the next
// checkpoint's walk normally.
func (e *Engine) GrowLibrary(newIns *scenario.Instance) error {
	old := e.cfg.Instance
	if newIns == nil {
		return fmt.Errorf("shard: a replacement instance is required")
	}
	if newIns.Shadowed() {
		return fmt.Errorf("shard: shadowed instances are not shardable (per-link gains are index-keyed)")
	}
	if newIns.NumServers() != old.NumServers() || newIns.NumUsers() != old.NumUsers() {
		return fmt.Errorf("shard: grown instance is %dx%d servers x users, want %dx%d",
			newIns.NumServers(), newIns.NumUsers(), old.NumServers(), old.NumUsers())
	}
	if newIns.NumModels() < old.NumModels() {
		return fmt.Errorf("shard: grown instance has %d models, fewer than the current %d",
			newIns.NumModels(), old.NumModels())
	}
	for k, p := range newIns.Topology().UserPositions() {
		if p != e.positions[k] {
			return fmt.Errorf("shard: grown instance's user %d is at %v, engine tracks %v", k, p, e.positions[k])
		}
	}
	if e.cfg.Shards > 1 {
		newIns.EnsureRankIndex()
	}
	e.cfg.Instance = newIns
	e.zeroRow = make([]float64, newIns.NumModels())
	for _, sh := range e.cells {
		locals := make([]int, 0, sh.local)
		for _, g := range sh.slots {
			if g >= 0 {
				locals = append(locals, int(g))
			}
		}
		sort.Ints(locals)
		for a := range e.cfg.Tracks {
			e.replacedBase[a] += sh.eng.Replacements(a) + 1
		}
		if err := e.buildCell(sh, locals); err != nil {
			return err
		}
	}
	return nil
}

// InitialStep returns the aggregated t = 0 step (the cells' initial
// baselines), for callers that drive Checkpoint themselves instead of Run.
// Like Checkpoint, the returned step's slices are engine-owned and reused.
func (e *Engine) InitialStep() Step { return e.baselineStep() }

// Replacements returns track a's re-placements summed over cells so far,
// including those of engines retired by grows and library growth (each
// cell's growth re-solve counts as one).
func (e *Engine) Replacements(a int) int {
	n := e.replacedBase[a]
	for _, sh := range e.cells {
		n += sh.eng.Replacements(a)
	}
	return n
}

// GlobalWorkload returns the global workload the engine reads demand from —
// the one callers swap rows in before ReviseUserMass.
func (e *Engine) GlobalWorkload() *workload.Workload { return e.cfg.Instance.Workload() }
