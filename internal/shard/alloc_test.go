package shard

import (
	"testing"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/rng"
)

// TestShardCheckpointAllocFree pins the tentpole's allocation contract on
// the sharded engine: with the cell pool and every per-cell measurement
// pinned to one worker (inline paths, no goroutine spawns) and no trigger
// firing, a steady-state checkpoint — global walk, membership plan with
// live handoffs, per-cell in-place delta refresh, fused measurement, and
// aggregation — performs zero heap allocations. The pooled handoff path is
// exactly what this exercises: departure parkings, ownership flips, and
// arrival rebinds all flow through reused batch buffers into each cell's
// ReviseUsers call. Warm-up checkpoints let the arena and batch buffers
// grow to the walk's high-water mark; growth-forced cell rebuilds would
// allocate, so the warmed scenario must not overflow during the measured
// window (deterministic in the seed — this is a regression pin, not a
// statistical test).
func TestShardCheckpointAllocFree(t *testing.T) {
	cfg := smokeShardConfig(t, 2, 1, dynamics.Incremental)
	cfg.Tracks = []dynamics.Track{{Algorithm: cfg.Tracks[0].Algorithm, Trigger: dynamics.NeverTrigger{}}}
	cfg.MeasureWorkers = 1
	e, err := NewEngine(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cp := 0
	checkpoint := func() {
		cp++
		if _, err := e.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		checkpoint()
	}
	handoffs, grows := e.Handoffs(), e.Grows()
	if avg := testing.AllocsPerRun(6, checkpoint); avg != 0 {
		t.Fatalf("steady-state sharded checkpoint allocates %.1f times per run, want 0", avg)
	}
	if e.Handoffs() == handoffs {
		t.Fatalf("measured window saw no handoffs; the pin did not exercise the handoff path")
	}
	if e.Grows() != grows {
		t.Fatalf("measured window grew a cell; pick a seed/warm-up that stays within slot headroom")
	}
}
