// Package shard scales the dynamics engine horizontally: the deployment
// area is partitioned into a grid of geographic cells, each cell gets its
// own topology slice, scenario.Instance, placement evaluator, and
// externally-driven dynamics.Engine, and checkpoints run every cell on a
// worker pool. One global mobility population walks all users (the same
// walk, bit for bit, the unsharded engine produces); per checkpoint the
// coordinator diffs each user's cell memberships and turns cross-cell
// movement into handoff deltas — a park-and-zero ReviseUsers call on the
// cell the user left, a bind-and-move call on the cell it entered — so
// every cell absorbs only the users that moved within or across its
// boundary. The global hit ratio is the request-mass-weighted aggregate of
// the per-cell fused measurements.
//
// Cell semantics: servers are partitioned by position (each cell owns the
// servers inside its rectangle) and every user is owned by exactly one
// cell (the one whose rectangle contains it), where its full request mass
// counts. A user is additionally visible to a neighboring cell as a
// zero-mass ghost while one of that cell's servers covers it, which keeps
// every owned server's association load — and hence its rates — exactly
// equal to the unsharded computation. What sharding gives up is cross-cell
// service: a boundary user cannot be served by a neighbor cell's servers
// (directly or over the backhaul relay), so the aggregate hit ratio is a
// slight underestimate of the unsharded objective unless no coverage disk
// crosses a cell boundary, in which case per-user reachability is exact.
// With Shards = 1 the single cell is the whole area and the engine's
// output is bit-identical to dynamics.Run.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"trimcaching/internal/cachesim"
	"trimcaching/internal/dynamics"
	"trimcaching/internal/geom"
	"trimcaching/internal/memprof"
	"trimcaching/internal/mobility"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/stats"
	"trimcaching/internal/topology"
	"trimcaching/internal/workload"
)

// TraceConfig selects trace-driven serving as the sharded measurement: each
// cell synthesizes its owned users' slice of the global request window
// (arrival streams keyed by global user id, so a user's request stream is
// bit-stable across cell handoffs) and serves it through its own
// cachesim.ServeSession. Checkpoints then report request-weighted global
// hit ratios and exact global latency quantiles (per-cell sorted latency
// buffers merged, not quantiles of quantiles) in Step.Serve.
type TraceConfig struct {
	// RequestsPerUserPerHour is the Poisson arrival rate per user. Zero
	// synthesizes empty windows.
	RequestsPerUserPerHour float64
	// WindowS is the serving window length in seconds; 0 means the
	// checkpoint length (CheckpointMin * 60).
	WindowS float64
	// Event configures the serving simulator; a zero CloudRateBps selects
	// cachesim.DefaultEventConfig.
	Event cachesim.EventConfig
}

// Config parameterizes one sharded timeline run. The dynamics fields
// (Tracks through Mode) mean exactly what they mean in dynamics.Config;
// measurement is the Monte-Carlo fading track unless Trace selects the
// request-level serving track.
type Config struct {
	// Instance is the global t = 0 problem instance. The engine reads its
	// topology, workload, library, and wireless configuration to build the
	// per-cell instances; it is never mutated. Shadowed instances are
	// rejected: per-link shadowing is keyed by (server, user) index pairs,
	// which slot rebinding would scramble.
	Instance *scenario.Instance
	// Capacities is the per-server storage budget, global server ids.
	Capacities []int64
	// Tracks are the algorithms evaluated side by side; every cell solves
	// its own placement per track. Stateful triggers (dynamics.Resetter
	// implementers) must also implement dynamics.TriggerCloner when
	// Shards > 1 — each cell then fires its own clone on its own measured
	// degradation; sharing one trigger's history across cells would mix
	// their measurements. A cell grown by slot-table overflow restarts its
	// triggers from a fresh clone.
	Tracks []dynamics.Track
	// DurationMin and CheckpointMin shape the timeline.
	DurationMin   int
	CheckpointMin int
	// SlotS is the mobility slot length.
	SlotS float64
	// Realizations is the fading realizations per cell measurement
	// (Monte-Carlo track only; ignored when Trace is set).
	Realizations int
	// Trace selects trace-driven serving as the measurement: per-cell
	// synthesizers and ServeSessions instead of the fading Monte-Carlo.
	// Nil keeps the fading track.
	Trace *TraceConfig
	// Mode selects how cells refresh: Incremental (default) threads
	// ReviseUsers deltas; Rebuild reconstructs each cell instance from its
	// live slot table every checkpoint — the reference path the
	// equivalence tests pin the deltas against.
	Mode dynamics.Mode
	// Shards is the number of cells; 1 delegates to a single whole-area
	// cell, bit-identical to the unsharded engine.
	Shards int
	// MarginM is the ghost-visibility prefilter band around each cell
	// rectangle. 0 means the coverage radius, the minimum that keeps owned
	// server loads exact; smaller positive values are rejected.
	MarginM float64
	// Workers bounds the cell-level worker pool; 0 means GOMAXPROCS.
	// Results are bit-identical for any worker count.
	Workers int
	// MeasureWorkers bounds each cell's fading-evaluation parallelism; 0
	// means max(1, GOMAXPROCS/Shards). Results do not depend on it.
	MeasureWorkers int
	// SlotHeadroom is the fraction of spare user slots each cell instance
	// is built with (room for arrivals before the cell must be rebuilt
	// larger); 0 means 0.25. Ignored at Shards = 1, where membership never
	// changes.
	SlotHeadroom float64
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	if c.Instance == nil {
		return fmt.Errorf("shard: instance is required")
	}
	if c.Instance.Shadowed() {
		return fmt.Errorf("shard: shadowed instances are not shardable (per-link gains are index-keyed)")
	}
	if len(c.Capacities) != c.Instance.NumServers() {
		return fmt.Errorf("shard: %d capacities for %d servers", len(c.Capacities), c.Instance.NumServers())
	}
	if len(c.Tracks) == 0 {
		return fmt.Errorf("shard: at least one track is required")
	}
	for a, tr := range c.Tracks {
		if tr.Algorithm == nil {
			return fmt.Errorf("shard: track %d has no algorithm", a)
		}
		if _, stateful := tr.Trigger.(dynamics.Resetter); stateful && c.Shards > 1 {
			if _, cloneable := tr.Trigger.(dynamics.TriggerCloner); !cloneable {
				return fmt.Errorf("shard: track %d has a stateful trigger without CloneTrigger; cells cannot share its history", a)
			}
		}
	}
	if c.DurationMin <= 0 || c.CheckpointMin <= 0 || c.DurationMin < c.CheckpointMin {
		return fmt.Errorf("shard: bad timeline %d/%d min", c.DurationMin, c.CheckpointMin)
	}
	if c.SlotS <= 0 {
		return fmt.Errorf("shard: SlotS must be positive")
	}
	if c.Trace == nil && c.Realizations <= 0 {
		return fmt.Errorf("shard: Realizations must be positive")
	}
	if c.Trace != nil {
		if c.Trace.RequestsPerUserPerHour < 0 {
			return fmt.Errorf("shard: Trace.RequestsPerUserPerHour must be >= 0, got %v", c.Trace.RequestsPerUserPerHour)
		}
		if c.Trace.WindowS < 0 {
			return fmt.Errorf("shard: Trace.WindowS must be >= 0, got %v", c.Trace.WindowS)
		}
	}
	if c.Mode != dynamics.Incremental && c.Mode != dynamics.Rebuild {
		return fmt.Errorf("shard: unknown mode %d", int(c.Mode))
	}
	if c.Shards <= 0 {
		return fmt.Errorf("shard: Shards must be positive, got %d", c.Shards)
	}
	if r := c.Instance.Topology().CoverageRadius(); c.MarginM != 0 && c.MarginM < r {
		return fmt.Errorf("shard: margin %v below coverage radius %v breaks load exactness", c.MarginM, r)
	}
	return nil
}

// FromDynamics lifts an unsharded dynamics configuration into a sharded
// one, so the two engines can run the same scenario side by side. A nil
// Measurement lifts to the fading Monte-Carlo track and a
// *dynamics.TraceMeasurement to the trace-driven serving track; any other
// measurement is rejected rather than dropped — silently measuring
// something other than what the caller configured would poison comparisons.
func FromDynamics(dc dynamics.Config, shards int) (Config, error) {
	var tc *TraceConfig
	switch m := dc.Measurement.(type) {
	case nil:
	case *dynamics.TraceMeasurement:
		if m.UserKey != nil || m.StreamSalt != 0 {
			return Config{}, fmt.Errorf("shard: TraceMeasurement with a custom UserKey or StreamSalt is not liftable (the sharded engine derives both per cell)")
		}
		tc = &TraceConfig{
			RequestsPerUserPerHour: m.RequestsPerUserPerHour,
			WindowS:                m.WindowS,
			Event:                  m.Event,
		}
	default:
		return Config{}, fmt.Errorf("shard: Measurement %q is not liftable", dc.Measurement.Name())
	}
	return Config{
		Instance:       dc.Instance,
		Capacities:     dc.Capacities,
		Tracks:         dc.Tracks,
		DurationMin:    dc.DurationMin,
		CheckpointMin:  dc.CheckpointMin,
		SlotS:          dc.SlotS,
		Realizations:   dc.Realizations,
		Trace:          tc,
		Mode:           dc.Mode,
		Shards:         shards,
		MeasureWorkers: dc.Workers,
	}, nil
}

// grid is the cell partition of the square area: gx × gy rectangles, cell
// id = cy*gx + cx.
type grid struct {
	gx, gy int
	cw, ch float64
}

// makeGrid factors shards into the squarest gx × gy split of the area.
func makeGrid(shards int, side float64) grid {
	gx, gy := shards, 1
	for d := 2; d*d <= shards; d++ {
		if shards%d == 0 {
			gx, gy = shards/d, d
		}
	}
	return grid{gx: gx, gy: gy, cw: side / float64(gx), ch: side / float64(gy)}
}

func clampCell(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// cellOf returns the cell owning position p.
func (g grid) cellOf(p geom.Point) int {
	cx := clampCell(int(p.X/g.cw), g.gx)
	cy := clampCell(int(p.Y/g.ch), g.gy)
	return cy*g.gx + cx
}

// candidates returns the inclusive cell index ranges whose margin-expanded
// rectangles can contain p.
func (g grid) candidates(p geom.Point, margin float64) (cx0, cx1, cy0, cy1 int) {
	cx0 = clampCell(int((p.X-margin)/g.cw), g.gx)
	cx1 = clampCell(int((p.X+margin)/g.cw), g.gx)
	cy0 = clampCell(int((p.Y-margin)/g.ch), g.gy)
	cy1 = clampCell(int((p.Y+margin)/g.ch), g.gy)
	return
}

// inBand reports whether p lies within cell c's margin-expanded rectangle.
func (g grid) inBand(c int, p geom.Point, margin float64) bool {
	cx, cy := c%g.gx, c/g.gx
	return p.X >= float64(cx)*g.cw-margin && p.X <= float64(cx+1)*g.cw+margin &&
		p.Y >= float64(cy)*g.ch-margin && p.Y <= float64(cy+1)*g.ch+margin
}

// ref is one (cell, slot) binding of a user.
type ref struct {
	cell, slot int32
}

// cell is one shard: a server slice, a slot table over the locally visible
// users, and an externally-driven dynamics engine on the cell instance.
type cell struct {
	id        int
	servers   []int // global server ids, ascending
	serverPts []geom.Point
	caps      []int64
	src       *rng.Source

	eng  *dynamics.Engine
	work *workload.Workload

	slots []int32 // slot -> global user id, -1 free
	free  []int32 // free-slot stack
	local int     // bound slots

	// downLocal lists the cell's out-of-service servers (local indices,
	// ascending). Maintained by Engine.SetServersDown and re-applied on
	// every rebuild, so outages survive grows.
	downLocal []int

	// capLocal maps local server index -> degraded storage budget in bytes,
	// -1 when the server runs at its configured capacity. nil until the
	// first degradation touches the cell. Maintained by
	// Engine.SetServerCapacity and re-applied on every rebuild — both to
	// the fresh cell instance and to the rebuilt engine's live capacity
	// vector — so partial-capacity degradations survive grows while the
	// pristine caps stay the restore target.
	capLocal []int64

	// Per-checkpoint batches, built by the serial plan phase and consumed
	// by the parallel refresh. pending* deduplicate by slot with an epoch
	// stamp: a slot parked and rebound in the same checkpoint keeps one
	// batch entry, overwritten (moves) or upgraded (revisions) in place.
	// Revisions carry a level — mass-only (the probability row swapped:
	// ownership flips and parkings) or full (all rows rebound: arrivals) —
	// split into ReviseUsers' massOnly/revised lists at apply time.
	revTouch     []int  // slots with any pending revision, deduplicated
	revLevel     []int8 // slot -> revLevelMass or revLevelFull, epoch-gated
	revised      []int  // apply-time scratch: full revisions
	massOnly     []int  // apply-time scratch: probability-row revisions
	moved        []int
	movedPos     []geom.Point
	pendingMove  []int32 // slot -> index into moved, epoch-gated
	moveEpoch    []int32
	revEpoch     []int32
	epoch        int32
	overflow     []int32 // users that found no free slot: grow the cell
	fresh        bool    // rebuilt this checkpoint: skip ApplyExternal
	lastStep     dynamics.Step
	lastMass     float64
	lastBaseline []float64

	// Trace-mode serving state: the cell's trace measurement plus
	// cell-owned copies of the last checkpoint's per-track window stats and
	// sorted latency buffers (the measurement's scratch is overwritten
	// every Measure; the aggregate reads these after the parallel phase).
	traceMeas *dynamics.TraceMeasurement
	lastServe []cachesim.EventResult
	lastLats  [][]float64
}

// Revision levels: a mass-only revision swapped just the probability row
// (thresholds untouched); a full revision rebound all three rows.
const (
	revLevelMass = int8(1)
	revLevelFull = int8(2)
)

// Step is one aggregated checkpoint of a sharded timeline.
type Step struct {
	// TimeMin is minutes since the start.
	TimeMin float64 `json:"timeMin"`
	// HitRatio is, per track, the request-mass-weighted aggregate of the
	// per-cell hit ratios (with one cell, the cell's hit ratio verbatim).
	HitRatio []float64 `json:"hitRatio"`
	// Replaced reports, per track, whether any cell re-placed here.
	Replaced []bool `json:"replaced"`
	// Serve is, per track, the request-level serving aggregate of this
	// checkpoint's measurement windows — counts summed over cells, the hit
	// ratio request-weighted (ΣQoSHits/ΣRequests), and the latency
	// quantiles exact (computed on the merge of the cells' sorted latency
	// buffers, not quantiles of per-cell quantiles). Nil unless the engine
	// runs the trace-driven track (Config.Trace). With one cell the cell's
	// EventResult passes through verbatim.
	Serve []cachesim.EventResult `json:"serve,omitempty"`
}

// Result is a completed sharded timeline.
type Result struct {
	// Steps holds one entry per checkpoint, including t = 0.
	Steps []Step
	// Replacements counts each track's re-placements summed over cells.
	Replacements []int
	// Handoffs counts ownership changes (a user's owner cell changing).
	Handoffs int
	// Grows counts cell rebuilds forced by slot-table overflow.
	Grows int
	// Cells is the number of cells (= Config.Shards).
	Cells int
}

// Engine is a running sharded timeline.
type Engine struct {
	cfg    Config
	src    *rng.Source
	grid   grid
	margin float64
	radius float64
	park   geom.Point

	pop       *mobility.Population
	walkSrc   *rng.Source
	positions []geom.Point

	owner []int32 // per user: owning cell
	refs  [][]ref // per user: cells where locally visible, with slot

	cells   []*cell
	workers int

	slotsPerCheckpoint int
	checkpoints        int

	replacedBase []int // replacements absorbed from engines retired by grows
	handoffs     int
	grows        int

	zeroRow  []float64
	refBuf   []ref // plan-phase scratch for one user's new refs
	headroom float64

	// pendingMass queues global users whose probability rows the caller
	// swapped in the global workload (ReviseUserMass); the next plan()
	// drains it into per-cell mass-only revisions after the membership pass.
	pendingMass []int

	planScratch []int     // plan-phase localCells backing, reused
	aggStep     Step      // aggregate's reused result; valid until the next call
	aggNum      []float64 // aggregate's weighted-sum scratch

	// Trace-mode aggregation scratch: the per-track serve aggregates and
	// the k-way merge of the cells' sorted latency buffers, reused across
	// checkpoints.
	aggServe []cachesim.EventResult
	mergeBuf []float64
	mergeIdx []int
}

// NewEngine validates the configuration, partitions servers into cells,
// builds every cell's slot table, instance, and engine (including the
// t = 0 placements and baselines), and wires the global mobility
// population from the same "mobility"/"walk" streams the unsharded engine
// uses — so user trajectories are identical between the two for one seed.
// With Shards = 1 the cell engine also draws its measurement streams from
// src itself, making the whole timeline bit-identical to dynamics.Run;
// with more cells, cell c measures from src.SplitIndex("cell", c).
func NewEngine(cfg Config, src *rng.Source) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gt := cfg.Instance.Topology()
	side := gt.Area().Side
	radius := gt.CoverageRadius()
	margin := cfg.MarginM
	if margin == 0 {
		margin = radius
	}
	headroom := cfg.SlotHeadroom
	if headroom <= 0 {
		headroom = 0.25
	}
	e := &Engine{
		cfg:                cfg,
		src:                src,
		grid:               makeGrid(cfg.Shards, side),
		margin:             margin,
		radius:             radius,
		park:               geom.Point{X: -(side + 4*radius), Y: -(side + 4*radius)},
		positions:          gt.UserPositions(),
		owner:              make([]int32, gt.NumUsers()),
		refs:               make([][]ref, gt.NumUsers()),
		workers:            cfg.Workers,
		slotsPerCheckpoint: int(float64(cfg.CheckpointMin*60)/cfg.SlotS + 0.5),
		checkpoints:        cfg.DurationMin / cfg.CheckpointMin,
		replacedBase:       make([]int, len(cfg.Tracks)),
		zeroRow:            make([]float64, cfg.Instance.NumModels()),
		headroom:           headroom,
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.workers > cfg.Shards {
		e.workers = cfg.Shards
	}

	// Server partition by position.
	e.cells = make([]*cell, cfg.Shards)
	for c := range e.cells {
		e.cells[c] = &cell{id: c}
	}
	for m := 0; m < gt.NumServers(); m++ {
		c := e.cells[e.grid.cellOf(gt.ServerPos(m))]
		c.servers = append(c.servers, m)
		c.serverPts = append(c.serverPts, gt.ServerPos(m))
		c.caps = append(c.caps, cfg.Capacities[m])
	}
	for c, sh := range e.cells {
		if len(sh.servers) == 0 {
			return nil, fmt.Errorf("shard: cell %d owns no servers; use fewer shards or a denser deployment", c)
		}
		switch {
		case cfg.Shards == 1:
			sh.src = src
		case cfg.Trace != nil:
			// Trace mode shares the global seed across cells on purpose: the
			// per-checkpoint chain "fading"/cp → "arrivals" → "user"/globalID
			// is then cell-independent, so a user's arrival stream survives
			// handoffs bit for bit. Serving fades are decorrelated per cell
			// through the measurement's StreamSalt instead.
			sh.src = src
		default:
			sh.src = src.SplitIndex("cell", c)
		}
	}

	if cfg.Shards > 1 {
		// The global rank index is every cell provider's copy source (see
		// buildCell). Construction now builds it eagerly; this call is a
		// no-op safety net for instances from older construction paths.
		cfg.Instance.EnsureRankIndex()
	}

	// Mobility: the same global walk the unsharded engine performs.
	pop, err := mobility.NewPopulation(gt.Area(), e.positions, src.Split("mobility"))
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	e.pop = pop
	e.walkSrc = src.Split("walk")

	// Initial memberships and slot tables.
	locals := make([][]int, cfg.Shards)
	for k := range e.positions {
		e.owner[k] = int32(e.grid.cellOf(e.positions[k]))
		for _, c := range e.localCells(e.positions[k], int(e.owner[k]), nil) {
			locals[c] = append(locals[c], k)
		}
	}
	for c, sh := range e.cells {
		if err := e.buildCell(sh, locals[c]); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// localCells returns, ascending, the cells where a user at p is locally
// visible: its owner plus every cell with a server covering p. buf is an
// optional reusable backing slice.
func (e *Engine) localCells(p geom.Point, owner int, buf []int) []int {
	out := buf[:0]
	cx0, cx1, cy0, cy1 := e.grid.candidates(p, e.margin)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			c := cy*e.grid.gx + cx
			if c == owner {
				out = append(out, c)
				continue
			}
			for _, sp := range e.cells[c].serverPts {
				if sp.Dist(p) <= e.radius {
					out = append(out, c)
					break
				}
			}
		}
	}
	return out
}

// buildCell (re)constructs one cell from scratch for the given locally
// visible users (ascending): an aliased slot workload (owned users carry
// their real probability rows, ghosts a shared zero row, spare slots are
// fully inert), a topology over the cell's servers and slot positions, a
// fresh instance, and an externally-driven dynamics engine, which solves
// the cell's t = 0 placements and measures their baselines. User refs are
// (re)pointed at the new slots.
func (e *Engine) buildCell(sh *cell, locals []int) error {
	ins := e.cfg.Instance
	gw := ins.Workload()
	spares := 0
	if e.cfg.Shards > 1 {
		spares = int(float64(len(locals))*e.headroom) + 4
	}
	slots := len(locals) + spares
	if slots == 0 {
		slots = 1 // topology.New requires at least one user
	}
	work, err := workload.NewAliased(slots, ins.NumModels())
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	slotPts := make([]geom.Point, slots)
	sh.slots = make([]int32, slots)
	sh.free = sh.free[:0]
	for s := range sh.slots {
		sh.slots[s] = -1
		slotPts[s] = e.park
	}
	for s, g := range locals {
		prob := e.zeroRow
		if int(e.owner[g]) == sh.id {
			prob = gw.ProbRow(g)
		}
		if err := work.SetUserRows(s, prob, gw.DeadlineRow(g), gw.InferRow(g)); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		slotPts[s] = e.positions[g]
		sh.slots[s] = int32(g)
		e.setRef(g, sh.id, s)
	}
	for s := slots - 1; s >= len(locals); s-- {
		sh.free = append(sh.free, int32(s))
	}
	sh.local = len(locals)

	topo, err := topology.New(ins.Topology().Area(), sh.serverPts, slotPts, e.radius)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	// A bound slot's QoS thresholds equal its global user's, so its rank
	// rows are a copy of the global rank index rather than an O(I log I)
	// sort — both at construction, where the rank index is now built
	// eagerly for the fused kernel's rank-prefix enumeration, and on slot
	// rebinds, the handoff path's hot spot. The provider is threaded
	// through NewRanked so it serves the construction-time build too; it
	// reads only immutable global rows and this cell's own slot table
	// (mutated serially in plan), so parallel cells are race-free. Unbound
	// (parked) slots fall back to the sort.
	var provider scenario.RankProvider
	if e.cfg.Shards > 1 {
		provider = func(slot int, do []int32, dv []float64, ro []int32, rv []float64) bool {
			g := sh.slots[slot]
			if g < 0 {
				return false
			}
			gdo, gdv, gro, grv := ins.UserRankRows(int(g))
			copy(do, gdo)
			copy(dv, gdv)
			copy(ro, gro)
			copy(rv, grv)
			return true
		}
	}
	cellIns, err := scenario.NewRanked(topo, ins.Library(), work, ins.Wireless(), provider)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	// Outages survive rebuilds: re-apply the cell's down set before the
	// engine's t = 0 solve, so a grown cell's initial placement is already
	// over the reduced server set.
	if len(sh.downLocal) > 0 {
		if _, err := cellIns.SetServersDown(sh.downLocal, true); err != nil {
			return fmt.Errorf("shard: cell %d: %w", sh.id, err)
		}
	}
	// Degradations survive rebuilds the same way: the fresh instance gets
	// the reduced budgets before the engine's t = 0 solve, the engine solves
	// over the degraded capacity vector, and the pristine caps ride along as
	// the restore target.
	liveCaps := sh.caps
	if sh.capLocal != nil {
		liveCaps = append([]int64(nil), sh.caps...)
		for j, bytes := range sh.capLocal {
			if bytes < 0 {
				continue
			}
			liveCaps[j] = bytes
			if _, err := cellIns.SetServerCapacity(j, 8*bytes); err != nil {
				return fmt.Errorf("shard: cell %d: %w", sh.id, err)
			}
		}
	}
	measureWorkers := e.cfg.MeasureWorkers
	if measureWorkers <= 0 {
		// Divide the CPU budget by the cells actually running concurrently —
		// the effective cell-pool width — not by the cell count: a
		// Workers:1 engine over 8 shards runs cells serially, so each cell's
		// measurement may use the whole budget, and an explicit Workers pin
		// caps the budget itself.
		budget := runtime.GOMAXPROCS(0)
		if e.cfg.Workers > 0 && e.cfg.Workers < budget {
			budget = e.cfg.Workers
		}
		measureWorkers = budget / e.workers
		if measureWorkers < 1 {
			measureWorkers = 1
		}
	}
	// Stateful triggers are cloned per cell (fresh history; see
	// Config.Tracks). A grown cell passes through here again, so its
	// triggers restart from an empty measurement window — the rebuilt
	// engine re-baselines anyway.
	tracks := e.cfg.Tracks
	if e.cfg.Shards > 1 {
		for a := range tracks {
			if _, ok := tracks[a].Trigger.(dynamics.TriggerCloner); ok {
				cloned := make([]dynamics.Track, len(e.cfg.Tracks))
				copy(cloned, e.cfg.Tracks)
				for b := range cloned {
					if tc, ok := cloned[b].Trigger.(dynamics.TriggerCloner); ok {
						cloned[b].Trigger = tc.CloneTrigger()
					}
				}
				tracks = cloned
				break
			}
		}
	}
	sh.traceMeas = nil
	var meas dynamics.Measurement
	if e.cfg.Trace != nil {
		windowS := e.cfg.Trace.WindowS
		if windowS == 0 {
			windowS = float64(e.cfg.CheckpointMin) * 60
		}
		tm := &dynamics.TraceMeasurement{
			RequestsPerUserPerHour: e.cfg.Trace.RequestsPerUserPerHour,
			WindowS:                windowS,
			Event:                  e.cfg.Trace.Event,
			// Cell 0 keeps the unsalted serving stream, so a Shards=1 run
			// (and cell 0 of any run) serves bit-identically to the
			// unsharded trace track.
			StreamSalt: sh.id,
		}
		if e.cfg.Shards > 1 {
			// Slot → global id for handoff-stable arrival streams; ghosts
			// (owned elsewhere) and parked slots synthesize nothing, so each
			// global request is served by exactly one cell. The closure reads
			// this cell's slot table and the global owner map, both mutated
			// only in the serial plan phase — race-free under parallel cells,
			// the same argument as the rank provider above.
			tm.UserKey = func(slot int) (int, bool) {
				g := sh.slots[slot]
				return int(g), g >= 0 && int(e.owner[g]) == sh.id
			}
		}
		sh.traceMeas = tm
		meas = tm
	}
	eng, err := dynamics.NewEngine(dynamics.Config{
		Instance:           cellIns,
		Capacities:         liveCaps,
		BaselineCapacities: sh.caps,
		Tracks:             tracks,
		DurationMin:        e.cfg.DurationMin,
		CheckpointMin:      e.cfg.CheckpointMin,
		SlotS:              e.cfg.SlotS,
		Realizations:       e.cfg.Realizations,
		Workers:            measureWorkers,
		Mode:               e.cfg.Mode,
		Measurement:        meas,
		ExternalMobility:   true,
	}, sh.src)
	if err != nil {
		return fmt.Errorf("shard: cell %d: %w", sh.id, err)
	}
	sh.work = work
	sh.eng = eng
	if sh.traceMeas != nil {
		// Keep the t = 0 baseline window's serve stats for the first
		// aggregate (NewEngine's baseline Measure recorded them).
		sh.captureServe()
	}
	sh.pendingMove = make([]int32, slots)
	sh.revLevel = make([]int8, slots)
	sh.moveEpoch = make([]int32, slots)
	sh.revEpoch = make([]int32, slots)
	sh.lastBaseline = make([]float64, len(e.cfg.Tracks))
	for a := range e.cfg.Tracks {
		sh.lastBaseline[a] = eng.Baseline(a)
	}
	return nil
}

// captureServe copies the cell's last recorded per-track serve stats out
// of the measurement scratch (overwritten every Measure) into cell-owned
// buffers the aggregate reads after the parallel phase.
func (sh *cell) captureServe() {
	res := sh.traceMeas.LastResults()
	sh.lastServe = append(sh.lastServe[:0], res...)
	for len(sh.lastLats) < len(res) {
		sh.lastLats = append(sh.lastLats, nil)
	}
	for a := range res {
		sh.lastLats[a] = append(sh.lastLats[a][:0], sh.traceMeas.LastLatencies(a)...)
	}
}

// setRef points user g's binding for cell c at slot s, replacing an
// existing ref for c if present.
func (e *Engine) setRef(g, c, s int) {
	for i := range e.refs[g] {
		if e.refs[g][i].cell == int32(c) {
			e.refs[g][i].slot = int32(s)
			return
		}
	}
	e.refs[g] = append(e.refs[g], ref{cell: int32(c), slot: int32(s)})
}

// Checkpoints returns the number of checkpoints after t = 0.
func (e *Engine) Checkpoints() int { return e.checkpoints }

// Cells returns the number of cells.
func (e *Engine) Cells() int { return len(e.cells) }

// CellServers returns cell c's global server ids, ascending. Read-only.
func (e *Engine) CellServers(c int) []int { return e.cells[c].servers }

// CellInstance returns cell c's current instance (test and inspection
// hook; treat as read-only).
func (e *Engine) CellInstance(c int) *scenario.Instance { return e.cells[c].eng.Instance() }

// CellSlot returns the slot of user g in cell c, if locally visible there.
func (e *Engine) CellSlot(c, g int) (int, bool) {
	for _, r := range e.refs[g] {
		if int(r.cell) == c {
			return int(r.slot), true
		}
	}
	return 0, false
}

// Owner returns the cell currently owning user g.
func (e *Engine) Owner(g int) int { return int(e.owner[g]) }

// Positions returns a copy of the current global user positions.
func (e *Engine) Positions() []geom.Point {
	return append([]geom.Point(nil), e.positions...)
}

// Handoffs returns the ownership changes so far.
func (e *Engine) Handoffs() int { return e.handoffs }

// Grows returns the overflow-forced cell rebuilds so far.
func (e *Engine) Grows() int { return e.grows }

// aggregate folds the cells' last steps into one Step: per track, the
// request-mass-weighted mean of the per-cell hit ratios (each cell's
// instance TotalMass is exactly its owned request mass — ghost and spare
// rows are zero). A single cell passes its hit ratio through untouched,
// keeping Shards = 1 bit-identical to the unsharded engine.
//
// The returned step's slices are engine-owned and reused: valid until the
// next aggregate (Checkpoint) call. Callers that keep steps copy the
// slices (Run does).
func (e *Engine) aggregate(timeMin float64) Step {
	nt := len(e.cfg.Tracks)
	if cap(e.aggStep.HitRatio) < nt {
		e.aggStep.HitRatio = make([]float64, nt)
		e.aggStep.Replaced = make([]bool, nt)
		e.aggNum = make([]float64, nt)
	}
	step := Step{
		TimeMin:  timeMin,
		HitRatio: e.aggStep.HitRatio[:nt],
		Replaced: e.aggStep.Replaced[:nt],
	}
	if e.cfg.Trace != nil {
		if cap(e.aggServe) < nt {
			e.aggServe = make([]cachesim.EventResult, nt)
		}
		step.Serve = e.aggServe[:nt]
		for a := range step.Serve {
			step.Serve[a] = e.mergeServe(a)
		}
	}
	if len(e.cells) == 1 {
		copy(step.HitRatio, e.cells[0].lastStep.HitRatio)
		copy(step.Replaced, e.cells[0].lastStep.Replaced)
		return step
	}
	num := e.aggNum[:nt]
	for a := range num {
		num[a] = 0
		step.HitRatio[a] = 0
		step.Replaced[a] = false
	}
	var den float64
	for _, sh := range e.cells {
		// Replacement flags aggregate regardless of mass: a cell can
		// re-place (e.g. on a periodic trigger) while momentarily owning
		// no request mass.
		for a := range step.Replaced {
			if sh.lastStep.Replaced[a] {
				step.Replaced[a] = true
			}
		}
		mass := sh.lastMass
		if mass <= 0 {
			continue
		}
		den += mass
		for a := range num {
			num[a] += sh.lastStep.HitRatio[a] * mass
		}
	}
	if den > 0 {
		for a := range num {
			step.HitRatio[a] = num[a] / den
		}
	}
	return step
}

// mergeServe folds the cells' recorded serving windows for track a into one
// global EventResult: request counters sum (each request is synthesized and
// served by exactly one cell), the hit ratio is the request-weighted
// ΣQoSHits/ΣRequests, and the latency quantiles are exact — the per-cell
// sorted latency buffers are k-way merged into one engine-owned buffer and
// the quantiles read from it, never quantiles-of-quantiles. Peak concurrency
// takes the max over cells, which is exact because cells partition the
// servers. A single cell passes its window through verbatim, keeping
// Shards = 1 bit-identical to the unsharded TraceMeasurement.
func (e *Engine) mergeServe(a int) cachesim.EventResult {
	if len(e.cells) == 1 {
		sh := e.cells[0]
		if a < len(sh.lastServe) {
			return sh.lastServe[a]
		}
		return cachesim.EventResult{}
	}
	var res cachesim.EventResult
	total := 0
	for _, sh := range e.cells {
		if a >= len(sh.lastServe) {
			continue
		}
		r := sh.lastServe[a]
		res.Requests += r.Requests
		res.Direct += r.Direct
		res.Relay += r.Relay
		res.Cloud += r.Cloud
		res.Failed += r.Failed
		res.QoSHits += r.QoSHits
		if r.PeakConcurrency > res.PeakConcurrency {
			res.PeakConcurrency = r.PeakConcurrency
		}
		if a < len(sh.lastLats) {
			total += len(sh.lastLats[a])
		}
	}
	if res.Requests > 0 {
		res.HitRatio = float64(res.QoSHits) / float64(res.Requests)
	}
	if total == 0 {
		return res
	}
	if cap(e.mergeBuf) < total {
		e.mergeBuf = make([]float64, 0, total)
	}
	if cap(e.mergeIdx) < len(e.cells) {
		e.mergeIdx = make([]int, len(e.cells))
	}
	merged := e.mergeBuf[:0]
	idx := e.mergeIdx[:len(e.cells)]
	for c := range idx {
		idx[c] = 0
	}
	// K-way merge of the per-cell sorted buffers. Cell counts are small
	// (≤ 8 in every benchmark), so the linear min-scan beats a heap.
	var sum float64
	for len(merged) < total {
		best, bestC := math.Inf(1), -1
		for c, sh := range e.cells {
			if a >= len(sh.lastLats) || idx[c] >= len(sh.lastLats[a]) {
				continue
			}
			if v := sh.lastLats[a][idx[c]]; bestC < 0 || v < best {
				best, bestC = v, c
			}
		}
		if bestC < 0 {
			break
		}
		idx[bestC]++
		merged = append(merged, best)
		sum += best
	}
	e.mergeBuf = merged
	n := len(merged)
	if n == 0 {
		return res
	}
	res.MeanLatency = secToDur(sum / float64(n))
	res.P50Latency = secToDur(stats.QuantileSorted(merged, 0.50))
	res.P95Latency = secToDur(stats.QuantileSorted(merged, 0.95))
	res.P99Latency = secToDur(stats.QuantileSorted(merged, 0.99))
	return res
}

// secToDur converts seconds to a time.Duration with the same float op the
// serving simulator uses, so merged quantiles round identically.
func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// baselineStep assembles the t = 0 step from the cells' initial baselines.
func (e *Engine) baselineStep() Step {
	for _, sh := range e.cells {
		sh.lastStep.TimeMin = 0
		sh.lastStep.HitRatio = append(sh.lastStep.HitRatio[:0], sh.lastBaseline...)
		sh.lastStep.Replaced = sh.lastStep.Replaced[:0]
		for range e.cfg.Tracks {
			sh.lastStep.Replaced = append(sh.lastStep.Replaced, false)
		}
		sh.lastMass = sh.eng.Instance().TotalMass()
	}
	return e.aggregate(0)
}

// Checkpoint advances one checkpoint: walk all users, plan and apply the
// membership diffs, refresh and measure every cell on the worker pool, and
// aggregate. cp counts from 1. The returned step's slices are engine-owned
// and reused (see aggregate); callers that keep steps copy them.
func (e *Engine) Checkpoint(cp int) (Step, error) {
	for s := 0; s < e.slotsPerCheckpoint; s++ {
		if err := e.pop.Step(e.cfg.SlotS, e.walkSrc); err != nil {
			return Step{}, fmt.Errorf("shard: %w", err)
		}
	}
	e.pop.PositionsInto(e.positions)
	if err := e.plan(); err != nil {
		return Step{}, err
	}
	if err := e.runCells(cp); err != nil {
		return Step{}, err
	}
	return e.aggregate(float64(cp * e.cfg.CheckpointMin)), nil
}

// plan is the serial membership pass: for every user (ascending, so batch
// order — and hence every downstream float reduction — is deterministic)
// diff its old cell refs against the cells its new position is visible
// from, emitting per-cell movement and revision batches. Oversubscribed
// cells are rebuilt ("grown") with a larger slot table before the parallel
// phase.
func (e *Engine) plan() error {
	for _, sh := range e.cells {
		sh.revTouch = sh.revTouch[:0]
		sh.moved = sh.moved[:0]
		sh.movedPos = sh.movedPos[:0]
		sh.overflow = sh.overflow[:0]
		sh.epoch++
	}
	for k := range e.positions {
		pos := e.positions[k]
		oldOwner := int(e.owner[k])
		newOwner := e.grid.cellOf(pos)
		newLocal := e.localCells(pos, newOwner, e.planScratch)
		e.planScratch = newLocal
		e.refBuf = e.refBuf[:0]

		for _, r := range e.refs[k] {
			sh := e.cells[r.cell]
			// Visibility hysteresis: a user becomes local when a cell
			// server covers it (newLocal) but stays local until it exits
			// the cell's whole margin band. Uncovered band residents add
			// nothing to loads, mass, or measurement (zero-mass skip) —
			// while churning the slot table only at band boundaries, not
			// at every coverage-circle crossing.
			still := e.grid.inBand(int(r.cell), pos, e.margin)
			for _, c := range newLocal {
				if c == int(r.cell) {
					still = true
					break
				}
			}
			if !still {
				// Departure: park the slot and zero its request mass. The
				// deadline rows stay bound — a parked slot has no coverage,
				// so its reach rows are zero under any thresholds, and the
				// next binding rebinds all rows anyway.
				if err := sh.work.SetUserProbRow(int(r.slot), e.zeroRow); err != nil {
					return fmt.Errorf("shard: %w", err)
				}
				sh.revise(int(r.slot), revLevelMass)
				sh.move(int(r.slot), e.park)
				sh.slots[r.slot] = -1
				sh.free = append(sh.free, r.slot)
				sh.local--
				continue
			}
			// Still local: move, and swap the probability row on ownership
			// transitions (owned -> ghost or ghost -> owned). Thresholds are
			// untouched, so these are mass-only revisions.
			wasOwner := int(r.cell) == oldOwner
			isOwner := int(r.cell) == newOwner
			if wasOwner != isOwner {
				prob := e.zeroRow
				if isOwner {
					prob = e.cfg.Instance.Workload().ProbRow(k)
				}
				if err := sh.work.SetUserProbRow(int(r.slot), prob); err != nil {
					return fmt.Errorf("shard: %w", err)
				}
				sh.revise(int(r.slot), revLevelMass)
			}
			sh.move(int(r.slot), pos)
			e.refBuf = append(e.refBuf, r)
		}
		// Arrivals: cells newly visible.
		for _, c := range newLocal {
			known := false
			for _, r := range e.refBuf {
				if int(r.cell) == c {
					known = true
					break
				}
			}
			if known {
				continue
			}
			sh := e.cells[c]
			if len(sh.free) == 0 {
				sh.overflow = append(sh.overflow, int32(k))
				continue
			}
			slot := sh.free[len(sh.free)-1]
			sh.free = sh.free[:len(sh.free)-1]
			sh.slots[slot] = int32(k)
			sh.local++
			prob := e.zeroRow
			if c == newOwner {
				prob = e.cfg.Instance.Workload().ProbRow(k)
			}
			gw := e.cfg.Instance.Workload()
			if err := sh.work.SetUserRows(int(slot), prob, gw.DeadlineRow(k), gw.InferRow(k)); err != nil {
				return fmt.Errorf("shard: %w", err)
			}
			sh.revise(int(slot), revLevelFull)
			sh.move(int(slot), pos)
			e.refBuf = append(e.refBuf, ref{cell: int32(c), slot: slot})
		}
		if newOwner != oldOwner {
			e.handoffs++
			e.owner[k] = int32(newOwner)
		}
		e.refs[k] = append(e.refs[k][:0], e.refBuf...)
	}
	// Grow oversubscribed cells: rebuild with every currently bound user
	// plus the overflow, ascending, and fresh headroom.
	for _, sh := range e.cells {
		if len(sh.overflow) == 0 {
			continue
		}
		locals := make([]int, 0, sh.local+len(sh.overflow))
		for _, g := range sh.slots {
			if g >= 0 {
				locals = append(locals, int(g))
			}
		}
		for _, g := range sh.overflow {
			locals = append(locals, int(g))
		}
		sort.Ints(locals)
		for a := range e.cfg.Tracks {
			e.replacedBase[a] += sh.eng.Replacements(a)
		}
		if err := e.buildCell(sh, locals); err != nil {
			return err
		}
		sh.fresh = true
		e.grows++
	}
	// Drain queued mass revisions (ReviseUserMass) after the membership
	// pass, so a queued user that also moved, flipped ownership, or arrived
	// this checkpoint dedups into the same slot batches. Cell rows alias the
	// global buffers, so a global row swap must be re-bound per owning slot;
	// ghost slots stay on the shared zero row, and freshly rebuilt cells
	// already bound the live rows.
	if len(e.pendingMass) > 0 {
		gw := e.cfg.Instance.Workload()
		for _, g := range e.pendingMass {
			for _, r := range e.refs[g] {
				sh := e.cells[r.cell]
				if sh.fresh || int(r.cell) != int(e.owner[g]) {
					continue
				}
				if err := sh.work.SetUserProbRow(int(r.slot), gw.ProbRow(g)); err != nil {
					return fmt.Errorf("shard: %w", err)
				}
				sh.revise(int(r.slot), revLevelMass)
			}
		}
		e.pendingMass = e.pendingMass[:0]
	}
	return nil
}

// move records a pending slot move, overwriting an earlier move of the
// same slot within this checkpoint (a parked slot rebound to an arrival).
func (sh *cell) move(slot int, pos geom.Point) {
	if sh.moveEpoch[slot] == sh.epoch {
		sh.movedPos[sh.pendingMove[slot]] = pos
		return
	}
	sh.moveEpoch[slot] = sh.epoch
	sh.pendingMove[slot] = int32(len(sh.moved))
	sh.moved = append(sh.moved, slot)
	sh.movedPos = append(sh.movedPos, pos)
}

// revise records a pending slot revision at most once per checkpoint,
// upgrading mass-only to full when both happen (a slot parked and rebound
// to a different user); only the final row binding matters to ReviseUsers.
func (sh *cell) revise(slot int, level int8) {
	if sh.revEpoch[slot] == sh.epoch {
		if level > sh.revLevel[slot] {
			sh.revLevel[slot] = level
		}
		return
	}
	sh.revEpoch[slot] = sh.epoch
	sh.revLevel[slot] = level
	sh.revTouch = append(sh.revTouch, slot)
}

// runCells refreshes and steps every cell on the worker pool. Cells are
// independent (private instances, evaluators, and measurement scratch;
// shared state is read-only), so the pool is a pure wall-clock lever:
// results are bit-identical for any worker count. A single-worker engine
// steps the cells inline — no channel, no goroutines — so the Workers:1
// steady-state checkpoint allocates nothing.
func (e *Engine) runCells(cp int) error {
	if e.workers <= 1 {
		for _, sh := range e.cells {
			if err := e.runCell(sh, cp); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				if err := e.runCell(e.cells[c], cp); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for c := range e.cells {
		next <- c
	}
	close(next)
	wg.Wait()
	return firstErr
}

// runCell applies one cell's pending batches and steps its engine.
func (e *Engine) runCell(sh *cell, cp int) error {
	if sh.fresh {
		sh.fresh = false
	} else if len(sh.moved) > 0 || len(sh.revTouch) > 0 {
		sh.revised = sh.revised[:0]
		sh.massOnly = sh.massOnly[:0]
		for _, slot := range sh.revTouch {
			if sh.revLevel[slot] == revLevelFull {
				sh.revised = append(sh.revised, slot)
			} else {
				sh.massOnly = append(sh.massOnly, slot)
			}
		}
		if err := sh.eng.ApplyExternal(sh.revised, sh.massOnly, sh.moved, sh.movedPos); err != nil {
			return fmt.Errorf("shard: cell %d: %w", sh.id, err)
		}
	}
	st, err := sh.eng.Step(cp)
	if err != nil {
		return fmt.Errorf("shard: cell %d: %w", sh.id, err)
	}
	// Step's slices are engine-owned and reused; keep cell-owned copies.
	sh.lastStep.TimeMin = st.TimeMin
	sh.lastStep.HitRatio = append(sh.lastStep.HitRatio[:0], st.HitRatio...)
	sh.lastStep.Replaced = append(sh.lastStep.Replaced[:0], st.Replaced...)
	sh.lastMass = sh.eng.Instance().TotalMass()
	if sh.traceMeas != nil {
		sh.captureServe()
	}
	return nil
}

// Run drives the whole timeline and aggregates per-checkpoint steps.
func (e *Engine) Run() (*Result, error) {
	res := &Result{
		Steps:        make([]Step, 0, e.checkpoints+1),
		Replacements: make([]int, len(e.cfg.Tracks)),
		Cells:        len(e.cells),
	}
	res.Steps = append(res.Steps, copyStep(e.baselineStep()))
	for cp := 1; cp <= e.checkpoints; cp++ {
		step, err := e.Checkpoint(cp)
		if err != nil {
			return nil, err
		}
		// Checkpoint's slices are engine-owned and reused; the result keeps
		// its own copies.
		res.Steps = append(res.Steps, copyStep(step))
	}
	for a := range res.Replacements {
		res.Replacements[a] = e.replacedBase[a]
		for _, sh := range e.cells {
			res.Replacements[a] += sh.eng.Replacements(a)
		}
	}
	res.Handoffs = e.handoffs
	res.Grows = e.grows
	return res, nil
}

// copyStep deep-copies a step whose slices alias engine-owned scratch.
func copyStep(st Step) Step {
	return Step{
		TimeMin:  st.TimeMin,
		HitRatio: append([]float64(nil), st.HitRatio...),
		Replaced: append([]bool(nil), st.Replaced...),
		Serve:    append([]cachesim.EventResult(nil), st.Serve...),
	}
}

// unsafeSizeofEventResult is unsafe.Sizeof(cachesim.EventResult{}), kept as
// a constant so memprof needs no unsafe import; a test guards the value.
const unsafeSizeofEventResult = 96

// MemoryFootprint returns the sharded engine's memory accounting: the sum
// of every cell's engine breakdown plus the cells' slot tables and batch
// scratch, with the coordinator's own state — the global instance (its
// whole footprint: topology, workload, and, for full instances, rank and
// reach state no cell reads), the membership maps, and the plan-phase
// scratch — under Coordinator. Build the global instance with
// scenario.NewCoordinator to keep that component to the topology, workload,
// and rank index alone.
func (e *Engine) MemoryFootprint() memprof.Footprint {
	var f memprof.Footprint
	for _, sh := range e.cells {
		f.Add(sh.eng.MemoryFootprint())
		var cellScratch int64
		cellScratch += int64(cap(sh.servers))*8 + int64(cap(sh.serverPts))*16 + int64(cap(sh.caps))*8
		cellScratch += int64(cap(sh.downLocal))*8 + int64(cap(sh.capLocal))*8
		cellScratch += int64(cap(sh.slots)+cap(sh.free)+cap(sh.pendingMove)+cap(sh.moveEpoch)+cap(sh.revEpoch)) * 4
		cellScratch += int64(cap(sh.revTouch)+cap(sh.revised)+cap(sh.massOnly)+cap(sh.moved)) * 8
		cellScratch += int64(cap(sh.revLevel)) + int64(cap(sh.overflow))*4
		cellScratch += int64(cap(sh.movedPos)) * 16
		cellScratch += int64(cap(sh.lastStep.HitRatio)+cap(sh.lastBaseline))*8 + int64(cap(sh.lastStep.Replaced))
		cellScratch += int64(cap(sh.lastServe)) * int64(unsafeSizeofEventResult)
		for _, l := range sh.lastLats {
			cellScratch += int64(cap(l)) * 8
		}
		f.Scratch += cellScratch
	}
	g := e.cfg.Instance.MemoryFootprint()
	f.Coordinator += g.Total()
	f.Coordinator += int64(cap(e.positions))*16 + int64(cap(e.owner))*4
	for k := range e.refs {
		f.Coordinator += int64(cap(e.refs[k])) * 8
	}
	f.Coordinator += int64(cap(e.refs)) * 24
	f.Coordinator += int64(cap(e.zeroRow)+cap(e.aggNum)+cap(e.aggStep.HitRatio))*8 +
		int64(cap(e.aggStep.Replaced)) + int64(cap(e.planScratch))*8 + int64(cap(e.refBuf))*8 +
		int64(cap(e.replacedBase))*8
	f.Coordinator += int64(cap(e.aggServe))*int64(unsafeSizeofEventResult) +
		int64(cap(e.mergeBuf))*8 + int64(cap(e.mergeIdx))*8
	return f
}

// Run builds a sharded engine and drives the full timeline.
func Run(cfg Config, src *rng.Source) (*Result, error) {
	e, err := NewEngine(cfg, src)
	if err != nil {
		return nil, err
	}
	return e.Run()
}
