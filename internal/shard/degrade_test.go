package shard

import (
	"sort"
	"testing"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
)

// driveDegradeTimeline runs a sharded smoke timeline with a regional
// degradation before checkpoint 1 and a restore before checkpoint 2,
// forcing replaces on both edges, and returns the aggregated steps.
func driveDegradeTimeline(t *testing.T, cfg Config, seed uint64, region geom.Region, bytes int64) []Step {
	t.Helper()
	se, err := NewEngine(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	copyStep := func(st Step) Step {
		return Step{
			TimeMin:  st.TimeMin,
			HitRatio: append([]float64(nil), st.HitRatio...),
			Replaced: append([]bool(nil), st.Replaced...),
		}
	}
	steps := []Step{copyStep(se.InitialStep())}
	for cp := 1; cp <= se.Checkpoints(); cp++ {
		if cp == 1 || cp == 2 {
			budget := bytes
			if cp == 2 {
				budget = -1
			}
			if err := se.DegradeRegion(region, budget); err != nil {
				t.Fatal(err)
			}
			if err := se.ForceReplace(cp); err != nil {
				t.Fatal(err)
			}
		}
		st, err := se.Checkpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, copyStep(st))
	}
	return steps
}

// TestShardDegradeSingleShardMatchesDynamics pins the sharded degradation
// seam at Shards = 1 against the unsharded engine driving the identical
// event schedule: DegradeRegion + ForceReplace through the single cell
// must be bit-identical to dynamics.Engine.DegradeRegion + Replace.
func TestShardDegradeSingleShardMatchesDynamics(t *testing.T) {
	region := geom.RectRegion(0, 0, 300, 600)
	const budget = 4 << 30
	got := driveDegradeTimeline(t, smokeShardConfig(t, 1, 1, dynamics.Incremental), 7, region, budget)

	dc, err := dynamics.NewSmokeScaleConfig(dynamics.Incremental)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dynamics.NewEngine(dc, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{{TimeMin: 0, HitRatio: []float64{eng.Baseline(0)}, Replaced: []bool{false}}}
	for cp := 1; cp <= eng.Checkpoints(); cp++ {
		if cp == 1 || cp == 2 {
			b := int64(budget)
			if cp == 2 {
				b = -1
			}
			if err := eng.DegradeRegion(region, b); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Replace(0, cp); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Refresh(); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Step(cp)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, Step{
			TimeMin:  st.TimeMin,
			HitRatio: append([]float64(nil), st.HitRatio...),
			Replaced: append([]bool(nil), st.Replaced...),
		})
	}
	sameSteps(t, "single-shard degrade vs dynamics", got, want)
	if got[1].HitRatio[0] >= got[0].HitRatio[0] {
		t.Errorf("degradation did not dent the hit ratio: t0 %v, degraded %v", got[0].HitRatio[0], got[1].HitRatio[0])
	}
}

// TestShardDegradeAcrossCellsDeterministic pins the multi-cell regional
// degradation timeline bit-identical across worker counts and cell refresh
// modes (Rebuild replays the reduced budgets through Instance.Rebuild),
// with the failure domain spanning both cells.
func TestShardDegradeAcrossCellsDeterministic(t *testing.T) {
	region := geom.RectRegion(0, 100, 600, 500) // a horizontal band across the 2-cell split
	const budget = 4 << 30
	want := driveDegradeTimeline(t, smokeShardConfig(t, 2, 1, dynamics.Incremental), 7, region, budget)
	sameSteps(t, "workers 4 vs 1",
		driveDegradeTimeline(t, smokeShardConfig(t, 2, 4, dynamics.Incremental), 7, region, budget), want)
	sameSteps(t, "rebuild vs incremental",
		driveDegradeTimeline(t, smokeShardConfig(t, 2, 2, dynamics.Rebuild), 7, region, budget), want)
}

// TestShardDegradeSurvivesGrowLibrary pins the cell-rebuild re-apply: a
// degradation active when GrowLibrary rebuilds every cell must carry into
// the rebuilt engines (reduced live capacity, capacity-blocked models in
// the fresh cell instance), and a restore afterwards must return the
// configured capacity — not the degraded value the rebuilt engine was
// constructed with.
func TestShardDegradeSurvivesGrowLibrary(t *testing.T) {
	cfg := smokeShardConfig(t, 2, 1, dynamics.Incremental)
	se, err := NewEngine(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const m = 1
	const budget = 4 << 30
	if err := se.SetServerCapacity(m, budget); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Checkpoint(1); err != nil {
		t.Fatal(err)
	}

	// Rebuild every cell over a same-size instance at the walked positions
	// (the GrowLibrary contract exercised in TestGrowLibraryRejectsBadInstances).
	stale := cfg.Instance
	topoNow, err := stale.Topology().WithUserPositions(se.Positions())
	if err != nil {
		t.Fatal(err)
	}
	relocated, err := scenario.New(topoNow, stale.Library(), stale.Workload(), stale.Wireless())
	if err != nil {
		t.Fatal(err)
	}
	if err := se.GrowLibrary(relocated); err != nil {
		t.Fatal(err)
	}

	var owner *cell
	var local int
	for _, sh := range se.cells {
		j := sort.SearchInts(sh.servers, m)
		if j < len(sh.servers) && sh.servers[j] == m {
			owner, local = sh, j
		}
	}
	if owner == nil {
		t.Fatalf("server %d owned by no cell", m)
	}
	if got := owner.eng.ServerCapacityBytes(local); got != budget {
		t.Fatalf("rebuilt cell's live capacity is %d, want %d", got, budget)
	}
	if !owner.eng.Instance().CapBlocked(local, 0) {
		t.Fatal("rebuilt cell instance lost the capacity block")
	}
	if err := se.SetServerCapacity(m, -1); err != nil {
		t.Fatal(err)
	}
	if got := owner.eng.ServerCapacityBytes(local); got != cfg.Capacities[m] {
		t.Fatalf("restored capacity is %d, want the configured %d", got, cfg.Capacities[m])
	}
	if owner.eng.Instance().CapBlocked(local, 0) {
		t.Fatal("restore left the capacity block in place")
	}
	if _, err := se.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
}

// TestShardFaultCheckpointAllocFree is the sharded half of the fault-path
// allocation pin: after an outage plus a degradation (and the forced
// replaces), steady-state checkpoints between fault events still allocate
// nothing once the capacity-mask scratch has grown.
func TestShardFaultCheckpointAllocFree(t *testing.T) {
	cfg := smokeShardConfig(t, 2, 1, dynamics.Incremental)
	cfg.Tracks = []dynamics.Track{{Algorithm: cfg.Tracks[0].Algorithm, Trigger: dynamics.NeverTrigger{}}}
	cfg.MeasureWorkers = 1
	e, err := NewEngine(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cp := 0
	checkpoint := func() {
		cp++
		if _, err := e.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		checkpoint()
	}
	if err := e.SetServersDown([]int{0}, true); err != nil {
		t.Fatal(err)
	}
	if err := e.SetServerCapacity(2, 4<<30); err != nil {
		t.Fatal(err)
	}
	cp++
	if err := e.ForceReplace(cp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		checkpoint()
	}
	grows := e.Grows()
	if avg := testing.AllocsPerRun(6, checkpoint); avg != 0 {
		t.Fatalf("degraded steady-state sharded checkpoint allocates %.1f times per run, want 0", avg)
	}
	if e.Grows() != grows {
		t.Fatalf("measured window grew a cell; pick a seed/warm-up that stays within slot headroom")
	}
}
