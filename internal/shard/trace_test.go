package shard

import (
	"testing"
	"unsafe"

	"trimcaching/internal/cachesim"
	"trimcaching/internal/dynamics"
	"trimcaching/internal/rng"
)

// traceShardConfig lifts the smoke-scale scenario into a sharded
// trace-driven config: TraceMeasurement windows at the checkpoint length
// and a clonable stateful TraceTrigger, the same shape cmd/benchdyn -serve
// runs at K = 100k.
func traceShardConfig(t *testing.T, shards, workers int) Config {
	t.Helper()
	dc, err := dynamics.NewSmokeScaleConfig(dynamics.Incremental)
	if err != nil {
		t.Fatal(err)
	}
	dc.Tracks[0].Trigger = &dynamics.TraceTrigger{Degradation: 0.05, Window: 2}
	dc.Measurement = &dynamics.TraceMeasurement{
		RequestsPerUserPerHour: 120,
		WindowS:                float64(dc.CheckpointMin) * 60,
	}
	cfg, err := FromDynamics(dc, shards)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	return cfg
}

func sameServe(t *testing.T, label string, got, want []Step) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d steps vs %d", label, len(got), len(want))
	}
	for i := range got {
		if len(got[i].Serve) != len(want[i].Serve) {
			t.Fatalf("%s: step %d has %d serve tracks, want %d", label, i, len(got[i].Serve), len(want[i].Serve))
		}
		for a := range got[i].Serve {
			if got[i].Serve[a] != want[i].Serve[a] {
				t.Errorf("%s: step %d track %d serve diverged:\n got %+v\nwant %+v",
					label, i, a, got[i].Serve[a], want[i].Serve[a])
			}
		}
	}
}

// TestTraceShardOneBitIdentical is the trace-mode half of the Shards = 1
// contract: the single-cell sharded engine must reproduce the unsharded
// trace-driven timeline bit for bit — measured hit ratios, replacement
// flags, and every field of the per-checkpoint serving window (counts,
// latency quantiles, peak concurrency), which the single-cell aggregate
// passes through verbatim.
func TestTraceShardOneBitIdentical(t *testing.T) {
	// Unsharded reference, driven manually so the per-checkpoint
	// EventResults can be captured alongside the steps.
	dc, err := dynamics.NewSmokeScaleConfig(dynamics.Incremental)
	if err != nil {
		t.Fatal(err)
	}
	dc.Tracks[0].Trigger = &dynamics.TraceTrigger{Degradation: 0.05, Window: 2}
	dc.Measurement = &dynamics.TraceMeasurement{
		RequestsPerUserPerHour: 120,
		WindowS:                float64(dc.CheckpointMin) * 60,
	}
	eng, err := dynamics.NewEngine(dc, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	tm := eng.TraceMeasurement()
	if tm == nil {
		t.Fatal("unsharded engine did not expose its TraceMeasurement")
	}
	nt := len(dc.Tracks)
	var wantHits [][]float64
	var wantServe [][]cachesim.EventResult
	record := func(hits []float64) {
		wantHits = append(wantHits, append([]float64(nil), hits...))
		wantServe = append(wantServe, append([]cachesim.EventResult(nil), tm.LastResults()...))
	}
	base := make([]float64, nt)
	for a := range base {
		base[a] = eng.Baseline(a)
	}
	record(base)
	for cp := 1; cp <= eng.Checkpoints(); cp++ {
		if err := eng.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Refresh(); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Step(cp)
		if err != nil {
			t.Fatal(err)
		}
		record(st.HitRatio)
	}

	res, err := Run(traceShardConfig(t, 1, 0), rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != len(wantHits) {
		t.Fatalf("got %d steps, want %d", len(res.Steps), len(wantHits))
	}
	for i, st := range res.Steps {
		for a := range st.HitRatio {
			if st.HitRatio[a] != wantHits[i][a] {
				t.Errorf("step %d track %d hit ratio %v, want %v", i, a, st.HitRatio[a], wantHits[i][a])
			}
			if st.Serve[a] != wantServe[i][a] {
				t.Errorf("step %d track %d serve diverged:\n got %+v\nwant %+v", i, a, st.Serve[a], wantServe[i][a])
			}
		}
	}
	if res.Steps[1].Serve[0].Requests == 0 {
		t.Fatal("serving window carried no requests; the pin is vacuous")
	}
}

// TestTraceShardWorkerDeterminism pins the sharded serving timeline —
// including the merged latency quantiles — to be bit-identical for any
// worker count: cells are measured in parallel but aggregated in cell
// order, and every cell's streams derive from its own splits.
func TestTraceShardWorkerDeterminism(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 2, 4} {
		res, err := Run(traceShardConfig(t, 2, workers), rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		sameSteps(t, "workers", res.Steps, ref.Steps)
		sameServe(t, "workers", res.Steps, ref.Steps)
	}
	if ref.Handoffs == 0 {
		t.Error("sharded trace timeline produced no handoffs; the scenario no longer exercises ownership transfer")
	}
}

// TestTraceShardConservation checks the sharded serving aggregate against
// the global request stream: every synthesized request is served by exactly
// one cell (its owner's), so the aggregated request count per checkpoint
// equals the unsharded engine's bit for bit — global-user-keyed arrival
// streams make the window partition-invariant — and the outcome counters
// partition the total. Latencies and hit ratios are not compared: cells
// cannot relay across boundaries, so serving outcomes legitimately differ.
func TestTraceShardConservation(t *testing.T) {
	one, err := Run(traceShardConfig(t, 1, 0), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(traceShardConfig(t, 2, 0), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(four.Steps) != len(one.Steps) {
		t.Fatalf("%d steps vs %d", len(four.Steps), len(one.Steps))
	}
	requests := 0
	for i, st := range four.Steps {
		for a, sv := range st.Serve {
			want := one.Steps[i].Serve[a]
			if sv.Requests != want.Requests {
				t.Errorf("step %d track %d: %d requests sharded vs %d unsharded", i, a, sv.Requests, want.Requests)
			}
			if got := sv.Direct + sv.Relay + sv.Cloud + sv.Failed; got != sv.Requests {
				t.Errorf("step %d track %d: outcomes sum to %d, want %d", i, a, got, sv.Requests)
			}
			if sv.HitRatio < 0 || sv.HitRatio > 1 {
				t.Errorf("step %d track %d: hit ratio %v outside [0,1]", i, a, sv.HitRatio)
			}
			if sv.P50Latency > sv.P95Latency || sv.P95Latency > sv.P99Latency {
				t.Errorf("step %d track %d: quantiles out of order: p50=%v p95=%v p99=%v",
					i, a, sv.P50Latency, sv.P95Latency, sv.P99Latency)
			}
			requests += sv.Requests
		}
	}
	if requests == 0 {
		t.Fatal("no requests served; conservation check is vacuous")
	}
}

// TestEventResultSize guards the unsafeSizeofEventResult constant the
// memory accounting uses.
func TestEventResultSize(t *testing.T) {
	if s := unsafe.Sizeof(cachesim.EventResult{}); s != unsafeSizeofEventResult {
		t.Fatalf("EventResult is %d bytes, constant says %d", s, unsafeSizeofEventResult)
	}
}
