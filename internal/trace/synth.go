package trace

import (
	"fmt"
	"sort"

	"trimcaching/internal/rng"
	"trimcaching/internal/workload"
)

// Synthesizer generates the per-checkpoint request windows of a mobility
// timeline: each measurement window is an independent Poisson arrival
// process per user (rate RequestsPerUserPerHour) whose model choices follow
// the workload's Zipf request distribution. It is the arrival source of the
// dynamics engine's trace-driven measurement track.
//
// Determinism contract: Window(work, src) is a pure function of the
// workload and src's seed material — user k draws from
// src.SplitIndex("user", k), so the window is independent of user
// iteration order and of any other window synthesized from a sibling
// stream. Callers derive one stream per checkpoint (for example
// src.SplitIndex("fading", cp) in the dynamics engine) and get
// reproducible, window-independent traces.
type Synthesizer struct {
	ratePerUserPerHour float64
	windowS            float64

	// Scratch reused across Window calls; see Window for the aliasing
	// contract.
	tr Trace
}

// NewSynthesizer validates the arrival parameters. A zero rate is allowed
// and synthesizes empty windows (a silent cell still measures: zero
// requests); the window length must be positive.
func NewSynthesizer(ratePerUserPerHour, windowS float64) (*Synthesizer, error) {
	if ratePerUserPerHour < 0 {
		return nil, fmt.Errorf("trace: RequestsPerUserPerHour must be >= 0, got %v", ratePerUserPerHour)
	}
	if windowS <= 0 {
		return nil, fmt.Errorf("trace: window length must be positive, got %v", windowS)
	}
	return &Synthesizer{ratePerUserPerHour: ratePerUserPerHour, windowS: windowS}, nil
}

// Window synthesizes one measurement window's request arrivals against the
// given workload. The returned trace aliases the synthesizer's scratch and
// is only valid until the next Window call; callers that need to keep it
// must copy the Requests slice.
func (s *Synthesizer) Window(work *workload.Workload, src *rng.Source) (*Trace, error) {
	if work == nil {
		return nil, fmt.Errorf("trace: workload is required")
	}
	if src == nil {
		return nil, fmt.Errorf("trace: random source is required")
	}
	s.tr.DurationS = s.windowS
	s.tr.Requests = s.tr.Requests[:0]
	if s.ratePerUserPerHour == 0 {
		return &s.tr, nil
	}
	ratePerSec := s.ratePerUserPerHour / 3600
	for k := 0; k < work.NumUsers(); k++ {
		usrc := src.SplitIndex("user", k)
		probRow := work.ProbRow(k)
		for t := usrc.Exp() / ratePerSec; t < s.windowS; t += usrc.Exp() / ratePerSec {
			s.tr.Requests = append(s.tr.Requests, Request{
				TimeS: t,
				User:  k,
				Model: usrc.Categorical(probRow),
			})
		}
	}
	reqs := s.tr.Requests
	sort.Slice(reqs, func(a, b int) bool {
		if reqs[a].TimeS != reqs[b].TimeS {
			return reqs[a].TimeS < reqs[b].TimeS
		}
		return reqs[a].User < reqs[b].User
	})
	return &s.tr, nil
}
