package trace

import (
	"cmp"
	"fmt"
	"slices"

	"trimcaching/internal/rng"
	"trimcaching/internal/workload"
)

// Synthesizer generates the per-checkpoint request windows of a mobility
// timeline: each measurement window is an independent Poisson arrival
// process per user (rate RequestsPerUserPerHour) whose model choices follow
// the workload's Zipf request distribution. It is the arrival source of the
// dynamics engine's trace-driven measurement track.
//
// Determinism contract: Window(work, src) is a pure function of the
// workload and src's seed material — user k draws from
// src.SplitIndex("user", k), so the window is independent of user
// iteration order and of any other window synthesized from a sibling
// stream. Callers derive one stream per checkpoint (for example
// src.SplitIndex("fading", cp) in the dynamics engine) and get
// reproducible, window-independent traces.
type Synthesizer struct {
	ratePerUserPerHour float64
	windowS            float64

	// Scratch reused across Window calls; see Window for the aliasing
	// contract. usrc is the caller-owned per-user stream so the hot loop
	// derives K streams per window without allocating.
	tr   Trace
	usrc rng.Source
}

// UserMap translates a workload slot index into the identity that keys the
// slot's arrival stream. It returns the global user id for the slot and
// whether the slot should synthesize arrivals at all. Sharded engines map
// cell-local slots to global user ids and report ghosts (slots visible for
// load accounting but owned by another cell) as not-owned, so a user's
// arrival stream is a function of their global id — bit-stable across cell
// handoffs — and each request is synthesized by exactly one cell.
type UserMap func(slot int) (global int, owned bool)

// NewSynthesizer validates the arrival parameters. A zero rate is allowed
// and synthesizes empty windows (a silent cell still measures: zero
// requests); the window length must be positive.
func NewSynthesizer(ratePerUserPerHour, windowS float64) (*Synthesizer, error) {
	if ratePerUserPerHour < 0 {
		return nil, fmt.Errorf("trace: RequestsPerUserPerHour must be >= 0, got %v", ratePerUserPerHour)
	}
	if windowS <= 0 {
		return nil, fmt.Errorf("trace: window length must be positive, got %v", windowS)
	}
	return &Synthesizer{ratePerUserPerHour: ratePerUserPerHour, windowS: windowS}, nil
}

// Window synthesizes one measurement window's request arrivals against the
// given workload. The returned trace aliases the synthesizer's scratch and
// is only valid until the next Window call; callers that need to keep it
// must copy the Requests slice. It is WindowMapped with the identity map:
// every slot is its own global id and every slot is owned.
func (s *Synthesizer) Window(work *workload.Workload, src *rng.Source) (*Trace, error) {
	return s.WindowMapped(work, src, nil)
}

// WindowMapped synthesizes one window with request attribution keyed by um.
// A nil um is the identity map (slot == global id, all slots owned). The
// emitted Request.User remains the local slot index — it must index the
// serving instance — while the arrival stream (times and model draws) is
// derived from the global id, so the stream survives slot renumbering.
// Steady state allocates nothing: requests reuse the trace scratch once it
// has grown to the high-water window size.
func (s *Synthesizer) WindowMapped(work *workload.Workload, src *rng.Source, um UserMap) (*Trace, error) {
	if work == nil {
		return nil, fmt.Errorf("trace: workload is required")
	}
	if src == nil {
		return nil, fmt.Errorf("trace: random source is required")
	}
	s.tr.DurationS = s.windowS
	s.tr.Requests = s.tr.Requests[:0]
	if s.ratePerUserPerHour == 0 {
		return &s.tr, nil
	}
	ratePerSec := s.ratePerUserPerHour / 3600
	for k := 0; k < work.NumUsers(); k++ {
		g := k
		if um != nil {
			global, owned := um(k)
			if !owned {
				continue
			}
			g = global
		}
		usrc := src.SplitIndexInto(&s.usrc, "user", g)
		probRow := work.ProbRow(k)
		for t := usrc.Exp() / ratePerSec; t < s.windowS; t += usrc.Exp() / ratePerSec {
			s.tr.Requests = append(s.tr.Requests, Request{
				TimeS: t,
				User:  k,
				Model: usrc.Categorical(probRow),
			})
		}
	}
	slices.SortFunc(s.tr.Requests, func(a, b Request) int {
		if c := cmp.Compare(a.TimeS, b.TimeS); c != 0 {
			return c
		}
		return cmp.Compare(a.User, b.User)
	})
	return &s.tr, nil
}
