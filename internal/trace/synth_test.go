package trace

import (
	"testing"

	"trimcaching/internal/rng"
	"trimcaching/internal/workload"
)

func synthWorkload(t *testing.T, numUsers, numModels int) *workload.Workload {
	t.Helper()
	work, err := workload.Generate(numUsers, numModels, workload.DefaultConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	return work
}

func cloneTrace(tr *Trace) *Trace {
	out := &Trace{DurationS: tr.DurationS, Requests: make([]Request, len(tr.Requests))}
	copy(out.Requests, tr.Requests)
	return out
}

func TestSynthesizerValidation(t *testing.T) {
	if _, err := NewSynthesizer(-1, 600); err == nil {
		t.Fatal("negative rate must error")
	}
	if _, err := NewSynthesizer(10, 0); err == nil {
		t.Fatal("zero window must error")
	}
	s, err := NewSynthesizer(10, 600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Window(nil, rng.New(1)); err == nil {
		t.Fatal("nil workload must error")
	}
	if _, err := s.Window(synthWorkload(t, 3, 4), nil); err == nil {
		t.Fatal("nil source must error")
	}
}

func TestSynthesizerWindowValid(t *testing.T) {
	work := synthWorkload(t, 8, 12)
	s, err := NewSynthesizer(60, 600)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Window(work, rng.New(3).SplitIndex("ckpt", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(work.NumUsers(), work.NumModels()); err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("60 req/user/hour over 10 min and 8 users synthesized nothing")
	}
	if tr.DurationS != 600 {
		t.Fatalf("window duration %v, want 600", tr.DurationS)
	}
}

// TestSynthesizerDeterministic pins the SplitIndex determinism contract: a
// window is a pure function of (workload, stream seed material) — the same
// stream reproduces it bit-for-bit on a fresh synthesizer, and windows do
// not depend on which other windows were synthesized before them.
func TestSynthesizerDeterministic(t *testing.T) {
	work := synthWorkload(t, 6, 10)
	root := rng.New(11)

	a, err := NewSynthesizer(40, 300)
	if err != nil {
		t.Fatal(err)
	}
	var inOrder []*Trace
	for cp := 0; cp < 4; cp++ {
		tr, err := a.Window(work, root.SplitIndex("ckpt", cp))
		if err != nil {
			t.Fatal(err)
		}
		inOrder = append(inOrder, cloneTrace(tr))
	}

	// A fresh synthesizer drawing the windows in reverse order must
	// reproduce every one of them exactly.
	b, err := NewSynthesizer(40, 300)
	if err != nil {
		t.Fatal(err)
	}
	for cp := 3; cp >= 0; cp-- {
		tr, err := b.Window(work, root.SplitIndex("ckpt", cp))
		if err != nil {
			t.Fatal(err)
		}
		want := inOrder[cp]
		if len(tr.Requests) != len(want.Requests) {
			t.Fatalf("window %d: %d requests out of order vs %d in order", cp, len(tr.Requests), len(want.Requests))
		}
		for ri := range want.Requests {
			if tr.Requests[ri] != want.Requests[ri] {
				t.Fatalf("window %d request %d: %+v, want %+v", cp, ri, tr.Requests[ri], want.Requests[ri])
			}
		}
	}

	// Distinct windows must not repeat each other.
	if len(inOrder[0].Requests) == len(inOrder[1].Requests) {
		same := true
		for ri := range inOrder[0].Requests {
			if inOrder[0].Requests[ri] != inOrder[1].Requests[ri] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("windows 0 and 1 are identical; checkpoint streams are not independent")
		}
	}
}

func TestSynthesizerZeroRate(t *testing.T) {
	work := synthWorkload(t, 5, 7)
	s, err := NewSynthesizer(0, 600)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Window(work, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 0 {
		t.Fatalf("zero rate synthesized %d requests", len(tr.Requests))
	}
	if err := tr.Validate(work.NumUsers(), work.NumModels()); err != nil {
		t.Fatal(err)
	}
}

// TestSynthesizerZipfHead checks the popularity sanity: the model at the
// head of the workload's (globally permuted) Zipf ranking must receive
// clearly more requests than the tail model over many windows.
func TestSynthesizerZipfHead(t *testing.T) {
	work := synthWorkload(t, 10, 20)
	head, tail := 0, 0
	for i := 1; i < work.NumModels(); i++ {
		if work.Prob(0, i) > work.Prob(0, head) {
			head = i
		}
		if work.Prob(0, i) < work.Prob(0, tail) {
			tail = i
		}
	}
	s, err := NewSynthesizer(120, 600)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, work.NumModels())
	root := rng.New(17)
	for cp := 0; cp < 30; cp++ {
		tr, err := s.Window(work, root.SplitIndex("ckpt", cp))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tr.Requests {
			counts[r.Model]++
		}
	}
	if counts[head] <= 2*counts[tail] {
		t.Fatalf("Zipf head (model %d) got %d requests vs tail (model %d) %d; popularity skew lost",
			head, counts[head], tail, counts[tail])
	}
}

// TestSynthesizerScratchReuse documents the aliasing contract: a second
// Window call overwrites the previously returned trace.
func TestSynthesizerScratchReuse(t *testing.T) {
	work := synthWorkload(t, 6, 8)
	s, err := NewSynthesizer(80, 400)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Window(work, rng.New(4).SplitIndex("ckpt", 0))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := cloneTrace(first)
	second, err := s.Window(work, rng.New(4).SplitIndex("ckpt", 1))
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("Window must reuse its scratch trace")
	}
	if len(snapshot.Requests) == len(second.Requests) && len(snapshot.Requests) > 0 &&
		snapshot.Requests[0] == second.Requests[0] && snapshot.Requests[len(snapshot.Requests)-1] == second.Requests[len(second.Requests)-1] {
		t.Fatal("second window left the first window's content in place")
	}
}
