package trace

import (
	"cmp"
	"slices"
	"testing"

	"trimcaching/internal/rng"
	"trimcaching/internal/workload"
)

// sortRequests orders requests by (TimeS, User), the synthesizer's emission
// order, so windows assembled from multiple owners can be compared.
func sortRequests(reqs []Request) {
	slices.SortFunc(reqs, func(a, b Request) int {
		if c := cmp.Compare(a.TimeS, b.TimeS); c != 0 {
			return c
		}
		return cmp.Compare(a.User, b.User)
	})
}

func synthWorkload(t *testing.T, numUsers, numModels int) *workload.Workload {
	t.Helper()
	work, err := workload.Generate(numUsers, numModels, workload.DefaultConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	return work
}

func cloneTrace(tr *Trace) *Trace {
	out := &Trace{DurationS: tr.DurationS, Requests: make([]Request, len(tr.Requests))}
	copy(out.Requests, tr.Requests)
	return out
}

func TestSynthesizerValidation(t *testing.T) {
	if _, err := NewSynthesizer(-1, 600); err == nil {
		t.Fatal("negative rate must error")
	}
	if _, err := NewSynthesizer(10, 0); err == nil {
		t.Fatal("zero window must error")
	}
	s, err := NewSynthesizer(10, 600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Window(nil, rng.New(1)); err == nil {
		t.Fatal("nil workload must error")
	}
	if _, err := s.Window(synthWorkload(t, 3, 4), nil); err == nil {
		t.Fatal("nil source must error")
	}
}

func TestSynthesizerWindowValid(t *testing.T) {
	work := synthWorkload(t, 8, 12)
	s, err := NewSynthesizer(60, 600)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Window(work, rng.New(3).SplitIndex("ckpt", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(work.NumUsers(), work.NumModels()); err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("60 req/user/hour over 10 min and 8 users synthesized nothing")
	}
	if tr.DurationS != 600 {
		t.Fatalf("window duration %v, want 600", tr.DurationS)
	}
}

// TestSynthesizerDeterministic pins the SplitIndex determinism contract: a
// window is a pure function of (workload, stream seed material) — the same
// stream reproduces it bit-for-bit on a fresh synthesizer, and windows do
// not depend on which other windows were synthesized before them.
func TestSynthesizerDeterministic(t *testing.T) {
	work := synthWorkload(t, 6, 10)
	root := rng.New(11)

	a, err := NewSynthesizer(40, 300)
	if err != nil {
		t.Fatal(err)
	}
	var inOrder []*Trace
	for cp := 0; cp < 4; cp++ {
		tr, err := a.Window(work, root.SplitIndex("ckpt", cp))
		if err != nil {
			t.Fatal(err)
		}
		inOrder = append(inOrder, cloneTrace(tr))
	}

	// A fresh synthesizer drawing the windows in reverse order must
	// reproduce every one of them exactly.
	b, err := NewSynthesizer(40, 300)
	if err != nil {
		t.Fatal(err)
	}
	for cp := 3; cp >= 0; cp-- {
		tr, err := b.Window(work, root.SplitIndex("ckpt", cp))
		if err != nil {
			t.Fatal(err)
		}
		want := inOrder[cp]
		if len(tr.Requests) != len(want.Requests) {
			t.Fatalf("window %d: %d requests out of order vs %d in order", cp, len(tr.Requests), len(want.Requests))
		}
		for ri := range want.Requests {
			if tr.Requests[ri] != want.Requests[ri] {
				t.Fatalf("window %d request %d: %+v, want %+v", cp, ri, tr.Requests[ri], want.Requests[ri])
			}
		}
	}

	// Distinct windows must not repeat each other.
	if len(inOrder[0].Requests) == len(inOrder[1].Requests) {
		same := true
		for ri := range inOrder[0].Requests {
			if inOrder[0].Requests[ri] != inOrder[1].Requests[ri] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("windows 0 and 1 are identical; checkpoint streams are not independent")
		}
	}
}

func TestSynthesizerZeroRate(t *testing.T) {
	work := synthWorkload(t, 5, 7)
	s, err := NewSynthesizer(0, 600)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Window(work, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 0 {
		t.Fatalf("zero rate synthesized %d requests", len(tr.Requests))
	}
	if err := tr.Validate(work.NumUsers(), work.NumModels()); err != nil {
		t.Fatal(err)
	}
}

// TestSynthesizerZipfHead checks the popularity sanity: the model at the
// head of the workload's (globally permuted) Zipf ranking must receive
// clearly more requests than the tail model over many windows.
func TestSynthesizerZipfHead(t *testing.T) {
	work := synthWorkload(t, 10, 20)
	head, tail := 0, 0
	for i := 1; i < work.NumModels(); i++ {
		if work.Prob(0, i) > work.Prob(0, head) {
			head = i
		}
		if work.Prob(0, i) < work.Prob(0, tail) {
			tail = i
		}
	}
	s, err := NewSynthesizer(120, 600)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, work.NumModels())
	root := rng.New(17)
	for cp := 0; cp < 30; cp++ {
		tr, err := s.Window(work, root.SplitIndex("ckpt", cp))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tr.Requests {
			counts[r.Model]++
		}
	}
	if counts[head] <= 2*counts[tail] {
		t.Fatalf("Zipf head (model %d) got %d requests vs tail (model %d) %d; popularity skew lost",
			head, counts[head], tail, counts[tail])
	}
}

// TestSynthesizerScratchReuse documents the aliasing contract: a second
// Window call overwrites the previously returned trace.
func TestSynthesizerScratchReuse(t *testing.T) {
	work := synthWorkload(t, 6, 8)
	s, err := NewSynthesizer(80, 400)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Window(work, rng.New(4).SplitIndex("ckpt", 0))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := cloneTrace(first)
	second, err := s.Window(work, rng.New(4).SplitIndex("ckpt", 1))
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("Window must reuse its scratch trace")
	}
	if len(snapshot.Requests) == len(second.Requests) && len(snapshot.Requests) > 0 &&
		snapshot.Requests[0] == second.Requests[0] && snapshot.Requests[len(snapshot.Requests)-1] == second.Requests[len(second.Requests)-1] {
		t.Fatal("second window left the first window's content in place")
	}
}

// TestWindowMappedIdentity pins Window == WindowMapped(nil) == WindowMapped
// with an explicit identity map: the nil shortcut and the mapped path share
// one synthesis loop, and the unsharded engines rely on that identity.
func TestWindowMappedIdentity(t *testing.T) {
	work := synthWorkload(t, 7, 9)
	s, err := NewSynthesizer(90, 500)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(21)
	plain, err := s.Window(work, root.SplitIndex("ckpt", 2))
	if err != nil {
		t.Fatal(err)
	}
	want := cloneTrace(plain)
	mapped, err := s.WindowMapped(work, root.SplitIndex("ckpt", 2), func(slot int) (int, bool) { return slot, true })
	if err != nil {
		t.Fatal(err)
	}
	if len(mapped.Requests) != len(want.Requests) {
		t.Fatalf("identity map: %d requests, want %d", len(mapped.Requests), len(want.Requests))
	}
	for i := range want.Requests {
		if mapped.Requests[i] != want.Requests[i] {
			t.Fatalf("identity map request %d: %+v, want %+v", i, mapped.Requests[i], want.Requests[i])
		}
	}
}

// TestWindowMappedPartition pins the sharding contract: if ownership of the
// user population is partitioned across two maps, the union of the two
// mapped windows is exactly the identity window — every request synthesized
// by exactly one owner, times and model draws untouched by the split.
func TestWindowMappedPartition(t *testing.T) {
	work := synthWorkload(t, 9, 11)
	root := rng.New(33)
	ref, err := NewSynthesizer(120, 400)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ref.Window(work, root.SplitIndex("ckpt", 0))
	if err != nil {
		t.Fatal(err)
	}
	want := cloneTrace(plain)

	var union []Request
	for half := 0; half < 2; half++ {
		s, err := NewSynthesizer(120, 400)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := s.WindowMapped(work, root.SplitIndex("ckpt", 0), func(slot int) (int, bool) {
			return slot, slot%2 == half
		})
		if err != nil {
			t.Fatal(err)
		}
		union = append(union, tr.Requests...)
	}
	if len(union) != len(want.Requests) {
		t.Fatalf("partition union has %d requests, identity window %d", len(union), len(want.Requests))
	}
	sortRequests(union)
	for i := range want.Requests {
		if union[i] != want.Requests[i] {
			t.Fatalf("partition union request %d: %+v, want %+v", i, union[i], want.Requests[i])
		}
	}
}

// TestWindowMappedGlobalKey pins that the arrival stream is keyed by the
// GLOBAL id, not the slot index: a slot table that binds global user g into
// an arbitrary slot reproduces g's identity-window arrival times bit for
// bit, with only the User field renumbered. This is what makes a sharded
// user's request stream survive cell handoffs.
func TestWindowMappedGlobalKey(t *testing.T) {
	work := synthWorkload(t, 6, 8)
	root := rng.New(44)
	ref, err := NewSynthesizer(100, 300)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ref.Window(work, root.SplitIndex("ckpt", 1))
	if err != nil {
		t.Fatal(err)
	}
	want := cloneTrace(plain)

	// A 3-slot cell binding globals {5, 1, 3} into slots {0, 1, 2}.
	globals := []int{5, 1, 3}
	cellWork, err := workload.NewAliased(len(globals), work.NumModels())
	if err != nil {
		t.Fatal(err)
	}
	for slot, g := range globals {
		if err := cellWork.SetUserRows(slot, work.ProbRow(g), work.DeadlineRow(g), work.InferRow(g)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSynthesizer(100, 300)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.WindowMapped(cellWork, root.SplitIndex("ckpt", 1), func(slot int) (int, bool) {
		return globals[slot], true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-key the cell window to global ids and compare against the identity
	// window restricted to the bound globals.
	rekeyed := make([]Request, len(tr.Requests))
	for i, r := range tr.Requests {
		rekeyed[i] = Request{TimeS: r.TimeS, User: globals[r.User], Model: r.Model}
	}
	sortRequests(rekeyed)
	bound := map[int]bool{}
	for _, g := range globals {
		bound[g] = true
	}
	var restricted []Request
	for _, r := range want.Requests {
		if bound[r.User] {
			restricted = append(restricted, r)
		}
	}
	if len(rekeyed) != len(restricted) {
		t.Fatalf("cell window has %d requests, identity restriction %d", len(rekeyed), len(restricted))
	}
	for i := range restricted {
		if rekeyed[i] != restricted[i] {
			t.Fatalf("cell request %d: %+v, want %+v", i, rekeyed[i], restricted[i])
		}
	}
}

// TestWindowSteadyStateAllocFree pins the synthesis hot path at zero
// allocations once the request scratch has reached its high-water mark.
func TestWindowSteadyStateAllocFree(t *testing.T) {
	work := synthWorkload(t, 20, 12)
	s, err := NewSynthesizer(200, 600)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(55)
	var ckptSrc rng.Source
	// Warm up the scratch to its high-water mark across several windows.
	for cp := 0; cp < 12; cp++ {
		if _, err := s.Window(work, root.SplitIndexInto(&ckptSrc, "ckpt", cp)); err != nil {
			t.Fatal(err)
		}
	}
	cp := 0
	if avg := testing.AllocsPerRun(8, func() {
		cp++
		if _, err := s.Window(work, root.SplitIndexInto(&ckptSrc, "ckpt", cp%12)); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state Window allocates %.1f times per run, want 0", avg)
	}
}
