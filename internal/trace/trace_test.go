package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"trimcaching/internal/rng"
	"trimcaching/internal/workload"
)

func testWorkload(t *testing.T, users, models int) *workload.Workload {
	t.Helper()
	w, err := workload.Generate(users, models, workload.DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateValidTrace(t *testing.T) {
	w := testWorkload(t, 10, 20)
	tr, err := Generate(w, 30, 3600, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(10, 20); err != nil {
		t.Fatal(err)
	}
	// Expected request count: 10 users * 30/h * 1h = 300, Poisson spread.
	if len(tr.Requests) < 200 || len(tr.Requests) > 400 {
		t.Fatalf("%d requests, expected ~300", len(tr.Requests))
	}
	// Sorted by time.
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].TimeS < tr.Requests[i-1].TimeS {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestGenerateRespectsPopularity(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.ZipfExponent = 1.2
	w, err := workload.Generate(5, 10, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(w, 400, 3600, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for _, r := range tr.Requests {
		counts[r.Model]++
	}
	// The top-ranked model for user 0 (same ranking for all users under the
	// global permutation) must be requested more often than the
	// bottom-ranked one.
	top := w.UserTopModels(0)
	if counts[top[0]] <= counts[top[len(top)-1]] {
		t.Fatalf("popular model requested %d times vs unpopular %d",
			counts[top[0]], counts[top[len(top)-1]])
	}
}

func TestGenerateInvalid(t *testing.T) {
	w := testWorkload(t, 2, 2)
	if _, err := Generate(nil, 10, 10, rng.New(5)); err == nil {
		t.Fatal("nil workload must error")
	}
	if _, err := Generate(w, 0, 10, rng.New(5)); err == nil {
		t.Fatal("zero rate must error")
	}
	if _, err := Generate(w, 10, 0, rng.New(5)); err == nil {
		t.Fatal("zero duration must error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	w := testWorkload(t, 3, 4)
	tr, err := Generate(w, 60, 600, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*Trace){
		func(t *Trace) { t.DurationS = 0 },
		func(t *Trace) { t.Requests[0].TimeS = -1 },
		func(t *Trace) { t.Requests[0].TimeS = t.DurationS + 1 },
		func(t *Trace) { t.Requests[0].User = 3 },
		func(t *Trace) { t.Requests[0].Model = -1 },
		func(t *Trace) {
			if len(t.Requests) > 1 {
				t.Requests[1].TimeS = 0
				t.Requests[0].TimeS = t.DurationS / 2
			}
		},
	}
	for ci, corrupt := range cases {
		cp := &Trace{DurationS: tr.DurationS, Requests: append([]Request(nil), tr.Requests...)}
		corrupt(cp)
		if err := cp.Validate(3, 4); err == nil {
			t.Fatalf("corruption %d not caught", ci)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	w := testWorkload(t, 4, 6)
	tr, err := Generate(w, 60, 1200, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.DurationS != tr.DurationS || len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round trip changed shape: %v/%d vs %v/%d",
			back.DurationS, len(back.Requests), tr.DurationS, len(tr.Requests))
	}
	for i := range tr.Requests {
		if math.Abs(back.Requests[i].TimeS-tr.Requests[i].TimeS) > 1e-12 ||
			back.Requests[i].User != tr.Requests[i].User ||
			back.Requests[i].Model != tr.Requests[i].Model {
			t.Fatalf("request %d changed", i)
		}
	}
}

func TestReadJSONLMalformed(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"durationS":10,"requests":2}` + "\n" + `{"timeS":1}` + "\n")); err == nil {
		t.Fatal("truncated input must error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"durationS":10,"requests":-1}` + "\n")); err == nil {
		t.Fatal("negative count must error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := testWorkload(t, 5, 5)
	a, err := Generate(w, 30, 600, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(w, 30, 600, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("same seed, different requests")
		}
	}
}
