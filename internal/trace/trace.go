// Package trace generates and (de)serializes model-download request traces:
// per-user Poisson arrival processes with Zipf-distributed model choices,
// matching the demand model of §VII-A. Traces drive the event-driven
// serving simulator (internal/cachesim) and can be persisted as JSON Lines
// for replay across runs. Generate samples one whole-horizon trace;
// Synthesizer emits the per-checkpoint windows consumed by the dynamics
// engine's trace-driven measurement track, each a pure function of the
// workload and a per-window RNG split (rng.SplitIndex) so timelines stay
// deterministic for any evaluation order or worker count.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"trimcaching/internal/rng"
	"trimcaching/internal/workload"
)

// Request is one model-download request.
type Request struct {
	// TimeS is the arrival time in seconds from the trace start.
	TimeS float64 `json:"timeS"`
	// User is the requesting user index k.
	User int `json:"user"`
	// Model is the requested model index i.
	Model int `json:"model"`
}

// Trace is a time-ordered request sequence.
type Trace struct {
	// DurationS is the trace horizon in seconds.
	DurationS float64 `json:"durationS"`
	// Requests are sorted by ascending TimeS.
	Requests []Request `json:"requests"`
}

// Generate samples a trace: each user emits a Poisson process with the
// given rate; each request draws a model from the user's request
// distribution.
func Generate(work *workload.Workload, ratePerUserPerHour, durationS float64, src *rng.Source) (*Trace, error) {
	if work == nil {
		return nil, fmt.Errorf("trace: workload is required")
	}
	if ratePerUserPerHour <= 0 || durationS <= 0 {
		return nil, fmt.Errorf("trace: rate (%v) and duration (%v) must be positive",
			ratePerUserPerHour, durationS)
	}
	ratePerSec := ratePerUserPerHour / 3600
	tr := &Trace{DurationS: durationS}
	probRow := make([]float64, work.NumModels())
	for k := 0; k < work.NumUsers(); k++ {
		for i := range probRow {
			probRow[i] = work.Prob(k, i)
		}
		// Exponential inter-arrival times.
		t := src.Exp() / ratePerSec
		for t < durationS {
			tr.Requests = append(tr.Requests, Request{
				TimeS: t,
				User:  k,
				Model: src.Categorical(probRow),
			})
			t += src.Exp() / ratePerSec
		}
	}
	sort.Slice(tr.Requests, func(a, b int) bool {
		if tr.Requests[a].TimeS != tr.Requests[b].TimeS {
			return tr.Requests[a].TimeS < tr.Requests[b].TimeS
		}
		return tr.Requests[a].User < tr.Requests[b].User
	})
	return tr, nil
}

// Validate checks the trace against the given user/model counts and time
// ordering.
func (t *Trace) Validate(numUsers, numModels int) error {
	if t.DurationS <= 0 {
		return fmt.Errorf("trace: non-positive duration %v", t.DurationS)
	}
	prev := -1.0
	for idx, r := range t.Requests {
		if r.TimeS < 0 || r.TimeS > t.DurationS {
			return fmt.Errorf("trace: request %d at %v outside [0, %v]", idx, r.TimeS, t.DurationS)
		}
		if r.TimeS < prev {
			return fmt.Errorf("trace: request %d out of order", idx)
		}
		prev = r.TimeS
		if r.User < 0 || r.User >= numUsers {
			return fmt.Errorf("trace: request %d user %d outside [0, %d)", idx, r.User, numUsers)
		}
		if r.Model < 0 || r.Model >= numModels {
			return fmt.Errorf("trace: request %d model %d outside [0, %d)", idx, r.Model, numModels)
		}
	}
	return nil
}

// header is the first JSONL record, carrying trace metadata.
type header struct {
	DurationS float64 `json:"durationS"`
	Requests  int     `json:"requests"`
}

// WriteJSONL writes the trace as JSON Lines: a header record followed by
// one record per request.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{DurationS: t.DurationS, Requests: len(t.Requests)}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for idx := range t.Requests {
		if err := enc.Encode(&t.Requests[idx]); err != nil {
			return fmt.Errorf("trace: write request %d: %w", idx, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadJSONL reads a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if h.Requests < 0 {
		return nil, fmt.Errorf("trace: negative request count %d", h.Requests)
	}
	tr := &Trace{DurationS: h.DurationS, Requests: make([]Request, 0, h.Requests)}
	for i := 0; i < h.Requests; i++ {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("trace: read request %d: %w", i, err)
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}
