package geom

import (
	"fmt"
	"math"
)

// RegionKind selects a region's shape.
type RegionKind string

const (
	// RegionDisk is a closed disk around Center with radius Radius.
	RegionDisk RegionKind = "disk"
	// RegionRect is a closed axis-aligned rectangle [Min.X, Max.X] x
	// [Min.Y, Max.Y].
	RegionRect RegionKind = "rect"
)

// Region is a serializable failure domain over the deployment area: a disk
// (a power substation or backhaul aggregation point with a service radius)
// or an axis-aligned rectangle (a street grid or campus block). Correlated
// regional failures down or degrade every server whose position a region
// contains.
type Region struct {
	Kind RegionKind `json:"kind"`
	// Center and Radius define a disk region (metres).
	Center Point   `json:"center,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	// Min and Max define a rect region (metres, inclusive).
	Min Point `json:"min,omitempty"`
	Max Point `json:"max,omitempty"`
}

// DiskRegion returns the disk of the given radius around (x, y).
func DiskRegion(x, y, radius float64) Region {
	return Region{Kind: RegionDisk, Center: Point{X: x, Y: y}, Radius: radius}
}

// RectRegion returns the axis-aligned rectangle [x0, x1] x [y0, y1].
func RectRegion(x0, y0, x1, y1 float64) Region {
	return Region{Kind: RegionRect, Min: Point{X: x0, Y: y0}, Max: Point{X: x1, Y: y1}}
}

// Validate reports the first invalid field, if any.
func (r Region) Validate() error {
	switch r.Kind {
	case RegionDisk:
		if r.Radius < 0 || math.IsNaN(r.Radius) || math.IsInf(r.Radius, 0) {
			return fmt.Errorf("geom: invalid disk radius %v", r.Radius)
		}
	case RegionRect:
		if r.Max.X < r.Min.X || r.Max.Y < r.Min.Y {
			return fmt.Errorf("geom: empty rect region [%v,%v]x[%v,%v]", r.Min.X, r.Max.X, r.Min.Y, r.Max.Y)
		}
	default:
		return fmt.Errorf("geom: unknown region kind %q", r.Kind)
	}
	return nil
}

// Contains reports whether the region contains p. Boundaries are closed in
// both shapes, so a server exactly on the edge of the failure domain fails
// with it.
func (r Region) Contains(p Point) bool {
	switch r.Kind {
	case RegionDisk:
		return r.Center.Dist(p) <= r.Radius
	case RegionRect:
		return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
	}
	return false
}
