package geom

import (
	"math"
	"testing"
	"testing/quick"

	"trimcaching/internal/rng"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.q.Dist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatal("Dist must be symmetric")
		}
	}
}

func TestAdd(t *testing.T) {
	p := Point{1, 2}.Add(3, -1)
	if p.X != 4 || p.Y != 1 {
		t.Fatalf("Add = %v", p)
	}
}

func TestNewAreaInvalid(t *testing.T) {
	for _, side := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewArea(side); err == nil {
			t.Fatalf("NewArea(%v): want error", side)
		}
	}
}

func TestContains(t *testing.T) {
	a, err := NewArea(1000)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{1000, 1000}, true},
		{Point{500, 500}, true},
		{Point{-0.1, 500}, false},
		{Point{500, 1000.1}, false},
	}
	for _, c := range cases {
		if got := a.Contains(c.p); got != c.want {
			t.Fatalf("Contains(%v) = %v", c.p, got)
		}
	}
}

func TestSamplePointsInside(t *testing.T) {
	a, err := NewArea(1000)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	pts := a.SamplePoints(src, 500)
	if len(pts) != 500 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !a.Contains(p) {
			t.Fatalf("sampled point outside area: %v", p)
		}
	}
}

func TestSamplePointsUniformish(t *testing.T) {
	a, err := NewArea(1000)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	var leftHalf int
	const n = 20000
	for i := 0; i < n; i++ {
		if a.SamplePoint(src).X < 500 {
			leftHalf++
		}
	}
	frac := float64(leftHalf) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("left-half fraction %v, want ~0.5", frac)
	}
}

func TestReflectIdentityInside(t *testing.T) {
	a, err := NewArea(100)
	if err != nil {
		t.Fatal(err)
	}
	p, sx, sy := a.Reflect(Point{30, 70})
	if p != (Point{30, 70}) || sx != 1 || sy != 1 {
		t.Fatalf("Reflect inside changed point: %v %v %v", p, sx, sy)
	}
}

func TestReflectKnown(t *testing.T) {
	a, err := NewArea(100)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in  Point
		out Point
		sx  float64
		sy  float64
	}{
		{Point{110, 50}, Point{90, 50}, -1, 1},
		{Point{-10, 50}, Point{10, 50}, -1, 1},
		{Point{50, 130}, Point{50, 70}, 1, -1},
		{Point{250, 50}, Point{50, 50}, 1, 1}, // wraps a full period then reflects
	}
	for _, c := range cases {
		p, sx, sy := a.Reflect(c.in)
		if math.Abs(p.X-c.out.X) > 1e-9 || math.Abs(p.Y-c.out.Y) > 1e-9 {
			t.Fatalf("Reflect(%v) = %v, want %v", c.in, p, c.out)
		}
		if sx != c.sx || sy != c.sy {
			t.Fatalf("Reflect(%v) signs = %v,%v want %v,%v", c.in, sx, sy, c.sx, c.sy)
		}
	}
}

// Property: Reflect always lands inside the area and signs are +/-1.
func TestReflectProperty(t *testing.T) {
	a, err := NewArea(275)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		x = math.Mod(x, 1e7)
		y = math.Mod(y, 1e7)
		p, sx, sy := a.Reflect(Point{x, y})
		if !a.Contains(p) {
			return false
		}
		return (sx == 1 || sx == -1) && (sy == 1 || sy == -1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
