// Package geom provides the 2-D geometry substrate for the wireless edge
// network simulation: the square deployment area, uniform point sampling,
// distances, and boundary reflection for the mobility model (§VII-A, §VII-E
// of the paper).
package geom

import (
	"fmt"
	"math"

	"trimcaching/internal/rng"
)

// Point is a position in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dist returns the Euclidean distance in metres between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point {
	return Point{X: p.X + dx, Y: p.Y + dy}
}

// Area is an axis-aligned square deployment area [0, Side] x [0, Side]
// metres. The paper uses a 1 km^2 square (Side = 1000) for the main
// experiments and 400 m for the exhaustive-search comparison.
type Area struct {
	Side float64 `json:"side"`
}

// NewArea returns a square area with the given side in metres.
func NewArea(side float64) (Area, error) {
	if side <= 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return Area{}, fmt.Errorf("geom: invalid area side %v", side)
	}
	return Area{Side: side}, nil
}

// Contains reports whether p lies inside the area (inclusive).
func (a Area) Contains(p Point) bool {
	return p.X >= 0 && p.X <= a.Side && p.Y >= 0 && p.Y <= a.Side
}

// SamplePoint draws a uniform point inside the area.
func (a Area) SamplePoint(src *rng.Source) Point {
	return Point{X: src.Uniform(0, a.Side), Y: src.Uniform(0, a.Side)}
}

// SamplePoints draws n uniform points inside the area.
func (a Area) SamplePoints(src *rng.Source, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = a.SamplePoint(src)
	}
	return pts
}

// Reflect maps an arbitrary point back into the area by mirror reflection at
// the boundaries, and returns the reflected point together with the sign
// flips to apply to the velocity components. Mobility steps that would leave
// the square bounce off its walls.
func (a Area) Reflect(p Point) (Point, float64, float64) {
	x, sx := reflect1D(p.X, a.Side)
	y, sy := reflect1D(p.Y, a.Side)
	return Point{X: x, Y: y}, sx, sy
}

// reflect1D folds v into [0, side] via repeated mirror reflection and
// returns the coordinate plus the velocity sign (+1 or -1).
func reflect1D(v, side float64) (float64, float64) {
	sign := 1.0
	if side <= 0 {
		return 0, sign
	}
	period := 2 * side
	v = math.Mod(v, period)
	if v < 0 {
		v += period
	}
	if v > side {
		v = period - v
		sign = -1
	}
	return v, sign
}
