package geom

import (
	"encoding/json"
	"testing"
)

func TestRegionContains(t *testing.T) {
	disk := DiskRegion(100, 100, 50)
	rect := RectRegion(0, 0, 200, 100)
	cases := []struct {
		name string
		r    Region
		p    Point
		want bool
	}{
		{"disk center", disk, Point{100, 100}, true},
		{"disk boundary", disk, Point{150, 100}, true},
		{"disk outside", disk, Point{151, 100}, false},
		{"rect inside", rect, Point{50, 50}, true},
		{"rect corner", rect, Point{200, 100}, true},
		{"rect outside", rect, Point{200.5, 50}, false},
		{"unknown kind", Region{Kind: "hex"}, Point{0, 0}, false},
	}
	for _, tc := range cases {
		if got := tc.r.Contains(tc.p); got != tc.want {
			t.Errorf("%s: Contains = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRegionValidate(t *testing.T) {
	if err := DiskRegion(0, 0, 100).Validate(); err != nil {
		t.Errorf("valid disk: %v", err)
	}
	if err := RectRegion(0, 0, 10, 10).Validate(); err != nil {
		t.Errorf("valid rect: %v", err)
	}
	for _, bad := range []Region{
		{Kind: RegionDisk, Radius: -1},
		{Kind: RegionRect, Min: Point{10, 0}, Max: Point{0, 10}},
		{Kind: "hex"},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v validated", bad)
		}
	}
}

// TestRegionRoundTrip pins the JSON shape: fault schedules and gallery
// timelines serialize regions, so the encoding must survive a round trip.
func TestRegionRoundTrip(t *testing.T) {
	for _, r := range []Region{DiskRegion(250, 750, 120), RectRegion(0, 0, 500, 500)} {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Region
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != r {
			t.Errorf("round trip %+v -> %s -> %+v", r, raw, back)
		}
	}
}
