package replacement

import (
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(5), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	w.BackhaulBps = 1e9
	return Config{
		Library: lib,
		Scenario: scenario.GenConfig{
			Topology: topology.Config{AreaSideM: 1000, NumServers: 6, NumUsers: 10, CoverageRadiusM: w.CoverageRadiusM},
			Wireless: w,
			Workload: workload.DefaultConfig(),
		},
		CapacityBytes: 1 << 30,
		DurationMin:   60,
		CheckpointMin: 10,
		SlotS:         5,
		Realizations:  15,
	}
}

func neverPolicy() Policy {
	return Policy{
		Algorithm:            placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
		DegradationThreshold: 10, // effectively never
	}
}

func eagerPolicy() Policy {
	return Policy{
		Algorithm:            placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
		DegradationThreshold: 0.02, // replace on 2% degradation
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := testConfig(t)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Library = nil },
		func(c *Config) { c.CapacityBytes = -1 },
		func(c *Config) { c.DurationMin = 0 },
		func(c *Config) { c.CheckpointMin = 0 },
		func(c *Config) { c.DurationMin = 5; c.CheckpointMin = 10 },
		func(c *Config) { c.SlotS = 0 },
		func(c *Config) { c.Realizations = 0 },
	}
	for i, mut := range muts {
		c := testConfig(t)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d: expected error", i)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := neverPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Policy{}).Validate(); err == nil {
		t.Fatal("empty policy must error")
	}
	bad := neverPolicy()
	bad.DegradationThreshold = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero threshold must error")
	}
}

func TestRunTimeline(t *testing.T) {
	cfg := testConfig(t)
	steps, replacements, err := Run(cfg, neverPolicy(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if replacements != 0 {
		t.Fatalf("never-policy replaced %d times", replacements)
	}
	wantSteps := cfg.DurationMin/cfg.CheckpointMin + 1
	if len(steps) != wantSteps {
		t.Fatalf("%d steps, want %d", len(steps), wantSteps)
	}
	for si, s := range steps {
		if s.TimeMin != float64(si*cfg.CheckpointMin) {
			t.Fatalf("step %d at %v min", si, s.TimeMin)
		}
		if s.HitRatio < 0 || s.HitRatio > 1 {
			t.Fatalf("step %d hit ratio %v", si, s.HitRatio)
		}
		if s.Replaced {
			t.Fatalf("never-policy marked step %d replaced", si)
		}
	}
	if steps[0].HitRatio == 0 {
		t.Fatal("initial placement served nothing")
	}
}

func TestEagerPolicyReplacesAndSustains(t *testing.T) {
	cfg := testConfig(t)
	var frozenSum, eagerSum float64
	var totalReplacements int
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		src := rng.New(uint64(10 + trial))
		frozen, _, err := Run(cfg, neverPolicy(), src)
		if err != nil {
			t.Fatal(err)
		}
		src2 := rng.New(uint64(10 + trial))
		eager, repl, err := Run(cfg, eagerPolicy(), src2)
		if err != nil {
			t.Fatal(err)
		}
		totalReplacements += repl
		for si := range frozen {
			frozenSum += frozen[si].HitRatio
			eagerSum += eager[si].HitRatio
		}
	}
	if totalReplacements == 0 {
		t.Fatal("eager policy never replaced over 3 mobile hours")
	}
	// Re-placing can only help the measured timeline on average.
	if eagerSum < frozenSum*0.98 {
		t.Fatalf("eager policy total %v below frozen %v", eagerSum, frozenSum)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig(t)
	a, ra, err := Run(cfg, eagerPolicy(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := Run(cfg, eagerPolicy(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb || len(a) != len(b) {
		t.Fatal("same seed, different runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}
