// Package replacement implements the model replacement policy the paper
// sketches in §IV: placement is decided on a snapshot of user locations and
// re-initiated only "when the performance degrades to a certain threshold",
// because re-placement consumes backbone bandwidth. This package simulates
// that control loop under user mobility and quantifies the trade-off
// between replacement frequency and sustained hit ratio — the follow-up
// experiment Fig. 7 motivates.
package replacement

import (
	"fmt"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/modellib"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
)

// Policy decides when to re-run placement.
type Policy struct {
	// Algorithm recomputes the placement.
	Algorithm placement.Algorithm
	// DegradationThreshold triggers replacement when the measured hit ratio
	// falls below (1 - DegradationThreshold) times the hit ratio measured
	// right after the last placement. Set >= 1 to never replace.
	DegradationThreshold float64
}

// Validate reports the first invalid field, if any.
func (p Policy) Validate() error {
	if p.Algorithm == nil {
		return fmt.Errorf("replacement: algorithm is required")
	}
	if p.DegradationThreshold <= 0 {
		return fmt.Errorf("replacement: DegradationThreshold must be positive, got %v",
			p.DegradationThreshold)
	}
	return nil
}

// Step is one checkpoint of the control loop.
type Step struct {
	// TimeMin is minutes since the start.
	TimeMin float64 `json:"timeMin"`
	// HitRatio is the fading-averaged hit ratio at this checkpoint.
	HitRatio float64 `json:"hitRatio"`
	// Replaced reports whether the policy re-placed at this checkpoint.
	Replaced bool `json:"replaced"`
}

// Config parameterizes one mobility run with replacement.
type Config struct {
	// Library is the model library.
	Library *modellib.Library
	// Scenario is the deployment distribution.
	Scenario scenario.GenConfig
	// CapacityBytes is the per-server storage budget.
	CapacityBytes int64
	// DurationMin and CheckpointMin shape the timeline (§VII-E: 120 / 10).
	DurationMin   int
	CheckpointMin int
	// SlotS is the mobility slot length (§VII-E: 5 s).
	SlotS float64
	// Realizations is the fading realizations per checkpoint.
	Realizations int
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	if c.Library == nil {
		return fmt.Errorf("replacement: library is required")
	}
	if c.CapacityBytes < 0 {
		return fmt.Errorf("replacement: negative capacity")
	}
	if c.DurationMin <= 0 || c.CheckpointMin <= 0 || c.DurationMin < c.CheckpointMin {
		return fmt.Errorf("replacement: bad timeline %d/%d min", c.DurationMin, c.CheckpointMin)
	}
	if c.SlotS <= 0 {
		return fmt.Errorf("replacement: SlotS must be positive")
	}
	if c.Realizations <= 0 {
		return fmt.Errorf("replacement: Realizations must be positive")
	}
	return nil
}

// Run simulates the control loop once: place at t = 0, walk users, measure
// at each checkpoint, and re-place whenever the policy fires. It returns
// the timeline and the number of replacements (excluding the initial
// placement). The loop itself is the dynamics engine in incremental mode:
// the instance absorbs each checkpoint's user movement as a delta update
// and the algorithm warm-starts from its previous placement.
func Run(cfg Config, pol Policy, src *rng.Source) ([]Step, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if err := pol.Validate(); err != nil {
		return nil, 0, err
	}

	ins, err := scenario.Generate(cfg.Library, cfg.Scenario, src.Split("instance"))
	if err != nil {
		return nil, 0, err
	}
	res, err := dynamics.Run(dynamics.Config{
		Instance:   ins,
		Capacities: placement.UniformCapacities(ins.NumServers(), cfg.CapacityBytes),
		Tracks: []dynamics.Track{{
			Algorithm: pol.Algorithm,
			Trigger:   dynamics.ThresholdTrigger{Degradation: pol.DegradationThreshold},
		}},
		DurationMin:   cfg.DurationMin,
		CheckpointMin: cfg.CheckpointMin,
		SlotS:         cfg.SlotS,
		Realizations:  cfg.Realizations,
	}, src)
	if err != nil {
		return nil, 0, fmt.Errorf("replacement: %w", err)
	}
	steps := make([]Step, len(res.Steps))
	for si, s := range res.Steps {
		steps[si] = Step{TimeMin: s.TimeMin, HitRatio: s.HitRatio[0], Replaced: s.Replaced[0]}
	}
	return steps, res.Replacements[0], nil
}
