// Package mobility implements the user mobility model of §VII-E: three user
// classes (pedestrians, bikes, vehicles) whose speed, acceleration, heading,
// and angular velocity evolve per 5-second time slot, bouncing off the
// deployment-area boundary. The experiment places models once at t = 0 and
// watches the cache hit ratio degrade as users move.
package mobility

import (
	"fmt"
	"math"

	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
)

// Class is a user mobility class.
type Class int

// The paper's three mobility classes.
const (
	Pedestrian Class = iota + 1
	Bike
	Vehicle
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Pedestrian:
		return "pedestrian"
	case Bike:
		return "bike"
	case Vehicle:
		return "vehicle"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Params are the per-class dynamics bounds.
type Params struct {
	// SpeedMinMS/SpeedMaxMS bound the initial speed draw in m/s.
	SpeedMinMS float64
	SpeedMaxMS float64
	// AccMaxMS2 bounds the per-slot acceleration draw: U[-AccMax, AccMax].
	AccMaxMS2 float64
	// AngVelMaxRadS bounds the per-slot angular velocity: U[-Max, Max].
	AngVelMaxRadS float64
	// SpeedCapMS clamps the evolving speed to [0, SpeedCapMS] so random
	// accelerations cannot drift speeds to absurd values; the paper leaves
	// this implicit, we cap at the class's initial maximum.
	SpeedCapMS float64
}

// PaperParams returns §VII-E's parameters: pedestrians 0.5–1.8 m/s with
// ±0.3 m/s² and ±π/4 rad/s; bikes 2–8 m/s, ±1 m/s², ±π/3 rad/s; vehicles
// 5.5–20 m/s, ±3 m/s², ±π/2 rad/s.
func PaperParams(c Class) (Params, error) {
	switch c {
	case Pedestrian:
		return Params{SpeedMinMS: 0.5, SpeedMaxMS: 1.8, AccMaxMS2: 0.3, AngVelMaxRadS: math.Pi / 4, SpeedCapMS: 1.8}, nil
	case Bike:
		return Params{SpeedMinMS: 2, SpeedMaxMS: 8, AccMaxMS2: 1, AngVelMaxRadS: math.Pi / 3, SpeedCapMS: 8}, nil
	case Vehicle:
		return Params{SpeedMinMS: 5.5, SpeedMaxMS: 20, AccMaxMS2: 3, AngVelMaxRadS: math.Pi / 2, SpeedCapMS: 20}, nil
	default:
		return Params{}, fmt.Errorf("mobility: unknown class %d", int(c))
	}
}

// Walker is one moving user.
type Walker struct {
	class   Class
	params  Params
	pos     geom.Point
	speed   float64 // m/s
	heading float64 // radians
}

// NewWalker creates a walker at pos with the paper's initial draws: speed
// uniform in the class range, orientation uniform in [0, π].
func NewWalker(pos geom.Point, class Class, src *rng.Source) (*Walker, error) {
	p, err := PaperParams(class)
	if err != nil {
		return nil, err
	}
	return &Walker{
		class:   class,
		params:  p,
		pos:     pos,
		speed:   src.Uniform(p.SpeedMinMS, p.SpeedMaxMS),
		heading: src.Uniform(0, math.Pi),
	}, nil
}

// Class returns the walker's mobility class.
func (w *Walker) Class() Class { return w.class }

// Pos returns the current position.
func (w *Walker) Pos() geom.Point { return w.pos }

// Speed returns the current speed in m/s.
func (w *Walker) Speed() float64 { return w.speed }

// Step advances the walker by dtS seconds inside area: draw a new
// acceleration and angular velocity, update speed and heading, move, and
// reflect off the boundary.
func (w *Walker) Step(dtS float64, area geom.Area, src *rng.Source) error {
	if dtS <= 0 {
		return fmt.Errorf("mobility: step duration must be positive, got %v", dtS)
	}
	acc := src.Uniform(-w.params.AccMaxMS2, w.params.AccMaxMS2)
	w.speed += acc * dtS
	if w.speed < 0 {
		w.speed = 0
	}
	if w.speed > w.params.SpeedCapMS {
		w.speed = w.params.SpeedCapMS
	}
	angVel := src.Uniform(-w.params.AngVelMaxRadS, w.params.AngVelMaxRadS)
	w.heading += angVel * dtS

	next := w.pos.Add(w.speed*dtS*math.Cos(w.heading), w.speed*dtS*math.Sin(w.heading))
	reflected, sx, sy := area.Reflect(next)
	w.pos = reflected
	if sx < 0 || sy < 0 {
		// Mirror the heading on the axis that bounced.
		dx, dy := math.Cos(w.heading)*sx, math.Sin(w.heading)*sy
		w.heading = math.Atan2(dy, dx)
	}
	return nil
}

// Population is a set of walkers sharing an area.
type Population struct {
	area    geom.Area
	walkers []*Walker
}

// NewPopulation creates walkers at the given positions, cycling through the
// three paper classes (pedestrian, bike, vehicle) so each class gets about a
// third of the users.
func NewPopulation(area geom.Area, positions []geom.Point, src *rng.Source) (*Population, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("mobility: at least one user required")
	}
	classes := []Class{Pedestrian, Bike, Vehicle}
	p := &Population{area: area, walkers: make([]*Walker, len(positions))}
	for i, pos := range positions {
		w, err := NewWalker(pos, classes[i%len(classes)], src)
		if err != nil {
			return nil, err
		}
		p.walkers[i] = w
	}
	return p, nil
}

// Step advances every walker by dtS seconds.
func (p *Population) Step(dtS float64, src *rng.Source) error {
	for _, w := range p.walkers {
		if err := w.Step(dtS, p.area, src); err != nil {
			return err
		}
	}
	return nil
}

// Positions returns the current position of every walker.
func (p *Population) Positions() []geom.Point {
	return p.PositionsInto(make([]geom.Point, len(p.walkers)))
}

// PositionsInto writes the current position of every walker into dst, which
// must have one slot per walker, and returns it. Time-stepped loops reuse
// one buffer across checkpoints.
func (p *Population) PositionsInto(dst []geom.Point) []geom.Point {
	for i, w := range p.walkers {
		dst[i] = w.Pos()
	}
	return dst
}

// Walker returns walker i.
func (p *Population) Walker(i int) *Walker { return p.walkers[i] }

// Len returns the number of walkers.
func (p *Population) Len() int { return len(p.walkers) }
