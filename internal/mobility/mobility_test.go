package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
)

func testArea(t *testing.T) geom.Area {
	t.Helper()
	a, err := geom.NewArea(1000)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPaperParams(t *testing.T) {
	cases := []struct {
		class Class
		vMin  float64
		vMax  float64
	}{
		{Pedestrian, 0.5, 1.8},
		{Bike, 2, 8},
		{Vehicle, 5.5, 20},
	}
	for _, c := range cases {
		p, err := PaperParams(c.class)
		if err != nil {
			t.Fatal(err)
		}
		if p.SpeedMinMS != c.vMin || p.SpeedMaxMS != c.vMax {
			t.Fatalf("%s: speed range [%v,%v]", c.class, p.SpeedMinMS, p.SpeedMaxMS)
		}
		if p.AccMaxMS2 <= 0 || p.AngVelMaxRadS <= 0 {
			t.Fatalf("%s: non-positive dynamics", c.class)
		}
	}
	if _, err := PaperParams(Class(9)); err == nil {
		t.Fatal("unknown class must error")
	}
	if Class(9).String() == "" || Pedestrian.String() != "pedestrian" {
		t.Fatal("String()")
	}
}

func TestWalkerInitialDraws(t *testing.T) {
	area := testArea(t)
	src := rng.New(1)
	for i := 0; i < 200; i++ {
		w, err := NewWalker(area.SamplePoint(src), Bike, src)
		if err != nil {
			t.Fatal(err)
		}
		if w.Speed() < 2 || w.Speed() > 8 {
			t.Fatalf("bike initial speed %v", w.Speed())
		}
		if w.Class() != Bike {
			t.Fatal("class")
		}
	}
}

func TestWalkerStaysInsideArea(t *testing.T) {
	area := testArea(t)
	src := rng.New(2)
	for _, class := range []Class{Pedestrian, Bike, Vehicle} {
		w, err := NewWalker(area.SamplePoint(src), class, src)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 2000; step++ {
			if err := w.Step(5, area, src); err != nil {
				t.Fatal(err)
			}
			if !area.Contains(w.Pos()) {
				t.Fatalf("%s left the area at step %d: %v", class, step, w.Pos())
			}
			if w.Speed() < 0 {
				t.Fatalf("negative speed %v", w.Speed())
			}
		}
	}
}

func TestWalkerSpeedCapped(t *testing.T) {
	area := testArea(t)
	src := rng.New(3)
	w, err := NewWalker(geom.Point{X: 500, Y: 500}, Vehicle, src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PaperParams(Vehicle)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5000; step++ {
		if err := w.Step(5, area, src); err != nil {
			t.Fatal(err)
		}
		if w.Speed() > p.SpeedCapMS+1e-9 {
			t.Fatalf("speed %v exceeds cap %v", w.Speed(), p.SpeedCapMS)
		}
	}
}

func TestWalkerActuallyMoves(t *testing.T) {
	area := testArea(t)
	src := rng.New(4)
	w, err := NewWalker(geom.Point{X: 500, Y: 500}, Vehicle, src)
	if err != nil {
		t.Fatal(err)
	}
	start := w.Pos()
	var moved float64
	for step := 0; step < 10; step++ {
		if err := w.Step(5, area, src); err != nil {
			t.Fatal(err)
		}
	}
	moved = start.Dist(w.Pos())
	if moved < 1 {
		t.Fatalf("vehicle moved only %v m in 50 s", moved)
	}
}

func TestStepInvalidDuration(t *testing.T) {
	area := testArea(t)
	src := rng.New(5)
	w, err := NewWalker(geom.Point{X: 1, Y: 1}, Pedestrian, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Step(0, area, src); err == nil {
		t.Fatal("zero dt must error")
	}
	if err := w.Step(-1, area, src); err == nil {
		t.Fatal("negative dt must error")
	}
}

func TestPopulation(t *testing.T) {
	area := testArea(t)
	src := rng.New(6)
	positions := area.SamplePoints(src, 10)
	pop, err := NewPopulation(area, positions, src)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Len() != 10 {
		t.Fatalf("len %d", pop.Len())
	}
	// Classes cycle: pedestrian, bike, vehicle, pedestrian, ...
	if pop.Walker(0).Class() != Pedestrian || pop.Walker(1).Class() != Bike || pop.Walker(2).Class() != Vehicle {
		t.Fatal("class cycling broken")
	}
	before := pop.Positions()
	if err := pop.Step(5, src); err != nil {
		t.Fatal(err)
	}
	after := pop.Positions()
	var movedAny bool
	for i := range before {
		if !area.Contains(after[i]) {
			t.Fatalf("walker %d left area", i)
		}
		if before[i].Dist(after[i]) > 0.5 {
			movedAny = true
		}
	}
	if !movedAny {
		t.Fatal("nobody moved")
	}
}

func TestPopulationEmpty(t *testing.T) {
	area := testArea(t)
	if _, err := NewPopulation(area, nil, rng.New(7)); err == nil {
		t.Fatal("empty population must error")
	}
}

// Property: after arbitrary step sequences walkers remain inside the area
// with bounded speed.
func TestWalkerInvariantProperty(t *testing.T) {
	area := testArea(t)
	f := func(seed uint64, steps uint8) bool {
		src := rng.New(seed)
		w, err := NewWalker(area.SamplePoint(src), Bike, src)
		if err != nil {
			return false
		}
		p, err := PaperParams(Bike)
		if err != nil {
			return false
		}
		for s := 0; s < int(steps%64)+1; s++ {
			if err := w.Step(5, area, src); err != nil {
				return false
			}
			if !area.Contains(w.Pos()) || w.Speed() < 0 || w.Speed() > p.SpeedCapMS+1e-9 {
				return false
			}
			if math.IsNaN(w.Pos().X) || math.IsNaN(w.Pos().Y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
