package workload

import (
	"testing"

	"trimcaching/internal/rng"
)

func TestNewAliased(t *testing.T) {
	if _, err := NewAliased(0, 5); err == nil {
		t.Error("zero users accepted")
	}
	w, err := NewAliased(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalMass() != 0 {
		t.Errorf("fresh aliased workload has mass %v", w.TotalMass())
	}
	parent, err := Generate(3, 4, DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetUserRows(1, parent.ProbRow(2), parent.DeadlineRow(2), parent.InferRow(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if w.Prob(1, i) != parent.Prob(2, i) || w.DeadlineS(1, i) != parent.DeadlineS(2, i) || w.InferS(1, i) != parent.InferS(2, i) {
			t.Fatalf("row alias mismatch at model %d", i)
		}
		if w.Prob(0, i) != 0 || w.DeadlineS(0, i) != 0 {
			t.Fatalf("unbound slot leaked values at model %d", i)
		}
	}
	if err := w.SetUserRows(3, parent.ProbRow(0), parent.DeadlineRow(0), parent.InferRow(0)); err == nil {
		t.Error("out-of-range user accepted")
	}
	if err := w.SetUserRows(0, parent.ProbRow(0)[:2], parent.DeadlineRow(0), parent.InferRow(0)); err == nil {
		t.Error("short row accepted")
	}
}
