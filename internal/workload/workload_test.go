package workload

import (
	"math"
	"testing"

	"trimcaching/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.ZipfExponent = -1 },
		func(c *Config) { c.DeadlineMinS = -0.1 },
		func(c *Config) { c.DeadlineMaxS = c.DeadlineMinS - 0.1 },
		func(c *Config) { c.InferMinS = -0.1 },
		func(c *Config) { c.InferMaxS = c.InferMinS - 0.01 },
		// Even the fastest inference exceeds the loosest deadline: vacuous.
		func(c *Config) { c.InferMinS, c.InferMaxS = 1.2, 1.3 },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d: expected error", i)
		}
	}
	// Zero-minimum deadlines and inference latencies overlapping the
	// deadline window are valid (such requests are just unservable).
	c := DefaultConfig()
	c.DeadlineMinS = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("zero-minimum deadline must validate: %v", err)
	}
	c = DefaultConfig()
	c.InferMaxS = 0.6
	if err := c.Validate(); err != nil {
		t.Fatalf("inference overlapping the deadline window must validate: %v", err)
	}
}

func TestGenerateInvalidSizes(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Generate(0, 10, cfg, rng.New(1)); err == nil {
		t.Fatal("zero users must error")
	}
	if _, err := Generate(10, 0, cfg, rng.New(1)); err == nil {
		t.Fatal("zero models must error")
	}
}

func TestProbRowsNormalized(t *testing.T) {
	for _, perm := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.PerUserPermutation = perm
		w, err := Generate(30, 30, cfg, rng.New(2))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < w.NumUsers(); k++ {
			var sum float64
			for i := 0; i < w.NumModels(); i++ {
				p := w.Prob(k, i)
				if p < 0 || p > 1 {
					t.Fatalf("p[%d][%d] = %v", k, i, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("perm=%v user %d: probabilities sum to %v", perm, k, sum)
			}
		}
		if math.Abs(w.TotalMass()-30) > 1e-6 {
			t.Fatalf("total mass %v, want 30", w.TotalMass())
		}
	}
}

func TestGlobalRankingWhenNoPermutation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerUserPermutation = false
	w, err := Generate(5, 20, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Every user must share the same popularity ranking (but the ranking is
	// a random permutation of model indexes, decorrelated from family).
	for k := 1; k < w.NumUsers(); k++ {
		for i := 0; i < w.NumModels(); i++ {
			if w.Prob(k, i) != w.Prob(0, i) {
				t.Fatalf("user %d differs from user 0 at model %d", k, i)
			}
		}
	}
	descendingByIndex := true
	for i := 1; i < w.NumModels(); i++ {
		if w.Prob(0, i) > w.Prob(0, i-1) {
			descendingByIndex = false
			break
		}
	}
	if descendingByIndex {
		t.Fatal("global ranking should be a random permutation, not index order")
	}
}

func TestPerUserPermutationDiffers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerUserPermutation = true
	w, err := Generate(10, 50, cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	identical := 0
	for k := 1; k < w.NumUsers(); k++ {
		same := true
		for i := 0; i < w.NumModels(); i++ {
			if w.Prob(k, i) != w.Prob(0, i) {
				same = false
				break
			}
		}
		if same {
			identical++
		}
	}
	if identical > 0 {
		t.Fatalf("%d users share user 0's permutation", identical)
	}
}

func TestDeadlinesWithinPaperRange(t *testing.T) {
	w, err := Generate(20, 30, DefaultConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < w.NumUsers(); k++ {
		for i := 0; i < w.NumModels(); i++ {
			d := w.DeadlineS(k, i)
			if d < 0.5 || d > 1.0 {
				t.Fatalf("deadline[%d][%d] = %v outside [0.5, 1]", k, i, d)
			}
			inf := w.InferS(k, i)
			if inf < 0.02 || inf > 0.1 {
				t.Fatalf("infer[%d][%d] = %v outside [0.02, 0.1]", k, i, inf)
			}
			if inf >= d {
				t.Fatalf("inference %v exceeds deadline %v", inf, d)
			}
		}
	}
}

func TestUserTopModels(t *testing.T) {
	w, err := Generate(5, 25, DefaultConfig(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < w.NumUsers(); k++ {
		top := w.UserTopModels(k)
		if len(top) != 25 {
			t.Fatalf("user %d: %d entries", k, len(top))
		}
		seen := make([]bool, 25)
		for pos := range top {
			i := top[pos]
			if seen[i] {
				t.Fatalf("user %d: duplicate model %d", k, i)
			}
			seen[i] = true
			if pos > 0 && w.Prob(k, top[pos]) > w.Prob(k, top[pos-1]) {
				t.Fatalf("user %d: not sorted at %d", k, pos)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(10, 10, DefaultConfig(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(10, 10, DefaultConfig(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		for i := 0; i < 10; i++ {
			if a.Prob(k, i) != b.Prob(k, i) || a.DeadlineS(k, i) != b.DeadlineS(k, i) {
				t.Fatal("same seed produced different workloads")
			}
		}
	}
}
