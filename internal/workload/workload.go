// Package workload models user demand (§VII-A of the paper): per-user model
// request probabilities following a Zipf law over the model library, QoS
// deadlines on end-to-end latency drawn uniformly from [0.5, 1] s, and
// on-device inference latencies.
package workload

import (
	"fmt"

	"trimcaching/internal/rng"
)

// Config holds the demand-model parameters.
type Config struct {
	// ZipfExponent is the skew s of the request popularity law. The paper
	// cites Zipf [43] without the exponent; 0.8 is the conventional choice
	// for content popularity and is documented in EXPERIMENTS.md.
	ZipfExponent float64 `json:"zipfExponent"`
	// PerUserPermutation randomizes each user's popularity ranking. When
	// false every user shares the global rank order.
	PerUserPermutation bool `json:"perUserPermutation"`
	// DeadlineMinS/DeadlineMaxS bound the E2E latency QoS T̄_{k,i}
	// (paper: [0.5, 1] s).
	DeadlineMinS float64 `json:"deadlineMinS"`
	DeadlineMaxS float64 `json:"deadlineMaxS"`
	// InferMinS/InferMaxS bound the on-device inference latency t_{k,i}.
	// The paper folds inference into the QoS budget without giving the
	// draw; [0.02, 0.1] s covers mobile CNN/LLM-token inference.
	InferMinS float64 `json:"inferMinS"`
	InferMaxS float64 `json:"inferMaxS"`
}

// DefaultConfig returns the documented §VII-A demand parameters. The Zipf
// ranking is global (all users share the popularity order): with per-user
// permutations the aggregate popularity flattens and capacity-sensitivity
// disappears, contradicting Figs. 4–5; with the global ranking the
// Independent baseline duplicates the same top models on every server and
// reproduces the paper's numbers (see EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		ZipfExponent:       0.8,
		PerUserPermutation: false,
		DeadlineMinS:       0.5,
		DeadlineMaxS:       1.0,
		InferMinS:          0.02,
		InferMaxS:          0.1,
	}
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	if c.ZipfExponent < 0 {
		return fmt.Errorf("workload: ZipfExponent must be >= 0, got %v", c.ZipfExponent)
	}
	if !(c.DeadlineMinS >= 0 && c.DeadlineMaxS >= c.DeadlineMinS) {
		return fmt.Errorf("workload: bad deadline range [%v, %v]", c.DeadlineMinS, c.DeadlineMaxS)
	}
	if !(c.InferMinS >= 0 && c.InferMaxS >= c.InferMinS) {
		return fmt.Errorf("workload: bad inference range [%v, %v]", c.InferMinS, c.InferMaxS)
	}
	// Inference latency may exceed individual deadlines (such requests are
	// simply unservable, I1 = 0), but a workload where even the fastest
	// inference exceeds the loosest deadline is vacuous.
	if c.InferMinS >= c.DeadlineMaxS {
		return fmt.Errorf("workload: inference min %v leaves no request servable within deadline max %v",
			c.InferMinS, c.DeadlineMaxS)
	}
	return nil
}

// Workload holds the sampled demand of K users over I models.
type Workload struct {
	numUsers  int
	numModels int
	prob      [][]float64 // p[k][i], each row sums to 1
	deadlineS [][]float64 // T̄[k][i] in seconds
	inferS    [][]float64 // t[k][i] in seconds
	// aliased marks a NewAliased slot table: rows point into a parent
	// workload, so memory accounting counts only the row headers here.
	aliased bool
}

// Generate samples a workload for numUsers users over numModels models.
func Generate(numUsers, numModels int, cfg Config, src *rng.Source) (*Workload, error) {
	if numUsers <= 0 || numModels <= 0 {
		return nil, fmt.Errorf("workload: need positive users (%d) and models (%d)", numUsers, numModels)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	zipf, err := rng.NewZipf(numModels, cfg.ZipfExponent)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	pmf := zipf.PMF()

	w := &Workload{
		numUsers:  numUsers,
		numModels: numModels,
		prob:      make([][]float64, numUsers),
		deadlineS: make([][]float64, numUsers),
		inferS:    make([][]float64, numUsers),
	}
	// One global popularity permutation decorrelates rank from model index
	// (and hence from family/size); per-user mode redraws it per user.
	basePerm := src.Perm(numModels)
	for k := 0; k < numUsers; k++ {
		row := make([]float64, numModels)
		perm := basePerm
		if cfg.PerUserPermutation {
			perm = src.Perm(numModels)
		}
		for rank, i := range perm {
			row[i] = pmf[rank]
		}
		w.prob[k] = row
		dl := make([]float64, numModels)
		inf := make([]float64, numModels)
		for i := 0; i < numModels; i++ {
			dl[i] = src.Uniform(cfg.DeadlineMinS, cfg.DeadlineMaxS)
			inf[i] = src.Uniform(cfg.InferMinS, cfg.InferMaxS)
		}
		w.deadlineS[k] = dl
		w.inferS[k] = inf
	}
	return w, nil
}

// NewAliased returns a workload of numUsers users over numModels models
// whose rows all start as one shared all-zero row: zero request mass and
// zero deadlines (no request servable), the inert state of an unbound
// shard slot. Rows are re-pointed with SetUserRows; nothing is copied, so
// a slot table over a large parent workload costs only row headers.
func NewAliased(numUsers, numModels int) (*Workload, error) {
	if numUsers <= 0 || numModels <= 0 {
		return nil, fmt.Errorf("workload: need positive users (%d) and models (%d)", numUsers, numModels)
	}
	zero := make([]float64, numModels)
	w := &Workload{
		numUsers:  numUsers,
		numModels: numModels,
		prob:      make([][]float64, numUsers),
		deadlineS: make([][]float64, numUsers),
		inferS:    make([][]float64, numUsers),
		aliased:   true,
	}
	for k := 0; k < numUsers; k++ {
		w.prob[k] = zero
		w.deadlineS[k] = zero
		w.inferS[k] = zero
	}
	return w, nil
}

// SetUserRows re-points user k's probability, deadline, and inference rows
// at the given slices (aliased, not copied; callers must treat them as
// immutable while bound). This is the shard layer's slot-rebinding hook: a
// scenario.Instance built over this workload reads rows live, so after a
// swap the instance must be refreshed via Instance.ReviseUsers before its
// derived state is read again.
func (w *Workload) SetUserRows(k int, prob, deadlineS, inferS []float64) error {
	if k < 0 || k >= w.numUsers {
		return fmt.Errorf("workload: user %d out of range [0,%d)", k, w.numUsers)
	}
	if len(prob) != w.numModels || len(deadlineS) != w.numModels || len(inferS) != w.numModels {
		return fmt.Errorf("workload: rows have %d/%d/%d models, want %d",
			len(prob), len(deadlineS), len(inferS), w.numModels)
	}
	w.prob[k] = prob
	w.deadlineS[k] = deadlineS
	w.inferS[k] = inferS
	return nil
}

// SetUserProbRow re-points only user k's probability row (aliased), leaving
// the deadline and inference rows bound. This is the shard layer's
// ownership-flip and parking hook: the user's QoS thresholds are untouched,
// so the owning instance needs only a mass revision
// (Instance.ReviseUsers' massOnly list), not a threshold rebuild.
func (w *Workload) SetUserProbRow(k int, prob []float64) error {
	if k < 0 || k >= w.numUsers {
		return fmt.Errorf("workload: user %d out of range [0,%d)", k, w.numUsers)
	}
	if len(prob) != w.numModels {
		return fmt.Errorf("workload: prob row has %d models, want %d", len(prob), w.numModels)
	}
	w.prob[k] = prob
	return nil
}

// NumUsers returns K.
func (w *Workload) NumUsers() int { return w.numUsers }

// NumModels returns I.
func (w *Workload) NumModels() int { return w.numModels }

// Prob returns p_{k,i}, user k's request probability for model i.
func (w *Workload) Prob(k, i int) float64 { return w.prob[k][i] }

// ProbRow returns user k's probability vector over all models. The slice
// aliases internal state; callers must treat it as read-only.
func (w *Workload) ProbRow(k int) []float64 { return w.prob[k] }

// DeadlineS returns T̄_{k,i}, the E2E latency QoS in seconds.
func (w *Workload) DeadlineS(k, i int) float64 { return w.deadlineS[k][i] }

// DeadlineRow returns user k's deadline vector over all models. The slice
// aliases internal state; callers must treat it as read-only.
func (w *Workload) DeadlineRow(k int) []float64 { return w.deadlineS[k] }

// InferS returns t_{k,i}, the on-device inference latency in seconds.
func (w *Workload) InferS(k, i int) float64 { return w.inferS[k][i] }

// InferRow returns user k's inference-latency vector over all models. The
// slice aliases internal state; callers must treat it as read-only.
func (w *Workload) InferRow(k int) []float64 { return w.inferS[k] }

// TotalMass returns Σ_{k,i} p_{k,i}, the normalizer of eq. (2).
func (w *Workload) TotalMass() float64 {
	var total float64
	for k := range w.prob {
		for _, p := range w.prob[k] {
			total += p
		}
	}
	return total
}

// MemoryBytes returns the heap bytes the workload owns: row headers for
// all three tables, plus the row data for workloads that own their rows.
// Aliased slot tables (NewAliased) count headers only — their rows point
// into a parent workload, which accounts for the data itself.
func (w *Workload) MemoryBytes() int64 {
	const hdrSize = 24 // slice header
	n := int64(cap(w.prob)+cap(w.deadlineS)+cap(w.inferS)) * hdrSize
	if w.aliased {
		return n
	}
	for k := range w.prob {
		n += int64(cap(w.prob[k])+cap(w.deadlineS[k])+cap(w.inferS[k])) * 8
	}
	return n
}

// UserTopModels returns user k's model indexes sorted by decreasing request
// probability (used by the serving simulator and examples for reporting).
func (w *Workload) UserTopModels(k int) []int {
	idx := make([]int, w.numModels)
	for i := range idx {
		idx[i] = i
	}
	row := w.prob[k]
	// Insertion sort by descending probability: numModels is small (≤ a few
	// hundred) and this avoids importing sort for a custom comparator.
	for a := 1; a < len(idx); a++ {
		v := idx[a]
		b := a - 1
		for b >= 0 && row[idx[b]] < row[v] {
			idx[b+1] = idx[b]
			b--
		}
		idx[b+1] = v
	}
	return idx
}
