// Package faults is the deterministic chaos harness: a per-region Markov
// fault process (up / degraded / down, with drawn brownout severities) that
// compiles into the gallery's declarative Timeline of regional events, and
// a soak (RunSoak) that replays randomized schedules through the unsharded
// and sharded engines asserting the engine invariants at every checkpoint —
// no placement mass on dark servers, feasibility under the live degraded
// budgets, request-mass conservation, incremental == rebuild, and
// worker-count / shard-count determinism.
package faults

import (
	"fmt"
	"sort"

	"trimcaching/internal/experiments"
	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
)

// regionState is one region's chain state.
type regionState int

const (
	stateUp regionState = iota
	stateDegraded
	stateDown
)

// Config parameterizes the fault process. Each region runs an independent
// three-state Markov chain, stepped once per checkpoint on its own
// rng.SplitIndex sub-stream, so schedules are deterministic in (config,
// seed) and adding a region never perturbs the others' draws.
type Config struct {
	// Regions are the failure domains. They may overlap; a server inside
	// several regions follows whichever region's event fired last.
	Regions []geom.Region `json:"regions"`
	// Checkpoints is the timeline length the schedule spans.
	Checkpoints int `json:"checkpoints"`
	// PDegrade is the per-checkpoint probability an up region browns out
	// (every server shrunk to one drawn budget).
	PDegrade float64 `json:"pDegrade"`
	// PFail is the per-checkpoint probability an up region blacks out, and
	// of a degraded region escalating to a blackout.
	PFail float64 `json:"pFail"`
	// PRecover is the per-checkpoint probability a degraded or down region
	// returns to full service (servers up, budgets restored).
	PRecover float64 `json:"pRecover"`
	// MinBytes and MaxBytes bound the drawn brownout budget.
	MinBytes int64 `json:"minBytes"`
	MaxBytes int64 `json:"maxBytes"`
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	if len(c.Regions) == 0 {
		return fmt.Errorf("faults: at least one region is required")
	}
	for r, region := range c.Regions {
		if err := region.Validate(); err != nil {
			return fmt.Errorf("faults: region %d: %w", r, err)
		}
	}
	if c.Checkpoints <= 0 {
		return fmt.Errorf("faults: Checkpoints must be positive, got %d", c.Checkpoints)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"PDegrade", c.PDegrade}, {"PFail", c.PFail}, {"PRecover", c.PRecover}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.PDegrade+c.PFail > 1 {
		return fmt.Errorf("faults: PDegrade + PFail = %v exceeds 1", c.PDegrade+c.PFail)
	}
	if c.PRecover+c.PFail > 1 {
		return fmt.Errorf("faults: PRecover + PFail = %v exceeds 1", c.PRecover+c.PFail)
	}
	if c.MinBytes <= 0 || c.MaxBytes < c.MinBytes {
		return fmt.Errorf("faults: budget bounds [%d, %d] invalid", c.MinBytes, c.MaxBytes)
	}
	return nil
}

// Schedule draws one fault schedule: each region's chain is stepped once
// per checkpoint, and every transition emits one regional gallery event —
// CapacityBytes 0 for a blackout, the drawn budget for a brownout, -1 for
// recovery. Events are ordered by checkpoint (region order within one).
func Schedule(cfg Config, src *rng.Source) (experiments.Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return experiments.Timeline{}, err
	}
	if src == nil {
		return experiments.Timeline{}, fmt.Errorf("faults: a random source is required")
	}
	var tl experiments.Timeline
	for r := range cfg.Regions {
		region := cfg.Regions[r]
		stream := src.SplitIndex("region", r)
		state := stateUp
		emit := func(cp int, bytes int64) {
			tl.Events = append(tl.Events, experiments.Event{
				Checkpoint:    cp,
				Kind:          experiments.EventRegional,
				Region:        &region,
				CapacityBytes: bytes,
			})
		}
		for cp := 1; cp <= cfg.Checkpoints; cp++ {
			u := stream.Float64()
			switch state {
			case stateUp:
				switch {
				case u < cfg.PFail:
					state = stateDown
					emit(cp, 0)
				case u < cfg.PFail+cfg.PDegrade:
					state = stateDegraded
					emit(cp, drawBudget(cfg, stream))
				}
			case stateDegraded:
				switch {
				case u < cfg.PRecover:
					state = stateUp
					emit(cp, -1)
				case u < cfg.PRecover+cfg.PFail:
					state = stateDown
					emit(cp, 0)
				}
			case stateDown:
				if u < cfg.PRecover {
					state = stateUp
					emit(cp, -1)
				}
			}
		}
	}
	sort.SliceStable(tl.Events, func(i, j int) bool {
		return tl.Events[i].Checkpoint < tl.Events[j].Checkpoint
	})
	return tl, nil
}

// drawBudget draws a brownout severity in [MinBytes, MaxBytes].
func drawBudget(cfg Config, stream *rng.Source) int64 {
	if cfg.MaxBytes == cfg.MinBytes {
		return cfg.MinBytes
	}
	return cfg.MinBytes + int64(stream.Float64()*float64(cfg.MaxBytes-cfg.MinBytes))
}
