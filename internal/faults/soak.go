// This file is the chaos soak: randomized fault schedules replayed through
// the unsharded engine (where per-checkpoint engine invariants are
// asserted) and cross-checked bit-identical against a Rebuild-mode /
// multi-worker replica, the Shards = 1 sharded engine, and a multi-cell
// sharded engine at two worker counts.
package faults

import (
	"fmt"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/experiments"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/shard"
)

// SoakConfig parameterizes RunSoak.
type SoakConfig struct {
	// NewBase builds a fresh base deployment per engine replay. A factory
	// rather than a value: every replay mutates its instance through fault
	// events, so replays must not share one. The returned config's
	// DurationMin / CheckpointMin must match Process.Checkpoints.
	NewBase func() (dynamics.Config, error)
	// Process is the fault process every schedule is drawn from.
	Process Config
	// Schedules is how many randomized schedules to replay.
	Schedules int
	// Shards is the multi-cell leg's cell count; 0 means 2.
	Shards int
	// Seed makes the whole soak deterministic: schedule n is drawn from
	// rng.New(Seed).SplitIndex("schedule", n).
	Seed uint64
}

// SoakReport summarizes a completed soak.
type SoakReport struct {
	// Schedules is how many schedules were replayed.
	Schedules int `json:"schedules"`
	// Blackouts, Brownouts, and Recoveries count the fault events across
	// all schedules.
	Blackouts  int `json:"blackouts"`
	Brownouts  int `json:"brownouts"`
	Recoveries int `json:"recoveries"`
	// CheckedCheckpoints is how many checkpoints had the full invariant
	// suite asserted.
	CheckedCheckpoints int `json:"checkedCheckpoints"`
}

// RunSoak draws Schedules fault schedules and replays each through five
// engines: the invariant-checked primary (Incremental, one worker), a
// Rebuild-mode four-worker replica, the Shards = 1 sharded engine, and a
// multi-cell sharded engine at one and four workers. All five hit-ratio
// timelines must be bit-identical; any invariant violation or divergence
// is an error naming the schedule and checkpoint.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.NewBase == nil {
		return nil, fmt.Errorf("faults: NewBase is required")
	}
	if cfg.Schedules <= 0 {
		return nil, fmt.Errorf("faults: Schedules must be positive, got %d", cfg.Schedules)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 2
	}
	rep := &SoakReport{Schedules: cfg.Schedules}
	for n := 0; n < cfg.Schedules; n++ {
		src := rng.New(cfg.Seed).SplitIndex("schedule", n)
		tl, err := Schedule(cfg.Process, src.Split("process"))
		if err != nil {
			return nil, err
		}
		for _, ev := range tl.Events {
			switch {
			case ev.CapacityBytes == 0:
				rep.Blackouts++
			case ev.CapacityBytes < 0:
				rep.Recoveries++
			default:
				rep.Brownouts++
			}
		}
		engSeed := src.Split("engine").Uint64()

		primary, err := replayDynamics(cfg.NewBase, engSeed, tl, dynamics.Incremental, 1, rep)
		if err != nil {
			return nil, fmt.Errorf("faults: schedule %d: %w", n, err)
		}
		rebuild, err := replayDynamics(cfg.NewBase, engSeed, tl, dynamics.Rebuild, 4, nil)
		if err != nil {
			return nil, fmt.Errorf("faults: schedule %d: %w", n, err)
		}
		if err := sameTimelines("rebuild/4-worker vs primary", rebuild, primary); err != nil {
			return nil, fmt.Errorf("faults: schedule %d: %w", n, err)
		}
		single, err := replayShard(cfg.NewBase, engSeed, tl, 1, 1)
		if err != nil {
			return nil, fmt.Errorf("faults: schedule %d: %w", n, err)
		}
		if err := sameTimelines("shards=1 vs primary", single, primary); err != nil {
			return nil, fmt.Errorf("faults: schedule %d: %w", n, err)
		}
		multi1, err := replayShard(cfg.NewBase, engSeed, tl, shards, 1)
		if err != nil {
			return nil, fmt.Errorf("faults: schedule %d: %w", n, err)
		}
		multi4, err := replayShard(cfg.NewBase, engSeed, tl, shards, 4)
		if err != nil {
			return nil, fmt.Errorf("faults: schedule %d: %w", n, err)
		}
		if err := sameTimelines(fmt.Sprintf("shards=%d 4-worker vs 1-worker", shards), multi4, multi1); err != nil {
			return nil, fmt.Errorf("faults: schedule %d: %w", n, err)
		}
	}
	return rep, nil
}

// eventsAt returns the schedule's events firing at checkpoint cp, in
// schedule order (mirroring the gallery's replay order).
func eventsAt(tl experiments.Timeline, cp int) []experiments.Event {
	var evs []experiments.Event
	for _, ev := range tl.Events {
		if ev.Checkpoint == cp {
			evs = append(evs, ev)
		}
	}
	return evs
}

// replayDynamics drives one unsharded engine through the schedule and
// returns its per-checkpoint hit ratios (per track, including t = 0). A
// non-nil report enables the per-checkpoint invariant suite.
func replayDynamics(newBase func() (dynamics.Config, error), seed uint64, tl experiments.Timeline, mode dynamics.Mode, workers int, rep *SoakReport) ([][]float64, error) {
	base, err := newBase()
	if err != nil {
		return nil, err
	}
	base.Mode = mode
	base.Workers = workers
	eng, err := dynamics.NewEngine(base, rng.New(seed))
	if err != nil {
		return nil, err
	}
	tracks := len(base.Tracks)
	var eval *placement.Evaluator
	var mass0 float64
	if rep != nil {
		if eval, err = placement.NewEvaluator(eng.Instance()); err != nil {
			return nil, err
		}
		mass0 = eng.Instance().TotalMass()
	}
	t0 := make([]float64, tracks)
	for a := range t0 {
		t0[a] = eng.Baseline(a)
	}
	steps := [][]float64{t0}
	for cp := 1; cp <= eng.Checkpoints(); cp++ {
		faulted := false
		for _, ev := range eventsAt(tl, cp) {
			if err := applyDynamics(eng, ev); err != nil {
				return nil, fmt.Errorf("checkpoint %d: %w", cp, err)
			}
			faulted = true
		}
		if faulted {
			for a := 0; a < tracks; a++ {
				if _, err := eng.Replace(a, cp); err != nil {
					return nil, fmt.Errorf("checkpoint %d: %w", cp, err)
				}
			}
		}
		if err := eng.Advance(); err != nil {
			return nil, err
		}
		if err := eng.Refresh(); err != nil {
			return nil, err
		}
		st, err := eng.Step(cp)
		if err != nil {
			return nil, err
		}
		steps = append(steps, append([]float64(nil), st.HitRatio...))
		if rep != nil {
			if err := verifyInvariants(eng, eval, tracks, mass0); err != nil {
				return nil, fmt.Errorf("checkpoint %d: %w", cp, err)
			}
			rep.CheckedCheckpoints++
		}
	}
	return steps, nil
}

// replayShard drives one sharded engine through the same schedule.
func replayShard(newBase func() (dynamics.Config, error), seed uint64, tl experiments.Timeline, shards, workers int) ([][]float64, error) {
	base, err := newBase()
	if err != nil {
		return nil, err
	}
	scfg, err := shard.FromDynamics(base, shards)
	if err != nil {
		return nil, err
	}
	scfg.Workers = workers
	scfg.MeasureWorkers = workers
	se, err := shard.NewEngine(scfg, rng.New(seed))
	if err != nil {
		return nil, err
	}
	steps := [][]float64{append([]float64(nil), se.InitialStep().HitRatio...)}
	for cp := 1; cp <= se.Checkpoints(); cp++ {
		faulted := false
		for _, ev := range eventsAt(tl, cp) {
			if err := applyShard(se, ev); err != nil {
				return nil, fmt.Errorf("checkpoint %d: %w", cp, err)
			}
			faulted = true
		}
		if faulted {
			if err := se.ForceReplace(cp); err != nil {
				return nil, fmt.Errorf("checkpoint %d: %w", cp, err)
			}
		}
		st, err := se.Checkpoint(cp)
		if err != nil {
			return nil, err
		}
		steps = append(steps, append([]float64(nil), st.HitRatio...))
	}
	return steps, nil
}

// applyDynamics replays one regional event on the unsharded engine, with
// the gallery's semantics: 0 is a blackout, negative recovers and restores,
// positive is a brownout budget.
func applyDynamics(eng *dynamics.Engine, ev experiments.Event) error {
	switch {
	case ev.CapacityBytes == 0:
		return eng.SetRegionDown(*ev.Region, true)
	case ev.CapacityBytes < 0:
		if err := eng.SetRegionDown(*ev.Region, false); err != nil {
			return err
		}
		return eng.DegradeRegion(*ev.Region, -1)
	default:
		return eng.DegradeRegion(*ev.Region, ev.CapacityBytes)
	}
}

// applyShard replays one regional event on the sharded engine.
func applyShard(se *shard.Engine, ev experiments.Event) error {
	switch {
	case ev.CapacityBytes == 0:
		return se.SetRegionDown(*ev.Region, true)
	case ev.CapacityBytes < 0:
		if err := se.SetRegionDown(*ev.Region, false); err != nil {
			return err
		}
		return se.DegradeRegion(*ev.Region, -1)
	default:
		return se.DegradeRegion(*ev.Region, ev.CapacityBytes)
	}
}

// verifyInvariants asserts the engine invariants on the primary replica at
// one checkpoint: request mass is conserved, no placement occupies a dark
// server, and every track's placement is feasible under the live (possibly
// degraded) budgets.
func verifyInvariants(eng *dynamics.Engine, eval *placement.Evaluator, tracks int, mass0 float64) error {
	ins := eng.Instance()
	if got := ins.TotalMass(); got != mass0 {
		return fmt.Errorf("request mass drifted: %v, want %v", got, mass0)
	}
	caps := make([]int64, ins.NumServers())
	for m := range caps {
		caps[m] = eng.ServerCapacityBytes(m)
	}
	down := ins.DownServers()
	for a := 0; a < tracks; a++ {
		p := eng.Placement(a)
		for _, m := range down {
			if n := p.Models(m).Count(); n != 0 {
				return fmt.Errorf("track %d: %d models placed on dark server %d", a, n, m)
			}
		}
		if err := eval.CheckFeasible(p, caps); err != nil {
			return fmt.Errorf("track %d: %w", a, err)
		}
	}
	return nil
}

// sameTimelines compares two hit-ratio timelines bit-for-bit.
func sameTimelines(label string, got, want [][]float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d steps, want %d", label, len(got), len(want))
	}
	for cp := range want {
		if len(got[cp]) != len(want[cp]) {
			return fmt.Errorf("%s: checkpoint %d has %d tracks, want %d", label, cp, len(got[cp]), len(want[cp]))
		}
		for a := range want[cp] {
			if got[cp][a] != want[cp][a] {
				return fmt.Errorf("%s: checkpoint %d track %d hit ratio %v, want %v", label, cp, a, got[cp][a], want[cp][a])
			}
		}
	}
	return nil
}
