package faults

import (
	"encoding/json"
	"testing"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/experiments"
	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
)

// testProcess is a fault process over the smoke deployment's 600 m area:
// two half-area failure domains plus an overlapping central disk, busy
// enough that an 8-checkpoint schedule usually carries several events.
func testProcess(checkpoints int) Config {
	return Config{
		Regions: []geom.Region{
			geom.RectRegion(0, 0, 300, 600),
			geom.RectRegion(300, 0, 600, 600),
			geom.DiskRegion(300, 300, 250),
		},
		Checkpoints: checkpoints,
		PDegrade:    0.3,
		PFail:       0.2,
		PRecover:    0.5,
		MinBytes:    3 << 30,
		MaxBytes:    6 << 30,
	}
}

// TestScheduleDeterministic pins the schedule draw: the same (config, seed)
// reproduces the identical timeline, and the chain emits well-formed event
// sequences per region — a fault before every recovery, budgets within the
// configured bounds, checkpoints ascending and in range.
func TestScheduleDeterministic(t *testing.T) {
	cfg := testProcess(12)
	tl, err := Schedule(cfg, rng.New(3).Split("process"))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Schedule(cfg, rng.New(3).Split("process"))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(tl)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatalf("same seed drew different schedules:\n%s\n%s", a, b)
	}
	if len(tl.Events) == 0 {
		t.Fatal("schedule drew no events; pick a busier process for the test")
	}
	last := 0
	perRegion := map[*geom.Region]regionState{}
	for e, ev := range tl.Events {
		if ev.Kind != experiments.EventRegional {
			t.Fatalf("event %d has kind %q, want regional", e, ev.Kind)
		}
		if ev.Checkpoint < last || ev.Checkpoint < 1 || ev.Checkpoint > cfg.Checkpoints {
			t.Fatalf("event %d at checkpoint %d out of order or range", e, ev.Checkpoint)
		}
		last = ev.Checkpoint
		state := perRegion[ev.Region]
		switch {
		case ev.CapacityBytes == 0:
			if state == stateDown {
				t.Fatalf("event %d blacks out an already-down region", e)
			}
			perRegion[ev.Region] = stateDown
		case ev.CapacityBytes < 0:
			if state == stateUp {
				t.Fatalf("event %d recovers an up region", e)
			}
			perRegion[ev.Region] = stateUp
		default:
			if state != stateUp {
				t.Fatalf("event %d browns out a region in state %d", e, state)
			}
			if ev.CapacityBytes < cfg.MinBytes || ev.CapacityBytes > cfg.MaxBytes {
				t.Fatalf("event %d budget %d outside [%d, %d]", e, ev.CapacityBytes, cfg.MinBytes, cfg.MaxBytes)
			}
			perRegion[ev.Region] = stateDegraded
		}
	}
}

// TestScheduleValidation exercises the config guards.
func TestScheduleValidation(t *testing.T) {
	base := testProcess(8)
	cases := []struct {
		label  string
		mutate func(*Config)
	}{
		{"no regions", func(c *Config) { c.Regions = nil }},
		{"bad region", func(c *Config) { c.Regions[0].Kind = "hex" }},
		{"no checkpoints", func(c *Config) { c.Checkpoints = 0 }},
		{"probability above 1", func(c *Config) { c.PRecover = 1.5 }},
		{"fault mass above 1", func(c *Config) { c.PDegrade, c.PFail = 0.7, 0.6 }},
		{"inverted budget bounds", func(c *Config) { c.MinBytes, c.MaxBytes = 4<<30, 2<<30 }},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Regions = append([]geom.Region(nil), base.Regions...)
		tc.mutate(&cfg)
		if _, err := Schedule(cfg, rng.New(1)); err == nil {
			t.Errorf("%s: Schedule accepted an invalid config", tc.label)
		}
	}
	if _, err := Schedule(base, nil); err == nil {
		t.Error("Schedule accepted a nil source")
	}
}

// soakBase builds the smoke deployment stretched to the given checkpoint
// count — a fresh instance per call, as RunSoak's replays require.
func soakBase(checkpoints int) func() (dynamics.Config, error) {
	return func() (dynamics.Config, error) {
		dc, err := dynamics.NewSmokeScaleConfig(dynamics.Incremental)
		if err != nil {
			return dynamics.Config{}, err
		}
		dc.DurationMin = checkpoints * dc.CheckpointMin
		return dc, nil
	}
}

// TestChaosSoak is the CI chaos harness: randomized regional fault
// schedules replayed through five engine variants with every checkpoint's
// invariants asserted and all timelines pinned bit-identical. Short mode
// (the CI default, plain and under -race) runs two schedules.
func TestChaosSoak(t *testing.T) {
	const checkpoints = 8
	schedules := 5
	if testing.Short() {
		schedules = 2
	}
	rep, err := RunSoak(SoakConfig{
		NewBase:   soakBase(checkpoints),
		Process:   testProcess(checkpoints),
		Schedules: schedules,
		Shards:    2,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckedCheckpoints != schedules*checkpoints {
		t.Errorf("checked %d checkpoints, want %d", rep.CheckedCheckpoints, schedules*checkpoints)
	}
	if rep.Blackouts+rep.Brownouts == 0 {
		t.Error("soak replayed no fault events; pick a busier process or seed")
	}
	if rep.Recoveries == 0 {
		t.Error("soak replayed no recoveries; pick a busier process or seed")
	}
}

// TestSoakDeterministic pins the soak itself: two runs of the same config
// produce the identical report.
func TestSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{
		NewBase:   soakBase(6),
		Process:   testProcess(6),
		Schedules: 2,
		Shards:    2,
		Seed:      4,
	}
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("soak reports diverged: %+v vs %+v", a, b)
	}
}
