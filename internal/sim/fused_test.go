package sim

import (
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// TestFusedSessionMatchesUnfusedAcrossWorkers pins the session-level half
// of the fused-kernel equivalence: for random instances, both on the
// construction-time rank index and after an in-place update has revised
// thresholds, Evaluate must equal EvaluateUnfused exactly — not within
// epsilon — and both must be bit-identical for every worker count and
// every realization block size (auto, per-realization, sizes that split
// the 17 realizations unevenly, and one covering them all).
func TestFusedSessionMatchesUnfusedAcrossWorkers(t *testing.T) {
	for seed := uint64(90); seed < 93; seed++ {
		lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(3), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		w := wireless.DefaultConfig()
		ins, err := scenario.Generate(lib, scenario.GenConfig{
			Topology: topology.Config{AreaSideM: 1000, NumServers: 5, NumUsers: 12, CoverageRadiusM: w.CoverageRadiusM},
			Wireless: w,
			Workload: workload.DefaultConfig(),
		}, rng.New(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		eval, err := placement.NewEvaluator(ins)
		if err != nil {
			t.Fatal(err)
		}
		caps := placement.UniformCapacities(5, 1<<29)
		p, err := placement.TrimCachingGen(eval, caps, placement.GenOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		placements := []*placement.Placement{p}

		check := func(label string) {
			t.Helper()
			var want []float64
			for workers := 1; workers <= 4; workers++ {
				for _, bs := range []int{0, 1, 2, 3, 5, 17} {
					s := NewFadingSession(ins, workers)
					s.SetBlockSize(bs)
					fused, err := s.Evaluate(eval, placements, 17, rng.New(seed+2))
					if err != nil {
						t.Fatal(err)
					}
					unfused, err := s.EvaluateUnfused(eval, placements, 17, rng.New(seed+2))
					if err != nil {
						t.Fatal(err)
					}
					if fused[0] != unfused[0] {
						t.Fatalf("%s workers=%d block=%d: fused %.17g != unfused %.17g", label, workers, bs, fused[0], unfused[0])
					}
					if want == nil {
						want = fused
					} else if fused[0] != want[0] {
						t.Fatalf("%s workers=%d block=%d: %.17g differs from first %.17g", label, workers, bs, fused[0], want[0])
					}
				}
			}
		}
		check("fresh")

		// A no-op move revises thresholds through the update path; the
		// rank prefixes must still agree exactly afterwards.
		all := make([]int, ins.NumUsers())
		for k := range all {
			all[k] = k
		}
		if _, err := ins.UpdateUsers(all, ins.Topology().UserPositions()); err != nil {
			t.Fatal(err)
		}
		check("ranked")
	}
}
