package sim

import (
	"math"
	"runtime"
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

func testConfig(t *testing.T, algorithms []placement.Algorithm) TrialConfig {
	t.Helper()
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(4), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	return TrialConfig{
		Library: lib,
		Scenario: scenario.GenConfig{
			Topology: topology.Config{AreaSideM: 1000, NumServers: 4, NumUsers: 10, CoverageRadiusM: w.CoverageRadiusM},
			Wireless: w,
			Workload: workload.DefaultConfig(),
		},
		CapacityBytes: 1 << 29, // 512 MB
		Algorithms:    algorithms,
		Topologies:    6,
		Realizations:  25,
		Seed:          42,
	}
}

func defaultAlgs(t *testing.T) []placement.Algorithm {
	t.Helper()
	var algs []placement.Algorithm
	for _, name := range []string{"spec", "gen", "independent"} {
		a, err := placement.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		algs = append(algs, a)
	}
	return algs
}

func TestValidate(t *testing.T) {
	cfg := testConfig(t, defaultAlgs(t))
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*TrialConfig){
		func(c *TrialConfig) { c.Library = nil },
		func(c *TrialConfig) { c.Algorithms = nil },
		func(c *TrialConfig) { c.CapacityBytes = -1 },
		func(c *TrialConfig) { c.Topologies = 0 },
		func(c *TrialConfig) { c.Realizations = 0 },
		func(c *TrialConfig) { c.Workers = -1 },
	}
	for i, mut := range muts {
		c := testConfig(t, defaultAlgs(t))
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d: expected error", i)
		}
	}
}

func TestRunShapes(t *testing.T) {
	cfg := testConfig(t, defaultAlgs(t))
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Name] = true
		if r.HitRatio.N != cfg.Topologies {
			t.Fatalf("%s: %d samples, want %d", r.Name, r.HitRatio.N, cfg.Topologies)
		}
		if r.HitRatio.Mean < 0 || r.HitRatio.Mean > 1 {
			t.Fatalf("%s: hit ratio %v", r.Name, r.HitRatio.Mean)
		}
		if r.PlaceSeconds.Mean < 0 {
			t.Fatalf("%s: negative time", r.Name)
		}
	}
	if !names["TrimCaching Spec"] || !names["TrimCaching Gen"] || !names["Independent Caching"] {
		t.Fatalf("missing algorithm names: %v", names)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig(t, defaultAlgs(t)[:1])
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a[0].HitRatio.Mean-b[0].HitRatio.Mean) > 1e-12 {
		t.Fatalf("same seed, different means: %v vs %v", a[0].HitRatio.Mean, b[0].HitRatio.Mean)
	}
	if math.Abs(a[0].HitRatio.StdDev-b[0].HitRatio.StdDev) > 1e-12 {
		t.Fatal("same seed, different stddev")
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	cfg := testConfig(t, defaultAlgs(t)[:2])
	cfg.Workers = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for a := range serial {
		if math.Abs(serial[a].HitRatio.Mean-parallel[a].HitRatio.Mean) > 1e-12 {
			t.Fatalf("%s: serial %v vs parallel %v", serial[a].Name,
				serial[a].HitRatio.Mean, parallel[a].HitRatio.Mean)
		}
	}
}

func TestRunOrderingSpecGenIndependent(t *testing.T) {
	// The paper's central comparison: Spec >= Gen >= Independent on
	// average in the special case with binding storage.
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(8), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, defaultAlgs(t))
	cfg.Library = lib
	cfg.CapacityBytes = 1 << 28 // 256 MB: binding
	cfg.Topologies = 8
	cfg.Realizations = 20
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AlgoResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	spec := byName["TrimCaching Spec"].HitRatio.Mean
	gen := byName["TrimCaching Gen"].HitRatio.Mean
	ind := byName["Independent Caching"].HitRatio.Mean
	if spec < gen-0.02 {
		t.Fatalf("Spec %v well below Gen %v", spec, gen)
	}
	if gen <= ind {
		t.Fatalf("Gen %v not above Independent %v", gen, ind)
	}
}

func TestFadingMeanBelowAverageChannel(t *testing.T) {
	// Rayleigh fading can only lose QoS-constrained hits relative to the
	// average channel on average... not strictly, but the fading mean
	// should be close to (and typically below) the average-channel ratio.
	cfg := testConfig(t, defaultAlgs(t)[:1])
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.HitRatio.Mean > r.AvgHitRatio.Mean+0.1 {
		t.Fatalf("fading mean %v implausibly above average-channel %v",
			r.HitRatio.Mean, r.AvgHitRatio.Mean)
	}
}

func TestEvaluateUnderFadingValidation(t *testing.T) {
	cfg := testConfig(t, defaultAlgs(t)[:1])
	ins, err := scenario.Generate(cfg.Library, cfg.Scenario, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPlacement(ins.NumServers(), ins.NumModels())
	if _, err := EvaluateUnderFading(eval, []*placement.Placement{p}, 0, rng.New(4)); err == nil {
		t.Fatal("zero realizations must error")
	}
	hits, err := EvaluateUnderFading(eval, []*placement.Placement{p}, 5, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if hits[0] != 0 {
		t.Fatalf("empty placement hit ratio %v", hits[0])
	}
}

// TestEvaluateUnderFadingDeterministic verifies the parallel evaluator's
// contract: results are bit-identical to a sequential single-threaded
// reference for any worker count, because realization r draws its gains
// from src.SplitIndex("real", r) and the reduction runs in realization
// order.
func TestEvaluateUnderFadingDeterministic(t *testing.T) {
	cfg := testConfig(t, defaultAlgs(t))
	ins, err := scenario.Generate(cfg.Library, cfg.Scenario, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	caps := placement.UniformCapacities(ins.NumServers(), cfg.CapacityBytes)
	var placements []*placement.Placement
	for _, alg := range cfg.Algorithms {
		p, err := alg.Place(eval, caps)
		if err != nil {
			t.Fatal(err)
		}
		placements = append(placements, p)
	}

	const realizations = 64
	const seed = 1234

	// Sequential reference: same per-realization splits, plain loop.
	ref := make([]float64, len(placements))
	src := rng.New(seed)
	buf := ins.MakeReachBuffer()
	for r := 0; r < realizations; r++ {
		gains := scenario.SampleGains(ins.NumServers(), ins.NumUsers(), src.SplitIndex("real", r))
		reach, err := ins.FadedReach(gains, buf)
		if err != nil {
			t.Fatal(err)
		}
		for a, p := range placements {
			hr, err := eval.HitRatioWithReach(p, reach)
			if err != nil {
				t.Fatal(err)
			}
			ref[a] += hr
		}
	}
	for a := range ref {
		ref[a] /= realizations
	}

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got, err := EvaluateUnderFadingWorkers(eval, placements, realizations, workers, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for a := range placements {
			if got[a] != ref[a] {
				t.Fatalf("workers=%d placement %d: got %.17g, reference %.17g (must be bit-identical)",
					workers, a, got[a], ref[a])
			}
		}
	}
}
