// Package sim is the Monte-Carlo evaluation harness of §VII-A: placement
// decisions are computed on average channel gains, then the cache hit ratio
// is measured over Rayleigh block-fading realizations; results are averaged
// over many random network topologies with standard-deviation error bars.
// Trials run in parallel on a bounded worker pool.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"trimcaching/internal/modellib"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/stats"
)

// TrialConfig describes one experiment point: a library, a scenario
// distribution, a storage capacity, and the algorithms to compare.
type TrialConfig struct {
	// Library is the fixed parameter-sharing model library.
	Library *modellib.Library
	// Scenario is the distribution of topologies and workloads.
	Scenario scenario.GenConfig
	// CapacityBytes is the per-server storage capacity Q.
	CapacityBytes int64
	// CapacityFactors optionally makes capacities heterogeneous: server m
	// gets CapacityBytes scaled by CapacityFactors[m mod len]. Empty means
	// uniform capacities (the paper's setting).
	CapacityFactors []float64
	// Algorithms are the placement algorithms to compare on identical
	// instances and identical fading realizations.
	Algorithms []placement.Algorithm
	// Topologies is the number of random network topologies (paper: 100).
	Topologies int
	// Realizations is the number of Rayleigh fading realizations per
	// topology (paper: >10^3).
	Realizations int
	// Workers bounds the parallel trial goroutines; 0 means GOMAXPROCS.
	Workers int
	// Seed makes the whole run reproducible.
	Seed uint64
}

// Validate reports the first invalid field, if any.
func (c TrialConfig) Validate() error {
	if c.Library == nil {
		return fmt.Errorf("sim: library is required")
	}
	if len(c.Algorithms) == 0 {
		return fmt.Errorf("sim: at least one algorithm is required")
	}
	if c.CapacityBytes < 0 {
		return fmt.Errorf("sim: negative capacity %d", c.CapacityBytes)
	}
	for fi, f := range c.CapacityFactors {
		if f < 0 {
			return fmt.Errorf("sim: negative capacity factor %v at %d", f, fi)
		}
	}
	if c.Topologies <= 0 {
		return fmt.Errorf("sim: Topologies must be positive, got %d", c.Topologies)
	}
	if c.Realizations <= 0 {
		return fmt.Errorf("sim: Realizations must be positive, got %d", c.Realizations)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: Workers must be >= 0, got %d", c.Workers)
	}
	return nil
}

// AlgoResult aggregates one algorithm's performance across topologies.
type AlgoResult struct {
	// Name is the algorithm display name.
	Name string
	// HitRatio summarizes the per-topology fading-averaged hit ratios.
	HitRatio stats.Summary
	// AvgHitRatio summarizes the per-topology hit ratios under the average
	// channel (no fading), useful for debugging the fading gap.
	AvgHitRatio stats.Summary
	// PlaceSeconds summarizes the per-topology placement wall time (the
	// running-time axis of Fig. 6).
	PlaceSeconds stats.Summary
}

// trialOutcome is one topology's result for all algorithms.
type trialOutcome struct {
	hit     []float64
	avgHit  []float64
	seconds []float64
	err     error
}

// Run executes the experiment point and aggregates per-algorithm summaries.
func Run(cfg TrialConfig) ([]AlgoResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Topologies {
		workers = cfg.Topologies
	}

	root := rng.New(cfg.Seed)
	outcomes := make([]trialOutcome, cfg.Topologies)

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				outcomes[t] = runTrial(cfg, root.SplitIndex("trial", t))
			}
		}()
	}
	for t := 0; t < cfg.Topologies; t++ {
		next <- t
	}
	close(next)
	wg.Wait()

	accHit := make([]stats.Accumulator, len(cfg.Algorithms))
	accAvg := make([]stats.Accumulator, len(cfg.Algorithms))
	accSec := make([]stats.Accumulator, len(cfg.Algorithms))
	for t := range outcomes {
		if outcomes[t].err != nil {
			return nil, fmt.Errorf("sim: trial %d: %w", t, outcomes[t].err)
		}
		for a := range cfg.Algorithms {
			accHit[a].Add(outcomes[t].hit[a])
			accAvg[a].Add(outcomes[t].avgHit[a])
			accSec[a].Add(outcomes[t].seconds[a])
		}
	}
	results := make([]AlgoResult, len(cfg.Algorithms))
	for a, alg := range cfg.Algorithms {
		results[a] = AlgoResult{
			Name:         alg.Name(),
			HitRatio:     accHit[a].Summarize(),
			AvgHitRatio:  accAvg[a].Summarize(),
			PlaceSeconds: accSec[a].Summarize(),
		}
	}
	return results, nil
}

// runTrial builds one random instance, places with every algorithm, and
// evaluates all placements under the same fading realizations.
func runTrial(cfg TrialConfig, src *rng.Source) trialOutcome {
	out := trialOutcome{
		hit:     make([]float64, len(cfg.Algorithms)),
		avgHit:  make([]float64, len(cfg.Algorithms)),
		seconds: make([]float64, len(cfg.Algorithms)),
	}
	ins, err := scenario.Generate(cfg.Library, cfg.Scenario, src.Split("instance"))
	if err != nil {
		out.err = err
		return out
	}
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		out.err = err
		return out
	}
	caps := placement.UniformCapacities(ins.NumServers(), cfg.CapacityBytes)
	for m := range caps {
		if len(cfg.CapacityFactors) > 0 {
			caps[m] = int64(float64(cfg.CapacityBytes) * cfg.CapacityFactors[m%len(cfg.CapacityFactors)])
		}
	}

	placements := make([]*placement.Placement, len(cfg.Algorithms))
	for a, alg := range cfg.Algorithms {
		start := time.Now()
		p, err := alg.Place(eval, caps)
		out.seconds[a] = time.Since(start).Seconds()
		if err != nil {
			out.err = fmt.Errorf("%s: %w", alg.Name(), err)
			return out
		}
		if err := eval.CheckFeasible(p, caps); err != nil {
			out.err = fmt.Errorf("%s: %w", alg.Name(), err)
			return out
		}
		placements[a] = p
		if out.avgHit[a], err = eval.HitRatio(p); err != nil {
			out.err = err
			return out
		}
	}

	hits, err := EvaluateUnderFading(eval, placements, cfg.Realizations, src.Split("fading"))
	if err != nil {
		out.err = err
		return out
	}
	copy(out.hit, hits)
	return out
}

// EvaluateUnderFading measures each placement's expected hit ratio over the
// given number of Rayleigh fading realizations. All placements see identical
// realizations so comparisons are paired. Realizations are scored in
// parallel on a bounded worker pool (GOMAXPROCS workers); see
// EvaluateUnderFadingWorkers for the determinism contract.
func EvaluateUnderFading(eval *placement.Evaluator, placements []*placement.Placement, realizations int, src *rng.Source) ([]float64, error) {
	return EvaluateUnderFadingWorkers(eval, placements, realizations, 0, src)
}

// EvaluateUnderFadingWorkers is EvaluateUnderFading with an explicit worker
// count (0 means GOMAXPROCS). It builds a one-shot FadingSession; loops
// that evaluate repeatedly over same-sized instances (one call per mobility
// checkpoint) should hold a session and reuse its buffers instead.
func EvaluateUnderFadingWorkers(eval *placement.Evaluator, placements []*placement.Placement, realizations, workers int, src *rng.Source) ([]float64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Clamp before building the one-shot session so no unused per-worker
	// buffers are allocated for small realization counts.
	if realizations > 0 && workers > realizations {
		workers = realizations
	}
	return NewFadingSession(eval.Instance(), workers).Evaluate(eval, placements, realizations, src)
}

// FadingSession owns the scratch a Monte-Carlo fading evaluation needs —
// per-worker fused-kernel scratch and realization sources, plus the
// per-realization score table — so repeated Evaluate calls perform no
// steady-state allocation. The buffers are sized by instance dimensions,
// not bound to one instance: a session built at t = 0 serves every later
// checkpoint of a mobility timeline, whether the instance was updated in
// place or rebuilt.
//
// Evaluate scores through the realization-blocked fused measurement
// kernel (scenario.Instance.FadedHitMassBlock): each worker draws a whole
// block of realizations and scores all placements in one request sweep,
// with no reachability indicator and no gain matrix materialized.
// EvaluateUnfused keeps the two-pass FadedReach + HitRatioWithReach
// reference; the paths are pinned bit-identical.
type FadingSession struct {
	numServers, numUsers, numModels int
	workers                         int
	blockSize                       int // 0 = auto (realizations split across workers)
	scratch                         []*scenario.FadeScratch
	bufs                            []*scenario.Reach // EvaluateUnfused only, lazy
	gains                           [][][]float64     // EvaluateUnfused only, lazy
	srcs                            [][]*rng.Source   // per-worker realization source views
	srcVals                         [][]rng.Source    // the sources behind srcs, reseeded in place
	hr                              []float64
	views                           []scenario.ServerColumns
	ctx                             evalContext // reused fused-scoring context
}

// evalContext carries one Evaluate call's read-only scoring state. It lives
// inside the session and is passed to the worker pool as a pointer, so the
// hot path builds no closure: a fused evaluation allocates nothing once the
// session buffers have grown to the call's shape.
type evalContext struct {
	s            *FadingSession
	ins          *scenario.Instance
	src          *rng.Source
	views        []scenario.ServerColumns
	hr           []float64
	block        int
	realizations int
	placements   int
	total        float64
}

// NewFadingSession allocates a session for instances with ins's dimensions
// and the given worker count (0 means GOMAXPROCS).
func NewFadingSession(ins *scenario.Instance, workers int) *FadingSession {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &FadingSession{
		numServers: ins.NumServers(),
		numUsers:   ins.NumUsers(),
		numModels:  ins.NumModels(),
		workers:    workers,
		scratch:    make([]*scenario.FadeScratch, workers),
		srcs:       make([][]*rng.Source, workers),
		srcVals:    make([][]rng.Source, workers),
	}
	for w := 0; w < workers; w++ {
		s.scratch[w] = ins.MakeFadeScratch()
	}
	return s
}

// SetBlockSize sets the number of realizations each worker scores through
// one fused sweep (scenario.Instance.FadedHitMassBlock). 0 restores the
// default: the realizations split evenly across the workers, so a
// single-worker session scores them all in one sweep. 1 forces the
// per-realization path. Results are bit-identical for every block size
// and worker count — realizations never interact within a block, and the
// reduction always runs in realization order.
func (s *FadingSession) SetBlockSize(n int) { s.blockSize = n }

// Evaluate measures each placement's expected hit ratio over the given
// number of Rayleigh fading realizations against eval's instance, which
// must match the session's dimensions.
//
// Realization r draws its gains from src.SplitIndex("real", r) — a pure
// function of the seed material, not of stream position — so every
// realization is independent of evaluation order, and the final per-
// placement averages are reduced in realization order. Workers score
// whole realization blocks (SetBlockSize) through one fused sweep each;
// the per-realization scores are computed independently within a block,
// so the result is bit-identical for any worker count and block size,
// and comparisons stay paired: every placement sees the same
// realizations.
func (s *FadingSession) Evaluate(eval *placement.Evaluator, placements []*placement.Placement, realizations int, src *rng.Source) ([]float64, error) {
	return s.EvaluateInto(nil, eval, placements, realizations, src)
}

// EvaluateInto is Evaluate with a caller-provided result buffer: the
// per-placement averages are written into dst (grown if its capacity is
// short; pass nil to allocate fresh) and returned as dst[:len(placements)].
// Checkpoint loops that evaluate every slot should pass a persistent buffer
// so the steady state performs no allocation at all.
func (s *FadingSession) EvaluateInto(dst []float64, eval *placement.Evaluator, placements []*placement.Placement, realizations int, src *rng.Source) ([]float64, error) {
	ins, hr, workers, err := s.prepare(eval, placements, realizations)
	if err != nil {
		return nil, err
	}
	// Placement columns are read-only during the evaluation, so one view
	// slice is shared by all workers.
	if cap(s.views) < len(placements) {
		s.views = make([]scenario.ServerColumns, len(placements))
	}
	views := s.views[:len(placements)]
	for a, p := range placements {
		views[a] = p
	}
	block := s.blockSize
	if block <= 0 {
		// Auto: split the realizations evenly across the workers, so the
		// pool stays fully used while each worker amortizes its request
		// sweep over the largest possible block.
		block = (realizations + workers - 1) / workers
	}
	if block > realizations {
		block = realizations
	}
	blocks := (realizations + block - 1) / block
	if workers > blocks {
		workers = blocks
	}
	s.ctx = evalContext{
		s:            s,
		ins:          ins,
		src:          src,
		views:        views,
		hr:           hr,
		block:        block,
		realizations: realizations,
		placements:   len(placements),
		total:        ins.TotalMass(),
	}
	err = s.run(workers, blocks, &s.ctx)
	s.ctx = evalContext{} // drop the borrowed eval/src references
	if err != nil {
		return nil, err
	}
	return s.reduce(dst, hr, len(placements), realizations), nil
}

// score evaluates realization block b on worker w through one fused sweep.
func (c *evalContext) score(w, b int) error {
	s := c.s
	r0 := b * c.block
	n := c.block
	if r0+n > c.realizations {
		n = c.realizations - r0
	}
	srcs, vals := s.srcs[w], s.srcVals[w]
	if cap(srcs) < n {
		srcs = make([]*rng.Source, n)
		vals = make([]rng.Source, n)
		for j := range srcs {
			srcs[j] = &vals[j]
		}
		s.srcs[w], s.srcVals[w] = srcs, vals
	}
	srcs, vals = srcs[:n], vals[:n]
	for j := range vals {
		// SplitIndexInto only reads the parent's immutable seed material,
		// so concurrent splits are safe; the per-realization source values
		// are worker-owned and reseeded in place.
		c.src.SplitIndexInto(&vals[j], "real", r0+j)
	}
	rows := c.hr[r0*c.placements : (r0+n)*c.placements]
	if err := c.ins.FadedHitMassBlock(srcs, c.views, rows, s.scratch[w]); err != nil {
		return err
	}
	for x := range rows {
		rows[x] /= c.total
	}
	return nil
}

// EvaluateUnfused is the two-pass reference path — FadedReach materializes
// the full indicator, HitRatioWithReach streams it again — retained for
// callers that need the buffer semantics and for the equivalence tests and
// benchmarks pinning it bit-identical to the fused Evaluate. The reach
// buffers and gain matrices are allocated on first use, so fused-only
// sessions never pay for them.
func (s *FadingSession) EvaluateUnfused(eval *placement.Evaluator, placements []*placement.Placement, realizations int, src *rng.Source) ([]float64, error) {
	ins, hr, workers, err := s.prepare(eval, placements, realizations)
	if err != nil {
		return nil, err
	}
	if s.bufs == nil {
		s.bufs = make([]*scenario.Reach, s.workers)
		s.gains = make([][][]float64, s.workers)
		for w := range s.bufs {
			s.bufs[w] = ins.MakeReachBuffer()
			s.gains[w] = make([][]float64, ins.NumServers())
			for m := range s.gains[w] {
				s.gains[w][m] = make([]float64, ins.NumUsers())
			}
		}
	}
	err = s.run(workers, realizations, scoreFunc(func(w, r int) error {
		gains := s.gains[w]
		scenario.SampleGainsInto(gains, src.SplitIndex("real", r))
		reach, err := ins.FadedReach(gains, s.bufs[w])
		if err != nil {
			return err
		}
		for a, p := range placements {
			v, err := eval.HitRatioWithReach(p, reach)
			if err != nil {
				return err
			}
			hr[r*len(placements)+a] = v
		}
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return s.reduce(nil, hr, len(placements), realizations), nil
}

// prepare validates the instance against the session dimensions and sizes
// the per-realization score table hr[r*len(placements)+a].
func (s *FadingSession) prepare(eval *placement.Evaluator, placements []*placement.Placement, realizations int) (*scenario.Instance, []float64, int, error) {
	if realizations <= 0 {
		return nil, nil, 0, fmt.Errorf("sim: realizations must be positive, got %d", realizations)
	}
	ins := eval.Instance()
	if ins.NumServers() != s.numServers || ins.NumUsers() != s.numUsers || ins.NumModels() != s.numModels {
		return nil, nil, 0, fmt.Errorf("sim: instance dims %dx%dx%d, session %dx%dx%d",
			ins.NumServers(), ins.NumUsers(), ins.NumModels(), s.numServers, s.numUsers, s.numModels)
	}
	workers := s.workers
	if workers > realizations {
		workers = realizations
	}
	if need := realizations * len(placements); cap(s.hr) < need {
		s.hr = make([]float64, need)
	}
	return ins, s.hr[:realizations*len(placements)], workers, nil
}

// scorer evaluates one task (a realization, or a realization block) on a
// given worker slot. The fused path implements it on *evalContext so the
// hot loop dispatches through a pre-built pointer rather than a closure.
type scorer interface {
	score(w, t int) error
}

// scoreFunc adapts a closure to the scorer interface (reference paths only;
// the conversion allocates).
type scoreFunc func(w, t int) error

func (f scoreFunc) score(w, t int) error { return f(w, t) }

// run dispatches tasks (realizations, or realization blocks) on a bounded
// worker pool; the first error wins and the rest of the round drains. A
// single-worker run executes inline — no channel, no goroutine — so the
// Workers:1 checkpoint loop stays allocation-free.
func (s *FadingSession) run(workers, tasks int, sc scorer) error {
	if workers <= 1 {
		for t := 0; t < tasks; t++ {
			if err := sc.score(0, t); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := range next {
				if err := sc.score(w, r); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}(w)
	}
	for t := 0; t < tasks; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	return firstErr
}

// MemoryBytes returns the heap bytes the session owns: per-worker fused
// scratch and realization sources, the per-realization score table, and the
// lazily built unfused reference buffers when present.
func (s *FadingSession) MemoryBytes() int64 {
	const (
		hdrSize = 24 // slice header
		srcSize = 40 // rng.Source: 4-word state + seed
	)
	var n int64
	for _, sc := range s.scratch {
		n += sc.MemoryBytes()
	}
	n += int64(cap(s.scratch)+cap(s.srcs)+cap(s.srcVals)) * hdrSize
	for w := range s.srcs {
		n += int64(cap(s.srcs[w]))*8 + int64(cap(s.srcVals[w]))*srcSize
	}
	n += int64(cap(s.hr)) * 8
	n += int64(cap(s.views)) * 16
	for _, b := range s.bufs {
		n += b.MemoryBytes()
	}
	for w := range s.gains {
		n += int64(cap(s.gains[w])) * hdrSize
		for m := range s.gains[w] {
			n += int64(cap(s.gains[w][m])) * 8
		}
	}
	return n
}

// reduce averages the per-realization scores in realization order (the
// determinism contract: bit-identical for any worker count) into dst, which
// is grown when nil or short — so Evaluate allocates a fresh result while
// EvaluateInto with a persistent buffer allocates nothing.
func (s *FadingSession) reduce(dst []float64, hr []float64, placements, realizations int) []float64 {
	if cap(dst) < placements {
		dst = make([]float64, placements)
	}
	sums := dst[:placements]
	for a := range sums {
		sums[a] = 0
	}
	for r := 0; r < realizations; r++ {
		for a := 0; a < placements; a++ {
			sums[a] += hr[r*placements+a]
		}
	}
	for a := range sums {
		sums[a] /= float64(realizations)
	}
	return sums
}
