package bitset

import (
	"testing"

	"trimcaching/internal/rng"
)

func TestWords(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := Words(n); got != want {
			t.Errorf("Words(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSetClearHas(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 127, 199} {
		if s.Has(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 5 {
		t.Fatalf("Clear(64) failed: count %d", s.Count())
	}
	if !s.Any() {
		t.Fatal("Any = false on non-empty set")
	}
	s.Zero()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Zero left bits behind")
	}
}

func TestSetAll(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		s := New(n)
		s.Set(0) // ensure SetAll overwrites
		s.SetAll(n)
		if got := s.Count(); got != n {
			t.Fatalf("SetAll(%d): Count = %d", n, got)
		}
		// No stray bits beyond the universe.
		if n&63 != 0 && s[len(s)-1]>>(uint(n)&63) != 0 {
			t.Fatalf("SetAll(%d) set bits past the universe", n)
		}
	}
}

func TestBooleanOps(t *testing.T) {
	a, b := New(150), New(150)
	for i := 0; i < 150; i += 3 {
		a.Set(i)
	}
	for i := 0; i < 150; i += 5 {
		b.Set(i)
	}
	union := a.Clone()
	union.Or(b)
	inter := a.Clone()
	inter.And(b)
	diff := a.Clone()
	diff.AndNot(b)
	for i := 0; i < 150; i++ {
		in3, in5 := i%3 == 0, i%5 == 0
		if union.Has(i) != (in3 || in5) {
			t.Fatalf("union bit %d wrong", i)
		}
		if inter.Has(i) != (in3 && in5) {
			t.Fatalf("intersection bit %d wrong", i)
		}
		if diff.Has(i) != (in3 && !in5) {
			t.Fatalf("difference bit %d wrong", i)
		}
	}
	if got, want := IntersectionCount(a, b), inter.Count(); got != want {
		t.Fatalf("IntersectionCount = %d, want %d", got, want)
	}
	if !Intersects(a, b) {
		t.Fatal("Intersects(a, b) = false, sets share bit 0")
	}
	only64 := New(150)
	only64.Set(64)
	only65 := New(150)
	only65.Set(65)
	if Intersects(only64, only65) {
		t.Fatal("disjoint singletons intersect")
	}
	if !only64.Equal(only64.Clone()) || only64.Equal(only65) {
		t.Fatal("Equal misbehaves")
	}
}

func TestForEach(t *testing.T) {
	s := New(300)
	want := []int{0, 2, 63, 64, 65, 128, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("ForEach order: got %v, want %v (ascending)", got, want)
		}
	}
}

func TestForEachAndNot(t *testing.T) {
	a, b := New(130), New(130)
	for i := 0; i < 130; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 130; i += 4 {
		b.Set(i)
	}
	var got []int
	ForEachAndNot(a, b, func(i int) { got = append(got, i) })
	prev := -1
	for _, i := range got {
		if i%2 != 0 || i%4 == 0 {
			t.Fatalf("ForEachAndNot visited %d, not in a\\b", i)
		}
		if i <= prev {
			t.Fatalf("ForEachAndNot not ascending: %v", got)
		}
		prev = i
	}
	if want := 65 - 33; len(got) != want {
		t.Fatalf("ForEachAndNot visited %d bits, want %d", len(got), want)
	}
}

// TestAgainstBoolReference fuzzes the packed ops against a []bool model.
func TestAgainstBoolReference(t *testing.T) {
	const n = 197
	src := rng.New(42)
	ref := make([]bool, n)
	s := New(n)
	for step := 0; step < 5000; step++ {
		i := src.Intn(n)
		if src.Float64() < 0.5 {
			ref[i] = true
			s.Set(i)
		} else {
			ref[i] = false
			s.Clear(i)
		}
	}
	count := 0
	for i, v := range ref {
		if s.Has(i) != v {
			t.Fatalf("bit %d: packed %v, reference %v", i, s.Has(i), v)
		}
		if v {
			count++
		}
	}
	if s.Count() != count {
		t.Fatalf("Count = %d, reference %d", s.Count(), count)
	}
}
