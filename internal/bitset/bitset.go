// Package bitset provides word-packed bit sets over a fixed universe of
// integers. They are the storage format of the reachability engine: the
// service indicator I1(m,k,i), placement decisions x_{m,i}, and greedy
// coverage bookkeeping are all bit matrices, and packing them 64 per word
// turns the evaluator's inner loops into single AND/popcount instructions.
//
// A Set is a plain []uint64, so hot loops that need word-level access (e.g.
// masked iteration fused with a probability sum) can range over the words
// directly instead of paying a closure call per bit.
package bitset

import "math/bits"

// Words returns the number of 64-bit words needed to hold n bits.
func Words(n int) int { return (n + 63) >> 6 }

// Set is a word-packed bit set. Bit i lives in word i/64 at position i%64.
// The universe size is fixed at allocation; bits past the universe in the
// last word are kept zero by every operation except TrimLast's callers.
type Set []uint64

// New returns an all-zero set able to hold n bits.
func New(n int) Set { return make(Set, Words(n)) }

// Set sets bit i.
func (s Set) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s Set) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports bit i.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Zero clears every bit.
func (s Set) Zero() {
	for w := range s {
		s[w] = 0
	}
}

// SetAll sets bits [0, n); words past Words(n) are cleared. The set must
// have been allocated for at least n bits.
func (s Set) SetAll(n int) {
	full := n >> 6
	for w := 0; w < full; w++ {
		s[w] = ^uint64(0)
	}
	for w := full; w < len(s); w++ {
		s[w] = 0
	}
	if rem := uint(n) & 63; rem != 0 {
		s[full] = (1 << rem) - 1
	}
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or sets s to s ∪ t. The sets must have equal length.
func (s Set) Or(t Set) {
	for w, v := range t {
		s[w] |= v
	}
}

// And sets s to s ∩ t. The sets must have equal length.
func (s Set) And(t Set) {
	for w, v := range t {
		s[w] &= v
	}
}

// AndNot sets s to s \ t. The sets must have equal length.
func (s Set) AndNot(t Set) {
	for w, v := range t {
		s[w] &^= v
	}
}

// CopyFrom overwrites s with t. The sets must have equal length.
func (s Set) CopyFrom(t Set) { copy(s, t) }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Equal reports whether s and t hold identical bits. The sets must have
// equal length.
func (s Set) Equal(t Set) bool {
	for w, v := range t {
		if s[w] != v {
			return false
		}
	}
	return true
}

// Intersects reports whether a ∩ b is non-empty. The sets must have equal
// length.
func Intersects(a, b Set) bool {
	for w, v := range a {
		if v&b[w] != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |a ∩ b|. The sets must have equal length.
func IntersectionCount(a, b Set) int {
	n := 0
	for w, v := range a {
		n += bits.OnesCount64(v & b[w])
	}
	return n
}

// ForEach calls fn for every set bit in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for w, v := range s {
		for ; v != 0; v &= v - 1 {
			fn(w<<6 | bits.TrailingZeros64(v))
		}
	}
}

// ForEachAndNot calls fn for every bit in a \ b in ascending order. The
// sets must have equal length.
func ForEachAndNot(a, b Set, fn func(i int)) {
	for w, v := range a {
		for rem := v &^ b[w]; rem != 0; rem &= rem - 1 {
			fn(w<<6 | bits.TrailingZeros64(rem))
		}
	}
}
