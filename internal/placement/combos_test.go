package placement

import (
	"errors"
	"testing"

	"trimcaching/internal/modellib"
)

// chainLib builds a miniature special-case library: two "pre-trained"
// chains (like Fig. 3). Family A: shared blocks 0,1,2 (prefix chain);
// family B: shared blocks 3,4. Specific blocks 5..9.
func chainLib(t *testing.T) *modellib.Library {
	t.Helper()
	blocks := []modellib.Block{
		{ID: 0, SizeBytes: 10}, {ID: 1, SizeBytes: 10}, {ID: 2, SizeBytes: 10},
		{ID: 3, SizeBytes: 20}, {ID: 4, SizeBytes: 20},
		{ID: 5, SizeBytes: 5}, {ID: 6, SizeBytes: 5}, {ID: 7, SizeBytes: 5},
		{ID: 8, SizeBytes: 5}, {ID: 9, SizeBytes: 5},
		{ID: 10, SizeBytes: 5}, {ID: 11, SizeBytes: 5},
	}
	// Two models per maximal depth so every chain block is genuinely shared.
	models := []modellib.Model{
		{ID: 0, Family: "A", Blocks: []int{0, 1, 5}},     // freeze depth 2
		{ID: 1, Family: "A", Blocks: []int{0, 1, 2, 6}},  // freeze depth 3
		{ID: 2, Family: "A", Blocks: []int{0, 7}},        // freeze depth 1
		{ID: 3, Family: "B", Blocks: []int{3, 4, 8}},     // freeze depth 2
		{ID: 4, Family: "B", Blocks: []int{3, 9}},        // freeze depth 1
		{ID: 5, Family: "A", Blocks: []int{0, 1, 2, 10}}, // freeze depth 3
		{ID: 6, Family: "B", Blocks: []int{3, 4, 11}},    // freeze depth 2
	}
	lib, err := modellib.New(blocks, models)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func allModels(lib *modellib.Library) []int {
	ids := make([]int, lib.NumModels())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestUnionSorted(t *testing.T) {
	cases := []struct {
		a, b, want []int
	}{
		{nil, nil, []int{}},
		{[]int{1, 3}, []int{2}, []int{1, 2, 3}},
		{[]int{1, 2}, []int{1, 2}, []int{1, 2}},
		{[]int{5}, nil, []int{5}},
		{[]int{1, 4, 9}, []int{2, 4, 10}, []int{1, 2, 4, 9, 10}},
	}
	for _, c := range cases {
		got := unionSorted(c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("union(%v,%v) = %v", c.a, c.b, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("union(%v,%v) = %v", c.a, c.b, got)
			}
		}
	}
}

func TestIsSubsetSorted(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{nil, nil, true},
		{nil, []int{1}, true},
		{[]int{1}, nil, false},
		{[]int{1, 3}, []int{1, 2, 3}, true},
		{[]int{1, 4}, []int{1, 2, 3}, false},
		{[]int{2}, []int{1, 2, 3}, true},
	}
	for _, c := range cases {
		if got := isSubsetSorted(c.a, c.b); got != c.want {
			t.Fatalf("subset(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestEnumerateCombosChains(t *testing.T) {
	lib := chainLib(t)
	combos, err := enumerateCombos(lib, allModels(lib), 1<<40, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct footprints: A-depth1 {0}, A-depth2 {0,1}, A-depth3 {0,1,2},
	// B-depth1 {3}, B-depth2 {3,4}. Union closure = (3+1)*(2+1) = 12
	// combos including the empty one.
	if len(combos) != 12 {
		t.Fatalf("got %d combos, want 12", len(combos))
	}
	// Every combo must be a union of per-family prefixes with correct size.
	for _, c := range combos {
		var want int64
		for _, j := range c.blocks {
			want += lib.BlockSize(j)
		}
		if c.size != want {
			t.Fatalf("combo %v size %d, want %d", c.blocks, c.size, want)
		}
	}
	// The empty combo must be present.
	if combos[0].size != 0 || len(combos[0].blocks) != 0 {
		t.Fatalf("first combo not empty: %+v", combos[0])
	}
}

func TestEnumerateCombosCapacityPruning(t *testing.T) {
	lib := chainLib(t)
	// Budget 25: fits A-depth1 (10), A-depth2 (20), B-depth1 (20),
	// but not A-depth3 (30), B-depth2 (40), or any cross-family union
	// except none (10+20=30 > 25).
	combos, err := enumerateCombos(lib, allModels(lib), 25, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 // {}, {0}, {0,1}, {3}
	if len(combos) != want {
		t.Fatalf("got %d combos, want %d", len(combos), want)
	}
	for _, c := range combos {
		if c.size > 25 {
			t.Fatalf("combo %v exceeds budget", c.blocks)
		}
	}
}

func TestEnumerateCombosEligibleSubset(t *testing.T) {
	lib := chainLib(t)
	// Only family-A models eligible: B footprints must not appear.
	combos, err := enumerateCombos(lib, []int{0, 1, 2}, 1<<40, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 4 { // {}, {0}, {0,1}, {0,1,2}
		t.Fatalf("got %d combos, want 4", len(combos))
	}
	for _, c := range combos {
		for _, j := range c.blocks {
			if j >= 3 {
				t.Fatalf("family-B block %d leaked into combos", j)
			}
		}
	}
}

func TestEnumerateCombosExplosion(t *testing.T) {
	// A library with many disjoint shared pairs has an exponential closure.
	var blocks []modellib.Block
	var models []modellib.Model
	for g := 0; g < 12; g++ {
		shared := len(blocks)
		blocks = append(blocks, modellib.Block{ID: shared, SizeBytes: 1})
		s1 := len(blocks)
		blocks = append(blocks, modellib.Block{ID: s1, SizeBytes: 1})
		s2 := len(blocks)
		blocks = append(blocks, modellib.Block{ID: s2, SizeBytes: 1})
		models = append(models,
			modellib.Model{ID: len(models), Blocks: []int{shared, s1}},
			modellib.Model{ID: len(models) + 1, Blocks: []int{shared, s2}},
		)
	}
	lib, err := modellib.New(blocks, models)
	if err != nil {
		t.Fatal(err)
	}
	_, err = enumerateCombos(lib, allModels(lib), 1<<40, 100)
	var explosion *ErrComboExplosion
	if !errors.As(err, &explosion) {
		t.Fatalf("want ErrComboExplosion, got %v", err)
	}
	if explosion.Limit != 100 {
		t.Fatalf("limit %d", explosion.Limit)
	}
	if explosion.Error() == "" {
		t.Fatal("empty error string")
	}
	// With a generous limit it succeeds: 2^12 combos + empty.
	combos, err := enumerateCombos(lib, allModels(lib), 1<<40, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 1<<12 {
		t.Fatalf("got %d combos, want %d", len(combos), 1<<12)
	}
}

func TestEnumerateCombosNoSharing(t *testing.T) {
	blocks := []modellib.Block{{ID: 0, SizeBytes: 1}, {ID: 1, SizeBytes: 1}}
	models := []modellib.Model{
		{ID: 0, Blocks: []int{0}},
		{ID: 1, Blocks: []int{1}},
	}
	lib, err := modellib.New(blocks, models)
	if err != nil {
		t.Fatal(err)
	}
	combos, err := enumerateCombos(lib, allModels(lib), 1<<40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 1 {
		t.Fatalf("library without sharing should have only the empty combo, got %d", len(combos))
	}
}

func TestEnumerateCombosInvalidLimit(t *testing.T) {
	lib := chainLib(t)
	if _, err := enumerateCombos(lib, allModels(lib), 100, 0); err == nil {
		t.Fatal("zero maxCombos must error")
	}
}
