package placement

import (
	"fmt"

	"trimcaching/internal/scenario"
)

// Algorithm is a named placement solver, the unit the experiment harness
// sweeps over.
type Algorithm interface {
	// Name returns the display name used in result tables.
	Name() string
	// Place computes a placement respecting the per-server capacities.
	Place(e *Evaluator, capacities []int64) (*Placement, error)
}

// WarmStartAlgorithm is an Algorithm that can repair the placement it
// produced before an incremental instance update instead of solving cold.
//
// Contract: prev must be the placement this algorithm produced for the
// same capacities before the instance absorbed delta, and delta.Pairs must
// cover every reachability change since prev was computed (union the Pairs
// of intermediate deltas when several updates elapsed). Under that
// contract Repair returns a placement identical to Place on the updated
// instance — warm-starting is a pure optimization, never a drift source,
// which is what lets replacement studies compare trigger policies without
// the solver's start state confounding them. Repair may return prev itself
// when it can prove nothing the solver consumes changed.
type WarmStartAlgorithm interface {
	Algorithm
	Repair(e *Evaluator, capacities []int64, prev *Placement, delta *scenario.Delta) (*Placement, error)
}

// repair is the shared eviction/insertion repair path: absorb the delta
// into the evaluator's marginal-gain memo (invalidating exactly the pairs
// the update changed), short-circuit to prev when no pair a solver could
// consume changed, and otherwise re-run the solver — whose first sweep now
// reuses every still-valid memoized gain, recomputing only the invalidated
// entries, and whose insertion loop rebuilds coverage from the gains it
// certifies. Placement storage costs depend only on the library, so prev
// staying feasible needs no re-check on the unchanged-capacity path.
func repair(a Algorithm, e *Evaluator, capacities []int64, prev *Placement, delta *scenario.Delta) (*Placement, error) {
	if delta != nil {
		if err := e.ApplyDelta(delta); err != nil {
			return nil, err
		}
		if prev != nil && !delta.Pairs.Any() &&
			prev.NumServers() == e.ins.NumServers() && prev.NumModels() == e.ins.NumModels() {
			// No user mask changed, and probabilities and capacities are
			// what prev was solved under: a cold solve would reproduce it.
			return prev, nil
		}
	}
	return a.Place(e, capacities)
}

// GenAlgorithm is TrimCaching Gen (Algorithm 3).
type GenAlgorithm struct {
	Options GenOptions
}

var _ Algorithm = GenAlgorithm{}

// Name implements Algorithm.
func (GenAlgorithm) Name() string { return "TrimCaching Gen" }

// Place implements Algorithm.
func (a GenAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return TrimCachingGen(e, capacities, a.Options)
}

var _ WarmStartAlgorithm = GenAlgorithm{}

// Repair implements WarmStartAlgorithm. The lazy variant's heap
// construction reuses the memoized marginal gains directly; the naive
// variant re-solves but still benefits from the delta-scoped invalidation
// on its next lazy siblings sharing the evaluator.
func (a GenAlgorithm) Repair(e *Evaluator, capacities []int64, prev *Placement, delta *scenario.Delta) (*Placement, error) {
	return repair(a, e, capacities, prev, delta)
}

// SpecAlgorithm is TrimCaching Spec (Algorithms 1–2). The zero value runs
// with ε = 0 (exact per-combination knapsacks); use DefaultSpecOptions for
// the paper's ε = 0.1.
type SpecAlgorithm struct {
	Options SpecOptions
}

var _ Algorithm = SpecAlgorithm{}

// Name implements Algorithm.
func (SpecAlgorithm) Name() string { return "TrimCaching Spec" }

// Place implements Algorithm.
func (a SpecAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return TrimCachingSpec(e, capacities, a.Options)
}

var _ WarmStartAlgorithm = SpecAlgorithm{}

// Repair implements WarmStartAlgorithm. Spec's successive per-server
// structure admits no sound partial reuse once masks shift (each server's
// knapsack depends on every earlier server's choice), so beyond the
// nothing-changed short-circuit it re-solves, reusing the memoized u0
// values for models no earlier server has covered yet.
func (a SpecAlgorithm) Repair(e *Evaluator, capacities []int64, prev *Placement, delta *scenario.Delta) (*Placement, error) {
	return repair(a, e, capacities, prev, delta)
}

// IndependentAlgorithm is the Independent Caching baseline.
type IndependentAlgorithm struct{}

var _ Algorithm = IndependentAlgorithm{}

// Name implements Algorithm.
func (IndependentAlgorithm) Name() string { return "Independent Caching" }

// Place implements Algorithm.
func (IndependentAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return IndependentCaching(e, capacities)
}

var _ WarmStartAlgorithm = IndependentAlgorithm{}

// Repair implements WarmStartAlgorithm; the baseline shares the greedy
// warm-start machinery (storage mode does not affect marginal gains).
func (a IndependentAlgorithm) Repair(e *Evaluator, capacities []int64, prev *Placement, delta *scenario.Delta) (*Placement, error) {
	return repair(a, e, capacities, prev, delta)
}

// OptimalAlgorithm is the exhaustive search.
type OptimalAlgorithm struct {
	Options ExhaustiveOptions
}

var _ Algorithm = OptimalAlgorithm{}

// Name implements Algorithm.
func (OptimalAlgorithm) Name() string { return "Optimal (exhaustive)" }

// Place implements Algorithm.
func (a OptimalAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return Exhaustive(e, capacities, a.Options)
}

// ByName returns a default-configured algorithm by its short CLI name:
// "spec", "gen", "gen-naive", "independent", or "optimal".
func ByName(name string) (Algorithm, error) {
	switch name {
	case "spec":
		return SpecAlgorithm{Options: DefaultSpecOptions()}, nil
	case "gen":
		return GenAlgorithm{Options: GenOptions{Lazy: true}}, nil
	case "gen-ratio":
		return RatioAlgorithm{}, nil
	case "gen-naive":
		return GenAlgorithm{}, nil
	case "popularity":
		return PopularityAlgorithm{}, nil
	case "independent":
		return IndependentAlgorithm{}, nil
	case "optimal":
		return OptimalAlgorithm{}, nil
	default:
		return nil, fmt.Errorf("placement: unknown algorithm %q", name)
	}
}
