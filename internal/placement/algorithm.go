package placement

import "fmt"

// Algorithm is a named placement solver, the unit the experiment harness
// sweeps over.
type Algorithm interface {
	// Name returns the display name used in result tables.
	Name() string
	// Place computes a placement respecting the per-server capacities.
	Place(e *Evaluator, capacities []int64) (*Placement, error)
}

// GenAlgorithm is TrimCaching Gen (Algorithm 3).
type GenAlgorithm struct {
	Options GenOptions
}

var _ Algorithm = GenAlgorithm{}

// Name implements Algorithm.
func (GenAlgorithm) Name() string { return "TrimCaching Gen" }

// Place implements Algorithm.
func (a GenAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return TrimCachingGen(e, capacities, a.Options)
}

// SpecAlgorithm is TrimCaching Spec (Algorithms 1–2). The zero value runs
// with ε = 0 (exact per-combination knapsacks); use DefaultSpecOptions for
// the paper's ε = 0.1.
type SpecAlgorithm struct {
	Options SpecOptions
}

var _ Algorithm = SpecAlgorithm{}

// Name implements Algorithm.
func (SpecAlgorithm) Name() string { return "TrimCaching Spec" }

// Place implements Algorithm.
func (a SpecAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return TrimCachingSpec(e, capacities, a.Options)
}

// IndependentAlgorithm is the Independent Caching baseline.
type IndependentAlgorithm struct{}

var _ Algorithm = IndependentAlgorithm{}

// Name implements Algorithm.
func (IndependentAlgorithm) Name() string { return "Independent Caching" }

// Place implements Algorithm.
func (IndependentAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return IndependentCaching(e, capacities)
}

// OptimalAlgorithm is the exhaustive search.
type OptimalAlgorithm struct {
	Options ExhaustiveOptions
}

var _ Algorithm = OptimalAlgorithm{}

// Name implements Algorithm.
func (OptimalAlgorithm) Name() string { return "Optimal (exhaustive)" }

// Place implements Algorithm.
func (a OptimalAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return Exhaustive(e, capacities, a.Options)
}

// ByName returns a default-configured algorithm by its short CLI name:
// "spec", "gen", "gen-naive", "independent", or "optimal".
func ByName(name string) (Algorithm, error) {
	switch name {
	case "spec":
		return SpecAlgorithm{Options: DefaultSpecOptions()}, nil
	case "gen":
		return GenAlgorithm{Options: GenOptions{Lazy: true}}, nil
	case "gen-ratio":
		return RatioAlgorithm{}, nil
	case "gen-naive":
		return GenAlgorithm{}, nil
	case "popularity":
		return PopularityAlgorithm{}, nil
	case "independent":
		return IndependentAlgorithm{}, nil
	case "optimal":
		return OptimalAlgorithm{}, nil
	default:
		return nil, fmt.Errorf("placement: unknown algorithm %q", name)
	}
}
