package placement

import (
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// denseFadedHitRatio is the scalar reference evaluator under a fading
// realization: scan every server per (user, model) request, count the
// first cached-and-reachable one.
func denseFadedHitRatio(e *Evaluator, p *Placement, reach *scenario.Reach) float64 {
	ins := e.Instance()
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	var hit float64
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			for m := 0; m < M; m++ {
				if p.Has(m, i) && reach.Has(m, k, i) {
					hit += ins.Prob(k, i)
					break
				}
			}
		}
	}
	return hit / ins.TotalMass()
}

// fusedVsUnfused pins the tentpole equivalence on one instance: for every
// realization, FadedReach + HitRatioWithReach must equal the fused
// FadedHitRatios exactly — same word ops, same float add order — and both
// must equal the dense scalar reference.
func fusedVsUnfused(t *testing.T, e *Evaluator, placements []*Placement, seed uint64, realizations int) {
	t.Helper()
	ins := e.Instance()
	src := rng.New(seed)
	buf := ins.MakeReachBuffer()
	scratch := ins.MakeFadeScratch()
	fused := make([]float64, len(placements))
	for r := 0; r < realizations; r++ {
		gains := scenario.SampleGains(ins.NumServers(), ins.NumUsers(), src.SplitIndex("real", r))
		reach, err := ins.FadedReach(gains, buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.FadedHitRatios(gains, placements, scratch, fused); err != nil {
			t.Fatal(err)
		}
		for a, p := range placements {
			unfused, err := e.HitRatioWithReach(p, reach)
			if err != nil {
				t.Fatal(err)
			}
			if fused[a] != unfused {
				t.Fatalf("r=%d placement=%d: fused %.17g != unfused %.17g", r, a, fused[a], unfused)
			}
			if dense := denseFadedHitRatio(e, p, reach); unfused != dense {
				t.Fatalf("r=%d placement=%d: unfused %.17g != dense %.17g", r, a, unfused, dense)
			}
		}
	}
}

// TestFusedMatchesUnfusedProperty pins fused == unfused == dense exactly
// over random instances, placements, and fading realizations — first on
// fresh instances (whose rank index is built at construction), then after
// an in-place update has revised thresholds through the update path.
func TestFusedMatchesUnfusedProperty(t *testing.T) {
	for seed := uint64(60); seed < 64; seed++ {
		e := buildEval(t, 5, 14, 3, seed)
		ins := e.Instance()
		caps := UniformCapacities(ins.NumServers(), gb/2)
		gen, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		ind, err := IndependentCaching(e, caps)
		if err != nil {
			t.Fatal(err)
		}
		placements := []*Placement{gen, ind, NewPlacement(ins.NumServers(), ins.NumModels())}
		fusedVsUnfused(t, e, placements, seed+100, 4)

		// A no-op move revises thresholds without changing any verdict;
		// the rank prefixes must survive the update path.
		all := make([]int, ins.NumUsers())
		for k := range all {
			all[k] = k
		}
		delta, err := ins.UpdateUsers(all, ins.Topology().UserPositions())
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
		fusedVsUnfused(t, e, placements, seed+100, 4)
	}
}

// TestFusedMultiWordServers is the M > 64 fixture: with 70 servers the
// packed masks span two words, exercising the generic HitRatioWithReach
// branch and the multi-word fused kernel on a fresh instance — whose rank
// index exists from construction, so the rank-prefix enumeration is what
// runs here, pinned against a full scan. All three evaluators — two-pass
// packed, fused, and the dense scalar reference — must agree bit-for-bit.
func TestFusedMultiWordServers(t *testing.T) {
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(3), rng.New(71))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	cfg := scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 1500, NumServers: 70, NumUsers: 20, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}
	ins, err := scenario.Generate(lib, cfg, rng.New(72))
	if err != nil {
		t.Fatal(err)
	}
	if ins.ServerMaskWords() < 2 {
		t.Fatalf("M=70 fixture packed into %d words, want >= 2", ins.ServerMaskWords())
	}
	e, err := NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	caps := UniformCapacities(70, gb/2)
	p, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.CountPlacements() == 0 {
		t.Fatal("fixture placed nothing; equivalence would be vacuous")
	}
	fusedVsUnfused(t, e, []*Placement{p}, 73, 5)
}

// TestFadedCandidateRatios pins the candidate-batch certification path:
// scoring the base placement plus N top-of-heap candidates through one
// multi-placement sweep must equal scoring each candidate overlay as its
// own cloned placement through FadedHitRatios — exactly, since both run
// the same kernel over the same columns.
func TestFadedCandidateRatios(t *testing.T) {
	for seed := uint64(110); seed < 113; seed++ {
		e := buildEval(t, 5, 14, 3, seed)
		ins := e.Instance()
		caps := UniformCapacities(ins.NumServers(), gb/2)
		base, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		cands := e.TopCandidates(6)
		if len(cands) == 0 {
			t.Fatal("no candidates above tolerance; equivalence would be vacuous")
		}
		for j := 1; j < len(cands); j++ {
			if cands[j].Key > cands[j-1].Key {
				t.Fatalf("candidates not in descending key order at %d", j)
			}
		}
		src := rng.New(seed + 200)
		scratch := ins.MakeFadeScratch()
		got := make([]float64, len(cands)+1)
		for r := 0; r < 3; r++ {
			gains := scenario.SampleGains(ins.NumServers(), ins.NumUsers(), src.SplitIndex("real", r))
			if err := e.FadedCandidateRatios(gains, base, cands, scratch, got); err != nil {
				t.Fatal(err)
			}
			placements := []*Placement{base}
			for _, c := range cands {
				p := base.Clone()
				p.Set(c.Server, c.Model)
				placements = append(placements, p)
			}
			want := make([]float64, len(placements))
			if err := e.FadedHitRatios(gains, placements, scratch, want); err != nil {
				t.Fatal(err)
			}
			for a := range want {
				if got[a] != want[a] {
					t.Fatalf("seed=%d r=%d view=%d: batch %.17g != per-clone %.17g", seed, r, a, got[a], want[a])
				}
			}
		}

		// Error paths: wrong output length and out-of-range candidates.
		if err := e.FadedCandidateRatios(nil, base, cands, scratch, make([]float64, len(cands))); err == nil {
			t.Fatal("output length mismatch must error")
		}
		gains := scenario.SampleGains(ins.NumServers(), ins.NumUsers(), rng.New(seed+300))
		bad := []Candidate{{Server: ins.NumServers(), Model: 0}}
		if err := e.FadedCandidateRatios(gains, base, bad, scratch, make([]float64, 2)); err == nil {
			t.Fatal("out-of-range candidate must error")
		}
	}
}

// TestFadedHitRatiosValidation covers the fused wrapper's error paths.
func TestFadedHitRatiosValidation(t *testing.T) {
	e := buildEval(t, 3, 8, 2, 80)
	ins := e.Instance()
	p := NewPlacement(ins.NumServers(), ins.NumModels())
	gains := scenario.SampleGains(ins.NumServers(), ins.NumUsers(), rng.New(81))
	if err := e.FadedHitRatios(gains, []*Placement{p}, nil, make([]float64, 2)); err == nil {
		t.Fatal("output length mismatch must error")
	}
	wrong := NewPlacement(ins.NumServers()+1, ins.NumModels())
	if err := e.FadedHitRatios(gains, []*Placement{wrong}, nil, make([]float64, 1)); err == nil {
		t.Fatal("placement dim mismatch must error")
	}
	if err := e.FadedHitRatios(gains[:1], []*Placement{p}, nil, make([]float64, 1)); err == nil {
		t.Fatal("gain dim mismatch must error")
	}
	if err := e.FadedHitRatios(gains, nil, nil, nil); err != nil {
		t.Fatalf("empty placement list must be a no-op, got %v", err)
	}
}
