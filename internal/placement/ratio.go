package placement

// runRatioGreedy is a cost-benefit variant of Algorithm 3: instead of the
// largest absolute marginal gain, each step commits the feasible (m,i) with
// the largest gain per incremental storage byte. Cost-benefit greedy is the
// classic companion heuristic for knapsack-constrained submodular
// maximization (cf. [15]); with the submodular storage of P1.1 the
// incremental cost shrinks as shared blocks accumulate, which this variant
// exploits aggressively. Lazy evaluation does not apply: the gain/cost
// ratio is not monotone (costs shrink too), so candidates are rescanned.
func runRatioGreedy(s *greedyState) {
	ins := s.e.Instance()
	M, I := ins.NumServers(), ins.NumModels()
	for {
		bestScore := 0.0
		bestM, bestI := -1, -1
		for m := 0; m < M; m++ {
			for i := 0; i < I; i++ {
				if s.placed.Has(m, i) {
					continue
				}
				g := s.gain(m, i)
				if g <= gainTolerance {
					continue
				}
				c := s.cost(m, i)
				if s.used[m]+c > s.caps[m] {
					continue
				}
				// Zero incremental cost (all blocks already cached) is an
				// unconditional win; model it as an effectively infinite
				// ratio via a one-byte floor.
				if c < 1 {
					c = 1
				}
				score := g / float64(c)
				if score > bestScore || (score == bestScore && bestM < 0) {
					bestScore, bestM, bestI = score, m, i
				}
			}
		}
		if bestM < 0 {
			return
		}
		s.commit(bestM, bestI)
	}
}

// TrimCachingGenRatio runs the cost-benefit greedy (extension beyond the
// paper; ablation `ablate-ratio` compares it with Algorithm 3).
func TrimCachingGenRatio(e *Evaluator, capacities []int64) (*Placement, error) {
	s, err := newGreedyState(e, capacities, true)
	if err != nil {
		return nil, err
	}
	runRatioGreedy(s)
	return s.placed, nil
}

// RatioAlgorithm wraps TrimCachingGenRatio as an Algorithm.
type RatioAlgorithm struct{}

var _ Algorithm = RatioAlgorithm{}

// Name implements Algorithm.
func (RatioAlgorithm) Name() string { return "TrimCaching Gen (cost-benefit)" }

// Place implements Algorithm.
func (RatioAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return TrimCachingGenRatio(e, capacities)
}
