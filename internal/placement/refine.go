package placement

import (
	"fmt"

	"trimcaching/internal/bitset"
)

// Refine improves a feasible placement by local search: exchange moves that
// evict one cached model from a server and insert a better one, plus plain
// insertions into leftover capacity. It never decreases the hit ratio and
// always returns a feasible placement. This is an extension beyond the
// paper (classic post-processing for knapsack-constrained submodular
// maximization, cf. the semidifferential methods of [39, 40] the paper's
// Theorem 3 builds on).
//
// maxPasses bounds the number of full improvement sweeps (0 means 3).
func Refine(e *Evaluator, capacities []int64, p *Placement, maxPasses int) (*Placement, error) {
	if p == nil {
		return nil, fmt.Errorf("placement: placement is required")
	}
	if err := e.CheckFeasible(p, capacities); err != nil {
		return nil, fmt.Errorf("placement: refine needs a feasible start: %w", err)
	}
	if maxPasses <= 0 {
		maxPasses = 3
	}
	ins := e.Instance()
	lib := ins.Library()
	M, I := ins.NumServers(), ins.NumModels()
	cur := p.Clone()
	curHit, err := e.HitRatio(cur)
	if err != nil {
		return nil, err
	}
	scratch := make([]bool, lib.NumBlocks())

	storage := func(m int) int64 { return lib.BlocksUnion(cur.ModelsOn(m), scratch) }

	// covered accumulates, per candidate model, the users already served by
	// the current placement (union of user masks over the servers caching
	// it) — the same inverted index the greedy solvers walk.
	covered := bitset.New(ins.NumUsers())

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for m := 0; m < M; m++ {
			// Insertions first: free capacity is pure upside.
			for i := 0; i < I; i++ {
				if cur.Has(m, i) {
					continue
				}
				// An insertion can only raise U(X) if it newly covers at
				// least one user with positive mass; checking that on the
				// inverted index skips the full evaluation for hopeless
				// candidates without changing any accepted move.
				covered.Zero()
				cur.Servers(i).ForEach(func(mm int) { covered.Or(ins.UserMask(mm, i)) })
				if e.maskMass(i, ins.UserMask(m, i), covered) == 0 {
					continue
				}
				cur.Set(m, i)
				if storage(m) <= capacities[m] {
					newHit, err := e.HitRatio(cur)
					if err != nil {
						return nil, err
					}
					if newHit > curHit+gainTolerance {
						curHit = newHit
						improved = true
						continue
					}
				}
				cur.Unset(m, i)
			}
			// Exchange moves: evict one model, insert another. The resident
			// list is snapshotted; residents replaced mid-sweep are skipped.
			for _, out := range cur.ModelsOn(m) {
				if !cur.Has(m, out) {
					continue
				}
				for in := 0; in < I; in++ {
					if in == out || cur.Has(m, in) {
						continue
					}
					cur.Unset(m, out)
					cur.Set(m, in)
					if storage(m) <= capacities[m] {
						newHit, err := e.HitRatio(cur)
						if err != nil {
							return nil, err
						}
						if newHit > curHit+gainTolerance {
							curHit = newHit
							improved = true
							out = in // keep scanning from the new resident
							continue
						}
					}
					cur.Set(m, out)
					cur.Unset(m, in)
				}
			}
		}
		if !improved {
			break
		}
	}
	return cur, nil
}

// RefinedAlgorithm wraps an algorithm with a Refine post-pass.
type RefinedAlgorithm struct {
	// Base is the algorithm whose output is refined.
	Base Algorithm
	// MaxPasses bounds the local-search sweeps (0 means 3).
	MaxPasses int
}

var _ Algorithm = RefinedAlgorithm{}

// Name implements Algorithm.
func (a RefinedAlgorithm) Name() string { return a.Base.Name() + " + refine" }

// Place implements Algorithm.
func (a RefinedAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	p, err := a.Base.Place(e, capacities)
	if err != nil {
		return nil, err
	}
	return Refine(e, capacities, p, a.MaxPasses)
}
