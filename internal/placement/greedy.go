package placement

import (
	"fmt"
	mbits "math/bits"

	"trimcaching/internal/bitset"
)

// greedyState tracks the incremental quantities shared by the greedy
// algorithms: request coverage, per-server cached blocks, and storage use.
// Coverage and block bookkeeping are word-packed: a marginal gain is one
// AND-NOT sweep over a user mask (the instance's inverted index
// model → reachable users per server) instead of a K-element rescan.
type greedyState struct {
	e          *Evaluator
	caps       []int64
	dedup      bool // true: parameter-sharing storage (eq. 7); false: independent caching
	placed     *Placement
	userWords  int
	covered    []uint64 // covered[i*userWords+w], bit k: request (k,i) already servable
	blockWords int
	blockOn    []uint64 // blockOn[m*blockWords+w], bit j: server m caches block j (dedup mode)
	used       []int64  // used[m]: bytes cached on server m
}

func newGreedyState(e *Evaluator, caps []int64, dedup bool) (*greedyState, error) {
	ins := e.Instance()
	if len(caps) != ins.NumServers() {
		return nil, fmt.Errorf("placement: %d capacities for %d servers", len(caps), ins.NumServers())
	}
	for m, q := range caps {
		if q < 0 {
			return nil, fmt.Errorf("placement: negative capacity %d for server %d", q, m)
		}
	}
	s := &greedyState{
		e:         e,
		caps:      caps,
		dedup:     dedup,
		placed:    NewPlacement(ins.NumServers(), ins.NumModels()),
		userWords: ins.UserMaskWords(),
		used:      make([]int64, ins.NumServers()),
	}
	s.covered = make([]uint64, ins.NumModels()*s.userWords)
	if dedup {
		s.blockWords = bitset.Words(ins.Library().NumBlocks())
		s.blockOn = make([]uint64, ins.NumServers()*s.blockWords)
		e.ensureBlockIndex()
	}
	return s, nil
}

// coveredMask returns the packed set of users whose request for model i is
// already servable within QoS.
func (s *greedyState) coveredMask(i int) bitset.Set {
	return bitset.Set(s.covered[i*s.userWords : (i+1)*s.userWords])
}

// blockMask returns the packed set of blocks cached on server m.
func (s *greedyState) blockMask(m int) bitset.Set {
	return bitset.Set(s.blockOn[m*s.blockWords : (m+1)*s.blockWords])
}

// gain returns the marginal cache-hit mass of adding x_{m,i}:
// U(X ∪ {x_{m,i}}) − U(X), unnormalized (eq. 2 numerator).
func (s *greedyState) gain(m, i int) float64 {
	if s.placed.Has(m, i) {
		return 0
	}
	return s.e.maskMass(i, s.e.Instance().UserMask(m, i), s.coveredMask(i))
}

// cost returns the incremental storage of adding model i to server m:
// g_m(X_m ∪ {x_{m,i}}) − g_m(X_m) with deduplication, or D_i without.
// The dedup path walks the word-packed missing-block set (model blocks
// AND-NOT cached blocks) instead of testing every block ID individually;
// the sum is over the same blocks in the same ascending order, and int64
// addition is order-free anyway.
func (s *greedyState) cost(m, i int) int64 {
	if !s.dedup {
		return s.e.Instance().Library().ModelSize(i)
	}
	on := s.blockOn[m*s.blockWords:]
	mask := s.e.blockMasks[i*s.blockWords : (i+1)*s.blockWords]
	sizes := s.e.blockSizes
	var c int64
	for w, v := range mask {
		for miss := v &^ on[w]; miss != 0; miss &= miss - 1 {
			c += sizes[w<<6|mbits.TrailingZeros64(miss)]
		}
	}
	return c
}

// fits reports whether adding model i to server m respects Q_m.
func (s *greedyState) fits(m, i int) bool {
	return s.used[m]+s.cost(m, i) <= s.caps[m]
}

// commit places model i on server m and updates coverage and storage.
func (s *greedyState) commit(m, i int) {
	ins := s.e.Instance()
	s.used[m] += s.cost(m, i)
	if s.dedup {
		on := s.blockMask(m)
		for _, j := range ins.Library().ModelBlocks(i) {
			on.Set(j)
		}
	}
	s.placed.Set(m, i)
	s.coveredMask(i).Or(ins.UserMask(m, i))
}

// gainTolerance treats marginal gains at or below this value as zero:
// placing such a model cannot change the hit ratio materially and only
// burns storage.
const gainTolerance = 1e-15

// runNaiveGreedy repeatedly commits the feasible (m,i) with the largest
// marginal gain, rescanning all candidates each step (Algorithm 3 verbatim).
func runNaiveGreedy(s *greedyState) {
	ins := s.e.Instance()
	M, I := ins.NumServers(), ins.NumModels()
	for {
		bestGain := gainTolerance
		bestM, bestI := -1, -1
		for m := 0; m < M; m++ {
			for i := 0; i < I; i++ {
				if s.placed.Has(m, i) {
					continue
				}
				g := s.gain(m, i)
				if g > bestGain && s.fits(m, i) {
					bestGain, bestM, bestI = g, m, i
				}
			}
		}
		if bestM < 0 {
			return
		}
		s.commit(bestM, bestI)
	}
}

// candidate is a lazy-greedy heap entry; key is a stale upper bound on the
// true marginal gain (valid because U is submodular: gains only shrink
// within one solve).
type candidate struct {
	key  float64
	m, i int32
}

// candLess orders candidates by descending key, ties broken by ascending
// (m, i). Because (m, i) is unique per entry this is a strict total order,
// so the pop sequence of a heap is determined by its entry set alone — any
// two heaps holding the same entries pop identically regardless of their
// internal array layout. That property is what lets the evaluator's
// persistent commit heap (see Evaluator.commitHeap) hand solves a
// pre-ordered copy instead of rebuilding from scratch.
func candLess(a, b candidate) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	if a.m != b.m {
		return a.m < b.m
	}
	return a.i < b.i
}

// candidateHeap is a hand-rolled binary heap under candLess (largest key
// first). container/heap would route every comparison and swap through an
// interface — and box every Push into an `any`, allocating per push — on
// what profiling shows is the solver's hottest loop, so the sift
// operations are spelled out with value moves instead.
type candidateHeap []candidate

func (h candidateHeap) siftDown(i int) {
	n := len(h)
	c := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && candLess(h[r], h[l]) {
			l = r
		}
		if !candLess(h[l], c) {
			break
		}
		h[i] = h[l]
		i = l
	}
	h[i] = c
}

func (h candidateHeap) siftUp(i int) {
	c := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(c, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = c
}

// init establishes the heap invariant over an arbitrary entry order.
func (h candidateHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *candidateHeap) push(c candidate) {
	*h = append(*h, c)
	h.siftUp(len(*h) - 1)
}

func (h *candidateHeap) pop() candidate {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		old[:n].siftDown(0)
	}
	return top
}

// runLazyGreedy is the accelerated variant of Algorithm 3 using lazy
// evaluation (Minoux). The starting heap — every pair keyed by its
// empty-placement gain u0(m,i) — comes from the evaluator's persistent
// commit heap, which warm starts carry across incremental instance
// updates (Evaluator.commitHeap).
//
// Certified candidates whose storage does not fit are dropped permanently:
// fits() tests used[m] + cost(m,i), which telescopes to exactly
// g_m(X_m ∪ {i}) — the deduplicated size of the server's block union with
// model i — and a block union only grows as commits accrue, so a
// candidate that does not fit now can never fit later. (An earlier
// incarnation parked unfit candidates for retry after every commit, which
// at LoRA scale re-pushed thousands of dead candidates per commit and
// dominated the solve; the exact-placement-equality tests pin that
// dropping them changes nothing.)
func runLazyGreedy(s *greedyState) {
	h := s.e.commitHeap()
	for len(h) > 0 {
		c := h.pop()
		g := s.gain(int(c.m), int(c.i))
		if g <= gainTolerance {
			continue // gains never grow back; drop permanently
		}
		if len(h) > 0 && g < h[0].key {
			c.key = g
			h.push(c)
			continue
		}
		// Certified: g is the maximum true gain among heap candidates.
		if s.fits(int(c.m), int(c.i)) {
			s.commit(int(c.m), int(c.i))
		}
	}
}

// GenOptions configures TrimCaching Gen.
type GenOptions struct {
	// Lazy enables lazy (Minoux-accelerated) evaluation. Both variants
	// produce placements with identical hit ratios.
	Lazy bool
}

// TrimCachingGen runs Algorithm 3: greedily place the (server, model) pair
// with the largest marginal cache-hit gain whose deduplicated storage still
// fits, until no feasible pair with positive gain remains.
func TrimCachingGen(e *Evaluator, capacities []int64, opts GenOptions) (*Placement, error) {
	s, err := newGreedyState(e, capacities, true)
	if err != nil {
		return nil, err
	}
	if opts.Lazy {
		runLazyGreedy(s)
	} else {
		runNaiveGreedy(s)
	}
	return s.placed, nil
}

// IndependentCaching is the baseline content-placement scheme (§VII-A):
// the same greedy loop as TrimCaching Gen but charging each model its full
// size — shared parameter blocks are not deduplicated.
func IndependentCaching(e *Evaluator, capacities []int64) (*Placement, error) {
	s, err := newGreedyState(e, capacities, false)
	if err != nil {
		return nil, err
	}
	runLazyGreedy(s)
	return s.placed, nil
}
