package placement

import (
	"container/heap"
	"fmt"

	"trimcaching/internal/bitset"
)

// greedyState tracks the incremental quantities shared by the greedy
// algorithms: request coverage, per-server cached blocks, and storage use.
// Coverage and block bookkeeping are word-packed: a marginal gain is one
// AND-NOT sweep over a user mask (the instance's inverted index
// model → reachable users per server) instead of a K-element rescan.
type greedyState struct {
	e          *Evaluator
	caps       []int64
	dedup      bool // true: parameter-sharing storage (eq. 7); false: independent caching
	placed     *Placement
	userWords  int
	covered    []uint64 // covered[i*userWords+w], bit k: request (k,i) already servable
	blockWords int
	blockOn    []uint64 // blockOn[m*blockWords+w], bit j: server m caches block j (dedup mode)
	used       []int64  // used[m]: bytes cached on server m
}

func newGreedyState(e *Evaluator, caps []int64, dedup bool) (*greedyState, error) {
	ins := e.Instance()
	if len(caps) != ins.NumServers() {
		return nil, fmt.Errorf("placement: %d capacities for %d servers", len(caps), ins.NumServers())
	}
	for m, q := range caps {
		if q < 0 {
			return nil, fmt.Errorf("placement: negative capacity %d for server %d", q, m)
		}
	}
	s := &greedyState{
		e:         e,
		caps:      caps,
		dedup:     dedup,
		placed:    NewPlacement(ins.NumServers(), ins.NumModels()),
		userWords: ins.UserMaskWords(),
		used:      make([]int64, ins.NumServers()),
	}
	s.covered = make([]uint64, ins.NumModels()*s.userWords)
	if dedup {
		s.blockWords = bitset.Words(ins.Library().NumBlocks())
		s.blockOn = make([]uint64, ins.NumServers()*s.blockWords)
	}
	return s, nil
}

// coveredMask returns the packed set of users whose request for model i is
// already servable within QoS.
func (s *greedyState) coveredMask(i int) bitset.Set {
	return bitset.Set(s.covered[i*s.userWords : (i+1)*s.userWords])
}

// blockMask returns the packed set of blocks cached on server m.
func (s *greedyState) blockMask(m int) bitset.Set {
	return bitset.Set(s.blockOn[m*s.blockWords : (m+1)*s.blockWords])
}

// gain returns the marginal cache-hit mass of adding x_{m,i}:
// U(X ∪ {x_{m,i}}) − U(X), unnormalized (eq. 2 numerator).
func (s *greedyState) gain(m, i int) float64 {
	if s.placed.Has(m, i) {
		return 0
	}
	return s.e.maskMass(i, s.e.Instance().UserMask(m, i), s.coveredMask(i))
}

// cost returns the incremental storage of adding model i to server m:
// g_m(X_m ∪ {x_{m,i}}) − g_m(X_m) with deduplication, or D_i without.
func (s *greedyState) cost(m, i int) int64 {
	lib := s.e.Instance().Library()
	if !s.dedup {
		return lib.ModelSize(i)
	}
	on := s.blockMask(m)
	var c int64
	for _, j := range lib.ModelBlocks(i) {
		if !on.Has(j) {
			c += lib.BlockSize(j)
		}
	}
	return c
}

// fits reports whether adding model i to server m respects Q_m.
func (s *greedyState) fits(m, i int) bool {
	return s.used[m]+s.cost(m, i) <= s.caps[m]
}

// commit places model i on server m and updates coverage and storage.
func (s *greedyState) commit(m, i int) {
	ins := s.e.Instance()
	s.used[m] += s.cost(m, i)
	if s.dedup {
		on := s.blockMask(m)
		for _, j := range ins.Library().ModelBlocks(i) {
			on.Set(j)
		}
	}
	s.placed.Set(m, i)
	s.coveredMask(i).Or(ins.UserMask(m, i))
}

// gainTolerance treats marginal gains at or below this value as zero:
// placing such a model cannot change the hit ratio materially and only
// burns storage.
const gainTolerance = 1e-15

// runNaiveGreedy repeatedly commits the feasible (m,i) with the largest
// marginal gain, rescanning all candidates each step (Algorithm 3 verbatim).
func runNaiveGreedy(s *greedyState) {
	ins := s.e.Instance()
	M, I := ins.NumServers(), ins.NumModels()
	for {
		bestGain := gainTolerance
		bestM, bestI := -1, -1
		for m := 0; m < M; m++ {
			for i := 0; i < I; i++ {
				if s.placed.Has(m, i) {
					continue
				}
				g := s.gain(m, i)
				if g > bestGain && s.fits(m, i) {
					bestGain, bestM, bestI = g, m, i
				}
			}
		}
		if bestM < 0 {
			return
		}
		s.commit(bestM, bestI)
	}
}

// candidate is a lazy-greedy heap entry; key is a stale upper bound on the
// true marginal gain (valid because U is submodular: gains only shrink).
type candidate struct {
	key  float64
	m, i int32
}

type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(a, b int) bool {
	if h[a].key != h[b].key {
		return h[a].key > h[b].key
	}
	if h[a].m != h[b].m {
		return h[a].m < h[b].m
	}
	return h[a].i < h[b].i
}
func (h candidateHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *candidateHeap) Push(x any)   { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// runLazyGreedy is the accelerated variant of Algorithm 3 using lazy
// evaluation (Minoux). Candidates whose storage does not currently fit are
// parked and retried after the next commit, because the incremental cost
// g_m(X∪{x})−g_m(X) is non-increasing (the constraint is submodular), so
// they may fit later.
func runLazyGreedy(s *greedyState) {
	ins := s.e.Instance()
	M, I := ins.NumServers(), ins.NumModels()
	h := make(candidateHeap, 0, M*I)
	for m := 0; m < M; m++ {
		for i := 0; i < I; i++ {
			// On the empty placement the marginal gain is the evaluator's
			// memoized u0(m,i), so a warm-started solve (evaluator reused
			// across an incremental instance update) recomputes only the
			// pairs the delta invalidated.
			if g := s.e.BaseGain(m, i); g > gainTolerance {
				h = append(h, candidate{key: g, m: int32(m), i: int32(i)})
			}
		}
	}
	heap.Init(&h)

	var parked []candidate
	for {
		committed := false
		for h.Len() > 0 {
			c := heap.Pop(&h).(candidate)
			g := s.gain(int(c.m), int(c.i))
			if g <= gainTolerance {
				continue // gains never grow back; drop permanently
			}
			if h.Len() > 0 && g < h[0].key {
				c.key = g
				heap.Push(&h, c)
				continue
			}
			// Certified: g is the maximum true gain among heap candidates.
			if s.fits(int(c.m), int(c.i)) {
				s.commit(int(c.m), int(c.i))
				committed = true
				break
			}
			parked = append(parked, c)
		}
		if !committed {
			return // heap drained with nothing feasible left
		}
		// A commit may have shrunk parked candidates' incremental cost.
		for _, c := range parked {
			heap.Push(&h, c)
		}
		parked = parked[:0]
	}
}

// GenOptions configures TrimCaching Gen.
type GenOptions struct {
	// Lazy enables lazy (Minoux-accelerated) evaluation. Both variants
	// produce placements with identical hit ratios.
	Lazy bool
}

// TrimCachingGen runs Algorithm 3: greedily place the (server, model) pair
// with the largest marginal cache-hit gain whose deduplicated storage still
// fits, until no feasible pair with positive gain remains.
func TrimCachingGen(e *Evaluator, capacities []int64, opts GenOptions) (*Placement, error) {
	s, err := newGreedyState(e, capacities, true)
	if err != nil {
		return nil, err
	}
	if opts.Lazy {
		runLazyGreedy(s)
	} else {
		runNaiveGreedy(s)
	}
	return s.placed, nil
}

// IndependentCaching is the baseline content-placement scheme (§VII-A):
// the same greedy loop as TrimCaching Gen but charging each model its full
// size — shared parameter blocks are not deduplicated.
func IndependentCaching(e *Evaluator, capacities []int64) (*Placement, error) {
	s, err := newGreedyState(e, capacities, false)
	if err != nil {
		return nil, err
	}
	runLazyGreedy(s)
	return s.placed, nil
}
