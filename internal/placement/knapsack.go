package placement

import (
	"math"
	"sort"

	"trimcaching/internal/bitset"
)

// knapsackItem is one model in the per-combination sub-problem of Algorithm
// 2: value u(m,i) (expected cache-hit mass, eq. 14) and weight D_N(i) (the
// model's specific bytes once the shared combination is cached, eq. 13).
type knapsackItem struct {
	id     int // model index
	value  float64
	weight int64
}

// maxDPWidth bounds the value-axis resolution of the rounding DP. When the
// paper's scale ε·u_min would need more slots, the scale is coarsened to
// fit; this trades a documented sliver of the (1-ε) guarantee for bounded
// memory and time.
const maxDPWidth = 1 << 17

// dpScratch holds reusable DP buffers so the per-combination solves of
// Algorithm 2 do not reallocate megabytes per combo. The take flags are
// word-packed: one bit per (item, value) cell shrinks the scratch 8× and
// makes the per-combo clear a word fill.
type dpScratch struct {
	weights []int64
	take    bitset.Set
}

func (s *dpScratch) resize(n, width int) (T []int64, take bitset.Set) {
	if cap(s.weights) < width+1 {
		s.weights = make([]int64, width+1)
	}
	words := bitset.Words(n * (width + 1))
	if cap(s.take) < words {
		s.take = make(bitset.Set, words)
	}
	T = s.weights[:width+1]
	take = s.take[:words]
	take.Zero()
	return T, take
}

// solveKnapsack maximizes Σ value subject to Σ weight ≤ capacity.
//
// epsilon > 0 runs the paper's DP-based rounding (Algorithm 2): values are
// quantized to u̇ = ⌊u/(ε·u_min)⌋ with u_min the smallest positive item
// value, the DP computes the minimum weight per achievable quantized value
// (eq. 15–16), and the best feasible value is recovered (eq. 17). The
// returned set's TRUE value is reported, matching eq. (20).
//
// epsilon == 0 computes the exact optimum by depth-first branch-and-bound
// with a fractional-relaxation bound (used for the Fig. 6 optimality
// comparison, where the paper sets ε = 0).
//
// scratch may be nil; pass one to amortize DP allocations across calls.
func solveKnapsack(items []knapsackItem, capacity int64, epsilon float64, scratch *dpScratch) (chosen []int, value float64) {
	// Filter items that cannot contribute.
	filtered := make([]knapsackItem, 0, len(items))
	var all int64
	var allValue float64
	for _, it := range items {
		if it.value <= 0 || it.weight > capacity {
			continue
		}
		filtered = append(filtered, it)
		all += it.weight
		allValue += it.value
	}
	if len(filtered) == 0 {
		return nil, 0
	}
	// Everything fits: no optimization needed.
	if all <= capacity {
		ids := make([]int, len(filtered))
		for i, it := range filtered {
			ids[i] = it.id
		}
		return ids, allValue
	}
	if epsilon > 0 {
		if scratch == nil {
			scratch = &dpScratch{}
		}
		return roundingDP(filtered, capacity, epsilon, scratch)
	}
	return branchAndBound(filtered, capacity)
}

// roundingDP is Algorithm 2's inner DP.
func roundingDP(items []knapsackItem, capacity int64, epsilon float64, scratch *dpScratch) ([]int, float64) {
	uMin := math.Inf(1)
	var uSum float64
	for _, it := range items {
		if it.value < uMin {
			uMin = it.value
		}
		uSum += it.value
	}
	scale := epsilon * uMin
	if uSum/scale > float64(maxDPWidth) {
		scale = uSum / float64(maxDPWidth)
	}

	quant := make([]int, len(items))
	width := 0
	for idx, it := range items {
		quant[idx] = int(it.value / scale)
		width += quant[idx]
	}
	if width == 0 {
		return nil, 0
	}

	const inf = math.MaxInt64
	// T[w] = smallest total weight achieving quantized value exactly w
	// (eq. 15 initialization, eq. 16 transition). take[idx*(width+1)+w]
	// records whether T gained value w by taking item idx; with the
	// descending-w in-place update, T[w-q] reads the previous item row, so
	// the flags reconstruct an optimal set exactly.
	T, take := scratch.resize(len(items), width)
	T[0] = 0
	for w := 1; w <= width; w++ {
		T[w] = inf
	}
	reach := 0 // highest value index reachable so far
	for idx, it := range items {
		q := quant[idx]
		if q == 0 {
			continue
		}
		hi := reach + q
		if hi > width {
			hi = width
		}
		for w := hi; w >= q; w-- {
			if T[w-q] == inf {
				continue
			}
			if cand := T[w-q] + it.weight; cand < T[w] {
				T[w] = cand
				take.Set(idx*(width+1) + w)
			}
		}
		reach = hi
	}

	// eq. (17): the largest quantized value whose weight fits.
	best := -1
	for w := width; w >= 0; w-- {
		if T[w] <= capacity {
			best = w
			break
		}
	}
	if best <= 0 {
		return nil, 0
	}
	// Recover the chosen set; report its true (unquantized) value, eq. (20).
	var ids []int
	var trueValue float64
	w := best
	for idx := len(items) - 1; idx >= 0 && w > 0; idx-- {
		if take.Has(idx*(width+1) + w) {
			ids = append(ids, items[idx].id)
			trueValue += items[idx].value
			w -= quant[idx]
		}
	}
	sort.Ints(ids)
	return ids, trueValue
}

// branchAndBound solves 0/1 knapsack exactly. Items are explored in
// decreasing value density with a fractional-relaxation upper bound.
func branchAndBound(items []knapsackItem, capacity int64) ([]int, float64) {
	order := make([]knapsackItem, len(items))
	copy(order, items)
	sort.Slice(order, func(a, b int) bool {
		return order[a].value*float64(order[b].weight) > order[b].value*float64(order[a].weight)
	})

	bestValue := 0.0
	var bestSet []int
	cur := make([]int, 0, len(order))

	// bound returns the fractional-knapsack upper bound for the subtree.
	bound := func(idx int, room int64, value float64) float64 {
		for ; idx < len(order) && room > 0; idx++ {
			it := order[idx]
			if it.weight <= room {
				room -= it.weight
				value += it.value
			} else {
				value += it.value * float64(room) / float64(it.weight)
				break
			}
		}
		return value
	}

	var dfs func(idx int, room int64, value float64)
	dfs = func(idx int, room int64, value float64) {
		if value > bestValue {
			bestValue = value
			bestSet = append(bestSet[:0], cur...)
		}
		if idx >= len(order) || bound(idx, room, value) <= bestValue {
			return
		}
		if it := order[idx]; it.weight <= room {
			cur = append(cur, it.id)
			dfs(idx+1, room-it.weight, value+it.value)
			cur = cur[:len(cur)-1]
		}
		dfs(idx+1, room, value)
	}
	dfs(0, capacity, 0)

	ids := append([]int(nil), bestSet...)
	sort.Ints(ids)
	return ids, bestValue
}
