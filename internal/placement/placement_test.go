package placement

import (
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// buildEval constructs a small evaluator: special-case library with
// modelsPerFamily models per ResNet family, M servers, K users.
func buildEval(t testing.TB, m, k, modelsPerFamily int, seed uint64) *Evaluator {
	t.Helper()
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(modelsPerFamily), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	cfg := scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: m, NumUsers: k, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}
	ins, err := scenario.Generate(lib, cfg, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// fig6Eval reproduces the paper's small exhaustive-search setting: 400 m
// area, M = 2 servers, K = 6 users, 9 models.
func fig6Eval(t testing.TB, seed uint64) *Evaluator {
	t.Helper()
	full, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(3), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := libgen.TakeStratified(full, 9, rng.New(seed+7))
	if err != nil {
		t.Fatal(err)
	}
	w := wireless.DefaultConfig()
	cfg := scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 400, NumServers: 2, NumUsers: 6, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}
	ins, err := scenario.Generate(lib, cfg, rng.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

const gb = int64(1) << 30

func TestPlacementBasics(t *testing.T) {
	p := NewPlacement(3, 4)
	if p.NumServers() != 3 || p.NumModels() != 4 {
		t.Fatal("dims")
	}
	if p.Has(1, 2) {
		t.Fatal("fresh placement non-empty")
	}
	p.Set(1, 2)
	p.Set(1, 0)
	p.Set(2, 3)
	if !p.Has(1, 2) || !p.Has(2, 3) {
		t.Fatal("Set/Has mismatch")
	}
	on := p.ModelsOn(1)
	if len(on) != 2 || on[0] != 0 || on[1] != 2 {
		t.Fatalf("ModelsOn = %v", on)
	}
	if p.CountPlacements() != 3 {
		t.Fatalf("count %d", p.CountPlacements())
	}
	c := p.Clone()
	c.Unset(1, 2)
	if !p.Has(1, 2) || c.Has(1, 2) {
		t.Fatal("Clone not independent")
	}
}

func TestEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(nil); err == nil {
		t.Fatal("nil instance must error")
	}
	e := buildEval(t, 3, 5, 2, 1)
	if _, err := e.HitRatio(nil); err == nil {
		t.Fatal("nil placement must error")
	}
	wrong := NewPlacement(2, 2)
	if _, err := e.HitRatio(wrong); err == nil {
		t.Fatal("dim mismatch must error")
	}
	if _, err := e.ServerStorage(NewPlacement(3, e.Instance().NumModels()), 99); err == nil {
		t.Fatal("bad server index must error")
	}
	if err := e.CheckFeasible(NewPlacement(3, e.Instance().NumModels()), []int64{1}); err == nil {
		t.Fatal("capacity length mismatch must error")
	}
}

func TestHitRatioEmptyAndMonotone(t *testing.T) {
	e := buildEval(t, 4, 10, 3, 2)
	I := e.Instance().NumModels()
	p := NewPlacement(4, I)
	hr, err := e.HitRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	if hr != 0 {
		t.Fatalf("empty placement hit ratio %v", hr)
	}
	prev := 0.0
	for i := 0; i < I; i++ {
		p.Set(0, i)
		p.Set(2, i)
		hr, err := e.HitRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		if hr < prev-1e-12 {
			t.Fatalf("hit ratio decreased: %v -> %v", prev, hr)
		}
		if hr < 0 || hr > 1 {
			t.Fatalf("hit ratio %v outside [0,1]", hr)
		}
		prev = hr
	}
	if prev == 0 {
		t.Fatal("full placement on two servers served nothing; implausible")
	}
}

func TestHitRatioSubmodularity(t *testing.T) {
	// U(X ∪ {x}) − U(X) ≥ U(X' ∪ {x}) − U(X') for X ⊆ X' (Proposition 1).
	e := buildEval(t, 4, 10, 3, 3)
	M, I := 4, e.Instance().NumModels()
	src := rng.New(99)
	for trial := 0; trial < 40; trial++ {
		small := NewPlacement(M, I)
		big := NewPlacement(M, I)
		for m := 0; m < M; m++ {
			for i := 0; i < I; i++ {
				r := src.Float64()
				if r < 0.2 {
					small.Set(m, i)
					big.Set(m, i)
				} else if r < 0.5 {
					big.Set(m, i)
				}
			}
		}
		am, ai := src.Intn(M), src.Intn(I)
		if big.Has(am, ai) {
			continue
		}
		uSmall, err := e.HitRatio(small)
		if err != nil {
			t.Fatal(err)
		}
		uBig, err := e.HitRatio(big)
		if err != nil {
			t.Fatal(err)
		}
		small.Set(am, ai)
		big.Set(am, ai)
		uSmallAdd, err := e.HitRatio(small)
		if err != nil {
			t.Fatal(err)
		}
		uBigAdd, err := e.HitRatio(big)
		if err != nil {
			t.Fatal(err)
		}
		if (uSmallAdd-uSmall)-(uBigAdd-uBig) < -1e-12 {
			t.Fatalf("submodularity violated: small gain %v < big gain %v",
				uSmallAdd-uSmall, uBigAdd-uBig)
		}
	}
}

func TestStorageSubmodularity(t *testing.T) {
	// g_m(X ∪ {x}) − g_m(X) ≥ g_m(X' ∪ {x}) − g_m(X') for X ⊆ X'
	// (Proposition 1, constraint side).
	e := buildEval(t, 2, 4, 4, 4)
	I := e.Instance().NumModels()
	src := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		small := NewPlacement(2, I)
		big := NewPlacement(2, I)
		for i := 0; i < I; i++ {
			r := src.Float64()
			if r < 0.2 {
				small.Set(0, i)
				big.Set(0, i)
			} else if r < 0.5 {
				big.Set(0, i)
			}
		}
		ai := src.Intn(I)
		if big.Has(0, ai) {
			continue
		}
		gS0, err := e.ServerStorage(small, 0)
		if err != nil {
			t.Fatal(err)
		}
		gB0, err := e.ServerStorage(big, 0)
		if err != nil {
			t.Fatal(err)
		}
		small.Set(0, ai)
		big.Set(0, ai)
		gS1, err := e.ServerStorage(small, 0)
		if err != nil {
			t.Fatal(err)
		}
		gB1, err := e.ServerStorage(big, 0)
		if err != nil {
			t.Fatal(err)
		}
		if (gS1-gS0)-(gB1-gB0) < 0 {
			t.Fatalf("storage submodularity violated: %d < %d", gS1-gS0, gB1-gB0)
		}
	}
}

func TestServerStorageDedupVsIndependent(t *testing.T) {
	e := buildEval(t, 2, 4, 3, 5)
	I := e.Instance().NumModels()
	p := NewPlacement(2, I)
	// Two same-family models share the pre-trained prefix.
	p.Set(0, 0)
	p.Set(0, 1)
	dedup, err := e.ServerStorage(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := e.ServerStorageIndependent(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dedup >= indep {
		t.Fatalf("dedup %d >= independent %d for same-family models", dedup, indep)
	}
	lib := e.Instance().Library()
	if indep != lib.ModelSize(0)+lib.ModelSize(1) {
		t.Fatalf("independent storage %d", indep)
	}
}

func TestCheckFeasible(t *testing.T) {
	e := buildEval(t, 2, 4, 2, 6)
	I := e.Instance().NumModels()
	p := NewPlacement(2, I)
	p.Set(0, 0)
	if err := e.CheckFeasible(p, UniformCapacities(2, gb)); err != nil {
		t.Fatalf("1 GB should fit one model: %v", err)
	}
	if err := e.CheckFeasible(p, UniformCapacities(2, 10)); err == nil {
		t.Fatal("10 bytes cannot fit a ResNet")
	}
}

func TestUniformCapacities(t *testing.T) {
	caps := UniformCapacities(4, 123)
	if len(caps) != 4 {
		t.Fatal("length")
	}
	for _, c := range caps {
		if c != 123 {
			t.Fatal("value")
		}
	}
}
