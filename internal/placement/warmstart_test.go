package placement

import (
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/mobility"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// warmWalk builds an instance, an evaluator bound to it, and a mobility
// population for driving incremental updates.
func warmWalk(t *testing.T, seed uint64) (*scenario.Instance, *Evaluator, *mobility.Population, *rng.Source) {
	t.Helper()
	lib, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(5), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed + 3)
	w := wireless.DefaultConfig()
	gen := scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: 6, NumUsers: 12, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}
	ins, err := scenario.Generate(lib, gen, src.Split("instance"))
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := mobility.NewPopulation(ins.Topology().Area(), ins.Topology().UserPositions(), src.Split("mobility"))
	if err != nil {
		t.Fatal(err)
	}
	return ins, eval, pop, src.Split("walk")
}

func placementsEqual(a, b *Placement) bool {
	if a.NumServers() != b.NumServers() || a.NumModels() != b.NumModels() {
		return false
	}
	for m := 0; m < a.NumServers(); m++ {
		for i := 0; i < a.NumModels(); i++ {
			if a.Has(m, i) != b.Has(m, i) {
				return false
			}
		}
	}
	return true
}

// TestWarmStartMatchesColdSolve is the placement half of the tentpole's
// golden equivalence: after incremental instance updates, a warm-started
// Repair (reused evaluator, delta-invalidated gain memo, previous
// placement) must reproduce a cold solve (fresh evaluator on the same
// instance) exactly, for every warm-start-capable algorithm.
func TestWarmStartMatchesColdSolve(t *testing.T) {
	algs := []WarmStartAlgorithm{
		GenAlgorithm{Options: GenOptions{Lazy: true}},
		GenAlgorithm{},
		IndependentAlgorithm{},
		SpecAlgorithm{Options: DefaultSpecOptions()},
	}
	for _, alg := range algs {
		ins, eval, pop, walk := warmWalk(t, 23)
		caps := UniformCapacities(ins.NumServers(), 1<<30)
		prev, err := alg.Place(eval, caps)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		all := make([]int, ins.NumUsers())
		for k := range all {
			all[k] = k
		}
		for cp := 0; cp < 3; cp++ {
			for s := 0; s < 120; s++ {
				if err := pop.Step(5, walk); err != nil {
					t.Fatal(err)
				}
			}
			delta, err := ins.UpdateUsers(all, pop.Positions())
			if err != nil {
				t.Fatal(err)
			}
			warm, err := alg.Repair(eval, caps, prev, delta)
			if err != nil {
				t.Fatalf("%s: repair: %v", alg.Name(), err)
			}
			coldEval, err := NewEvaluator(ins)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := alg.Place(coldEval, caps)
			if err != nil {
				t.Fatalf("%s: cold: %v", alg.Name(), err)
			}
			if !placementsEqual(warm, cold) {
				t.Fatalf("%s: checkpoint %d: warm-started repair differs from cold solve", alg.Name(), cp)
			}
			prev = warm
		}
	}
}

// TestRepairAfterInterleavedBaseGainSweep pins the persistent commit
// heap's staleness tracking against interleaved memo consumers: after
// ApplyDelta, another solver sharing the evaluator (here a Spec solve,
// and an explicit full BaseGain sweep) revalidates the invalidated memo
// entries before the lazy solver runs. The heap must still re-key the
// delta's pairs — staleness is tracked separately from memo validity — or
// the warm Repair diverges from a cold solve.
func TestRepairAfterInterleavedBaseGainSweep(t *testing.T) {
	for _, seed := range []uint64{20, 23, 29} {
		ins, eval, pop, walk := warmWalk(t, seed)
		caps := UniformCapacities(ins.NumServers(), 1<<30)
		alg := GenAlgorithm{Options: GenOptions{Lazy: true}}
		prev, err := alg.Place(eval, caps)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]int, ins.NumUsers())
		for k := range all {
			all[k] = k
		}
		for cp := 0; cp < 2; cp++ {
			for s := 0; s < 120; s++ {
				if err := pop.Step(5, walk); err != nil {
					t.Fatal(err)
				}
			}
			delta, err := ins.UpdateUsers(all, pop.Positions())
			if err != nil {
				t.Fatal(err)
			}
			if err := eval.ApplyDelta(delta); err != nil {
				t.Fatal(err)
			}
			// Interleaved consumers revalidate the memo entries the delta
			// just dropped.
			if _, err := (SpecAlgorithm{Options: DefaultSpecOptions()}).Place(eval, caps); err != nil {
				t.Fatal(err)
			}
			for m := 0; m < ins.NumServers(); m++ {
				for i := 0; i < ins.NumModels(); i++ {
					eval.BaseGain(m, i)
				}
			}
			warm, err := alg.Repair(eval, caps, prev, delta)
			if err != nil {
				t.Fatal(err)
			}
			coldEval, err := NewEvaluator(ins)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := alg.Place(coldEval, caps)
			if err != nil {
				t.Fatal(err)
			}
			if !placementsEqual(warm, cold) {
				t.Fatalf("seed %d checkpoint %d: repair after interleaved BaseGain sweep differs from cold solve", seed, cp)
			}
			prev = warm
		}
	}
}

// TestRepairNothingChangedFastPath pins the short-circuit: when the delta
// reports no reachability change, Repair returns the previous placement
// without re-solving.
func TestRepairNothingChangedFastPath(t *testing.T) {
	ins, eval, _, _ := warmWalk(t, 31)
	caps := UniformCapacities(ins.NumServers(), 1<<30)
	alg := GenAlgorithm{Options: GenOptions{Lazy: true}}
	prev, err := alg.Place(eval, caps)
	if err != nil {
		t.Fatal(err)
	}
	// Re-assert current positions: a genuine delta with empty Pairs.
	all := make([]int, ins.NumUsers())
	for k := range all {
		all[k] = k
	}
	delta, err := ins.UpdateUsers(all, ins.Topology().UserPositions())
	if err != nil {
		t.Fatal(err)
	}
	if delta.Pairs.Any() {
		t.Fatal("no-op move produced a non-empty delta")
	}
	got, err := alg.Repair(eval, caps, prev, delta)
	if err != nil {
		t.Fatal(err)
	}
	if got != prev {
		t.Fatal("empty delta must return the previous placement itself")
	}
}

// TestBaseGainTracksGeneration checks the memo's safety valve: mutating
// the instance without ApplyDelta must drop the memo (generation
// mismatch), never serve stale gains.
func TestBaseGainTracksGeneration(t *testing.T) {
	ins, eval, pop, walk := warmWalk(t, 47)
	// Warm the memo.
	M, I := ins.NumServers(), ins.NumModels()
	before := make([]float64, M*I)
	for m := 0; m < M; m++ {
		for i := 0; i < I; i++ {
			before[m*I+i] = eval.BaseGain(m, i)
		}
	}
	for s := 0; s < 240; s++ {
		if err := pop.Step(5, walk); err != nil {
			t.Fatal(err)
		}
	}
	all := make([]int, ins.NumUsers())
	for k := range all {
		all[k] = k
	}
	if _, err := ins.UpdateUsers(all, pop.Positions()); err != nil {
		t.Fatal(err)
	}
	// No ApplyDelta: BaseGain must still agree with a fresh evaluator.
	fresh, err := NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	var diffs int
	for m := 0; m < M; m++ {
		for i := 0; i < I; i++ {
			want := fresh.BaseGain(m, i)
			if got := eval.BaseGain(m, i); got != want {
				t.Fatalf("BaseGain(%d,%d) = %v, fresh evaluator %v", m, i, got, want)
			}
			if want != before[m*I+i] {
				diffs++
			}
		}
	}
	if diffs == 0 {
		t.Fatal("twenty minutes of walking changed no base gain; test is vacuous")
	}
}
