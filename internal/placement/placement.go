// Package placement implements the paper's contribution: cache-hit-ratio
// maximization for parameter-sharing AI model placement on wireless edge
// servers (P1.1, §IV). It provides the objective U(X) (eq. 2), the
// submodular per-server storage function g_m (eq. 7), and four solvers:
//
//   - TrimCaching Gen (Algorithm 3): greedy for the general case, in naive
//     and lazy-evaluation variants.
//   - TrimCaching Spec (Algorithms 1–2): successive greedy over servers with
//     a DP-rounding knapsack per shared-block combination, achieving a
//     (1-ε)/2 approximation in the special case.
//   - Independent Caching: the content-placement baseline that ignores
//     parameter sharing.
//   - Exhaustive search: the optimal solution for small instances (§VII-D).
package placement

import (
	"fmt"

	"trimcaching/internal/scenario"
)

// Placement is a model placement decision X: which models each edge server
// caches.
type Placement struct {
	numServers int
	numModels  int
	cached     []bool // cached[m*numModels+i] = x_{m,i}
}

// NewPlacement returns an empty placement for M servers and I models.
func NewPlacement(numServers, numModels int) *Placement {
	return &Placement{
		numServers: numServers,
		numModels:  numModels,
		cached:     make([]bool, numServers*numModels),
	}
}

// NumServers returns M.
func (p *Placement) NumServers() int { return p.numServers }

// NumModels returns I.
func (p *Placement) NumModels() int { return p.numModels }

// Has reports x_{m,i}.
func (p *Placement) Has(m, i int) bool { return p.cached[m*p.numModels+i] }

// Set sets x_{m,i} = 1.
func (p *Placement) Set(m, i int) { p.cached[m*p.numModels+i] = true }

// Unset sets x_{m,i} = 0.
func (p *Placement) Unset(m, i int) { p.cached[m*p.numModels+i] = false }

// ModelsOn returns the models cached on server m, ascending.
func (p *Placement) ModelsOn(m int) []int {
	var out []int
	for i := 0; i < p.numModels; i++ {
		if p.cached[m*p.numModels+i] {
			out = append(out, i)
		}
	}
	return out
}

// CountPlacements returns the number of (m,i) placements.
func (p *Placement) CountPlacements() int {
	var n int
	for _, v := range p.cached {
		if v {
			n++
		}
	}
	return n
}

// Clone deep-copies the placement.
func (p *Placement) Clone() *Placement {
	out := NewPlacement(p.numServers, p.numModels)
	copy(out.cached, p.cached)
	return out
}

// Evaluator binds a problem instance and evaluates placements against it.
type Evaluator struct {
	ins *scenario.Instance
}

// NewEvaluator returns an evaluator for the instance.
func NewEvaluator(ins *scenario.Instance) (*Evaluator, error) {
	if ins == nil {
		return nil, fmt.Errorf("placement: instance is required")
	}
	return &Evaluator{ins: ins}, nil
}

// Instance returns the bound problem instance.
func (e *Evaluator) Instance() *scenario.Instance { return e.ins }

// checkDims verifies the placement matches the instance.
func (e *Evaluator) checkDims(p *Placement) error {
	if p == nil {
		return fmt.Errorf("placement: placement is required")
	}
	if p.numServers != e.ins.NumServers() || p.numModels != e.ins.NumModels() {
		return fmt.Errorf("placement: placement dims %dx%d, instance %dx%d",
			p.numServers, p.numModels, e.ins.NumServers(), e.ins.NumModels())
	}
	return nil
}

// HitRatio computes U(X) (eq. 2) under the average channel: the fraction of
// request mass servable from edge caches within QoS deadlines.
func (e *Evaluator) HitRatio(p *Placement) (float64, error) {
	if err := e.checkDims(p); err != nil {
		return 0, err
	}
	M, K, I := e.ins.NumServers(), e.ins.NumUsers(), e.ins.NumModels()
	var hit float64
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			for m := 0; m < M; m++ {
				if p.cached[m*I+i] && e.ins.Reachable(m, k, i) {
					hit += e.ins.Prob(k, i)
					break
				}
			}
		}
	}
	return hit / e.ins.TotalMass(), nil
}

// HitRatioWithReach computes U(X) under an externally supplied reachability
// bitmap (length M*K*I, layout (m*K+k)*I+i), e.g. one Rayleigh-fading
// realization from Instance.FadedReach.
func (e *Evaluator) HitRatioWithReach(p *Placement, reach []bool) (float64, error) {
	if err := e.checkDims(p); err != nil {
		return 0, err
	}
	M, K, I := e.ins.NumServers(), e.ins.NumUsers(), e.ins.NumModels()
	if len(reach) != M*K*I {
		return 0, fmt.Errorf("placement: reach bitmap length %d, want %d", len(reach), M*K*I)
	}
	var hit float64
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			for m := 0; m < M; m++ {
				if p.cached[m*I+i] && reach[(m*K+k)*I+i] {
					hit += e.ins.Prob(k, i)
					break
				}
			}
		}
	}
	return hit / e.ins.TotalMass(), nil
}

// ServerStorage computes g_m(X) (eq. 7): the deduplicated bytes server m
// needs for its cached models (shared blocks stored once).
func (e *Evaluator) ServerStorage(p *Placement, m int) (int64, error) {
	if err := e.checkDims(p); err != nil {
		return 0, err
	}
	if m < 0 || m >= p.numServers {
		return 0, fmt.Errorf("placement: server %d out of range [0,%d)", m, p.numServers)
	}
	return e.ins.Library().BlocksUnion(p.ModelsOn(m), nil), nil
}

// ServerStorageIndependent computes the storage server m would need if
// models were cached independently (no block deduplication): Σ_i x_{m,i}·D_i.
func (e *Evaluator) ServerStorageIndependent(p *Placement, m int) (int64, error) {
	if err := e.checkDims(p); err != nil {
		return 0, err
	}
	if m < 0 || m >= p.numServers {
		return 0, fmt.Errorf("placement: server %d out of range [0,%d)", m, p.numServers)
	}
	var total int64
	for _, i := range p.ModelsOn(m) {
		total += e.ins.Library().ModelSize(i)
	}
	return total, nil
}

// CheckFeasible verifies g_m(X) ≤ Q_m for every server. capacities must
// have one entry per server.
func (e *Evaluator) CheckFeasible(p *Placement, capacities []int64) error {
	if err := e.checkDims(p); err != nil {
		return err
	}
	if len(capacities) != p.numServers {
		return fmt.Errorf("placement: %d capacities for %d servers", len(capacities), p.numServers)
	}
	for m := 0; m < p.numServers; m++ {
		used, err := e.ServerStorage(p, m)
		if err != nil {
			return err
		}
		if used > capacities[m] {
			return fmt.Errorf("placement: server %d uses %d bytes > capacity %d", m, used, capacities[m])
		}
	}
	return nil
}

// UniformCapacities returns a capacity vector with the same Q for every
// server (the paper uses identical storage capacities, §VII-A).
func UniformCapacities(numServers int, q int64) []int64 {
	caps := make([]int64, numServers)
	for m := range caps {
		caps[m] = q
	}
	return caps
}
