// Package placement implements the paper's contribution: cache-hit-ratio
// maximization for parameter-sharing AI model placement on wireless edge
// servers (P1.1, §IV). It provides the objective U(X) (eq. 2), the
// submodular per-server storage function g_m (eq. 7), and four solvers:
//
//   - TrimCaching Gen (Algorithm 3): greedy for the general case, in naive
//     and lazy-evaluation variants.
//   - TrimCaching Spec (Algorithms 1–2): successive greedy over servers with
//     a DP-rounding knapsack per shared-block combination, achieving a
//     (1-ε)/2 approximation in the special case.
//   - Independent Caching: the content-placement baseline that ignores
//     parameter sharing.
//   - Exhaustive search: the optimal solution for small instances (§VII-D).
package placement

import (
	"fmt"
	mbits "math/bits"

	"trimcaching/internal/bitset"
	"trimcaching/internal/scenario"
)

// Placement is a model placement decision X: which models each edge server
// caches. It is stored word-packed in both orientations: per-server model
// rows (driving storage accounting and enumeration) and per-model server
// columns (driving the evaluator, where "is request (k,i) served" is a
// single AND between a column and the instance's server mask).
type Placement struct {
	numServers  int
	numModels   int
	modelWords  int
	serverWords int
	rows        []uint64 // rows[m*modelWords+w], bit i = x_{m,i}
	cols        []uint64 // cols[i*serverWords+w], bit m = x_{m,i}
}

// NewPlacement returns an empty placement for M servers and I models.
func NewPlacement(numServers, numModels int) *Placement {
	mw, sw := bitset.Words(numModels), bitset.Words(numServers)
	return &Placement{
		numServers:  numServers,
		numModels:   numModels,
		modelWords:  mw,
		serverWords: sw,
		rows:        make([]uint64, numServers*mw),
		cols:        make([]uint64, numModels*sw),
	}
}

// MemoryBytes returns the heap bytes the placement owns (its row and
// column bit tables).
func (p *Placement) MemoryBytes() int64 {
	return int64(cap(p.rows)+cap(p.cols)) * 8
}

// NumServers returns M.
func (p *Placement) NumServers() int { return p.numServers }

// NumModels returns I.
func (p *Placement) NumModels() int { return p.numModels }

// Models returns the packed set of models cached on server m. The slice
// aliases internal state; callers must treat it as read-only.
func (p *Placement) Models(m int) bitset.Set {
	return bitset.Set(p.rows[m*p.modelWords : (m+1)*p.modelWords])
}

// Servers returns the packed set of servers caching model i. The slice
// aliases internal state; callers must treat it as read-only.
func (p *Placement) Servers(i int) bitset.Set {
	return bitset.Set(p.cols[i*p.serverWords : (i+1)*p.serverWords])
}

// Has reports x_{m,i}.
func (p *Placement) Has(m, i int) bool { return p.Models(m).Has(i) }

// Set sets x_{m,i} = 1.
func (p *Placement) Set(m, i int) {
	p.Models(m).Set(i)
	p.Servers(i).Set(m)
}

// Unset sets x_{m,i} = 0.
func (p *Placement) Unset(m, i int) {
	p.Models(m).Clear(i)
	p.Servers(i).Clear(m)
}

// ModelsOn returns the models cached on server m, ascending.
func (p *Placement) ModelsOn(m int) []int {
	var out []int
	p.Models(m).ForEach(func(i int) { out = append(out, i) })
	return out
}

// CountPlacements returns the number of (m,i) placements.
func (p *Placement) CountPlacements() int {
	var n int
	for m := 0; m < p.numServers; m++ {
		n += p.Models(m).Count()
	}
	return n
}

// PackedServerColumns returns every per-model server column concatenated,
// laid out [i*bitset.Words(M) + w], bit m = x_{m,i}. It implements
// scenario.ServerColumns, the fused fading-measurement kernel's read-only
// placement view. The slice aliases internal state; callers must treat it
// as read-only.
func (p *Placement) PackedServerColumns() []uint64 { return p.cols }

var _ scenario.ServerColumns = (*Placement)(nil)

// Clone deep-copies the placement.
func (p *Placement) Clone() *Placement {
	out := NewPlacement(p.numServers, p.numModels)
	copy(out.rows, p.rows)
	copy(out.cols, p.cols)
	return out
}

// Evaluator binds a problem instance and evaluates placements against it.
// It precomputes the model-major probability table the bitset kernels
// consume, so the greedy algorithms can sum request mass along a user mask
// without striding through the user-major workload layout.
//
// The evaluator is designed to be reused across incremental instance
// updates: the probability table depends only on the workload (which user
// movement never touches), and the empty-placement marginal-gain memo
// below tracks the instance's mutation generation. It is not safe for
// concurrent Place calls; read-only evaluation (HitRatio*) is.
type Evaluator struct {
	ins     *scenario.Instance
	probT   []float64 // probT[i*K+k] = p_{k,i}
	probGen int       // instance revision generation probT reflects

	// Empty-placement marginal-gain memo u0(m,i) = Σ_{k∈UserMask(m,i)} p_{k,i},
	// the quantity every solver's first sweep computes M·I times. Validity is
	// per-pair: ApplyDelta clears exactly the pairs an UpdateUsers call
	// changed; if the instance advanced without ApplyDelta the whole memo
	// drops (generation mismatch).
	baseGain  []float64
	baseValid bitset.Set
	baseGen   int

	// Persistent commit heap: the lazy-greedy starting heap — every
	// (server, model) pair with u0(m,i) above tolerance, keyed by exactly
	// u0(m,i) — kept heap-ordered across solves and across incremental
	// instance updates. Solves consume a copy (candLess is a strict total
	// order, so a copy pops identically to a fresh build); commitHeap
	// re-keys only the pairs marked stale since the heap was last synced.
	// Staleness is tracked in its own bitset, not inferred from baseValid:
	// any BaseGain caller (e.g. a Spec solve sharing the evaluator)
	// revalidates memo entries between ApplyDelta and the next lazy solve,
	// which would otherwise hide the delta from the heap and leave
	// pre-delta keys behind. heapPos[m*I+i] locates a pair's entry, -1
	// when absent (gain at or below tolerance). Keys must be exact — an
	// inflated upper bound would reorder lazy certification against a cold
	// solve — which is why stale entries are re-keyed to BaseGain rather
	// than patched incrementally.
	heapEnt   candidateHeap
	heapPos   []int32
	heapStale bitset.Set
	heapLive  bool

	// Per-solve scratch reused across Place/Repair calls (the evaluator is
	// documented single-solver): the working copy of the commit heap.
	workHeap candidateHeap

	// Word-packed per-model block masks and per-block sizes, built lazily
	// from the (immutable) library on the first deduplicating solve: the
	// greedy cost kernel sums missing-block sizes along mask words instead
	// of probing a bitset per block ID.
	blockMasks []uint64 // [i*blockWords+w], bit j: model i contains block j
	blockSizes []int64
	blockWords int

	// Candidate-overlay scratch for FadedCandidateRatios: per-candidate
	// column copies (base plus one bit) and their ServerColumns adapters,
	// reused across certification batches.
	overlayWords []uint64
	overlayViews []overlayColumns
}

// NewEvaluator returns an evaluator for the instance.
func NewEvaluator(ins *scenario.Instance) (*Evaluator, error) {
	if ins == nil {
		return nil, fmt.Errorf("placement: instance is required")
	}
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	probT := make([]float64, I*K)
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			probT[i*K+k] = ins.Prob(k, i)
		}
	}
	return &Evaluator{
		ins:       ins,
		probT:     probT,
		probGen:   ins.RevisionGeneration(),
		baseGain:  make([]float64, M*I),
		baseValid: bitset.New(M * I),
		baseGen:   ins.Generation(),
	}, nil
}

// MemoryBytes returns the heap bytes the evaluator owns: the transposed
// probability table, the marginal-gain memo and its validity set, the
// persistent commit heap (entries, position index, staleness set) and its
// per-solve working copy, the lazily built block masks, and the
// candidate-overlay scratch. The instance is accounted separately
// (scenario.Instance.MemoryFootprint).
func (e *Evaluator) MemoryBytes() int64 {
	const candSize = 16 // candidate: key float64 + two int32 coordinates
	n := int64(cap(e.probT)+cap(e.baseGain)) * 8
	n += int64(cap(e.baseValid)+cap(e.heapStale)) * 8
	n += int64(cap(e.heapEnt)+cap(e.workHeap)) * candSize
	n += int64(cap(e.heapPos)) * 4
	n += int64(cap(e.blockMasks))*8 + int64(cap(e.blockSizes))*8
	n += int64(cap(e.overlayWords)) * 8
	for v := range e.overlayViews {
		n += int64(cap(e.overlayViews[v].words)) * 8
	}
	n += int64(cap(e.overlayViews)) * 24
	return n
}

// BaseGain returns u0(m,i): the marginal cache-hit mass of placing model i
// on server m into an empty placement, memoized across calls. The value is
// bit-identical to recomputing the masked probability sum from scratch, so
// warm-started solves reproduce cold solves exactly.
func (e *Evaluator) BaseGain(m, i int) float64 {
	// An instance mutation without ApplyDelta drops the whole memo (and
	// the persistent commit heap, whose keys would all be stale).
	e.syncBase()
	idx := m*e.ins.NumModels() + i
	if !e.baseValid.Has(idx) {
		e.baseGain[idx] = e.maskMass(i, e.ins.UserMask(m, i), nil)
		e.baseValid.Set(idx)
	}
	return e.baseGain[idx]
}

// ApplyDelta absorbs an incremental scenario.Instance.UpdateUsers change
// into the evaluator's caches: only the marginal gains of the delta's
// changed (server, model) pairs are invalidated. Applying the same delta
// twice is a no-op; skipping a delta degrades to a full invalidation via
// the generation check, never to stale reads.
func (e *Evaluator) ApplyDelta(d *scenario.Delta) error {
	if d == nil {
		return fmt.Errorf("placement: delta is required")
	}
	switch {
	case d.Gen == e.baseGen:
		// Already applied.
	case d.Gen == e.baseGen+1 && len(d.Pairs) == len(e.baseValid):
		e.baseValid.AndNot(d.Pairs)
		if e.heapStale != nil {
			e.heapStale.Or(d.Pairs)
		}
		e.baseGen = d.Gen
		// Revised users swapped their workload rows: refresh exactly their
		// transposed-probability columns (the delta's Pairs already cover
		// the gain invalidation).
		if len(d.Revised) > 0 {
			K, I := e.ins.NumUsers(), e.ins.NumModels()
			for _, k := range d.Revised {
				for i := 0; i < I; i++ {
					e.probT[i*K+k] = e.ins.Prob(k, i)
				}
			}
			e.probGen = d.RevGen
		}
	default:
		e.baseValid.Zero()
		e.baseGen = d.Gen
		e.heapLive = false // unknown extent: rebuild the heap outright
	}
	return nil
}

// syncBase re-checks the memo's generation against the instance, dropping
// the whole memo — and the persistent commit heap, whose keys may all be
// stale — when the instance advanced without ApplyDelta (the same safety
// valve BaseGain applies).
func (e *Evaluator) syncBase() {
	if e.baseGen != e.ins.Generation() {
		e.baseValid.Zero()
		e.baseGen = e.ins.Generation()
		e.heapLive = false
	}
}

// syncProbs rebuilds the transposed probability table when the instance
// absorbed workload revisions the evaluator was never told about (the
// revision-generation analogue of syncBase's safety valve; deltas applied
// in order patch only the revised columns instead). One predictable
// compare on the solve paths' mass kernel; never reached from the
// read-only HitRatio* evaluations.
func (e *Evaluator) syncProbs() {
	if e.probGen == e.ins.RevisionGeneration() {
		return
	}
	K, I := e.ins.NumUsers(), e.ins.NumModels()
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			e.probT[i*K+k] = e.ins.Prob(k, i)
		}
	}
	e.probGen = e.ins.RevisionGeneration()
}

// commitHeap returns the lazy-greedy starting heap for the current
// instance state: every pair keyed by its exact empty-placement gain
// u0(m,i), entries at or below tolerance excluded, heap-ordered. The
// returned slice is the evaluator's reusable working scratch — the solve
// consumes it freely while the persistent copy stays intact for the next
// solve. On the first call (or after InvalidateHeap, or whenever the
// instance advanced without a matching ApplyDelta) the heap is built from
// all M·I pairs; afterwards only the pairs a delta marked stale are
// re-keyed to their fresh BaseGain, inserted, or removed — every
// surviving key is still exactly u0, so a warm solve pops the identical
// sequence a cold build would.
func (e *Evaluator) commitHeap() candidateHeap {
	M, I := e.ins.NumServers(), e.ins.NumModels()
	e.syncBase()
	switch {
	case !e.heapLive:
		if e.heapPos == nil {
			e.heapPos = make([]int32, M*I)
			e.heapStale = bitset.New(M * I)
		}
		e.heapStale.Zero()
		e.heapEnt = e.heapEnt[:0]
		for m := 0; m < M; m++ {
			for i := 0; i < I; i++ {
				if g := e.BaseGain(m, i); g > gainTolerance {
					e.heapEnt = append(e.heapEnt, candidate{key: g, m: int32(m), i: int32(i)})
				}
			}
		}
		e.heapEnt.init()
		e.reindexHeap()
		e.heapLive = true
	case e.heapStale.Any():
		e.syncHeap()
	}
	e.workHeap = append(e.workHeap[:0], e.heapEnt...)
	return e.workHeap
}

// syncHeap absorbs the accumulated delta marks into the persistent commit
// heap: every stale pair is re-keyed to its (possibly recomputed)
// BaseGain, added when it newly clears the gain tolerance, or removed when
// it no longer does. Heap order and the position index are restored
// wholesale — O(M·I), tiny next to the gain recomputation itself.
func (e *Evaluator) syncHeap() {
	I := e.ins.NumModels()
	for w, v := range e.heapStale {
		for ; v != 0; v &= v - 1 {
			p := w<<6 | mbits.TrailingZeros64(v)
			g := e.BaseGain(p/I, p%I)
			pos := e.heapPos[p]
			switch {
			case g > gainTolerance && pos >= 0:
				e.heapEnt[pos].key = g
			case g > gainTolerance:
				e.heapEnt = append(e.heapEnt, candidate{key: g, m: int32(p / I), i: int32(p % I)})
				e.heapPos[p] = int32(len(e.heapEnt) - 1)
			case pos >= 0:
				last := len(e.heapEnt) - 1
				moved := e.heapEnt[last]
				e.heapEnt[pos] = moved
				e.heapPos[int(moved.m)*I+int(moved.i)] = pos
				e.heapEnt = e.heapEnt[:last]
				e.heapPos[p] = -1
			}
		}
	}
	e.heapStale.Zero()
	e.heapEnt.init()
	e.reindexHeap()
}

// reindexHeap rebuilds heapPos from the heap entries.
func (e *Evaluator) reindexHeap() {
	I := e.ins.NumModels()
	for p := range e.heapPos {
		e.heapPos[p] = -1
	}
	for idx, c := range e.heapEnt {
		e.heapPos[int(c.m)*I+int(c.i)] = int32(idx)
	}
}

// InvalidateHeap drops the persistent commit heap, forcing the next lazy
// solve to rebuild it from all M·I pairs. Results are unaffected — the
// rebuilt heap holds the same entries a synced one would — so this exists
// for benchmarks isolating the heap carry-over's contribution
// (cmd/benchdyn's resolve section) and as an explicit reset hook.
func (e *Evaluator) InvalidateHeap() { e.heapLive = false }

// ensureBlockIndex builds the word-packed model→blocks masks and the block
// size table the greedy cost kernel streams. The library is immutable, so
// this happens once per evaluator.
func (e *Evaluator) ensureBlockIndex() {
	if e.blockMasks != nil {
		return
	}
	lib := e.ins.Library()
	I, J := e.ins.NumModels(), lib.NumBlocks()
	e.blockWords = bitset.Words(J)
	e.blockMasks = make([]uint64, I*e.blockWords)
	for i := 0; i < I; i++ {
		mask := bitset.Set(e.blockMasks[i*e.blockWords : (i+1)*e.blockWords])
		for _, j := range lib.ModelBlocks(i) {
			mask.Set(j)
		}
	}
	e.blockSizes = make([]int64, J)
	for j := 0; j < J; j++ {
		e.blockSizes[j] = lib.BlockSize(j)
	}
}

// maskMass sums p_{k,i} over the users in mask \ excluded, in ascending
// user order (matching the pre-bitset scalar loop exactly, so the packed
// evaluator preserves bit-identical floating-point sums). excluded may be
// nil. Written as a manual word loop: this is the greedy algorithms' inner
// kernel and must not pay a closure call per bit.
func (e *Evaluator) maskMass(i int, mask, excluded bitset.Set) float64 {
	e.syncProbs()
	probs := e.probT[i*e.ins.NumUsers():]
	var sum float64
	for w, word := range mask {
		if excluded != nil {
			word &^= excluded[w]
		}
		for ; word != 0; word &= word - 1 {
			sum += probs[w<<6|mbits.TrailingZeros64(word)]
		}
	}
	return sum
}

// Instance returns the bound problem instance.
func (e *Evaluator) Instance() *scenario.Instance { return e.ins }

// checkDims verifies the placement matches the instance.
func (e *Evaluator) checkDims(p *Placement) error {
	if p == nil {
		return fmt.Errorf("placement: placement is required")
	}
	if p.numServers != e.ins.NumServers() || p.numModels != e.ins.NumModels() {
		return fmt.Errorf("placement: placement dims %dx%d, instance %dx%d",
			p.numServers, p.numModels, e.ins.NumServers(), e.ins.NumModels())
	}
	return nil
}

// HitRatio computes U(X) (eq. 2) under the average channel: the fraction of
// request mass servable from edge caches within QoS deadlines. Request
// (k,i) is a hit iff the instance's server mask intersects the placement's
// server column for model i — one AND per request instead of an M-loop.
func (e *Evaluator) HitRatio(p *Placement) (float64, error) {
	if err := e.checkDims(p); err != nil {
		return 0, err
	}
	K, I := e.ins.NumUsers(), e.ins.NumModels()
	if e.ins.ServerMaskWords() == 1 {
		return e.packedHit(p, e.ins.PackedServerMasks()) / e.ins.TotalMass(), nil
	}
	var hit float64
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			if bitset.Intersects(e.ins.ServerMask(k, i), p.Servers(i)) {
				hit += e.ins.Prob(k, i)
			}
		}
	}
	return hit / e.ins.TotalMass(), nil
}

// packedHit is the single-word (M ≤ 64) evaluator kernel shared by
// HitRatio and HitRatioWithReach: masks holds one word per (user, model)
// request, user-major ([k*I+i]), and request (k,i) counts iff its word
// intersects the placement's server column.
func (e *Evaluator) packedHit(p *Placement, masks []uint64) float64 {
	K, I := e.ins.NumUsers(), e.ins.NumModels()
	cols := p.cols
	var hit float64
	for k := 0; k < K; k++ {
		row := masks[k*I : k*I+I]
		probs := e.ins.ProbRow(k)
		for i, w := range row {
			if w&cols[i] != 0 {
				hit += probs[i]
			}
		}
	}
	return hit
}

// HitRatioWithReach computes U(X) under an externally supplied word-packed
// reachability indicator, e.g. one Rayleigh-fading realization from
// Instance.FadedReach.
func (e *Evaluator) HitRatioWithReach(p *Placement, reach *scenario.Reach) (float64, error) {
	if err := e.checkDims(p); err != nil {
		return 0, err
	}
	if reach == nil {
		return 0, fmt.Errorf("placement: reach indicator is required")
	}
	if rm, rk, ri := reach.Dims(); rm != e.ins.NumServers() || rk != e.ins.NumUsers() || ri != e.ins.NumModels() {
		return 0, fmt.Errorf("placement: reach dims %dx%dx%d, instance %dx%dx%d",
			rm, rk, ri, e.ins.NumServers(), e.ins.NumUsers(), e.ins.NumModels())
	}
	K, I := e.ins.NumUsers(), e.ins.NumModels()
	if reach.Words() == 1 {
		return e.packedHit(p, reach.PackedServerMasks()) / e.ins.TotalMass(), nil
	}
	var hit float64
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			if bitset.Intersects(reach.ServerMask(k, i), p.Servers(i)) {
				hit += e.ins.Prob(k, i)
			}
		}
	}
	return hit / e.ins.TotalMass(), nil
}

// FadedHitRatios computes U(X) (eq. 2) for every placement under one
// Rayleigh-fading realization via the fused measurement kernel
// (scenario.Instance.FadedHitMass): the indicator word of each (k,i)
// request is computed and scored against the placement columns in one
// pass, with no reachability buffer materialized. Results are
// bit-identical to FadedReach followed by HitRatioWithReach. scratch may
// be nil; loops should hold a scenario.FadeScratch (see MakeFadeScratch)
// per goroutine to avoid per-realization allocation.
func (e *Evaluator) FadedHitRatios(gains [][]float64, placements []*Placement, scratch *scenario.FadeScratch, dst []float64) error {
	if len(dst) != len(placements) {
		return fmt.Errorf("placement: %d outputs for %d placements", len(dst), len(placements))
	}
	if scratch == nil {
		scratch = e.ins.MakeFadeScratch()
	}
	views := scratch.ViewScratch(len(placements))
	for a, p := range placements {
		if err := e.checkDims(p); err != nil {
			return err
		}
		views[a] = p
	}
	if err := e.ins.FadedHitMass(gains, views, dst, scratch); err != nil {
		return err
	}
	total := e.ins.TotalMass()
	for a := range dst {
		dst[a] /= total
	}
	return nil
}

// Candidate is one (server, model) commit-heap entry: Key is the heap's
// cached marginal-gain key — the exact empty-placement gain u0(m,i) after
// a sync, a stale upper bound mid-solve.
type Candidate struct {
	Server int
	Model  int
	Key    float64
}

// TopCandidates returns the first n candidates the lazy-greedy commit heap
// would pop — descending cached key, ties by ascending (server, model) —
// without disturbing the persistent heap (the pop consumes the reusable
// working copy, exactly as a solve does). Fewer than n are returned when
// the heap holds fewer entries above the gain tolerance. This is the batch
// the fused certification path (FadedCandidateRatios) scores in one
// multi-placement sweep.
func (e *Evaluator) TopCandidates(n int) []Candidate {
	if n <= 0 {
		return nil
	}
	h := e.commitHeap()
	if n > len(h) {
		n = len(h)
	}
	out := make([]Candidate, 0, n)
	for j := 0; j < n; j++ {
		c := h.pop()
		out = append(out, Candidate{Server: int(c.m), Model: int(c.i), Key: c.key})
	}
	return out
}

// overlayColumns is a ServerColumns view over a scratch-owned column copy
// (base placement plus one candidate bit).
type overlayColumns struct{ words []uint64 }

func (o *overlayColumns) PackedServerColumns() []uint64 { return o.words }

// FadedCandidateRatios scores a candidate batch under one Rayleigh-fading
// realization through a single multi-placement fused sweep: dst[0]
// receives base's hit ratio, dst[1+j] the hit ratio of base with
// (cands[j].Server, cands[j].Model) additionally cached. Results are
// bit-identical to one FadedHitRatios call per overlaid clone — the
// overlays are exact column copies with one extra bit — while the request
// sweep, link gather, and rank cutoffs are paid once for the whole batch.
// This is lazy greedy's fused certification path: the top-of-heap batch
// (TopCandidates) is scored in one pass instead of len(cands)+1 kernel
// invocations. scratch may be nil (a fresh one is allocated).
func (e *Evaluator) FadedCandidateRatios(gains [][]float64, base *Placement, cands []Candidate, scratch *scenario.FadeScratch, dst []float64) error {
	if len(dst) != len(cands)+1 {
		return fmt.Errorf("placement: %d outputs for %d candidates plus base", len(dst), len(cands))
	}
	if err := e.checkDims(base); err != nil {
		return err
	}
	ins := e.ins
	M, I := ins.NumServers(), ins.NumModels()
	sw := base.serverWords
	words := I * sw
	if need := len(cands) * words; cap(e.overlayWords) < need {
		e.overlayWords = make([]uint64, need)
	}
	if cap(e.overlayViews) < len(cands) {
		e.overlayViews = make([]overlayColumns, len(cands))
	}
	if scratch == nil {
		scratch = ins.MakeFadeScratch()
	}
	views := scratch.ViewScratch(len(cands) + 1)
	views[0] = base
	baseCols := base.PackedServerColumns()
	for j, c := range cands {
		if c.Server < 0 || c.Server >= M || c.Model < 0 || c.Model >= I {
			return fmt.Errorf("placement: candidate %d (server %d, model %d) out of range %dx%d", j, c.Server, c.Model, M, I)
		}
		ow := e.overlayWords[j*words : (j+1)*words]
		copy(ow, baseCols)
		ow[c.Model*sw+(c.Server>>6)] |= 1 << uint(c.Server&63)
		e.overlayViews[j] = overlayColumns{words: ow}
		views[1+j] = &e.overlayViews[j]
	}
	if err := ins.FadedHitMass(gains, views, dst, scratch); err != nil {
		return err
	}
	total := ins.TotalMass()
	for x := range dst {
		dst[x] /= total
	}
	return nil
}

// ServerStorage computes g_m(X) (eq. 7): the deduplicated bytes server m
// needs for its cached models (shared blocks stored once).
func (e *Evaluator) ServerStorage(p *Placement, m int) (int64, error) {
	if err := e.checkDims(p); err != nil {
		return 0, err
	}
	if m < 0 || m >= p.numServers {
		return 0, fmt.Errorf("placement: server %d out of range [0,%d)", m, p.numServers)
	}
	return e.ins.Library().BlocksUnion(p.ModelsOn(m), nil), nil
}

// ServerStorageIndependent computes the storage server m would need if
// models were cached independently (no block deduplication): Σ_i x_{m,i}·D_i.
func (e *Evaluator) ServerStorageIndependent(p *Placement, m int) (int64, error) {
	if err := e.checkDims(p); err != nil {
		return 0, err
	}
	if m < 0 || m >= p.numServers {
		return 0, fmt.Errorf("placement: server %d out of range [0,%d)", m, p.numServers)
	}
	var total int64
	for _, i := range p.ModelsOn(m) {
		total += e.ins.Library().ModelSize(i)
	}
	return total, nil
}

// CheckFeasible verifies g_m(X) ≤ Q_m for every server. capacities must
// have one entry per server.
func (e *Evaluator) CheckFeasible(p *Placement, capacities []int64) error {
	if err := e.checkDims(p); err != nil {
		return err
	}
	if len(capacities) != p.numServers {
		return fmt.Errorf("placement: %d capacities for %d servers", len(capacities), p.numServers)
	}
	for m := 0; m < p.numServers; m++ {
		used, err := e.ServerStorage(p, m)
		if err != nil {
			return err
		}
		if used > capacities[m] {
			return fmt.Errorf("placement: server %d uses %d bytes > capacity %d", m, used, capacities[m])
		}
	}
	return nil
}

// UniformCapacities returns a capacity vector with the same Q for every
// server (the paper uses identical storage capacities, §VII-A).
func UniformCapacities(numServers int, q int64) []int64 {
	caps := make([]int64, numServers)
	for m := range caps {
		caps[m] = q
	}
	return caps
}
