package placement

import (
	"testing"

	"trimcaching/internal/rng"
)

// Micro-benchmarks for the algorithmic kernels of the paper. The
// repository-level bench_test.go benchmarks whole figures; these isolate
// the inner loops.

func benchEval(b *testing.B) *Evaluator {
	b.Helper()
	return buildEval(b, 10, 30, 10, 999)
}

func BenchmarkGainEvaluation(b *testing.B) {
	e := benchEval(b)
	s, err := newGreedyState(e, UniformCapacities(10, gb), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for m := 0; m < 10; m++ {
			for i := 0; i < 30; i++ {
				_ = s.gain(m, i)
			}
		}
	}
}

func BenchmarkIncrementalCost(b *testing.B) {
	e := benchEval(b)
	s, err := newGreedyState(e, UniformCapacities(10, gb), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for m := 0; m < 10; m++ {
			for i := 0; i < 30; i++ {
				_ = s.cost(m, i)
			}
		}
	}
}

func BenchmarkRoundingDP(b *testing.B) {
	src := rng.New(1)
	items := make([]knapsackItem, 30)
	for i := range items {
		items[i] = knapsackItem{
			id:     i,
			value:  src.Uniform(0.001, 1),
			weight: int64(src.IntRange(1_000_000, 60_000_000)),
		}
	}
	scratch := &dpScratch{}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_, _ = solveKnapsack(items, 500_000_000, 0.1, scratch)
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	src := rng.New(2)
	items := make([]knapsackItem, 25)
	for i := range items {
		items[i] = knapsackItem{
			id:     i,
			value:  src.Uniform(0.001, 1),
			weight: int64(src.IntRange(1_000_000, 60_000_000)),
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_, _ = solveKnapsack(items, 400_000_000, 0, nil)
	}
}

func BenchmarkComboEnumeration(b *testing.B) {
	e := benchEval(b)
	lib := e.Instance().Library()
	models := make([]int, lib.NumModels())
	for i := range models {
		models[i] = i
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := enumerateCombos(lib, models, 1<<40, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpecFullSolve(b *testing.B) {
	e := benchEval(b)
	caps := UniformCapacities(10, gb/2)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := TrimCachingSpec(e, caps, DefaultSpecOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveSmall(b *testing.B) {
	e := fig6Eval(b, 3)
	caps := UniformCapacities(2, 100_000_000)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := Exhaustive(e, caps, ExhaustiveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefinePass(b *testing.B) {
	e := benchEval(b)
	caps := UniformCapacities(10, gb/2)
	base, err := PopularityCaching(e, caps)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := Refine(e, caps, base, 1); err != nil {
			b.Fatal(err)
		}
	}
}
