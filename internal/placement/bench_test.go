package placement

import (
	"testing"

	"trimcaching/internal/libgen"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// Micro-benchmarks for the algorithmic kernels of the paper. The
// repository-level bench_test.go benchmarks whole figures; these isolate
// the inner loops.

func benchEval(b *testing.B) *Evaluator {
	b.Helper()
	return buildEval(b, 10, 30, 10, 999)
}

func BenchmarkGainEvaluation(b *testing.B) {
	e := benchEval(b)
	s, err := newGreedyState(e, UniformCapacities(10, gb), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for m := 0; m < 10; m++ {
			for i := 0; i < 30; i++ {
				_ = s.gain(m, i)
			}
		}
	}
}

func BenchmarkIncrementalCost(b *testing.B) {
	e := benchEval(b)
	s, err := newGreedyState(e, UniformCapacities(10, gb), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for m := 0; m < 10; m++ {
			for i := 0; i < 30; i++ {
				_ = s.cost(m, i)
			}
		}
	}
}

func BenchmarkRoundingDP(b *testing.B) {
	src := rng.New(1)
	items := make([]knapsackItem, 30)
	for i := range items {
		items[i] = knapsackItem{
			id:     i,
			value:  src.Uniform(0.001, 1),
			weight: int64(src.IntRange(1_000_000, 60_000_000)),
		}
	}
	scratch := &dpScratch{}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_, _ = solveKnapsack(items, 500_000_000, 0.1, scratch)
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	src := rng.New(2)
	items := make([]knapsackItem, 25)
	for i := range items {
		items[i] = knapsackItem{
			id:     i,
			value:  src.Uniform(0.001, 1),
			weight: int64(src.IntRange(1_000_000, 60_000_000)),
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_, _ = solveKnapsack(items, 400_000_000, 0, nil)
	}
}

func BenchmarkComboEnumeration(b *testing.B) {
	e := benchEval(b)
	lib := e.Instance().Library()
	models := make([]int, lib.NumModels())
	for i := range models {
		models[i] = i
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := enumerateCombos(lib, models, 1<<40, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpecFullSolve(b *testing.B) {
	e := benchEval(b)
	caps := UniformCapacities(10, gb/2)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := TrimCachingSpec(e, caps, DefaultSpecOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveSmall(b *testing.B) {
	e := fig6Eval(b, 3)
	caps := UniformCapacities(2, 100_000_000)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := Exhaustive(e, caps, ExhaustiveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefinePass(b *testing.B) {
	e := benchEval(b)
	caps := UniformCapacities(10, gb/2)
	base, err := PopularityCaching(e, caps)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := Refine(e, caps, base, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// buildLoRAEval constructs the LoRA-regime evaluator of §I: one shared
// foundation model, I adapters, K users — the scale the bitset engine
// targets (K=300, I=1000 by default in BenchmarkLoRA*).
func buildLoRAEval(b *testing.B, servers, users, adapters int, seed uint64) *Evaluator {
	b.Helper()
	lib, err := libgen.GenerateLoRA(libgen.DefaultLoRAConfig(adapters))
	if err != nil {
		b.Fatal(err)
	}
	w := wireless.DefaultConfig()
	cfg := scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: servers, NumUsers: users, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}
	ins, err := scenario.Generate(lib, cfg, rng.New(seed))
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(ins)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// benchReachAndPlacement prepares one fading realization and a greedy
// placement for the HitRatioWithReach benchmarks.
func benchReachAndPlacement(b *testing.B, e *Evaluator) (*scenario.Reach, *Placement) {
	b.Helper()
	ins := e.Instance()
	gains := scenario.SampleGains(ins.NumServers(), ins.NumUsers(), rng.New(7))
	reach, err := ins.FadedReach(gains, nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := TrimCachingGen(e, UniformCapacities(ins.NumServers(), gb/2), GenOptions{Lazy: true})
	if err != nil {
		b.Fatal(err)
	}
	return reach, p
}

// denseHitRatioWithReach is the pre-refactor evaluator verbatim: []bool
// bitmaps for reachability and placement, scanning every server per
// (user, model) request. It exists so the benchmarks quantify the bitset
// engine's speedup against the exact representation it replaced.
func denseHitRatioWithReach(e *Evaluator, cached, reach []bool) float64 {
	ins := e.Instance()
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	var hit float64
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			for m := 0; m < M; m++ {
				if cached[m*I+i] && reach[(m*K+k)*I+i] {
					hit += ins.Prob(k, i)
					break
				}
			}
		}
	}
	return hit / ins.TotalMass()
}

// unpack materializes the pre-refactor []bool layouts from the packed ones.
func unpack(e *Evaluator, p *Placement, reach *scenario.Reach) (cached, dense []bool) {
	ins := e.Instance()
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	cached = make([]bool, M*I)
	dense = make([]bool, M*K*I)
	for m := 0; m < M; m++ {
		for i := 0; i < I; i++ {
			cached[m*I+i] = p.Has(m, i)
			for k := 0; k < K; k++ {
				dense[(m*K+k)*I+i] = reach.Has(m, k, i)
			}
		}
	}
	return cached, dense
}

func benchHitRatioWithReach(b *testing.B, e *Evaluator, dense bool) {
	b.Helper()
	reach, p := benchReachAndPlacement(b, e)
	want, err := e.HitRatioWithReach(p, reach)
	if err != nil {
		b.Fatal(err)
	}
	cachedBools, reachBools := unpack(e, p, reach)
	if got := denseHitRatioWithReach(e, cachedBools, reachBools); got != want {
		b.Fatalf("dense reference %v != packed %v", got, want)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if dense {
			_ = denseHitRatioWithReach(e, cachedBools, reachBools)
		} else {
			if _, err := e.HitRatioWithReach(p, reach); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Paper scale: M=10, K=30, I=30.
func BenchmarkHitRatioWithReach(b *testing.B)      { benchHitRatioWithReach(b, benchEval(b), false) }
func BenchmarkHitRatioWithReachDense(b *testing.B) { benchHitRatioWithReach(b, benchEval(b), true) }

// Paper's general-case scale: M=10, K=30, I=90.
func BenchmarkHitRatioWithReach90(b *testing.B) {
	benchHitRatioWithReach(b, buildEval(b, 10, 30, 30, 999), false)
}

func BenchmarkHitRatioWithReach90Dense(b *testing.B) {
	benchHitRatioWithReach(b, buildEval(b, 10, 30, 30, 999), true)
}

// LoRA scale: M=10, K=300, I=1000.
func BenchmarkHitRatioWithReachLoRA(b *testing.B) {
	benchHitRatioWithReach(b, buildLoRAEval(b, 10, 300, 1000, 5), false)
}

func BenchmarkHitRatioWithReachLoRADense(b *testing.B) {
	benchHitRatioWithReach(b, buildLoRAEval(b, 10, 300, 1000, 5), true)
}

func BenchmarkGenLoRA(b *testing.B) {
	e := buildLoRAEval(b, 10, 300, 1000, 5)
	caps := UniformCapacities(10, 8*gb)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := TrimCachingGen(e, caps, GenOptions{Lazy: true}); err != nil {
			b.Fatal(err)
		}
	}
}
