package placement

import (
	"testing"
)

func TestPopularityFeasibleAndUniform(t *testing.T) {
	e := buildEval(t, 4, 12, 6, 200)
	caps := UniformCapacities(4, gb/4)
	p, err := PopularityCaching(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	// Popularity charges full sizes: the independent budget must hold.
	for m := 0; m < 4; m++ {
		used, err := e.ServerStorageIndependent(p, m)
		if err != nil {
			t.Fatal(err)
		}
		if used > caps[m] {
			t.Fatalf("server %d uses %d > %d", m, used, caps[m])
		}
	}
	hr, err := e.HitRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	if hr <= 0 {
		t.Fatalf("popularity hit ratio %v", hr)
	}
}

func TestPopularityCachesSameModelsEverywhere(t *testing.T) {
	// Uncoordinated: with a shared global ranking every server should cache
	// (roughly) the same top models — the defining behaviour vs the
	// coordinated Independent baseline.
	e := buildEval(t, 4, 12, 6, 201)
	caps := UniformCapacities(4, gb/4)
	p, err := PopularityCaching(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	first := p.ModelsOn(0)
	if len(first) == 0 {
		t.Fatal("server 0 cached nothing")
	}
	same := 0
	for m := 1; m < 4; m++ {
		on := p.ModelsOn(m)
		if len(on) == len(first) {
			match := true
			for i := range on {
				if on[i] != first[i] {
					match = false
					break
				}
			}
			if match {
				same++
			}
		}
	}
	if same == 0 {
		t.Fatal("no server duplicated server 0's cache; popularity should duplicate")
	}
}

func TestPopularityBelowCoordinatedIndependent(t *testing.T) {
	var popSum, indSum float64
	for seed := uint64(210); seed < 218; seed++ {
		e := buildEval(t, 4, 12, 8, seed)
		caps := UniformCapacities(4, gb/4)
		pop, err := PopularityCaching(e, caps)
		if err != nil {
			t.Fatal(err)
		}
		ind, err := IndependentCaching(e, caps)
		if err != nil {
			t.Fatal(err)
		}
		hrP, err := e.HitRatio(pop)
		if err != nil {
			t.Fatal(err)
		}
		hrI, err := e.HitRatio(ind)
		if err != nil {
			t.Fatal(err)
		}
		popSum += hrP
		indSum += hrI
	}
	if popSum >= indSum {
		t.Fatalf("popularity total %v not below coordinated independent %v", popSum, indSum)
	}
}

func TestBlockViewRoundTrip(t *testing.T) {
	e := buildEval(t, 3, 8, 4, 220)
	lib := e.Instance().Library()
	caps := UniformCapacities(3, gb/2)
	p, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	y, err := BlockView(lib, p)
	if err != nil {
		t.Fatal(err)
	}
	// Block-view storage must equal the deduplicated model-view storage
	// (the paper's equivalence of P1.1 and P1.2 constraints).
	for m := 0; m < 3; m++ {
		want, err := e.ServerStorage(p, m)
		if err != nil {
			t.Fatal(err)
		}
		if got := y.StorageBytes(lib, m); got != want {
			t.Fatalf("server %d: block storage %d != model storage %d", m, got, want)
		}
	}
	// Converting back must recover at least every cached model (it may
	// surface extra models whose blocks happen to all be present).
	back, err := ModelView(lib, y)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		for _, i := range p.ModelsOn(m) {
			if !back.Has(m, i) {
				t.Fatalf("round trip lost model %d on server %d", i, m)
			}
		}
	}
	// And the recovered placement can only serve at least as much.
	hrP, err := e.HitRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	hrB, err := e.HitRatio(back)
	if err != nil {
		t.Fatal(err)
	}
	if hrB < hrP-1e-12 {
		t.Fatalf("block round trip lost hit ratio: %v -> %v", hrP, hrB)
	}
}

func TestBlockViewFreeModels(t *testing.T) {
	// If a server caches models whose blocks jointly include ALL blocks of
	// a third model, the block view marks that model cached for free.
	e := buildEval(t, 2, 4, 3, 221)
	lib := e.Instance().Library()
	// Find two same-family models a, b and a third c of the same family
	// whose freeze depth is <= both: then c's shared prefix is covered, but
	// its specific blocks are not, so c must NOT appear. This asserts
	// ModelView requires *every* block.
	p := NewPlacement(2, lib.NumModels())
	p.Set(0, 0)
	p.Set(0, 1)
	y, err := BlockView(lib, p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ModelView(lib, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lib.NumModels(); i++ {
		if i == 0 || i == 1 {
			if !back.Has(0, i) {
				t.Fatalf("model %d lost", i)
			}
			continue
		}
		if back.Has(0, i) && lib.SpecificSize(i) > 0 {
			t.Fatalf("model %d with private blocks appeared for free", i)
		}
	}
}

func TestBlockViewValidation(t *testing.T) {
	e := buildEval(t, 2, 4, 2, 222)
	lib := e.Instance().Library()
	if _, err := BlockView(nil, NewPlacement(1, 1)); err == nil {
		t.Fatal("nil library must error")
	}
	if _, err := BlockView(lib, nil); err == nil {
		t.Fatal("nil placement must error")
	}
	if _, err := BlockView(lib, NewPlacement(2, lib.NumModels()+1)); err == nil {
		t.Fatal("model count mismatch must error")
	}
	if _, err := ModelView(lib, nil); err == nil {
		t.Fatal("nil block placement must error")
	}
	if _, err := ModelView(lib, NewBlockPlacement(2, lib.NumBlocks()+1)); err == nil {
		t.Fatal("block count mismatch must error")
	}
}

func TestRefineNeverWorseAlwaysFeasible(t *testing.T) {
	for seed := uint64(230); seed < 236; seed++ {
		e := buildEval(t, 4, 10, 6, seed)
		caps := UniformCapacities(4, gb/4)
		base, err := PopularityCaching(e, caps)
		if err != nil {
			t.Fatal(err)
		}
		hrBase, err := e.HitRatio(base)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Refine(e, caps, base, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.CheckFeasible(refined, caps); err != nil {
			t.Fatal(err)
		}
		hrRef, err := e.HitRatio(refined)
		if err != nil {
			t.Fatal(err)
		}
		if hrRef < hrBase-1e-12 {
			t.Fatalf("seed %d: refine decreased hit ratio %v -> %v", seed, hrBase, hrRef)
		}
	}
}

func TestRefineImprovesWeakBaseline(t *testing.T) {
	// Refinement must find strict improvements over the uncoordinated
	// popularity baseline on at least some instances.
	improved := false
	for seed := uint64(240); seed < 246 && !improved; seed++ {
		e := buildEval(t, 4, 10, 6, seed)
		caps := UniformCapacities(4, gb/4)
		base, err := PopularityCaching(e, caps)
		if err != nil {
			t.Fatal(err)
		}
		hrBase, err := e.HitRatio(base)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Refine(e, caps, base, 3)
		if err != nil {
			t.Fatal(err)
		}
		hrRef, err := e.HitRatio(refined)
		if err != nil {
			t.Fatal(err)
		}
		if hrRef > hrBase+0.01 {
			improved = true
		}
	}
	if !improved {
		t.Fatal("refine never improved the popularity baseline")
	}
}

func TestRefineValidation(t *testing.T) {
	e := buildEval(t, 2, 4, 2, 250)
	caps := UniformCapacities(2, gb)
	if _, err := Refine(e, caps, nil, 1); err == nil {
		t.Fatal("nil placement must error")
	}
	// Infeasible start must be rejected.
	p := NewPlacement(2, e.Instance().NumModels())
	for i := 0; i < e.Instance().NumModels(); i++ {
		p.Set(0, i)
	}
	if _, err := Refine(e, UniformCapacities(2, 10), p, 1); err == nil {
		t.Fatal("infeasible start must error")
	}
}

func TestRefinedAlgorithmWrapper(t *testing.T) {
	e := buildEval(t, 3, 8, 4, 251)
	caps := UniformCapacities(3, gb/4)
	alg := RefinedAlgorithm{Base: PopularityAlgorithm{}}
	if alg.Name() != "Popularity Caching + refine" {
		t.Fatalf("name %q", alg.Name())
	}
	p, err := alg.Place(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CheckFeasible(p, caps); err != nil {
		t.Fatal(err)
	}
}

func TestRatioGreedyFeasibleAndCompetitive(t *testing.T) {
	var ratioSum, genSum float64
	for seed := uint64(260); seed < 268; seed++ {
		e := buildEval(t, 4, 12, 8, seed)
		caps := UniformCapacities(4, gb/4)
		ratio, err := TrimCachingGenRatio(e, caps)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.CheckFeasible(ratio, caps); err != nil {
			t.Fatal(err)
		}
		gen, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		hrR, err := e.HitRatio(ratio)
		if err != nil {
			t.Fatal(err)
		}
		hrG, err := e.HitRatio(gen)
		if err != nil {
			t.Fatal(err)
		}
		ratioSum += hrR
		genSum += hrG
	}
	// Cost-benefit must stay within 15% of plain greedy (it often wins
	// under tight budgets, but has no guarantee).
	if ratioSum < 0.85*genSum {
		t.Fatalf("ratio greedy total %v far below gen %v", ratioSum, genSum)
	}
}

func TestRatioAlgorithmRegistered(t *testing.T) {
	alg, err := ByName("gen-ratio")
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() == "" {
		t.Fatal("empty name")
	}
}
