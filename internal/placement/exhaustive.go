package placement

import (
	"fmt"
	"math"
)

// ExhaustiveOptions configures the optimal search.
type ExhaustiveOptions struct {
	// MaxStates bounds the joint search space (product over servers of the
	// per-server feasible cache subsets). 0 means the default of 1<<26.
	MaxStates int64
}

// ErrSearchTooLarge reports that the exhaustive search space exceeds the
// configured bound. The paper only runs the exhaustive baseline on a shrunk
// instance (400 m area, M = 2, K = 6) for exactly this reason (§VII-D).
type ErrSearchTooLarge struct {
	States int64
	Limit  int64
}

func (e *ErrSearchTooLarge) Error() string {
	return fmt.Sprintf("placement: exhaustive search needs %d states > limit %d", e.States, e.Limit)
}

// Exhaustive finds the optimal placement by enumerating, per server, every
// model subset that fits its capacity under deduplicated (parameter-sharing)
// storage, and maximizing U over the cross product. It is exponential and
// exists to validate the approximation algorithms on small instances.
func Exhaustive(e *Evaluator, capacities []int64, opts ExhaustiveOptions) (*Placement, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 1 << 26
	}
	ins := e.Instance()
	M, K, I := ins.NumServers(), ins.NumUsers(), ins.NumModels()
	if len(capacities) != M {
		return nil, fmt.Errorf("placement: %d capacities for %d servers", len(capacities), M)
	}
	if M > 16 {
		return nil, fmt.Errorf("placement: exhaustive search supports at most 16 servers, got %d", M)
	}
	if I > 30 {
		return nil, fmt.Errorf("placement: exhaustive search supports at most 30 models, got %d", I)
	}

	lib := ins.Library()
	// Feasible cache subsets per server (as model bitmasks).
	feasible := make([][]uint32, M)
	scratch := make([]bool, lib.NumBlocks())
	models := make([]int, 0, I)
	states := int64(1)
	for m := 0; m < M; m++ {
		for mask := uint32(0); mask < 1<<I; mask++ {
			models = models[:0]
			for i := 0; i < I; i++ {
				if mask&(1<<i) != 0 {
					models = append(models, i)
				}
			}
			if lib.BlocksUnion(models, scratch) <= capacities[m] {
				feasible[m] = append(feasible[m], mask)
			}
		}
		states *= int64(len(feasible[m]))
		if states > maxStates || states <= 0 {
			return nil, &ErrSearchTooLarge{States: states, Limit: maxStates}
		}
	}

	// val[i][serverSet] = request mass served for model i when exactly the
	// servers in serverSet cache it. With M ≤ 16 every server mask is a
	// single word, so "served by rest" is one AND against the candidate set.
	val := make([][]float64, I)
	for i := 0; i < I; i++ {
		val[i] = make([]float64, 1<<M)
		for set := 1; set < 1<<M; set++ {
			low := set & (-set)
			rest := set ^ low
			// Inclusion: served by rest, plus newly served by m alone.
			var extra float64
			for k := 0; k < K; k++ {
				sm := ins.ServerMask(k, i)[0]
				if sm&uint64(low) != 0 && sm&uint64(rest) == 0 {
					extra += ins.Prob(k, i)
				}
			}
			val[i][set] = val[i][rest] + extra
		}
	}

	serverSet := make([]int, I) // serverSet[i]: bitmask of servers caching i
	choice := make([]uint32, M)
	best := math.Inf(-1)
	bestChoice := make([]uint32, M)

	var recurse func(m int)
	recurse = func(m int) {
		if m == M {
			var total float64
			for i := 0; i < I; i++ {
				total += val[i][serverSet[i]]
			}
			if total > best {
				best = total
				copy(bestChoice, choice)
			}
			return
		}
		for _, mask := range feasible[m] {
			choice[m] = mask
			for i := 0; i < I; i++ {
				if mask&(1<<i) != 0 {
					serverSet[i] |= 1 << m
				}
			}
			recurse(m + 1)
			for i := 0; i < I; i++ {
				if mask&(1<<i) != 0 {
					serverSet[i] &^= 1 << m
				}
			}
		}
	}
	recurse(0)

	placed := NewPlacement(M, I)
	for m := 0; m < M; m++ {
		for i := 0; i < I; i++ {
			if bestChoice[m]&(1<<i) != 0 {
				placed.Set(m, i)
			}
		}
	}
	return placed, nil
}
