package placement

import (
	"fmt"

	"trimcaching/internal/modellib"
)

// BlockPlacement is the paper's P1.2 decision view (§IV-B): y_{m,j} = 1 when
// edge server m stores parameter block j. It relates to the model-level
// view X by
//
//	y_{m,j} = 1 − Π_{i∈Ij} (1 − x_{m,i})   (server stores a block iff some
//	                                        cached model contains it)
//	x_{m,i} = Π_{j∈Ji} y_{m,j}             (a model is cached iff all its
//	                                        blocks are stored)
//
// Under this view the storage constraint is a plain knapsack
// Σ_j D'_j·y_{m,j} ≤ Q_m, while the objective becomes supermodular — the
// transformation the paper uses to prove inapproximability (Prop. 2).
type BlockPlacement struct {
	numServers int
	numBlocks  int
	stored     []bool // stored[m*numBlocks+j]
}

// NewBlockPlacement returns an empty block-level placement.
func NewBlockPlacement(numServers, numBlocks int) *BlockPlacement {
	return &BlockPlacement{
		numServers: numServers,
		numBlocks:  numBlocks,
		stored:     make([]bool, numServers*numBlocks),
	}
}

// NumServers returns M.
func (b *BlockPlacement) NumServers() int { return b.numServers }

// NumBlocks returns J.
func (b *BlockPlacement) NumBlocks() int { return b.numBlocks }

// Has reports y_{m,j}.
func (b *BlockPlacement) Has(m, j int) bool { return b.stored[m*b.numBlocks+j] }

// Set sets y_{m,j} = 1.
func (b *BlockPlacement) Set(m, j int) { b.stored[m*b.numBlocks+j] = true }

// StorageBytes returns Σ_j D'_j·y_{m,j}, server m's storage use under the
// block view (eq. 8b) — by construction identical to g_m of the model view.
func (b *BlockPlacement) StorageBytes(lib *modellib.Library, m int) int64 {
	var total int64
	for j := 0; j < b.numBlocks; j++ {
		if b.stored[m*b.numBlocks+j] {
			total += lib.BlockSize(j)
		}
	}
	return total
}

// BlockView converts a model-level placement X into the block-level view Y
// via y_{m,j} = 1 − Π_{i∈Ij}(1 − x_{m,i}).
func BlockView(lib *modellib.Library, p *Placement) (*BlockPlacement, error) {
	if lib == nil || p == nil {
		return nil, fmt.Errorf("placement: library and placement are required")
	}
	if p.NumModels() != lib.NumModels() {
		return nil, fmt.Errorf("placement: placement has %d models, library %d",
			p.NumModels(), lib.NumModels())
	}
	b := NewBlockPlacement(p.NumServers(), lib.NumBlocks())
	for m := 0; m < p.NumServers(); m++ {
		for _, i := range p.ModelsOn(m) {
			for _, j := range lib.ModelBlocks(i) {
				b.Set(m, j)
			}
		}
	}
	return b, nil
}

// ModelView converts a block-level placement Y back to the model view via
// x_{m,i} = Π_{j∈Ji} y_{m,j}: a model counts as cached on a server exactly
// when every one of its blocks is stored there.
func ModelView(lib *modellib.Library, b *BlockPlacement) (*Placement, error) {
	if lib == nil || b == nil {
		return nil, fmt.Errorf("placement: library and block placement are required")
	}
	if b.NumBlocks() != lib.NumBlocks() {
		return nil, fmt.Errorf("placement: block placement has %d blocks, library %d",
			b.NumBlocks(), lib.NumBlocks())
	}
	p := NewPlacement(b.NumServers(), lib.NumModels())
	for m := 0; m < b.NumServers(); m++ {
		for i := 0; i < lib.NumModels(); i++ {
			complete := true
			for _, j := range lib.ModelBlocks(i) {
				if !b.Has(m, j) {
					complete = false
					break
				}
			}
			if complete {
				p.Set(m, i)
			}
		}
	}
	return p, nil
}
