package placement

import (
	"fmt"
	"sort"

	"trimcaching/internal/bitset"
)

// SpecOptions configures TrimCaching Spec.
type SpecOptions struct {
	// Epsilon is the DP rounding parameter of Algorithm 2 (paper default
	// 0.1). Epsilon == 0 solves each per-combination knapsack exactly
	// (branch-and-bound), as in the paper's Fig. 6 optimality study.
	Epsilon float64
	// MaxCombos bounds the shared-block combination enumeration; beyond it
	// TrimCachingSpec fails with ErrComboExplosion (the general-case regime
	// where Spec is exponential, §VI). 0 means the default of 1<<20.
	MaxCombos int
}

// DefaultSpecOptions returns the paper's defaults (ε = 0.1).
func DefaultSpecOptions() SpecOptions {
	return SpecOptions{Epsilon: 0.1, MaxCombos: 1 << 20}
}

// TrimCachingSpec runs Algorithm 1: decompose P1.1 into one sub-problem per
// edge server (P2.1m), solve them in server order with the DP-based rounding
// of Algorithm 2, and exclude already-served requests via the I2 indicator
// (eq. 11). Under the special case (a small fixed number of shared blocks)
// the result is a (1-ε)/2 approximation of the optimum (Theorem 2).
func TrimCachingSpec(e *Evaluator, capacities []int64, opts SpecOptions) (*Placement, error) {
	if opts.Epsilon < 0 || opts.Epsilon > 1 {
		return nil, fmt.Errorf("placement: epsilon must be in [0,1], got %v", opts.Epsilon)
	}
	maxCombos := opts.MaxCombos
	if maxCombos == 0 {
		maxCombos = 1 << 20
	}
	ins := e.Instance()
	if len(capacities) != ins.NumServers() {
		return nil, fmt.Errorf("placement: %d capacities for %d servers", len(capacities), ins.NumServers())
	}
	for m, q := range capacities {
		if q < 0 {
			return nil, fmt.Errorf("placement: negative capacity %d for server %d", q, m)
		}
	}

	lib := ins.Library()
	M, I := ins.NumServers(), ins.NumModels()
	uw := ins.UserMaskWords()
	placed := NewPlacement(M, I)
	// I2 bookkeeping: covered[i*uw..] packs the users whose request for
	// model i is already served by an earlier server.
	covered := make([]uint64, I*uw)
	scratch := &dpScratch{}

	for m := 0; m < M; m++ {
		// u(m,i) with the I2 exclusion (eq. 14): mass this server can newly
		// serve by caching model i — one AND-NOT sweep over the inverted
		// index instead of a K-element rescan. While nothing is excluded yet
		// (no earlier server covered model i) the value is exactly the
		// evaluator's memoized u0(m,i), bit-identical since the excluded
		// words are all zero.
		u := make([]float64, I)
		var eligible []int
		for i := 0; i < I; i++ {
			if cov := bitset.Set(covered[i*uw : (i+1)*uw]); !cov.Any() {
				u[i] = e.BaseGain(m, i)
			} else {
				u[i] = e.maskMass(i, ins.UserMask(m, i), cov)
			}
			if u[i] > gainTolerance {
				eligible = append(eligible, i)
			}
		}
		if len(eligible) == 0 {
			continue
		}

		combos, err := enumerateCombos(lib, eligible, capacities[m], maxCombos)
		if err != nil {
			return nil, fmt.Errorf("placement: server %d: %w", m, err)
		}

		var bestModels []int
		bestValue := 0.0
		items := make([]knapsackItem, 0, len(eligible))
		for _, c := range combos {
			// I_N: eligible models whose shared footprint fits inside N;
			// they enter the knapsack at their specific size D_N(i)
			// (eq. 13).
			items = items[:0]
			var ubValue float64
			for _, i := range eligible {
				if isSubsetSorted(lib.SharedFootprint(i), c.blocks) {
					items = append(items, knapsackItem{id: i, value: u[i], weight: lib.SpecificSize(i)})
					ubValue += u[i]
				}
			}
			if len(items) == 0 || ubValue <= bestValue {
				continue
			}
			capRem := capacities[m] - c.size
			// Fractional-relaxation upper bound: skip combos that cannot
			// beat the incumbent.
			if fractionalBound(items, capRem) <= bestValue {
				continue
			}
			chosen, value := solveKnapsack(items, capRem, opts.Epsilon, scratch)
			if value > bestValue {
				bestValue = value
				bestModels = chosen
			}
		}

		for _, i := range bestModels {
			placed.Set(m, i)
			bitset.Set(covered[i*uw : (i+1)*uw]).Or(ins.UserMask(m, i))
		}
	}
	return placed, nil
}

// fractionalBound returns the LP-relaxation value of the knapsack: an upper
// bound on any integral selection.
func fractionalBound(items []knapsackItem, capacity int64) float64 {
	if capacity <= 0 {
		return 0
	}
	sorted := make([]knapsackItem, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(a, b int) bool {
		// Zero-weight items first; then by decreasing value density.
		if sorted[a].weight == 0 || sorted[b].weight == 0 {
			return sorted[a].weight == 0 && sorted[b].weight != 0
		}
		return sorted[a].value*float64(sorted[b].weight) > sorted[b].value*float64(sorted[a].weight)
	})
	room := capacity
	var value float64
	for _, it := range sorted {
		if it.weight <= room {
			room -= it.weight
			value += it.value
			continue
		}
		if room > 0 && it.weight > 0 {
			value += it.value * float64(room) / float64(it.weight)
		}
		break
	}
	return value
}
