package placement

import (
	"testing"

	"trimcaching/internal/geom"
	"trimcaching/internal/libgen"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// reviseEvalFixture builds an instance over an aliased workload plus the
// parent supplying real rows (mirrors the scenario package's fixture).
func reviseEvalFixture(t *testing.T) (*scenario.Instance, *workload.Workload, *workload.Workload, []geom.Point) {
	t.Helper()
	src := rng.New(77)
	lib, err := libgen.GenerateLoRA(libgen.DefaultLoRAConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	area, err := geom.NewArea(700)
	if err != nil {
		t.Fatal(err)
	}
	const K = 15
	servers := area.SamplePoints(src.Split("servers"), 4)
	users := area.SamplePoints(src.Split("users"), K)
	wcfg := wireless.DefaultConfig()
	wcfg.BackhaulBps = 1e9
	wl := workload.DefaultConfig()
	wl.DeadlineMinS, wl.DeadlineMaxS = 60, 180
	wl.InferMinS, wl.InferMaxS = 1, 5
	parent, err := workload.Generate(K, lib.NumModels(), wl, src.Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	aliased, err := workload.NewAliased(K, lib.NumModels())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < K; k++ {
		if err := aliased.SetUserRows(k, parent.ProbRow(k), parent.DeadlineRow(k), parent.InferRow(k)); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.New(area, servers, users, wcfg.CoverageRadiusM)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := scenario.New(topo, lib, aliased, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	return ins, aliased, parent, users
}

// TestEvaluatorRevisionDelta revises workload rows across several deltas
// and pins the delta-tracking evaluator's gains and lazy-greedy solutions
// bit-identical to a fresh evaluator on the mutated instance.
func TestEvaluatorRevisionDelta(t *testing.T) {
	ins, aliased, parent, users := reviseEvalFixture(t)
	eval, err := NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	caps := UniformCapacities(ins.NumServers(), 8<<30)
	alg := GenAlgorithm{Options: GenOptions{Lazy: true}}
	prev, err := alg.Place(eval, caps)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, ins.NumModels())
	walk := rng.New(12)
	area := ins.Topology().Area()
	pos := append([]geom.Point(nil), users...)

	for round := 0; round < 3; round++ {
		var moved []int
		var movedPos []geom.Point
		for k := round % 2; k < len(pos); k += 2 {
			pos[k] = area.SamplePoint(walk)
			moved = append(moved, k)
			movedPos = append(movedPos, pos[k])
		}
		park := (1 + 4*round) % len(pos)
		bind := (6 + round) % len(pos)
		if park == bind {
			bind = (bind + 1) % len(pos)
		}
		if err := aliased.SetUserRows(park, zero, zero, zero); err != nil {
			t.Fatal(err)
		}
		donor := (bind + 5) % len(pos)
		if err := aliased.SetUserRows(bind, parent.ProbRow(donor), parent.DeadlineRow(donor), parent.InferRow(donor)); err != nil {
			t.Fatal(err)
		}
		delta, err := ins.ReviseUsers([]int{park, bind}, nil, moved, movedPos)
		if err != nil {
			t.Fatal(err)
		}
		if err := eval.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
		freshEval, err := NewEvaluator(ins)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < ins.NumServers(); m++ {
			for i := 0; i < ins.NumModels(); i++ {
				if got, want := eval.BaseGain(m, i), freshEval.BaseGain(m, i); got != want {
					t.Fatalf("round %d: base gain (%d,%d) %v, fresh %v", round, m, i, got, want)
				}
			}
		}
		warm, err := alg.Repair(eval, caps, prev, &scenario.Delta{Gen: ins.Generation(), Pairs: delta.Pairs})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := alg.Place(freshEval, caps)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < ins.NumServers(); m++ {
			if !warm.Models(m).Equal(cold.Models(m)) {
				t.Fatalf("round %d: warm placement differs from cold on server %d", round, m)
			}
		}
		prev = warm
	}
}

// TestEvaluatorMissedRevision drops a revision delta on the floor and
// checks the safety valve: the next solve-path mass computation sees the
// rebuilt probability table, matching a fresh evaluator.
func TestEvaluatorMissedRevision(t *testing.T) {
	ins, aliased, _, _ := reviseEvalFixture(t)
	eval, err := NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, ins.NumModels())
	if err := aliased.SetUserRows(0, zero, zero, zero); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.ReviseUsers([]int{0}, nil, nil, nil); err != nil {
		t.Fatal(err) // delta intentionally discarded
	}
	fresh, err := NewEvaluator(ins)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < ins.NumServers(); m++ {
		for i := 0; i < ins.NumModels(); i++ {
			if got, want := eval.BaseGain(m, i), fresh.BaseGain(m, i); got != want {
				t.Fatalf("gain (%d,%d) %v after missed revision, fresh %v", m, i, got, want)
			}
		}
	}
}
