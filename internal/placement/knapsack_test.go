package placement

import (
	"math"
	"testing"

	"trimcaching/internal/rng"
)

// bruteForceKnapsack enumerates all subsets (n <= 20).
func bruteForceKnapsack(items []knapsackItem, capacity int64) float64 {
	best := 0.0
	n := len(items)
	for mask := 0; mask < 1<<n; mask++ {
		var w int64
		var v float64
		for idx := 0; idx < n; idx++ {
			if mask&(1<<idx) != 0 {
				w += items[idx].weight
				v += items[idx].value
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

func randomItems(src *rng.Source, n int) []knapsackItem {
	items := make([]knapsackItem, n)
	for i := range items {
		items[i] = knapsackItem{
			id:     i,
			value:  src.Uniform(0.01, 1),
			weight: int64(src.IntRange(1, 100)),
		}
	}
	return items
}

func TestBranchAndBoundExact(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		n := src.IntRange(1, 12)
		items := randomItems(src, n)
		capacity := int64(src.IntRange(10, 400))
		chosen, got := solveKnapsack(items, capacity, 0, nil)
		want := bruteForceKnapsack(items, capacity)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: BB %v, brute force %v", trial, got, want)
		}
		verifySelection(t, items, chosen, capacity, got)
	}
}

func TestRoundingDPGuarantee(t *testing.T) {
	// Algorithm 2 must return at least (1-ε) of the optimum (Prop. 4).
	src := rng.New(2)
	for _, eps := range []float64{0.05, 0.1, 0.3, 1.0} {
		for trial := 0; trial < 30; trial++ {
			n := src.IntRange(1, 12)
			items := randomItems(src, n)
			capacity := int64(src.IntRange(10, 400))
			chosen, got := solveKnapsack(items, capacity, eps, &dpScratch{})
			want := bruteForceKnapsack(items, capacity)
			if got < (1-eps)*want-1e-9 {
				t.Fatalf("eps=%v trial %d: DP %v < (1-eps)*opt %v", eps, trial, got, (1-eps)*want)
			}
			if got > want+1e-9 {
				t.Fatalf("eps=%v trial %d: DP %v exceeds optimum %v", eps, trial, got, want)
			}
			verifySelection(t, items, chosen, capacity, got)
		}
	}
}

// verifySelection checks the returned ids are consistent with the reported
// value and respect the capacity.
func verifySelection(t *testing.T, items []knapsackItem, chosen []int, capacity int64, value float64) {
	t.Helper()
	byID := map[int]knapsackItem{}
	for _, it := range items {
		byID[it.id] = it
	}
	var w int64
	var v float64
	seen := map[int]bool{}
	for _, id := range chosen {
		if seen[id] {
			t.Fatalf("duplicate id %d in selection", id)
		}
		seen[id] = true
		it, ok := byID[id]
		if !ok {
			t.Fatalf("unknown id %d in selection", id)
		}
		w += it.weight
		v += it.value
	}
	if w > capacity {
		t.Fatalf("selection weight %d exceeds capacity %d", w, capacity)
	}
	if math.Abs(v-value) > 1e-9 {
		t.Fatalf("selection value %v != reported %v", v, value)
	}
}

func TestKnapsackDegenerate(t *testing.T) {
	if chosen, v := solveKnapsack(nil, 100, 0.1, nil); v != 0 || len(chosen) != 0 {
		t.Fatal("empty items")
	}
	items := []knapsackItem{{id: 0, value: 1, weight: 200}}
	if chosen, v := solveKnapsack(items, 100, 0.1, nil); v != 0 || len(chosen) != 0 {
		t.Fatal("oversized item must be dropped")
	}
	// Zero/negative value items never selected.
	items = []knapsackItem{{id: 0, value: 0, weight: 1}, {id: 1, value: -2, weight: 1}}
	if chosen, v := solveKnapsack(items, 100, 0, nil); v != 0 || len(chosen) != 0 {
		t.Fatal("valueless items must be dropped")
	}
}

func TestKnapsackAllFitShortcut(t *testing.T) {
	items := []knapsackItem{
		{id: 3, value: 0.5, weight: 10},
		{id: 1, value: 0.2, weight: 20},
	}
	chosen, v := solveKnapsack(items, 100, 0.1, nil)
	if math.Abs(v-0.7) > 1e-12 || len(chosen) != 2 {
		t.Fatalf("all-fit: %v %v", chosen, v)
	}
}

func TestKnapsackZeroCapacity(t *testing.T) {
	items := randomItems(rng.New(3), 5)
	for _, eps := range []float64{0, 0.1} {
		if chosen, v := solveKnapsack(items, 0, eps, nil); v != 0 || len(chosen) != 0 {
			t.Fatalf("eps=%v: zero capacity selected %v", eps, chosen)
		}
	}
}

func TestFractionalBoundIsUpperBound(t *testing.T) {
	src := rng.New(4)
	for trial := 0; trial < 40; trial++ {
		n := src.IntRange(1, 12)
		items := randomItems(src, n)
		capacity := int64(src.IntRange(10, 400))
		ub := fractionalBound(items, capacity)
		opt := bruteForceKnapsack(items, capacity)
		if ub < opt-1e-9 {
			t.Fatalf("trial %d: fractional bound %v below optimum %v", trial, ub, opt)
		}
	}
	if fractionalBound(randomItems(src, 3), 0) != 0 {
		t.Fatal("zero capacity bound must be 0")
	}
}

func TestRoundingDPWidthCap(t *testing.T) {
	// An adversarial value spread (huge max/min ratio) must not blow up
	// memory: the scale coarsens to maxDPWidth and still returns a valid,
	// near-optimal solution.
	items := []knapsackItem{
		{id: 0, value: 1e-9, weight: 5},
		{id: 1, value: 1.0, weight: 60},
		{id: 2, value: 0.9, weight: 50},
	}
	chosen, v := solveKnapsack(items, 100, 0.1, &dpScratch{})
	verifySelection(t, items, chosen, 100, v)
	if v < 0.9 {
		t.Fatalf("width-capped DP value %v too low", v)
	}
}
