package placement

import (
	"fmt"
	"sort"

	"trimcaching/internal/modellib"
)

// combo is one element N of the paper's set A (§V-B): a set of shared
// parameter blocks an edge server may pre-commit storage to. Models whose
// shared footprint is contained in N become eligible for the per-combination
// knapsack at their specific (residual) size.
type combo struct {
	blocks []int // sorted shared-block IDs
	size   int64 // d_N: bytes of the combination
}

// ErrComboExplosion reports that the union-closure of shared footprints
// exceeded the configured bound. This is the regime the paper's general
// case describes: the number of shared blocks grows with the library, so
// TrimCaching Spec degrades to exponential enumeration (§VI) and
// TrimCaching Gen should be used instead.
type ErrComboExplosion struct {
	Limit int
}

func (e *ErrComboExplosion) Error() string {
	return fmt.Sprintf("placement: shared-block combinations exceed limit %d; use TrimCaching Gen for this library", e.Limit)
}

// comboKey canonically encodes a sorted block-ID set.
func comboKey(blocks []int) string {
	buf := make([]byte, 0, 4*len(blocks))
	for _, j := range blocks {
		buf = append(buf, byte(j), byte(j>>8), byte(j>>16), byte(j>>24))
	}
	return string(buf)
}

// unionSorted merges two sorted int sets.
func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// isSubsetSorted reports a ⊆ b for sorted int sets.
func isSubsetSorted(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// enumerateCombos builds the set A: the union-closure of the distinct shared
// footprints of the given models, pruned to combinations whose size fits
// maxBytes (a combination that already exceeds the server capacity can never
// be cached, Algorithm 2 lines 4–6). The empty combination is always
// included. Enumeration aborts with ErrComboExplosion beyond maxCombos.
//
// For the paper's special case (models fine-tuned from a few pre-trained
// backbones by prefix freezing) the distinct footprints form a handful of
// nested chains and the closure has polynomial size; for the general case it
// can grow exponentially, matching Proposition 2.
func enumerateCombos(lib *modellib.Library, models []int, maxBytes int64, maxCombos int) ([]combo, error) {
	if maxCombos <= 0 {
		return nil, fmt.Errorf("placement: maxCombos must be positive, got %d", maxCombos)
	}
	blockSize := func(blocks []int) int64 {
		var s int64
		for _, j := range blocks {
			s += lib.BlockSize(j)
		}
		return s
	}

	// Distinct non-empty footprints that individually fit.
	seenFP := map[string]bool{}
	var footprints [][]int
	for _, i := range models {
		fp := lib.SharedFootprint(i)
		if len(fp) == 0 {
			continue
		}
		key := comboKey(fp)
		if seenFP[key] {
			continue
		}
		seenFP[key] = true
		if blockSize(fp) <= maxBytes {
			footprints = append(footprints, fp)
		}
	}
	// Larger footprints first tends to collapse chains quickly.
	sort.Slice(footprints, func(a, b int) bool { return len(footprints[a]) > len(footprints[b]) })

	result := []combo{{blocks: nil, size: 0}}
	seen := map[string]bool{comboKey(nil): true}
	frontier := [][]int{nil}
	for len(frontier) > 0 {
		var next [][]int
		for _, base := range frontier {
			for _, fp := range footprints {
				u := unionSorted(base, fp)
				if len(u) == len(base) {
					continue // fp ⊆ base, nothing new
				}
				key := comboKey(u)
				if seen[key] {
					continue
				}
				seen[key] = true
				size := blockSize(u)
				if size > maxBytes {
					continue
				}
				result = append(result, combo{blocks: u, size: size})
				if len(result) > maxCombos {
					return nil, &ErrComboExplosion{Limit: maxCombos}
				}
				next = append(next, u)
			}
		}
		frontier = next
	}
	return result, nil
}
