package placement

import "sort"

// PopularityCaching is the classic uncoordinated content-placement
// baseline: every edge server independently caches the globally most
// popular models that fit, charging full model sizes (no parameter-block
// deduplication) and ignoring what other servers cache. Traditional
// popularity-based placement behaves this way, and it brackets the paper's
// Independent Caching baseline from below (coordinated greedy brackets it
// from above); see EXPERIMENTS.md.
func PopularityCaching(e *Evaluator, capacities []int64) (*Placement, error) {
	s, err := newGreedyState(e, capacities, false)
	if err != nil {
		return nil, err
	}
	ins := e.Instance()
	I := ins.NumModels()

	// Global popularity: total request mass per model.
	popularity := make([]float64, I)
	for k := 0; k < ins.NumUsers(); k++ {
		for i := 0; i < I; i++ {
			popularity[i] += ins.Prob(k, i)
		}
	}
	order := make([]int, I)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if popularity[order[a]] != popularity[order[b]] {
			return popularity[order[a]] > popularity[order[b]]
		}
		return order[a] < order[b]
	})

	for m := 0; m < ins.NumServers(); m++ {
		for _, i := range order {
			if s.fits(m, i) {
				s.commit(m, i)
			}
		}
	}
	return s.placed, nil
}

// PopularityAlgorithm wraps PopularityCaching as an Algorithm.
type PopularityAlgorithm struct{}

var _ Algorithm = PopularityAlgorithm{}

// Name implements Algorithm.
func (PopularityAlgorithm) Name() string { return "Popularity Caching" }

// Place implements Algorithm.
func (PopularityAlgorithm) Place(e *Evaluator, capacities []int64) (*Placement, error) {
	return PopularityCaching(e, capacities)
}
