package placement

import (
	"math"
	"testing"
)

func TestGenFeasibleAndPositive(t *testing.T) {
	e := buildEval(t, 4, 12, 4, 10)
	caps := UniformCapacities(4, gb/2)
	for _, lazy := range []bool{false, true} {
		p, err := TrimCachingGen(e, caps, GenOptions{Lazy: lazy})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.CheckFeasible(p, caps); err != nil {
			t.Fatalf("lazy=%v: %v", lazy, err)
		}
		hr, err := e.HitRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		if hr <= 0 {
			t.Fatalf("lazy=%v: greedy achieved hit ratio %v", lazy, hr)
		}
	}
}

func TestLazyMatchesNaive(t *testing.T) {
	// Lazy evaluation is an exact acceleration of Algorithm 3 up to
	// tie-breaking among equal gains; the achieved hit ratio must match.
	for seed := uint64(20); seed < 28; seed++ {
		e := buildEval(t, 3, 8, 3, seed)
		caps := UniformCapacities(3, gb/2)
		naive, err := TrimCachingGen(e, caps, GenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		hrN, err := e.HitRatio(naive)
		if err != nil {
			t.Fatal(err)
		}
		hrL, err := e.HitRatio(lazy)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hrN-hrL) > 1e-9 {
			t.Fatalf("seed %d: naive %v vs lazy %v", seed, hrN, hrL)
		}
	}
}

// TestLazyMatchesNaivePlacementsExactly pins the certified-but-unfit
// handling: unfit candidates are dropped permanently (g_m(X_m ∪ {i}) only
// grows, so they can never fit later), and under capacities tight enough
// to exercise that path the lazy solver must still produce the exact
// placement the naive rescan produces — not merely the same hit ratio.
// (Both tie-break equal gains toward the lexicographically smallest
// (m, i).)
func TestLazyMatchesNaivePlacementsExactly(t *testing.T) {
	for seed := uint64(20); seed < 26; seed++ {
		for _, q := range []int64{gb / 16, gb / 8, gb / 2, 2 * gb} {
			e := buildEval(t, 4, 10, 3, seed)
			caps := UniformCapacities(4, q)
			naive, err := TrimCachingGen(e, caps, GenOptions{})
			if err != nil {
				t.Fatal(err)
			}
			lazy, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
			if err != nil {
				t.Fatal(err)
			}
			if !placementsEqual(naive, lazy) {
				t.Fatalf("seed %d cap %d: lazy placement differs from naive", seed, q)
			}
		}
	}
}

// TestPersistentHeapStableAcrossSolves pins the persistent commit heap's
// lifecycle on one evaluator: repeated solves (which consume working
// copies), a different algorithm sharing the heap (storage mode does not
// affect u0 keys), and an explicit InvalidateHeap must all reproduce the
// placement a fresh evaluator computes.
func TestPersistentHeapStableAcrossSolves(t *testing.T) {
	e := buildEval(t, 4, 12, 3, 28)
	caps := UniformCapacities(4, gb/4)
	first, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IndependentCaching(e, caps); err != nil {
		t.Fatal(err)
	}
	second, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !placementsEqual(first, second) {
		t.Fatal("re-solve on the persistent heap differs from the first solve")
	}
	e.InvalidateHeap()
	third, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !placementsEqual(first, third) {
		t.Fatal("solve after InvalidateHeap differs from the first solve")
	}
	fresh := buildEval(t, 4, 12, 3, 28)
	cold, err := TrimCachingGen(fresh, caps, GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !placementsEqual(first, cold) {
		t.Fatal("persistent-heap solve differs from a fresh evaluator's solve")
	}
}

func TestGenBeatsIndependent(t *testing.T) {
	// The paper's headline: parameter-sharing placement dominates
	// independent caching under tight storage. With a binding capacity the
	// greedy with deduplicated storage can only fit more.
	var wins, ties, losses int
	for seed := uint64(30); seed < 40; seed++ {
		e := buildEval(t, 4, 12, 8, seed)
		caps := UniformCapacities(4, gb/4)
		gen, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		ind, err := IndependentCaching(e, caps)
		if err != nil {
			t.Fatal(err)
		}
		hrG, err := e.HitRatio(gen)
		if err != nil {
			t.Fatal(err)
		}
		hrI, err := e.HitRatio(ind)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case hrG > hrI+1e-9:
			wins++
		case hrG < hrI-1e-9:
			losses++
		default:
			ties++
		}
	}
	if wins < losses || wins == 0 {
		t.Fatalf("TrimCaching Gen vs Independent: %d wins, %d ties, %d losses", wins, ties, losses)
	}
}

func TestIndependentRespectsFullSizeBudget(t *testing.T) {
	e := buildEval(t, 3, 8, 3, 50)
	caps := UniformCapacities(3, gb/2)
	p, err := IndependentCaching(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		used, err := e.ServerStorageIndependent(p, m)
		if err != nil {
			t.Fatal(err)
		}
		if used > caps[m] {
			t.Fatalf("server %d: independent storage %d > %d", m, used, caps[m])
		}
	}
}

func TestGreedyZeroCapacity(t *testing.T) {
	e := buildEval(t, 3, 8, 2, 51)
	caps := UniformCapacities(3, 0)
	for _, lazy := range []bool{false, true} {
		p, err := TrimCachingGen(e, caps, GenOptions{Lazy: lazy})
		if err != nil {
			t.Fatal(err)
		}
		if p.CountPlacements() != 0 {
			t.Fatalf("lazy=%v: placed %d models with zero capacity", lazy, p.CountPlacements())
		}
	}
	p, err := IndependentCaching(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	if p.CountPlacements() != 0 {
		t.Fatal("independent placed models with zero capacity")
	}
}

func TestGreedyHugeCapacityCachesEverythingUseful(t *testing.T) {
	e := buildEval(t, 3, 8, 3, 52)
	caps := UniformCapacities(3, 100*gb)
	p, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := e.HitRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	// With unbounded storage the greedy must serve every servable request:
	// compare against the all-ones placement.
	full := NewPlacement(3, e.Instance().NumModels())
	for m := 0; m < 3; m++ {
		for i := 0; i < e.Instance().NumModels(); i++ {
			full.Set(m, i)
		}
	}
	hrFull, err := e.HitRatio(full)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hr-hrFull) > 1e-9 {
		t.Fatalf("greedy %v vs saturation %v with unbounded storage", hr, hrFull)
	}
}

func TestGreedyCapacityValidation(t *testing.T) {
	e := buildEval(t, 2, 4, 2, 53)
	if _, err := TrimCachingGen(e, []int64{1}, GenOptions{}); err == nil {
		t.Fatal("capacity length mismatch must error")
	}
	if _, err := TrimCachingGen(e, []int64{-1, 5}, GenOptions{}); err == nil {
		t.Fatal("negative capacity must error")
	}
	if _, err := IndependentCaching(e, []int64{1}); err == nil {
		t.Fatal("capacity length mismatch must error")
	}
}

func TestGenNeverPlacesUselessModels(t *testing.T) {
	e := buildEval(t, 3, 8, 3, 54)
	caps := UniformCapacities(3, gb)
	p, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every placed (m,i) must serve at least one reachable request.
	ins := e.Instance()
	for m := 0; m < 3; m++ {
		for _, i := range p.ModelsOn(m) {
			any := false
			for k := 0; k < ins.NumUsers(); k++ {
				if ins.Reachable(m, k, i) {
					any = true
					break
				}
			}
			if !any {
				t.Fatalf("placed useless model %d on server %d", i, m)
			}
		}
	}
}
