package placement

import (
	"errors"
	"math"
	"testing"
)

func TestSpecFeasible(t *testing.T) {
	e := buildEval(t, 4, 12, 4, 60)
	caps := UniformCapacities(4, gb/2)
	p, err := TrimCachingSpec(e, caps, DefaultSpecOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CheckFeasible(p, caps); err != nil {
		t.Fatal(err)
	}
	hr, err := e.HitRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	if hr <= 0 {
		t.Fatalf("spec hit ratio %v", hr)
	}
}

func TestSpecApproximationGuarantee(t *testing.T) {
	// Theorem 2: U(spec) >= (1-ε)/2 · U(optimal). Verified against the
	// exhaustive optimum on Fig. 6-sized instances.
	for seed := uint64(70); seed < 76; seed++ {
		e := fig6Eval(t, seed)
		caps := UniformCapacities(2, 100*1000*1000) // 0.1 GB, §VII-D
		opt, err := Exhaustive(e, caps, ExhaustiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hrOpt, err := e.HitRatio(opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0, 0.1} {
			p, err := TrimCachingSpec(e, caps, SpecOptions{Epsilon: eps, MaxCombos: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.CheckFeasible(p, caps); err != nil {
				t.Fatal(err)
			}
			hr, err := e.HitRatio(p)
			if err != nil {
				t.Fatal(err)
			}
			if hr < (1-eps)/2*hrOpt-1e-9 {
				t.Fatalf("seed %d eps %v: spec %v < (1-eps)/2 * opt %v", seed, eps, hr, hrOpt)
			}
			if hr > hrOpt+1e-9 {
				t.Fatalf("seed %d eps %v: spec %v exceeds optimum %v", seed, eps, hr, hrOpt)
			}
		}
	}
}

func TestSpecNearOptimalInPractice(t *testing.T) {
	// Fig. 6(a): the paper reports Spec matching the optimum on the small
	// instance. Check it lands within 5% on average.
	var ratioSum float64
	const trials = 6
	for seed := uint64(80); seed < 80+trials; seed++ {
		e := fig6Eval(t, seed)
		caps := UniformCapacities(2, 100*1000*1000)
		opt, err := Exhaustive(e, caps, ExhaustiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hrOpt, err := e.HitRatio(opt)
		if err != nil {
			t.Fatal(err)
		}
		if hrOpt == 0 {
			ratioSum++
			continue
		}
		p, err := TrimCachingSpec(e, caps, SpecOptions{Epsilon: 0, MaxCombos: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		hr, err := e.HitRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		ratioSum += hr / hrOpt
	}
	if avg := ratioSum / trials; avg < 0.95 {
		t.Fatalf("spec/optimal ratio %v < 0.95", avg)
	}
}

func TestSpecBeatsOrMatchesGenOnAverage(t *testing.T) {
	// Fig. 4: Spec outperforms Gen in the special case (on average).
	var sumSpec, sumGen float64
	for seed := uint64(90); seed < 100; seed++ {
		e := buildEval(t, 4, 12, 8, seed)
		caps := UniformCapacities(4, gb/4)
		spec, err := TrimCachingSpec(e, caps, DefaultSpecOptions())
		if err != nil {
			t.Fatal(err)
		}
		gen, err := TrimCachingGen(e, caps, GenOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		hrS, err := e.HitRatio(spec)
		if err != nil {
			t.Fatal(err)
		}
		hrG, err := e.HitRatio(gen)
		if err != nil {
			t.Fatal(err)
		}
		sumSpec += hrS
		sumGen += hrG
	}
	if sumSpec < sumGen*0.97 {
		t.Fatalf("spec average %v well below gen %v", sumSpec/10, sumGen/10)
	}
}

func TestSpecZeroCapacity(t *testing.T) {
	e := buildEval(t, 3, 6, 2, 101)
	p, err := TrimCachingSpec(e, UniformCapacities(3, 0), DefaultSpecOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.CountPlacements() != 0 {
		t.Fatal("placed models with zero capacity")
	}
}

func TestSpecValidation(t *testing.T) {
	e := buildEval(t, 2, 4, 2, 102)
	if _, err := TrimCachingSpec(e, []int64{1}, DefaultSpecOptions()); err == nil {
		t.Fatal("capacity length mismatch must error")
	}
	if _, err := TrimCachingSpec(e, UniformCapacities(2, -1), DefaultSpecOptions()); err == nil {
		t.Fatal("negative capacity must error")
	}
	if _, err := TrimCachingSpec(e, UniformCapacities(2, gb), SpecOptions{Epsilon: -0.1}); err == nil {
		t.Fatal("negative epsilon must error")
	}
	if _, err := TrimCachingSpec(e, UniformCapacities(2, gb), SpecOptions{Epsilon: 1.5}); err == nil {
		t.Fatal("epsilon > 1 must error")
	}
}

func TestSpecEpsilonComparable(t *testing.T) {
	// Smaller ε cannot hurt the PER-SERVER sub-problem (Prop. 4), but the
	// successive greedy is not monotone in per-server quality, so globally
	// we only require statistical equivalence: over several seeds the
	// tight-ε total must stay within 2% of the loose-ε total.
	var sumTight, sumLoose float64
	for seed := uint64(110); seed < 118; seed++ {
		e := buildEval(t, 3, 10, 6, seed)
		caps := UniformCapacities(3, gb/4)
		tight, err := TrimCachingSpec(e, caps, SpecOptions{Epsilon: 0.05, MaxCombos: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		loose, err := TrimCachingSpec(e, caps, SpecOptions{Epsilon: 0.9, MaxCombos: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		hrT, err := e.HitRatio(tight)
		if err != nil {
			t.Fatal(err)
		}
		hrL, err := e.HitRatio(loose)
		if err != nil {
			t.Fatal(err)
		}
		sumTight += hrT
		sumLoose += hrL
	}
	if sumTight < 0.98*sumLoose {
		t.Fatalf("tight-eps total %v far below loose-eps total %v", sumTight, sumLoose)
	}
}

func TestExhaustiveMatchesBruteForceSemantics(t *testing.T) {
	// On an instance where everything fits, exhaustive must reach the
	// saturation hit ratio.
	e := fig6Eval(t, 120)
	caps := UniformCapacities(2, 100*gb)
	p, err := Exhaustive(e, caps, ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full := NewPlacement(2, e.Instance().NumModels())
	for m := 0; m < 2; m++ {
		for i := 0; i < e.Instance().NumModels(); i++ {
			full.Set(m, i)
		}
	}
	hrOpt, err := e.HitRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	hrFull, err := e.HitRatio(full)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hrOpt-hrFull) > 1e-9 {
		t.Fatalf("optimal %v != saturation %v under unbounded storage", hrOpt, hrFull)
	}
}

func TestExhaustiveDominatesHeuristics(t *testing.T) {
	for seed := uint64(130); seed < 134; seed++ {
		e := fig6Eval(t, seed)
		caps := UniformCapacities(2, 100*1000*1000)
		opt, err := Exhaustive(e, caps, ExhaustiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.CheckFeasible(opt, caps); err != nil {
			t.Fatal(err)
		}
		hrOpt, err := e.HitRatio(opt)
		if err != nil {
			t.Fatal(err)
		}
		for name := range map[string]bool{"spec": true, "gen": true, "independent": true} {
			alg, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := alg.Place(e, caps)
			if err != nil {
				t.Fatal(err)
			}
			hr, err := e.HitRatio(p)
			if err != nil {
				t.Fatal(err)
			}
			if hr > hrOpt+1e-9 {
				t.Fatalf("seed %d: %s hit ratio %v exceeds optimal %v", seed, name, hr, hrOpt)
			}
		}
	}
}

func TestExhaustiveGuards(t *testing.T) {
	e := buildEval(t, 2, 4, 2, 140)
	if _, err := Exhaustive(e, []int64{1}, ExhaustiveOptions{}); err == nil {
		t.Fatal("capacity length mismatch must error")
	}
	// State-space guard.
	big := fig6Eval(t, 141)
	_, err := Exhaustive(big, UniformCapacities(2, 100*gb), ExhaustiveOptions{MaxStates: 4})
	var tooLarge *ErrSearchTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("want ErrSearchTooLarge, got %v", err)
	}
	if tooLarge.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"spec", "gen", "gen-naive", "independent", "optimal"} {
		alg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if alg.Name() == "" {
			t.Fatalf("%s: empty display name", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}
