// Package topology models the wireless edge network deployment of §III-A:
// M edge servers and K users uniformly distributed in a square area, with
// coverage-based association (a user can download from every edge server
// whose coverage radius contains it) and a fully connected wired backhaul
// between servers.
package topology

import (
	"fmt"
	"sort"

	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
)

// Config describes a deployment to generate.
type Config struct {
	// AreaSideM is the side of the square deployment area in metres
	// (paper: 1000 m for the main experiments, 400 m for Fig. 6).
	AreaSideM float64 `json:"areaSideM"`
	// NumServers is M.
	NumServers int `json:"numServers"`
	// NumUsers is K.
	NumUsers int `json:"numUsers"`
	// CoverageRadiusM is the server coverage radius (paper: 275 m).
	CoverageRadiusM float64 `json:"coverageRadiusM"`
	// ServerLayout selects the server placement model; the zero value is
	// the paper's uniform random placement.
	ServerLayout Layout `json:"serverLayout,omitempty"`
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	if c.AreaSideM <= 0 {
		return fmt.Errorf("topology: AreaSideM must be positive, got %v", c.AreaSideM)
	}
	if c.NumServers <= 0 {
		return fmt.Errorf("topology: NumServers must be positive, got %d", c.NumServers)
	}
	if c.NumUsers <= 0 {
		return fmt.Errorf("topology: NumUsers must be positive, got %d", c.NumUsers)
	}
	if c.CoverageRadiusM <= 0 {
		return fmt.Errorf("topology: CoverageRadiusM must be positive, got %v", c.CoverageRadiusM)
	}
	return nil
}

// Topology is a snapshot of server and user positions with derived
// association sets. It is immutable under the snapshot API (mobility
// produces new snapshots via WithUserPositions or MoveUsers); a caller that
// privately owns its topology may instead mutate it with MoveUsersInPlace,
// which reuses the association rows and allocates nothing in steady state.
type Topology struct {
	area    geom.Area
	radius  float64
	servers []geom.Point
	users   []geom.Point

	userServers [][]int // Mk: servers covering user k, ascending
	serverUsers [][]int // Km: users covered by server m, ascending
}

// Generate draws a uniform random deployment.
func Generate(cfg Config, src *rng.Source) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	area, err := geom.NewArea(cfg.AreaSideM)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	servers, err := serverPositions(cfg.ServerLayout, area, cfg.NumServers, src)
	if err != nil {
		return nil, err
	}
	return New(area, servers, area.SamplePoints(src, cfg.NumUsers), cfg.CoverageRadiusM)
}

// New builds a topology from explicit positions. Position slices are copied.
func New(area geom.Area, servers, users []geom.Point, coverageRadiusM float64) (*Topology, error) {
	if len(servers) == 0 || len(users) == 0 {
		return nil, fmt.Errorf("topology: need at least one server and one user")
	}
	if coverageRadiusM <= 0 {
		return nil, fmt.Errorf("topology: coverage radius must be positive, got %v", coverageRadiusM)
	}
	t := &Topology{
		area:    area,
		radius:  coverageRadiusM,
		servers: append([]geom.Point(nil), servers...),
		users:   append([]geom.Point(nil), users...),
	}
	t.userServers = make([][]int, len(users))
	t.serverUsers = make([][]int, len(servers))
	for k, u := range t.users {
		for m, s := range t.servers {
			if u.Dist(s) <= coverageRadiusM {
				t.userServers[k] = append(t.userServers[k], m)
				t.serverUsers[m] = append(t.serverUsers[m], k)
			}
		}
	}
	return t, nil
}

// WithUserPositions returns a new topology with the same servers and area
// but moved users (used by the mobility experiment, §VII-E).
func (t *Topology) WithUserPositions(users []geom.Point) (*Topology, error) {
	return New(t.area, t.servers, users, t.radius)
}

// MoveUsers returns a snapshot with user moved[j] relocated to newPos[j],
// recomputing associations only for the moved users — O(|moved|·M) instead
// of WithUserPositions' O(K·M) — plus the ascending list of servers whose
// coverage set (and hence load) changed. The result is identical to
// WithUserPositions on the full updated position vector: association lists
// stay ascending, and untouched rows are shared with the receiver.
func (t *Topology) MoveUsers(moved []int, newPos []geom.Point) (*Topology, []int, error) {
	if len(moved) != len(newPos) {
		return nil, nil, fmt.Errorf("topology: %d moved users with %d positions", len(moved), len(newPos))
	}
	nt := &Topology{
		area:        t.area,
		radius:      t.radius,
		servers:     t.servers, // servers never move
		users:       append([]geom.Point(nil), t.users...),
		userServers: append([][]int(nil), t.userServers...),
		serverUsers: append([][]int(nil), t.serverUsers...),
	}
	seen := make([]bool, len(t.users))
	copied := make([]bool, len(t.servers)) // serverUsers row privately owned by nt
	changed := make([]bool, len(t.servers))
	for j, k := range moved {
		if k < 0 || k >= len(t.users) {
			return nil, nil, fmt.Errorf("topology: moved user %d out of range [0,%d)", k, len(t.users))
		}
		if seen[k] {
			return nil, nil, fmt.Errorf("topology: user %d moved twice", k)
		}
		seen[k] = true
		nt.users[k] = newPos[j]
		var cov []int
		for m, s := range t.servers {
			if newPos[j].Dist(s) <= t.radius {
				cov = append(cov, m)
			}
		}
		old := t.userServers[k]
		nt.userServers[k] = cov
		// Merge-diff the ascending old and new coverage lists; splice k out
		// of (into) the users list of every server it left (entered).
		oi, ci := 0, 0
		for oi < len(old) || ci < len(cov) {
			switch {
			case ci == len(cov) || (oi < len(old) && old[oi] < cov[ci]):
				nt.spliceUser(old[oi], k, false, copied)
				changed[old[oi]] = true
				oi++
			case oi == len(old) || cov[ci] < old[oi]:
				nt.spliceUser(cov[ci], k, true, copied)
				changed[cov[ci]] = true
				ci++
			default:
				oi++
				ci++
			}
		}
	}
	var loadChanged []int
	for m, c := range changed {
		if c {
			loadChanged = append(loadChanged, m)
		}
	}
	return nt, loadChanged, nil
}

// MoveScratch owns the reusable state of in-place user moves: per-user and
// per-server epoch stamps (no O(K) clearing between calls), the reused
// load-changed list, and an arena holding the pre-move coverage rows of the
// users moved by the latest call. Allocate one per mutable topology with
// NewMoveScratch and reuse it across checkpoints; steady-state
// MoveUsersInPlace calls perform no heap allocation once the arena and the
// association rows have reached their working capacity.
type MoveScratch struct {
	epoch       uint32
	userStamp   []uint32 // userStamp[k] == epoch: user k moved this call
	movedIdx    []int32  // valid under userStamp: index into the call's moved
	serverStamp []uint32 // serverStamp[m] == epoch: server m's load changed
	loadChanged []int
	oldCovOff   []int32 // len(moved)+1 offsets into oldCovArena
	oldCovArena []int   // pre-move coverage rows, concatenated
}

// NewMoveScratch sizes a scratch for a topology with K users and M servers.
func NewMoveScratch(numUsers, numServers int) *MoveScratch {
	return &MoveScratch{
		userStamp:   make([]uint32, numUsers),
		movedIdx:    make([]int32, numUsers),
		serverStamp: make([]uint32, numServers),
	}
}

// OldCovering returns the coverage row user k had before the latest
// MoveUsersInPlace call, and whether k was moved by that call. Users not in
// the latest moved set report ok=false: their coverage is unchanged, so the
// live ServersCovering row already is the old row. The returned slice is
// valid until the next MoveUsersInPlace call on the same scratch.
func (s *MoveScratch) OldCovering(k int) ([]int, bool) {
	if k < 0 || k >= len(s.userStamp) || s.userStamp[k] != s.epoch {
		return nil, false
	}
	j := s.movedIdx[k]
	return s.oldCovArena[s.oldCovOff[j]:s.oldCovOff[j+1]], true
}

// MemoryBytes returns the heap bytes the scratch owns.
func (s *MoveScratch) MemoryBytes() int64 {
	return int64(cap(s.userStamp)+cap(s.serverStamp))*4 + int64(cap(s.movedIdx)+cap(s.oldCovOff))*4 +
		int64(cap(s.loadChanged)+cap(s.oldCovArena))*8
}

// MoveUsersInPlace relocates user moved[j] to newPos[j] by mutating the
// receiver directly — no snapshot copies — and returns the ascending list of
// servers whose coverage set (and hence load) changed, owned by scratch and
// valid until its next use. Association rows are spliced in place with
// amortized capacity, and each moved user's previous coverage row is parked
// in the scratch arena first, retrievable via scratch.OldCovering, so
// incremental revision can still diff old against new state.
//
// The receiver must be privately owned by the caller: every previously
// returned row view (ServersCovering, UsersOf) is invalidated. On error the
// topology may be partially mutated and must be discarded. Results are
// identical to MoveUsers on the same arguments (pinned by the equivalence
// tests); only the ownership discipline differs.
func (t *Topology) MoveUsersInPlace(moved []int, newPos []geom.Point, scratch *MoveScratch) ([]int, error) {
	if len(moved) != len(newPos) {
		return nil, fmt.Errorf("topology: %d moved users with %d positions", len(moved), len(newPos))
	}
	if len(scratch.userStamp) != len(t.users) || len(scratch.serverStamp) != len(t.servers) {
		return nil, fmt.Errorf("topology: move scratch sized for %dx%d, topology is %dx%d",
			len(scratch.userStamp), len(scratch.serverStamp), len(t.users), len(t.servers))
	}
	scratch.epoch++
	if scratch.epoch == 0 { // wrapped: stale stamps could collide, reset them
		for i := range scratch.userStamp {
			scratch.userStamp[i] = 0
		}
		for i := range scratch.serverStamp {
			scratch.serverStamp[i] = 0
		}
		scratch.epoch = 1
	}
	epoch := scratch.epoch
	scratch.oldCovOff = scratch.oldCovOff[:0]
	scratch.oldCovArena = scratch.oldCovArena[:0]
	scratch.oldCovOff = append(scratch.oldCovOff, 0)
	for j, k := range moved {
		if k < 0 || k >= len(t.users) {
			return nil, fmt.Errorf("topology: moved user %d out of range [0,%d)", k, len(t.users))
		}
		if scratch.userStamp[k] == epoch {
			return nil, fmt.Errorf("topology: user %d moved twice", k)
		}
		scratch.userStamp[k] = epoch
		scratch.movedIdx[k] = int32(j)
		t.users[k] = newPos[j]
		// Park the old coverage row before rebuilding it in place.
		scratch.oldCovArena = append(scratch.oldCovArena, t.userServers[k]...)
		scratch.oldCovOff = append(scratch.oldCovOff, int32(len(scratch.oldCovArena)))
		cov := t.userServers[k][:0]
		for m, s := range t.servers {
			if newPos[j].Dist(s) <= t.radius {
				cov = append(cov, m)
			}
		}
		t.userServers[k] = cov
		old := scratch.oldCovArena[scratch.oldCovOff[j]:scratch.oldCovOff[j+1]]
		// Merge-diff the ascending old and new coverage lists; splice k out
		// of (into) the users list of every server it left (entered).
		oi, ci := 0, 0
		for oi < len(old) || ci < len(cov) {
			switch {
			case ci == len(cov) || (oi < len(old) && old[oi] < cov[ci]):
				t.spliceUserInPlace(old[oi], k, false)
				scratch.serverStamp[old[oi]] = epoch
				oi++
			case oi == len(old) || cov[ci] < old[oi]:
				t.spliceUserInPlace(cov[ci], k, true)
				scratch.serverStamp[cov[ci]] = epoch
				ci++
			default:
				oi++
				ci++
			}
		}
	}
	scratch.loadChanged = scratch.loadChanged[:0]
	for m, st := range scratch.serverStamp {
		if st == epoch {
			scratch.loadChanged = append(scratch.loadChanged, m)
		}
	}
	return scratch.loadChanged, nil
}

// spliceUserInPlace inserts (add=true) or removes user k from server m's
// ascending users list, mutating the row directly with amortized capacity.
func (t *Topology) spliceUserInPlace(m, k int, add bool) {
	row := t.serverUsers[m]
	pos := sort.SearchInts(row, k)
	if add {
		row = append(row, 0)
		copy(row[pos+1:], row[pos:])
		row[pos] = k
	} else {
		row = append(row[:pos], row[pos+1:]...)
	}
	t.serverUsers[m] = row
}

// spliceUser inserts (add=true) or removes user k from server m's ascending
// users list, copying the row on first touch so the source topology stays
// intact.
func (t *Topology) spliceUser(m, k int, add bool, copied []bool) {
	row := t.serverUsers[m]
	if !copied[m] {
		row = append([]int(nil), row...)
		copied[m] = true
	}
	pos := sort.SearchInts(row, k)
	if add {
		row = append(row, 0)
		copy(row[pos+1:], row[pos:])
		row[pos] = k
	} else {
		row = append(row[:pos], row[pos+1:]...)
	}
	t.serverUsers[m] = row
}

// NumServers returns M.
func (t *Topology) NumServers() int { return len(t.servers) }

// NumUsers returns K.
func (t *Topology) NumUsers() int { return len(t.users) }

// Area returns the deployment area.
func (t *Topology) Area() geom.Area { return t.area }

// CoverageRadius returns the server coverage radius in metres.
func (t *Topology) CoverageRadius() float64 { return t.radius }

// ServerPos returns the position of server m.
func (t *Topology) ServerPos(m int) geom.Point { return t.servers[m] }

// UserPos returns the position of user k.
func (t *Topology) UserPos(k int) geom.Point { return t.users[k] }

// UserPositions returns a copy of all user positions.
func (t *Topology) UserPositions() []geom.Point {
	return append([]geom.Point(nil), t.users...)
}

// ServersCovering returns Mk, the servers covering user k, ascending. The
// returned slice must not be modified.
func (t *Topology) ServersCovering(k int) []int { return t.userServers[k] }

// UsersOf returns Km, the users covered by server m, ascending. The
// returned slice must not be modified.
func (t *Topology) UsersOf(m int) []int { return t.serverUsers[m] }

// Load returns |Km|, the association count used for bandwidth sharing.
func (t *Topology) Load(m int) int { return len(t.serverUsers[m]) }

// Distance returns the server-user distance in metres.
func (t *Topology) Distance(m, k int) float64 {
	return t.servers[m].Dist(t.users[k])
}

// Covered reports whether user k is covered by at least one server.
func (t *Topology) Covered(k int) bool { return len(t.userServers[k]) > 0 }

// MemoryBytes returns the heap bytes owned by the topology: position
// slices plus both association tables (row headers and row capacity).
func (t *Topology) MemoryBytes() int64 {
	const ptSize = 16  // geom.Point: two float64s
	const hdrSize = 24 // slice header
	n := int64(cap(t.servers)+cap(t.users)) * ptSize
	n += int64(cap(t.userServers)+cap(t.serverUsers)) * hdrSize
	for _, row := range t.userServers {
		n += int64(cap(row)) * 8
	}
	for _, row := range t.serverUsers {
		n += int64(cap(row)) * 8
	}
	return n
}

// CoveredFraction returns the fraction of users covered by ≥1 server.
func (t *Topology) CoveredFraction() float64 {
	var n int
	for k := range t.users {
		if len(t.userServers[k]) > 0 {
			n++
		}
	}
	return float64(n) / float64(len(t.users))
}
