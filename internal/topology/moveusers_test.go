package topology

import (
	"testing"

	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
)

func moveTestTopology(t *testing.T) *Topology {
	t.Helper()
	topo, err := Generate(Config{AreaSideM: 1000, NumServers: 6, NumUsers: 14, CoverageRadiusM: 275}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func assertTopologiesEqual(t *testing.T, got, want *Topology) {
	t.Helper()
	for k := 0; k < want.NumUsers(); k++ {
		if got.UserPos(k) != want.UserPos(k) {
			t.Fatalf("user %d at %v, want %v", k, got.UserPos(k), want.UserPos(k))
		}
		g, w := got.ServersCovering(k), want.ServersCovering(k)
		if len(g) != len(w) {
			t.Fatalf("user %d covered by %d servers, want %d", k, len(g), len(w))
		}
		for j := range g {
			if g[j] != w[j] {
				t.Fatalf("user %d coverage[%d] = %d, want %d", k, j, g[j], w[j])
			}
		}
	}
	for m := 0; m < want.NumServers(); m++ {
		g, w := got.UsersOf(m), want.UsersOf(m)
		if len(g) != len(w) {
			t.Fatalf("server %d load %d, want %d", m, len(g), len(w))
		}
		for j := range g {
			if g[j] != w[j] {
				t.Fatalf("server %d users[%d] = %d, want %d", m, j, g[j], w[j])
			}
		}
	}
}

// TestMoveUsersMatchesWithUserPositions drifts random subsets of users
// through repeated incremental moves and pins each snapshot against the
// full O(K·M) rebuild.
func TestMoveUsersMatchesWithUserPositions(t *testing.T) {
	topo := moveTestTopology(t)
	src := rng.New(9)
	area := topo.Area()
	for round := 0; round < 20; round++ {
		n := 1 + int(src.Uint64()%uint64(topo.NumUsers()))
		perm := src.Perm(topo.NumUsers())
		moved := perm[:n]
		pos := make([]geom.Point, n)
		for j := range pos {
			pos[j] = area.SamplePoints(src, 1)[0]
		}
		next, loadChanged, err := topo.MoveUsers(moved, pos)
		if err != nil {
			t.Fatal(err)
		}
		full := topo.UserPositions()
		for j, k := range moved {
			full[k] = pos[j]
		}
		want, err := topo.WithUserPositions(full)
		if err != nil {
			t.Fatal(err)
		}
		assertTopologiesEqual(t, next, want)
		// loadChanged must be exactly the servers whose load differs... or
		// whose membership changed with equal load (one in, one out).
		for _, m := range loadChanged {
			if m < 0 || m >= topo.NumServers() {
				t.Fatalf("loadChanged server %d out of range", m)
			}
		}
		for m := 0; m < topo.NumServers(); m++ {
			if topo.Load(m) != want.Load(m) {
				found := false
				for _, c := range loadChanged {
					if c == m {
						found = true
					}
				}
				if !found {
					t.Fatalf("server %d load changed %d→%d but not reported", m, topo.Load(m), want.Load(m))
				}
			}
		}
		// The source topology must be untouched by the move.
		before, err := topo.WithUserPositions(topo.UserPositions())
		if err != nil {
			t.Fatal(err)
		}
		assertTopologiesEqual(t, topo, before)
		topo = next
	}
}

// TestMoveUsersInPlaceMatchesMoveUsers drifts users through the mutating
// arena-backed path and pins every snapshot against the copying MoveUsers
// result: identical positions, coverage, server membership, and the same
// loadChanged set. The checkpoint loop's zero-allocation contract rides on
// the in-place path being a drop-in replacement.
func TestMoveUsersInPlaceMatchesMoveUsers(t *testing.T) {
	topo := moveTestTopology(t)
	scratch := NewMoveScratch(topo.NumUsers(), topo.NumServers())
	src := rng.New(9)
	area := topo.Area()
	for round := 0; round < 20; round++ {
		n := 1 + int(src.Uint64()%uint64(topo.NumUsers()))
		perm := src.Perm(topo.NumUsers())
		moved := perm[:n]
		pos := make([]geom.Point, n)
		for j := range pos {
			pos[j] = area.SamplePoints(src, 1)[0]
		}
		want, wantChanged, err := topo.MoveUsers(moved, pos)
		if err != nil {
			t.Fatal(err)
		}
		gotChanged, err := topo.MoveUsersInPlace(moved, pos, scratch)
		if err != nil {
			t.Fatal(err)
		}
		assertTopologiesEqual(t, topo, want)
		if len(gotChanged) != len(wantChanged) {
			t.Fatalf("round %d: %d loadChanged servers, want %d", round, len(gotChanged), len(wantChanged))
		}
		for j := range wantChanged {
			if gotChanged[j] != wantChanged[j] {
				t.Fatalf("round %d: loadChanged[%d] = %d, want %d", round, j, gotChanged[j], wantChanged[j])
			}
		}
		// The scratch must expose each mover's pre-move coverage row.
		for _, k := range moved {
			if _, ok := scratch.OldCovering(k); !ok {
				t.Fatalf("round %d: scratch lost pre-move coverage for user %d", round, k)
			}
		}
	}
}

func TestMoveUsersValidation(t *testing.T) {
	topo := moveTestTopology(t)
	p := topo.UserPos(0)
	if _, _, err := topo.MoveUsers([]int{0}, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, _, err := topo.MoveUsers([]int{-1}, []geom.Point{p}); err == nil {
		t.Fatal("negative index must error")
	}
	if _, _, err := topo.MoveUsers([]int{topo.NumUsers()}, []geom.Point{p}); err == nil {
		t.Fatal("out-of-range index must error")
	}
	if _, _, err := topo.MoveUsers([]int{2, 2}, []geom.Point{p, p}); err == nil {
		t.Fatal("duplicate index must error")
	}
}
