package topology

import (
	"testing"

	"trimcaching/internal/rng"
)

func TestParseLayout(t *testing.T) {
	cases := []struct {
		in   string
		want Layout
	}{
		{"", LayoutUniform},
		{"uniform", LayoutUniform},
		{"grid", LayoutGrid},
		{"ppp", LayoutPPP},
	}
	for _, c := range cases {
		got, err := ParseLayout(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("ParseLayout(%q) = %v", c.in, got)
		}
	}
	if _, err := ParseLayout("hexagon"); err == nil {
		t.Fatal("unknown layout must error")
	}
	if LayoutGrid.String() != "grid" || Layout(42).String() == "" {
		t.Fatal("String()")
	}
}

func TestGridLayoutDeterministicAndCentered(t *testing.T) {
	cfg := paperConfig()
	cfg.ServerLayout = LayoutGrid
	cfg.NumServers = 9
	a, err := Generate(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumServers() != 9 {
		t.Fatalf("grid produced %d servers", a.NumServers())
	}
	// Grid positions are independent of the seed.
	for m := 0; m < 9; m++ {
		if a.ServerPos(m) != b.ServerPos(m) {
			t.Fatalf("grid position %d depends on seed", m)
		}
		if !a.Area().Contains(a.ServerPos(m)) {
			t.Fatalf("server %d outside area", m)
		}
	}
	// 3x3 grid on 1000 m: first center at (166.67, 166.67).
	p := a.ServerPos(0)
	if p.X < 160 || p.X > 173 || p.Y < 160 || p.Y > 173 {
		t.Fatalf("first grid center at %v", p)
	}
}

func TestGridLayoutNonSquareCount(t *testing.T) {
	cfg := paperConfig()
	cfg.ServerLayout = LayoutGrid
	cfg.NumServers = 7 // 3 cols x 3 rows, 7 filled
	topo, err := Generate(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumServers() != 7 {
		t.Fatalf("got %d servers", topo.NumServers())
	}
	seen := map[[2]int]bool{}
	for m := 0; m < 7; m++ {
		p := topo.ServerPos(m)
		key := [2]int{int(p.X), int(p.Y)}
		if seen[key] {
			t.Fatalf("duplicate grid cell %v", key)
		}
		seen[key] = true
	}
}

func TestPPPLayoutVariesCount(t *testing.T) {
	cfg := paperConfig()
	cfg.ServerLayout = LayoutPPP
	counts := map[int]bool{}
	for seed := uint64(0); seed < 30; seed++ {
		topo, err := Generate(cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if topo.NumServers() < 1 {
			t.Fatal("PPP produced zero servers")
		}
		counts[topo.NumServers()] = true
	}
	if len(counts) < 3 {
		t.Fatalf("PPP server counts barely vary: %v", counts)
	}
}

func TestPPPMeanNearIntensity(t *testing.T) {
	cfg := paperConfig()
	cfg.ServerLayout = LayoutPPP
	cfg.NumServers = 10
	var total int
	const trials = 200
	for seed := uint64(0); seed < trials; seed++ {
		topo, err := Generate(cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		total += topo.NumServers()
	}
	mean := float64(total) / trials
	if mean < 9 || mean > 11 {
		t.Fatalf("PPP mean %v, want ~10", mean)
	}
}
