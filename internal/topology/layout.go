package topology

import (
	"fmt"
	"math"

	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
)

// Layout selects how edge-server positions are drawn. The zero value is the
// paper's uniform random placement (§VII-A); the alternatives support
// deployment-sensitivity studies.
type Layout int

// Server layout modes.
const (
	// LayoutUniform places servers uniformly at random (the paper's model).
	LayoutUniform Layout = iota
	// LayoutGrid places servers at the centers of a near-square grid —
	// a planned deployment.
	LayoutGrid
	// LayoutPPP draws the server count from a Poisson distribution with
	// mean NumServers and places them uniformly — an unplanned (stochastic
	// geometry) deployment. At least one server is always placed.
	LayoutPPP
)

// String returns the layout name.
func (l Layout) String() string {
	switch l {
	case LayoutUniform:
		return "uniform"
	case LayoutGrid:
		return "grid"
	case LayoutPPP:
		return "ppp"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// ParseLayout converts a layout name to a Layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "uniform", "":
		return LayoutUniform, nil
	case "grid":
		return LayoutGrid, nil
	case "ppp":
		return LayoutPPP, nil
	default:
		return 0, fmt.Errorf("topology: unknown layout %q", s)
	}
}

// serverPositions draws server positions per the layout.
func serverPositions(layout Layout, area geom.Area, numServers int, src *rng.Source) ([]geom.Point, error) {
	switch layout {
	case LayoutUniform:
		return area.SamplePoints(src, numServers), nil
	case LayoutGrid:
		return gridPositions(area, numServers), nil
	case LayoutPPP:
		n := src.Poisson(float64(numServers))
		if n < 1 {
			n = 1
		}
		return area.SamplePoints(src, n), nil
	default:
		return nil, fmt.Errorf("topology: unknown layout %d", int(layout))
	}
}

// gridPositions places n servers at cell centers of the smallest square
// grid with at least n cells, filling row-major.
func gridPositions(area geom.Area, n int) []geom.Point {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := int(math.Ceil(float64(n) / float64(cols)))
	cellW := area.Side / float64(cols)
	cellH := area.Side / float64(rows)
	out := make([]geom.Point, 0, n)
	for r := 0; r < rows && len(out) < n; r++ {
		for c := 0; c < cols && len(out) < n; c++ {
			out = append(out, geom.Point{
				X: (float64(c) + 0.5) * cellW,
				Y: (float64(r) + 0.5) * cellH,
			})
		}
	}
	return out
}
