package topology

import (
	"testing"
	"testing/quick"

	"trimcaching/internal/geom"
	"trimcaching/internal/rng"
)

func paperConfig() Config {
	return Config{AreaSideM: 1000, NumServers: 10, NumUsers: 30, CoverageRadiusM: 275}
}

func TestConfigValidate(t *testing.T) {
	if err := paperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.AreaSideM = 0 },
		func(c *Config) { c.NumServers = 0 },
		func(c *Config) { c.NumUsers = -1 },
		func(c *Config) { c.CoverageRadiusM = 0 },
	}
	for i, mut := range muts {
		c := paperConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d: expected error", i)
		}
	}
}

func TestGenerateCounts(t *testing.T) {
	topo, err := Generate(paperConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumServers() != 10 || topo.NumUsers() != 30 {
		t.Fatalf("counts: %d servers %d users", topo.NumServers(), topo.NumUsers())
	}
	for m := 0; m < topo.NumServers(); m++ {
		if !topo.Area().Contains(topo.ServerPos(m)) {
			t.Fatalf("server %d outside area", m)
		}
	}
	for k := 0; k < topo.NumUsers(); k++ {
		if !topo.Area().Contains(topo.UserPos(k)) {
			t.Fatalf("user %d outside area", k)
		}
	}
}

func TestAssociationConsistency(t *testing.T) {
	topo, err := Generate(paperConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < topo.NumUsers(); k++ {
		for _, m := range topo.ServersCovering(k) {
			if topo.Distance(m, k) > topo.CoverageRadius() {
				t.Fatalf("server %d listed for user %d at distance %v", m, k, topo.Distance(m, k))
			}
			found := false
			for _, kk := range topo.UsersOf(m) {
				if kk == k {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("Mk/Km asymmetry for m=%d k=%d", m, k)
			}
		}
	}
	// And the reverse direction: every user in Km must be within radius.
	for m := 0; m < topo.NumServers(); m++ {
		if topo.Load(m) != len(topo.UsersOf(m)) {
			t.Fatalf("Load(%d) mismatch", m)
		}
		for _, k := range topo.UsersOf(m) {
			if topo.Distance(m, k) > topo.CoverageRadius() {
				t.Fatalf("user %d in Km of %d beyond radius", k, m)
			}
		}
	}
}

func TestAssociationExhaustive(t *testing.T) {
	// Cross-check Mk against a brute-force distance scan.
	topo, err := Generate(paperConfig(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < topo.NumUsers(); k++ {
		var want []int
		for m := 0; m < topo.NumServers(); m++ {
			if topo.Distance(m, k) <= topo.CoverageRadius() {
				want = append(want, m)
			}
		}
		got := topo.ServersCovering(k)
		if len(got) != len(want) {
			t.Fatalf("user %d: got %v want %v", k, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("user %d: got %v want %v", k, got, want)
			}
		}
	}
}

func TestNewExplicitPositions(t *testing.T) {
	area, err := geom.NewArea(100)
	if err != nil {
		t.Fatal(err)
	}
	servers := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}
	users := []geom.Point{{X: 10, Y: 0}, {X: 95, Y: 95}, {X: 50, Y: 50}}
	topo, err := New(area, servers, users, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.ServersCovering(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("user 0 covered by %v", got)
	}
	if got := topo.ServersCovering(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("user 1 covered by %v", got)
	}
	if got := topo.ServersCovering(2); len(got) != 0 {
		t.Fatalf("user 2 covered by %v, want none", got)
	}
	if topo.Covered(2) {
		t.Fatal("user 2 should be uncovered")
	}
	if got := topo.CoveredFraction(); got < 0.66 || got > 0.67 {
		t.Fatalf("covered fraction %v", got)
	}
}

func TestNewInvalid(t *testing.T) {
	area, err := geom.NewArea(100)
	if err != nil {
		t.Fatal(err)
	}
	p := []geom.Point{{X: 1, Y: 1}}
	if _, err := New(area, nil, p, 30); err == nil {
		t.Fatal("no servers must error")
	}
	if _, err := New(area, p, nil, 30); err == nil {
		t.Fatal("no users must error")
	}
	if _, err := New(area, p, p, 0); err == nil {
		t.Fatal("zero radius must error")
	}
}

func TestWithUserPositions(t *testing.T) {
	topo, err := Generate(paperConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	moved := topo.UserPositions()
	for i := range moved {
		moved[i] = geom.Point{X: 0, Y: 0}
	}
	next, err := topo.WithUserPositions(moved)
	if err != nil {
		t.Fatal(err)
	}
	if next.NumServers() != topo.NumServers() {
		t.Fatal("servers changed")
	}
	for m := 0; m < topo.NumServers(); m++ {
		if next.ServerPos(m) != topo.ServerPos(m) {
			t.Fatal("server positions changed")
		}
	}
	// All users now at the origin: association must be identical across
	// users and consistent with server distances from the origin.
	want := next.ServersCovering(0)
	for k := 1; k < next.NumUsers(); k++ {
		got := next.ServersCovering(k)
		if len(got) != len(want) {
			t.Fatal("co-located users with different coverage")
		}
	}
}

func TestUserPositionsCopied(t *testing.T) {
	topo, err := Generate(paperConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	pos := topo.UserPositions()
	orig := topo.UserPos(0)
	pos[0] = geom.Point{X: -1, Y: -1}
	if topo.UserPos(0) != orig {
		t.Fatal("UserPositions exposed internal state")
	}
}

// Property: association sets derived from random deployments are always
// symmetric and within radius.
func TestAssociationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		topo, err := Generate(Config{AreaSideM: 400, NumServers: 3, NumUsers: 8, CoverageRadiusM: 150}, rng.New(seed))
		if err != nil {
			return false
		}
		for k := 0; k < topo.NumUsers(); k++ {
			for _, m := range topo.ServersCovering(k) {
				if topo.Distance(m, k) > topo.CoverageRadius() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
