package finetune

import (
	"math"
	"testing"

	"trimcaching/internal/rng"
)

func TestPaperTasksCalibration(t *testing.T) {
	// The paper reports ~4.05% (transportation) and ~5.2% (animal)
	// degradation when the first 97 of 107 layers are frozen.
	wants := map[string]float64{"transportation": 0.0405, "animal": 0.052}
	for _, task := range PaperTasks() {
		base, err := Accuracy(task, 0, TotalLayers)
		if err != nil {
			t.Fatal(err)
		}
		if base != task.BaseAccuracy {
			t.Fatalf("%s: base accuracy %v", task.Name, base)
		}
		at97, err := Accuracy(task, 97, TotalLayers)
		if err != nil {
			t.Fatal(err)
		}
		deg := base - at97
		want := wants[task.Name]
		if math.Abs(deg-want) > 0.004 {
			t.Fatalf("%s: degradation at 97 layers = %v, want ~%v", task.Name, deg, want)
		}
	}
}

func TestAccuracyMonotoneNonIncreasing(t *testing.T) {
	for _, task := range PaperTasks() {
		prev := math.Inf(1)
		for L := 0; L <= TotalLayers; L++ {
			acc, err := Accuracy(task, L, TotalLayers)
			if err != nil {
				t.Fatal(err)
			}
			if acc > prev+1e-12 {
				t.Fatalf("%s: accuracy increased at %d frozen layers", task.Name, L)
			}
			if acc < 0 || acc > 1 {
				t.Fatalf("%s: accuracy %v", task.Name, acc)
			}
			prev = acc
		}
	}
}

func TestBottomLayersNearlyFree(t *testing.T) {
	// Freezing the first third must cost well under 1% accuracy — that is
	// the transfer-learning phenomenon Fig. 1 demonstrates.
	for _, task := range PaperTasks() {
		base, err := Accuracy(task, 0, TotalLayers)
		if err != nil {
			t.Fatal(err)
		}
		third, err := Accuracy(task, TotalLayers/3, TotalLayers)
		if err != nil {
			t.Fatal(err)
		}
		if base-third > 0.01 {
			t.Fatalf("%s: freezing a third costs %v", task.Name, base-third)
		}
	}
}

func TestAccuracyValidation(t *testing.T) {
	task := PaperTasks()[0]
	if _, err := Accuracy(task, -1, 107); err == nil {
		t.Fatal("negative frozen must error")
	}
	if _, err := Accuracy(task, 108, 107); err == nil {
		t.Fatal("frozen > total must error")
	}
	if _, err := Accuracy(task, 0, 0); err == nil {
		t.Fatal("zero total must error")
	}
	bad := Task{Name: "x", BaseAccuracy: 1.5, MaxDegradation: 0.1, Shape: 1}
	if _, err := Accuracy(bad, 0, 10); err == nil {
		t.Fatal("invalid task must error")
	}
}

func TestMeasuredAccuracyNoise(t *testing.T) {
	task := PaperTasks()[0]
	src := rng.New(1)
	exact, err := Accuracy(task, 50, TotalLayers)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const trials = 500
	for i := 0; i < trials; i++ {
		m, err := MeasuredAccuracy(task, 50, TotalLayers, 1000, src)
		if err != nil {
			t.Fatal(err)
		}
		if m < 0 || m > 1 {
			t.Fatalf("measured accuracy %v", m)
		}
		sum += m
	}
	if mean := sum / trials; math.Abs(mean-exact) > 0.01 {
		t.Fatalf("measured mean %v vs exact %v", mean, exact)
	}
	if _, err := MeasuredAccuracy(task, 50, TotalLayers, 0, src); err == nil {
		t.Fatal("zero testN must error")
	}
}

func TestCurve(t *testing.T) {
	task := PaperTasks()[1]
	src := rng.New(2)
	counts := []int{0, 20, 40, 60, 80, 97}
	pts, err := Curve(task, TotalLayers, counts, 5000, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(counts) {
		t.Fatalf("%d points", len(pts))
	}
	for idx, pt := range pts {
		if pt.Frozen != counts[idx] {
			t.Fatalf("point %d frozen %d", idx, pt.Frozen)
		}
	}
	// Overall trend: last point below first by a few percent.
	if pts[len(pts)-1].Accuracy > pts[0].Accuracy-0.02 {
		t.Fatalf("curve not degrading: %v -> %v", pts[0].Accuracy, pts[len(pts)-1].Accuracy)
	}
	if _, err := Curve(task, TotalLayers, []int{-5}, 100, src); err == nil {
		t.Fatal("invalid count must error")
	}
}
