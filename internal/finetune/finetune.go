// Package finetune reproduces Fig. 1 of the paper: inference accuracy of
// fine-tuned ResNet-50 models versus the number of frozen bottom layers.
//
// The original figure is produced by actually fine-tuning ResNet-50 on
// CIFAR-100-derived "transportation" and "animal" superclass tasks, which
// requires GPUs and training data this repository does not assume.
// SUBSTITUTION (documented in DESIGN.md): a calibrated feature-reuse model.
// Bottom layers hold generic features, so accuracy degrades slowly at first
// and faster as task-specific top layers are frozen; the curve
//
//	accuracy(L) = base − maxDegradation · (L/total)^shape
//
// is calibrated to the paper's reported numbers (≈4.05% degradation for
// transportation and ≈5.2% for animal when the first 97 of 107 layers are
// frozen). Finite-test-set noise is modeled as binomial sampling.
package finetune

import (
	"fmt"
	"math"

	"trimcaching/internal/rng"
)

// Task is one downstream fine-tuning task.
type Task struct {
	// Name labels the task, e.g. "transportation".
	Name string
	// BaseAccuracy is the full fine-tuning accuracy (0 frozen layers).
	BaseAccuracy float64
	// MaxDegradation is the accuracy loss with every layer frozen.
	MaxDegradation float64
	// Shape controls how sharply degradation concentrates in top layers
	// (> 1: bottom layers are nearly free to freeze).
	Shape float64
}

// TotalLayers is the trainable-parameter-layer count of ResNet-50 with a
// classification head, matching internal/libgen.
const TotalLayers = 107

// PaperTasks returns the two Fig. 1 tasks, calibrated so that freezing the
// first 97 layers degrades accuracy by ≈4.05% (transportation) and ≈5.2%
// (animal), as reported in the paper.
func PaperTasks() []Task {
	// With shape = 3 and frac = 97/107 = 0.9065: frac^3 = 0.745.
	// transportation: 0.0405 / 0.745 = 0.0544; animal: 0.052 / 0.745 = 0.0698.
	return []Task{
		{Name: "transportation", BaseAccuracy: 0.978, MaxDegradation: 0.0544, Shape: 3},
		{Name: "animal", BaseAccuracy: 0.962, MaxDegradation: 0.0698, Shape: 3},
	}
}

// Accuracy returns the model-predicted inference accuracy when the first
// frozen of total bottom layers are frozen during fine-tuning.
func Accuracy(t Task, frozen, total int) (float64, error) {
	if total <= 0 {
		return 0, fmt.Errorf("finetune: total layers must be positive, got %d", total)
	}
	if frozen < 0 || frozen > total {
		return 0, fmt.Errorf("finetune: frozen layers %d outside [0, %d]", frozen, total)
	}
	if t.BaseAccuracy <= 0 || t.BaseAccuracy > 1 || t.MaxDegradation < 0 || t.Shape <= 0 {
		return 0, fmt.Errorf("finetune: invalid task %+v", t)
	}
	frac := float64(frozen) / float64(total)
	acc := t.BaseAccuracy - t.MaxDegradation*math.Pow(frac, t.Shape)
	if acc < 0 {
		acc = 0
	}
	return acc, nil
}

// MeasuredAccuracy draws a noisy accuracy estimate as if evaluated on a
// finite test set of testN samples (binomial sampling noise).
func MeasuredAccuracy(t Task, frozen, total, testN int, src *rng.Source) (float64, error) {
	acc, err := Accuracy(t, frozen, total)
	if err != nil {
		return 0, err
	}
	if testN <= 0 {
		return 0, fmt.Errorf("finetune: testN must be positive, got %d", testN)
	}
	return float64(src.Binomial(testN, acc)) / float64(testN), nil
}

// Point is one (frozen layers, accuracy) sample of the Fig. 1 curve.
type Point struct {
	Frozen   int     `json:"frozen"`
	Accuracy float64 `json:"accuracy"`
}

// Curve evaluates the measured accuracy at each frozen-layer count.
func Curve(t Task, total int, frozenCounts []int, testN int, src *rng.Source) ([]Point, error) {
	out := make([]Point, 0, len(frozenCounts))
	for _, L := range frozenCounts {
		acc, err := MeasuredAccuracy(t, L, total, testN, src)
		if err != nil {
			return nil, fmt.Errorf("finetune: curve at %d frozen: %w", L, err)
		}
		out = append(out, Point{Frozen: L, Accuracy: acc})
	}
	return out, nil
}
