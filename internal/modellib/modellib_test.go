package modellib

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"

	"trimcaching/internal/rng"
)

// tinyLib builds the running example from Fig. 3 of the paper in miniature:
// two "pre-trained" shared prefixes and three downstream models.
//
//	blocks: 0,1 shared by models 0,1 (sizes 10, 20)
//	        2   shared by models 1,2 (size 5)
//	        3,4,5 specific to models 0,1,2 (sizes 7, 11, 13)
func tinyLib(t *testing.T) *Library {
	t.Helper()
	blocks := []Block{
		{ID: 0, SizeBytes: 10},
		{ID: 1, SizeBytes: 20},
		{ID: 2, SizeBytes: 5},
		{ID: 3, SizeBytes: 7},
		{ID: 4, SizeBytes: 11},
		{ID: 5, SizeBytes: 13},
	}
	models := []Model{
		{ID: 0, Name: "m0", Family: "A", Blocks: []int{0, 1, 3}},
		{ID: 1, Name: "m1", Family: "A", Blocks: []int{0, 1, 2, 4}},
		{ID: 2, Name: "m2", Family: "B", Blocks: []int{2, 5}},
	}
	lib, err := New(blocks, models)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestNewValidation(t *testing.T) {
	okBlocks := []Block{{ID: 0, SizeBytes: 1}}
	okModels := []Model{{ID: 0, Blocks: []int{0}}}
	cases := []struct {
		name    string
		blocks  []Block
		models  []Model
		wantErr error
	}{
		{"empty blocks", nil, okModels, ErrEmptyLibrary},
		{"empty models", okBlocks, nil, ErrEmptyLibrary},
		{"bad block id", []Block{{ID: 1, SizeBytes: 1}}, okModels, ErrBadID},
		{"zero size", []Block{{ID: 0, SizeBytes: 0}}, okModels, ErrBadSize},
		{"negative size", []Block{{ID: 0, SizeBytes: -4}}, okModels, ErrBadSize},
		{"bad model id", okBlocks, []Model{{ID: 2, Blocks: []int{0}}}, ErrBadID},
		{"no blocks in model", okBlocks, []Model{{ID: 0}}, ErrBadBlockRef},
		{"unknown block ref", okBlocks, []Model{{ID: 0, Blocks: []int{3}}}, ErrBadBlockRef},
		{"negative block ref", okBlocks, []Model{{ID: 0, Blocks: []int{-1}}}, ErrBadBlockRef},
		{"duplicate block ref", okBlocks, []Model{{ID: 0, Blocks: []int{0, 0}}}, ErrBadBlockRef},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.blocks, c.models); !errors.Is(err, c.wantErr) {
				t.Fatalf("got %v, want %v", err, c.wantErr)
			}
		})
	}
}

func TestSizes(t *testing.T) {
	lib := tinyLib(t)
	wantSizes := []int64{10 + 20 + 7, 10 + 20 + 5 + 11, 5 + 13}
	for i, want := range wantSizes {
		if got := lib.ModelSize(i); got != want {
			t.Fatalf("ModelSize(%d) = %d, want %d", i, got, want)
		}
	}
	if lib.NumModels() != 3 || lib.NumBlocks() != 6 {
		t.Fatalf("counts %d/%d", lib.NumModels(), lib.NumBlocks())
	}
}

func TestSharingClassification(t *testing.T) {
	lib := tinyLib(t)
	wantShared := map[int]bool{0: true, 1: true, 2: true, 3: false, 4: false, 5: false}
	for j, want := range wantShared {
		if got := lib.IsShared(j); got != want {
			t.Fatalf("IsShared(%d) = %v", j, got)
		}
	}
	got := lib.SharedBlocks()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("SharedBlocks = %v", got)
	}
}

func TestFootprints(t *testing.T) {
	lib := tinyLib(t)
	cases := []struct {
		model      int
		footprint  []int
		sharedSize int64
		specific   int64
	}{
		{0, []int{0, 1}, 30, 7},
		{1, []int{0, 1, 2}, 35, 11},
		{2, []int{2}, 5, 13},
	}
	for _, c := range cases {
		fp := lib.SharedFootprint(c.model)
		if len(fp) != len(c.footprint) {
			t.Fatalf("model %d footprint %v, want %v", c.model, fp, c.footprint)
		}
		for i := range fp {
			if fp[i] != c.footprint[i] {
				t.Fatalf("model %d footprint %v, want %v", c.model, fp, c.footprint)
			}
		}
		if got := lib.SharedSize(c.model); got != c.sharedSize {
			t.Fatalf("SharedSize(%d) = %d, want %d", c.model, got, c.sharedSize)
		}
		if got := lib.SpecificSize(c.model); got != c.specific {
			t.Fatalf("SpecificSize(%d) = %d, want %d", c.model, got, c.specific)
		}
	}
}

func TestOwners(t *testing.T) {
	lib := tinyLib(t)
	own2 := lib.ModelsWithBlock(2)
	if len(own2) != 2 || own2[0] != 1 || own2[1] != 2 {
		t.Fatalf("owners of block 2 = %v", own2)
	}
	own5 := lib.ModelsWithBlock(5)
	if len(own5) != 1 || own5[0] != 2 {
		t.Fatalf("owners of block 5 = %v", own5)
	}
}

func TestBlocksSortedAndCopied(t *testing.T) {
	blocks := []Block{{ID: 0, SizeBytes: 1}, {ID: 1, SizeBytes: 2}}
	input := []int{1, 0}
	models := []Model{{ID: 0, Blocks: input}}
	lib, err := New(blocks, models)
	if err != nil {
		t.Fatal(err)
	}
	got := lib.ModelBlocks(0)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("blocks not sorted: %v", got)
	}
	input[0] = 99 // mutating the caller's slice must not corrupt the library
	if lib.ModelBlocks(0)[0] != 0 && lib.ModelBlocks(0)[1] != 1 {
		t.Fatal("library retained caller's slice")
	}
}

func TestBlocksUnion(t *testing.T) {
	lib := tinyLib(t)
	cases := []struct {
		models []int
		want   int64
	}{
		{nil, 0},
		{[]int{0}, 37},
		{[]int{0, 1}, 10 + 20 + 5 + 7 + 11}, // blocks 0,1 deduplicated
		{[]int{1, 2}, 10 + 20 + 5 + 11 + 13},
		{[]int{0, 1, 2}, 66},
	}
	for _, c := range cases {
		if got := lib.BlocksUnion(c.models, nil); got != c.want {
			t.Fatalf("BlocksUnion(%v) = %d, want %d", c.models, got, c.want)
		}
	}
}

func TestBlocksUnionScratchRestored(t *testing.T) {
	lib := tinyLib(t)
	scratch := make([]bool, lib.NumBlocks())
	_ = lib.BlocksUnion([]int{0, 1, 2}, scratch)
	for j, v := range scratch {
		if v {
			t.Fatalf("scratch[%d] left dirty", j)
		}
	}
}

// Property: union of all models is never larger than the sum of model sizes
// and never smaller than the largest model (submodularity sanity).
func TestBlocksUnionBoundsProperty(t *testing.T) {
	lib := tinyLib(t)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var models []int
		var sum int64
		var maxSize int64
		for i := 0; i < lib.NumModels(); i++ {
			if src.Float64() < 0.5 {
				models = append(models, i)
				sum += lib.ModelSize(i)
				if lib.ModelSize(i) > maxSize {
					maxSize = lib.ModelSize(i)
				}
			}
		}
		u := lib.BlocksUnion(models, nil)
		return u <= sum && u >= maxSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	lib := tinyLib(t)
	st := lib.Stats()
	if st.NumModels != 3 || st.NumBlocks != 6 || st.NumSharedBlocks != 3 {
		t.Fatalf("stats counts: %+v", st)
	}
	if st.UniqueBytes != 66 {
		t.Fatalf("UniqueBytes = %d", st.UniqueBytes)
	}
	if st.SumModelBytes != 37+46+18 {
		t.Fatalf("SumModelBytes = %d", st.SumModelBytes)
	}
	if st.SharingRatio <= 0 || st.SharingRatio >= 1 {
		t.Fatalf("SharingRatio = %v, want in (0,1) for a sharing library", st.SharingRatio)
	}
	if st.DistinctFamilies != 2 {
		t.Fatalf("DistinctFamilies = %d", st.DistinctFamilies)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	lib := tinyLib(t)
	data, err := json.Marshal(lib)
	if err != nil {
		t.Fatal(err)
	}
	var back Library
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumModels() != lib.NumModels() || back.NumBlocks() != lib.NumBlocks() {
		t.Fatal("round trip changed counts")
	}
	for i := 0; i < lib.NumModels(); i++ {
		if back.ModelSize(i) != lib.ModelSize(i) || back.SharedSize(i) != lib.SharedSize(i) {
			t.Fatalf("round trip changed model %d", i)
		}
	}
}

func TestJSONUnmarshalInvalid(t *testing.T) {
	var lib Library
	if err := json.Unmarshal([]byte(`{"blocks":[],"models":[]}`), &lib); err == nil {
		t.Fatal("expected error for empty library")
	}
	if err := json.Unmarshal([]byte(`{bad`), &lib); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
}
