// Package modellib implements the parameter-sharing AI model library of
// §III-B of the paper. A library is a set of parameter blocks (a block can
// be a CNN layer, a transformer block, a LoRA adapter, or a whole backbone)
// plus a set of models, each defined as a subset of blocks. A block
// contained in more than one model is a *shared* block and needs to be
// stored only once per edge server; a block contained in exactly one model
// is a *specific* block.
package modellib

import (
	"errors"
	"fmt"
	"sort"
)

// Block is one parameter block D'_j.
type Block struct {
	// ID is the block index j in [0, NumBlocks).
	ID int `json:"id"`
	// SizeBytes is the block size D'_j.
	SizeBytes int64 `json:"sizeBytes"`
	// Label is a human-readable tag, e.g. "resnet50/conv3_2/bn".
	Label string `json:"label,omitempty"`
}

// Model is one AI model i defined by the set of parameter blocks it
// contains.
type Model struct {
	// ID is the model index i in [0, NumModels).
	ID int `json:"id"`
	// Name is a human-readable tag, e.g. "resnet18/shark".
	Name string `json:"name,omitempty"`
	// Family groups models derived from the same pre-trained model.
	Family string `json:"family,omitempty"`
	// Blocks lists the block IDs of the model, sorted ascending.
	Blocks []int `json:"blocks"`
}

// Library is a validated, immutable parameter-sharing model library with
// precomputed sharing indexes. Construct it with New.
type Library struct {
	blocks []Block
	models []Model

	owners     [][]int // owners[j] = models containing block j (the paper's Ij)
	sizes      []int64 // sizes[i] = D_i, full model size
	sharedSize []int64 // sharedSize[i] = bytes of shared blocks in model i
	footprints [][]int // footprints[i] = sorted shared block IDs of model i
	shared     []bool  // shared[j] = block j is in >1 model
}

// Common validation errors.
var (
	ErrEmptyLibrary = errors.New("modellib: library needs at least one model and one block")
	ErrBadBlockRef  = errors.New("modellib: model references unknown or duplicate block")
	ErrBadSize      = errors.New("modellib: block size must be positive")
	ErrBadID        = errors.New("modellib: IDs must equal slice indexes")
)

// New validates blocks and models and builds the sharing indexes.
// Model.Blocks slices are copied and sorted; inputs are not retained.
func New(blocks []Block, models []Model) (*Library, error) {
	if len(blocks) == 0 || len(models) == 0 {
		return nil, ErrEmptyLibrary
	}
	lib := &Library{
		blocks: make([]Block, len(blocks)),
		models: make([]Model, len(models)),
	}
	for j, b := range blocks {
		if b.ID != j {
			return nil, fmt.Errorf("%w: block %d has ID %d", ErrBadID, j, b.ID)
		}
		if b.SizeBytes <= 0 {
			return nil, fmt.Errorf("%w: block %d size %d", ErrBadSize, j, b.SizeBytes)
		}
		lib.blocks[j] = b
	}
	lib.owners = make([][]int, len(blocks))
	lib.sizes = make([]int64, len(models))
	for i, m := range models {
		if m.ID != i {
			return nil, fmt.Errorf("%w: model %d has ID %d", ErrBadID, i, m.ID)
		}
		if len(m.Blocks) == 0 {
			return nil, fmt.Errorf("%w: model %d has no blocks", ErrBadBlockRef, i)
		}
		bs := make([]int, len(m.Blocks))
		copy(bs, m.Blocks)
		sort.Ints(bs)
		for bi, j := range bs {
			if j < 0 || j >= len(blocks) {
				return nil, fmt.Errorf("%w: model %d block %d", ErrBadBlockRef, i, j)
			}
			if bi > 0 && bs[bi-1] == j {
				return nil, fmt.Errorf("%w: model %d repeats block %d", ErrBadBlockRef, i, j)
			}
			lib.owners[j] = append(lib.owners[j], i)
			lib.sizes[i] += blocks[j].SizeBytes
		}
		m.Blocks = bs
		lib.models[i] = m
	}
	lib.shared = make([]bool, len(blocks))
	for j, own := range lib.owners {
		lib.shared[j] = len(own) > 1
	}
	lib.sharedSize = make([]int64, len(models))
	lib.footprints = make([][]int, len(models))
	for i := range lib.models {
		for _, j := range lib.models[i].Blocks {
			if lib.shared[j] {
				lib.footprints[i] = append(lib.footprints[i], j)
				lib.sharedSize[i] += lib.blocks[j].SizeBytes
			}
		}
	}
	return lib, nil
}

// NumModels returns the library size I.
func (l *Library) NumModels() int { return len(l.models) }

// NumBlocks returns the total number of parameter blocks J.
func (l *Library) NumBlocks() int { return len(l.blocks) }

// Model returns model i.
func (l *Library) Model(i int) Model { return l.models[i] }

// Block returns block j.
func (l *Library) Block(j int) Block { return l.blocks[j] }

// ModelBlocks returns the sorted block IDs of model i. The returned slice
// must not be modified.
func (l *Library) ModelBlocks(i int) []int { return l.models[i].Blocks }

// ModelSize returns D_i, the total size of model i in bytes.
func (l *Library) ModelSize(i int) int64 { return l.sizes[i] }

// BlockSize returns D'_j in bytes.
func (l *Library) BlockSize(j int) int64 { return l.blocks[j].SizeBytes }

// ModelsWithBlock returns the paper's Ij: the models containing block j.
// The returned slice must not be modified.
func (l *Library) ModelsWithBlock(j int) []int { return l.owners[j] }

// IsShared reports whether block j appears in more than one model.
func (l *Library) IsShared(j int) bool { return l.shared[j] }

// SharedBlocks returns the IDs of all shared blocks, sorted ascending.
func (l *Library) SharedBlocks() []int {
	var out []int
	for j, s := range l.shared {
		if s {
			out = append(out, j)
		}
	}
	return out
}

// SharedFootprint returns the sorted shared-block IDs of model i — the part
// of the model that the TrimCaching Spec algorithm reasons about separately.
// The returned slice must not be modified.
func (l *Library) SharedFootprint(i int) []int { return l.footprints[i] }

// SharedSize returns the bytes of shared blocks in model i (the paper's
// d_{N,i} when N covers the whole footprint).
func (l *Library) SharedSize(i int) int64 { return l.sharedSize[i] }

// SpecificSize returns D_i minus the shared bytes: the size the Spec DP
// charges for model i once its shared footprint is cached (eq. 13).
func (l *Library) SpecificSize(i int) int64 { return l.sizes[i] - l.sharedSize[i] }

// Stats summarizes the storage efficiency of parameter sharing.
type Stats struct {
	NumModels        int     `json:"numModels"`
	NumBlocks        int     `json:"numBlocks"`
	NumSharedBlocks  int     `json:"numSharedBlocks"`
	SumModelBytes    int64   `json:"sumModelBytes"`  // Σ D_i: cost without sharing
	UniqueBytes      int64   `json:"uniqueBytes"`    // Σ D'_j: cost with full sharing
	SharingRatio     float64 `json:"sharingRatio"`   // UniqueBytes / SumModelBytes
	MeanSharedFrac   float64 `json:"meanSharedFrac"` // mean of SharedSize/ModelSize
	DistinctFamilies int     `json:"distinctFamilies"`
}

// Stats computes the sharing statistics of the library.
func (l *Library) Stats() Stats {
	var st Stats
	st.NumModels = len(l.models)
	st.NumBlocks = len(l.blocks)
	families := map[string]bool{}
	for j := range l.blocks {
		st.UniqueBytes += l.blocks[j].SizeBytes
		if l.shared[j] {
			st.NumSharedBlocks++
		}
	}
	var fracSum float64
	for i := range l.models {
		st.SumModelBytes += l.sizes[i]
		fracSum += float64(l.sharedSize[i]) / float64(l.sizes[i])
		families[l.models[i].Family] = true
	}
	if st.SumModelBytes > 0 {
		st.SharingRatio = float64(st.UniqueBytes) / float64(st.SumModelBytes)
	}
	st.MeanSharedFrac = fracSum / float64(len(l.models))
	st.DistinctFamilies = len(families)
	return st
}

// BlocksUnion returns the deduplicated total size in bytes of the union of
// blocks of the given models — the storage an edge server needs to cache all
// of them (the paper's g_m, eq. 7). The scratch slice, if non-nil, must have
// length NumBlocks and be all-false; it is restored before returning.
func (l *Library) BlocksUnion(models []int, scratch []bool) int64 {
	if scratch == nil {
		scratch = make([]bool, len(l.blocks))
	}
	var total int64
	for _, i := range models {
		for _, j := range l.models[i].Blocks {
			if !scratch[j] {
				scratch[j] = true
				total += l.blocks[j].SizeBytes
			}
		}
	}
	for _, i := range models {
		for _, j := range l.models[i].Blocks {
			scratch[j] = false
		}
	}
	return total
}
