package modellib

import (
	"encoding/json"
	"fmt"
)

// libraryJSON is the serialized form of a Library.
type libraryJSON struct {
	Blocks []Block `json:"blocks"`
	Models []Model `json:"models"`
}

// MarshalJSON serializes the library as its blocks and models; the sharing
// indexes are recomputed on load.
func (l *Library) MarshalJSON() ([]byte, error) {
	return json.Marshal(libraryJSON{Blocks: l.blocks, Models: l.models})
}

// UnmarshalJSON deserializes and re-validates a library.
func (l *Library) UnmarshalJSON(data []byte) error {
	var raw libraryJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("modellib: decode library: %w", err)
	}
	lib, err := New(raw.Blocks, raw.Models)
	if err != nil {
		return fmt.Errorf("modellib: rebuild library: %w", err)
	}
	*l = *lib
	return nil
}
