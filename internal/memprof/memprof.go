// Package memprof defines the memory-accounting seam shared by the layers
// of the dynamics stack. Each layer reports the heap bytes it owns, broken
// down by component, and aggregation is plain addition — the shard engine's
// footprint is the sum of its cells plus the coordinator state. The numbers
// are computed from slice capacities (what the component retains, not what
// it momentarily uses), so they answer the capacity-planning question "how
// many bytes does this configuration pin per user."
package memprof

// Footprint is a by-component breakdown of owned heap bytes. Fields carry
// JSON tags so benchmark reports can emit a footprint verbatim.
type Footprint struct {
	// Reach counts both packed reachability orientations (server masks and
	// the model-major inverted index).
	Reach int64 `json:"reach_bytes"`
	// Rank counts the threshold rank index (order and value rows, both
	// orientations).
	Rank int64 `json:"rank_bytes"`
	// Rates counts the average-rate table, relay rates, and QoS thresholds.
	Rates int64 `json:"rate_bytes"`
	// Workload counts probability/deadline/inference tables; aliased tables
	// (shard cells sharing the coordinator's rows) count headers only.
	Workload int64 `json:"workload_bytes"`
	// Topology counts position vectors and both association tables.
	Topology int64 `json:"topology_bytes"`
	// Evaluator counts placement-evaluator state: the transposed
	// probability table, gain memos, commit heap, and overlay scratch.
	Evaluator int64 `json:"evaluator_bytes"`
	// Measurement counts fading-measurement state: per-worker kernel
	// scratch, realization sources, and result buffers.
	Measurement int64 `json:"measurement_bytes"`
	// Scratch counts reusable update/handoff buffers: delta scratch, move
	// scratch, membership plans, ghost lists.
	Scratch int64 `json:"scratch_bytes"`
	// Coordinator counts shard-coordinator state: the global instance,
	// ownership maps, walk state, and per-cell reference lists.
	Coordinator int64 `json:"coordinator_bytes"`
}

// Total sums every component.
func (f Footprint) Total() int64 {
	return f.Reach + f.Rank + f.Rates + f.Workload + f.Topology +
		f.Evaluator + f.Measurement + f.Scratch + f.Coordinator
}

// Add accumulates g into f component-wise.
func (f *Footprint) Add(g Footprint) {
	f.Reach += g.Reach
	f.Rank += g.Rank
	f.Rates += g.Rates
	f.Workload += g.Workload
	f.Topology += g.Topology
	f.Evaluator += g.Evaluator
	f.Measurement += g.Measurement
	f.Scratch += g.Scratch
	f.Coordinator += g.Coordinator
}
