package experiments

import "testing"

func TestAblationDeadlineShape(t *testing.T) {
	tbl, err := AblationDeadline(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 || len(tbl.Series[0].X) != 5 {
		t.Fatalf("unexpected shape")
	}
	gen := tbl.Series[0]
	// Looser deadlines can only help: the last point (2x budget) must beat
	// the first (0.6x budget).
	if gen.Points[len(gen.Points)-1].Mean <= gen.Points[0].Mean {
		t.Fatalf("hit ratio not increasing with deadline: %v -> %v",
			gen.Points[0].Mean, gen.Points[len(gen.Points)-1].Mean)
	}
}

func TestAblationShadowingShape(t *testing.T) {
	tbl, err := AblationShadowing(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 || len(tbl.Series[0].X) != 3 {
		t.Fatal("unexpected shape")
	}
	// TrimCaching must keep its lead at every shadowing level.
	gen, ind := tbl.Series[0], tbl.Series[1]
	for pi := range gen.Points {
		if gen.Points[pi].Mean < ind.Points[pi].Mean-0.02 {
			t.Fatalf("sigma=%v: Gen %v below Independent %v",
				gen.X[pi], gen.Points[pi].Mean, ind.Points[pi].Mean)
		}
	}
}

func TestAblationHeteroShape(t *testing.T) {
	tbl, err := AblationHetero(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 3 || len(tbl.Series[0].X) != 3 {
		t.Fatal("unexpected shape")
	}
	for _, s := range tbl.Series {
		for pi, pt := range s.Points {
			if pt.Mean <= 0 || pt.Mean > 1 {
				t.Fatalf("%s point %d: hit ratio %v", s.Label, pi, pt.Mean)
			}
		}
	}
}

func TestAblationRatioShape(t *testing.T) {
	tbl, err := AblationRatio(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 3 {
		t.Fatalf("%d series", len(tbl.Series))
	}
	// The refined variant can never lose to plain Gen on the same trials.
	gen, refined := tbl.Series[0], tbl.Series[2]
	for pi := range gen.Points {
		if refined.Points[pi].Mean < gen.Points[pi].Mean-1e-9 {
			t.Fatalf("Q=%v: refine %v below plain %v",
				gen.X[pi], refined.Points[pi].Mean, gen.Points[pi].Mean)
		}
	}
}

func TestFig7ReplaceShape(t *testing.T) {
	opt := tinyOptions()
	tbl, err := Fig7Replace(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 {
		t.Fatalf("%d series", len(tbl.Series))
	}
	frozen, replaced := tbl.Series[0], tbl.Series[1]
	var frozenSum, replacedSum float64
	for pi := range frozen.Points {
		frozenSum += frozen.Points[pi].Mean
		replacedSum += replaced.Points[pi].Mean
	}
	// Replacing on degradation can only help the sustained hit ratio.
	if replacedSum < frozenSum*0.97 {
		t.Fatalf("replacement policy total %v below frozen %v", replacedSum, frozenSum)
	}
}
