package experiments

import (
	"fmt"

	"trimcaching/internal/finetune"
	"trimcaching/internal/rng"
	"trimcaching/internal/stats"
)

// Fig1 reproduces Fig. 1: inference accuracy of fine-tuned ResNet-50 models
// versus the number of frozen bottom layers, for the "transportation" and
// "animal" downstream tasks. The real figure requires GPU fine-tuning on
// CIFAR-100; this driver uses the calibrated synthetic transfer-accuracy
// model of internal/finetune (substitution documented in DESIGN.md).
func Fig1(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	frozenCounts := []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 97, 107}
	const testN = 2000 // simulated test-set size per evaluation
	root := rng.New(rng.SaltSeed(opt.Seed, "fig1"))

	var series []stats.Series
	for _, task := range finetune.PaperTasks() {
		s := stats.Series{Label: task.Name}
		for _, L := range frozenCounts {
			var acc stats.Accumulator
			// The paper fine-tunes once per setting; we average a handful
			// of simulated runs to populate the error bars.
			for trial := 0; trial < 10; trial++ {
				v, err := finetune.MeasuredAccuracy(task, L, finetune.TotalLayers, testN,
					root.Split(fmt.Sprintf("%s/%d/%d", task.Name, L, trial)))
				if err != nil {
					return nil, fmt.Errorf("experiments: fig1: %w", err)
				}
				acc.Add(v)
			}
			s.Append(float64(L), acc.Summarize())
		}
		series = append(series, s)
	}

	// Report the calibration anchors the paper quotes.
	notes := []string{"synthetic transfer-accuracy model calibrated to the paper (see DESIGN.md)"}
	for _, task := range finetune.PaperTasks() {
		base, err := finetune.Accuracy(task, 0, finetune.TotalLayers)
		if err != nil {
			return nil, err
		}
		at97, err := finetune.Accuracy(task, 97, finetune.TotalLayers)
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("%s: degradation at 97 frozen layers = %.2f%%", task.Name, 100*(base-at97)))
	}
	return &stats.Table{
		Title:  "Fig. 1 inference accuracy vs number of frozen bottom layers (ResNet-50)",
		XLabel: "frozen layers",
		YLabel: "accuracy",
		Series: series,
		Notes:  notes,
	}, nil
}
