package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"trimcaching/internal/placement"
	"trimcaching/internal/replacement"
	"trimcaching/internal/rng"
	"trimcaching/internal/stats"
)

// AblationRatio compares Algorithm 3 (absolute marginal gain) with the
// cost-benefit greedy (gain per incremental byte) and the refine post-pass
// across the capacity sweep — probing whether the paper's plain greedy
// leaves quality on the table.
func AblationRatio(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	algs := []placement.Algorithm{
		genAlgorithm(),
		placement.RatioAlgorithm{},
		placement.RefinedAlgorithm{Base: placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}}},
	}
	var points []sweepPoint
	for _, q := range capacitySweepGB {
		points = append(points, sweepPoint{
			x:   q,
			cfg: figTrial(opt, lib, defaultServers, defaultUsers, q, algs, fmt.Sprintf("ablate-ratio/q=%v", q)),
		})
	}
	return runSweep("Ablation: greedy variants (gain vs gain/cost vs +refine)",
		"Q (GB)", points, []string{
			fmt.Sprintf("M=%d, K=%d, I=%d", defaultServers, defaultUsers, lib.NumModels()),
		})
}

// Fig7Replace extends Fig. 7 with the §IV replacement remark: comparing a
// frozen placement against a policy that re-places when the measured hit
// ratio degrades 5% below its post-placement baseline. Reports both
// timelines and the replacement count.
func Fig7Replace(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	perCheckpoint := opt.Realizations / 4
	if perCheckpoint < 10 {
		perCheckpoint = 10
	}
	sc := paperScenario(fig7Servers, fig7Users)
	cfg := replacement.Config{
		Library:       lib,
		Scenario:      sc,
		CapacityBytes: int64(defaultQGB * GB),
		DurationMin:   fig7DurationMin,
		CheckpointMin: fig7CheckpointMin,
		SlotS:         fig7SlotS,
		Realizations:  perCheckpoint,
	}
	policies := []struct {
		label string
		pol   replacement.Policy
	}{
		{"frozen placement", replacement.Policy{
			Algorithm:            placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
			DegradationThreshold: 10,
		}},
		{"replace on 5% degradation", replacement.Policy{
			Algorithm:            placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
			DegradationThreshold: 0.05,
		}},
	}

	checkpoints := fig7DurationMin/fig7CheckpointMin + 1
	type outcome struct {
		hit  [][]float64 // hit[policy][checkpoint]
		repl []int
		err  error
	}
	outcomes := make([]outcome, opt.Topologies)
	root := rng.New(rng.SaltSeed(opt.Seed, "fig7-replace"))

	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Topologies {
		workers = opt.Topologies
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				var out outcome
				out.hit = make([][]float64, len(policies))
				out.repl = make([]int, len(policies))
				for pi, pol := range policies {
					// Same trial stream per policy: identical topology,
					// walk, and fading for a paired comparison.
					steps, repl, err := replacement.Run(cfg, pol.pol, root.SplitIndex("trial", t))
					if err != nil {
						out.err = err
						break
					}
					out.repl[pi] = repl
					hits := make([]float64, len(steps))
					for si, s := range steps {
						hits[si] = s.HitRatio
					}
					out.hit[pi] = hits
				}
				outcomes[t] = out
			}
		}()
	}
	for t := 0; t < opt.Topologies; t++ {
		next <- t
	}
	close(next)
	wg.Wait()

	acc := make([][]stats.Accumulator, len(policies))
	for pi := range acc {
		acc[pi] = make([]stats.Accumulator, checkpoints)
	}
	totalRepl := make([]int, len(policies))
	for t := range outcomes {
		if outcomes[t].err != nil {
			return nil, fmt.Errorf("experiments: fig7-replace trial %d: %w", t, outcomes[t].err)
		}
		for pi := range policies {
			for cp := 0; cp < checkpoints; cp++ {
				acc[pi][cp].Add(outcomes[t].hit[pi][cp])
			}
			totalRepl[pi] += outcomes[t].repl[pi]
		}
	}

	series := make([]stats.Series, len(policies))
	notes := []string{
		fmt.Sprintf("M=%d, K=%d, Q=1GB; replacement threshold 5%%", fig7Servers, fig7Users),
	}
	for pi, pol := range policies {
		series[pi].Label = pol.label
		for cp := 0; cp < checkpoints; cp++ {
			series[pi].Append(float64(cp*fig7CheckpointMin), acc[pi][cp].Summarize())
		}
		notes = append(notes, fmt.Sprintf("%s: %.2f replacements per 2h run",
			pol.label, float64(totalRepl[pi])/float64(opt.Topologies)))
	}
	return &stats.Table{
		Title:  "Fig. 7 extension: frozen placement vs threshold replacement",
		XLabel: "time (min)",
		YLabel: "cache hit ratio",
		Series: series,
		Notes:  notes,
	}, nil
}
