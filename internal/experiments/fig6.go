package experiments

import (
	"fmt"

	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/sim"
	"trimcaching/internal/stats"
)

// fig6Scenario is the paper's shrunk comparison setting (§VII-D): 400 m
// area, M = 2 servers, K = 6 users, so the exhaustive search stays
// tractable. ε is set to 0 in this subsection.
func fig6Scenario() (numServers, numUsers int, areaSideM float64) {
	return 2, 6, 400
}

// runAlgoComparison runs the algorithms on a single experiment point and
// renders hit ratio plus average running time per algorithm — the two bar
// groups of Fig. 6.
func runAlgoComparison(title string, trial sim.TrialConfig) (*stats.Table, error) {
	results, err := sim.Run(trial)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", title, err)
	}
	hit := stats.Series{Label: "cache hit ratio"}
	secs := stats.Series{Label: "avg running time (s)"}
	notes := make([]string, 0, len(results)+1)
	for a, r := range results {
		x := float64(a + 1)
		hit.Append(x, r.HitRatio)
		secs.Append(x, r.PlaceSeconds)
		notes = append(notes, fmt.Sprintf("algorithm %d = %s (avg time %.6fs)", a+1, r.Name, r.PlaceSeconds.Mean))
	}
	// Relative speed factors, the paper's headline for this figure.
	base := results[len(results)-1].PlaceSeconds.Mean
	for a := 0; a < len(results)-1; a++ {
		if results[a].PlaceSeconds.Mean > 0 {
			notes = append(notes, fmt.Sprintf("%s is %.0fx faster than %s",
				results[a].Name, base/results[a].PlaceSeconds.Mean, results[len(results)-1].Name))
		}
	}
	return &stats.Table{
		Title:   title,
		XLabel:  "algorithm#",
		YLabel:  "cache hit ratio / running time",
		Series:  []stats.Series{hit, secs},
		Notes:   notes,
		Decimal: 6,
	}, nil
}

// Fig6a reproduces Fig. 6(a): special case, Gen vs Spec vs exhaustive
// optimum on the shrunk instance (Q = 0.1 GB, 9 models, ε = 0).
func Fig6a(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	m, k, side := fig6Scenario()
	poolOpt := opt
	poolOpt.LibraryModels = 9
	lib, err := specialLibrary(poolOpt)
	if err != nil {
		return nil, err
	}
	sc := paperScenario(m, k)
	sc.Topology.AreaSideM = side
	trial := sim.TrialConfig{
		Library:       lib,
		Scenario:      sc,
		CapacityBytes: int64(0.1 * GB),
		Algorithms: []placement.Algorithm{
			placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
			placement.SpecAlgorithm{Options: placement.SpecOptions{Epsilon: 0, MaxCombos: 1 << 20}},
			placement.OptimalAlgorithm{},
		},
		Topologies:   opt.Topologies,
		Realizations: opt.Realizations,
		Workers:      opt.Workers,
		Seed:         rng.SaltSeed(opt.Seed, "fig6a"),
	}
	return runAlgoComparison("Fig. 6(a) special case: algorithms vs exhaustive optimum (M=2, K=6, Q=0.1GB, I=9, eps=0)", trial)
}

// Fig6b reproduces Fig. 6(b): general case, Gen vs Spec running time
// (Q = 0.2 GB, 27 models, ε = 0). In the general case Spec's shared-block
// enumeration blows up, which is exactly the phenomenon this figure shows.
func Fig6b(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	m, k, side := fig6Scenario()
	lib, err := generalLibrary(opt, 27)
	if err != nil {
		return nil, err
	}
	sc := paperScenario(m, k)
	sc.Topology.AreaSideM = side
	trial := sim.TrialConfig{
		Library:       lib,
		Scenario:      sc,
		CapacityBytes: int64(0.2 * GB),
		Algorithms: []placement.Algorithm{
			placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
			placement.SpecAlgorithm{Options: placement.SpecOptions{Epsilon: 0, MaxCombos: 1 << 22}},
		},
		Topologies:   opt.Topologies,
		Realizations: opt.Realizations,
		Workers:      opt.Workers,
		Seed:         rng.SaltSeed(opt.Seed, "fig6b"),
	}
	return runAlgoComparison("Fig. 6(b) general case: TrimCaching Gen vs Spec (M=2, K=6, Q=0.2GB, I=27, eps=0)", trial)
}
