package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"trimcaching/internal/dynamics"
)

// galleryGolden is the checked-in artifact for one scenario: the full
// timeline through both engines. Byte-compared against testdata; refresh
// with UPDATE_GOLDENS=1 go test ./internal/experiments -run TestGalleryGoldens.
type galleryGolden struct {
	Config    GalleryConfig  `json:"config"`
	Unsharded *GalleryResult `json:"unsharded"`
	Sharded   *GalleryResult `json:"sharded"`
}

func runGalleryPair(t *testing.T, cfg GalleryConfig) (*GalleryResult, *GalleryResult) {
	t.Helper()
	un, err := RunGallery(cfg)
	if err != nil {
		t.Fatalf("%s unsharded: %v", cfg.Name, err)
	}
	sh, err := RunGallerySharded(cfg)
	if err != nil {
		t.Fatalf("%s sharded: %v", cfg.Name, err)
	}
	return un, sh
}

// TestGalleryGoldens runs every built-in scenario through both engines at
// the reduced scale and pins the complete timelines — hit ratios to the
// last bit, event placement, replacement counts, recovery latency —
// against the checked-in goldens.
func TestGalleryGoldens(t *testing.T) {
	for _, name := range GalleryNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg, err := GalleryScenario(name, DefaultGalleryConfig())
			if err != nil {
				t.Fatal(err)
			}
			un, sh := runGalleryPair(t, cfg)
			assertGalleryShape(t, cfg, un)
			assertGalleryShape(t, cfg, sh)

			got, err := json.MarshalIndent(galleryGolden{Config: cfg, Unsharded: un, Sharded: sh}, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", name+".golden.json")
			if os.Getenv("UPDATE_GOLDENS") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with UPDATE_GOLDENS=1): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("golden drift in %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// assertGalleryShape checks the scenario-specific invariants that make a
// timeline a proof, beyond byte equality with the golden.
func assertGalleryShape(t *testing.T, cfg GalleryConfig, res *GalleryResult) {
	t.Helper()
	leg := "unsharded"
	if res.Sharded {
		leg = "sharded"
	}
	checkpoints := cfg.DurationMin / cfg.CheckpointMin
	if len(res.Steps) != checkpoints+1 {
		t.Fatalf("%s: %d steps, want %d", leg, len(res.Steps), checkpoints+1)
	}
	for i, st := range res.Steps {
		if st.HitRatio <= 0 || st.HitRatio > 1 {
			t.Fatalf("%s: step %d hit ratio %v outside (0, 1]", leg, i, st.HitRatio)
		}
	}
	switch cfg.Name {
	case "outage", "degrade", "regional":
		if res.PreOutageHit <= 0 {
			t.Errorf("%s: no pre-fault hit recorded", leg)
		}
		third := (checkpoints + 2) / 3
		if dip := res.Steps[third].HitRatio; dip >= res.PreOutageHit {
			t.Errorf("%s: %s did not dent the hit ratio: %v -> %v", leg, cfg.Name, res.PreOutageHit, dip)
		}
		if res.RecoveryCheckpoints < 0 {
			t.Errorf("%s: timeline never recovered to %v of %v", leg, cfg.RecoveryFrac, res.PreOutageHit)
		}
	case "churn":
		if res.FinalModels != cfg.Models+cfg.ReserveModels {
			t.Errorf("%s: final library %d models, want %d", leg, res.FinalModels, cfg.Models+cfg.ReserveModels)
		}
	default:
		if res.FinalModels != cfg.Models {
			t.Errorf("%s: final library %d models, want %d", leg, res.FinalModels, cfg.Models)
		}
	}
}

// TestGalleryDeterminism pins every scenario timeline bit-identical across
// worker counts and across Incremental vs Rebuild refreshes, through both
// engines, on a shortened clock.
func TestGalleryDeterminism(t *testing.T) {
	for _, name := range GalleryNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			base := DefaultGalleryConfig()
			base.DurationMin = 60
			cfg, err := GalleryScenario(name, base)
			if err != nil {
				t.Fatal(err)
			}
			wantUn, wantSh := runGalleryPair(t, cfg)

			workers := cfg
			workers.Workers = 3
			gotUn, gotSh := runGalleryPair(t, workers)
			assertGalleryEqual(t, "workers 3 vs default unsharded", gotUn, wantUn)
			assertGalleryEqual(t, "workers 3 vs default sharded", gotSh, wantSh)

			rebuild := cfg
			rebuild.Mode = dynamics.Rebuild
			gotUn, gotSh = runGalleryPair(t, rebuild)
			assertGalleryEqual(t, "rebuild vs incremental unsharded", gotUn, wantUn)
			assertGalleryEqual(t, "rebuild vs incremental sharded", gotSh, wantSh)
		})
	}
}

func assertGalleryEqual(t *testing.T, label string, got, want *GalleryResult) {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatalf("%s diverged\n--- got ---\n%s\n--- want ---\n%s", label, g, w)
	}
}
