package experiments

import (
	"fmt"

	"trimcaching/internal/modellib"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/sim"
	"trimcaching/internal/stats"
)

// sweepPoint is one x-axis value of a figure sweep.
type sweepPoint struct {
	x   float64
	cfg sim.TrialConfig
}

// runSweep executes sim.Run per point and assembles one series per
// algorithm. Every point reuses the same algorithm list (order defines
// series order).
func runSweep(title, xLabel string, points []sweepPoint, notes []string) (*stats.Table, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("experiments: empty sweep")
	}
	var series []stats.Series
	for pi, pt := range points {
		results, err := sim.Run(pt.cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s at x=%v: %w", title, pt.x, err)
		}
		if pi == 0 {
			series = make([]stats.Series, len(results))
			for a, r := range results {
				series[a].Label = r.Name
			}
		}
		for a, r := range results {
			series[a].Append(pt.x, r.HitRatio)
		}
	}
	return &stats.Table{
		Title:  title,
		XLabel: xLabel,
		YLabel: "cache hit ratio",
		Series: series,
		Notes:  notes,
	}, nil
}

// capacitySweepGB is the paper's Q axis: 0.5 to 1.5 GB.
var capacitySweepGB = []float64{0.5, 0.75, 1.0, 1.25, 1.5}

// serverSweep is the paper's M axis.
var serverSweep = []int{6, 8, 10, 12, 14}

// userSweep is the paper's K axis.
var userSweep = []int{10, 20, 30, 40, 50}

// Defaults held fixed on the non-swept axes (captions of Figs. 4–5; K is
// not stated in the paper and documented as 30 in EXPERIMENTS.md).
const (
	defaultServers = 10
	defaultUsers   = 30
	defaultQGB     = 1.0
)

// figTrial builds the common sim.TrialConfig for Figs. 4–5.
func figTrial(opt Options, lib *modellib.Library, m, k int, qGB float64, algs []placement.Algorithm, pointSalt string) sim.TrialConfig {
	return sim.TrialConfig{
		Library:       lib,
		Scenario:      paperScenario(m, k),
		CapacityBytes: int64(qGB * GB),
		Algorithms:    algs,
		Topologies:    opt.Topologies,
		Realizations:  opt.Realizations,
		Workers:       opt.Workers,
		Seed:          rng.SaltSeed(opt.Seed, pointSalt),
	}
}

// specialAlgs is the Fig. 4 algorithm set.
func specialAlgs(opt Options) []placement.Algorithm {
	return []placement.Algorithm{specAlgorithm(opt), genAlgorithm(), placement.IndependentAlgorithm{}, placement.PopularityAlgorithm{}}
}

// generalAlgs is the Fig. 5 algorithm set.
func generalAlgs() []placement.Algorithm {
	return []placement.Algorithm{genAlgorithm(), placement.IndependentAlgorithm{}, placement.PopularityAlgorithm{}}
}

// Fig4a reproduces Fig. 4(a): special case, hit ratio vs Q (M=10, I=30).
func Fig4a(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, q := range capacitySweepGB {
		points = append(points, sweepPoint{
			x:   q,
			cfg: figTrial(opt, lib, defaultServers, defaultUsers, q, specialAlgs(opt), fmt.Sprintf("fig4a/q=%v", q)),
		})
	}
	return runSweep("Fig. 4(a) special case: cache hit ratio vs edge server capacity",
		"Q (GB)", points, []string{
			fmt.Sprintf("M=%d, K=%d, I=%d, eps=%v", defaultServers, defaultUsers, lib.NumModels(), opt.Epsilon),
		})
}

// Fig4b reproduces Fig. 4(b): special case, hit ratio vs M (Q=1GB, I=30).
func Fig4b(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, m := range serverSweep {
		points = append(points, sweepPoint{
			x:   float64(m),
			cfg: figTrial(opt, lib, m, defaultUsers, defaultQGB, specialAlgs(opt), fmt.Sprintf("fig4b/m=%d", m)),
		})
	}
	return runSweep("Fig. 4(b) special case: cache hit ratio vs number of edge servers",
		"M", points, []string{
			fmt.Sprintf("Q=%v GB, K=%d, I=%d, eps=%v", defaultQGB, defaultUsers, lib.NumModels(), opt.Epsilon),
		})
}

// Fig4c reproduces Fig. 4(c): special case, hit ratio vs K (Q=1GB, M=10).
func Fig4c(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, k := range userSweep {
		points = append(points, sweepPoint{
			x:   float64(k),
			cfg: figTrial(opt, lib, defaultServers, k, defaultQGB, specialAlgs(opt), fmt.Sprintf("fig4c/k=%d", k)),
		})
	}
	return runSweep("Fig. 4(c) special case: cache hit ratio vs number of users",
		"K", points, []string{
			fmt.Sprintf("Q=%v GB, M=%d, I=%d, eps=%v", defaultQGB, defaultServers, lib.NumModels(), opt.Epsilon),
		})
}

// Fig5a reproduces Fig. 5(a): general case, hit ratio vs Q.
func Fig5a(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := generalLibrary(opt, opt.LibraryModels)
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, q := range capacitySweepGB {
		points = append(points, sweepPoint{
			x:   q,
			cfg: figTrial(opt, lib, defaultServers, defaultUsers, q, generalAlgs(), fmt.Sprintf("fig5a/q=%v", q)),
		})
	}
	return runSweep("Fig. 5(a) general case: cache hit ratio vs edge server capacity",
		"Q (GB)", points, []string{
			fmt.Sprintf("M=%d, K=%d, I=%d", defaultServers, defaultUsers, lib.NumModels()),
		})
}

// Fig5b reproduces Fig. 5(b): general case, hit ratio vs M.
func Fig5b(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := generalLibrary(opt, opt.LibraryModels)
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, m := range serverSweep {
		points = append(points, sweepPoint{
			x:   float64(m),
			cfg: figTrial(opt, lib, m, defaultUsers, defaultQGB, generalAlgs(), fmt.Sprintf("fig5b/m=%d", m)),
		})
	}
	return runSweep("Fig. 5(b) general case: cache hit ratio vs number of edge servers",
		"M", points, []string{
			fmt.Sprintf("Q=%v GB, K=%d, I=%d", defaultQGB, defaultUsers, lib.NumModels()),
		})
}

// Fig5c reproduces Fig. 5(c): general case, hit ratio vs K.
func Fig5c(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := generalLibrary(opt, opt.LibraryModels)
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, k := range userSweep {
		points = append(points, sweepPoint{
			x:   float64(k),
			cfg: figTrial(opt, lib, defaultServers, k, defaultQGB, generalAlgs(), fmt.Sprintf("fig5c/k=%d", k)),
		})
	}
	return runSweep("Fig. 5(c) general case: cache hit ratio vs number of users",
		"K", points, []string{
			fmt.Sprintf("Q=%v GB, M=%d, I=%d", defaultQGB, defaultServers, lib.NumModels()),
		})
}
