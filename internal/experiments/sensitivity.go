package experiments

import (
	"fmt"

	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/sim"
	"trimcaching/internal/stats"
)

// AblationDeadline sweeps the QoS latency budget: the fundamental trade-off
// between storage efficiency and service latency that TrimCaching balances
// (§I). Tight deadlines kill relayed downloads first, so local caching —
// and therefore parameter sharing — matters most.
func AblationDeadline(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	// Deadline windows scaled around the paper's [0.5, 1] s.
	scales := []float64{0.6, 0.8, 1.0, 1.4, 2.0}
	var series []stats.Series
	for pi, scale := range scales {
		sc := paperScenario(defaultServers, defaultUsers)
		sc.Workload.DeadlineMinS = 0.5 * scale
		sc.Workload.DeadlineMaxS = 1.0 * scale
		trial := sim.TrialConfig{
			Library:       lib,
			Scenario:      sc,
			CapacityBytes: int64(0.75 * GB),
			Algorithms:    []placement.Algorithm{genAlgorithm(), placement.IndependentAlgorithm{}},
			Topologies:    opt.Topologies,
			Realizations:  opt.Realizations,
			Workers:       opt.Workers,
			Seed:          rng.SaltSeed(opt.Seed, fmt.Sprintf("ablate-deadline/%v", scale)),
		}
		results, err := sim.Run(trial)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablate-deadline scale=%v: %w", scale, err)
		}
		if pi == 0 {
			series = make([]stats.Series, len(results))
			for a, r := range results {
				series[a].Label = r.Name
			}
		}
		for a, r := range results {
			series[a].Append(scale, r.HitRatio)
		}
	}
	return &stats.Table{
		Title:  "Ablation: cache hit ratio vs QoS deadline scale",
		XLabel: "deadline scale (x of [0.5,1]s)",
		YLabel: "cache hit ratio",
		Series: series,
		Notes: []string{
			fmt.Sprintf("M=%d, K=%d, Q=0.75GB, I=%d", defaultServers, defaultUsers, lib.NumModels()),
		},
	}, nil
}

// AblationShadowing adds log-normal shadowing on top of the paper's channel
// model and measures how robust the TrimCaching advantage is to slow-fading
// uncertainty the placement cannot see coming.
func AblationShadowing(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	sigmas := []float64{0, 4, 8}
	var series []stats.Series
	for pi, sigma := range sigmas {
		sc := paperScenario(defaultServers, defaultUsers)
		sc.Wireless = sc.Wireless.WithShadowing(sigma)
		trial := sim.TrialConfig{
			Library:       lib,
			Scenario:      sc,
			CapacityBytes: int64(0.75 * GB),
			Algorithms:    []placement.Algorithm{genAlgorithm(), placement.IndependentAlgorithm{}},
			Topologies:    opt.Topologies,
			Realizations:  opt.Realizations,
			Workers:       opt.Workers,
			Seed:          rng.SaltSeed(opt.Seed, fmt.Sprintf("ablate-shadowing/%v", sigma)),
		}
		results, err := sim.Run(trial)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablate-shadowing sigma=%v: %w", sigma, err)
		}
		if pi == 0 {
			series = make([]stats.Series, len(results))
			for a, r := range results {
				series[a].Label = r.Name
			}
		}
		for a, r := range results {
			series[a].Append(sigma, r.HitRatio)
		}
	}
	return &stats.Table{
		Title:  "Ablation: cache hit ratio vs log-normal shadowing",
		XLabel: "shadowing std (dB)",
		YLabel: "cache hit ratio",
		Series: series,
		Notes: []string{
			fmt.Sprintf("M=%d, K=%d, Q=0.75GB, I=%d", defaultServers, defaultUsers, lib.NumModels()),
		},
	}, nil
}

// AblationHetero compares uniform capacities against heterogeneous ones
// with the same total storage: skewed capacity makes coordination — and the
// Spec algorithm's per-server sub-problems — work harder.
func AblationHetero(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	// Each factor set has mean 1 so total network storage is constant.
	profiles := []struct {
		skew    float64
		factors []float64
	}{
		{0, nil},
		{0.5, []float64{0.5, 1.5}},
		{0.9, []float64{0.1, 1.9}},
	}
	var series []stats.Series
	for pi, prof := range profiles {
		trial := sim.TrialConfig{
			Library:         lib,
			Scenario:        paperScenario(defaultServers, defaultUsers),
			CapacityBytes:   int64(0.75 * GB),
			CapacityFactors: prof.factors,
			Algorithms:      []placement.Algorithm{specAlgorithm(opt), genAlgorithm(), placement.IndependentAlgorithm{}},
			Topologies:      opt.Topologies,
			Realizations:    opt.Realizations,
			Workers:         opt.Workers,
			Seed:            rng.SaltSeed(opt.Seed, fmt.Sprintf("ablate-hetero/%v", prof.skew)),
		}
		results, err := sim.Run(trial)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablate-hetero skew=%v: %w", prof.skew, err)
		}
		if pi == 0 {
			series = make([]stats.Series, len(results))
			for a, r := range results {
				series[a].Label = r.Name
			}
		}
		for a, r := range results {
			series[a].Append(prof.skew, r.HitRatio)
		}
	}
	return &stats.Table{
		Title:  "Ablation: cache hit ratio vs capacity heterogeneity",
		XLabel: "capacity skew (0 = uniform; total storage constant)",
		YLabel: "cache hit ratio",
		Series: series,
		Notes: []string{
			fmt.Sprintf("M=%d, K=%d, mean Q=0.75GB, I=%d", defaultServers, defaultUsers, lib.NumModels()),
		},
	}, nil
}
