package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/modellib"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/stats"
)

// Fig. 7 parameters (§VII-E): M = 10, K = 10, Q = 1 GB, special case,
// 5-second slots over 2 hours with checkpoints every 10 minutes.
const (
	fig7Servers       = 10
	fig7Users         = 10
	fig7SlotS         = 5
	fig7DurationMin   = 120
	fig7CheckpointMin = 10
)

// Fig7 reproduces Fig. 7: models are placed once at t = 0 (Spec and Gen),
// users then move per the pedestrian/bike/vehicle model, and the cache hit
// ratio is re-evaluated under fading at each checkpoint without replacing
// models. The paper reports only ~5-6% degradation over 2 h.
func Fig7(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	algs := []placement.Algorithm{specAlgorithm(opt), genAlgorithm()}
	checkpoints := fig7DurationMin/fig7CheckpointMin + 1 // t = 0 included
	// Fading realizations per checkpoint: cheaper than the main figures
	// because the trial re-evaluates 13 times.
	perCheckpoint := opt.Realizations / 4
	if perCheckpoint < 10 {
		perCheckpoint = 10
	}

	outcomes := make([]fig7Outcome, opt.Topologies)
	root := rng.New(rng.SaltSeed(opt.Seed, "fig7"))

	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Topologies {
		workers = opt.Topologies
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				outcomes[t] = fig7Trial(lib, algs, checkpoints, perCheckpoint, root.SplitIndex("trial", t))
			}
		}()
	}
	for t := 0; t < opt.Topologies; t++ {
		next <- t
	}
	close(next)
	wg.Wait()

	acc := make([][]stats.Accumulator, len(algs))
	for a := range acc {
		acc[a] = make([]stats.Accumulator, checkpoints)
	}
	for t := range outcomes {
		if outcomes[t].err != nil {
			return nil, fmt.Errorf("experiments: fig7 trial %d: %w", t, outcomes[t].err)
		}
		for a := range algs {
			for cp := 0; cp < checkpoints; cp++ {
				acc[a][cp].Add(outcomes[t].hit[a][cp])
			}
		}
	}

	series := make([]stats.Series, len(algs))
	for a, alg := range algs {
		series[a].Label = alg.Name()
		for cp := 0; cp < checkpoints; cp++ {
			series[a].Append(float64(cp*fig7CheckpointMin), acc[a][cp].Summarize())
		}
	}
	notes := []string{
		fmt.Sprintf("M=%d, K=%d, Q=1GB, slot=%ds, classes: pedestrian/bike/vehicle", fig7Servers, fig7Users, fig7SlotS),
	}
	for a := range series {
		first := series[a].Points[0].Mean
		last := series[a].Points[len(series[a].Points)-1].Mean
		if first > 0 {
			notes = append(notes, fmt.Sprintf("%s degradation over 2h: %.2f%%", series[a].Label, 100*(first-last)/first))
		}
	}
	return &stats.Table{
		Title:  "Fig. 7 cache hit ratio over time under user mobility",
		XLabel: "time (min)",
		YLabel: "cache hit ratio",
		Series: series,
		Notes:  notes,
	}, nil
}

// fig7Outcome is one topology's hit-ratio trajectory per algorithm.
type fig7Outcome struct {
	hit [][]float64 // hit[a][checkpoint]
	err error
}

// fig7Trial runs one topology: place at t = 0, then walk users and
// re-evaluate the frozen placements at every checkpoint. The loop is the
// dynamics engine with never-firing triggers; the engine's incremental
// instance updates are pinned bit-identical to the historical rebuild
// path, so the figure is unchanged.
func fig7Trial(lib *modellib.Library, algs []placement.Algorithm, checkpoints, perCheckpoint int, src *rng.Source) fig7Outcome {
	out := fig7Outcome{hit: make([][]float64, len(algs))}
	for a := range out.hit {
		out.hit[a] = make([]float64, checkpoints)
	}

	cfg := paperScenario(fig7Servers, fig7Users)
	ins, err := scenario.Generate(lib, cfg, src.Split("instance"))
	if err != nil {
		out.err = err
		return out
	}
	tracks := make([]dynamics.Track, len(algs))
	for a, alg := range algs {
		tracks[a] = dynamics.Track{Algorithm: alg, Trigger: dynamics.NeverTrigger{}}
	}
	res, err := dynamics.Run(dynamics.Config{
		Instance:      ins,
		Capacities:    placement.UniformCapacities(fig7Servers, int64(defaultQGB*GB)),
		Tracks:        tracks,
		DurationMin:   (checkpoints - 1) * fig7CheckpointMin,
		CheckpointMin: fig7CheckpointMin,
		SlotS:         fig7SlotS,
		Realizations:  perCheckpoint,
	}, src)
	if err != nil {
		out.err = err
		return out
	}
	for cp, step := range res.Steps {
		for a := range algs {
			out.hit[a][cp] = step.HitRatio[a]
		}
	}
	return out
}
