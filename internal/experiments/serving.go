package experiments

import (
	"fmt"

	"trimcaching/internal/cachesim"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/sim"
	"trimcaching/internal/stats"
	"trimcaching/internal/topology"
	"trimcaching/internal/trace"
)

// AblationLayout compares the paper's uniform random server deployment
// against a planned grid and an unplanned Poisson point process, holding
// everything else fixed.
func AblationLayout(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	layouts := []topology.Layout{topology.LayoutUniform, topology.LayoutGrid, topology.LayoutPPP}
	var series []stats.Series
	for pi, layout := range layouts {
		sc := paperScenario(defaultServers, defaultUsers)
		sc.Topology.ServerLayout = layout
		trial := sim.TrialConfig{
			Library:       lib,
			Scenario:      sc,
			CapacityBytes: int64(0.75 * GB),
			Algorithms:    []placement.Algorithm{genAlgorithm(), placement.IndependentAlgorithm{}},
			Topologies:    opt.Topologies,
			Realizations:  opt.Realizations,
			Workers:       opt.Workers,
			Seed:          rng.SaltSeed(opt.Seed, fmt.Sprintf("ablate-layout/%v", layout)),
		}
		results, err := sim.Run(trial)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablate-layout %v: %w", layout, err)
		}
		if pi == 0 {
			series = make([]stats.Series, len(results))
			for a, r := range results {
				series[a].Label = r.Name
			}
		}
		for a, r := range results {
			series[a].Append(float64(pi+1), r.HitRatio)
		}
	}
	return &stats.Table{
		Title:  "Ablation: cache hit ratio vs server deployment layout",
		XLabel: "layout# (1=uniform, 2=grid, 3=ppp)",
		YLabel: "cache hit ratio",
		Series: series,
		Notes: []string{
			fmt.Sprintf("M=%d, K=%d, Q=0.75GB, I=%d", defaultServers, defaultUsers, lib.NumModels()),
		},
	}, nil
}

// ServeLoad sweeps the request arrival rate through the event-driven
// serving simulator: under contention every server's spectrum is
// processor-shared by its active downloads, so QoS hit ratios fall as load
// rises — faster for placements that push traffic onto relays and the
// cloud. This is an end-to-end systems view the paper's closed-form
// objective abstracts away.
func ServeLoad(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	rates := []float64{15, 30, 60, 120, 240} // requests/user/hour
	algs := []placement.Algorithm{genAlgorithm(), placement.IndependentAlgorithm{}, placement.PopularityAlgorithm{}}
	series := make([]stats.Series, len(algs))
	for a, alg := range algs {
		series[a].Label = alg.Name()
	}

	for _, rate := range rates {
		accs := make([]stats.Accumulator, len(algs))
		for t := 0; t < opt.Topologies; t++ {
			src := rng.New(rng.SaltSeed(opt.Seed, fmt.Sprintf("serve-load/%v", rate))).SplitIndex("trial", t)
			ins, err := scenario.Generate(lib, paperScenario(defaultServers, defaultUsers), src.Split("instance"))
			if err != nil {
				return nil, err
			}
			eval, err := placement.NewEvaluator(ins)
			if err != nil {
				return nil, err
			}
			caps := placement.UniformCapacities(ins.NumServers(), int64(0.75*GB))
			tr, err := trace.Generate(ins.Workload(), rate, 1800, src.Split("trace"))
			if err != nil {
				return nil, err
			}
			for a, alg := range algs {
				p, err := alg.Place(eval, caps)
				if err != nil {
					return nil, fmt.Errorf("experiments: serve-load %s: %w", alg.Name(), err)
				}
				res, err := cachesim.ServeTrace(ins, p, tr, cachesim.DefaultEventConfig(), src.Split("serve/"+alg.Name()))
				if err != nil {
					return nil, err
				}
				accs[a].Add(res.HitRatio)
			}
		}
		for a := range algs {
			series[a].Append(rate, accs[a].Summarize())
		}
	}
	return &stats.Table{
		Title:  "Extension: event-driven QoS hit ratio vs request load",
		XLabel: "requests/user/hour",
		YLabel: "QoS hit ratio (processor-shared spectrum)",
		Series: series,
		Notes: []string{
			fmt.Sprintf("M=%d, K=%d, Q=0.75GB, I=%d; 30 min traces", defaultServers, defaultUsers, lib.NumModels()),
		},
	}, nil
}
